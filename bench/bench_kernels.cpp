/// \file bench_kernels.cpp
/// google-benchmark microbenchmarks for the library's hot kernels:
/// potential evaluation, force passes, neighbor-list builds, the
/// wavelet-level marching multicast, and full WSE-MD steps. These measure
/// *host* performance of the simulator itself (not modeled WSE time) and
/// guard against performance regressions in the reproduction code.
///
/// Besides the microbenches, the binary self-times the force hot path on
/// both evaluation modes and both precisions — analytic virtual dispatch
/// vs the flattened r²-indexed PotentialProfile — and emits
/// `BENCH_kernels.json` (pairs/sec per {kernel, path}) for the CI bench
/// gate: `tools/check_bench_regression.py` checks the rows against
/// bench/baseline.json and enforces the profile-vs-analytic speedup
/// ratios, so de-virtualizing the inner loop can never silently regress.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>

#include "core/wse_md.hpp"
#include "eam/profile.hpp"
#include "eam/tabulated.hpp"
#include "eam/zhou.hpp"
#include "lattice/lattice.hpp"
#include "md/simd.hpp"
#include "md/simulation.hpp"
#include "util/bench_json.hpp"
#include "util/spline.hpp"
#include "wse/multicast.hpp"

namespace {

using namespace wsmd;

void BM_ZhouAnalyticPair(benchmark::State& state) {
  const eam::ZhouEam ta("Ta");
  double r = 2.5, acc = 0.0;
  for (auto _ : state) {
    acc += ta.pair(0, 0, r);
    r = 2.5 + (r * 1.0001 - static_cast<int>(r * 1.0001 / 2.0) * 2.0) * 0.5;
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_ZhouAnalyticPair);

void BM_TabulatedPair(benchmark::State& state) {
  const eam::ZhouEam ta("Ta");
  const auto tab = eam::TabulatedEam::from_potential(ta, 2000, 2000);
  double r = 2.5, acc = 0.0;
  for (auto _ : state) {
    acc += tab.pair(0, 0, r);
    r = 2.5 + (r * 1.0001 - static_cast<int>(r * 1.0001 / 2.0) * 2.0) * 0.5;
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_TabulatedPair);

void BM_ProfilePairLookup(benchmark::State& state) {
  // The r²-indexed bundle lookup the hot loops actually run: pair energy
  // plus force kernel in one fetch, no sqrt.
  const eam::ZhouEam ta("Ta");
  const eam::ProfileF64 prof(ta);
  const double rc2 = prof.cutoff_sq();
  double r2 = 0.4 * rc2, acc = 0.0;
  for (auto _ : state) {
    double phi, pf;
    prof.pair(0, 0, r2, phi, pf);
    acc += phi + pf;
    r2 = 0.2 * rc2 + (r2 * 1.0001 - static_cast<int>(r2 * 1.0001 / (0.7 * rc2)) *
                                        (0.7 * rc2));
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_ProfilePairLookup);

void BM_CubicSplineEval(benchmark::State& state) {
  const auto sp = CubicSplineTable::sample(
      [](double x) { return std::exp(-x) * x * x; }, 0.0, 6.0, 2000);
  double x = 1.0, acc = 0.0;
  for (auto _ : state) {
    acc += sp.value(x);
    x = 0.5 + (x * 1.001 - static_cast<int>(x * 1.001 / 5.0) * 5.0);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_CubicSplineEval);

void BM_NeighborListBuild(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const auto p = eam::zhou_parameters("Ta");
  const auto s = lattice::replicate(
      lattice::UnitCell::of(p.structure, p.lattice_constant()), n, n, n, 0,
      {true, true, true});
  md::NeighborList nl(p.paper_cutoff(), 1.0);
  for (auto _ : state) {
    nl.build(s.box, s.positions);
    benchmark::DoNotOptimize(nl.total_entries());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(s.size()));
}
BENCHMARK(BM_NeighborListBuild)->Arg(6)->Arg(10);

void BM_EamForceStep(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const auto p = eam::zhou_parameters("Ta");
  const auto s = lattice::replicate(
      lattice::UnitCell::of(p.structure, p.lattice_constant()), n, n, n, 0,
      {true, true, true});
  auto pot = std::make_shared<eam::ZhouEam>("Ta", p.paper_cutoff());
  md::AtomSystem sys(s, pot);
  Rng rng(3);
  sys.thermalize(290.0, rng);
  md::Simulation sim(std::move(sys));  // default: profiled evaluation
  sim.compute_forces();
  for (auto _ : state) {
    sim.run(1);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(s.size()));
}
BENCHMARK(BM_EamForceStep)->Arg(6)->Arg(10);

void BM_WseMdStep(benchmark::State& state) {
  const auto scale = static_cast<int>(state.range(0));
  const auto p = eam::zhou_parameters("Ta");
  const auto slab = lattice::paper_slab("Ta", scale);
  auto pot = std::make_shared<eam::ZhouEam>("Ta", p.paper_cutoff());
  core::WseMdConfig cfg;
  cfg.mapping.cell_size = p.lattice_constant();
  core::WseMd engine(slab, pot, cfg);  // default: FP32 profile tables
  Rng rng(5);
  engine.thermalize(290.0, rng);
  for (auto _ : state) {
    engine.step();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(engine.atom_count()));
}
BENCHMARK(BM_WseMdStep)->Arg(64)->Arg(32);

void BM_MarchingMulticast(benchmark::State& state) {
  const auto b = static_cast<int>(state.range(0));
  const int W = 16, H = 16;
  std::vector<std::vector<std::uint32_t>> payloads(
      static_cast<std::size_t>(W) * H, std::vector<std::uint32_t>{1, 2, 3});
  for (auto _ : state) {
    const auto result = wse::neighborhood_exchange(W, H, b, payloads);
    benchmark::DoNotOptimize(result.total_cycles());
  }
}
BENCHMARK(BM_MarchingMulticast)->Arg(1)->Arg(2)->Arg(4);

/// --- BENCH_kernels.json: analytic vs profiled vs SoA pairs/sec ----------

/// Evaluations per second of `fn`: one warmup call (touch tables, fault
/// pages, warm the branch predictors), then three independent ~0.25 s
/// trials; the best trial is reported. A single trial was at the mercy of
/// whatever else the CI runner scheduled during it — the max of three is a
/// far better estimate of the kernel's actual speed, and the speedup
/// *ratios* the gate enforces divide two best-of-3 values measured
/// back-to-back on the same machine.
template <typename Fn>
double evals_per_second(const Fn& fn) {
  using clock = std::chrono::steady_clock;
  fn();  // warmup
  double best = 0.0;
  for (int trial = 0; trial < 3; ++trial) {
    long iters = 0;
    const auto start = clock::now();
    double elapsed = 0.0;
    while (elapsed < 0.25) {
      fn();
      ++iters;
      elapsed = std::chrono::duration<double>(clock::now() - start).count();
    }
    best = std::max(best, static_cast<double>(iters) / elapsed);
  }
  return best;
}

void emit_pairs_bench() {
  const auto p = eam::zhou_parameters("Ta");

  // FP64 reference force kernel: same system, same neighbor list, the two
  // evaluation paths of md::EamForceKernel. pairs = full-list entries per
  // sweep (both paths walk the identical list).
  const auto crystal = lattice::replicate(
      lattice::UnitCell::of(p.structure, p.lattice_constant()), 8, 8, 8, 0,
      {true, true, true});
  auto pot = std::make_shared<eam::ZhouEam>("Ta", p.paper_cutoff());
  md::AtomSystem sys(crystal, pot);
  Rng rng(11);
  sys.thermalize(290.0, rng);
  md::NeighborList nl(pot->cutoff(), 1.0);
  nl.build(sys.box(), sys.positions());
  const auto ref_pairs = static_cast<double>(nl.total_entries());
  md::EamForceKernel kernel;
  const eam::ProfileF64 prof64(*pot);
  double sink = 0.0;
  const double ref_analytic =
      ref_pairs * evals_per_second([&] { sink += kernel.compute(sys, nl); });
  // PR 5's de-virtualized per-pair profile loop, kept as an explicit path:
  // the soa-vs-profile ratio below is the measured win of batching alone.
  const double ref_profile = ref_pairs * evals_per_second([&] {
                               sink += kernel.compute(
                                   sys, nl, &prof64, nullptr,
                                   md::EamForceKernel::EvalPath::kPairwise);
                             });
  // The production hot path: SoA pair batches through the dispatched
  // simd kernels, on the active tier and pinned to the scalar tier.
  const double ref_soa = ref_pairs * evals_per_second([&] {
                           sink += kernel.compute(sys, nl, &prof64);
                         });
  simd::set_tier_override(simd::Tier::kScalar);
  const double ref_soa_scalar = ref_pairs * evals_per_second([&] {
                                  sink += kernel.compute(sys, nl, &prof64);
                                });
  simd::clear_tier_override();

  // FP32 wafer step (phases 1-4): serial WseMd on a paper-slab miniature.
  // The tabulated config runs the batched SoA phase kernels; analytic runs
  // per-candidate virtual calls. pairs = accepted interactions per step.
  const auto slab = lattice::paper_slab("Ta", 48);
  core::WseMdConfig tab_cfg;
  tab_cfg.mapping.cell_size = p.lattice_constant();
  core::WseMdConfig ana_cfg = tab_cfg;
  ana_cfg.tabulated = false;
  core::WseMd tab(slab, pot, tab_cfg);
  core::WseMd ana(slab, pot, ana_cfg);
  Rng wrng(13);
  tab.thermalize(290.0, wrng);
  ana.set_velocities(tab.velocities());
  const auto count_pairs = [](core::WseMd& eng) {
    return eng.step().mean_interactions *
           static_cast<double>(eng.atom_count());
  };
  const double wafer_pairs = count_pairs(tab);
  const double wafer_soa =
      wafer_pairs * evals_per_second([&] { sink += tab.step().max_cycles; });
  simd::set_tier_override(simd::Tier::kScalar);
  const double wafer_soa_scalar =
      wafer_pairs * evals_per_second([&] { sink += tab.step().max_cycles; });
  simd::clear_tier_override();
  const double wafer_analytic =
      wafer_pairs * evals_per_second([&] { sink += ana.step().max_cycles; });

  BenchJson out("kernels");
  out.meta()
      .set("element", "Ta")
      .set("ref_atoms", sys.size())
      .set("ref_pairs_per_sweep", ref_pairs)
      .set("wafer_atoms", tab.atom_count())
      .set("wafer_pairs_per_step", wafer_pairs)
      .set("profile_table_bytes_fp32",
           eam::ProfileF32(*pot).table_bytes())
      .set("simd_tier", simd::tier_name(simd::active_tier()))
      .set("sink", sink);  // defeat dead-code elimination
  out.add_row()
      .set("kernel", "reference")
      .set("path", "analytic")
      .set("precision", "fp64")
      .set("pairs_per_s", ref_analytic);
  out.add_row()
      .set("kernel", "reference")
      .set("path", "profile")
      .set("precision", "fp64")
      .set("pairs_per_s", ref_profile)
      .set("speedup_vs_analytic", ref_profile / ref_analytic);
  out.add_row()
      .set("kernel", "reference")
      .set("path", "soa")
      .set("precision", "fp64")
      .set("pairs_per_s", ref_soa)
      .set("speedup_vs_profile", ref_soa / ref_profile);
  out.add_row()
      .set("kernel", "reference")
      .set("path", "soa_scalar")
      .set("precision", "fp64")
      .set("pairs_per_s", ref_soa_scalar);
  out.add_row()
      .set("kernel", "wafer")
      .set("path", "analytic")
      .set("precision", "fp32")
      .set("pairs_per_s", wafer_analytic);
  out.add_row()
      .set("kernel", "wafer")
      .set("path", "soa")
      .set("precision", "fp32")
      .set("pairs_per_s", wafer_soa)
      .set("speedup_vs_analytic", wafer_soa / wafer_analytic);
  out.add_row()
      .set("kernel", "wafer")
      .set("path", "soa_scalar")
      .set("precision", "fp32")
      .set("pairs_per_s", wafer_soa_scalar);
  const auto path = out.write(".");
  std::printf("\n[simd tier: %s]\n", simd::tier_name(simd::active_tier()));
  std::printf("pairs/sec (FP64 reference): analytic %.3g, profile %.3g "
              "(%.2fx), soa %.3g (%.2fx vs profile), soa_scalar %.3g\n",
              ref_analytic, ref_profile, ref_profile / ref_analytic,
              ref_soa, ref_soa / ref_profile, ref_soa_scalar);
  std::printf("pairs/sec (FP32 wafer):     analytic %.3g, soa %.3g "
              "(%.2fx), soa_scalar %.3g\n",
              wafer_analytic, wafer_soa, wafer_soa / wafer_analytic,
              wafer_soa_scalar);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  emit_pairs_bench();
  return 0;
}
