/// \file bench_kernels.cpp
/// google-benchmark microbenchmarks for the library's hot kernels:
/// potential evaluation, force passes, neighbor-list builds, the
/// wavelet-level marching multicast, and full WSE-MD steps. These measure
/// *host* performance of the simulator itself (not modeled WSE time) and
/// guard against performance regressions in the reproduction code.

#include <benchmark/benchmark.h>

#include <cmath>
#include <memory>

#include "core/wse_md.hpp"
#include "eam/tabulated.hpp"
#include "eam/zhou.hpp"
#include "lattice/lattice.hpp"
#include "md/simulation.hpp"
#include "util/spline.hpp"
#include "wse/multicast.hpp"

namespace {

using namespace wsmd;

void BM_ZhouAnalyticPair(benchmark::State& state) {
  const eam::ZhouEam ta("Ta");
  double r = 2.5, acc = 0.0;
  for (auto _ : state) {
    acc += ta.pair(0, 0, r);
    r = 2.5 + (r * 1.0001 - static_cast<int>(r * 1.0001 / 2.0) * 2.0) * 0.5;
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_ZhouAnalyticPair);

void BM_TabulatedPair(benchmark::State& state) {
  const eam::ZhouEam ta("Ta");
  const auto tab = eam::TabulatedEam::from_potential(ta, 2000, 2000);
  double r = 2.5, acc = 0.0;
  for (auto _ : state) {
    acc += tab.pair(0, 0, r);
    r = 2.5 + (r * 1.0001 - static_cast<int>(r * 1.0001 / 2.0) * 2.0) * 0.5;
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_TabulatedPair);

void BM_CubicSplineEval(benchmark::State& state) {
  const auto sp = CubicSplineTable::sample(
      [](double x) { return std::exp(-x) * x * x; }, 0.0, 6.0, 2000);
  double x = 1.0, acc = 0.0;
  for (auto _ : state) {
    acc += sp.value(x);
    x = 0.5 + (x * 1.001 - static_cast<int>(x * 1.001 / 5.0) * 5.0);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_CubicSplineEval);

void BM_NeighborListBuild(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const auto p = eam::zhou_parameters("Ta");
  const auto s = lattice::replicate(
      lattice::UnitCell::of(p.structure, p.lattice_constant()), n, n, n, 0,
      {true, true, true});
  md::NeighborList nl(p.paper_cutoff(), 1.0);
  for (auto _ : state) {
    nl.build(s.box, s.positions);
    benchmark::DoNotOptimize(nl.total_entries());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(s.size()));
}
BENCHMARK(BM_NeighborListBuild)->Arg(6)->Arg(10);

void BM_EamForceStep(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const auto p = eam::zhou_parameters("Ta");
  const auto s = lattice::replicate(
      lattice::UnitCell::of(p.structure, p.lattice_constant()), n, n, n, 0,
      {true, true, true});
  auto analytic = std::make_shared<eam::ZhouEam>("Ta", p.paper_cutoff());
  auto pot = std::make_shared<eam::TabulatedEam>(
      eam::TabulatedEam::from_potential(*analytic, 2000, 2000));
  md::AtomSystem sys(s, pot);
  Rng rng(3);
  sys.thermalize(290.0, rng);
  md::Simulation sim(std::move(sys));
  sim.compute_forces();
  for (auto _ : state) {
    sim.run(1);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(s.size()));
}
BENCHMARK(BM_EamForceStep)->Arg(6)->Arg(10);

void BM_WseMdStep(benchmark::State& state) {
  const auto scale = static_cast<int>(state.range(0));
  const auto p = eam::zhou_parameters("Ta");
  const auto slab = lattice::paper_slab("Ta", scale);
  auto analytic = std::make_shared<eam::ZhouEam>("Ta", p.paper_cutoff());
  auto pot = std::make_shared<eam::TabulatedEam>(
      eam::TabulatedEam::from_potential(*analytic, 2000, 2000));
  core::WseMdConfig cfg;
  cfg.mapping.cell_size = p.lattice_constant();
  core::WseMd engine(slab, pot, cfg);
  Rng rng(5);
  engine.thermalize(290.0, rng);
  for (auto _ : state) {
    engine.step();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(engine.atom_count()));
}
BENCHMARK(BM_WseMdStep)->Arg(64)->Arg(32);

void BM_MarchingMulticast(benchmark::State& state) {
  const auto b = static_cast<int>(state.range(0));
  const int W = 16, H = 16;
  std::vector<std::vector<std::uint32_t>> payloads(
      static_cast<std::size_t>(W) * H, std::vector<std::uint32_t>{1, 2, 3});
  for (auto _ : state) {
    const auto result = wse::neighborhood_exchange(W, H, b, payloads);
    benchmark::DoNotOptimize(result.total_cycles());
  }
}
BENCHMARK(BM_MarchingMulticast)->Arg(1)->Arg(2)->Arg(4);

}  // namespace
