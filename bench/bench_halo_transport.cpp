/// \file bench_halo_transport.cpp
/// Halo transport micro + macro comparison: the AF_UNIX socket tier vs the
/// shared-memory rings (dist/shm_channel), as message-level latency and
/// bandwidth across halo payload sizes, and end-to-end as the measured
/// dist.halo_* seconds of a real ranks:2 Cu slab on each carrier.
///
///   bench_halo_transport [--ranks=M] [--steps=K] [--scale=S]
///                        [--pingpongs=N] [--stream-mb=M]
///
/// Results land in BENCH_halo_transport.json. The shm-over-socket ratios
/// (message latency and slab halo seconds) divide two measurements of the
/// same run, so the bench gate pins them as hard floors — losing the
/// shared-memory fast path is a structural regression, not runner noise.

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dist/distributed_engine.hpp"
#include "dist/shm_channel.hpp"
#include "dist/transport.hpp"
#include "eam/tabulated.hpp"
#include "eam/zhou.hpp"
#include "lattice/lattice.hpp"
#include "telemetry/telemetry.hpp"
#include "util/bench_json.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace {

using namespace wsmd;
using Clock = std::chrono::steady_clock;

constexpr int kTimeoutMs = 60'000;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Round-trip ping-pong over the socket tier: A sends a frame, B echoes
/// it. Returns one-way seconds per message (round-trip / 2).
double socket_latency(std::size_t bytes, int iters) {
  dist::ChannelPair pair = dist::make_channel_pair();
  const std::vector<std::uint8_t> payload(bytes, 0x5a);
  std::thread echo([&] {
    for (int i = 0; i < iters; ++i) {
      const auto in = pair.b.recv(dist::Tag::kHaloFprime, kTimeoutMs);
      pair.b.send(dist::Tag::kHaloFprime, in.data(), in.size(), kTimeoutMs);
    }
  });
  const auto t0 = Clock::now();
  for (int i = 0; i < iters; ++i) {
    pair.a.send(dist::Tag::kHaloFprime, payload.data(), bytes, kTimeoutMs);
    (void)pair.a.recv(dist::Tag::kHaloFprime, kTimeoutMs);
  }
  const double elapsed = seconds_since(t0);
  echo.join();
  return elapsed / (2.0 * iters);
}

/// The same ping-pong through one shm pair segment's two rings.
double shm_latency(std::size_t bytes, int iters) {
  dist::ShmPairSegment seg(static_cast<long>(::getpid()), 0, 1, bytes);
  dist::ShmHalo a = seg.halo_for(0);
  dist::ShmHalo b = seg.halo_for(1);
  const dist::ShmWait wait{-1, kTimeoutMs};
  const std::vector<std::uint8_t> payload(bytes, 0x5a);
  std::thread echo([&] {
    for (int i = 0; i < iters; ++i) {
      std::size_t size = 0;
      const std::uint8_t* p =
          b.recv.acquire(dist::Tag::kHaloFprime, size, wait);
      std::uint8_t* out = b.send.begin_publish(wait);
      std::memcpy(out, p, size);
      b.recv.release();
      b.send.commit_publish(dist::Tag::kHaloFprime, size);
    }
  });
  const auto t0 = Clock::now();
  for (int i = 0; i < iters; ++i) {
    a.send.publish(dist::Tag::kHaloFprime, payload.data(), bytes, wait);
    std::size_t size = 0;
    a.recv.acquire(dist::Tag::kHaloFprime, size, wait);
    a.recv.release();
  }
  const double elapsed = seconds_since(t0);
  echo.join();
  return elapsed / (2.0 * iters);
}

/// One-direction stream: producer pushes `total_bytes` in `bytes`-sized
/// messages, consumer drains. Returns GiB/s of payload moved.
double socket_bandwidth(std::size_t bytes, std::size_t total_bytes) {
  dist::ChannelPair pair = dist::make_channel_pair();
  const long messages = static_cast<long>(total_bytes / bytes);
  const std::vector<std::uint8_t> payload(bytes, 0x3c);
  std::thread consumer([&] {
    for (long i = 0; i < messages; ++i) {
      (void)pair.b.recv(dist::Tag::kHaloState, kTimeoutMs);
    }
  });
  const auto t0 = Clock::now();
  for (long i = 0; i < messages; ++i) {
    pair.a.send(dist::Tag::kHaloState, payload.data(), bytes, kTimeoutMs);
  }
  consumer.join();
  const double elapsed = seconds_since(t0);
  return static_cast<double>(messages) * static_cast<double>(bytes) /
         elapsed / (1024.0 * 1024.0 * 1024.0);
}

double shm_bandwidth(std::size_t bytes, std::size_t total_bytes) {
  dist::ShmPairSegment seg(static_cast<long>(::getpid()), 0, 1, bytes);
  dist::ShmHalo a = seg.halo_for(0);
  dist::ShmHalo b = seg.halo_for(1);
  const dist::ShmWait wait{-1, kTimeoutMs};
  const long messages = static_cast<long>(total_bytes / bytes);
  const std::vector<std::uint8_t> payload(bytes, 0x3c);
  std::thread consumer([&] {
    for (long i = 0; i < messages; ++i) {
      std::size_t size = 0;
      b.recv.acquire(dist::Tag::kHaloState, size, wait);
      b.recv.release();
    }
  });
  const auto t0 = Clock::now();
  for (long i = 0; i < messages; ++i) {
    a.send.publish(dist::Tag::kHaloState, payload.data(), bytes, wait);
  }
  consumer.join();
  const double elapsed = seconds_since(t0);
  return static_cast<double>(messages) * static_cast<double>(bytes) /
         elapsed / (1024.0 * 1024.0 * 1024.0);
}

struct SlabLeg {
  std::size_t atoms = 0;
  double halo_s_per_step = 0.0;     ///< dist.halo_pack+exchange+unpack
  double overlap_s_per_step = 0.0;  ///< compute hidden behind the halos
  double steps_per_s = 0.0;
};

/// End-to-end: the CI-class Cu slab on ranks:M with the given transport,
/// telemetry armed, halo seconds read from the same spans `wsmd report`
/// joins.
SlabLeg run_slab(dist::HaloTransport transport, int ranks, int scale,
                 long steps) {
  const auto p = eam::zhou_parameters("Cu");
  const auto slab = lattice::paper_slab("Cu", scale);
  auto analytic = std::make_shared<eam::ZhouEam>("Cu", p.paper_cutoff());
  auto pot = std::make_shared<eam::TabulatedEam>(
      eam::TabulatedEam::from_potential(*analytic, 2000, 2000));

  dist::DistributedConfig cfg;
  cfg.wse.mapping.cell_size = p.lattice_constant();
  cfg.ranks = ranks;
  cfg.transport = transport;
  dist::DistributedEngine engine(slab, pot, cfg);
  Rng rng(12345);
  engine.thermalize(290.0, rng);
  engine.step();  // warm caches and socket buffers outside the measurement

  telemetry::begin_session();
  const auto t0 = Clock::now();
  for (long k = 0; k < steps; ++k) engine.step();
  const double wall = seconds_since(t0);
  telemetry::end_session();

  SlabLeg leg;
  leg.atoms = engine.atom_count();
  leg.halo_s_per_step =
      (telemetry::span_total_seconds("dist.halo_pack") +
       telemetry::span_total_seconds("dist.halo_exchange") +
       telemetry::span_total_seconds("dist.halo_unpack")) /
      static_cast<double>(steps);
  leg.overlap_s_per_step =
      telemetry::span_total_seconds("dist.overlap_compute") /
      static_cast<double>(steps);
  leg.steps_per_s = wall > 0.0 ? static_cast<double>(steps) / wall : 0.0;
  return leg;
}

}  // namespace

int main(int argc, char** argv) try {
  int ranks = 2;
  long steps = 20;
  int scale = 24;
  int pingpongs = 2000;
  std::size_t stream_mb = 256;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg.rfind("--ranks=", 0) == 0) {
      ranks = std::atoi(arg.c_str() + 8);
    } else if (arg.rfind("--steps=", 0) == 0) {
      steps = std::atol(arg.c_str() + 8);
    } else if (arg.rfind("--scale=", 0) == 0) {
      scale = std::atoi(arg.c_str() + 8);
    } else if (arg.rfind("--pingpongs=", 0) == 0) {
      pingpongs = std::atoi(arg.c_str() + 12);
    } else if (arg.rfind("--stream-mb=", 0) == 0) {
      stream_mb = static_cast<std::size_t>(std::atol(arg.c_str() + 12));
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return 2;
    }
  }

  std::printf(
      "Halo transport comparison — AF_UNIX socket frames vs POSIX\n"
      "shared-memory rings (dist.transport = socket|shm).\n\n");

  BenchJson json("halo_transport");
  json.meta().set("ranks", ranks).set("scale", scale).set(
      "steps", static_cast<long long>(steps));
  // The end-to-end halo seconds only reflect the transport when each rank
  // has its own core; on a time-shared single CPU they measure scheduler
  // skew (the wait for the peer's compute quantum), so the slab ratio
  // gate keys on this flag.
  const bool multicore = std::thread::hardware_concurrency() > 1;
  json.meta().set("multicore", multicore);

  // Message sizes spanning the halo range: a thin F' band (rows*w*4B) up
  // to a fat committed-state band on a large slab.
  const std::size_t sizes[] = {4u << 10, 64u << 10, 1u << 20};

  TablePrinter lat({"payload", "socket us/msg", "shm us/msg", "speedup"});
  for (const std::size_t bytes : sizes) {
    const double sock = socket_latency(bytes, pingpongs);
    const double shm = shm_latency(bytes, pingpongs);
    json.add_row()
        .set("leg", "latency")
        .set("transport", "socket")
        .set("bytes", bytes)
        .set("seconds", sock);
    json.add_row()
        .set("leg", "latency")
        .set("transport", "shm")
        .set("bytes", bytes)
        .set("seconds", shm);
    lat.add_row({format("%zu KiB", bytes >> 10), format("%.2f", sock * 1e6),
                 format("%.2f", shm * 1e6), format("%.1fx", sock / shm)});
  }
  lat.print();
  std::printf("\n");

  TablePrinter bw({"payload", "socket GiB/s", "shm GiB/s", "speedup"});
  for (const std::size_t bytes : sizes) {
    const std::size_t total = stream_mb << 20;
    const double sock = socket_bandwidth(bytes, total);
    const double shm = shm_bandwidth(bytes, total);
    json.add_row()
        .set("leg", "bandwidth")
        .set("transport", "socket")
        .set("bytes", bytes)
        .set("gib_per_s", sock);
    json.add_row()
        .set("leg", "bandwidth")
        .set("transport", "shm")
        .set("bytes", bytes)
        .set("gib_per_s", shm);
    bw.add_row({format("%zu KiB", bytes >> 10), format("%.2f", sock),
                format("%.2f", shm), format("%.1fx", shm / sock)});
  }
  bw.print();

  // End-to-end: the same slab, the same step count, the two carriers.
  const SlabLeg socket_leg =
      run_slab(dist::HaloTransport::kSocket, ranks, scale, steps);
  const SlabLeg shm_leg =
      run_slab(dist::HaloTransport::kShm, ranks, scale, steps);
  json.add_row()
      .set("leg", "slab")
      .set("transport", "socket")
      .set("atoms", socket_leg.atoms)
      .set("halo_s", socket_leg.halo_s_per_step)
      .set("overlap_s", socket_leg.overlap_s_per_step)
      .set("steps_per_s", socket_leg.steps_per_s);
  json.add_row()
      .set("leg", "slab")
      .set("transport", "shm")
      .set("atoms", shm_leg.atoms)
      .set("halo_s", shm_leg.halo_s_per_step)
      .set("overlap_s", shm_leg.overlap_s_per_step)
      .set("steps_per_s", shm_leg.steps_per_s);

  std::printf(
      "\nEnd-to-end Cu slab (scale %d, %s atoms, ranks:%d, %ld steps):\n"
      "  socket: halo %.3g s/step (overlap %.3g), %.1f steps/s\n"
      "  shm:    halo %.3g s/step (overlap %.3g), %.1f steps/s\n"
      "  halo speedup: %.1fx\n",
      scale, with_commas(shm_leg.atoms).c_str(), ranks, steps,
      socket_leg.halo_s_per_step, socket_leg.overlap_s_per_step,
      socket_leg.steps_per_s, shm_leg.halo_s_per_step,
      shm_leg.overlap_s_per_step, shm_leg.steps_per_s,
      shm_leg.halo_s_per_step > 0.0
          ? socket_leg.halo_s_per_step / shm_leg.halo_s_per_step
          : 0.0);

  const std::string path = json.write();
  std::printf("\nMachine-readable results: %s\n", path.c_str());
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
