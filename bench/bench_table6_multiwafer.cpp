/// \file bench_table6_multiwafer.cpp
/// Reproduces paper Table VI: modeled multi-wafer weak scaling as a
/// function of ghost-region size, for interior fractions of 20% ("low
/// utilization") and 80% ("high utilization"). Between ~92% and ~99% of
/// single-wafer performance is preserved.

#include <cstdio>

#include "perf/multiwafer.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main() {
  using namespace wsmd;

  std::printf(
      "Table VI — modeled multi-wafer performance vs ghost region size\n"
      "(omega = 1.2 Tb/s, tau = 2 us). Paper values in parentheses.\n\n");

  struct Row {
    const char* el;
    perf::MultiWaferParams params;
    double paper_low_steps, paper_low_frac;
    double paper_high_steps, paper_high_frac;
  };
  const Row rows[] = {
      {"Cu", {283, 10, 1.94, 9.41}, 105152, 0.99, 99239, 0.93},
      {"W", {317, 8, 2.02, 10.4}, 95281, 0.99, 91743, 0.95},
      {"Ta", {317, 8, 1.39, 3.65}, 269214, 0.98, 251046, 0.92},
  };

  TablePrinter t({"El", "X", "Z", "Natom", "rc/rl", "twall us",
                  "util", "lambda", "k", "steps/s", "perf",
                  "(paper steps/s)", "(paper perf)"});
  for (const Row& r : rows) {
    for (const double target : {0.20, 0.80}) {
      const auto out = perf::multiwafer_performance(r.params, target);
      const bool low = target < 0.5;
      t.add_row({r.el, format("%d", r.params.x_extent),
                 format("%d", r.params.z_extent), with_commas(out.natom),
                 format("%.2f", r.params.rcut_over_rlattice),
                 format("%.2f", r.params.twall_us),
                 low ? "20%" : "80%", format("%d", out.lambda),
                 format("%d", out.k),
                 with_commas(static_cast<long long>(out.steps_per_second)),
                 format("%.0f%%", 100.0 * out.performance_fraction),
                 with_commas(static_cast<long long>(
                     low ? r.paper_low_steps : r.paper_high_steps)),
                 format("%.0f%%", 100.0 * (low ? r.paper_low_frac
                                               : r.paper_high_frac))});
    }
  }
  t.print();

  std::printf(
      "\nDeployment estimate (paper Sec. VI-C): a 64-node WSE cluster\n"
      "simulates Ta systems of ");
  const auto low = perf::multiwafer_performance({317, 8, 1.39, 3.65}, 0.20);
  const auto high = perf::multiwafer_performance({317, 8, 1.39, 3.65}, 0.80);
  std::printf(
      "%.0fM (20%% interior) or %.0fM (80%%) atoms\nat %s / %s steps/s.\n",
      64.0 * low.ninterior / 1e6, 64.0 * high.ninterior / 1e6,
      with_commas(static_cast<long long>(low.steps_per_second)).c_str(),
      with_commas(static_cast<long long>(high.steps_per_second)).c_str());
  return 0;
}
