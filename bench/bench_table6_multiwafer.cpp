/// \file bench_table6_multiwafer.cpp
/// Reproduces paper Table VI: modeled multi-wafer weak scaling as a
/// function of ghost-region size, for interior fractions of 20% ("low
/// utilization") and 80% ("high utilization"). Between ~92% and ~99% of
/// single-wafer performance is preserved.
///
/// Next to the model projection, `--execute=M` runs a real executed leg:
/// the same Cu slab geometry on the `ranks:M` multi-process backend
/// (dist::DistributedEngine) with telemetry armed, measuring the actual
/// ghost-halo exchange seconds and joining them against the cost model's
/// halo_exchange_cycles prediction — the modeled-vs-executed validation
/// the multi-wafer projection otherwise lacks.
///
///   bench_table6_multiwafer [--execute=M] [--steps=K] [--scale=S]
///                           [--replicate=X,Y,Z] [--threads=N]
///                           [--timeout=SECONDS] [--transport=shm|socket]
///
/// --scale divides the paper slab's x-y replication (default 16);
/// --replicate builds an explicit open-boundary Cu cell grid instead
/// (e.g. --replicate=100,100,50 is a 2,000,000-atom slab). Results land
/// in BENCH_table6_multiwafer.json: the deterministic modeled rows are
/// row-gated by the bench baseline, and the executed leg's
/// halo-seconds-vs-model ratio is sanity-banded for the socket carrier
/// (a socket transport can never beat the modeled wafer fabric, so
/// executed/modeled >= 1 there; the shm tier can and does go below the
/// model, so the gate keys on the recorded transport).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "dist/distributed_engine.hpp"
#include "eam/tabulated.hpp"
#include "eam/zhou.hpp"
#include "lattice/lattice.hpp"
#include "perf/multiwafer.hpp"
#include "telemetry/telemetry.hpp"
#include "util/bench_json.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace {

using namespace wsmd;

struct ExecutedLeg {
  std::size_t atoms = 0;
  long steps = 0;
  double wall_seconds = 0.0;
  double measured_halo_s = 0.0;  ///< dist.halo_pack + exchange + unpack
  double modeled_halo_s = 0.0;   ///< halo_exchange_cycles prediction
};

ExecutedLeg run_executed(int ranks, int threads, long steps, int scale,
                         const int* replicate, int timeout_s,
                         dist::HaloTransport transport) {
  const auto p = eam::zhou_parameters("Cu");
  lattice::Structure slab;
  if (replicate != nullptr) {
    slab = lattice::replicate(
        lattice::UnitCell::of(p.structure, p.lattice_constant()), replicate[0],
        replicate[1], replicate[2]);
  } else {
    slab = lattice::paper_slab("Cu", scale);
  }
  auto analytic = std::make_shared<eam::ZhouEam>("Cu", p.paper_cutoff());
  auto pot = std::make_shared<eam::TabulatedEam>(
      eam::TabulatedEam::from_potential(*analytic, 2000, 2000));

  dist::DistributedConfig cfg;
  cfg.wse.mapping.cell_size = p.lattice_constant();
  cfg.ranks = ranks;
  cfg.threads = threads;
  if (timeout_s > 0) cfg.step_timeout_ms = timeout_s * 1000;
  cfg.transport = transport;
  dist::DistributedEngine engine(slab, pot, cfg);
  Rng rng(12345);
  engine.thermalize(290.0, rng);

  telemetry::begin_session();
  const auto t0 = std::chrono::steady_clock::now();
  for (long k = 0; k < steps; ++k) engine.step();
  const auto t1 = std::chrono::steady_clock::now();
  telemetry::end_session();

  ExecutedLeg leg;
  leg.atoms = engine.atom_count();
  leg.steps = steps;
  leg.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  leg.measured_halo_s = telemetry::span_total_seconds("dist.halo_pack") +
                        telemetry::span_total_seconds("dist.halo_exchange") +
                        telemetry::span_total_seconds("dist.halo_unpack");
  const auto modeled = engine.modeled_phase_cost();
  leg.modeled_halo_s = modeled.valid ? modeled.halo_seconds : 0.0;
  return leg;
}

}  // namespace

int main(int argc, char** argv) try {
  int execute_ranks = 0;
  int threads = 1;
  long steps = 10;
  int scale = 16;
  int timeout_s = 0;  // 0 = DistributedConfig default
  int replicate[3] = {0, 0, 0};
  bool have_replicate = false;
  std::string transport = "shm";
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg.rfind("--execute=", 0) == 0) {
      execute_ranks = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--steps=", 0) == 0) {
      steps = std::atol(arg.c_str() + 8);
    } else if (arg.rfind("--timeout=", 0) == 0) {
      timeout_s = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--scale=", 0) == 0) {
      scale = std::atoi(arg.c_str() + 8);
    } else if (arg.rfind("--transport=", 0) == 0) {
      transport = arg.substr(12);
      if (transport != "shm" && transport != "socket") {
        std::fprintf(stderr, "bad --transport (want shm|socket)\n");
        return 2;
      }
    } else if (arg.rfind("--replicate=", 0) == 0) {
      if (std::sscanf(arg.c_str() + 12, "%d,%d,%d", &replicate[0],
                      &replicate[1], &replicate[2]) != 3 ||
          replicate[0] < 1 || replicate[1] < 1 || replicate[2] < 1) {
        std::fprintf(stderr, "bad --replicate (want X,Y,Z)\n");
        return 2;
      }
      have_replicate = true;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return 2;
    }
  }

  std::printf(
      "Table VI — modeled multi-wafer performance vs ghost region size\n"
      "(omega = 1.2 Tb/s, tau = 2 us). Paper values in parentheses.\n\n");

  struct Row {
    const char* el;
    perf::MultiWaferParams params;
    double paper_low_steps, paper_low_frac;
    double paper_high_steps, paper_high_frac;
  };
  const Row rows[] = {
      {"Cu", {283, 10, 1.94, 9.41}, 105152, 0.99, 99239, 0.93},
      {"W", {317, 8, 2.02, 10.4}, 95281, 0.99, 91743, 0.95},
      {"Ta", {317, 8, 1.39, 3.65}, 269214, 0.98, 251046, 0.92},
  };

  BenchJson json("table6_multiwafer");

  TablePrinter t({"El", "X", "Z", "Natom", "rc/rl", "twall us",
                  "util", "lambda", "k", "steps/s", "perf",
                  "(paper steps/s)", "(paper perf)"});
  for (const Row& r : rows) {
    for (const double target : {0.20, 0.80}) {
      const auto out = perf::multiwafer_performance(r.params, target);
      const bool low = target < 0.5;
      json.add_row()
          .set("element", r.el)
          .set("util", low ? "20%" : "80%")
          .set("steps_per_s", out.steps_per_second)
          .set("performance_fraction", out.performance_fraction)
          .set("atoms", static_cast<long long>(out.natom));
      t.add_row({r.el, format("%d", r.params.x_extent),
                 format("%d", r.params.z_extent), with_commas(out.natom),
                 format("%.2f", r.params.rcut_over_rlattice),
                 format("%.2f", r.params.twall_us),
                 low ? "20%" : "80%", format("%d", out.lambda),
                 format("%d", out.k),
                 with_commas(static_cast<long long>(out.steps_per_second)),
                 format("%.0f%%", 100.0 * out.performance_fraction),
                 with_commas(static_cast<long long>(
                     low ? r.paper_low_steps : r.paper_high_steps)),
                 format("%.0f%%", 100.0 * (low ? r.paper_low_frac
                                               : r.paper_high_frac))});
    }
  }
  t.print();

  if (execute_ranks > 0) {
    const ExecutedLeg leg = run_executed(
        execute_ranks, threads, steps, scale,
        have_replicate ? replicate : nullptr, timeout_s,
        transport == "socket" ? dist::HaloTransport::kSocket
                              : dist::HaloTransport::kShm);
    // Per-step halo seconds: the model predicts one step's halo exchange;
    // the measurement summed `steps` of them across all ranks.
    const double measured_halo_per_step =
        leg.measured_halo_s / static_cast<double>(leg.steps);
    const double ratio = leg.modeled_halo_s > 0.0
                             ? measured_halo_per_step / leg.modeled_halo_s
                             : 0.0;
    json.meta().set("executed_ranks", execute_ranks);
    json.meta().set("transport", transport);
    json.add_row()
        .set("leg", "modeled")
        .set("ranks", execute_ranks)
        .set("atoms", leg.atoms)
        .set("halo_s", leg.modeled_halo_s);
    json.add_row()
        .set("leg", "executed")
        .set("ranks", execute_ranks)
        .set("atoms", leg.atoms)
        .set("halo_s", measured_halo_per_step)
        .set("steps_per_s", leg.wall_seconds > 0.0
                                ? static_cast<double>(leg.steps) /
                                      leg.wall_seconds
                                : 0.0)
        .set("modeled_vs_measured_halo_ratio", ratio);
    std::printf(
        "\nExecuted leg — Cu slab on the ranks:%d backend (%zu atoms,\n"
        "%ld steps, %d shard thread(s)/rank, %s halo transport): halo\n"
        "exchange measured %.3g s/step vs modeled %.3g s/step (x%.2f vs\n"
        "the modeled 0.94 GHz wafer fabric), throughput %.1f steps/s.\n",
        execute_ranks, leg.atoms, leg.steps, threads, transport.c_str(),
        measured_halo_per_step,
        leg.modeled_halo_s, ratio,
        leg.wall_seconds > 0.0
            ? static_cast<double>(leg.steps) / leg.wall_seconds
            : 0.0);
  }

  const std::string path = json.write();
  std::printf("\nMachine-readable results: %s\n", path.c_str());

  std::printf(
      "\nDeployment estimate (paper Sec. VI-C): a 64-node WSE cluster\n"
      "simulates Ta systems of ");
  const auto low = perf::multiwafer_performance({317, 8, 1.39, 3.65}, 0.20);
  const auto high = perf::multiwafer_performance({317, 8, 1.39, 3.65}, 0.80);
  std::printf(
      "%.0fM (20%% interior) or %.0fM (80%%) atoms\nat %s / %s steps/s.\n",
      64.0 * low.ninterior / 1e6, 64.0 * high.ninterior / 1e6,
      with_commas(static_cast<long long>(low.steps_per_second)).c_str(),
      with_commas(static_cast<long long>(high.steps_per_second)).c_str());
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
