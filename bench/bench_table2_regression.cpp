/// \file bench_table2_regression.cpp
/// Reproduces paper Table II: the linear regression of time per timestep,
///     twall = A * ncandidate + B * ninteraction + C,
/// from a controlled parameter sweep (paper Sec. IV-B test type 2).
///
/// Exactly like the paper's controlled runs: atoms sit on a regular 2-D
/// grid (one per core), the timestep constant is zero so they hold
/// position, a neighborhood-size parameter (b) sets the candidate count
/// and the interaction cutoff sets the interaction count. Per-worker cycle
/// counters are averaged over the array per configuration, and the sweep
/// is fit by ordinary least squares.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/wse_md.hpp"
#include "eam/lennard_jones.hpp"
#include "lattice/lattice.hpp"
#include "perf/workload.hpp"
#include "util/stats.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"
#include "wse/cost_model.hpp"

namespace {

using namespace wsmd;

/// Regular 2-D grid of atoms, spacing s, one atomic layer.
lattice::Structure grid_config(int n, double spacing) {
  lattice::Structure out;
  out.box = Box({-spacing, -spacing, -spacing},
                {n * spacing + spacing, n * spacing + spacing, spacing});
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      out.positions.push_back({i * spacing, j * spacing, 0.0});
      out.types.push_back(0);
    }
  }
  return out;
}

}  // namespace

int main() {
  std::printf(
      "Table II — linear regression of time per timestep from a controlled\n"
      "sweep over (ncandidate, ninteraction). Configurations: regular 2-D\n"
      "grids, zero timestep constant, b in {2..7}, cutoff sweeping the\n"
      "interaction count.\n\n");

  const double spacing = 3.0;
  const int n = 20;

  std::vector<double> cand, inter, twall_ns;
  const auto model = wse::CostModel::paper_baseline();

  for (int b = 2; b <= 7; ++b) {
    for (double rcut_cells : {1.2, 1.8, 2.4, 3.2, 4.2}) {
      const double rcut = rcut_cells * spacing;
      if (rcut > b * spacing) continue;  // neighborhood must cover cutoff
      auto pot = std::make_shared<eam::LennardJones>(
          eam::LennardJones::Species{"X", 50.0, 0.05, 2.2}, rcut);

      core::WseMdConfig cfg;
      cfg.dt = 0.0;  // atoms hold their positions
      cfg.mapping.cell_size = spacing;
      cfg.b_override = b;
      cfg.cost_model = model;
      core::WseMd engine(grid_config(n, spacing), pot, cfg);

      core::WseStepStats stats;
      for (int k = 0; k < 5; ++k) stats = engine.step();
      cand.push_back(stats.mean_candidates);
      inter.push_back(stats.mean_interactions);
      twall_ns.push_back(stats.mean_cycles / model.clock_ghz());
    }
  }

  const LinearFit fit = fit_two_regressors_with_intercept(cand, inter, twall_ns);

  TablePrinter t({"Coefficient", "This work", "Paper"});
  t.add_row({"Per candidate (A)", format("%.1f ns", fit.coefficients[0]),
             "26.6 ns"});
  t.add_row({"Per interaction (B)", format("%.1f ns", fit.coefficients[1]),
             "71.4 ns"});
  t.add_row({"Fixed (C)", format("%.1f ns", fit.coefficients[2]),
             "574.0 ns"});
  t.add_row({"r^2", format("%.6f", fit.r_squared), "0.9998"});
  t.print();

  std::printf("\nSweep: %zu configurations; candidates %.0f..%.0f, "
              "interactions %.1f..%.1f per worker.\n",
              cand.size(),
              *std::min_element(cand.begin(), cand.end()),
              *std::max_element(cand.begin(), cand.end()),
              *std::min_element(inter.begin(), inter.end()),
              *std::max_element(inter.begin(), inter.end()));
  std::printf(
      "Note: per-worker cycle counts come from the calibrated cost model\n"
      "driven by *simulated* per-worker candidate/interaction counters\n"
      "(clipped neighborhoods at grid edges give the sweep its spread);\n"
      "the regression validates the paper's fitting methodology and the\n"
      "sweep machinery end to end. See EXPERIMENTS.md.\n");
  return 0;
}
