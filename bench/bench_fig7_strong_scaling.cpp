/// \file bench_fig7_strong_scaling.cpp
/// Reproduces paper Fig. 7: (a) timesteps/s versus node count for the WSE
/// point and the Frontier/Quartz scaling curves; (b) timesteps/s versus
/// timesteps/Joule; (c) WSE-normalized speedup and energy-efficiency
/// factors (the Pareto plot). Series print in CSV-like blocks, one per
/// sub-figure.
///
/// Additionally runs a *host-side* strong-scaling sweep of the sharded
/// wafer emulator (engine::ShardedWafer) and emits the results to
/// BENCH_fig7_strong_scaling.json so the perf trajectory is tracked across
/// PRs.
///
///   bench_fig7_strong_scaling [--threads=1,2,4] [--scale=8] [--steps=4]
///
/// --scale divides the paper's 801,792-atom slab replication (scale=1 is
/// the full problem; sharding makes such sizes reachable on a host).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "baseline/platform_model.hpp"
#include "eam/tabulated.hpp"
#include "eam/zhou.hpp"
#include "engine/sharded_wafer.hpp"
#include "lattice/lattice.hpp"
#include "perf/workload.hpp"
#include "util/bench_json.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace {

struct Options {
  std::vector<int> threads = {1, 2, 4};
  int scale = 8;
  int steps = 4;
};

Options parse_options(int argc, char** argv) {
  Options opt;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg.rfind("--threads=", 0) == 0) {
      opt.threads.clear();
      for (const std::string& tok : wsmd::split(arg.substr(10), ',')) {
        opt.threads.push_back(std::atoi(tok.c_str()));
      }
    } else if (arg.rfind("--scale=", 0) == 0) {
      opt.scale = std::atoi(arg.c_str() + 8);
    } else if (arg.rfind("--steps=", 0) == 0) {
      opt.steps = std::atoi(arg.c_str() + 8);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return opt;
}

/// Host strong scaling: same Ta slab, growing thread counts; reports host
/// steps/s (what sharding buys the emulator) next to the modeled wafer
/// accounting (which is decomposition-invariant).
void run_host_scaling(const Options& opt) {
  using namespace wsmd;
  std::printf(
      "\nHost strong scaling — sharded wafer emulator (Ta slab, scale %d,"
      "\n%d measured steps per point; modeled wafer stats are"
      " thread-invariant).\n\n",
      opt.scale, opt.steps);

  const auto p = eam::zhou_parameters("Ta");
  const auto slab = lattice::paper_slab("Ta", opt.scale);
  auto analytic = std::make_shared<eam::ZhouEam>("Ta", p.paper_cutoff());
  auto pot = std::make_shared<eam::TabulatedEam>(
      eam::TabulatedEam::from_potential(*analytic, 2000, 2000));

  BenchJson json("fig7_strong_scaling");
  json.meta()
      .set("element", "Ta")
      .set("atoms", slab.size())
      .set("scale", opt.scale)
      .set("steps", opt.steps);

  TablePrinter t({"Threads", "Host steps/s", "Speedup", "Modeled steps/s",
                  "Max cycles", "Halo cycles/step"});
  double base_rate = 0.0;
  for (const int threads : opt.threads) {
    engine::ShardedWaferConfig cfg;
    cfg.wse.mapping.cell_size = p.lattice_constant();
    cfg.threads = threads;
    engine::ShardedWafer engine(slab, pot, cfg);
    Rng rng(12345);
    engine.thermalize(290.0, rng);
    engine.step();  // warm-up: first-touch allocation of the workspace

    const auto t0 = std::chrono::steady_clock::now();
    engine.run(opt.steps);
    const auto t1 = std::chrono::steady_clock::now();
    const double seconds = std::chrono::duration<double>(t1 - t0).count();
    const double host_rate = opt.steps / seconds;
    if (base_rate == 0.0) base_rate = host_rate;

    const auto& stats = engine.last_step_stats();
    const double modeled_rate = 1.0 / stats.wall_seconds;
    // Report the pool's resolved size: threads=0 means "auto" and would
    // otherwise mislabel the perf-trend rows.
    t.add_row({format("%d", engine.threads()), format("%.3f", host_rate),
               format("%.2fx", host_rate / base_rate),
               with_commas(static_cast<long long>(modeled_rate)),
               format("%.0f", stats.max_cycles),
               format("%.0f", engine.halo_cycles_per_step())});

    json.add_row()
        .set("threads", engine.threads())
        .set("host_steps_per_s", host_rate)
        .set("speedup", host_rate / base_rate)
        .set("modeled_steps_per_s", modeled_rate)
        .set("max_cycles", stats.max_cycles)
        .set("halo_cycles_per_step", engine.halo_cycles_per_step());
  }
  t.print();
  const std::string path = json.write();
  std::printf("\nMachine-readable results: %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace wsmd;
  const Options opt = parse_options(argc, argv);

  std::printf(
      "Fig. 7a — timesteps per second vs node count (801,792 atoms).\n\n");
  for (const char* el : {"Ta", "Cu", "W"}) {
    const baseline::FrontierModel gpu(el);
    const baseline::QuartzModel cpu(el);
    const auto wse = baseline::wse_point(el);

    std::printf("# %s: series nodes,steps_per_second\n", el);
    std::printf("Frontier(GPU):");
    for (const auto& p : gpu.sweep()) {
      std::printf(" %.3g,%.0f", p.nodes, p.steps_per_second);
    }
    std::printf("\nQuartz(CPU):");
    for (const auto& p : cpu.sweep()) {
      std::printf(" %.3g,%.0f", p.nodes, p.steps_per_second);
    }
    std::printf("\nCS-2(WSE): 1,%.0f\n", wse.steps_per_second);

    const double best_gpu = gpu.best_steps_per_second();
    const double best_cpu = cpu.best_steps_per_second();
    std::printf("%s speedups: %.0fx vs best GPU, %.0fx vs best CPU "
                "(paper: %s)\n\n",
                el, wse.steps_per_second / best_gpu,
                wse.steps_per_second / best_cpu,
                el == std::string("Ta") ? "179x / 55x"
                : el == std::string("Cu") ? "109x / 34x" : "96x / 26x");
  }

  std::printf(
      "Fig. 7b — timesteps per second vs timesteps per Joule.\n\n");
  for (const char* el : {"Ta", "Cu", "W"}) {
    const baseline::FrontierModel gpu(el);
    const baseline::QuartzModel cpu(el);
    const auto wse = baseline::wse_point(el);
    std::printf("# %s: series steps_per_joule,steps_per_second\n", el);
    std::printf("Frontier(GPU):");
    for (const auto& p : gpu.sweep()) {
      std::printf(" %.3g,%.0f", p.steps_per_joule, p.steps_per_second);
    }
    std::printf("\nQuartz(CPU):");
    for (const auto& p : cpu.sweep()) {
      std::printf(" %.3g,%.0f", p.steps_per_joule, p.steps_per_second);
    }
    std::printf("\nCS-2(WSE): %.3g,%.0f\n\n", wse.steps_per_joule,
                wse.steps_per_second);
  }

  std::printf(
      "Fig. 7c — relative energy efficiency and performance vs the WSE\n"
      "(WSE normalized to 1,1; larger factors = WSE advantage).\n\n");
  TablePrinter t({"Element", "Platform", "Nodes", "WSE speedup factor",
                  "WSE energy factor"});
  for (const char* el : {"Ta", "Cu", "W"}) {
    const auto wse = baseline::wse_point(el);
    const baseline::FrontierModel gpu(el);
    const baseline::QuartzModel cpu(el);
    for (double gcds : {1.0, 8.0, 32.0, 256.0}) {
      const auto p = gpu.at(gcds);
      t.add_row({el, "Frontier", format("%.3g", p.nodes),
                 format("%.1f", wse.steps_per_second / p.steps_per_second),
                 format("%.1f", wse.steps_per_joule / p.steps_per_joule)});
    }
    for (double nodes : {1.0, 64.0, 400.0, 1600.0}) {
      const auto p = cpu.at(nodes);
      t.add_row({el, "Quartz", format("%.3g", p.nodes),
                 format("%.1f", wse.steps_per_second / p.steps_per_second),
                 format("%.1f", wse.steps_per_joule / p.steps_per_joule)});
    }
  }
  t.print();
  std::printf(
      "\nEvery factor exceeds 1 on both axes: the WSE Pareto-dominates\n"
      "(paper Fig. 7c).\n");

  run_host_scaling(opt);
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
