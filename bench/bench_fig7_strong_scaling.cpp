/// \file bench_fig7_strong_scaling.cpp
/// Reproduces paper Fig. 7: (a) timesteps/s versus node count for the WSE
/// point and the Frontier/Quartz scaling curves; (b) timesteps/s versus
/// timesteps/Joule; (c) WSE-normalized speedup and energy-efficiency
/// factors (the Pareto plot). Series print in CSV-like blocks, one per
/// sub-figure.

#include <cstdio>

#include "baseline/platform_model.hpp"
#include "perf/workload.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main() {
  using namespace wsmd;

  std::printf(
      "Fig. 7a — timesteps per second vs node count (801,792 atoms).\n\n");
  for (const char* el : {"Ta", "Cu", "W"}) {
    const baseline::FrontierModel gpu(el);
    const baseline::QuartzModel cpu(el);
    const auto wse = baseline::wse_point(el);

    std::printf("# %s: series nodes,steps_per_second\n", el);
    std::printf("Frontier(GPU):");
    for (const auto& p : gpu.sweep()) {
      std::printf(" %.3g,%.0f", p.nodes, p.steps_per_second);
    }
    std::printf("\nQuartz(CPU):");
    for (const auto& p : cpu.sweep()) {
      std::printf(" %.3g,%.0f", p.nodes, p.steps_per_second);
    }
    std::printf("\nCS-2(WSE): 1,%.0f\n", wse.steps_per_second);

    const double best_gpu = gpu.best_steps_per_second();
    const double best_cpu = cpu.best_steps_per_second();
    std::printf("%s speedups: %.0fx vs best GPU, %.0fx vs best CPU "
                "(paper: %s)\n\n",
                el, wse.steps_per_second / best_gpu,
                wse.steps_per_second / best_cpu,
                el == std::string("Ta") ? "179x / 55x"
                : el == std::string("Cu") ? "109x / 34x" : "96x / 26x");
  }

  std::printf(
      "Fig. 7b — timesteps per second vs timesteps per Joule.\n\n");
  for (const char* el : {"Ta", "Cu", "W"}) {
    const baseline::FrontierModel gpu(el);
    const baseline::QuartzModel cpu(el);
    const auto wse = baseline::wse_point(el);
    std::printf("# %s: series steps_per_joule,steps_per_second\n", el);
    std::printf("Frontier(GPU):");
    for (const auto& p : gpu.sweep()) {
      std::printf(" %.3g,%.0f", p.steps_per_joule, p.steps_per_second);
    }
    std::printf("\nQuartz(CPU):");
    for (const auto& p : cpu.sweep()) {
      std::printf(" %.3g,%.0f", p.steps_per_joule, p.steps_per_second);
    }
    std::printf("\nCS-2(WSE): %.3g,%.0f\n\n", wse.steps_per_joule,
                wse.steps_per_second);
  }

  std::printf(
      "Fig. 7c — relative energy efficiency and performance vs the WSE\n"
      "(WSE normalized to 1,1; larger factors = WSE advantage).\n\n");
  TablePrinter t({"Element", "Platform", "Nodes", "WSE speedup factor",
                  "WSE energy factor"});
  for (const char* el : {"Ta", "Cu", "W"}) {
    const auto wse = baseline::wse_point(el);
    const baseline::FrontierModel gpu(el);
    const baseline::QuartzModel cpu(el);
    for (double gcds : {1.0, 8.0, 32.0, 256.0}) {
      const auto p = gpu.at(gcds);
      t.add_row({el, "Frontier", format("%.3g", p.nodes),
                 format("%.1f", wse.steps_per_second / p.steps_per_second),
                 format("%.1f", wse.steps_per_joule / p.steps_per_joule)});
    }
    for (double nodes : {1.0, 64.0, 400.0, 1600.0}) {
      const auto p = cpu.at(nodes);
      t.add_row({el, "Quartz", format("%.3g", p.nodes),
                 format("%.1f", wse.steps_per_second / p.steps_per_second),
                 format("%.1f", wse.steps_per_joule / p.steps_per_joule)});
    }
  }
  t.print();
  std::printf(
      "\nEvery factor exceeds 1 on both axes: the WSE Pareto-dominates\n"
      "(paper Fig. 7c).\n");
  return 0;
}
