/// \file bench_observables.cpp
/// Observable sampling cost at production slab sizes: RDF and CSP (defect
/// analysis) on a ~200k-atom Cu slab.
///
/// The point of the streaming-observables subsystem is that analysis must
/// scale like the stencil sweep does — a probe that costs minutes per
/// sample would put the paper's Fig. 2 science out of reach again. Both
/// probes ride the shared md::CellList, so one sample is O(N); this bench
/// pins that claim with wall-clock numbers and emits them as
/// BENCH_observables.json for the CI bench-regression gate (which warns on
/// deviation — shared-runner clocks are noisy — and fails only when a
/// probe row disappears).
///
///   bench_observables [--atoms=N]
///
/// --atoms targets the slab size (default 200,000; the paper slab aspect
/// ratio is kept, thickness fixed at 6 unit cells like Table I).

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "eam/zhou.hpp"
#include "lattice/lattice.hpp"
#include "md/analysis.hpp"
#include "md/cell_list.hpp"
#include "obs/factory.hpp"
#include "obs/rdf.hpp"
#include "util/bench_json.hpp"
#include "util/string_util.hpp"

namespace {

using namespace wsmd;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t target_atoms = 200000;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--atoms=", 8) == 0) {
      target_atoms = static_cast<std::size_t>(std::atol(argv[i] + 8));
    } else {
      std::fprintf(stderr, "usage: bench_observables [--atoms=N]\n");
      return 1;
    }
  }

  const auto params = eam::zhou_parameters("Cu");
  const double a0 = params.lattice_constant();
  // Thin slab, paper Table I thickness (6 cells), near-square in x-y.
  const int nz = 6;
  const int nx = static_cast<int>(std::lround(
      std::sqrt(static_cast<double>(target_atoms) / (4.0 * nz))));
  const auto cell = lattice::UnitCell::fcc(a0);
  const auto slab = lattice::replicate(cell, nx, nx, nz);
  std::printf("observable cost @ %s atoms (Cu slab %d x %d x %d)\n",
              with_commas(static_cast<long long>(slab.size())).c_str(), nx,
              nx, nz);

  BenchJson bench("observables");
  bench.meta()
      .set("element", "Cu")
      .set("atoms", slab.size())
      .set("nx", nx)
      .set("nz", nz);

  // RDF: one cell-list histogram sample at the default (1.8 a0) range.
  {
    obs::RdfProbe::Config config;
    config.rcut = 1.8 * a0;
    config.bins = 200;
    config.path = "bench_observables.rdf.csv";
    obs::RdfProbe probe(config);
    obs::Frame frame;
    frame.box = &slab.box;
    frame.positions = &slab.positions;
    const auto t0 = std::chrono::steady_clock::now();
    probe.sample(frame);
    const double rdf_s = seconds_since(t0);
    probe.finish();
    const double rate = static_cast<double>(slab.size()) / rdf_s;
    std::printf("  rdf sample:  %8.3f s  (%.3g atoms/s, rcut %.3g A)\n",
                rdf_s, rate, config.rcut);
    bench.add_row()
        .set("probe", "rdf")
        .set("seconds", rdf_s)
        .set("atoms_per_s", rate);
    std::remove(config.path.c_str());
  }

  // CSP: the full defect analysis (cell list + greedy opposite-bond
  // pairing), the kernel behind the defect/grain-boundary probe.
  {
    const auto t0 = std::chrono::steady_clock::now();
    const auto analysis =
        md::analyze_structure(slab.box, slab.positions, 1.2 * a0, 12);
    const double csp_s = seconds_since(t0);
    std::size_t defects = 0;
    for (const bool d : md::defective_atoms(analysis, 1.0)) {
      if (d) ++defects;
    }
    const double rate = static_cast<double>(slab.size()) / csp_s;
    std::printf("  csp sample:  %8.3f s  (%.3g atoms/s, %zu surface/defect "
                "atoms)\n",
                csp_s, rate, defects);
    bench.add_row()
        .set("probe", "csp")
        .set("seconds", csp_s)
        .set("atoms_per_s", rate);
  }

  const auto path = bench.write();
  std::printf("  json -> %s\n", path.c_str());
  return 0;
}
