/// \file bench_lj_smallsys.cpp
/// Context for paper Sec. II-B: the 1,000-atom Lennard-Jones system that
/// mimics the strong-scaling limit. Published production-code rates:
/// < 10k steps/s on an NVIDIA V100 (kernel-launch bound), ~25k steps/s on
/// a dual-socket Skylake with 36 MPI ranks. This bench actually *runs*
/// 1k-atom LJ on this host with the reference engine and compares, then
/// shows the modeled WSE rate for the same system (one atom per core).

#include <chrono>
#include <cstdio>
#include <memory>

#include "baseline/platform_model.hpp"
#include "eam/lennard_jones.hpp"
#include "lattice/lattice.hpp"
#include "md/simulation.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"
#include "wse/cost_model.hpp"

int main() {
  using namespace wsmd;

  std::printf(
      "Sec. II-B context — 1k-atom LJ system (the strong-scaling mimic).\n\n");

  // ~1k atoms: 6x6x7 FCC = 1008.
  auto lj = std::make_shared<eam::LennardJones>(
      eam::LennardJones::Species{"Ar", 39.948, 0.0104, 3.4}, 8.5);
  const auto s = lattice::replicate(lattice::UnitCell::fcc(5.26), 6, 6, 7, 0,
                                    {true, true, true});
  md::AtomSystem sys(s, lj);
  Rng rng(11);
  sys.thermalize(120.0, rng);
  md::SimulationConfig cfg;
  cfg.dt = 0.002;
  md::Simulation sim(std::move(sys), cfg);
  sim.compute_forces();

  const int steps = 400;
  const auto start = std::chrono::steady_clock::now();
  sim.run(steps);
  const auto stop = std::chrono::steady_clock::now();
  const double secs =
      std::chrono::duration<double>(stop - start).count();
  const double host_rate = steps / secs;

  TablePrinter t({"Platform", "steps/s", "source"});
  t.add_row({"This host (reference engine, serial)",
             with_commas(static_cast<long long>(host_rate)), "measured"});
  for (const auto& ref : baseline::lj_1k_references()) {
    t.add_row({ref.platform,
               with_commas(static_cast<long long>(ref.steps_per_second)),
               ref.source});
  }
  // WSE model: LJ with rcut ~ 2.5 sigma on FCC: ~55 interactions; a b=4
  // neighborhood (80 candidates) covers it at one atom per core.
  const auto model = wse::CostModel::paper_baseline();
  t.add_row({"CS-2 (WSE model, 1 atom/core)",
             with_commas(static_cast<long long>(
                 model.steps_per_second(80, 55))),
             "cost model"});
  t.print();

  std::printf(
      "\nThe point of the paper's Sec. II-B: even for 1k atoms, production\n"
      "codes top out at 1e4-2.5e4 steps/s on conventional hardware, far\n"
      "from the ~1e6 steps/s needed for 100-microsecond timescales. The\n"
      "WSE's per-step time is independent of machine scale.\n");
  return 0;
}
