/// \file bench_fig1_timescale.cpp
/// Reproduces paper Fig. 1: the maximum MD timescale achievable in a
/// 30-day wall-clock run of the 801,792-atom Ta benchmark, for the WSE
/// versus exascale GPU hardware, against the QM / MD / CM regime boxes.

#include <cstdio>

#include "baseline/platform_model.hpp"
#include "perf/timescale.hpp"
#include "perf/workload.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main() {
  using namespace wsmd;

  std::printf(
      "Fig. 1 — maximum achievable MD timescale (30-day runs, 2 fs steps,\n"
      "801,792 Ta atoms). Paper annotations: WSE ~1.3e-3 s, Frontier =\n"
      "WSE/179 ~ 7.2e-6 s; length scale ~7.5e-8 m.\n\n");

  const auto ta = perf::paper_workload("Ta");
  const double wse_rate = ta.measured_steps_per_s;
  const double gpu_rate = baseline::FrontierModel("Ta").best_steps_per_second();
  const double cpu_rate = baseline::QuartzModel("Ta").best_steps_per_second();

  TablePrinter t({"Platform", "steps/s", "simulated time (30 days)",
                  "vs GPU"});
  auto row = [&](const char* name, double rate) {
    const double ts = perf::reachable_timescale_seconds(rate, 2.0, 30.0);
    t.add_row({name, with_commas(static_cast<long long>(rate)),
               format("%.3e s", ts),
               format("%.0fx", rate / gpu_rate)});
  };
  row("CS-2 (WSE)", wse_rate);
  row("Frontier (GPU)", gpu_rate);
  row("Quartz (CPU)", cpu_rate);
  t.print();

  std::printf("\nRegime boxes (typical ranges):\n");
  TablePrinter r({"Method", "Length (m)", "Time (s)"});
  r.add_row({"QM (quantum electronic)", "1e-10 .. 1e-8", "1e-14 .. 1e-10"});
  r.add_row({"MD (molecular dynamics)", "1e-9 .. 1e-5", "1e-12 .. 1e-3"});
  r.add_row({"CM (continuum mechanics)", "1e-6 .. 1e-2", "1e-6 .. 1e2"});
  r.print();

  std::printf("\nBenchmark slab length scale: %.2e m (250 atoms x ~3 A).\n",
              perf::length_scale_meters(250.0, 3.0));
  std::printf(
      "Maximum MD length scale (weak scaling, ~1.2e9 Ta atoms): ~%.0e m.\n",
      perf::length_scale_meters(10000.0, 3.0));
  return 0;
}
