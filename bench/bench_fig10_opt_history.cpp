/// \file bench_fig10_opt_history.cpp
/// Reproduces paper Fig. 10: measured performance of the Cu/W/Ta material
/// simulations after each optimization stage, against the performance-model
/// targets. The first functioning EAM code ran 5.6x slower than the model;
/// Tungsten-level (high-level DSL) changes reached within 2x, and manual
/// assembly edits closed the gap.

#include <cstdio>

#include "perf/workload.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"
#include "wse/cost_model.hpp"

int main() {
  using namespace wsmd;

  std::printf(
      "Fig. 10 — performance across code changes (timesteps/s) with the\n"
      "model targets. Stages marked [asm] are manual assembly edits.\n\n");

  const auto targets = wse::CostModel::paper_baseline();
  double target_rate[3];
  const char* elements[3] = {"Cu", "W", "Ta"};
  for (int i = 0; i < 3; ++i) {
    const auto w = perf::paper_workload(elements[i]);
    target_rate[i] = targets.steps_per_second(w.candidates, w.interactions);
  }

  TablePrinter t({"#", "Code change", "Cu", "W", "Ta", "Ta/target"});
  int stage_no = 0;
  for (const auto& stage : wse::optimization_history()) {
    wse::CostModel m = wse::CostModel::paper_baseline();
    m.factors() = stage.cumulative;
    std::string rates[3];
    double ta_rate = 0.0;
    for (int i = 0; i < 3; ++i) {
      const auto w = perf::paper_workload(elements[i]);
      const double r = m.steps_per_second(w.candidates, w.interactions);
      rates[i] = with_commas(static_cast<long long>(r));
      if (i == 2) ta_rate = r;
    }
    t.add_row({format("%d", stage_no++),
               std::string(stage.assembly_level ? "[asm] " : "") + stage.name,
               rates[0], rates[1], rates[2],
               format("%.0f%%", 100.0 * ta_rate / target_rate[2])});
  }
  t.print();

  std::printf("\nModel targets: Cu %s, W %s, Ta %s timesteps/s.\n",
              with_commas(static_cast<long long>(target_rate[0])).c_str(),
              with_commas(static_cast<long long>(target_rate[1])).c_str(),
              with_commas(static_cast<long long>(target_rate[2])).c_str());
  return 0;
}
