/// \file bench_table3_flops.cpp
/// Reproduces paper Table III: the FLOP accounting of every add, multiply,
/// and other operation in the per-candidate / per-interaction / fixed cost
/// bases, with at-peak run times and component utilizations.

#include <cstdio>
#include <string>

#include "perf/flop_model.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"
#include "wse/cost_model.hpp"

int main() {
  using namespace wsmd;
  const perf::FlopModel m;
  const auto cost = wse::CostModel::paper_baseline();

  std::printf(
      "Table III — FLOP count for all adds, muls, and other (e.g.\n"
      "conversion) steps, converted to theoretical at-peak run time and\n"
      "compared with the measured component time to determine utilization.\n\n");

  TablePrinter t({"Term", "+", "x", "~", "Note"});
  auto basis_name = [](perf::FlopTerm::Basis b) {
    switch (b) {
      case perf::FlopTerm::Basis::Candidate: return "candidate";
      case perf::FlopTerm::Basis::Interaction: return "interaction";
      case perf::FlopTerm::Basis::Fixed: return "fixed";
    }
    return "?";
  };
  (void)basis_name;

  auto emit_block = [&](perf::FlopTerm::Basis basis, const char* label,
                        int ops, double measured_ns) {
    for (const auto& row : m.rows()) {
      if (row.basis != basis) continue;
      t.add_row({row.term, row.adds ? std::to_string(row.adds) : "",
                 row.muls ? std::to_string(row.muls) : "",
                 row.others ? std::to_string(row.others) : "", row.note});
    }
    const double at_peak = m.at_peak_ns(ops);
    t.add_row({format("%s subtotal", label), "", "", "",
               format("%.1f ns / %.1f ns = %.0f%%", at_peak, measured_ns,
                      100.0 * at_peak / measured_ns)});
  };

  emit_block(perf::FlopTerm::Basis::Candidate, "Per Candidate",
             m.per_candidate_ops(), cost.A_ns());
  emit_block(perf::FlopTerm::Basis::Interaction, "Per Interaction",
             m.per_interaction_ops(), cost.B_ns());
  emit_block(perf::FlopTerm::Basis::Fixed, "Fixed", m.fixed_ops(),
             cost.C_ns());
  t.print();

  std::printf(
      "\nPaper reference: per-candidate 5.3/26.6 ns = 20%%, per-interaction\n"
      "21.2/71.4 ns = 30%%, fixed 7.1/574 ns = 1%%.\n");
  return 0;
}
