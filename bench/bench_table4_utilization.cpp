/// \file bench_table4_utilization.cpp
/// Reproduces paper Table IV: fraction of theoretical peak FLOPS achieved
/// by the three platforms on the Cu/W/Ta benchmarks, using the Table III
/// FLOP accounting and the measured (paper) simulation rates.

#include <cstdio>

#include "perf/flop_model.hpp"
#include "perf/workload.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main() {
  using namespace wsmd;
  const perf::FlopModel m;

  std::printf(
      "Table IV — utilization (fraction of peak) for three architectures.\n"
      "Paper values in parentheses.\n\n");

  const perf::Platform platforms[] = {perf::platform_cs2(),
                                      perf::platform_frontier_32gcd(),
                                      perf::platform_quartz_800cpu()};
  const double paper[3][3] = {
      {22.0, 23.0, 20.0},  // CS-2: Cu W Ta
      {0.4, 0.4, 0.2},     // Frontier
      {1.9, 2.5, 1.0},     // Quartz
  };

  TablePrinter t({"Machine", "Chips", "Peak PFLOP/s", "Cu %", "W %", "Ta %"});
  int pi = 0;
  for (const auto& platform : platforms) {
    std::string cells[3];
    int ei = 0;
    for (const char* el : {"Cu", "W", "Ta"}) {
      const auto w = perf::paper_workload(el);
      const double rate = platform.name == "CS-2" ? w.measured_steps_per_s
                          : platform.name == "Frontier"
                              ? w.frontier_steps_per_s
                              : w.quartz_steps_per_s;
      const double u =
          m.utilization(static_cast<double>(w.atoms), w.candidates,
                        w.interactions, rate, platform.peak_pflops);
      cells[ei] = format("%.2f (%.1f)", 100.0 * u, paper[pi][ei]);
      ++ei;
    }
    t.add_row({platform.name, platform.chips,
               format("%.2f", platform.peak_pflops), cells[0], cells[1],
               cells[2]});
    ++pi;
  }
  t.print();
  return 0;
}
