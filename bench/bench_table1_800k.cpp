/// \file bench_table1_800k.cpp
/// Reproduces paper Table I: predicted and measured timesteps/s for the
/// 801,792-atom Cu/W/Ta slabs on the WSE versus Frontier (GPU) and Quartz
/// (CPU).
///
/// "Predicted" uses the calibrated linear cost model at the paper's
/// candidate/interaction counts. "Measured (sim)" runs the functional
/// wafer-scale engine on a scaled-down replica of the same slab geometry
/// (identical thickness, same per-worker workload) and reports the modeled
/// array rate from its per-worker cycle counters — the per-tile cost is
/// size-independent, which Fig. 8's weak-scaling bench demonstrates
/// explicitly. Frontier/Quartz columns come from the calibrated
/// strong-scaling platform models.

#include <cstdio>
#include <memory>

#include "baseline/platform_model.hpp"
#include "core/wse_md.hpp"
#include "eam/tabulated.hpp"
#include "eam/zhou.hpp"
#include "lattice/lattice.hpp"
#include "perf/workload.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"
#include "wse/cost_model.hpp"

namespace {

using namespace wsmd;

struct Result {
  double predicted, measured_sim, frontier, quartz;
  double mean_inter, mean_cand;
  int b;
};

Result run_element(const perf::PaperWorkload& w) {
  Result r{};

  const auto model = wse::CostModel::paper_baseline();
  r.predicted = model.steps_per_second(w.candidates, w.interactions);

  // Scaled replica of the slab (1/16 of the x-y extent, same thickness),
  // equilibrated at 290 K like the paper's benchmark configurations.
  const auto p = eam::zhou_parameters(w.element);
  const auto slab = lattice::paper_slab(w.element, 16);
  auto analytic =
      std::make_shared<eam::ZhouEam>(w.element, p.paper_cutoff());
  auto pot = std::make_shared<eam::TabulatedEam>(
      eam::TabulatedEam::from_potential(*analytic, 2000, 2000));

  core::WseMdConfig cfg;
  cfg.mapping.cell_size = p.lattice_constant();
  cfg.b_override = w.b;  // the paper's neighborhood radius
  core::WseMd engine(slab, pot, cfg);
  Rng rng(12345);
  engine.thermalize(290.0, rng);
  core::WseStepStats stats;
  for (int k = 0; k < 25; ++k) stats = engine.step();

  // The slowest (bulk, full-neighborhood) worker synchronizes the array,
  // so its cycle count sets the step time — the scaled slab has a larger
  // surface fraction than the full problem, which would skew an
  // array-mean rate optimistic. Thermal fluctuation of its interaction
  // count gives the few-percent measured-vs-predicted scatter the paper
  // also reports.
  r.measured_sim = 1.0 / stats.wall_seconds;
  r.mean_inter = stats.mean_interactions;
  r.mean_cand = stats.mean_candidates;
  r.b = engine.b();

  r.frontier = baseline::FrontierModel(w.element).best_steps_per_second();
  r.quartz = baseline::QuartzModel(w.element).best_steps_per_second();
  return r;
}

}  // namespace

int main() {
  std::printf(
      "Table I — 800,000-atom models: predicted and measured performance\n"
      "(timesteps per second) on the WSE compared with Frontier (GPU) and\n"
      "Quartz (CPU). 'paper' columns quote the published values.\n\n");

  TablePrinter t({"Element", "Replication", "Atoms", "Inter/Cand", "b",
                  "Predicted", "Measured(sim)", "paper pred", "paper meas",
                  "Frontier", "paper", "Quartz", "paper", "WSE/GPU",
                  "WSE/CPU"});

  for (const auto& w : perf::all_paper_workloads()) {
    const Result r = run_element(w);
    t.add_row({
        w.element,
        format("%dx%dx%d", w.repl_x, w.repl_y, w.repl_z),
        with_commas(w.atoms),
        format("%d/ %d", w.interactions, w.candidates),
        format("%d", r.b),
        with_commas(static_cast<long long>(r.predicted)),
        with_commas(static_cast<long long>(r.measured_sim)),
        with_commas(static_cast<long long>(w.predicted_steps_per_s)),
        with_commas(static_cast<long long>(w.measured_steps_per_s)),
        with_commas(static_cast<long long>(r.frontier)),
        with_commas(static_cast<long long>(w.frontier_steps_per_s)),
        with_commas(static_cast<long long>(r.quartz)),
        with_commas(static_cast<long long>(w.quartz_steps_per_s)),
        format("%.0fx", r.measured_sim / r.frontier),
        format("%.0fx", r.measured_sim / r.quartz),
    });
  }
  t.print();

  std::printf(
      "\nNotes: the simulated 'measured' rate comes from per-worker cycle\n"
      "counters of the functional wafer engine on a 1/16-scale slab of the\n"
      "same thickness (per-tile cost is size-independent; see Fig. 8\n"
      "bench). Thermal motion transiently reduces interaction counts, the\n"
      "same effect the paper reports as measured rates 1-3%% above\n"
      "prediction.\n");
  return 0;
}
