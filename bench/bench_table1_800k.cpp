/// \file bench_table1_800k.cpp
/// Reproduces paper Table I: predicted and measured timesteps/s for the
/// 801,792-atom Cu/W/Ta slabs on the WSE versus Frontier (GPU) and Quartz
/// (CPU).
///
/// "Predicted" uses the calibrated linear cost model at the paper's
/// candidate/interaction counts. "Measured (sim)" runs the functional
/// wafer-scale engine on a scaled-down replica of the same slab geometry
/// (identical thickness, same per-worker workload) and reports the modeled
/// array rate from its per-worker cycle counters — the per-tile cost is
/// size-independent, which Fig. 8's weak-scaling bench demonstrates
/// explicitly. Frontier/Quartz columns come from the calibrated
/// strong-scaling platform models.
///
///   bench_table1_800k [--threads=N] [--scale=S]
///
/// --scale divides the slab's x-y replication (default 16); --threads runs
/// the emulator on N sharded host threads (trajectories are identical at
/// any thread count). Results also land in BENCH_table1_800k.json.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "baseline/platform_model.hpp"
#include "eam/tabulated.hpp"
#include "eam/zhou.hpp"
#include "engine/sharded_wafer.hpp"
#include "lattice/lattice.hpp"
#include "perf/workload.hpp"
#include "util/bench_json.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"
#include "wse/cost_model.hpp"

namespace {

using namespace wsmd;

struct Result {
  double predicted, measured_sim, frontier, quartz;
  double mean_inter, mean_cand;
  double max_cycles = 0.0;
  double host_steps_per_s = 0.0;
  std::size_t sim_atoms = 0;
  int threads = 1;  ///< resolved worker count (--threads=0 means auto)
  int b;
};

Result run_element(const perf::PaperWorkload& w, int scale, int threads) {
  Result r{};

  const auto model = wse::CostModel::paper_baseline();
  r.predicted = model.steps_per_second(w.candidates, w.interactions);

  // Scaled replica of the slab (1/scale of the x-y extent, same
  // thickness), equilibrated at 290 K like the paper's benchmark
  // configurations. The sharded backend keeps larger replicas tractable.
  const auto p = eam::zhou_parameters(w.element);
  const auto slab = lattice::paper_slab(w.element, scale);
  auto analytic =
      std::make_shared<eam::ZhouEam>(w.element, p.paper_cutoff());
  auto pot = std::make_shared<eam::TabulatedEam>(
      eam::TabulatedEam::from_potential(*analytic, 2000, 2000));

  engine::ShardedWaferConfig cfg;
  cfg.wse.mapping.cell_size = p.lattice_constant();
  cfg.wse.b_override = w.b;  // the paper's neighborhood radius
  cfg.threads = threads;
  engine::ShardedWafer engine(slab, pot, cfg);
  Rng rng(12345);
  engine.thermalize(290.0, rng);
  const auto t0 = std::chrono::steady_clock::now();
  engine.run(25);
  const auto t1 = std::chrono::steady_clock::now();
  const auto& stats = engine.last_step_stats();

  // The slowest (bulk, full-neighborhood) worker synchronizes the array,
  // so its cycle count sets the step time — the scaled slab has a larger
  // surface fraction than the full problem, which would skew an
  // array-mean rate optimistic. Thermal fluctuation of its interaction
  // count gives the few-percent measured-vs-predicted scatter the paper
  // also reports.
  r.measured_sim = 1.0 / stats.wall_seconds;
  r.mean_inter = stats.mean_interactions;
  r.mean_cand = stats.mean_candidates;
  r.max_cycles = stats.max_cycles;
  r.host_steps_per_s =
      25.0 / std::chrono::duration<double>(t1 - t0).count();
  r.sim_atoms = engine.atom_count();
  r.threads = engine.threads();
  r.b = engine.wafer().b();

  r.frontier = baseline::FrontierModel(w.element).best_steps_per_second();
  r.quartz = baseline::QuartzModel(w.element).best_steps_per_second();
  return r;
}

}  // namespace

int main(int argc, char** argv) try {
  int threads = 1;
  int scale = 16;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg.rfind("--threads=", 0) == 0) {
      threads = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--scale=", 0) == 0) {
      scale = std::atoi(arg.c_str() + 8);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return 2;
    }
  }
  std::printf(
      "Table I — 800,000-atom models: predicted and measured performance\n"
      "(timesteps per second) on the WSE compared with Frontier (GPU) and\n"
      "Quartz (CPU). 'paper' columns quote the published values.\n\n");

  TablePrinter t({"Element", "Replication", "Atoms", "Inter/Cand", "b",
                  "Predicted", "Measured(sim)", "paper pred", "paper meas",
                  "Frontier", "paper", "Quartz", "paper", "WSE/GPU",
                  "WSE/CPU"});

  BenchJson json("table1_800k");
  json.meta().set("scale", scale);

  for (const auto& w : perf::all_paper_workloads()) {
    const Result r = run_element(w, scale, threads);
    json.add_row()
        .set("element", w.element)
        .set("atoms", static_cast<long long>(w.atoms))
        .set("sim_atoms", r.sim_atoms)
        .set("threads", r.threads)
        .set("steps_per_s", r.measured_sim)
        .set("predicted_steps_per_s", r.predicted)
        .set("paper_measured_steps_per_s", w.measured_steps_per_s)
        .set("max_cycles", r.max_cycles)
        .set("host_steps_per_s", r.host_steps_per_s)
        .set("b", r.b);
    t.add_row({
        w.element,
        format("%dx%dx%d", w.repl_x, w.repl_y, w.repl_z),
        with_commas(w.atoms),
        format("%d/ %d", w.interactions, w.candidates),
        format("%d", r.b),
        with_commas(static_cast<long long>(r.predicted)),
        with_commas(static_cast<long long>(r.measured_sim)),
        with_commas(static_cast<long long>(w.predicted_steps_per_s)),
        with_commas(static_cast<long long>(w.measured_steps_per_s)),
        with_commas(static_cast<long long>(r.frontier)),
        with_commas(static_cast<long long>(w.frontier_steps_per_s)),
        with_commas(static_cast<long long>(r.quartz)),
        with_commas(static_cast<long long>(w.quartz_steps_per_s)),
        format("%.0fx", r.measured_sim / r.frontier),
        format("%.0fx", r.measured_sim / r.quartz),
    });
  }
  t.print();
  const std::string path = json.write();
  std::printf("\nMachine-readable results: %s\n", path.c_str());

  std::printf(
      "\nNotes: the simulated 'measured' rate comes from per-worker cycle\n"
      "counters of the functional wafer engine on a 1/%d-scale slab of the\n"
      "same thickness (per-tile cost is size-independent; see Fig. 8\n"
      "bench; larger replicas via --scale, host threads via --threads).\n"
      "Thermal motion transiently reduces interaction counts, the same\n"
      "effect the paper reports as measured rates 1-3%% above prediction.\n",
      scale);
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
