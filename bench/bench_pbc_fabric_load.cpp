/// \file bench_pbc_fabric_load.cpp
/// Reproduces the paper's Sec. V-F experiment: fabric load of the position
/// exchange with and without periodic boundary conditions.
///
/// With PBC, the Fig. 5 fold interleaves the two halves of the coordinate
/// ring, so logical neighbors sit two hops apart and the neighborhood
/// radius roughly doubles — doubling on-chip data transfer. The paper
/// verified the exchange takes the same wall time because the routers
/// carry both directions concurrently and bandwidth is not the limiting
/// resource. This bench measures (a) the neighborhood radius with and
/// without the fold, (b) wavelet-level exchange cycles, and (c) the
/// per-link data volume, on the same crystal.

#include <cstdio>

#include "core/mapping.hpp"
#include "eam/zhou.hpp"
#include "lattice/lattice.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"
#include "wse/cost_model.hpp"
#include "wse/multicast.hpp"

int main() {
  using namespace wsmd;

  std::printf(
      "Sec. V-F — fabric load of the position exchange with and without\n"
      "periodic boundaries (Ta crystal, 12x6x4 cells).\n\n");

  const auto p = eam::zhou_parameters("Ta");
  const auto open = lattice::replicate(
      lattice::UnitCell::of(p.structure, p.lattice_constant()), 12, 6, 4, 0,
      {false, false, false});
  auto periodic = open;
  periodic.box.periodic = {true, false, false};

  core::MappingConfig cfg;
  cfg.cell_size = p.lattice_constant();
  const auto m_open = core::AtomMapping::for_structure(open, cfg);
  const auto m_fold = core::AtomMapping::for_structure(periodic, cfg);

  const int b_open = m_open.required_b(open.positions, p.paper_cutoff());
  const int b_fold = m_fold.required_b(periodic.positions, p.paper_cutoff());

  // Wavelet-level position exchange (3 words = 12-byte position per atom)
  // on a 24x24 tile patch for both radii.
  const int W = 24, H = 24;
  std::vector<std::vector<std::uint32_t>> payloads(
      static_cast<std::size_t>(W) * H, std::vector<std::uint32_t>{1, 2, 3});
  const auto ex_open = wse::neighborhood_exchange(W, H, b_open, payloads);
  const auto ex_fold = wse::neighborhood_exchange(W, H, b_fold, payloads);

  TablePrinter t({"Configuration", "b", "candidates", "exchange cycles",
                  "contention", "words gathered/core"});
  auto row = [&](const char* name, int b, const wse::ExchangeResult& ex) {
    const std::size_t center =
        static_cast<std::size_t>(H / 2) * W + W / 2;
    t.add_row({name, format("%d", b),
               format("%.0f", wse::CostModel::candidates_for_b(b)),
               format("%llu", static_cast<unsigned long long>(ex.total_cycles())),
               format("%llu", static_cast<unsigned long long>(ex.contention_events)),
               format("%zu", ex.gathered[center].size())});
  };
  row("Open boundaries", b_open, ex_open);
  row("Periodic (folded)", b_fold, ex_fold);
  t.print();

  std::printf(
      "\nThe fold roughly doubles b and the per-core data gathered (the\n"
      "paper's 'PBCs double the fabric data transfer'), with zero link\n"
      "contention in both cases. On hardware the added transfers hide\n"
      "behind the routers' concurrent bidirectional links, so measured\n"
      "exchange *time* was unchanged; the added cost that remains is the\n"
      "modular arithmetic in the distance computation (paper Sec. V-F).\n");
  return 0;
}
