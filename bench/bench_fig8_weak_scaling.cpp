/// \file bench_fig8_weak_scaling.cpp
/// Reproduces paper Fig. 8: weak scaling across three orders of magnitude
/// of core counts on a single wafer — problem size and core count grow
/// together at one atom per core, and timesteps/s stays flat to within 1%.
///
/// The functional wafer engine runs Ta/Cu/W slabs from ~1k to ~100k atoms;
/// the per-step rate comes from the slowest worker's cycle counter, which
/// is what synchronizes the array on hardware.

#include <cstdio>
#include <memory>
#include <vector>

#include "core/wse_md.hpp"
#include "eam/tabulated.hpp"
#include "eam/zhou.hpp"
#include "lattice/lattice.hpp"
#include "perf/workload.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main() {
  using namespace wsmd;

  std::printf(
      "Fig. 8 — weak scaling on a single wafer: one atom per core, problem\n"
      "size and core count scaled together. Paper: perfect within 1%% over\n"
      "three orders of magnitude.\n\n");

  TablePrinter t({"Element", "Atoms", "Cores", "b", "steps/s",
                  "vs largest", "dev"});

  for (const char* el : {"Ta", "Cu", "W"}) {
    const auto p = eam::zhou_parameters(el);
    const auto w = perf::paper_workload(el);
    auto analytic = std::make_shared<eam::ZhouEam>(el, p.paper_cutoff());
    auto pot = std::make_shared<eam::TabulatedEam>(
        eam::TabulatedEam::from_potential(*analytic, 1500, 1500));

    std::vector<double> rates;
    std::vector<std::string> rows[4];
    // ~0.4k .. ~50k atoms: 2+ orders of magnitude of core counts, every
    // size large enough to contain bulk (full-neighborhood) workers.
    const int scales[] = {32, 16, 8, 4};
    int idx = 0;
    for (int scale : scales) {
      const auto slab = lattice::paper_slab(el, scale);
      core::WseMdConfig cfg;
      cfg.mapping.cell_size = p.lattice_constant();
      cfg.b_override = w.b;
      core::WseMd engine(slab, pot, cfg);
      Rng rng(42);
      engine.thermalize(290.0, rng);
      core::WseStepStats stats;
      for (int k = 0; k < 6; ++k) stats = engine.step();
      const double rate = 1.0 / stats.wall_seconds;
      rates.push_back(rate);
      rows[idx] = {el, with_commas(static_cast<long long>(engine.atom_count())),
                   with_commas(static_cast<long long>(
                       engine.mapping().core_count())),
                   format("%d", engine.b()),
                   with_commas(static_cast<long long>(rate))};
      ++idx;
    }
    const double reference = rates.back();
    for (int i = 0; i < idx; ++i) {
      rows[i].push_back(format("%.4f", rates[static_cast<std::size_t>(i)] /
                                            reference));
      rows[i].push_back(format("%+.2f%%",
                               100.0 * (rates[static_cast<std::size_t>(i)] /
                                            reference -
                                        1.0)));
      t.add_row(rows[i]);
    }
  }
  t.print();

  std::printf(
      "\nDeviation across sizes stays within ~1%% per element: the\n"
      "per-worker cost depends only on the local workload, not the array\n"
      "size — the property that lets Table I extrapolate to 801,792\n"
      "cores.\n");
  return 0;
}
