/// \file bench_table5_projections.cpp
/// Reproduces paper Table V: projected performance gains from four future
/// optimizations, stacked cumulatively on the baseline cost model:
///   1. fixed-cost tuning (2x on the fixed component),
///   2. neighbor-list reuse (miss processing every 10th step),
///   3. force symmetry (half the interaction work),
///   4. multi-core workers (2x on multicast, miss, and interaction).
/// The tantalum ladder 270 -> 290 -> 460 -> 650 -> 1,100 k-steps/s is the
/// paper's headline projection ("in excess of one million timesteps").

#include <cstdio>

#include "perf/workload.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"
#include "wse/cost_model.hpp"

int main() {
  using namespace wsmd;

  std::printf(
      "Table V — projected performance gains from future optimizations\n"
      "(cumulative). Component costs in ns; rates in 1,000 timesteps/s.\n"
      "Paper's Ta ladder: 270 / 290 / 460 / 650 / 1,100.\n\n");

  struct Stage {
    const char* name;
    void (*apply)(wse::CostModel&);
  };
  const Stage stages[] = {
      {"Baseline", [](wse::CostModel&) {}},
      {"Fixed cost (50%)",
       [](wse::CostModel& m) { m.factors().fixed = 0.5; }},
      {"Neighbor list (10%)",
       [](wse::CostModel& m) { m.factors().miss = 0.1; }},
      {"Symmetry (50%)",
       [](wse::CostModel& m) { m.factors().interaction = 0.5; }},
      {"Parallel (50%)",
       [](wse::CostModel& m) {
         m.factors().mcast = 0.5;
         m.factors().miss *= 0.5;
         m.factors().interaction *= 0.5;
       }},
  };

  TablePrinter t({"Description", "Mcast", "Miss", "Interaction", "Fixed",
                  "Ta", "W", "Cu"});
  wse::CostModel m = wse::CostModel::paper_baseline();
  for (const auto& stage : stages) {
    stage.apply(m);
    const auto& c = m.components();
    const auto& f = m.factors();
    std::string rates[3];
    int i = 0;
    for (const char* el : {"Ta", "W", "Cu"}) {
      const auto w = perf::paper_workload(el);
      rates[i++] = format(
          "%.0f", m.steps_per_second(w.candidates, w.interactions) / 1000.0);
    }
    t.add_row({stage.name, format("%.1f", c.mcast_per_candidate * f.mcast),
               format("%.1f", c.miss_per_reject * f.miss),
               format("%.1f", c.per_interaction * f.interaction),
               format("%.0f", c.fixed * f.fixed), rates[0], rates[1],
               rates[2]});
  }
  t.print();

  std::printf(
      "\nNote: the Ta column reproduces the paper's ladder; our W/Cu\n"
      "columns are derived self-consistently from the same model (the\n"
      "paper's published W/Cu Table V entries are inconsistent with its\n"
      "own Tables I-II baseline; see EXPERIMENTS.md).\n");
  return 0;
}
