/// \file bench_fig9_atom_swap.cpp
/// Reproduces paper Fig. 9: atom motion and assignment cost in a tungsten
/// grain-boundary simulation, as a function of the swap interval.
///
/// The paper ran 61,600 W atoms on 62,500 cores (900 empty) and showed
/// that swap intervals of 100 steps or fewer hold the assignment cost to
/// within ~3 A plus the EAM cutoff (their best offline mapping: 2.1 A).
/// This bench runs a scaled-down bicrystal with the same protocol: start
/// from a deliberately sub-optimal mapping, sweep the swap interval, track
/// the max-norm atom displacement (black curve) and assignment cost
/// (colored curves).

#include <cstdio>
#include <memory>
#include <vector>

#include "core/wse_md.hpp"
#include "eam/tabulated.hpp"
#include "eam/zhou.hpp"
#include "lattice/grain_boundary.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main() {
  using namespace wsmd;

  std::printf(
      "Fig. 9 — assignment cost vs swap interval for a W grain boundary\n"
      "(scaled-down bicrystal, same protocol as the paper's 61,600-atom\n"
      "run; sub-optimal initial mapping).\n\n");

  const auto p = eam::zhou_parameters("W");
  lattice::GrainBoundaryParams gb_params;  // element defaults to "W"
  gb_params.tilt_angle_deg = 16.0;
  gb_params.cells_z = 3;
  const auto gb = lattice::make_grain_boundary_with_atom_count(gb_params, 1600);

  auto analytic = std::make_shared<eam::ZhouEam>("W", p.paper_cutoff());
  auto pot = std::make_shared<eam::TabulatedEam>(
      eam::TabulatedEam::from_potential(*analytic, 1500, 1500));

  std::printf("Bicrystal: %zu atoms (%zu + %zu per grain, %zu fused)\n\n",
              gb.structure.size(), gb.grain_a_atoms, gb.grain_b_atoms,
              gb.fused_atoms);

  const int total_steps = 300;
  const int sample_every = 60;

  TablePrinter t({"Swap interval", "initial cost (A)", "t=60", "t=120",
                  "t=180", "t=240", "t=300", "max disp (A)"});

  // The scramble displaces atoms by up to two extra hops; widen the
  // exchange neighborhood accordingly so no interaction is missed (the
  // paper likewise provisions b for the worst maintained cost).
  int b_needed = 0;
  {
    core::WseMdConfig probe;
    probe.mapping.cell_size = p.lattice_constant();
    probe.mapping.refine_rounds = 0;
    core::WseMd probe_engine(gb.structure, pot, probe);
    b_needed = probe_engine.b() + 2;
  }

  for (const int interval : {1, 10, 100, 0 /* never */}) {
    core::WseMdConfig cfg;
    cfg.mapping.cell_size = p.lattice_constant();
    cfg.mapping.refine_rounds = 0;  // sub-optimal initial mapping
    cfg.swap_interval = interval;
    cfg.b_override = b_needed;
    core::WseMd engine(gb.structure, pot, cfg);
    Rng rng(7);
    engine.scramble_mapping(rng, static_cast<int>(engine.atom_count() / 4));
    engine.thermalize(290.0, rng);

    std::vector<std::string> cells;
    cells.push_back(interval == 0 ? "never" : format("%d", interval));
    cells.push_back(format("%.2f", engine.assignment_cost()));
    for (int step = 0; step < total_steps; ++step) {
      engine.step();
      if ((step + 1) % sample_every == 0) {
        cells.push_back(format("%.2f", engine.assignment_cost()));
      }
    }
    cells.push_back(format("%.2f", engine.max_inplane_displacement()));
    t.add_row(cells);
  }
  t.print();

  std::printf(
      "\nReading: with swaps every <=100 steps the assignment cost falls\n"
      "from the scrambled start and holds near the offline-quality level\n"
      "(paper: within 3 A + cutoff for intervals of 100 or less); without\n"
      "swaps it stays at the scrambled level while atoms keep diffusing.\n");
  return 0;
}
