/// \file wsmd.cpp
/// `wsmd` — the scenario driver CLI.
///
/// One production binary over the engine library (the ACEMD pattern): a
/// scenario is a declarative deck file and/or `key=value` overrides, and
/// the driver runs it end-to-end on any backend, streaming trajectory and
/// thermo output and finishing with a machine-readable summary.
///
///   $ wsmd scenarios/cu_slab.deck
///   $ wsmd scenarios/cu_slab.deck backend=sharded:4 thermo=out.csv
///   $ wsmd element=Ta geometry=slab scale=32 thermalize=300 run=50
///   $ wsmd --print scenarios/ta_grain_boundary.deck
///
/// The `analyze` subcommand replays a deck's `observe.*` probes offline
/// over a saved XYZ trajectory (no engine run):
///
///   $ wsmd analyze scenarios/cu_gb_mobility.deck run/cu_gb.traj.xyz
///
/// The `resume` subcommand continues a checkpointed run (io/checkpoint)
/// from its saved mid-stage cursor — the checkpoint is self-contained (the
/// effective deck travels inside it), so no deck file is needed:
///
///   $ wsmd scenarios/cu_slab.deck checkpoint.every=10
///   $ wsmd resume cu_slab.ckpt --output-dir=resumed
///
/// The `report` subcommand runs a deck with telemetry armed and prints a
/// measured-vs-modeled per-phase cost table (src/telemetry/report):
///
///   $ wsmd report scenarios/cu_gb_mobility.deck
///   $ wsmd report --html scenarios/cu_gb_mobility.deck
///
/// Exit status: 0 on success, 1 on any error (bad deck, unknown key,
/// engine failure, I/O failure), 2 when an abort-configured health
/// detector tripped (the diagnostic bundle was written first; a stall
/// abort exits 3 from the watchdog thread), 130 on SIGINT/SIGTERM (the
/// telemetry exports are finalized before exiting).

#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "eam/lennard_jones.hpp"
#include "eam/zhou.hpp"
#include "io/checkpoint.hpp"
#include "scenario/analyze.hpp"
#include "scenario/deck.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "telemetry/dashboard.hpp"
#include "telemetry/health.hpp"
#include "telemetry/report.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

namespace {

void print_usage(std::FILE* out) {
  std::fprintf(out,
               "wsmd — wafer-scale MD scenario driver\n"
               "\n"
               "usage: wsmd [options] [deck ...] [key=value ...]\n"
               "       wsmd analyze [options] DECK TRAJECTORY.xyz "
               "[key=value ...]\n"
               "       wsmd resume [options] CHECKPOINT [key=value ...]\n"
               "       wsmd report [options] [deck ...] [key=value ...]\n"
               "\n"
               "Runs each deck (plus overrides) end-to-end on the selected\n"
               "backend. With no deck, a scenario is built from key=value\n"
               "tokens alone. `wsmd analyze` instead replays the deck's\n"
               "observe.* probes offline over a saved XYZ trajectory.\n"
               "`wsmd resume` continues a checkpointed run (written via\n"
               "checkpoint.every / checkpoint.path) from its saved\n"
               "mid-stage cursor; outputs restart at the resume step, so\n"
               "point --output-dir somewhere fresh to keep the partial\n"
               "originals. Output/backend overrides are accepted;\n"
               "schedule or structure overrides are rejected.\n"
               "`wsmd report` runs a deck with telemetry armed and prints\n"
               "a measured-vs-modeled per-phase cost table (wafer cost\n"
               "model; a reference-backend deck is promoted to sharded:2\n"
               "unless --backend= says otherwise).\n"
               "\n"
               "options:\n"
               "  --set key=value   scenario override (same as a bare\n"
               "                    key=value argument)\n"
               "  --backend=B       backend override for every run\n"
               "                    (reference|wafer|sharded|sharded:N|\n"
               "                    ranks:M|ranks:MxN — M forked rank\n"
               "                    processes with ghost-halo exchange,\n"
               "                    optionally N shard threads each)\n"
               "  --transport=T     halo transport override for ranks:\n"
               "                    backends (shm|socket); same as\n"
               "                    dist.transport=T\n"
               "  --output-dir=DIR  prefix for relative output paths\n"
               "  --print           parse and show the effective scenario,\n"
               "                    do not run\n"
               "  --quiet           suppress progress output\n"
               "  --trace[=PATH]    write a chrome://tracing trace-event\n"
               "                    JSON (default <name>.trace.json); same\n"
               "                    as telemetry.trace=auto|PATH\n"
               "  --metrics[=PATH]  write span/counter aggregates as JSONL\n"
               "                    (default <name>.metrics.jsonl); same\n"
               "                    as telemetry.metrics=auto|PATH\n"
               "  --progress        stderr heartbeat (step/total, ns/day,\n"
               "                    ETA) on a wall-clock interval; only\n"
               "                    when stderr is a TTY (--progress=force\n"
               "                    overrides)\n"
               "  --progress-interval=S\n"
               "                    seconds between heartbeats (default 1;\n"
               "                    0 reports after every step)\n"
               "  --html[=PATH]     (report) also render a self-contained\n"
               "                    HTML dashboard — snapshot time series,\n"
               "                    cost table, shard-load histogram\n"
               "                    (default <name>.dashboard.html)\n"
               "  --list-elements   show available Zhou parameter sets\n"
               "  --help            this text\n"
               "\n"
               "deck keys: name element pair_style potential geometry\n"
               "  scale replicate\n"
               "  vacancy_fraction tilt_angle_deg gb_atoms backend dt\n"
               "  swap_interval rescale_interval seed thermalize\n"
               "  equilibrate ramp quench run xyz xyz_every thermo\n"
               "  thermo_every thermo_format summary checkpoint.every\n"
               "  checkpoint.path telemetry.trace telemetry.metrics\n"
               "  telemetry.snapshot\n"
               "distributed keys (ranks: backends only):\n"
               "  dist.transport dist.timeout dist.kill_rank dist.kill_step\n"
               "health keys (run-health watchdog; warn|abort|off):\n"
               "  health.nan health.energy_drift health.energy_band\n"
               "  health.temperature health.temperature_band health.stall\n"
               "  health.stall_timeout health.thermo_tail health.bundle\n"
               "  health.inject_nan\n"
               "observable keys: observe.probes (rdf msd vacf defects)\n"
               "  observe.every observe.<probe>_every observe.format\n"
               "  observe.prefix observe.rdf_rcut observe.rdf_bins\n"
               "  observe.csp_threshold observe.gb_axis\n");
}

void print_scenario(const wsmd::scenario::Scenario& sc) {
  using wsmd::format;
  std::printf("scenario %s:\n", sc.name.c_str());
  std::printf("  element   = %s (%s, potential %s)\n", sc.element.c_str(),
              sc.pair_style.c_str(), sc.potential.c_str());
  std::printf("  geometry  = %s\n", sc.geometry.c_str());
  if (sc.replicate[0] > 0) {
    std::printf("  replicate = %d %d %d\n", sc.replicate[0], sc.replicate[1],
                sc.replicate[2]);
  } else if (sc.geometry != "grain_boundary") {
    std::printf("  scale     = %d (paper slab / scale)\n", sc.scale);
  }
  if (sc.geometry == "grain_boundary") {
    std::printf("  tilt      = %.4g deg, ~%zu atoms\n", sc.tilt_angle_deg,
                sc.gb_target_atoms);
  }
  if (sc.vacancy_fraction > 0.0) {
    std::printf("  vacancies = %.4g\n", sc.vacancy_fraction);
  }
  std::printf("  backend   = %s\n", sc.backend.c_str());
  std::printf("  dt        = %.4g ps, seed = %llu\n", sc.dt,
              static_cast<unsigned long long>(sc.seed));
  if (sc.swap_interval > 0) {
    std::printf("  atom swap every %d steps (wafer backends)\n",
                sc.swap_interval);
  }
  std::printf("  schedule  (%ld steps total):\n", sc.total_steps());
  for (const auto& st : sc.schedule) {
    using Kind = wsmd::scenario::Stage::Kind;
    switch (st.kind) {
      case Kind::kThermalize:
        std::printf("    thermalize  %.5g K\n", st.t0);
        break;
      case Kind::kRamp:
        std::printf("    ramp        %.5g -> %.5g K, %ld steps\n", st.t0,
                    st.t1, st.steps);
        break;
      case Kind::kRun:
        std::printf("    run         %ld steps (NVE)\n", st.steps);
        break;
      default:
        std::printf("    %-11s %.5g K, %ld steps\n", st.name(), st.t0,
                    st.steps);
        break;
    }
  }
  if (!sc.xyz_path.empty()) {
    std::printf("  xyz       = %s (every %ld steps)\n", sc.xyz_path.c_str(),
                sc.xyz_every);
  }
  if (!sc.thermo_path.empty()) {
    std::printf("  thermo    = %s (%s, every %ld steps)\n",
                sc.thermo_path.c_str(), sc.thermo_format.c_str(),
                sc.thermo_every);
  }
  if (!sc.summary_path.empty()) {
    std::printf("  summary   = %s\n", sc.summary_path.c_str());
  }
  if (sc.checkpoint_every > 0) {
    std::printf("  checkpoint= %s (every %ld steps)\n",
                sc.checkpoint_path.c_str(), sc.checkpoint_every);
  }
  if (sc.observe.enabled()) {
    std::printf("  observe   =");
    for (const auto& kind : sc.observe.probes) {
      std::printf(" %s(every %ld)", kind.c_str(),
                  sc.observe.cadence_for(kind));
    }
    std::printf(" -> %s.<probe>.%s\n",
                sc.observe.effective_prefix(sc.name).c_str(),
                sc.observe.format.c_str());
  }
}

/// The --progress heartbeat: one \r-rewritten stderr status line per
/// report, finished with a newline on the run's final report so the next
/// shell prompt stays clean.
std::function<void(const wsmd::scenario::ProgressInfo&)> progress_printer() {
  return [](const wsmd::scenario::ProgressInfo& p) {
    const double pct =
        p.total_steps > 0
            ? 100.0 * static_cast<double>(p.step) /
                  static_cast<double>(p.total_steps)
            : 100.0;
    const long eta = static_cast<long>(p.eta_seconds + 0.5);
    std::fprintf(stderr,
                 "\rstep %ld/%ld (%5.1f%%)  %.3g ns/day  ETA %02ld:%02ld:%02ld",
                 p.step, p.total_steps, pct, p.ns_per_day, eta / 3600,
                 (eta / 60) % 60, eta % 60);
    if (p.final) {
      std::fprintf(stderr, "\n");
    } else {
      std::fflush(stderr);
    }
  };
}

/// Parse --progress / --progress=force / --progress-interval=S into
/// RunOptions. The heartbeat is only armed when stderr is a TTY (a
/// redirected run must not fill its log with \r lines) unless forced;
/// the interval is wall-clock seconds between reports.
bool parse_progress_flag(const std::string& arg,
                         wsmd::scenario::RunOptions& opt) {
  if (wsmd::starts_with(arg, "--progress-interval=")) {
    const std::string value = arg.substr(20);
    double seconds = 0.0;
    WSMD_REQUIRE(wsmd::parse_double_strict(value, seconds) && seconds >= 0.0,
                 "bad --progress-interval '" << value
                                             << "' (want seconds >= 0)");
    opt.progress_interval_s = seconds;
    return true;
  }
  if (arg != "--progress" && arg != "--progress=force") return false;
  if (arg == "--progress=force" || isatty(fileno(stderr)) != 0) {
    opt.progress = progress_printer();
  }
  return true;
}

/// SIGINT/SIGTERM request a cooperative stop: the step loop unwinds at
/// the next step boundary after finalizing the telemetry exports
/// (request_interrupt is a relaxed atomic store — async-signal-safe).
/// Re-registering keeps System-V-style signal() semantics from resetting
/// the disposition after the first delivery; a wedged run that never
/// reaches a step boundary is the stall watchdog's job, not the signal's.
extern "C" void handle_stop_signal(int sig) {
  wsmd::scenario::request_interrupt();
  std::signal(sig, handle_stop_signal);
}

/// Parse --trace[=PATH] / --metrics[=PATH] into a telemetry.* deck
/// override (so the flag and the deck key cannot drift).
bool parse_telemetry_flag(const std::string& arg,
                          std::vector<wsmd::scenario::DeckEntry>& overrides) {
  using wsmd::scenario::DeckEntry;
  using wsmd::starts_with;
  if (arg == "--trace") {
    overrides.push_back(DeckEntry{"telemetry.trace", "auto", 0});
  } else if (starts_with(arg, "--trace=")) {
    overrides.push_back(DeckEntry{"telemetry.trace", arg.substr(8), 0});
  } else if (arg == "--metrics") {
    overrides.push_back(DeckEntry{"telemetry.metrics", "auto", 0});
  } else if (starts_with(arg, "--metrics=")) {
    overrides.push_back(DeckEntry{"telemetry.metrics", arg.substr(10), 0});
  } else {
    return false;
  }
  return true;
}

/// Parse --transport=shm|socket into the dist.transport deck override (the
/// value check stays in scenario parsing, so the flag and the deck key
/// cannot drift).
bool parse_transport_flag(const std::string& arg,
                          std::vector<wsmd::scenario::DeckEntry>& overrides) {
  using wsmd::scenario::DeckEntry;
  if (!wsmd::starts_with(arg, "--transport=")) return false;
  overrides.push_back(DeckEntry{"dist.transport", arg.substr(12), 0});
  return true;
}

int run_report(int argc, char** argv) {
  using namespace wsmd;
  std::vector<std::string> decks;
  std::vector<scenario::DeckEntry> overrides;
  scenario::RunOptions opt;
  opt.collect_telemetry = true;  // the report needs measured span totals
  bool quiet = false;
  bool html = false;
  std::string html_path;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(stdout);
      return 0;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--html") {
      html = true;
    } else if (starts_with(arg, "--html=")) {
      html = true;
      html_path = arg.substr(7);
      WSMD_REQUIRE(!html_path.empty(), "--html= needs a file path");
    } else if (arg == "--set") {
      WSMD_REQUIRE(i + 1 < argc, "--set needs a key=value argument");
      overrides.push_back(scenario::parse_override(argv[++i]));
    } else if (starts_with(arg, "--set=")) {
      overrides.push_back(scenario::parse_override(arg.substr(6)));
    } else if (starts_with(arg, "--backend=")) {
      opt.backend_override = arg.substr(10);
      scenario::parse_backend(opt.backend_override);  // validate now
      WSMD_REQUIRE(opt.backend_override != "reference",
                   "wsmd report joins measured time against the wafer cost "
                   "model, which the reference backend does not have — use "
                   "wafer, sharded[:N], or ranks:M[xN]");
    } else if (starts_with(arg, "--output-dir=")) {
      opt.output_dir = arg.substr(13);
    } else if (parse_telemetry_flag(arg, overrides)) {
      // handled
    } else if (parse_transport_flag(arg, overrides)) {
      // handled
    } else if (parse_progress_flag(arg, opt)) {
      // handled
    } else if (starts_with(arg, "--")) {
      WSMD_REQUIRE(false, "unknown report option '" << arg << "'");
    } else if (arg.find('=') != std::string::npos) {
      overrides.push_back(scenario::parse_override(arg));
    } else {
      decks.push_back(arg);
    }
  }
  WSMD_REQUIRE(!decks.empty() || !overrides.empty(),
               "report wants a deck file or key=value overrides");
  if (!quiet) {
    opt.log = [](const std::string& line) {
      std::printf("%s\n", line.c_str());
    };
  }
  if (decks.empty()) decks.push_back("");
  for (const auto& path : decks) {
    scenario::Deck deck = path.empty()
                              ? scenario::Deck{"<cli>", {}, }
                              : scenario::parse_deck_file(path);
    for (const auto& o : overrides) deck.set(o.key, o.value);
    // Fold --backend= into the deck before validation: dist.* keys (e.g.
    // a --transport= flag) are eagerly rejected off a ranks: backend, and
    // the check must see the backend the run will actually use.
    if (!opt.backend_override.empty()) {
      deck.set("backend", opt.backend_override);
    }
    if (html && !deck.has("telemetry.snapshot")) {
      // The dashboard's time series come from interval snapshots; arm a
      // tight cadence so even short report runs chart a few points.
      deck.set("telemetry.snapshot", "0.02");
    }
    const auto sc = scenario::scenario_from_deck(deck);
    scenario::RunOptions run_opt = opt;
    if (run_opt.backend_override.empty() && sc.backend == "reference") {
      // The report needs a backend with a cost model; promote the deck's
      // reference default rather than erroring out.
      run_opt.backend_override = "sharded:2";
      if (!quiet) {
        std::printf(
            "report: deck backend is 'reference' (no cost model); running "
            "on sharded:2 — pass --backend= to choose another\n");
      }
    }
    const auto result = scenario::run_scenario(sc, run_opt);
    WSMD_REQUIRE(result.modeled.valid,
                 "backend '" << result.backend_name
                             << "' produced no cost-model breakdown");
    std::printf("\n%s", telemetry::format_cost_report(
                            telemetry::build_cost_report(result.modeled))
                            .c_str());
    if (html) {
      telemetry::DashboardInput din;
      din.title = result.scenario;
      din.backend = result.backend_name;
      din.atoms = result.structure.atoms;
      din.total_steps = result.total_steps;
      din.wall_seconds = result.wall_seconds;
      din.dt_ps = sc.dt;
      din.snapshots = result.snapshots;
      din.cost = telemetry::build_cost_report(result.modeled);
      const std::string out = scenario::resolve_output_path(
          html_path.empty() ? sc.name + ".dashboard.html" : html_path,
          run_opt.output_dir);
      telemetry::write_dashboard_html(out, din);
      std::printf("dashboard -> %s (%zu snapshot%s)\n", out.c_str(),
                  result.snapshots.size(),
                  result.snapshots.size() == 1 ? "" : "s");
    }
  }
  return 0;
}

int run_analyze(int argc, char** argv) {
  using namespace wsmd;
  std::vector<std::string> paths;
  std::vector<scenario::DeckEntry> overrides;
  scenario::AnalyzeOptions opt;
  bool quiet = false;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(stdout);
      return 0;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--set") {
      WSMD_REQUIRE(i + 1 < argc, "--set needs a key=value argument");
      overrides.push_back(scenario::parse_override(argv[++i]));
    } else if (starts_with(arg, "--set=")) {
      overrides.push_back(scenario::parse_override(arg.substr(6)));
    } else if (starts_with(arg, "--output-dir=")) {
      opt.output_dir = arg.substr(13);
    } else if (starts_with(arg, "--")) {
      WSMD_REQUIRE(false, "unknown analyze option '" << arg << "'");
    } else if (arg.find('=') != std::string::npos) {
      overrides.push_back(scenario::parse_override(arg));
    } else {
      paths.push_back(arg);
    }
  }
  WSMD_REQUIRE(paths.size() == 2,
               "analyze wants exactly a deck and a trajectory, got "
                   << paths.size() << " path argument(s)");
  if (!quiet) {
    opt.log = [](const std::string& line) {
      std::printf("%s\n", line.c_str());
    };
  }
  scenario::Deck deck = scenario::parse_deck_file(paths[0]);
  for (const auto& o : overrides) deck.set(o.key, o.value);
  scenario::analyze_trajectory(scenario::scenario_from_deck(deck), paths[1],
                               opt);
  return 0;
}

int run_resume(int argc, char** argv) {
  using namespace wsmd;
  std::vector<std::string> paths;
  std::vector<scenario::DeckEntry> overrides;
  scenario::RunOptions opt;
  bool quiet = false;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(stdout);
      return 0;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--set") {
      WSMD_REQUIRE(i + 1 < argc, "--set needs a key=value argument");
      overrides.push_back(scenario::parse_override(argv[++i]));
    } else if (starts_with(arg, "--set=")) {
      overrides.push_back(scenario::parse_override(arg.substr(6)));
    } else if (starts_with(arg, "--backend=")) {
      opt.backend_override = arg.substr(10);
      scenario::parse_backend(opt.backend_override);  // validate now
    } else if (starts_with(arg, "--output-dir=")) {
      opt.output_dir = arg.substr(13);
    } else if (parse_transport_flag(arg, overrides)) {
      // handled
    } else if (starts_with(arg, "--")) {
      WSMD_REQUIRE(false, "unknown resume option '" << arg << "'");
    } else if (arg.find('=') != std::string::npos) {
      overrides.push_back(scenario::parse_override(arg));
    } else {
      paths.push_back(arg);
    }
  }
  WSMD_REQUIRE(paths.size() == 1,
               "resume wants exactly one checkpoint file, got "
                   << paths.size() << " path argument(s)");
  if (!quiet) {
    opt.log = [](const std::string& line) {
      std::printf("%s\n", line.c_str());
    };
  }
  const auto ckpt = io::read_checkpoint_file(paths[0]);
  // The checkpoint's embedded deck (the original run's effective
  // scenario, CLI overrides included) plus this invocation's overrides.
  scenario::Deck deck =
      scenario::deck_from_entries(ckpt.deck, paths[0] + " (embedded deck)");
  for (const auto& o : overrides) deck.set(o.key, o.value);
  scenario::resume_scenario(scenario::scenario_from_deck(deck), ckpt, opt);
  return 0;
}

/// Shared subcommand guard, mapping the runner's structured failures to
/// distinct exit codes: 2 = health abort (bundle already on disk),
/// 130 = interrupted by SIGINT/SIGTERM (exports finalized), 1 = any
/// other error.
template <typename Fn>
int guarded(Fn&& fn) {
  try {
    return fn();
  } catch (const wsmd::telemetry::HealthAbortError& ex) {
    std::fprintf(stderr, "wsmd: %s\n", ex.what());
    return 2;
  } catch (const wsmd::scenario::InterruptedError& ex) {
    std::fprintf(stderr, "wsmd: %s\n", ex.what());
    return 130;
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "wsmd: error: %s\n", ex.what());
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wsmd;

  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);

  if (argc > 1 && std::strcmp(argv[1], "analyze") == 0) {
    return guarded([&] { return run_analyze(argc - 2, argv + 2); });
  }
  if (argc > 1 && std::strcmp(argv[1], "resume") == 0) {
    return guarded([&] { return run_resume(argc - 2, argv + 2); });
  }
  if (argc > 1 && std::strcmp(argv[1], "report") == 0) {
    return guarded([&] { return run_report(argc - 2, argv + 2); });
  }

  std::vector<std::string> decks;
  std::vector<scenario::DeckEntry> overrides;
  scenario::RunOptions opt;
  bool print_only = false;
  bool quiet = false;

  return guarded([&] {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--help" || arg == "-h") {
        print_usage(stdout);
        return 0;
      } else if (arg == "--list-elements") {
        for (const auto& el : eam::zhou_available_elements()) {
          const auto p = eam::zhou_parameters(el);
          std::printf("%-3s %s  a = %.4f A  (pair_style=eam)\n", el.c_str(),
                      p.structure.c_str(), p.lattice_constant());
        }
        for (const auto& el : eam::lj_available_elements()) {
          const auto m = eam::lj_parameters(el);
          std::printf("%-3s %s  a = %.4f A  (pair_style=lj)\n", el.c_str(),
                      m.structure.c_str(), m.lattice_constant());
        }
        return 0;
      } else if (arg == "--print") {
        print_only = true;
      } else if (arg == "--quiet") {
        quiet = true;
      } else if (arg == "--set") {
        WSMD_REQUIRE(i + 1 < argc, "--set needs a key=value argument");
        overrides.push_back(scenario::parse_override(argv[++i]));
      } else if (starts_with(arg, "--set=")) {
        overrides.push_back(scenario::parse_override(arg.substr(6)));
      } else if (starts_with(arg, "--backend=")) {
        opt.backend_override = arg.substr(10);
        scenario::parse_backend(opt.backend_override);  // validate now
      } else if (starts_with(arg, "--output-dir=")) {
        opt.output_dir = arg.substr(13);
      } else if (parse_telemetry_flag(arg, overrides)) {
        // handled
      } else if (parse_transport_flag(arg, overrides)) {
        // handled
      } else if (parse_progress_flag(arg, opt)) {
        // handled
      } else if (starts_with(arg, "--")) {
        WSMD_REQUIRE(false, "unknown option '" << arg << "'");
      } else if (arg.find('=') != std::string::npos) {
        overrides.push_back(scenario::parse_override(arg));
      } else {
        decks.push_back(arg);
      }
    }

    if (decks.empty() && overrides.empty()) {
      print_usage(stderr);
      return 1;
    }
    if (!quiet) {
      opt.log = [](const std::string& line) {
        std::printf("%s\n", line.c_str());
      };
    }

    // No deck file: the overrides alone are the deck.
    if (decks.empty()) decks.push_back("");

    for (const auto& path : decks) {
      scenario::Deck deck =
          path.empty() ? scenario::Deck{"<cli>", {}, }
                       : scenario::parse_deck_file(path);
      for (const auto& o : overrides) deck.set(o.key, o.value);
      // Fold --backend= into the deck before validation: dist.* keys
      // (e.g. a --transport= flag) are eagerly rejected off a ranks:
      // backend, and the check must see the backend the run will
      // actually use. This also makes --print show the effective
      // scenario directly.
      if (!opt.backend_override.empty()) {
        deck.set("backend", opt.backend_override);
      }
      auto sc = scenario::scenario_from_deck(deck);
      if (print_only) {
        print_scenario(sc);
        continue;
      }
      scenario::run_scenario(sc, opt);
    }
    return 0;
  });
}
