#!/usr/bin/env python3
"""Validate run-health artifacts: health.json and the metrics JSONL stream.

The watchdog (src/telemetry/health) writes a diagnostic bundle whose
health.json records the verdict, every event, and the bundle layout; the
snapshot stream (src/telemetry/snapshot) appends interval rows to the
metrics JSONL file before the end-of-run span/counter aggregates. This
checker pins both schemas in CI so a formatting regression fails fast
instead of silently producing artifacts the dashboard and triage tooling
cannot read.

health.json (--health PATH):
  * parses as a JSON object with schema == 1, string scenario/backend,
  * verdict is one of ok|warn|abort, consistent with fatal/events
    (abort <=> fatal is an event object; ok <=> no events),
  * every event (and fatal) carries detector/action/step/message,
  * artifacts is an object of string paths including dir/thermo_tail,
  * an optional "ranks" list (distributed runs) holds per-rank objects
    with numeric rank/last_step and a string log path,
  * --expect-detector NAME additionally requires an event from NAME,
  * --expect-verdict V additionally pins the verdict,
  * --expect-ranks K additionally requires the ranks list with K entries.

metrics.jsonl (--metrics PATH):
  * every line is a JSON object with kind snapshot|span|counter,
  * snapshot rows carry seq/t_s/step/steps_delta/wall_delta_s/ns_per_day/
    pairs_per_s numbers, spans/counters objects, shard_busy_s/shard_wait_s
    equal-length number arrays, and a numeric imbalance,
  * seq increases from 0 and snapshots precede the final aggregates,
  * at least one span and one counter aggregate row closes the file,
  * --min-snapshots N requires >= N snapshot rows,
  * --expect-shards K requires every snapshot's shard arrays to have K
    entries (and a positive imbalance once any shard was busy).

Usage: check_health_schema.py [--health H.json [--expect-detector D]
                               [--expect-verdict V] [--expect-ranks K]]
                              [--metrics M.jsonl [--min-snapshots N]
                               [--expect-shards K]]
Exit status: 0 when every requested file validates, 1 otherwise.
"""

import argparse
import json
import sys

VERDICTS = ("ok", "warn", "abort")
EVENT_FIELDS = ("detector", "action", "step", "message")


def fail(path, msg):
    print(f"FAIL {path}: {msg}")
    return False


def is_num(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def check_event(path, label, event):
    if not isinstance(event, dict):
        return fail(path, f"{label} is not an object")
    for field in EVENT_FIELDS:
        if field not in event:
            return fail(path, f"{label} lacks '{field}'")
    if event["action"] not in ("warn", "abort"):
        return fail(path, f"{label} action '{event['action']}' is not "
                          "warn|abort (off events must never be emitted)")
    if not is_num(event["step"]):
        return fail(path, f"{label} step is not a number")
    return True


def check_ranks(path, ranks, expect_ranks):
    if ranks is None:
        if expect_ranks is not None:
            return fail(path, f"no 'ranks' list, want {expect_ranks} entries")
        return True
    if not isinstance(ranks, list):
        return fail(path, "'ranks' is not a list")
    for i, entry in enumerate(ranks):
        label = f"ranks[{i}]"
        if not isinstance(entry, dict):
            return fail(path, f"{label} is not an object")
        for key in ("rank", "last_step"):
            if not is_num(entry.get(key)):
                return fail(path, f"{label}.{key} is not a number")
        if entry["rank"] != i:
            return fail(path, f"{label}.rank is {entry['rank']}, want {i}")
        if not isinstance(entry.get("log"), str):
            return fail(path, f"{label}.log is not a string")
    if expect_ranks is not None and len(ranks) != expect_ranks:
        return fail(path, f"'ranks' has {len(ranks)} entries, want "
                          f"{expect_ranks}")
    return True


def check_health(path, expect_detector, expect_verdict, expect_ranks):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as ex:
        return fail(path, f"cannot parse: {ex}")
    if not isinstance(doc, dict):
        return fail(path, "top level is not an object")
    if doc.get("schema") != 1:
        return fail(path, f"schema is {doc.get('schema')!r}, want 1")
    for key in ("scenario", "backend"):
        if not isinstance(doc.get(key), str) or not doc[key]:
            return fail(path, f"'{key}' is not a non-empty string")
    verdict = doc.get("verdict")
    if verdict not in VERDICTS:
        return fail(path, f"verdict {verdict!r} not in {VERDICTS}")
    events = doc.get("events")
    if not isinstance(events, list):
        return fail(path, "'events' is not a list")
    for i, event in enumerate(events):
        if not check_event(path, f"events[{i}]", event):
            return False
    fatal = doc.get("fatal")
    if verdict == "abort":
        if not check_event(path, "fatal", fatal):
            return False
    elif fatal is not None:
        return fail(path, f"verdict '{verdict}' but fatal is set")
    if verdict == "ok" and events:
        return fail(path, "verdict 'ok' but events is non-empty")
    if verdict != "ok" and not events:
        return fail(path, f"verdict '{verdict}' but events is empty")
    artifacts = doc.get("artifacts")
    if not isinstance(artifacts, dict):
        return fail(path, "'artifacts' is not an object")
    for key in ("dir", "thermo_tail"):
        if not isinstance(artifacts.get(key), str) or not artifacts[key]:
            return fail(path, f"artifacts.{key} is not a non-empty string")
    if expect_detector is not None:
        hit = [e for e in events if e.get("detector") == expect_detector]
        if not hit:
            return fail(path, f"no event from detector '{expect_detector}' "
                              f"(saw {[e.get('detector') for e in events]})")
    if expect_verdict is not None and verdict != expect_verdict:
        return fail(path, f"verdict '{verdict}', want '{expect_verdict}'")
    if not check_ranks(path, doc.get("ranks"), expect_ranks):
        return False
    print(f"OK   {path}: verdict={verdict}, {len(events)} event(s)")
    return True


SNAPSHOT_NUMBERS = ("t_s", "steps_delta", "wall_delta_s", "ns_per_day",
                    "pairs_per_s", "imbalance")


def check_snapshot(path, lineno, row, expect_shards):
    label = f"line {lineno} (snapshot)"
    for key in ("seq", "step"):
        if not is_num(row.get(key)):
            return fail(path, f"{label}: '{key}' is not a number")
    for key in SNAPSHOT_NUMBERS:
        if not is_num(row.get(key)):
            return fail(path, f"{label}: '{key}' is not a number")
    for key in ("spans", "counters"):
        obj = row.get(key)
        if not isinstance(obj, dict):
            return fail(path, f"{label}: '{key}' is not an object")
        for name, value in obj.items():
            if not is_num(value):
                return fail(path, f"{label}: {key}[{name!r}] not a number")
    busy = row.get("shard_busy_s")
    wait = row.get("shard_wait_s")
    for key, arr in (("shard_busy_s", busy), ("shard_wait_s", wait)):
        if not isinstance(arr, list) or not all(is_num(v) for v in arr):
            return fail(path, f"{label}: '{key}' is not a number array")
    if len(busy) != len(wait):
        return fail(path, f"{label}: shard_busy_s has {len(busy)} entries "
                          f"but shard_wait_s has {len(wait)}")
    if expect_shards is not None and len(busy) != expect_shards:
        return fail(path, f"{label}: {len(busy)} shard entries, want "
                          f"{expect_shards}")
    if sum(busy) > 0.0 and row["imbalance"] <= 0.0:
        return fail(path, f"{label}: shards were busy but imbalance is "
                          f"{row['imbalance']}")
    return True


def check_metrics(path, min_snapshots, expect_shards):
    try:
        with open(path) as f:
            lines = f.read().splitlines()
    except OSError as ex:
        return fail(path, f"cannot read: {ex}")
    snapshots = spans = counters = 0
    seen_aggregate = False
    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError as ex:
            return fail(path, f"line {lineno}: not JSON: {ex}")
        if not isinstance(row, dict):
            return fail(path, f"line {lineno}: not an object")
        kind = row.get("kind")
        if kind == "snapshot":
            if seen_aggregate:
                return fail(path, f"line {lineno}: snapshot after the "
                                  "final span/counter aggregates")
            if row.get("seq") != snapshots:
                return fail(path, f"line {lineno}: seq {row.get('seq')!r}, "
                                  f"want {snapshots}")
            if not check_snapshot(path, lineno, row, expect_shards):
                return False
            snapshots += 1
        elif kind in ("span", "counter"):
            seen_aggregate = True
            if not isinstance(row.get("name"), str) or not row["name"]:
                return fail(path, f"line {lineno}: '{kind}' row lacks a "
                                  "name")
            value_keys = ("calls", "total_s", "mean_s",
                          "max_s") if kind == "span" else ("value",)
            for key in value_keys:
                if not is_num(row.get(key)):
                    return fail(path, f"line {lineno}: '{key}' is not a "
                                      "number")
            if kind == "span":
                spans += 1
            else:
                counters += 1
        else:
            return fail(path, f"line {lineno}: unknown kind {kind!r}")
    if spans == 0 or counters == 0:
        return fail(path, f"missing final aggregates ({spans} span, "
                          f"{counters} counter rows)")
    if snapshots < min_snapshots:
        return fail(path, f"{snapshots} snapshot row(s), want >= "
                          f"{min_snapshots}")
    print(f"OK   {path}: {snapshots} snapshot(s), {spans} span(s), "
          f"{counters} counter(s)")
    return True


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--health", help="health.json to validate")
    ap.add_argument("--expect-detector",
                    help="require an event from this detector")
    ap.add_argument("--expect-verdict", choices=VERDICTS,
                    help="require this verdict")
    ap.add_argument("--expect-ranks", type=int,
                    help="require a per-rank status list with K entries")
    ap.add_argument("--metrics", help="metrics JSONL to validate")
    ap.add_argument("--min-snapshots", type=int, default=0,
                    help="minimum snapshot rows in --metrics")
    ap.add_argument("--expect-shards", type=int,
                    help="shard-array length every snapshot must have")
    args = ap.parse_args()
    if args.health is None and args.metrics is None:
        ap.error("nothing to check: pass --health and/or --metrics")
    ok = True
    if args.health is not None:
        ok &= check_health(args.health, args.expect_detector,
                           args.expect_verdict, args.expect_ranks)
    if args.metrics is not None:
        ok &= check_metrics(args.metrics, args.min_snapshots,
                            args.expect_shards)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
