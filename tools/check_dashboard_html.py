#!/usr/bin/env python3
"""Validate that a `wsmd report --html` dashboard is self-contained.

The dashboard's contract (src/telemetry/dashboard) is one file that renders
offline: every chart is inline SVG, every style is an inline <style> block,
and nothing references the network or the local filesystem. This checker
pins that in CI so a refactor that sneaks in a CDN stylesheet, a <script>
tag, or an external image breaks loudly:

  * the file is non-empty, starts with <!DOCTYPE html>, and contains the
    core sections (<svg charts, the cost table, the shard-load section),
  * no external references: http://, https://, src=, <link, <script,
    @import, and url( are all forbidden anywhere in the document.

Usage: check_dashboard_html.py DASHBOARD.html [DASHBOARD.html ...]
Exit status: 0 when every file validates, 1 otherwise.
"""

import sys

FORBIDDEN = ("http://", "https://", "src=", "<link", "<script", "@import",
             "url(")
REQUIRED = ("<!DOCTYPE html>", "<svg", "<style>", "Measured vs modeled",
            "Shard load")


def fail(path, msg):
    print(f"FAIL {path}: {msg}")
    return False


def check(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = f.read()
    except (OSError, UnicodeDecodeError) as ex:
        return fail(path, f"cannot read: {ex}")
    if not doc.strip():
        return fail(path, "empty document")
    if not doc.lstrip().startswith("<!DOCTYPE html>"):
        return fail(path, "does not start with <!DOCTYPE html>")
    for needle in REQUIRED:
        if needle not in doc:
            return fail(path, f"missing required content {needle!r}")
    lowered = doc.lower()
    for needle in FORBIDDEN:
        pos = lowered.find(needle)
        if pos >= 0:
            line = doc.count("\n", 0, pos) + 1
            return fail(path, f"external reference {needle!r} at line "
                              f"{line} — the dashboard must be "
                              "self-contained")
    print(f"OK   {path}: self-contained ({len(doc)} bytes, "
          f"{doc.count('<svg')} SVG chart(s))")
    return True


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 1
    ok = True
    for path in argv[1:]:
        ok &= check(path)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
