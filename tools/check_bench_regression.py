#!/usr/bin/env python3
"""Bench-regression gate: compare emitted BENCH_*.json against a baseline.

The smoke benches emit machine-readable BENCH_<name>.json (util/bench_json).
This gate compares the *modeled* throughput metrics against the checked-in
bench/baseline.json. Only the "rows" array is gated; the envelope's "meta"
provenance block (git SHA, compiler, build type, thread count) is
informational and ignored here, so provenance churn can never fail the
gate:

  * Structural mismatches FAIL (exit 1): a baseline bench whose BENCH file
    is missing, a baseline row with no matching emitted row, or a row
    missing the metric key. These mean a bench was dropped or its schema
    drifted — silent loss of coverage.
  * Metric deviations beyond the tolerance band WARN by default (exit 0):
    shared CI runners have noisy clocks, so throughput deltas are surfaced
    in the log but do not fail the build. Pass --strict to turn deviations
    into failures (for dedicated runners).

Baseline format (bench/baseline.json):

  {
    "tolerance_rel": 0.25,
    "benches": {
      "<name>": {
        "metric": "steps_per_s",       # row key holding the gated value
        "key": ["element", "threads"],  # fields identifying a row
        "rows": [ {"element": "Cu", "threads": 2, "steps_per_s": 1.0e5} ]
      }
    },
    "ratios": [
      {"label": "fp64 profile speedup", "bench": "kernels",
       "metric": "pairs_per_s",
       "num": {"kernel": "reference", "path": "profile"},
       "den": {"kernel": "reference", "path": "analytic"},
       "min": 2.0},
      {"label": "fp64 avx2 over scalar batch", "bench": "kernels",
       "metric": "pairs_per_s",
       "when_meta": {"simd_tier": "avx2"},
       "num": {"kernel": "reference", "path": "soa"},
       "den": {"kernel": "reference", "path": "soa_scalar"},
       "min": 1.2}
    ]
  }

Ratio checks divide two emitted rows of the *same run* — both sides share
the machine and the load, so unlike absolute throughput they are stable on
shared runners. A ratio below its "min" therefore FAILS even in non-strict
mode: it means a structural performance property (e.g. the profiled hot
path beating virtual dispatch) was lost, not that the runner was slow.

A ratio with "when_meta" applies only when every listed key matches the
emitted BENCH file's top-level metadata; otherwise it is skipped (and says
so). This gates ISA-dependent floors — e.g. the AVX2-over-scalar speedup is
only meaningful when the run actually dispatched the avx2 tier.

Usage: check_bench_regression.py [--build-dir build]
                                 [--baseline bench/baseline.json] [--strict]
"""

import argparse
import json
import math
import os
import sys


def load_json(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def row_key(row, fields):
    return tuple(row.get(f) for f in fields)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", default="build",
                    help="directory holding the emitted BENCH_*.json")
    ap.add_argument("--baseline", default="bench/baseline.json")
    ap.add_argument("--strict", action="store_true",
                    help="fail (not warn) on metric deviations")
    args = ap.parse_args()

    baseline = load_json(args.baseline)
    tolerance = float(baseline.get("tolerance_rel", 0.25))
    benches = baseline.get("benches")
    if not benches:
        print(f"error: {args.baseline} has no 'benches' table")
        return 1

    failures = []
    warnings = []
    checked = 0
    emitted_rows = {}  # bench name -> rows (for the ratio checks below)
    emitted_meta = {}  # bench name -> envelope (for when_meta gating)
    for name, spec in benches.items():
        path = os.path.join(args.build_dir, f"BENCH_{name}.json")
        if not os.path.exists(path):
            failures.append(f"{name}: {path} not emitted "
                            "(bench removed or not run?)")
            continue
        emitted = load_json(path)
        rows = emitted.get("rows")
        if not isinstance(rows, list):
            failures.append(f"{name}: emitted JSON has no 'rows' array")
            continue
        emitted_rows[name] = rows
        emitted_meta[name] = emitted
        metric = spec["metric"]
        key_fields = spec["key"]
        emitted_by_key = {row_key(r, key_fields): r for r in rows}
        for base_row in spec["rows"]:
            key = row_key(base_row, key_fields)
            label = f"{name}[{', '.join(map(str, key))}]"
            got_row = emitted_by_key.get(key)
            if got_row is None:
                failures.append(f"{label}: no emitted row matches "
                                f"{dict(zip(key_fields, key))}")
                continue
            if metric not in got_row:
                failures.append(f"{label}: emitted row lacks metric "
                                f"'{metric}'")
                continue
            base_val = float(base_row[metric])
            got_val = float(got_row[metric])
            checked += 1
            if base_val <= 0 or got_val <= 0:
                failures.append(f"{label}: non-positive {metric} "
                                f"(baseline {base_val}, got {got_val})")
                continue
            # Symmetric log-ratio band: a 2x slowdown and a 2x speedup are
            # equally far outside it.
            deviation = abs(math.log(got_val / base_val))
            band = math.log1p(tolerance)
            status = "ok"
            if deviation > band:
                direction = "faster" if got_val > base_val else "SLOWER"
                msg = (f"{label}: {metric} {got_val:.6g} vs baseline "
                       f"{base_val:.6g} ({got_val / base_val:.2f}x, "
                       f"{direction}; band ±{tolerance:.0%})")
                warnings.append(msg)
                status = "WARN"
            print(f"  [{status:4s}] {label}: {metric} = {got_val:.6g} "
                  f"(baseline {base_val:.6g})")

    def match_row(rows, selector):
        hits = [r for r in rows
                if all(r.get(k) == v for k, v in selector.items())]
        return hits[0] if len(hits) == 1 else None

    for ratio in baseline.get("ratios", []):
        label = ratio.get("label", "ratio")
        bench = ratio["bench"]
        metric = ratio["metric"]
        rows = emitted_rows.get(bench)
        envelope = emitted_meta.get(bench)
        if rows is None:
            # Bench not row-gated above (or its file failed to load there):
            # read the BENCH file directly so a ratio is never skipped
            # silently.
            path = os.path.join(args.build_dir, f"BENCH_{bench}.json")
            if not os.path.exists(path):
                if bench not in benches:  # otherwise already failed above
                    failures.append(f"{label}: {path} not emitted")
                continue
            envelope = load_json(path)
            rows = envelope.get("rows") or []
        when = ratio.get("when_meta")
        if when:
            missed = {k: v for k, v in when.items()
                      if (envelope or {}).get(k) != v}
            if missed:
                print(f"  [skip] {label}: requires {when}, emitted "
                      f"{ {k: (envelope or {}).get(k) for k in when} }")
                continue
        num_row = match_row(rows, ratio["num"])
        den_row = match_row(rows, ratio["den"])
        if num_row is None or den_row is None:
            failures.append(f"{label}: no unique emitted row matches "
                            f"num={ratio['num']} / den={ratio['den']}")
            continue
        num = float(num_row.get(metric, 0.0))
        den = float(den_row.get(metric, 0.0))
        if den <= 0 or num <= 0:
            failures.append(f"{label}: non-positive {metric} "
                            f"(num {num}, den {den})")
            continue
        value = num / den
        minimum = float(ratio["min"])
        checked += 1
        status = "ok"
        if value < minimum:
            failures.append(f"{label}: {metric} ratio {value:.2f}x below "
                            f"required {minimum:.2f}x")
            status = "FAIL"
        print(f"  [{status:4s}] {label}: {value:.2f}x (>= {minimum:.2f}x)")

    print(f"\nbench gate: {checked} metric(s) checked, "
          f"{len(warnings)} deviation(s), {len(failures)} structural "
          f"failure(s)")
    for w in warnings:
        print(f"  warning: {w}")
    for f in failures:
        print(f"  FAILURE: {f}")
    if failures:
        return 1
    if warnings and args.strict:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
