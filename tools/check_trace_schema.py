#!/usr/bin/env python3
"""Validate a telemetry trace JSON (telemetry::write_trace_json output).

The exporter writes the chrome://tracing / Perfetto "trace event" format:
a top-level object with "traceEvents" holding "M" thread-name metadata
events followed by "X" complete events. This checker pins that schema in
CI so a formatting regression (unquoted string, missing field, wrong
phase letter) fails fast instead of silently producing a trace Perfetto
cannot load:

  * the document parses as JSON with a "traceEvents" list,
  * every event is an object with string "ph" of "M" or "X",
  * "M" events are thread_name metadata with an args.name string,
  * "X" events carry name/cat/pid/tid plus numeric ts/dur >= 0,
  * every "X" event's tid was declared by an "M" metadata event.

Usage: check_trace_schema.py TRACE.json [TRACE.json ...]
Exit status: 0 when every file validates, 1 otherwise.
"""

import json
import sys


def fail(path, msg):
    print(f"FAIL {path}: {msg}")
    return False


def check_trace(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as ex:
        return fail(path, f"cannot parse: {ex}")

    if not isinstance(doc, dict):
        return fail(path, "top level is not an object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return fail(path, '"traceEvents" missing or not a list')

    declared_tids = set()
    n_meta = n_complete = 0
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            return fail(path, f"{where} is not an object")
        ph = ev.get("ph")
        if ph == "M":
            n_meta += 1
            if ev.get("name") != "thread_name":
                return fail(path, f"{where}: M event is not thread_name")
            args = ev.get("args")
            if not isinstance(args, dict) or not isinstance(
                args.get("name"), str
            ):
                return fail(path, f"{where}: M event lacks args.name string")
            if not isinstance(ev.get("tid"), int):
                return fail(path, f"{where}: M event lacks integer tid")
            declared_tids.add(ev["tid"])
        elif ph == "X":
            n_complete += 1
            for key, kind in (
                ("name", str),
                ("cat", str),
                ("pid", int),
                ("tid", int),
            ):
                if not isinstance(ev.get(key), kind):
                    return fail(
                        path, f"{where}: X event '{key}' missing or not "
                        f"{kind.__name__}"
                    )
            for key in ("ts", "dur"):
                value = ev.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    return fail(
                        path, f"{where}: X event '{key}' not a number >= 0"
                    )
            if ev["tid"] not in declared_tids:
                return fail(
                    path, f"{where}: tid {ev['tid']} has no thread_name "
                    "metadata"
                )
        else:
            return fail(path, f"{where}: unexpected ph {ph!r}")

    print(
        f"OK   {path}: {n_meta} thread(s), {n_complete} complete event(s)"
    )
    return True


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 1
    ok = True
    for path in argv[1:]:
        ok &= check_trace(path)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
