#!/usr/bin/env python3
"""Append a build's BENCH_*.json envelopes to a bench-history JSONL log.

The smoke benches emit machine-readable BENCH_<name>.json envelopes
(util/bench_json: {"bench", optional bench meta, "meta" provenance,
"rows"}). check_bench_regression.py gates one build against the baseline;
this tool keeps the longitudinal record — every CI run appends one JSONL
line per envelope to bench/history.jsonl (cached across runs), so
throughput trends can be charted without archaeology over CI logs.

Each history line is:

  {"run_id": ..., "recorded_at": ..., "bench": ..., "meta": {...},
   "rows": [...], ...bench-level meta keys...}

Appending is idempotent per (run_id, bench): re-running inside the same
CI job (or a retried job) replaces nothing and adds nothing — existing
lines for the run are detected and skipped, so a flaky retry cannot
double-count a run.

Usage: bench_history.py --build-dir DIR --history FILE
                        --run-id ID [--recorded-at STAMP]
Exit status: 0 on success (including "nothing new to append"),
1 when an envelope cannot be read or the history file cannot be written.
"""

import argparse
import glob
import json
import os
import sys


def load_existing(path):
    """(run_id, bench) pairs already logged, tolerating a missing file."""
    seen = set()
    if not os.path.exists(path):
        return seen
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            if not line.strip():
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as ex:
                raise SystemExit(
                    f"bench_history: {path} line {lineno} is not JSON "
                    f"({ex}) — refusing to append to a corrupt history")
            seen.add((row.get("run_id"), row.get("bench")))
    return seen


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", required=True,
                    help="directory holding the emitted BENCH_*.json")
    ap.add_argument("--history", required=True,
                    help="JSONL history file to append to")
    ap.add_argument("--run-id", required=True,
                    help="CI run identifier (e.g. $GITHUB_RUN_ID)")
    ap.add_argument("--recorded-at", default="",
                    help="timestamp string to stamp each line with")
    args = ap.parse_args()

    paths = sorted(glob.glob(os.path.join(args.build_dir, "BENCH_*.json")))
    if not paths:
        print(f"bench_history: no BENCH_*.json under {args.build_dir}")
        return 1

    seen = load_existing(args.history)
    os.makedirs(os.path.dirname(args.history) or ".", exist_ok=True)
    appended = 0
    with open(args.history, "a") as out:
        for path in paths:
            try:
                with open(path) as f:
                    envelope = json.load(f)
            except (OSError, json.JSONDecodeError) as ex:
                print(f"bench_history: cannot read {path}: {ex}")
                return 1
            bench = envelope.get("bench")
            if not isinstance(bench, str) or "rows" not in envelope:
                print(f"bench_history: {path} is not a BENCH envelope")
                return 1
            if (args.run_id, bench) in seen:
                print(f"bench_history: skip {bench} "
                      f"(run {args.run_id} already logged)")
                continue
            line = dict(envelope)
            line["run_id"] = args.run_id
            line["recorded_at"] = args.recorded_at
            out.write(json.dumps(line, sort_keys=True) + "\n")
            appended += 1
    print(f"bench_history: appended {appended} envelope(s) to "
          f"{args.history}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
