/// \file engine_backends.cpp
/// The unified Engine interface: run the same tantalum crystal on all
/// three backends — FP64 reference, serial wafer, sharded wafer — through
/// one code path, then compare trajectories and look at the sharded
/// backend's decomposition.
///
///   $ ./engine_backends [threads]
///
/// Demonstrates:
///   1. building any backend with make_engine,
///   2. transferring velocities between engines (identical trajectories),
///   3. the per-step callback shared by every backend,
///   4. shard layout, per-shard stats, and the modeled halo-exchange cost.

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "eam/zhou.hpp"
#include "engine/engine.hpp"
#include "engine/sharded_wafer.hpp"
#include "lattice/lattice.hpp"

int main(int argc, char** argv) {
  using namespace wsmd;

  const int threads = argc > 1 ? std::atoi(argv[1]) : 2;

  const auto params = eam::zhou_parameters("Ta");
  auto potential =
      std::make_shared<eam::ZhouEam>("Ta", params.paper_cutoff());
  const auto crystal = lattice::replicate(
      lattice::UnitCell::of(params.structure, params.lattice_constant()),
      6, 6, 4);

  engine::EngineConfig config;
  config.wafer.mapping.cell_size = params.lattice_constant();
  config.threads = threads;

  // 1. One construction path for every backend.
  auto reference = engine::make_engine(engine::Backend::kReference, crystal,
                                       potential, config);
  auto sharded = engine::make_engine(engine::Backend::kShardedWafer, crystal,
                                     potential, config);
  std::printf("Backends: %s (%zu atoms) vs %s (%d threads)\n",
              reference->backend_name(), reference->atom_count(),
              sharded->backend_name(), threads);

  // 2. Same initial conditions on both engines.
  Rng rng(2024);
  reference->thermalize(290.0, rng);
  sharded->set_velocities(reference->velocities());

  // 3. Drive both through the identical interface; the callback sees every
  //    step of either backend.
  const int steps = 50;
  const auto report = [](const engine::Thermo& t) {
    if (t.step % 25 == 0) {
      std::printf("  step %3ld: E = %10.4f eV, T = %5.1f K\n", t.step,
                  t.total_energy, t.temperature);
    }
  };
  std::printf("%s:\n", reference->backend_name());
  reference->run(steps, report);
  std::printf("%s:\n", sharded->backend_name());
  sharded->run(steps, report);

  double max_err = 0.0;
  const auto rp = reference->positions();
  const auto sp = sharded->positions();
  for (std::size_t i = 0; i < rp.size(); ++i) {
    max_err = std::max(max_err, norm(rp[i] - sp[i]));
  }
  std::printf("Trajectory agreement after %d steps: max |dr| = %.2e A\n",
              steps, max_err);

  // 4. The sharded backend's decomposition and accounting.
  const auto* sw = dynamic_cast<engine::ShardedWafer*>(sharded.get());
  std::printf("Shard layout (%dx%d core grid, b = %d):\n",
              sw->wafer().mapping().grid_width(),
              sw->wafer().mapping().grid_height(), sw->wafer().b());
  for (std::size_t t = 0; t < sw->shards().size(); ++t) {
    const auto& s = sw->shards()[t];
    const auto& stats = sw->shard_stats()[t];
    std::printf("  shard %zu: rows [%3d, %3d)  mean %.0f cycles, "
                "max %.0f cycles\n",
                t, s.y0, s.y1, stats.mean_cycles, stats.max_cycles);
  }
  std::printf("Modeled halo exchange: %.0f cycles/step "
              "(0 on a single shard)\n",
              sw->halo_cycles_per_step());
  std::printf("Modeled wafer rate: %.0f timesteps/s — identical at any "
              "thread count.\n",
              1.0 / sw->last_step_stats().wall_seconds);
  return 0;
}
