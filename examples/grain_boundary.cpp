/// \file grain_boundary.cpp
/// The paper's motivating science case (Sec. I, Figs. 2 and 9): a tungsten
/// grain boundary in a thin slab, simulated on the wafer-scale engine with
/// online atom swaps maintaining the atom-to-core mapping as the boundary
/// evolves. Writes an extended-XYZ snapshot for OVITO/VMD visualization.
///
///   $ ./grain_boundary [tilt_deg] [atoms]

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/wse_md.hpp"
#include "eam/tabulated.hpp"
#include "eam/zhou.hpp"
#include "io/xyz.hpp"
#include "lattice/grain_boundary.hpp"
#include "md/analysis.hpp"

int main(int argc, char** argv) {
  using namespace wsmd;

  const double tilt = argc > 1 ? std::atof(argv[1]) : 16.0;
  const std::size_t target_atoms =
      argc > 2 ? static_cast<std::size_t>(std::atol(argv[2])) : 5000;

  // Bicrystal: two W grains misoriented by `tilt` degrees about the slab
  // normal, meeting at a plane (paper Fig. 2 geometry).
  lattice::GrainBoundaryParams params;
  params.element = "W";
  params.tilt_angle_deg = tilt;
  params.cells_z = 3;
  const auto gb = lattice::make_grain_boundary_with_atom_count(params,
                                                               target_atoms);
  std::printf("W bicrystal: %zu atoms, tilt %.1f deg, %zu seam atoms fused\n",
              gb.structure.size(), tilt, gb.fused_atoms);

  const auto p = eam::zhou_parameters("W");
  auto analytic = std::make_shared<eam::ZhouEam>("W", p.paper_cutoff());
  auto potential = std::make_shared<eam::TabulatedEam>(
      eam::TabulatedEam::from_potential(*analytic, 2000, 2000));

  // Wafer engine with online swaps every 20 steps (paper Fig. 9 found
  // 10-100 sufficient).
  core::WseMdConfig cfg;
  cfg.mapping.cell_size = p.lattice_constant();
  cfg.swap_interval = 20;
  core::WseMd engine(gb.structure, potential, cfg);
  Rng rng(77);
  engine.thermalize(290.0, rng);

  std::printf("Mapped to %zu cores (%dx%d), b = %d, initial assignment "
              "cost %.2f A\n",
              engine.mapping().core_count(), engine.mapping().grid_width(),
              engine.mapping().grid_height(), engine.b(),
              engine.assignment_cost());

  std::printf("\n step | assignment cost (A) | max in-plane disp (A) | "
              "swaps\n");
  std::size_t swaps_total = 0;
  for (int block = 0; block < 5; ++block) {
    for (int k = 0; k < 40; ++k) {
      const auto stats = engine.step();
      swaps_total += stats.swaps_applied;
    }
    std::printf(" %4ld | %19.2f | %21.3f | %zu\n", engine.step_count(),
                engine.assignment_cost(), engine.max_inplane_displacement(),
                swaps_total);
  }

  // Structural classification (the paper's Fig. 2: grain-boundary atoms
  // in white): centrosymmetry flags the non-crystalline boundary band.
  lattice::Structure snapshot = gb.structure;
  snapshot.positions = engine.positions();
  const auto analysis = md::analyze_structure(
      snapshot.box, snapshot.positions, 1.2 * p.lattice_constant(), 8);
  const auto defect = md::defective_atoms(analysis, 1.5);
  std::size_t gb_atoms = 0;
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    if (defect[i]) {
      snapshot.types[i] = 1;  // species "GB" in the dump
      ++gb_atoms;
    }
  }
  std::printf("\nCentrosymmetry classification: %zu atoms in boundary/"
              "surface environments (%.1f%%)\n",
              gb_atoms, 100.0 * gb_atoms / snapshot.size());

  io::write_xyz_file("grain_boundary.xyz", snapshot, {"W", "Gb"},
                     "tilt=" + std::to_string(tilt));
  std::printf("Wrote grain_boundary.xyz (%zu atoms; species 'Gb' marks the "
              "boundary, as in the paper's Fig. 2).\n",
              snapshot.size());
  std::printf("Modeled wafer rate for this workload: %.0f steps/s\n",
              1.0 / engine.run(1).wall_seconds);
  return 0;
}
