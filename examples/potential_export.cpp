/// \file potential_export.cpp
/// Export WSMD's analytic Zhou EAM parameterizations as LAMMPS-compatible
/// `setfl` (.eam.alloy) files, and demonstrate the round trip through the
/// reader. Useful for diffing this reproduction's potentials against a
/// production LAMMPS setup (the paper's baselines consumed this format).
///
///   $ ./potential_export [element ...]     (default: Cu W Ta)

#include <cstdio>
#include <cmath>
#include <string>
#include <vector>

#include "eam/setfl.hpp"
#include "eam/zhou.hpp"

int main(int argc, char** argv) {
  using namespace wsmd;

  std::vector<std::string> elements;
  for (int i = 1; i < argc; ++i) elements.emplace_back(argv[i]);
  if (elements.empty()) elements = {"Cu", "W", "Ta"};

  for (const auto& el : elements) {
    const auto params = eam::zhou_parameters(el);
    const eam::ZhouEam pot(el);
    const std::string path = el + ".eam.alloy";
    eam::write_setfl_file(pot, path, 2000, 2000, 0.0,
                          "Zhou-Johnson-Wadley PRB 69, 144113 (2004)");

    // Round trip: read back and spot-check the pair function.
    const auto back = eam::read_setfl_file(path);
    double max_err = 0.0;
    for (double r = 2.0; r < pot.cutoff(); r += 0.05) {
      max_err = std::max(max_err,
                         std::fabs(back.pair(0, 0, r) - pot.pair(0, 0, r)));
    }
    std::printf(
        "%s: wrote %-14s (a0 = %.3f A, %s, rcut = %.2f A); round-trip "
        "max |dphi| = %.1e eV\n",
        el.c_str(), path.c_str(), params.lattice_constant(),
        params.structure.c_str(), pot.cutoff(), max_err);
  }

  // Alloy demo: a Cu-Ta binary table with Johnson mixing.
  const eam::ZhouEam alloy({eam::zhou_parameters("Cu"),
                            eam::zhou_parameters("Ta")});
  eam::write_setfl_file(alloy, "CuTa.eam.alloy", 2000, 2000, 0.0,
                        "Cu-Ta Johnson-mixed binary");
  std::printf("CuTa: wrote CuTa.eam.alloy (2 elements, Johnson alloy "
              "mixing)\n");
  return 0;
}
