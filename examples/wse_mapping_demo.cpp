/// \file wse_mapping_demo.cpp
/// Demonstrates the wafer-scale substrate directly: the locality-preserving
/// atom mapping, the systolic marching multicast on the wavelet-level
/// fabric simulator, and the Tungsten-style per-tile program of paper
/// Fig. 4c.
///
///   $ ./wse_mapping_demo

#include <cstdio>
#include <memory>

#include "core/mapping.hpp"
#include "eam/zhou.hpp"
#include "lattice/lattice.hpp"
#include "tungsten/program.hpp"
#include "wse/cost_model.hpp"
#include "wse/multicast.hpp"

int main() {
  using namespace wsmd;

  // --- 1. Locality-preserving mapping (paper Sec. III-A) ---
  const auto p = eam::zhou_parameters("Ta");
  const auto crystal = lattice::replicate(
      lattice::UnitCell::of(p.structure, p.lattice_constant()), 8, 8, 6);
  core::MappingConfig mcfg;
  mcfg.cell_size = p.lattice_constant();
  const auto mapping = core::AtomMapping::for_structure(crystal, mcfg);

  std::printf("Mapping: %zu atoms -> %dx%d cores; assignment cost %.2f A\n",
              crystal.size(), mapping.grid_width(), mapping.grid_height(),
              mapping.assignment_cost(crystal.positions));
  const int b = mapping.required_b(crystal.positions, p.paper_cutoff());
  std::printf("Neighborhood radius b = %d -> %.0f candidates per worker "
              "(paper Ta: b=4, 80 candidates)\n\n",
              b, wse::CostModel::candidates_for_b(b));

  // --- 2. Marching multicast on the wavelet-level fabric (Sec. III-B) ---
  const int W = 16, H = 16;
  std::vector<std::vector<std::uint32_t>> payloads(
      static_cast<std::size_t>(W) * H);
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    payloads[i] = {static_cast<std::uint32_t>(i), 0u, 0u};  // 12-byte record
  }
  const auto ex = wse::neighborhood_exchange(W, H, b, payloads);
  const std::size_t center = static_cast<std::size_t>(H / 2) * W + W / 2;
  std::printf("Fabric exchange on %dx%d tiles, b=%d:\n", W, H, b);
  std::printf("  horizontal stage: %llu cycles, vertical: %llu cycles\n",
              static_cast<unsigned long long>(ex.horizontal_cycles),
              static_cast<unsigned long long>(ex.vertical_cycles));
  std::printf("  center tile gathered %zu words (= %d^2 x 3), contention "
              "events: %llu\n\n",
              ex.gathered[center].size(), 2 * b + 1,
              static_cast<unsigned long long>(ex.contention_events));

  // --- 3. Fig. 4c as a Tungsten-style per-tile program ---
  const int row_w = 12, row_b = 2;
  tungsten::Machine machine(row_w, 1, wse::kNumExchangeVcs);
  wse::configure_horizontal_roles(machine.fabric(), row_b);
  for (int x = 0; x < row_w; ++x) {
    tungsten::TileProgram prog;
    // parallel { serial { lr[] <- atom; lr[] <- {ADV,RST}; } ... }
    prog.thread()
        .send_vector(wse::kVcEast, {static_cast<std::uint32_t>(1000 + x)})
        .send_commands(wse::kVcEast,
                       {wse::RouterCmd::Advance, wse::RouterCmd::Reset});
    prog.thread()
        .send_vector(wse::kVcWest, {static_cast<std::uint32_t>(1000 + x)})
        .send_commands(wse::kVcWest,
                       {wse::RouterCmd::Advance, wse::RouterCmd::Reset});
    prog.thread().receive_into(wse::kVcEast, "row");
    prog.thread().receive_into(wse::kVcWest, "row");
    machine.load(x, 0, std::move(prog));
  }
  const auto cycles = machine.run();
  std::printf("Tungsten Fig. 4c horizontal stage on a %d-tile row (b=%d): "
              "%llu cycles\n",
              row_w, row_b, static_cast<unsigned long long>(cycles));
  std::printf("  tile 5 row buffer:");
  for (std::uint32_t wd : machine.buffer(5, 0, "row")) {
    std::printf(" %u", wd);
  }
  std::printf("\n  (atoms 1003..1007: its own plus b=2 neighbors each "
              "side)\n");
  return 0;
}
