/// \file thermal_equilibration.cpp
/// Materials-science example: prepare the paper's thin-slab benchmark
/// configuration exactly as Sec. IV-B describes — "equilibrated ... for
/// 20k timesteps with a 2 fs timestep at 290 K" — using the reference
/// engine's velocity-rescale thermostat, then verify NVE stability of the
/// equilibrated state.
///
///   $ ./thermal_equilibration [element] [scale]
///   element: Cu, W, Ta, ... (default Ta); scale divides the slab x-y size
///   (default 48 -> a few hundred atoms so the example runs in seconds).

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "eam/tabulated.hpp"
#include "eam/zhou.hpp"
#include "lattice/lattice.hpp"
#include "md/simulation.hpp"

int main(int argc, char** argv) {
  using namespace wsmd;

  const std::string element = argc > 1 ? argv[1] : "Ta";
  const int scale = argc > 2 ? std::atoi(argv[2]) : 48;

  const auto p = eam::zhou_parameters(element);
  const auto slab = lattice::paper_slab(element, scale);
  std::printf("%s thin slab: %zu atoms (%s, a0 = %.3f A), open boundaries\n",
              element.c_str(), slab.size(), p.structure.c_str(),
              p.lattice_constant());

  auto analytic = std::make_shared<eam::ZhouEam>(element);
  auto potential = std::make_shared<eam::TabulatedEam>(
      eam::TabulatedEam::from_potential(*analytic, 2000, 2000));

  md::AtomSystem system(slab, potential);
  md::SimulationConfig cfg;
  cfg.dt = 0.002;  // the paper's 2 fs
  md::Simulation sim(std::move(system), cfg);

  // Phase 1: thermostatted equilibration at 290 K. Surfaces relax and
  // release potential energy; the rescale thermostat carries it away,
  // exactly the role of the paper's LAMMPS pre-equilibration.
  std::printf("\nPhase 1 — velocity-rescale equilibration at 290 K:\n");
  std::printf(" step |   T (K) |    PE (eV)\n");
  Rng rng(1);
  sim.system().thermalize(290.0, rng);
  sim.compute_forces();
  for (int block = 0; block < 4; ++block) {
    Rng unused(0);
    auto saved = sim.config();
    sim.equilibrate(290.0, 100, rng);
    (void)saved;
    (void)unused;
    const auto t = sim.thermo();
    std::printf(" %4ld | %7.1f | %10.3f\n", t.step, t.temperature,
                t.potential_energy);
  }

  // Phase 2: microcanonical (NVE) — temperature holds near the target and
  // total energy is conserved by the symplectic leapfrog (paper Eq. 5).
  std::printf("\nPhase 2 — NVE benchmark conditions:\n");
  std::printf(" step |   T (K) | E total (eV)\n");
  const double e0 = sim.thermo().total_energy;
  for (int block = 0; block < 4; ++block) {
    sim.run(100);
    const auto t = sim.thermo();
    std::printf(" %4ld | %7.1f | %12.4f\n", t.step, t.temperature,
                t.total_energy);
  }
  const auto final_thermo = sim.thermo();
  std::printf(
      "\nNVE drift over the benchmark window: %.2e eV (%.1e of kinetic)\n",
      final_thermo.total_energy - e0,
      std::fabs(final_thermo.total_energy - e0) /
          final_thermo.kinetic_energy);
  std::printf("Cohesive energy at 290 K: %.3f eV/atom\n",
              final_thermo.potential_energy /
                  static_cast<double>(slab.size()));
  return 0;
}
