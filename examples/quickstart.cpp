/// \file quickstart.cpp
/// WSMD quickstart: build a tantalum crystal, run reference MD, then run
/// the same system on the simulated wafer-scale engine and compare.
///
///   $ ./quickstart
///
/// Walks through the core public API in ~80 lines:
///   1. pick a potential (analytic Zhou EAM),
///   2. generate a crystal (BCC Ta block),
///   3. equilibrate with the FP64 reference engine,
///   4. map one atom per core and step the wafer-scale engine,
///   5. compare trajectories and look at the modeled wafer performance.

#include <cstdio>
#include <memory>

#include "core/wse_md.hpp"
#include "eam/zhou.hpp"
#include "lattice/lattice.hpp"
#include "md/simulation.hpp"

int main() {
  using namespace wsmd;

  // 1. Potential: tantalum, with the short workload cutoff the paper's
  //    Li-Ta potential used (14 bulk neighbors).
  const auto params = eam::zhou_parameters("Ta");
  auto potential =
      std::make_shared<eam::ZhouEam>("Ta", params.paper_cutoff());

  // 2. Crystal: 6x6x4 BCC cells, open boundaries (a tiny thin slab).
  const auto crystal = lattice::replicate(
      lattice::UnitCell::of(params.structure, params.lattice_constant()),
      6, 6, 4);
  std::printf("Built %zu-atom Ta crystal (a0 = %.3f A, rcut = %.2f A)\n",
              crystal.size(), params.lattice_constant(),
              potential->cutoff());

  // 3. Reference engine: thermalize to 290 K and take 50 NVE steps.
  md::AtomSystem system(crystal, potential);
  Rng rng(2024);
  system.thermalize(290.0, rng);
  const auto velocities = system.velocities().to_aos();  // reuse for the WSE run

  md::Simulation reference(std::move(system));
  reference.compute_forces();
  const auto before = reference.thermo();
  reference.run(50);
  const auto after = reference.thermo();
  std::printf("Reference MD:  E = %.4f -> %.4f eV (drift %.2e eV), "
              "T = %.0f K\n",
              before.total_energy, after.total_energy,
              after.total_energy - before.total_energy, after.temperature);

  // 4. Wafer-scale engine: one atom per core, same initial conditions.
  core::WseMdConfig cfg;
  cfg.mapping.cell_size = params.lattice_constant();
  core::WseMd wafer(crystal, potential, cfg);
  wafer.set_velocities(velocities);
  const auto stats = wafer.run(50);
  std::printf("WSE engine:    %zu cores (%dx%d grid), b = %d, "
              "%.0f candidates/worker\n",
              wafer.mapping().core_count(), wafer.mapping().grid_width(),
              wafer.mapping().grid_height(), wafer.b(),
              stats.mean_candidates);

  // 5. Compare trajectories (FP32 wafer vs FP64 reference).
  double max_err = 0.0;
  const auto ref_pos = reference.system().positions().to_aos();
  const auto wse_pos = wafer.positions();
  for (std::size_t i = 0; i < ref_pos.size(); ++i) {
    max_err = std::max(max_err, norm(ref_pos[i] - wse_pos[i]));
  }
  std::printf("Trajectory agreement after 50 steps: max |dr| = %.2e A\n",
              max_err);
  std::printf("Modeled wafer timestep: %.2f us -> %.0f timesteps/s\n",
              stats.wall_seconds * 1e6, 1.0 / stats.wall_seconds);
  std::printf("\n(Compare: the paper's full 801,792-atom Ta run measured "
              "274,016 steps/s.)\n");
  return 0;
}
