/// \file observables_demo.cpp
/// Driving the streaming-observables subsystem (src/obs) directly, without
/// the scenario layer: build an engine, register probes on an ObserverBus,
/// feed it frames while the engine runs, and read back the summaries.
///
/// This is the API the `wsmd` driver wraps; use it when embedding WSMD as
/// a library or when a custom probe cadence/geometry is needed.
///
///   $ ./observables_demo [steps]

#include <cstdio>
#include <cstdlib>

#include "eam/zhou.hpp"
#include "engine/engine.hpp"
#include "lattice/lattice.hpp"
#include "obs/factory.hpp"
#include "util/random.hpp"

using namespace wsmd;

int main(int argc, char** argv) {
  const long steps = argc > 1 ? std::atol(argv[1]) : 40;

  // A small periodic Cu crystal on the FP64 reference backend.
  const auto params = eam::zhou_parameters("Cu");
  const auto structure =
      lattice::replicate(lattice::UnitCell::fcc(params.lattice_constant()),
                         4, 4, 4, /*type=*/0, {true, true, true});
  auto potential =
      std::make_shared<eam::ZhouEam>("Cu", params.paper_cutoff());
  auto engine = engine::make_engine(engine::Backend::kReference, structure,
                                    potential);

  // One bus, three probes, one shared cadence. The factory derives probe
  // defaults (RDF range, CSP shell) from the material.
  obs::ProbeSetConfig config;
  config.probes = {"rdf", "msd", "vacf"};
  config.every = 5;
  config.prefix = "observables_demo";
  const obs::Material material{params.lattice_constant(), 12};
  auto bus = obs::make_observer_bus(config, material);

  Rng rng(2024);
  engine->thermalize(300.0, rng);
  std::printf("running %ld steps over %zu atoms, sampling every %ld...\n",
              steps, engine->atom_count(), config.every);

  const auto feed = [&](long step, bool final_state) {
    if (!final_state && !bus->due(step)) return;
    const auto positions = engine->positions();
    const auto velocities = engine->velocities();
    obs::Frame frame;
    frame.step = step;
    frame.time_ps = 0.002 * static_cast<double>(step);
    frame.box = &structure.box;
    frame.positions = &positions;
    frame.velocities = &velocities;
    if (final_state) {
      bus->observe_all(frame);
    } else {
      bus->observe(frame);
    }
  };

  feed(0, false);
  const auto final_thermo =
      engine->run(steps, [&](const engine::Thermo& t) { feed(t.step, false); });
  feed(final_thermo.step, true);
  bus->finish();

  for (std::size_t k = 0; k < bus->size(); ++k) {
    const auto& probe = bus->probe(k);
    std::printf("  %-5s %zu samples -> %s\n", probe.kind(),
                probe.samples_taken(), probe.output_path().c_str());
  }
  JsonObject summary;
  bus->summarize(summary);
  std::printf("summary: {%s}\n", summary.encode_members("  ").c_str());
  return 0;
}
