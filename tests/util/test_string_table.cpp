#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace wsmd {
namespace {

TEST(StringUtil, SplitWhitespace) {
  const auto t = split_whitespace("  a  bb\tccc \n d ");
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t[0], "a");
  EXPECT_EQ(t[1], "bb");
  EXPECT_EQ(t[2], "ccc");
  EXPECT_EQ(t[3], "d");
}

TEST(StringUtil, SplitWhitespaceEmpty) {
  EXPECT_TRUE(split_whitespace("").empty());
  EXPECT_TRUE(split_whitespace("   \t\n ").empty());
}

TEST(StringUtil, SplitOnDelimiterKeepsEmptyFields) {
  const auto t = split("a,,b,", ',');
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t[0], "a");
  EXPECT_EQ(t[1], "");
  EXPECT_EQ(t[2], "b");
  EXPECT_EQ(t[3], "");
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim("hi"), "hi");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(StringUtil, StartsWith) {
  EXPECT_TRUE(starts_with("ITEM: TIMESTEP", "ITEM:"));
  EXPECT_FALSE(starts_with("IT", "ITEM:"));
}

TEST(StringUtil, Format) {
  EXPECT_EQ(format("%d atoms at %.1f K", 800, 290.0), "800 atoms at 290.0 K");
  EXPECT_EQ(format("plain"), "plain");
}

TEST(StringUtil, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(801792), "801,792");
  EXPECT_EQ(with_commas(-1234567), "-1,234,567");
}

TEST(TablePrinter, RendersAlignedColumns) {
  TablePrinter t({"Element", "Atoms", "Steps/s"});
  t.add_row({"Ta", "801,792", "274,016"});
  t.add_row({"Cu", "801,792", "106,313"});
  const std::string s = t.str();
  EXPECT_NE(s.find("| Element | Atoms   | Steps/s |"), std::string::npos);
  EXPECT_NE(s.find("| Ta      | 801,792 | 274,016 |"), std::string::npos);
}

TEST(TablePrinter, TitleIsPrintedFirst) {
  TablePrinter t({"a"});
  t.set_title("Table I");
  t.add_row({"x"});
  EXPECT_EQ(t.str().rfind("Table I", 0), 0u);
}

TEST(TablePrinter, RejectsMismatchedRow) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(TablePrinter, RejectsEmptyHeader) {
  EXPECT_THROW(TablePrinter({}), Error);
}

}  // namespace
}  // namespace wsmd
