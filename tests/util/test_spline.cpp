#include "util/spline.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace wsmd {
namespace {

TEST(CubicSpline, ReproducesLinearFunctionExactly) {
  const auto sp = CubicSplineTable::sample(
      [](double x) { return 3.0 * x - 2.0; }, 0.0, 10.0, 11);
  for (double x = 0.0; x <= 10.0; x += 0.37) {
    EXPECT_NEAR(sp.value(x), 3.0 * x - 2.0, 1e-10);
    EXPECT_NEAR(sp.derivative(x), 3.0, 1e-10);
  }
}

TEST(CubicSpline, InterpolatesSineAccurately) {
  const auto sp = CubicSplineTable::sample(
      [](double x) { return std::sin(x); }, 0.0, 6.283, 200);
  for (double x = 0.3; x < 6.0; x += 0.173) {
    EXPECT_NEAR(sp.value(x), std::sin(x), 1e-6);
    EXPECT_NEAR(sp.derivative(x), std::cos(x), 1e-4);
  }
}

TEST(CubicSpline, ExactAtKnots) {
  std::vector<double> y = {1.0, 4.0, 9.0, 16.0, 25.0, 36.0};
  const CubicSplineTable sp(1.0, 1.0, y);
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_NEAR(sp.value(1.0 + static_cast<double>(i)), y[i], 1e-12);
  }
}

TEST(CubicSpline, ValueAndDerivativeAgreeWithSeparateCalls) {
  const auto sp = CubicSplineTable::sample(
      [](double x) { return std::exp(-x) * x; }, 0.0, 5.0, 100);
  for (double x = 0.1; x < 5.0; x += 0.31) {
    double v, d;
    sp.value_and_derivative(x, v, d);
    EXPECT_DOUBLE_EQ(v, sp.value(x));
    EXPECT_DOUBLE_EQ(d, sp.derivative(x));
  }
}

TEST(CubicSpline, DerivativeMatchesFiniteDifference) {
  const auto sp = CubicSplineTable::sample(
      [](double x) { return x * x * x - 2.0 * x; }, -2.0, 2.0, 300);
  const double h = 1e-6;
  for (double x = -1.8; x < 1.8; x += 0.29) {
    const double fd = (sp.value(x + h) - sp.value(x - h)) / (2.0 * h);
    EXPECT_NEAR(sp.derivative(x), fd, 1e-4);
  }
}

TEST(CubicSpline, ClampsBeyondEnds) {
  const auto sp = CubicSplineTable::sample([](double x) { return x; }, 0.0,
                                           1.0, 11);
  // Clamped evaluation extrapolates the end segments linearly; it must not
  // crash or return garbage far outside.
  EXPECT_NEAR(sp.value(-0.05), -0.05, 1e-9);
  EXPECT_NEAR(sp.value(1.05), 1.05, 1e-9);
}

TEST(CubicSpline, RejectsBadConstruction) {
  EXPECT_THROW(CubicSplineTable(0.0, 1.0, {1.0, 2.0}), Error);
  EXPECT_THROW(CubicSplineTable(0.0, -1.0, {1.0, 2.0, 3.0}), Error);
  EXPECT_THROW(CubicSplineTable::sample([](double) { return 0.0; }, 1.0, 0.0, 10),
               Error);
}

TEST(LinearTable, ExactForLinearFunctions) {
  const auto t =
      LinearTable::sample([](double x) { return 2.0 * x + 1.0; }, 0.0, 4.0, 5);
  for (double x = 0.0; x <= 4.0; x += 0.13) {
    EXPECT_NEAR(t.value(x), 2.0 * x + 1.0, 1e-12);
    EXPECT_NEAR(t.derivative(x), 2.0, 1e-12);
  }
}

TEST(LinearTable, ConvergesQuadratically) {
  auto f = [](double x) { return std::cos(x); };
  const auto coarse = LinearTable::sample(f, 0.0, 3.0, 31);
  const auto fine = LinearTable::sample(f, 0.0, 3.0, 301);
  double err_coarse = 0.0, err_fine = 0.0;
  for (double x = 0.05; x < 3.0; x += 0.07) {
    err_coarse = std::max(err_coarse, std::fabs(coarse.value(x) - f(x)));
    err_fine = std::max(err_fine, std::fabs(fine.value(x) - f(x)));
  }
  // 10x finer grid -> ~100x smaller max error for piecewise linear.
  EXPECT_LT(err_fine, err_coarse / 50.0);
}

TEST(LinearTable, RejectsBadConstruction) {
  EXPECT_THROW(LinearTable(0.0, 1.0, {1.0}), Error);
  EXPECT_THROW(LinearTable(0.0, 0.0, {1.0, 2.0}), Error);
}

}  // namespace
}  // namespace wsmd
