#include "util/box.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace wsmd {
namespace {

TEST(Box, LengthsAndVolume) {
  const Box b({0, 0, 0}, {2, 3, 4});
  EXPECT_EQ(b.lengths(), (Vec3d{2, 3, 4}));
  EXPECT_DOUBLE_EQ(b.volume(), 24.0);
  EXPECT_DOUBLE_EQ(b.length(1), 3.0);
}

TEST(Box, RejectsInvertedBounds) {
  EXPECT_THROW(Box({0, 0, 0}, {-1, 1, 1}), Error);
}

TEST(Box, WrapOnlyAffectsPeriodicAxes) {
  const Box b({0, 0, 0}, {10, 10, 10}, {true, false, false});
  const Vec3d w = b.wrap({12.0, 12.0, -3.0});
  EXPECT_DOUBLE_EQ(w.x, 2.0);   // periodic: folded
  EXPECT_DOUBLE_EQ(w.y, 12.0);  // open: untouched
  EXPECT_DOUBLE_EQ(w.z, -3.0);
}

TEST(Box, WrapHandlesLargeExcursions) {
  const Box b({0, 0, 0}, {5, 5, 5}, {true, true, true});
  const Vec3d w = b.wrap({26.0, -26.0, 7.5});
  EXPECT_DOUBLE_EQ(w.x, 1.0);
  EXPECT_DOUBLE_EQ(w.y, 4.0);
  EXPECT_DOUBLE_EQ(w.z, 2.5);
}

TEST(Box, MinimumImagePicksNearestReplica) {
  const Box b({0, 0, 0}, {10, 10, 10}, {true, true, true});
  const Vec3d d = b.minimum_image({1, 1, 1}, {9, 9, 9});
  EXPECT_DOUBLE_EQ(d.x, -2.0);
  EXPECT_DOUBLE_EQ(d.y, -2.0);
  EXPECT_DOUBLE_EQ(d.z, -2.0);
}

TEST(Box, MinimumImageOpenAxesAreDirect) {
  const Box b({0, 0, 0}, {10, 10, 10}, {false, false, false});
  const Vec3d d = b.minimum_image({1, 1, 1}, {9, 9, 9});
  EXPECT_DOUBLE_EQ(d.x, 8.0);
  EXPECT_DOUBLE_EQ(d.y, 8.0);
  EXPECT_DOUBLE_EQ(d.z, 8.0);
}

TEST(Box, ContainsChecksOpenAxesOnly) {
  const Box b({0, 0, 0}, {10, 10, 10}, {true, false, false});
  EXPECT_TRUE(b.contains({100.0, 5.0, 5.0}));   // x periodic: any value ok
  EXPECT_FALSE(b.contains({5.0, 11.0, 5.0}));   // y open: outside
  EXPECT_TRUE(b.contains({5.0, 10.0, 0.0}));    // boundary inclusive
}

}  // namespace
}  // namespace wsmd
