#include "util/bench_json.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

namespace wsmd {
namespace {

TEST(JsonObject, EncodesScalarsInOrder) {
  JsonObject o;
  o.set("threads", 4).set("steps_per_s", 2.5).set("element", "Ta");
  o.set("ok", true);
  EXPECT_EQ(o.encode(),
            "{\"threads\": 4, \"steps_per_s\": 2.5, \"element\": \"Ta\", "
            "\"ok\": true}");
}

TEST(JsonObject, EscapesStringsAndNonFinite) {
  JsonObject o;
  o.set("name", "a\"b\\c\n");
  o.set("bad", std::numeric_limits<double>::infinity());
  EXPECT_EQ(o.encode(), "{\"name\": \"a\\\"b\\\\c\\n\", \"bad\": null}");
}

TEST(BenchJson, EncodesMetaAndRows) {
  BenchJson b("unit_test");
  b.meta().set("atoms", 128).set("element", "Ta");
  b.add_row().set("threads", 1).set("steps_per_s", 10.0);
  b.add_row().set("threads", 2).set("steps_per_s", 19.5);
  // The provenance meta block is environment-dependent (git SHA, compiler),
  // so the expectation embeds whatever this build reports.
  const std::string expected =
      "{\n"
      "  \"bench\": \"unit_test\",\n"
      "  \"atoms\": 128,\n"
      "  \"element\": \"Ta\",\n"
      "  \"meta\": " + BenchJson::provenance().encode() + ",\n"
      "  \"rows\": [\n"
      "    {\"threads\": 1, \"steps_per_s\": 10},\n"
      "    {\"threads\": 2, \"steps_per_s\": 19.5}\n"
      "  ]\n"
      "}\n";
  EXPECT_EQ(b.encode(), expected);
}

TEST(BenchJson, NoRowsStillValid) {
  BenchJson b("empty");
  EXPECT_EQ(b.encode(), "{\n  \"bench\": \"empty\",\n  \"meta\": " +
                            BenchJson::provenance().encode() +
                            ",\n  \"rows\": [\n  ]\n}\n");
}

TEST(BenchJson, ProvenanceHasRequiredKeys) {
  const std::string meta = BenchJson::provenance().encode();
  EXPECT_NE(meta.find("\"git_sha\""), std::string::npos) << meta;
  EXPECT_NE(meta.find("\"compiler\""), std::string::npos) << meta;
  EXPECT_NE(meta.find("\"build_type\""), std::string::npos) << meta;
  EXPECT_NE(meta.find("\"threads\""), std::string::npos) << meta;
}

TEST(BenchJson, WritesFile) {
  BenchJson b("write_test");
  b.meta().set("atoms", 1);
  b.add_row().set("threads", 1);
  const std::string path = b.write(::testing::TempDir());
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::ostringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), b.encode());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace wsmd
