#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"
#include "util/random.hpp"

namespace wsmd {
namespace {

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(LinearFit, RecoversExactLinearModel) {
  // y = 26.6*x1 + 71.4*x2 + 574 — the paper's Table II model, noise-free.
  std::vector<double> x1, x2, y;
  for (int c : {24, 48, 80, 120, 168, 224}) {
    for (int k : {8, 14, 28, 42, 59}) {
      x1.push_back(c);
      x2.push_back(k);
      y.push_back(26.6 * c + 71.4 * k + 574.0);
    }
  }
  const LinearFit fit = fit_two_regressors_with_intercept(x1, x2, y);
  ASSERT_EQ(fit.coefficients.size(), 3u);
  EXPECT_NEAR(fit.coefficients[0], 26.6, 1e-9);
  EXPECT_NEAR(fit.coefficients[1], 71.4, 1e-9);
  EXPECT_NEAR(fit.coefficients[2], 574.0, 1e-6);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(LinearFit, RobustToModestNoise) {
  Rng rng(31);
  std::vector<double> x1, x2, y;
  for (int i = 0; i < 500; ++i) {
    const double a = rng.uniform(10, 250);
    const double b = rng.uniform(5, 70);
    x1.push_back(a);
    x2.push_back(b);
    y.push_back(26.6 * a + 71.4 * b + 574.0 + rng.gaussian(0.0, 5.0));
  }
  const LinearFit fit = fit_two_regressors_with_intercept(x1, x2, y);
  EXPECT_NEAR(fit.coefficients[0], 26.6, 0.1);
  EXPECT_NEAR(fit.coefficients[1], 71.4, 0.3);
  EXPECT_NEAR(fit.coefficients[2], 574.0, 10.0);
  EXPECT_GT(fit.r_squared, 0.999);
}

TEST(LinearFit, SingleRegressorThroughOrigin) {
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (double x = 1.0; x <= 10.0; x += 1.0) {
    rows.push_back({x});
    y.push_back(4.0 * x);
  }
  const LinearFit fit = fit_linear_model(rows, y);
  ASSERT_EQ(fit.coefficients.size(), 1u);
  EXPECT_NEAR(fit.coefficients[0], 4.0, 1e-12);
}

TEST(LinearFit, ThrowsOnDegenerateInput) {
  EXPECT_THROW(fit_linear_model({}, {}), Error);
  EXPECT_THROW(fit_linear_model({{1.0}}, {1.0, 2.0}), Error);
  // Collinear columns -> singular normal equations.
  std::vector<std::vector<double>> rows = {{1.0, 2.0}, {2.0, 4.0}, {3.0, 6.0}};
  EXPECT_THROW(fit_linear_model(rows, {1.0, 2.0, 3.0}), Error);
}

TEST(LinearFit, ResidualRmsReflectsNoise) {
  Rng rng(77);
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.uniform(0, 100);
    rows.push_back({x, 1.0});
    y.push_back(2.0 * x + 1.0 + rng.gaussian(0.0, 3.0));
  }
  const LinearFit fit = fit_linear_model(rows, y);
  EXPECT_NEAR(fit.residual_rms, 3.0, 0.3);
}

}  // namespace
}  // namespace wsmd
