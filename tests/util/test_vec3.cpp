#include "util/vec3.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace wsmd {
namespace {

TEST(Vec3, DefaultIsZero) {
  Vec3d v;
  EXPECT_EQ(v.x, 0.0);
  EXPECT_EQ(v.y, 0.0);
  EXPECT_EQ(v.z, 0.0);
}

TEST(Vec3, ArithmeticOperators) {
  const Vec3d a{1, 2, 3}, b{4, 5, 6};
  EXPECT_EQ(a + b, (Vec3d{5, 7, 9}));
  EXPECT_EQ(b - a, (Vec3d{3, 3, 3}));
  EXPECT_EQ(a * 2.0, (Vec3d{2, 4, 6}));
  EXPECT_EQ(2.0 * a, (Vec3d{2, 4, 6}));
  EXPECT_EQ(b / 2.0, (Vec3d{2, 2.5, 3}));
  EXPECT_EQ(-a, (Vec3d{-1, -2, -3}));
}

TEST(Vec3, CompoundAssignment) {
  Vec3d v{1, 1, 1};
  v += {1, 2, 3};
  EXPECT_EQ(v, (Vec3d{2, 3, 4}));
  v -= {1, 1, 1};
  EXPECT_EQ(v, (Vec3d{1, 2, 3}));
  v *= 3.0;
  EXPECT_EQ(v, (Vec3d{3, 6, 9}));
  v /= 3.0;
  EXPECT_EQ(v, (Vec3d{1, 2, 3}));
}

TEST(Vec3, DotAndCross) {
  const Vec3d a{1, 0, 0}, b{0, 1, 0};
  EXPECT_EQ(dot(a, b), 0.0);
  EXPECT_EQ(cross(a, b), (Vec3d{0, 0, 1}));
  EXPECT_EQ(dot(Vec3d{1, 2, 3}, Vec3d{4, 5, 6}), 32.0);
}

TEST(Vec3, Norms) {
  const Vec3d v{3, 4, 0};
  EXPECT_DOUBLE_EQ(norm2(v), 25.0);
  EXPECT_DOUBLE_EQ(norm(v), 5.0);
}

TEST(Vec3, MaxNormIsChebyshev) {
  EXPECT_DOUBLE_EQ(max_norm(Vec3d{1, -7, 3}), 7.0);
  EXPECT_DOUBLE_EQ(max_norm(Vec3d{-2, 1, 0}), 2.0);
  EXPECT_DOUBLE_EQ(max_norm(Vec3d{0, 0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(max_norm(Vec3d{0, 0, -9}), 9.0);
}

TEST(Vec3, IndexAccess) {
  Vec3d v{10, 20, 30};
  EXPECT_EQ(v[0], 10.0);
  EXPECT_EQ(v[1], 20.0);
  EXPECT_EQ(v[2], 30.0);
  v[1] = 5.0;
  EXPECT_EQ(v.y, 5.0);
}

TEST(Vec3, ExplicitPrecisionConversion) {
  const Vec3d d{1.0000001, 2, 3};
  const Vec3f f{d};
  EXPECT_FLOAT_EQ(f.x, 1.0000001f);
  const Vec3d back{f};
  EXPECT_NEAR(back.x, d.x, 1e-6);
}

TEST(Vec3, StreamOutput) {
  std::ostringstream os;
  os << Vec3d{1, 2, 3};
  EXPECT_EQ(os.str(), "(1, 2, 3)");
}

}  // namespace
}  // namespace wsmd
