#include "util/random.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace wsmd {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(123);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(5);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 10000; ++i) {
    ++hits[static_cast<std::size_t>(rng.uniform_index(10))];
  }
  for (int h : hits) EXPECT_GT(h, 700);  // ~1000 expected per bin
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform_index(0), Error);
}

TEST(Rng, GaussianMomentsMatchStandardNormal) {
  Rng rng(99);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.gaussian());
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(Rng, GaussianScaleAndShift) {
  Rng rng(99);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.gaussian(10.0, 3.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.1);
  EXPECT_NEAR(s.stddev(), 3.0, 0.1);
}

TEST(Rng, GaussianVec3ComponentsIndependent) {
  Rng rng(4);
  RunningStats sx, sy, sz, sxy;
  for (int i = 0; i < 50000; ++i) {
    const Vec3d v = rng.gaussian_vec3(2.0);
    sx.add(v.x);
    sy.add(v.y);
    sz.add(v.z);
    sxy.add(v.x * v.y);
  }
  EXPECT_NEAR(sx.stddev(), 2.0, 0.1);
  EXPECT_NEAR(sy.stddev(), 2.0, 0.1);
  EXPECT_NEAR(sz.stddev(), 2.0, 0.1);
  EXPECT_NEAR(sxy.mean(), 0.0, 0.1);  // uncorrelated components
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(11);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

}  // namespace
}  // namespace wsmd
