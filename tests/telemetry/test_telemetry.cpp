/// Tests for the telemetry core (src/telemetry/telemetry): span
/// nesting/ordering, deterministic per-thread merging, export shapes,
/// counter wrap-around, and the zero-allocation disabled path.

#include "telemetry/telemetry.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

// Binary-wide allocation counter for the zero-allocation test: the
// disabled instrumentation path (one relaxed atomic load) must never
// reach the heap.
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace wsmd::telemetry {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(Telemetry, DisabledByDefaultAndAfterEndSession) {
  EXPECT_FALSE(enabled());
  begin_session();
  EXPECT_TRUE(enabled());
  end_session();
  EXPECT_FALSE(enabled());
}

TEST(Telemetry, SpanNestingDepthsAndCompletionOrder) {
  SessionConfig cfg;
  cfg.capture_trace = true;
  begin_session(cfg);
  {
    ScopedSpan outer("outer");
    {
      ScopedSpan inner("inner");
      { ScopedSpan leaf("leaf"); }
    }
    { ScopedSpan inner2("inner2"); }
  }
  end_session();

  const auto events = trace_events();
  ASSERT_EQ(events.size(), 4u);
  // Completion order: leaf closes first, outer last.
  EXPECT_EQ(events[0].name, "leaf");
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[2].name, "inner2");
  EXPECT_EQ(events[3].name, "outer");
  EXPECT_EQ(events[0].depth, 2);
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_EQ(events[2].depth, 1);
  EXPECT_EQ(events[3].depth, 0);
  for (const auto& e : events) EXPECT_EQ(e.thread, "main");
  // The outer span encloses the inner ones.
  EXPECT_LE(events[3].start_ns, events[0].start_ns);
  EXPECT_GE(events[3].start_ns + events[3].duration_ns,
            events[1].start_ns + events[1].duration_ns);
}

TEST(Telemetry, SpanAggregatesSumCallsAndTime) {
  begin_session();
  for (int i = 0; i < 5; ++i) {
    ScopedSpan span("agg.work");
  }
  add_span_time("agg.external", 1.5, 3);
  end_session();

  const auto stats = span_stats();
  ASSERT_EQ(stats.size(), 2u);  // sorted by name
  EXPECT_EQ(stats[0].name, "agg.external");
  EXPECT_EQ(stats[0].calls, 3u);
  EXPECT_DOUBLE_EQ(stats[0].total_seconds, 1.5);
  EXPECT_EQ(stats[1].name, "agg.work");
  EXPECT_EQ(stats[1].calls, 5u);
  EXPECT_GE(stats[1].total_seconds, 0.0);
  EXPECT_GE(stats[1].max_seconds, 0.0);
  EXPECT_DOUBLE_EQ(span_total_seconds("agg.external"), 1.5);
  EXPECT_DOUBLE_EQ(span_total_seconds("no.such.span"), 0.0);
}

TEST(Telemetry, PerThreadMergeIsDeterministic) {
  // Two runs with identical work on identically named threads must export
  // the same (thread, name, depth) event sequence regardless of actual
  // interleaving.
  const auto run = [] {
    SessionConfig cfg;
    cfg.capture_trace = true;
    begin_session(cfg);
    std::vector<std::thread> workers;
    for (int t = 2; t >= 0; --t) {  // reversed start order on purpose
      workers.emplace_back([t] {
        set_thread_name("worker" + std::to_string(t));
        for (int i = 0; i < 3; ++i) {
          ScopedSpan span("thread.work");
          count("thread.items");
        }
      });
    }
    for (auto& w : workers) w.join();
    { ScopedSpan span("main.work"); }
    end_session();
    std::vector<std::string> shape;
    for (const auto& e : trace_events()) {
      shape.push_back(e.thread + "/" + e.name + "/" +
                      std::to_string(e.depth));
    }
    return shape;
  };

  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first, second);
  ASSERT_EQ(first.size(), 10u);
  // Threads merge sorted by name: main before worker0..worker2.
  EXPECT_EQ(first[0], "main/main.work/0");
  EXPECT_EQ(first[1], "worker0/thread.work/0");
  EXPECT_EQ(first[4], "worker1/thread.work/0");
  EXPECT_EQ(first[7], "worker2/thread.work/0");
}

TEST(Telemetry, CountersSumAcrossThreadsAndWrap) {
  begin_session();
  count("wrap", std::numeric_limits<std::uint64_t>::max());
  count("wrap", 2);  // wraps mod 2^64
  std::thread([] { count("wrap", 5); }).join();
  end_session();

  const auto c = counters();
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0].first, "wrap");
  EXPECT_EQ(c[0].second, 6u);  // (2^64 - 1) + 2 + 5 mod 2^64
}

TEST(Telemetry, BeginSessionResetsPreviousData) {
  begin_session();
  count("stale");
  end_session();
  ASSERT_EQ(counters().size(), 1u);
  begin_session();
  end_session();
  EXPECT_TRUE(counters().empty());
  EXPECT_TRUE(span_stats().empty());
  EXPECT_TRUE(trace_events().empty());
}

TEST(Telemetry, EventCapDropsAndCounts) {
  SessionConfig cfg;
  cfg.capture_trace = true;
  cfg.max_events_per_thread = 4;
  begin_session(cfg);
  for (int i = 0; i < 10; ++i) {
    ScopedSpan span("capped");
  }
  end_session();
  EXPECT_EQ(trace_events().size(), 4u);
  const auto c = counters();
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0].first, "telemetry.dropped_events");
  EXPECT_EQ(c[0].second, 6u);
  // Aggregates still saw every call.
  const auto stats = span_stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].calls, 10u);
}

TEST(Telemetry, TraceJsonShape) {
  SessionConfig cfg;
  cfg.capture_trace = true;
  begin_session(cfg);
  {
    ScopedSpan outer("json.outer");
    ScopedSpan inner("json.inner");
  }
  end_session();

  const std::string path =
      ::testing::TempDir() + "telemetry_trace_shape.json";
  write_trace_json(path);
  const std::string text = slurp(path);
  std::remove(path.c_str());
  EXPECT_NE(text.find("\"traceEvents\": ["), std::string::npos) << text;
  EXPECT_NE(text.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  // One M metadata event naming the main thread, then X complete events.
  EXPECT_NE(text.find("\"ph\": \"M\""), std::string::npos) << text;
  EXPECT_NE(text.find("\"name\": \"thread_name\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\": \"X\""), std::string::npos) << text;
  EXPECT_NE(text.find("\"name\": \"json.inner\""), std::string::npos);
  EXPECT_NE(text.find("\"name\": \"json.outer\""), std::string::npos);
  // Balanced braces/brackets — cheap well-formedness check (CI runs the
  // real parser via python -m json.tool).
  long braces = 0, brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char ch = text[i];
    if (ch == '"' && (i == 0 || text[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    braces += ch == '{' ? 1 : ch == '}' ? -1 : 0;
    brackets += ch == '[' ? 1 : ch == ']' ? -1 : 0;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(Telemetry, MetricsJsonlShape) {
  begin_session();
  { ScopedSpan span("jsonl.span"); }
  count("jsonl.counter", 7);
  end_session();

  const std::string path =
      ::testing::TempDir() + "telemetry_metrics_shape.jsonl";
  write_metrics_jsonl(path);
  std::ifstream in(path);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  std::remove(path.c_str());
  ASSERT_EQ(lines.size(), 2u);  // spans first, then counters
  EXPECT_NE(lines[0].find("\"kind\": \"span\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"name\": \"jsonl.span\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"calls\": 1"), std::string::npos);
  EXPECT_NE(lines[1].find("\"kind\": \"counter\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"value\": 7"), std::string::npos);
}

TEST(Telemetry, DisabledPathDoesNotAllocate) {
  ASSERT_FALSE(enabled());
  // Warm any lazy thread-local state the enabled path may have left.
  {
    ScopedSpan warm("warm");
    count("warm");
  }
  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 1000; ++i) {
    ScopedSpan span("disabled.span");
    count("disabled.counter", 3);
    add_span_time("disabled.agg", 0.1);
  }
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after, before);
}

}  // namespace
}  // namespace wsmd::telemetry
