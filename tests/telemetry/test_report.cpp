/// Tests for the measured-vs-modeled cost report (src/telemetry/report):
/// row construction from synthetic span totals + a modeled breakdown, the
/// table rendering, and an end-to-end sharded run producing nonzero
/// measured time in every engine phase (the `wsmd report` acceptance
/// path).

#include "telemetry/report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "scenario/deck.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "telemetry/telemetry.hpp"

namespace wsmd::telemetry {
namespace {

const PhaseRow& row_named(const std::vector<PhaseRow>& rows,
                          const std::string& phase) {
  for (const auto& r : rows) {
    if (r.phase == phase) return r;
  }
  ADD_FAILURE() << "no row named '" << phase << "'";
  static PhaseRow missing;
  return missing;
}

TEST(CostReport, JoinsSpanTotalsAgainstModeledBreakdown) {
  begin_session();
  add_span_time("wse.density", 2.0);
  add_span_time("wse.force", 3.0);
  add_span_time("wse.begin", 0.25);
  add_span_time("wse.commit", 0.75);
  add_span_time("wse.swap_select", 0.10);
  add_span_time("wse.swap_commit", 0.30);
  add_span_time("shard.barrier_wait", 0.5, 4);
  end_session();

  engine::ModeledPhaseCost modeled;
  modeled.valid = true;
  modeled.density_seconds = 1.0;
  modeled.force_seconds = 1.5;
  modeled.fixed_seconds = 0.5;
  modeled.swap_seconds = 0.2;
  modeled.halo_seconds = 0.25;
  modeled.total_seconds = 4.0;

  const auto rows = build_cost_report(modeled);
  ASSERT_EQ(rows.size(), 6u);
  EXPECT_DOUBLE_EQ(row_named(rows, "density").measured_seconds, 2.0);
  EXPECT_DOUBLE_EQ(row_named(rows, "density").ratio, 2.0);
  EXPECT_DOUBLE_EQ(row_named(rows, "force").ratio, 2.0);
  // commit = begin + commit spans vs modeled fixed cost.
  EXPECT_DOUBLE_EQ(row_named(rows, "commit").measured_seconds, 1.0);
  EXPECT_DOUBLE_EQ(row_named(rows, "commit").ratio, 2.0);
  EXPECT_DOUBLE_EQ(row_named(rows, "swap").measured_seconds, 0.4);
  EXPECT_DOUBLE_EQ(row_named(rows, "swap").ratio, 2.0);
  EXPECT_DOUBLE_EQ(row_named(rows, "barrier").measured_seconds, 0.5);
  EXPECT_DOUBLE_EQ(row_named(rows, "barrier").ratio, 2.0);
  EXPECT_DOUBLE_EQ(row_named(rows, "total").measured_seconds, 6.9);
  EXPECT_DOUBLE_EQ(row_named(rows, "total").ratio, 6.9 / 4.0);
  for (const auto& r : rows) EXPECT_TRUE(r.has_modeled) << r.phase;
}

TEST(CostReport, DistributedRowsCarryTransportAndOverlap) {
  // dist.halo_* spans flip the report into distributed mode: the halo row
  // is tagged with the carrier that produced the measurement, and the
  // compute hidden behind the exchange gets its own overlap row.
  begin_session();
  add_span_time("wse.density", 1.0);
  add_span_time("dist.halo_pack", 0.2);
  add_span_time("dist.halo_exchange", 0.3);
  add_span_time("dist.halo_unpack", 0.1);
  add_span_time("dist.barrier", 0.05);
  add_span_time("dist.overlap_compute", 0.4);
  end_session();

  engine::ModeledPhaseCost modeled;
  modeled.valid = true;
  modeled.halo_seconds = 0.3;
  modeled.halo_transport = "shm";
  const auto rows = build_cost_report(modeled);
  const auto& halo = row_named(rows, "halo[shm]");
  EXPECT_DOUBLE_EQ(halo.measured_seconds, 0.6);
  EXPECT_DOUBLE_EQ(halo.ratio, 2.0);
  const auto& overlap = row_named(rows, "overlap");
  EXPECT_DOUBLE_EQ(overlap.measured_seconds, 0.4);
  EXPECT_FALSE(overlap.has_modeled);
  // The table renders the tagged label untruncated.
  const std::string table = format_cost_report(rows);
  EXPECT_NE(table.find("halo[shm]"), std::string::npos) << table;
}

TEST(CostReport, NoModelMeansDashColumns) {
  begin_session();
  add_span_time("wse.density", 1.0);
  end_session();
  const auto rows = build_cost_report(engine::ModeledPhaseCost{});
  for (const auto& r : rows) {
    EXPECT_FALSE(r.has_modeled) << r.phase;
    EXPECT_DOUBLE_EQ(r.ratio, 0.0) << r.phase;
  }
  const std::string table = format_cost_report(rows);
  EXPECT_NE(table.find("phase"), std::string::npos);
  EXPECT_NE(table.find(" -"), std::string::npos) << table;
}

TEST(CostReport, FormatsOneLinePerRowPlusHeader) {
  std::vector<PhaseRow> rows;
  PhaseRow r;
  r.phase = "density";
  r.measured_seconds = 1.25;
  r.has_modeled = true;
  r.modeled_seconds = 0.5;
  r.ratio = 2.5;
  rows.push_back(r);
  const std::string table = format_cost_report(rows);
  // header + separator + one row, each newline-terminated
  long lines = 0;
  for (const char ch : table) lines += ch == '\n';
  EXPECT_EQ(lines, 3);
  EXPECT_NE(table.find("density"), std::string::npos);
  EXPECT_NE(table.find("2.50"), std::string::npos) << table;
}

TEST(CostReport, ShardedRunMeasuresEveryEnginePhase) {
  // The acceptance path of `wsmd report`: a short sharded run with
  // telemetry armed must produce nonzero measured time for density,
  // force, commit, and barrier, joined against a valid cost model.
  scenario::Deck deck = scenario::parse_deck_string(
      "name = report_it\n"
      "element = Cu\n"
      "geometry = slab\n"
      "replicate = 3 3 2\n"
      "seed = 77\n"
      "swap_interval = 5\n"
      "thermalize = 300\n"
      "run = 12\n",
      "report_it.deck");
  scenario::RunOptions opt;
  opt.backend_override = "sharded:2";
  opt.collect_telemetry = true;
  const auto result = scenario::run_scenario(
      scenario::scenario_from_deck(deck), opt);

  ASSERT_TRUE(result.modeled.valid);
  EXPECT_EQ(result.modeled.steps, 12);
  EXPECT_GT(result.modeled.density_seconds, 0.0);
  EXPECT_GT(result.modeled.force_seconds, 0.0);
  EXPECT_GT(result.modeled.fixed_seconds, 0.0);
  EXPECT_GT(result.modeled.halo_seconds, 0.0);
  EXPECT_GT(result.modeled.total_seconds, 0.0);

  const auto rows = build_cost_report(result.modeled);
  for (const auto& phase : {"density", "force", "commit", "barrier"}) {
    const auto& r = row_named(rows, phase);
    EXPECT_GT(r.measured_seconds, 0.0) << phase;
    EXPECT_TRUE(r.has_modeled) << phase;
    EXPECT_GT(r.ratio, 0.0) << phase;
  }
  // swap_interval = 5 over 12 NVE steps fires the swap phase too.
  EXPECT_GT(row_named(rows, "swap").measured_seconds, 0.0);
}

TEST(CostReport, DeckTelemetryKeysWriteExports) {
  const std::string base = ::testing::TempDir();
  scenario::Deck deck = scenario::parse_deck_string(
      "name = report_exports\n"
      "element = Cu\n"
      "geometry = slab\n"
      "replicate = 3 3 2\n"
      "seed = 78\n"
      "thermalize = 300\n"
      "run = 4\n"
      "telemetry.trace = " + base + "report_exports.trace.json\n"
      "telemetry.metrics = " + base + "report_exports.metrics.jsonl\n",
      "report_exports.deck");
  scenario::RunOptions opt;
  opt.backend_override = "sharded:2";
  const auto result = scenario::run_scenario(
      scenario::scenario_from_deck(deck), opt);

  ASSERT_FALSE(result.trace_path.empty());
  ASSERT_FALSE(result.metrics_path.empty());
  std::FILE* trace = std::fopen(result.trace_path.c_str(), "r");
  ASSERT_NE(trace, nullptr) << result.trace_path;
  std::fclose(trace);
  std::FILE* metrics = std::fopen(result.metrics_path.c_str(), "r");
  ASSERT_NE(metrics, nullptr) << result.metrics_path;
  std::fclose(metrics);
  std::remove(result.trace_path.c_str());
  std::remove(result.metrics_path.c_str());
}

}  // namespace
}  // namespace wsmd::telemetry
