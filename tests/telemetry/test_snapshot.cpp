/// \file test_snapshot.cpp
/// The interval-snapshot stream (src/telemetry/snapshot) and the HTML
/// dashboard renderer (src/telemetry/dashboard): delta arithmetic against
/// a live session, throughput derivation, imbalance, the JSONL row shape,
/// finalize() appending the exact write_metrics_jsonl aggregates, and the
/// dashboard's self-containment contract.

#include "telemetry/snapshot.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/dashboard.hpp"
#include "telemetry/report.hpp"
#include "telemetry/telemetry.hpp"

namespace wsmd::telemetry {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::size_t count_lines_with(const std::string& text,
                             const std::string& needle) {
  std::size_t n = 0;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.find(needle) != std::string::npos) ++n;
  }
  return n;
}

class SnapshotStreamTest : public ::testing::Test {
 protected:
  void SetUp() override { begin_session(); }
  void TearDown() override { end_session(); }
};

TEST_F(SnapshotStreamTest, CadenceGate) {
  const std::string path = ::testing::TempDir() + "wsmd_snap_cadence.jsonl";
  SnapshotStream stream(path, 0.5, 0.002);
  EXPECT_EQ(stream.cadence_seconds(), 0.5);
  EXPECT_FALSE(stream.snapshot_due(0.0));
  EXPECT_FALSE(stream.snapshot_due(0.49));
  EXPECT_TRUE(stream.snapshot_due(0.5));
  stream.take_snapshot(10, 0.5, {}, {});
  EXPECT_FALSE(stream.snapshot_due(0.9));
  EXPECT_TRUE(stream.snapshot_due(1.0));
  // A zero cadence never fires (aggregates-only metrics file).
  SnapshotStream off(::testing::TempDir() + "wsmd_snap_off.jsonl", 0.0,
                     0.002);
  EXPECT_FALSE(off.snapshot_due(1e9));
}

TEST_F(SnapshotStreamTest, DeltasThroughputAndImbalance) {
  const std::string path = ::testing::TempDir() + "wsmd_snap_delta.jsonl";
  SnapshotStream stream(path, 0.1, 0.002);

  add_span_time("force", 2.0, 4);
  count("wse.interactions", 1000);
  count("wse.steps", 10);
  const auto& r1 =
      stream.take_snapshot(10, 1.0, {0.6, 0.2}, {0.05, 0.45});
  EXPECT_EQ(r1.seq, 0);
  EXPECT_EQ(r1.step, 10);
  EXPECT_EQ(r1.steps_delta, 10);
  EXPECT_DOUBLE_EQ(r1.wall_delta_s, 1.0);
  // 10 steps * 0.002 ps * 1e-3 ns/ps over 1 s, per day.
  EXPECT_NEAR(r1.ns_per_day, 10 * 0.002 * 1e-3 * 86400.0, 1e-9);
  EXPECT_NEAR(r1.pairs_per_s, 1000.0, 1e-9);
  ASSERT_EQ(r1.span_delta_s.size(), 1u);
  EXPECT_EQ(r1.span_delta_s[0].first, "force");
  EXPECT_DOUBLE_EQ(r1.span_delta_s[0].second, 2.0);
  ASSERT_EQ(r1.shard_busy_s.size(), 2u);
  EXPECT_DOUBLE_EQ(r1.shard_busy_s[0], 0.6);
  // imbalance = max / mean = 0.6 / 0.4.
  EXPECT_NEAR(r1.imbalance, 1.5, 1e-12);

  // Second snapshot differences against the first's cumulative values.
  add_span_time("force", 0.5, 1);
  count("wse.interactions", 500);
  const auto& r2 =
      stream.take_snapshot(30, 1.5, {0.8, 0.6}, {0.1, 0.5});
  EXPECT_EQ(r2.seq, 1);
  EXPECT_EQ(r2.steps_delta, 20);
  EXPECT_DOUBLE_EQ(r2.wall_delta_s, 0.5);
  EXPECT_NEAR(r2.pairs_per_s, 1000.0, 1e-9);  // 500 pairs / 0.5 s
  ASSERT_EQ(r2.span_delta_s.size(), 1u);
  EXPECT_DOUBLE_EQ(r2.span_delta_s[0].second, 0.5);
  ASSERT_EQ(r2.shard_busy_s.size(), 2u);
  EXPECT_NEAR(r2.shard_busy_s[0], 0.2, 1e-12);
  EXPECT_NEAR(r2.shard_busy_s[1], 0.4, 1e-12);
  // Equalizing shards: max 0.4 / mean 0.3.
  EXPECT_NEAR(r2.imbalance, 0.4 / 0.3, 1e-12);

  // An interval with no new span/counter activity emits empty deltas
  // (zero-delta names are omitted, not written as 0).
  const auto& r3 = stream.take_snapshot(40, 2.0, {0.8, 0.6}, {0.1, 0.5});
  EXPECT_TRUE(r3.span_delta_s.empty());
  EXPECT_TRUE(r3.counter_delta.empty());
  EXPECT_DOUBLE_EQ(r3.imbalance, 0.0) << "no busy time this interval";
}

TEST_F(SnapshotStreamTest, JsonlRowsAndFinalizedAggregates) {
  const std::string path = ::testing::TempDir() + "wsmd_snap_file.jsonl";
  {
    SnapshotStream stream(path, 0.1, 0.002);
    add_span_time("force", 1.0, 2);
    count("wse.steps", 5);
    stream.take_snapshot(5, 0.25, {0.5}, {0.0});
    stream.take_snapshot(9, 0.5, {0.9}, {0.1});
    stream.finalize();
    EXPECT_EQ(stream.rows().size(), 2u);
    stream.finalize();  // idempotent
  }
  const std::string text = slurp(path);
  EXPECT_EQ(count_lines_with(text, "\"kind\": \"snapshot\""), 2u);
  EXPECT_NE(text.find("\"seq\": 0"), std::string::npos);
  EXPECT_NE(text.find("\"seq\": 1"), std::string::npos);
  EXPECT_NE(text.find("\"shard_busy_s\": [0.5]"), std::string::npos);
  EXPECT_NE(text.find("\"imbalance\": 1"), std::string::npos);

  // The finalized tail must be byte-compatible with write_metrics_jsonl:
  // same keys, same encoding, PR 6 consumers parse it unchanged.
  const std::string ref_path = ::testing::TempDir() + "wsmd_snap_ref.jsonl";
  write_metrics_jsonl(ref_path);
  std::istringstream ref(slurp(ref_path));
  std::string line;
  while (std::getline(ref, line)) {
    EXPECT_NE(text.find(line), std::string::npos)
        << "aggregate row missing from finalized stream: " << line;
  }
  EXPECT_EQ(count_lines_with(text, "\"kind\": \"span\""),
            count_lines_with(slurp(ref_path), "\"kind\": \"span\""));
}

TEST_F(SnapshotStreamTest, DestructorFinalizesBestEffort) {
  const std::string path = ::testing::TempDir() + "wsmd_snap_dtor.jsonl";
  {
    SnapshotStream stream(path, 0.1, 0.002);
    count("wse.steps", 3);
    stream.take_snapshot(3, 0.2, {}, {});
    // No finalize(): an unexpected unwind must still close the file with
    // the aggregate tail.
  }
  const std::string text = slurp(path);
  EXPECT_EQ(count_lines_with(text, "\"kind\": \"snapshot\""), 1u);
  EXPECT_GE(count_lines_with(text, "\"kind\": \"counter\""), 1u);
}

TEST_F(SnapshotStreamTest, ShardCountChangeResetsTheBaseline) {
  const std::string path = ::testing::TempDir() + "wsmd_snap_shards.jsonl";
  SnapshotStream stream(path, 0.1, 0.002);
  stream.take_snapshot(1, 0.2, {1.0, 1.0}, {0.0, 0.0});
  // Different shard count: cumulative baselines reset to zero instead of
  // differencing mismatched vectors.
  const auto& row = stream.take_snapshot(2, 0.4, {2.0, 2.0, 2.0}, {0.0, 0.0, 0.0});
  ASSERT_EQ(row.shard_busy_s.size(), 3u);
  EXPECT_DOUBLE_EQ(row.shard_busy_s[0], 2.0);
}

DashboardInput dashboard_input(std::size_t snapshots) {
  DashboardInput in;
  in.title = "cu_gb_mobility";
  in.backend = "sharded:2 (2 shards over wse-core)";
  in.atoms = 1234;
  in.total_steps = 300;
  in.wall_seconds = 2.5;
  in.dt_ps = 0.002;
  for (std::size_t i = 0; i < snapshots; ++i) {
    SnapshotRow row;
    row.seq = static_cast<long long>(i);
    row.t_s = 0.1 * static_cast<double>(i + 1);
    row.step = static_cast<long>(10 * (i + 1));
    row.steps_delta = 10;
    row.wall_delta_s = 0.1;
    row.ns_per_day = 1.5 + 0.1 * static_cast<double>(i);
    row.pairs_per_s = 1e6;
    row.span_delta_s = {{"force", 0.05}, {"halo", 0.01}};
    row.shard_busy_s = {0.06, 0.04};
    row.shard_wait_s = {0.0, 0.02};
    row.imbalance = 1.2;
    in.snapshots.push_back(row);
  }
  PhaseRow cost;
  cost.phase = "force";
  cost.measured_seconds = 1.9;
  cost.has_modeled = true;
  cost.modeled_seconds = 1.7;
  cost.ratio = 1.9 / 1.7;
  in.cost.push_back(cost);
  return in;
}

TEST(Dashboard, SelfContainedWithChartsAndTables) {
  const auto html = render_dashboard_html(dashboard_input(5));
  // Document shape + the sections CI's checker requires.
  EXPECT_EQ(html.rfind("<!DOCTYPE html>", 0), 0u);
  EXPECT_NE(html.find("<svg"), std::string::npos);
  EXPECT_NE(html.find("<style>"), std::string::npos);
  EXPECT_NE(html.find("Measured vs modeled"), std::string::npos);
  EXPECT_NE(html.find("Shard load"), std::string::npos);
  EXPECT_NE(html.find("cu_gb_mobility"), std::string::npos);
  // Self-containment: nothing that reaches the network or filesystem.
  for (const char* banned : {"http://", "https://", "src=", "<link",
                             "<script", "@import", "url("}) {
    EXPECT_EQ(html.find(banned), std::string::npos)
        << "external reference '" << banned << "'";
  }
}

TEST(Dashboard, FewSnapshotsDegradeGracefully) {
  // 0 and 1 snapshots cannot chart a polyline; the dashboard must still
  // render (placeholder text instead of an empty/degenerate SVG path).
  for (const std::size_t n : {0u, 1u}) {
    const auto html = render_dashboard_html(dashboard_input(n));
    EXPECT_EQ(html.rfind("<!DOCTYPE html>", 0), 0u) << n;
    EXPECT_NE(html.find("Measured vs modeled"), std::string::npos) << n;
  }
}

TEST(Dashboard, EscapesUserControlledStrings) {
  auto in = dashboard_input(2);
  in.title = "<script>alert(1)</script>";
  const auto html = render_dashboard_html(in);
  EXPECT_EQ(html.find("<script>"), std::string::npos);
  EXPECT_NE(html.find("&lt;script&gt;"), std::string::npos);
}

TEST(Dashboard, WriteToFile) {
  const std::string path = ::testing::TempDir() + "wsmd_dash.html";
  write_dashboard_html(path, dashboard_input(3));
  const auto text = slurp(path);
  EXPECT_NE(text.find("<svg"), std::string::npos);
}

}  // namespace
}  // namespace wsmd::telemetry
