/// \file test_health.cpp
/// The run-health watchdog in isolation (src/telemetry/health): action
/// parsing, each latched detector driven by crafted thermo samples, the
/// warn-vs-abort contract, the stall watchdog thread with a short timeout,
/// the thermo-tail ring, and both bundle writers.

#include "telemetry/health.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace wsmd::telemetry {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

HealthSample sample(long step, double pe, double ke, double temperature,
                    double target_K = 0.0, bool has_target = false) {
  HealthSample s;
  s.step = step;
  s.pe = pe;
  s.ke = ke;
  s.total = pe + ke;
  s.temperature = temperature;
  s.target_K = target_K;
  s.has_target = has_target;
  return s;
}

TEST(HealthAction, ParseAndName) {
  HealthAction a = HealthAction::kOff;
  EXPECT_TRUE(parse_health_action("off", &a));
  EXPECT_EQ(a, HealthAction::kOff);
  EXPECT_TRUE(parse_health_action("warn", &a));
  EXPECT_EQ(a, HealthAction::kWarn);
  EXPECT_TRUE(parse_health_action("abort", &a));
  EXPECT_EQ(a, HealthAction::kAbort);
  EXPECT_FALSE(parse_health_action("on", &a));
  EXPECT_FALSE(parse_health_action("", &a));
  EXPECT_FALSE(parse_health_action("Abort", &a));
  EXPECT_STREQ(health_action_name(HealthAction::kOff), "off");
  EXPECT_STREQ(health_action_name(HealthAction::kWarn), "warn");
  EXPECT_STREQ(health_action_name(HealthAction::kAbort), "abort");
}

TEST(HealthConfig, EnabledAndAbortPredicates) {
  HealthConfig cfg;  // default: nan warns, everything else off
  EXPECT_TRUE(cfg.any_enabled());
  EXPECT_FALSE(cfg.any_abort());
  cfg.nan = HealthAction::kOff;
  EXPECT_FALSE(cfg.any_enabled());
  cfg.stall = HealthAction::kAbort;
  EXPECT_TRUE(cfg.any_enabled());
  EXPECT_TRUE(cfg.any_abort());
}

TEST(HealthMonitor, NanDetectorWarnsOnceAndLatches) {
  HealthConfig cfg;  // nan = warn by default
  std::vector<HealthEvent> warns;
  HealthMonitor mon(cfg, [&](const HealthEvent& e) { warns.push_back(e); });
  mon.begin_stage(false, true, 300.0);
  EXPECT_FALSE(mon.check(sample(1, -3.0, 1.0, 290.0)).has_value());
  EXPECT_TRUE(warns.empty());
  // Each non-finite field trips it; the latch means exactly one event.
  EXPECT_FALSE(mon.check(sample(2, kNaN, 1.0, 290.0)).has_value());
  EXPECT_FALSE(mon.check(sample(3, -3.0, kInf, 290.0)).has_value());
  EXPECT_FALSE(mon.check(sample(4, -3.0, 1.0, kNaN)).has_value());
  ASSERT_EQ(warns.size(), 1u);
  EXPECT_EQ(warns[0].detector, "nan");
  EXPECT_EQ(warns[0].step, 2);
  EXPECT_EQ(warns[0].action, HealthAction::kWarn);
  EXPECT_NE(warns[0].message.find("non-finite"), std::string::npos);
  EXPECT_EQ(mon.events().size(), 1u);
}

TEST(HealthMonitor, NanDetectorAbortReturnsTheFatalEvent) {
  HealthConfig cfg;
  cfg.nan = HealthAction::kAbort;
  std::vector<HealthEvent> warns;
  HealthMonitor mon(cfg, [&](const HealthEvent& e) { warns.push_back(e); });
  mon.begin_stage(true, false, 0.0);
  const auto fatal = mon.check(sample(7, kNaN, kNaN, kNaN));
  ASSERT_TRUE(fatal.has_value());
  EXPECT_EQ(fatal->detector, "nan");
  EXPECT_EQ(fatal->step, 7);
  EXPECT_EQ(fatal->action, HealthAction::kAbort);
  // Aborts return; they must not also fire the warn sink.
  EXPECT_TRUE(warns.empty());
}

TEST(HealthMonitor, DriftDetectorOnlyDuringConservingStages) {
  HealthConfig cfg;
  cfg.energy_drift = HealthAction::kWarn;
  cfg.energy_band = 0.05;
  std::vector<HealthEvent> warns;
  HealthMonitor mon(cfg, [&](const HealthEvent& e) { warns.push_back(e); });

  // Thermostatted stage: drift is meaningless (energy is injected), so a
  // wild excursion must not trip anything.
  mon.begin_stage(/*conserves_energy=*/false, true, 300.0);
  EXPECT_FALSE(mon.check(sample(1, -10.0, 1.0, 300.0)).has_value());
  EXPECT_FALSE(mon.check(sample(2, -20.0, 5.0, 300.0)).has_value());
  EXPECT_TRUE(warns.empty());

  // Conserving stage: baseline = first sample (E0 = -9), band 5%.
  mon.begin_stage(/*conserves_energy=*/true, false, 0.0);
  EXPECT_FALSE(mon.check(sample(3, -10.0, 1.0, 280.0)).has_value());
  EXPECT_FALSE(mon.check(sample(4, -10.2, 1.3, 281.0)).has_value());  // 1.1%
  EXPECT_FALSE(mon.check(sample(5, -10.0, 2.0, 282.0)).has_value());  // 11%
  ASSERT_EQ(warns.size(), 1u);
  EXPECT_EQ(warns[0].detector, "energy_drift");
  EXPECT_EQ(warns[0].step, 5);
  EXPECT_NEAR(warns[0].value, 1.0 / 9.0, 1e-12);
  EXPECT_EQ(warns[0].limit, 0.05);
  // Latched: staying outside the band emits nothing further.
  EXPECT_FALSE(mon.check(sample(6, -10.0, 3.0, 283.0)).has_value());
  EXPECT_EQ(warns.size(), 1u);
}

TEST(HealthMonitor, DriftBaselineRearmsPerStage) {
  HealthConfig cfg;
  cfg.nan = HealthAction::kOff;
  cfg.energy_drift = HealthAction::kAbort;
  cfg.energy_band = 0.10;
  HealthMonitor mon(cfg, nullptr);
  mon.begin_stage(true, false, 0.0);
  EXPECT_FALSE(mon.check(sample(1, -8.0, 0.5, 100.0)).has_value());
  // New stage: the old E0 = -7.5 is forgotten; -4.0 becomes the baseline.
  mon.begin_stage(true, false, 0.0);
  EXPECT_FALSE(mon.check(sample(2, -5.0, 1.0, 100.0)).has_value());
  const auto fatal = mon.check(sample(3, -5.0, 2.0, 100.0));  // 25% of 4
  ASSERT_TRUE(fatal.has_value());
  EXPECT_EQ(fatal->detector, "energy_drift");
}

TEST(HealthMonitor, TemperatureDetectorNeedsTargetAndBand) {
  HealthConfig cfg;
  cfg.temperature = HealthAction::kWarn;
  cfg.temperature_band_K = 50.0;
  std::vector<HealthEvent> warns;
  HealthMonitor mon(cfg, [&](const HealthEvent& e) { warns.push_back(e); });

  // Free stage (no thermostat target): runaway T is not this detector's
  // business there.
  mon.begin_stage(true, false, 0.0);
  EXPECT_FALSE(mon.check(sample(1, -3.0, 9.0, 900.0)).has_value());
  EXPECT_TRUE(warns.empty());

  mon.begin_stage(false, true, 300.0);
  EXPECT_FALSE(
      mon.check(sample(2, -3.0, 1.0, 340.0, 300.0, true)).has_value());
  EXPECT_FALSE(
      mon.check(sample(3, -3.0, 1.0, 380.0, 300.0, true)).has_value());
  ASSERT_EQ(warns.size(), 1u);
  EXPECT_EQ(warns[0].detector, "temperature");
  EXPECT_EQ(warns[0].value, 380.0);
  EXPECT_EQ(warns[0].limit, 50.0);
}

TEST(HealthMonitor, NonFiniteRowsSkipMagnitudeDetectors) {
  // A NaN total must not also trip drift/temperature with garbage math —
  // the nan detector owns non-finite rows.
  HealthConfig cfg;
  cfg.nan = HealthAction::kWarn;
  cfg.energy_drift = HealthAction::kAbort;
  cfg.energy_band = 1e-6;
  cfg.temperature = HealthAction::kAbort;
  cfg.temperature_band_K = 1e-6;
  std::vector<HealthEvent> warns;
  HealthMonitor mon(cfg, [&](const HealthEvent& e) { warns.push_back(e); });
  mon.begin_stage(true, true, 300.0);
  EXPECT_FALSE(mon.check(sample(1, -3.0, 1.0, 300.0, 300.0, true)).has_value());
  const auto fatal = mon.check(sample(2, kNaN, 1.0, kNaN, 300.0, true));
  EXPECT_FALSE(fatal.has_value());
  ASSERT_EQ(warns.size(), 1u);
  EXPECT_EQ(warns[0].detector, "nan");
}

TEST(HealthMonitor, StallWatchdogWarnsOnTheWatchdogThread) {
  HealthConfig cfg;
  cfg.nan = HealthAction::kOff;
  cfg.stall = HealthAction::kWarn;
  cfg.stall_timeout_s = 0.05;
  std::atomic<int> warned{0};
  std::atomic<bool> is_watchdog_thread{false};
  const auto main_id = std::this_thread::get_id();
  HealthMonitor mon(cfg, [&](const HealthEvent& e) {
    EXPECT_EQ(e.detector, "stall");
    is_watchdog_thread.store(std::this_thread::get_id() != main_id);
    warned.fetch_add(1);
  });
  mon.begin_stage(true, false, 0.0);
  // Do not heartbeat; the watchdog must fire within a few polls.
  for (int i = 0; i < 200 && warned.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  mon.stop();
  EXPECT_EQ(warned.load(), 1) << "stall latches: exactly one event";
  EXPECT_TRUE(is_watchdog_thread.load());
  ASSERT_EQ(mon.events().size(), 1u);
  EXPECT_GE(mon.events()[0].value, cfg.stall_timeout_s);
}

TEST(HealthMonitor, StallAbortGoesToTheInstalledHandler) {
  HealthConfig cfg;
  cfg.nan = HealthAction::kOff;
  cfg.stall = HealthAction::kAbort;
  cfg.stall_timeout_s = 0.05;
  std::atomic<int> warn_calls{0};
  std::atomic<int> handler_calls{0};
  HealthMonitor mon(cfg,
                    [&](const HealthEvent&) { warn_calls.fetch_add(1); });
  mon.set_stall_handler([&](const HealthEvent& e) {
    EXPECT_EQ(e.action, HealthAction::kAbort);
    handler_calls.fetch_add(1);
  });
  mon.begin_stage(true, false, 0.0);
  for (int i = 0; i < 200 && handler_calls.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  mon.stop();
  EXPECT_EQ(handler_calls.load(), 1);
  EXPECT_EQ(warn_calls.load(), 0) << "aborts bypass the warn sink";
}

TEST(HealthMonitor, HeartbeatsKeepTheWatchdogQuiet) {
  HealthConfig cfg;
  cfg.nan = HealthAction::kOff;
  cfg.stall = HealthAction::kWarn;
  cfg.stall_timeout_s = 0.2;
  std::atomic<int> warned{0};
  HealthMonitor mon(cfg, [&](const HealthEvent&) { warned.fetch_add(1); });
  mon.begin_stage(true, false, 0.0);
  for (int i = 0; i < 10; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    mon.step_completed();
  }
  mon.stop();
  EXPECT_EQ(warned.load(), 0);
}

TEST(HealthMonitor, ThermoTailRingKeepsTheLastK) {
  HealthConfig cfg;
  cfg.thermo_tail = 4;
  HealthMonitor mon(cfg, nullptr);
  for (long s = 1; s <= 10; ++s) {
    mon.record(sample(s, -1.0 * static_cast<double>(s), 0.5, 100.0));
  }
  const auto tail = mon.tail();
  ASSERT_EQ(tail.size(), 4u);
  EXPECT_EQ(tail.front().step, 7);
  EXPECT_EQ(tail.back().step, 10);
}

TEST(HealthWriters, ThermoTailCsvPrintsNonFiniteRowsVerbatim) {
  const std::string path = ::testing::TempDir() + "wsmd_health_tail.csv";
  std::vector<HealthSample> rows{sample(5, -3.25, 1.5, 290.0),
                                 sample(6, kNaN, kInf, 291.0)};
  write_thermo_tail_csv(path, rows);
  const std::string text = slurp(path);
  EXPECT_NE(text.find("step,pe_eV,ke_eV,total_eV,temperature_K\n"),
            std::string::npos);
  EXPECT_NE(text.find("5,-3.25,1.5,-1.75,290\n"), std::string::npos);
  EXPECT_NE(text.find("6,nan,inf"), std::string::npos)
      << "the blow-up rows are the payload: " << text;
}

TEST(HealthWriters, HealthJsonVerdictsAndArtifacts) {
  const std::string path = ::testing::TempDir() + "wsmd_health.json";
  HealthEvent warn;
  warn.detector = "temperature";
  warn.message = "T out of band";
  warn.step = 9;
  warn.value = 380.0;
  warn.limit = 50.0;
  warn.action = HealthAction::kWarn;
  HealthEvent fatal = warn;
  fatal.detector = "nan";
  fatal.action = HealthAction::kAbort;
  HealthArtifacts art;
  art.dir = "run.health";
  art.checkpoint = "run.health/checkpoint.ckpt";
  art.thermo_tail = "run.health/thermo_tail.csv";

  write_health_json(path, "run", "reference", {warn, fatal}, &fatal, art);
  std::string text = slurp(path);
  EXPECT_NE(text.find("\"schema\": 1"), std::string::npos);
  EXPECT_NE(text.find("\"verdict\": \"abort\""), std::string::npos);
  EXPECT_NE(text.find("\"detector\": \"nan\""), std::string::npos);
  EXPECT_NE(text.find("\"detector\": \"temperature\""), std::string::npos);
  EXPECT_NE(text.find("\"dir\": \"run.health\""), std::string::npos);
  // Empty artifact members are recorded as "" (not omitted).
  EXPECT_NE(text.find("\"trace\": \"\""), std::string::npos);

  write_health_json(path, "run", "reference", {warn}, nullptr, art);
  text = slurp(path);
  EXPECT_NE(text.find("\"verdict\": \"warn\""), std::string::npos);
  EXPECT_NE(text.find("\"fatal\": null"), std::string::npos);

  write_health_json(path, "run", "reference", {}, nullptr, art);
  text = slurp(path);
  EXPECT_NE(text.find("\"verdict\": \"ok\""), std::string::npos);
  EXPECT_NE(text.find("\"events\": []"), std::string::npos);
}

}  // namespace
}  // namespace wsmd::telemetry
