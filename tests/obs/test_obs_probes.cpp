/// \file test_obs_probes.cpp
/// Physics of the streaming observables (src/obs), pinned on analytically
/// known configurations:
///   - RDF first-peak positions of perfect FCC / BCC lattices,
///   - MSD == 0 for a frozen crystal, exact ballistic growth for an
///     ideal gas (including unwrapping across periodic boundaries),
///   - VACF for constant and sign-flipped velocity fields,
///   - CSP defect count of a known vacancy structure (an FCC vacancy
///     exposes exactly its 12 nearest neighbors).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

#include "io/series.hpp"
#include "lattice/lattice.hpp"
#include "obs/defects.hpp"
#include "obs/factory.hpp"
#include "obs/msd.hpp"
#include "obs/probe.hpp"
#include "obs/rdf.hpp"
#include "obs/vacf.hpp"
#include "util/error.hpp"

namespace wsmd::obs {
namespace {

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "wsmd_obs_" + name;
}

Frame frame_of(long step, double time_ps, const Box& box,
               const std::vector<Vec3d>& pos,
               const std::vector<Vec3d>* vel = nullptr) {
  Frame f;
  f.step = step;
  f.time_ps = time_ps;
  f.box = &box;
  f.positions = &pos;
  f.velocities = vel;
  return f;
}

double rdf_peak_position(const lattice::Structure& s, double rcut, int bins) {
  RdfProbe::Config c;
  c.rcut = rcut;
  c.bins = bins;
  c.path = tmp_path("rdf.csv");
  RdfProbe probe(c);
  probe.sample(frame_of(0, 0.0, s.box, s.positions));
  probe.finish();
  const auto series = io::read_series_csv_file(c.path);
  std::remove(c.path.c_str());
  const auto r_col = series.column_index("r_A");
  const auto g_col = series.column_index("g");
  double best_r = 0.0, best_g = -1.0;
  for (const auto& row : series.rows) {
    if (row[g_col] > best_g) {
      best_g = row[g_col];
      best_r = row[r_col];
    }
  }
  EXPECT_GT(best_g, 1.0) << "no structure in g(r)?";
  return best_r;
}

TEST(Rdf, FirstPeakOfPerfectFccIsNearestNeighborDistance) {
  const double a = 3.615;  // Cu
  const auto s = lattice::replicate(lattice::UnitCell::fcc(a), 5, 5, 5, 0,
                                    {true, true, true});
  const int bins = 400;
  const double rcut = 1.8 * a;
  const double peak = rdf_peak_position(s, rcut, bins);
  EXPECT_NEAR(peak, a / std::sqrt(2.0), rcut / bins);
}

TEST(Rdf, FirstPeakOfPerfectBccIsNearestNeighborDistance) {
  const double a = 3.165;  // W
  const auto s = lattice::replicate(lattice::UnitCell::bcc(a), 6, 6, 6, 0,
                                    {true, true, true});
  const int bins = 400;
  const double rcut = 1.8 * a;
  const double peak = rdf_peak_position(s, rcut, bins);
  EXPECT_NEAR(peak, a * std::sqrt(3.0) / 2.0, rcut / bins);
}

TEST(Rdf, RejectsRcutBeyondMinimumImageRange) {
  const double a = 3.615;
  const auto s = lattice::replicate(lattice::UnitCell::fcc(a), 3, 3, 3, 0,
                                    {true, true, true});
  RdfProbe::Config c;
  c.rcut = 2.0 * a;  // needs box >= 4a, box is 3a
  c.bins = 100;
  c.path = tmp_path("rdf_bad.csv");
  RdfProbe probe(c);
  EXPECT_THROW(probe.sample(frame_of(0, 0.0, s.box, s.positions)), Error);
  std::remove(c.path.c_str());
}

TEST(Msd, FrozenCrystalStaysZero) {
  const auto s = lattice::replicate(lattice::UnitCell::fcc(4.0), 3, 3, 3, 0,
                                    {true, true, true});
  MsdProbe probe({tmp_path("msd_frozen.csv"), io::ThermoFormat::kCsv});
  for (long k = 0; k <= 4; ++k) {
    probe.sample(frame_of(k, 0.01 * k, s.box, s.positions));
    EXPECT_DOUBLE_EQ(probe.current_msd(), 0.0);
  }
  probe.finish();
  std::remove(probe.output_path().c_str());
}

TEST(Msd, BallisticGasGrowsQuadraticallyAcrossPeriodicWrap) {
  // Ideal-gas integrator: constant velocities, positions wrapped into the
  // box each sample. MSD(t) must equal <|v|^2> t^2 exactly — which only
  // happens if the probe unwraps boundary crossings correctly (an atom
  // with v = 1.3 A/ps crosses the 10 A box several times here).
  const Box box({0, 0, 0}, {10, 10, 10}, {true, true, true});
  const std::vector<Vec3d> r0 = {{0.5, 5.0, 9.5}, {2.0, 0.1, 4.0},
                                 {9.9, 9.9, 0.2}, {5.0, 5.0, 5.0}};
  const std::vector<Vec3d> v = {{1.3, -0.7, 0.4}, {-1.1, 0.9, -1.2},
                                {0.8, 1.4, -0.3}, {0.0, 0.0, 0.0}};
  MsdProbe probe({tmp_path("msd_gas.csv"), io::ThermoFormat::kCsv});
  const double dt_sample = 1.0;  // ps between samples; |v| dt < L/2
  for (long k = 0; k <= 12; ++k) {
    const double t = dt_sample * static_cast<double>(k);
    std::vector<Vec3d> pos(r0.size());
    for (std::size_t i = 0; i < r0.size(); ++i) {
      pos[i] = box.wrap(r0[i] + t * v[i]);
    }
    probe.sample(frame_of(k, t, box, pos));
    double expect = 0.0;
    for (const auto& vi : v) expect += norm2(vi) * t * t;
    expect /= static_cast<double>(v.size());
    EXPECT_NEAR(probe.current_msd(), expect, 1e-9 + 1e-12 * expect)
        << "at t=" << t;
  }
  probe.finish();
  // The ballistic fit should report a positive, finite pseudo-diffusion.
  JsonObject meta;
  probe.summarize(meta);
  std::remove(probe.output_path().c_str());
}

TEST(Msd, FlagsPerSampleDisplacementsThatRiskAliasing) {
  // Minimum-image unwrapping is only provably correct below half a box
  // edge of true motion per sample; the probe flags apparent steps beyond
  // a quarter edge (and warns once on stderr) instead of silently
  // corrupting the MSD — the failure mode of a too-sparse observe.every
  // or a sparse-xyz_every offline replay.
  const Box box({0, 0, 0}, {10, 10, 10}, {true, true, true});
  MsdProbe probe({tmp_path("msd_alias.csv"), io::ThermoFormat::kCsv});
  std::vector<Vec3d> pos = {{1.0, 5.0, 5.0}};
  probe.sample(frame_of(0, 0.0, box, pos));
  pos[0].x += 2.0;  // 0.2 L: fine
  probe.sample(frame_of(10, 0.1, box, pos));
  EXPECT_EQ(probe.suspect_samples(), 0u);
  pos[0].x = box.wrap(Vec3d{pos[0].x + 3.0, 5.0, 5.0}).x;  // 0.3 L: suspect
  probe.sample(frame_of(20, 0.2, box, pos));
  EXPECT_EQ(probe.suspect_samples(), 1u);
  // Open boxes can never alias — the same jump on a non-periodic axis
  // stays clean.
  const Box open_box({0, 0, 0}, {10, 10, 10});
  MsdProbe open_probe({tmp_path("msd_open.csv"), io::ThermoFormat::kCsv});
  std::vector<Vec3d> r = {{1.0, 5.0, 5.0}};
  open_probe.sample(frame_of(0, 0.0, open_box, r));
  r[0].x += 4.5;
  open_probe.sample(frame_of(10, 0.1, open_box, r));
  EXPECT_EQ(open_probe.suspect_samples(), 0u);
  probe.finish();
  open_probe.finish();
  // The summary carries the flag so offline consumers see it too.
  JsonObject meta;
  probe.summarize(meta);
  std::remove(probe.output_path().c_str());
  std::remove(open_probe.output_path().c_str());
}

TEST(Vacf, ConstantVelocitiesStayPerfectlyCorrelated) {
  const Box box({0, 0, 0}, {10, 10, 10});
  const std::vector<Vec3d> pos = {{1, 1, 1}, {2, 2, 2}, {3, 3, 3}};
  const std::vector<Vec3d> v = {{1, 0, 0}, {0, -2, 0}, {0.5, 0.5, 0.5}};
  VacfProbe probe({tmp_path("vacf_const.csv"), io::ThermoFormat::kCsv});
  for (long k = 0; k <= 3; ++k) {
    probe.sample(frame_of(k, 0.01 * k, box, pos, &v));
    EXPECT_NEAR(probe.current_vacf(), 1.0, 1e-12);
  }
  probe.finish();
  std::remove(probe.output_path().c_str());
}

TEST(Vacf, SignFlipGivesMinusOneAndOriginSkipsRestFrames) {
  const Box box({0, 0, 0}, {10, 10, 10});
  const std::vector<Vec3d> pos = {{1, 1, 1}, {2, 2, 2}};
  const std::vector<Vec3d> rest = {{0, 0, 0}, {0, 0, 0}};
  const std::vector<Vec3d> v = {{1, 2, 3}, {-1, 0, 1}};
  std::vector<Vec3d> flipped = v;
  for (auto& vi : flipped) vi = -1.0 * vi;
  VacfProbe probe({tmp_path("vacf_flip.csv"), io::ThermoFormat::kCsv});
  // A rest frame before motion starts must not become the time origin
  // (scenario schedules begin from a lattice at rest).
  probe.sample(frame_of(0, 0.0, box, pos, &rest));
  EXPECT_DOUBLE_EQ(probe.current_vacf(), 0.0);
  probe.sample(frame_of(1, 0.01, box, pos, &v));
  EXPECT_NEAR(probe.current_vacf(), 1.0, 1e-12);
  probe.sample(frame_of(2, 0.02, box, pos, &flipped));
  EXPECT_NEAR(probe.current_vacf(), -1.0, 1e-12);
  probe.finish();
  // The rest frame's placeholder 0 must not pollute the reported minimum.
  JsonObject meta;
  probe.summarize(meta);
  EXPECT_NE(meta.encode().find("\"obs_vacf_min\": -1"), std::string::npos)
      << meta.encode();
  std::remove(probe.output_path().c_str());
}

TEST(Vacf, RequiresVelocities) {
  const Box box({0, 0, 0}, {10, 10, 10});
  const std::vector<Vec3d> pos = {{1, 1, 1}};
  VacfProbe probe({tmp_path("vacf_novel.csv"), io::ThermoFormat::kCsv});
  EXPECT_THROW(probe.sample(frame_of(0, 0.0, box, pos, nullptr)), Error);
  probe.finish();
  std::remove(probe.output_path().c_str());
}

TEST(Defects, FccVacancyExposesItsTwelveNearestNeighbors) {
  // Remove one atom from a perfect periodic FCC crystal: exactly the 12
  // first-shell neighbors lose their centrosymmetry (CSP >= a^2/2, far
  // above thermal thresholds); every other atom keeps a full shell.
  const double a = 3.615;
  auto s = lattice::replicate(lattice::UnitCell::fcc(a), 4, 4, 4, 0,
                              {true, true, true});
  const std::size_t removed = 42;
  s.positions.erase(s.positions.begin() + removed);
  s.types.erase(s.types.begin() + removed);

  DefectProbe::Config c;
  c.csp_rcut = 1.2 * a;
  c.csp_neighbors = 12;
  c.csp_threshold = 1.0;
  c.path = tmp_path("defects_vacancy.csv");
  DefectProbe probe(c);
  probe.sample(frame_of(0, 0.0, s.box, s.positions));
  EXPECT_EQ(probe.current_defect_count(), 12);
  probe.finish();
  const auto series = io::read_series_csv_file(c.path);
  EXPECT_DOUBLE_EQ(series.rows.at(0).at(series.column_index("defect_count")),
                   12.0);
  EXPECT_NEAR(series.rows.at(0).at(series.column_index("defect_fraction")),
              12.0 / static_cast<double>(s.size()), 1e-12);
  std::remove(c.path.c_str());
}

TEST(Defects, PerfectCrystalHasNoDefects) {
  const double a = 3.165;
  const auto s = lattice::replicate(lattice::UnitCell::bcc(a), 4, 4, 4, 0,
                                    {true, true, true});
  DefectProbe::Config c;
  c.csp_rcut = 1.2 * a;
  c.csp_neighbors = 8;
  c.csp_threshold = 0.5;
  c.path = tmp_path("defects_perfect.csv");
  DefectProbe probe(c);
  probe.sample(frame_of(0, 0.0, s.box, s.positions));
  EXPECT_EQ(probe.current_defect_count(), 0);
  probe.finish();
  std::remove(c.path.c_str());
}

TEST(ObserverBus, DispatchesPerProbeCadenceAndFinalState) {
  ProbeSetConfig config;
  config.probes = {"msd", "defects"};
  config.every = 4;
  config.defects_every = 6;
  config.prefix = tmp_path("bus");
  const Material cu{3.615, 12};
  auto bus = make_observer_bus(config, cu);
  ASSERT_EQ(bus->size(), 2u);
  EXPECT_EQ(bus->cadence(0), 4);
  EXPECT_EQ(bus->cadence(1), 6);

  const auto s = lattice::replicate(lattice::UnitCell::fcc(3.615), 3, 3, 3,
                                    0, {true, true, true});
  for (long step = 0; step <= 13; ++step) {
    if (!bus->due(step)) continue;
    const auto f = frame_of(step, 0.002 * step, s.box, s.positions);
    bus->observe(f);
  }
  // 13 is on neither cadence: the final-state hook must top both off.
  const auto final_frame = frame_of(13, 0.026, s.box, s.positions);
  bus->observe_all(final_frame);
  EXPECT_EQ(bus->probe(0).samples_taken(), 5u);  // 0 4 8 12 + 13
  EXPECT_EQ(bus->probe(1).samples_taken(), 4u);  // 0 6 12 + 13
  // observe_all must not double-sample a probe that already saw the step.
  bus->observe_all(final_frame);
  EXPECT_EQ(bus->probe(0).samples_taken(), 5u);
  bus->finish();
  JsonObject meta;
  bus->summarize(meta);
  std::remove((config.prefix + ".msd.csv").c_str());
  std::remove((config.prefix + ".defects.csv").c_str());
}

TEST(ObserverBus, ReportsVelocityNeedPerStep) {
  ProbeSetConfig config;
  config.probes = {"msd", "vacf"};
  config.every = 1;
  config.vacf_every = 4;
  config.prefix = tmp_path("vel_need");
  auto bus = make_observer_bus(config, Material{3.615, 12});
  // Only steps where the vacf probe fires need the O(N) velocity copy.
  EXPECT_TRUE(bus->needs_velocities_at(0, false));
  EXPECT_FALSE(bus->needs_velocities_at(1, false));
  EXPECT_FALSE(bus->needs_velocities_at(3, false));
  EXPECT_TRUE(bus->needs_velocities_at(4, false));
  // Final-state top-off: vacf has not sampled step 5, so it will fire.
  EXPECT_TRUE(bus->needs_velocities_at(5, true));
  // Position-only buses never need velocities.
  ProbeSetConfig pos_only;
  pos_only.probes = {"msd", "defects"};
  pos_only.prefix = tmp_path("vel_need2");
  auto bus2 = make_observer_bus(pos_only, Material{3.615, 12});
  EXPECT_FALSE(bus2->needs_velocities_at(0, false));
  EXPECT_FALSE(bus2->needs_velocities_at(0, true));
  bus->finish();
  bus2->finish();
  for (const char* p :
       {"vel_need.msd.csv", "vel_need.vacf.csv", "vel_need2.msd.csv",
        "vel_need2.defects.csv"}) {
    std::remove((::testing::TempDir() + "wsmd_obs_" + p).c_str());
  }
}

TEST(Factory, SkipsVelocityProbesOnlyWhenReplaying) {
  ProbeSetConfig config;
  config.probes = {"vacf", "msd"};
  config.prefix = tmp_path("skip");
  const Material cu{3.615, 12};
  std::vector<std::string> skipped;
  auto bus = make_observer_bus(config, cu, /*with_velocities=*/false,
                               &skipped);
  ASSERT_EQ(skipped, std::vector<std::string>{"vacf"});
  EXPECT_EQ(bus->size(), 1u);
  bus->finish();
  std::remove((config.prefix + ".msd.csv").c_str());

  // Nothing left to observe -> loud failure, not a silent no-op run.
  ProbeSetConfig only_vacf;
  only_vacf.probes = {"vacf"};
  only_vacf.prefix = tmp_path("skip2");
  EXPECT_THROW(
      make_observer_bus(only_vacf, cu, /*with_velocities=*/false, &skipped),
      Error);
}

TEST(Factory, EffectiveDefaultsDeriveFromTheMaterial) {
  const Material cu{3.615, 12};
  ProbeSetConfig config;
  EXPECT_NEAR(effective_rdf_rcut(config, cu), 1.8 * 3.615, 1e-12);
  config.rdf_rcut = 5.0;
  EXPECT_DOUBLE_EQ(effective_rdf_rcut(config, cu), 5.0);
  EXPECT_NEAR(effective_csp_rcut(cu), 1.2 * 3.615, 1e-12);
}

}  // namespace
}  // namespace wsmd::obs
