/// \file test_obs_analyze.cpp
/// Offline replay (`wsmd analyze` machinery): a live run with xyz_every ==
/// observe.every must replay, from its own trajectory, to the same
/// observable series the run streamed — RDF bit-for-bit (integer histogram
/// counts survive the XYZ 10-digit round-trip), MSD/defects to round-trip
/// precision. This is the equivalence that makes the checked-in golden
/// trajectory a valid CI input for the analyze path.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "io/series.hpp"
#include "scenario/analyze.hpp"
#include "scenario/deck.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "util/error.hpp"

namespace wsmd::scenario {
namespace {

namespace fs = std::filesystem;

Deck analysis_deck(const std::string& dir) {
  Deck deck = parse_deck_string(
      "name = obs_rt\n"
      "element = Cu\n"
      "geometry = slab\n"
      "replicate = 4 4 2\n"
      "thermalize = 290\n"
      "run = 12\n"
      "observe.probes = rdf msd vacf defects\n"
      "observe.every = 4\n"
      "xyz = obs_rt.traj.xyz\n"
      "xyz_every = 4\n",
      "obs_rt.deck");
  deck.set("observe.prefix", dir + "/obs_rt");
  deck.set("xyz", dir + "/obs_rt.traj.xyz");
  return deck;
}

TEST(Analyze, ReplaysTheLiveSeriesFromTheTrajectory) {
  const std::string dir = ::testing::TempDir() + "wsmd_obs_analyze";
  fs::create_directories(dir);
  const Deck deck = analysis_deck(dir);
  const auto sc = scenario_from_deck(deck);

  const auto live = run_scenario(sc);
  ASSERT_EQ(live.observables.size(), 4u);

  AnalyzeOptions opt;
  const auto replay = analyze_trajectory(sc, dir + "/obs_rt.traj.xyz", opt);
  EXPECT_EQ(replay.frames, live.xyz_frames);
  ASSERT_EQ(replay.skipped_probes, std::vector<std::string>{"vacf"});
  ASSERT_EQ(replay.observables.size(), 3u);  // rdf msd defects

  for (const auto& probe : replay.observables) {
    const std::string live_path = dir + "/obs_rt." + probe.kind + ".csv";
    const auto expect = io::read_series_csv_file(live_path);
    const auto got = io::read_series_csv_file(probe.path);
    ASSERT_EQ(expect.columns, got.columns) << probe.kind;
    ASSERT_EQ(expect.rows.size(), got.rows.size()) << probe.kind;
    for (std::size_t r = 0; r < expect.rows.size(); ++r) {
      for (std::size_t c = 0; c < expect.columns.size(); ++c) {
        const double e = expect.rows[r][c];
        const double g = got.rows[r][c];
        const std::string& col = expect.columns[c];
        if (col == "step" || col == "defect_count") {
          EXPECT_DOUBLE_EQ(g, e) << probe.kind << " " << col << " row " << r;
        } else if (col == "mean_csp_A2") {
          // The step-0 lattice is centrosymmetry-degenerate: the 10-digit
          // XYZ round-trip can reorder tied bonds, shifting surface-atom
          // CSP values while leaving the defect classification intact.
          EXPECT_NEAR(g, e, 0.05 * std::fabs(e) + 0.05)
              << probe.kind << " row " << r;
        } else {
          EXPECT_NEAR(g, e, 1e-6 * std::fabs(e) + 1e-6)
              << probe.kind << " " << col << " row " << r;
        }
      }
    }
  }
  fs::remove_all(dir);
}

TEST(Analyze, RejectsMismatchedTrajectoriesAndProbelessDecks) {
  const std::string dir = ::testing::TempDir() + "wsmd_obs_analyze_bad";
  fs::create_directories(dir);
  const Deck deck = analysis_deck(dir);
  const auto sc = scenario_from_deck(deck);
  run_scenario(sc);

  // Deck without observables: nothing to replay.
  auto bare = scenario_from_deck(parse_deck_string(
      "element = Cu\ngeometry = slab\nreplicate = 4 4 2\nrun = 1\n"));
  EXPECT_THROW(analyze_trajectory(bare, dir + "/obs_rt.traj.xyz"), Error);

  // Deck whose structure does not match the trajectory's atom count.
  Deck wrong_size = analysis_deck(dir);
  wrong_size.set("replicate", "3 3 2");
  EXPECT_THROW(analyze_trajectory(scenario_from_deck(wrong_size),
                                  dir + "/obs_rt.traj.xyz"),
               Error);

  // Element mismatch: the species column disagrees with the deck.
  Deck wrong_element = analysis_deck(dir);
  wrong_element.set("element", "Ni");
  bool threw = false;
  try {
    analyze_trajectory(scenario_from_deck(wrong_element),
                       dir + "/obs_rt.traj.xyz");
  } catch (const Error&) {
    threw = true;
  }
  EXPECT_TRUE(threw);

  // Missing trajectory file.
  EXPECT_THROW(analyze_trajectory(sc, dir + "/nope.xyz"), Error);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace wsmd::scenario
