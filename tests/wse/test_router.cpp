#include "wse/router.hpp"

#include <gtest/gtest.h>

namespace wsmd::wse {
namespace {

Wavelet data(std::uint32_t v) { return Wavelet::make_data(v); }

TEST(Router, BodyForwardsAndDeliversData) {
  VcRouterState vc;
  vc.role = McastRole::Body;
  const RouteDecision d = route_upstream_wavelet(vc, data(42));
  EXPECT_TRUE(d.to_core);
  EXPECT_TRUE(d.forward);
  EXPECT_EQ(d.downstream_wavelet.data, 42u);
  EXPECT_EQ(vc.role, McastRole::Body);
  EXPECT_EQ(vc.forwarded, 1u);
  EXPECT_EQ(vc.delivered, 1u);
}

TEST(Router, TailDeliversWithoutForwarding) {
  VcRouterState vc;
  vc.role = McastRole::Tail;
  const RouteDecision d = route_upstream_wavelet(vc, data(7));
  EXPECT_TRUE(d.to_core);
  EXPECT_FALSE(d.forward);
  EXPECT_EQ(vc.role, McastRole::Tail);
}

TEST(Router, HeadIgnoresUpstreamData) {
  VcRouterState vc;
  vc.role = McastRole::Head;
  const RouteDecision d = route_upstream_wavelet(vc, data(7));
  EXPECT_FALSE(d.to_core);
  EXPECT_FALSE(d.forward);
}

TEST(Router, IdleDropsEverything) {
  VcRouterState vc;
  vc.role = McastRole::Idle;
  EXPECT_FALSE(route_upstream_wavelet(vc, data(1)).to_core);
  EXPECT_FALSE(
      route_upstream_wavelet(
          vc, Wavelet::make_command({RouterCmd::Advance}))
          .forward);
  EXPECT_EQ(vc.role, McastRole::Idle);
}

TEST(Router, FirstBodyPopsAdvanceAndBecomesHead) {
  // Paper Sec. III-B: "body tiles are configured to pop advance commands so
  // that only the first body tile in the chain reacts".
  VcRouterState vc;
  vc.role = McastRole::Body;
  const RouteDecision d = route_upstream_wavelet(
      vc, Wavelet::make_command({RouterCmd::Advance, RouterCmd::Reset}));
  EXPECT_EQ(vc.role, McastRole::Head);
  ASSERT_TRUE(d.forward);
  ASSERT_EQ(d.downstream_wavelet.commands.size(), 1u);
  EXPECT_EQ(d.downstream_wavelet.commands[0], RouterCmd::Reset);
}

TEST(Router, MiddleBodyPassesResetUntouched) {
  VcRouterState vc;
  vc.role = McastRole::Body;
  const RouteDecision d =
      route_upstream_wavelet(vc, Wavelet::make_command({RouterCmd::Reset}));
  EXPECT_EQ(vc.role, McastRole::Body);  // does not react
  ASSERT_TRUE(d.forward);
  ASSERT_EQ(d.downstream_wavelet.commands.size(), 1u);
  EXPECT_EQ(d.downstream_wavelet.commands[0], RouterCmd::Reset);
}

TEST(Router, TailResetsToBody) {
  VcRouterState vc;
  vc.role = McastRole::Tail;
  const RouteDecision d =
      route_upstream_wavelet(vc, Wavelet::make_command({RouterCmd::Reset}));
  EXPECT_EQ(vc.role, McastRole::Body);
  EXPECT_FALSE(d.forward);  // command absorbed at the domain boundary
}

TEST(Router, TailWithLeadingAdvanceBecomesHead) {
  // The b = 1 march has no body tile: the tail pops the Advance itself.
  VcRouterState vc;
  vc.role = McastRole::Tail;
  const RouteDecision d = route_upstream_wavelet(
      vc, Wavelet::make_command({RouterCmd::Advance, RouterCmd::Reset}));
  EXPECT_EQ(vc.role, McastRole::Head);
  EXPECT_FALSE(d.forward);
}

TEST(Router, EmptyCommandListIsNoOp) {
  VcRouterState vc;
  vc.role = McastRole::Body;
  const RouteDecision d =
      route_upstream_wavelet(vc, Wavelet::make_command({}));
  EXPECT_EQ(vc.role, McastRole::Body);
  EXPECT_FALSE(d.forward);
}

}  // namespace
}  // namespace wsmd::wse
