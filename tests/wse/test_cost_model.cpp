#include "wse/cost_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace wsmd::wse {
namespace {

TEST(CostModel, TableIICoefficients) {
  // Paper Table II: A = 26.6 ns, B = 71.4 ns, C = 574.0 ns. The Table V
  // basis rounds A to Mcast+Miss = 27 ns and B to 71 ns.
  const CostModel m = CostModel::paper_baseline();
  EXPECT_NEAR(m.A_ns(), 26.6, 0.5);
  EXPECT_NEAR(m.B_ns(), 71.4, 0.5);
  EXPECT_NEAR(m.C_ns(), 574.0, 1e-12);
}

TEST(CostModel, TableIPredictedRates) {
  // Paper Table I "Predicted (WSE)" column from the same model.
  const CostModel m = CostModel::paper_baseline();
  struct Row { double cand, inter, predicted; };
  for (const Row& r : {Row{224, 42, 104895.0},   // Cu
                       Row{224, 59, 93048.0},    // W
                       Row{80, 14, 270097.0}}) { // Ta
    const double rate = m.steps_per_second(r.cand, r.inter);
    EXPECT_NEAR(rate, r.predicted, 0.015 * r.predicted)
        << "cand=" << r.cand << " inter=" << r.inter;
  }
}

TEST(CostModel, TantalumTimestepCycleCount) {
  // Paper Sec. V-B: ~3,477 cycles per timestep for the controlled
  // Ta-class configuration at the modeled clock.
  const CostModel m = CostModel::paper_baseline();
  const double cycles = m.timestep_cycles(80, 14);
  EXPECT_NEAR(cycles, 3477.0, 0.03 * 3477.0);
}

TEST(CostModel, CandidatesForB) {
  EXPECT_DOUBLE_EQ(CostModel::candidates_for_b(4), 80.0);   // Ta
  EXPECT_DOUBLE_EQ(CostModel::candidates_for_b(7), 224.0);  // Cu, W
  EXPECT_DOUBLE_EQ(CostModel::candidates_for_b(0), 0.0);
  EXPECT_THROW(CostModel::candidates_for_b(-1), Error);
}

TEST(CostModel, TableVProjectionLadderTa) {
  // Paper Table V, Ta column: 270 -> 290 -> 460 -> 650 -> 1,100 (x1000
  // steps/s) as the four optimizations stack.
  CostModel m = CostModel::paper_baseline();
  const double cand = 80, inter = 14;

  EXPECT_NEAR(m.steps_per_second(cand, inter) / 1e3, 270.0, 8.0);

  m.factors().fixed = 0.5;  // "Reduce fixed cost"
  EXPECT_NEAR(m.steps_per_second(cand, inter) / 1e3, 290.0, 9.0);

  m.factors().miss = 0.1;  // "Neighbor list" reused 10 steps
  EXPECT_NEAR(m.steps_per_second(cand, inter) / 1e3, 460.0, 14.0);

  m.factors().interaction = 0.5;  // "Force symmetry"
  EXPECT_NEAR(m.steps_per_second(cand, inter) / 1e3, 650.0, 20.0);

  m.factors().mcast = 0.5;  // "Multi-core workers"
  m.factors().miss = 0.05;
  m.factors().interaction = 0.25;
  EXPECT_GT(m.steps_per_second(cand, inter), 1.0e6)
      << "combined optimizations must exceed one million steps/s (paper)";
}

TEST(CostModel, InteractionsCostMoreThanRejects) {
  const CostModel m = CostModel::paper_baseline();
  const double base = m.timestep_seconds(100, 10);
  EXPECT_GT(m.timestep_seconds(100, 20), base);   // more hits cost more
  EXPECT_GT(m.timestep_seconds(120, 10), base);   // more candidates too
}

TEST(CostModel, RejectsInvalidCounts) {
  const CostModel m = CostModel::paper_baseline();
  EXPECT_THROW(m.timestep_seconds(-1, 0), Error);
  EXPECT_THROW(m.timestep_seconds(10, 11), Error);  // inter > cand
}

TEST(OptimizationHistory, StartsAt5p6xAndEndsAtBaseline) {
  const auto stages = optimization_history();
  ASSERT_GE(stages.size(), 15u);  // paper Fig. 10 shows 19 data points
  EXPECT_NEAR(stages.front().cumulative.fixed, 5.6, 1e-9);
  EXPECT_NEAR(stages.back().cumulative.mcast, 1.0, 1e-9);
  EXPECT_NEAR(stages.back().cumulative.miss, 1.0, 1e-9);
  EXPECT_NEAR(stages.back().cumulative.interaction, 1.0, 1e-9);
  EXPECT_NEAR(stages.back().cumulative.fixed, 1.0, 1e-9);
}

TEST(OptimizationHistory, PerformanceIsMonotonicallyNonDecreasing) {
  const auto stages = optimization_history();
  double prev = 0.0;
  for (const auto& st : stages) {
    CostModel m = CostModel::paper_baseline();
    m.factors() = st.cumulative;
    const double rate = m.steps_per_second(80, 14);
    EXPECT_GE(rate, prev - 1e-9) << "regression at stage '" << st.name << "'";
    prev = rate;
  }
}

TEST(OptimizationHistory, TungstenLevelReachesWithin2xOfModel) {
  // Paper Sec. V-G: high-level optimizations reached within 2x of the
  // model; assembly closed the rest.
  const auto stages = optimization_history();
  const CostModel baseline = CostModel::paper_baseline();
  const double target = baseline.steps_per_second(80, 14);

  double last_tungsten = 0.0;
  for (const auto& st : stages) {
    if (st.assembly_level) break;
    CostModel m = CostModel::paper_baseline();
    m.factors() = st.cumulative;
    last_tungsten = m.steps_per_second(80, 14);
  }
  EXPECT_GT(last_tungsten, target / 2.2);
  EXPECT_LT(last_tungsten, target);
}

}  // namespace
}  // namespace wsmd::wse
