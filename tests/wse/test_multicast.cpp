#include "wse/multicast.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/error.hpp"

namespace wsmd::wse {
namespace {

/// Expected gathered set at (x, y): payload ids of the clipped (2b+1)^2
/// neighborhood, self included.
std::set<std::uint32_t> expected_neighborhood(int width, int height, int x,
                                              int y, int b) {
  std::set<std::uint32_t> out;
  for (int ny = std::max(0, y - b); ny <= std::min(height - 1, y + b); ++ny) {
    for (int nx = std::max(0, x - b); nx <= std::min(width - 1, x + b); ++nx) {
      out.insert(static_cast<std::uint32_t>(ny * width + nx));
    }
  }
  return out;
}

std::vector<std::vector<std::uint32_t>> identity_payloads(int width,
                                                          int height) {
  std::vector<std::vector<std::uint32_t>> p(
      static_cast<std::size_t>(width) * height);
  for (std::size_t i = 0; i < p.size(); ++i) {
    p[i] = {static_cast<std::uint32_t>(i)};
  }
  return p;
}

struct GridCase {
  int width, height, b;
};

class ExchangeTest : public ::testing::TestWithParam<GridCase> {};

TEST_P(ExchangeTest, DeliversExactClippedNeighborhoods) {
  const auto [w, h, b] = GetParam();
  const auto result = neighborhood_exchange(w, h, b, identity_payloads(w, h));
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const auto& g = result.gathered[static_cast<std::size_t>(y) * w + x];
      const std::set<std::uint32_t> got(g.begin(), g.end());
      EXPECT_EQ(got.size(), g.size()) << "duplicate delivery at " << x << "," << y;
      EXPECT_EQ(got, expected_neighborhood(w, h, x, y, b))
          << "wrong neighborhood at " << x << "," << y;
    }
  }
}

TEST_P(ExchangeTest, ZeroMeshLinkContention) {
  const auto [w, h, b] = GetParam();
  const auto result = neighborhood_exchange(w, h, b, identity_payloads(w, h));
  EXPECT_EQ(result.contention_events, 0u)
      << "marching multicast double-booked a mesh link";
}

TEST_P(ExchangeTest, ArrivalOrderIsDeterministic) {
  const auto [w, h, b] = GetParam();
  const auto r1 = neighborhood_exchange(w, h, b, identity_payloads(w, h));
  const auto r2 = neighborhood_exchange(w, h, b, identity_payloads(w, h));
  EXPECT_EQ(r1.gathered, r2.gathered);
  EXPECT_EQ(r1.total_cycles(), r2.total_cycles());
}

INSTANTIATE_TEST_SUITE_P(
    Grids, ExchangeTest,
    ::testing::Values(GridCase{8, 1, 1}, GridCase{9, 1, 2}, GridCase{12, 1, 3},
                      GridCase{6, 6, 1}, GridCase{9, 9, 2}, GridCase{12, 10, 3},
                      GridCase{16, 16, 4}, GridCase{7, 5, 2},
                      GridCase{25, 3, 2}),
    [](const ::testing::TestParamInfo<GridCase>& info) {
      return "w" + std::to_string(info.param.width) + "h" +
             std::to_string(info.param.height) + "b" +
             std::to_string(info.param.b);
    });

TEST(Exchange, BZeroIsIdentity) {
  const auto p = identity_payloads(4, 4);
  const auto result = neighborhood_exchange(4, 4, 0, p);
  EXPECT_EQ(result.gathered, p);
  EXPECT_EQ(result.total_cycles(), 0u);
}

TEST(Exchange, MultiWordPayloadsStayContiguous) {
  // Payload of 3 words per core (the 12-byte position record of the paper)
  // must arrive as contiguous word triples.
  const int w = 10, h = 1, b = 2;
  std::vector<std::vector<std::uint32_t>> p(w);
  for (int i = 0; i < w; ++i) {
    p[static_cast<std::size_t>(i)] = {static_cast<std::uint32_t>(3 * i),
                                      static_cast<std::uint32_t>(3 * i + 1),
                                      static_cast<std::uint32_t>(3 * i + 2)};
  }
  const auto result = neighborhood_exchange(w, h, b, p);
  for (int x = 0; x < w; ++x) {
    const auto& g = result.gathered[static_cast<std::size_t>(x)];
    ASSERT_EQ(g.size() % 3, 0u);
    for (std::size_t k = 0; k < g.size(); k += 3) {
      EXPECT_EQ(g[k] % 3, 0u);
      EXPECT_EQ(g[k + 1], g[k] + 1);
      EXPECT_EQ(g[k + 2], g[k] + 2);
    }
  }
}

TEST(Exchange, HorizontalStageCyclesMatchClosedForm) {
  // Uniform single-word payloads on one row: the simulator's cycle count
  // must match the closed-form (b+1 phases of L+1 wavelets plus pipeline
  // drain).
  for (int b : {1, 2, 3}) {
    for (std::size_t L : {1u, 3u, 6u}) {
      const int w = 4 * (b + 1);
      Fabric fabric(w, 1, kNumExchangeVcs);
      configure_horizontal_roles(fabric, b);
      for (int x = 0; x < w; ++x) {
        std::vector<std::uint32_t> payload(L, static_cast<std::uint32_t>(x));
        fabric.queue_send(x, 0, kVcEast, payload,
                          {RouterCmd::Advance, RouterCmd::Reset}, true);
        fabric.queue_send(x, 0, kVcWest, payload,
                          {RouterCmd::Advance, RouterCmd::Reset}, false);
      }
      const std::uint64_t cycles = fabric.run_until_quiescent();
      EXPECT_EQ(cycles, expected_stage_cycles(b, L))
          << "b=" << b << " L=" << L;
      EXPECT_EQ(fabric.contention_events(), 0u);
    }
  }
}

TEST(Exchange, EveryColumnBecomesHeadExactlyOnce) {
  // After a full horizontal stage every core has sent: its payload must
  // appear in the tail-most receiver of its domain.
  const int w = 12, b = 2;
  const auto result = neighborhood_exchange(w, 1, b, identity_payloads(w, 1));
  for (int x = 0; x < w; ++x) {
    const int right = std::min(w - 1, x + b);
    const auto& g = result.gathered[static_cast<std::size_t>(right)];
    EXPECT_TRUE(std::find(g.begin(), g.end(),
                          static_cast<std::uint32_t>(x)) != g.end())
        << "payload " << x << " never reached column " << right;
  }
}

TEST(Exchange, VerticalStageCarriesAccumulatedRows) {
  // Interior cores of a 2-D exchange receive exactly (2b+1)^2 payload
  // words (1 word per source core).
  const int w = 11, h = 11, b = 2;
  const auto result = neighborhood_exchange(w, h, b, identity_payloads(w, h));
  const auto& center = result.gathered[5 * 11 + 5];
  EXPECT_EQ(center.size(), static_cast<std::size_t>((2 * b + 1) * (2 * b + 1)));
  // Vertical stage moves (2b+1)x more words per head than horizontal.
  EXPECT_GT(result.vertical_cycles, result.horizontal_cycles);
}

TEST(Exchange, RejectsMismatchedPayloadCount) {
  EXPECT_THROW(neighborhood_exchange(4, 4, 1, identity_payloads(4, 3)),
               Error);
}

TEST(Fabric, RejectsInvalidConfiguration) {
  EXPECT_THROW(Fabric(0, 4, 4), Error);
  EXPECT_THROW(Fabric(4, 4, 25), Error);  // > 24 VCs (paper Sec. IV-A)
  Fabric f(4, 4, 4);
  EXPECT_THROW(f.set_role(4, 0, 0, McastRole::Head, Port::East), Error);
  EXPECT_THROW(f.queue_send(0, 0, 7, {1}, {}), Error);
  f.queue_send(0, 0, 0, {1}, {});
  EXPECT_THROW(f.queue_send(0, 0, 0, {2}, {}), Error);  // double queue
}

TEST(Fabric, QuiescentAfterDrain) {
  Fabric f(6, 1, kNumExchangeVcs);
  configure_horizontal_roles(f, 1);
  EXPECT_TRUE(f.quiescent());
  f.queue_send(0, 0, kVcEast, {1, 2, 3}, {RouterCmd::Advance, RouterCmd::Reset});
  EXPECT_FALSE(f.quiescent());
  f.run_until_quiescent();
  EXPECT_TRUE(f.quiescent());
}

}  // namespace
}  // namespace wsmd::wse
