#include "tungsten/program.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/error.hpp"
#include "wse/multicast.hpp"

namespace wsmd::tungsten {
namespace {

using wse::RouterCmd;

/// The paper's Fig. 4c neighborhood-exchange program for one tile: two
/// serial send threads (one per direction channel) and the row receives.
TileProgram fig4c_horizontal_program(std::uint32_t atom_word, int b,
                                     int x, int width) {
  TileProgram prog;
  prog.thread()
      .send_vector(wse::kVcEast, {atom_word})
      .send_commands(wse::kVcEast, {RouterCmd::Advance, RouterCmd::Reset});
  prog.thread()
      .send_vector(wse::kVcWest, {atom_word})
      .send_commands(wse::kVcWest, {RouterCmd::Advance, RouterCmd::Reset});
  // row[0..b] <- lr[] ; row[b..2b] <- rl[] — clipped at the grid edge.
  const int left = std::max(0, x - b);
  const int right = std::min(width - 1, x + b);
  prog.thread().receive_into(wse::kVcEast, "row",
                             static_cast<std::size_t>(x - left + 1));
  prog.thread().receive_into(wse::kVcWest, "row",
                             static_cast<std::size_t>(right - x));
  return prog;
}

TEST(Tungsten, Fig4cHorizontalStageGathersRow) {
  const int width = 12, b = 2;
  Machine machine(width, 1, wse::kNumExchangeVcs);
  wse::configure_horizontal_roles(machine.fabric(), b);
  for (int x = 0; x < width; ++x) {
    machine.load(x, 0,
                 fig4c_horizontal_program(static_cast<std::uint32_t>(100 + x),
                                          b, x, width));
  }
  machine.run();

  for (int x = 0; x < width; ++x) {
    const auto& row = machine.buffer(x, 0, "row");
    std::set<std::uint32_t> got(row.begin(), row.end());
    std::set<std::uint32_t> expected;
    for (int nx = std::max(0, x - b); nx <= std::min(width - 1, x + b); ++nx) {
      expected.insert(static_cast<std::uint32_t>(100 + nx));
    }
    EXPECT_EQ(got, expected) << "tile " << x;
  }
  EXPECT_EQ(machine.fabric().contention_events(), 0u);
}

TEST(Tungsten, ThreadBuilderChainsOps) {
  TileProgram prog;
  prog.thread()
      .send_vector(0, {1, 2, 3})
      .send_commands(0, {RouterCmd::Advance})
      .receive_into(1, "buf", 4);
  ASSERT_EQ(prog.threads.size(), 1u);
  ASSERT_EQ(prog.threads[0].ops.size(), 3u);
  EXPECT_EQ(prog.threads[0].ops[0].kind, Op::Kind::SendVector);
  EXPECT_EQ(prog.threads[0].ops[1].kind, Op::Kind::SendCommandList);
  EXPECT_EQ(prog.threads[0].ops[2].kind, Op::Kind::ReceiveInto);
}

TEST(Tungsten, ReceiveCountMismatchThrows) {
  Machine machine(4, 1, wse::kNumExchangeVcs);
  wse::configure_horizontal_roles(machine.fabric(), 1);
  for (int x = 0; x < 4; ++x) {
    TileProgram prog;
    prog.thread()
        .send_vector(wse::kVcEast, {static_cast<std::uint32_t>(x)})
        .send_commands(wse::kVcEast, {RouterCmd::Advance, RouterCmd::Reset});
    prog.thread().receive_into(wse::kVcEast, "row", 99);  // wrong count
    machine.load(x, 0, std::move(prog));
  }
  EXPECT_THROW(machine.run(), Error);
}

TEST(Tungsten, DoubleSendOnOneChannelThrows) {
  Machine machine(2, 1, 4);
  TileProgram prog;
  prog.thread().send_vector(0, {1});
  prog.thread().send_vector(0, {2});
  machine.load(0, 0, std::move(prog));
  EXPECT_THROW(machine.run(), Error);
}

TEST(Tungsten, UnknownBufferThrows) {
  Machine machine(2, 1, 4);
  machine.load(0, 0, TileProgram{});
  machine.run();
  EXPECT_THROW(machine.buffer(0, 0, "nope"), Error);
  EXPECT_THROW(machine.buffer(1, 0, "row"), Error);  // no program loaded
}

}  // namespace
}  // namespace wsmd::tungsten
