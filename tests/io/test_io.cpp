/// \file test_io.cpp
/// The trajectory/thermo I/O layer: round-trip fidelity (what the writers
/// emit, the readers parse back bit-identically where the format allows)
/// and NaN/inf rejection — a non-finite value must never silently reach a
/// trajectory or golden file.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "io/thermo_log.hpp"
#include "io/trajectory.hpp"
#include "io/xyz.hpp"
#include "util/error.hpp"

namespace wsmd {
namespace {

lattice::Structure tiny_structure() {
  lattice::Structure s;
  s.box = Box({0, 0, 0}, {10, 10, 10});
  s.positions = {{1.0, 2.0, 3.0}, {4.5, 5.25, 6.125}, {7.0, 8.0, 9.0}};
  s.types = {0, 1, 0};
  return s;
}

TEST(Xyz, SingleFrameRoundTrip) {
  const auto s = tiny_structure();
  std::stringstream ss;
  io::write_xyz_frame(ss, s, {"Cu", "W"}, "test frame");
  const auto frames = io::read_xyz(ss);
  ASSERT_EQ(frames.size(), 1u);
  const auto& f = frames[0];
  ASSERT_EQ(f.size(), s.size());
  EXPECT_EQ(f.species[0], "Cu");
  EXPECT_EQ(f.species[1], "W");
  EXPECT_EQ(f.species[2], "Cu");
  for (std::size_t i = 0; i < s.size(); ++i) {
    // %10g precision: round-trip within 1e-9 relative.
    EXPECT_NEAR(f.positions[i].x, s.positions[i].x, 1e-8);
    EXPECT_NEAR(f.positions[i].y, s.positions[i].y, 1e-8);
    EXPECT_NEAR(f.positions[i].z, s.positions[i].z, 1e-8);
  }
  EXPECT_NE(f.comment.find("Lattice="), std::string::npos);
}

TEST(Xyz, RejectsNonFinitePositions) {
  auto s = tiny_structure();
  s.positions[1].y = std::numeric_limits<double>::quiet_NaN();
  std::stringstream ss;
  EXPECT_THROW(io::write_xyz_frame(ss, s, {"Cu", "W"}), Error);
  s.positions[1].y = std::numeric_limits<double>::infinity();
  EXPECT_THROW(io::write_xyz_frame(ss, s, {"Cu", "W"}), Error);
}

TEST(Xyz, RejectsUnnamedType) {
  const auto s = tiny_structure();  // types 0 and 1
  std::stringstream ss;
  EXPECT_THROW(io::write_xyz_frame(ss, s, {"Cu"}), Error);
}

TEST(Xyz, ReaderRejectsTruncatedFrame) {
  std::stringstream ss("3\ncomment\nCu 1 2 3\nCu 4 5 6\n");
  EXPECT_THROW(io::read_xyz(ss), Error);
}

TEST(Xyz, ReaderRejectsNonFiniteRow) {
  std::stringstream ss("1\ncomment\nCu nan 2 3\n");
  EXPECT_THROW(io::read_xyz(ss), Error);
}

TEST(Trajectory, MultiFrameRoundTrip) {
  const auto s = tiny_structure();
  const std::string path = ::testing::TempDir() + "wsmd_traj_test.xyz";
  {
    io::XyzTrajectoryWriter w(path, {"Cu", "W"});
    auto moving = s.positions;
    for (int frame = 0; frame < 4; ++frame) {
      w.append(s.box, moving, s.types, "step=" + std::to_string(frame));
      for (auto& r : moving) r.x += 0.25;
    }
    EXPECT_EQ(w.frames_written(), 4u);
  }
  const auto frames = io::read_xyz_file(path);
  ASSERT_EQ(frames.size(), 4u);
  for (int frame = 0; frame < 4; ++frame) {
    const auto& f = frames[static_cast<std::size_t>(frame)];
    ASSERT_EQ(f.size(), s.size());
    EXPECT_NEAR(f.positions[0].x, s.positions[0].x + 0.25 * frame, 1e-8);
    EXPECT_NE(f.comment.find("step=" + std::to_string(frame)),
              std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(Trajectory, AppendRejectsNaNWithoutTruncatingTheFile) {
  const auto s = tiny_structure();
  const std::string path = ::testing::TempDir() + "wsmd_traj_nan.xyz";
  io::XyzTrajectoryWriter w(path, {"Cu", "W"});
  w.append(s.box, s.positions, s.types);
  auto bad = s.positions;
  bad[0].z = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(w.append(s.box, bad, s.types), Error);
  EXPECT_EQ(w.frames_written(), 1u);
  // Validation happens before any bytes are emitted, so the earlier frame
  // stays readable — a NaN must not poison the trajectory file.
  const auto frames = io::read_xyz_file(path);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].size(), s.size());
  std::remove(path.c_str());
}

TEST(ThermoLog, CsvRoundTripIsExact) {
  std::stringstream ss;
  std::vector<io::ThermoSample> in;
  for (int k = 0; k < 5; ++k) {
    io::ThermoSample s;
    s.step = k * 10;
    s.potential_energy = -2720.182091791 + 0.137 * k;
    s.kinetic_energy = 32.3821242393 * (k + 1) / 5.0;
    s.total_energy = s.potential_energy + s.kinetic_energy;
    s.temperature = 289.9528916 + k;
    in.push_back(s);
  }
  {
    io::ThermoLogger log(ss, io::ThermoFormat::kCsv);
    for (const auto& s : in) log.write(s);
    EXPECT_EQ(log.samples_written(), in.size());
  }
  const auto out = io::read_thermo_csv(ss);
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t k = 0; k < in.size(); ++k) {
    // 17 significant digits: doubles round-trip bit-exactly.
    EXPECT_EQ(out[k].step, in[k].step);
    EXPECT_EQ(out[k].potential_energy, in[k].potential_energy);
    EXPECT_EQ(out[k].kinetic_energy, in[k].kinetic_energy);
    EXPECT_EQ(out[k].total_energy, in[k].total_energy);
    EXPECT_EQ(out[k].temperature, in[k].temperature);
  }
}

TEST(ThermoLog, RejectsNonFiniteSamples) {
  std::stringstream ss;
  io::ThermoLogger log(ss, io::ThermoFormat::kCsv);
  io::ThermoSample s;
  s.step = 1;
  s.potential_energy = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(log.write(s), Error);
  s.potential_energy = 0.0;
  s.temperature = -std::numeric_limits<double>::infinity();
  EXPECT_THROW(log.write(s), Error);
  s.temperature = 300.0;
  log.write(s);  // sane sample still accepted afterwards
  EXPECT_EQ(log.samples_written(), 1u);
}

TEST(ThermoLog, RejectsBackwardsSteps) {
  std::stringstream ss;
  io::ThermoLogger log(ss, io::ThermoFormat::kCsv);
  io::ThermoSample s;
  s.step = 10;
  log.write(s);
  s.step = 10;
  log.write(s);  // equal steps allowed (e.g. post-thermalize resample)
  s.step = 9;
  EXPECT_THROW(log.write(s), Error);
}

TEST(ThermoLog, JsonLinesEmitsOneObjectPerSample) {
  std::stringstream ss;
  {
    io::ThermoLogger log(ss, io::ThermoFormat::kJsonLines);
    io::ThermoSample s;
    s.step = 3;
    s.potential_energy = -1.5;
    s.total_energy = -1.25;
    s.kinetic_energy = 0.25;
    s.temperature = 12.5;
    log.write(s);
  }
  const std::string line = ss.str();
  EXPECT_NE(line.find("\"step\": 3"), std::string::npos);
  EXPECT_NE(line.find("\"temperature_K\": 12.5"), std::string::npos);
  EXPECT_EQ(line.find('\n'), line.size() - 1);  // exactly one line
}

TEST(ThermoLog, ReaderRejectsBadHeader) {
  std::stringstream ss("step,foo\n1,2\n");
  EXPECT_THROW(io::read_thermo_csv(ss), Error);
}

TEST(ThermoLog, ReaderRejectsMalformedRow) {
  std::stringstream ss(
      "step,potential_eV,kinetic_eV,total_eV,temperature_K\n"
      "abc,1,2,3,4\n");
  EXPECT_THROW(io::read_thermo_csv(ss), Error);
  // Trailing garbage must not silently truncate (e.g. a bad merge).
  std::stringstream ss2(
      "step,potential_eV,kinetic_eV,total_eV,temperature_K\n"
      "50abc,1,2,3,4\n");
  EXPECT_THROW(io::read_thermo_csv(ss2), Error);
  std::stringstream ss3(
      "step,potential_eV,kinetic_eV,total_eV,temperature_K\n"
      "50,-2720.18<<<,2,3,4\n");
  EXPECT_THROW(io::read_thermo_csv(ss3), Error);
}

TEST(Xyz, ReaderRejectsNegativeAtomCount) {
  std::stringstream ss("-3\ncomment\n");
  EXPECT_THROW(io::read_xyz(ss), Error);
}

TEST(ThermoLog, FormatNames) {
  EXPECT_EQ(io::thermo_format_from_name("csv"), io::ThermoFormat::kCsv);
  EXPECT_EQ(io::thermo_format_from_name("jsonl"),
            io::ThermoFormat::kJsonLines);
  EXPECT_THROW(io::thermo_format_from_name("xml"), Error);
}

}  // namespace
}  // namespace wsmd
