/// \file test_checkpoint.cpp
/// The checkpoint binary format (io/checkpoint): typed round-trips through
/// BinaryWriter/BinaryReader, full CheckpointData file round-trips (FP64
/// bit-exactness included), atomic write-then-rename, and the rejection
/// paths — bad magic, unsupported version, foreign endianness, truncation
/// at any point, and corrupt length prefixes must all fail with a clear
/// error instead of misreading state into a running simulation.

#include "io/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "util/error.hpp"

namespace wsmd::io {
namespace {

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "wsmd_ckpt_" + name;
}

CheckpointData sample_data() {
  CheckpointData d;
  d.element = "Cu";
  d.backend = "wafer-serial";
  d.box = Box({0, 0, 0}, {10, 12, 14}, {true, false, true});
  d.types = {0, 0, 0};
  d.deck = {{"name", "ckpt_test"}, {"element", "Cu"}, {"run", "10"}};
  d.engine.step = 17;
  d.engine.positions = {{1.0, 2.0, 3.0}, {0.1, 0.2, 0.3}, {4.5, 5.5, 6.5}};
  d.engine.velocities = {{0.25, -0.5, 0.75}, {1e-17, -1e300, 0.0}, {1, 2, 3}};
  d.engine.neighbor_anchor = d.engine.positions;
  d.engine.has_wafer = true;
  d.engine.potential_energy = -123.4567890123456789;
  d.engine.elapsed_seconds = 4.5e-6;
  d.engine.grid_width = 3;
  d.engine.grid_height = 2;
  d.engine.b = 2;
  d.engine.core_atoms = {0, -1, 2, 1, -1, -1};
  d.engine.initial_positions = d.engine.positions;
  d.stage_index = 2;
  d.stage_steps_done = 7;
  d.rng = {{11, 22, 33, 44}, true, 0.125};
  d.last_frame_step = 10;
  d.last_sample_step = 17;
  d.probes = {{"msd", std::string("\x00\x01\x02""binary", 9)},
              {"rdf", ""}};
  return d;
}

void expect_equal(const CheckpointData& a, const CheckpointData& b) {
  EXPECT_EQ(a.element, b.element);
  EXPECT_EQ(a.backend, b.backend);
  for (std::size_t ax = 0; ax < 3; ++ax) {
    EXPECT_EQ(a.box.lo[ax], b.box.lo[ax]);
    EXPECT_EQ(a.box.hi[ax], b.box.hi[ax]);
    EXPECT_EQ(a.box.periodic[ax], b.box.periodic[ax]);
  }
  EXPECT_EQ(a.types, b.types);
  EXPECT_EQ(a.deck, b.deck);
  EXPECT_EQ(a.engine.step, b.engine.step);
  ASSERT_EQ(a.engine.positions.size(), b.engine.positions.size());
  for (std::size_t i = 0; i < a.engine.positions.size(); ++i) {
    for (std::size_t ax = 0; ax < 3; ++ax) {
      // Bit-exact: checkpoints must not round FP64 state.
      EXPECT_EQ(a.engine.positions[i][ax], b.engine.positions[i][ax]);
      EXPECT_EQ(a.engine.velocities[i][ax], b.engine.velocities[i][ax]);
    }
  }
  EXPECT_EQ(a.engine.neighbor_anchor.size(), b.engine.neighbor_anchor.size());
  EXPECT_EQ(a.engine.has_wafer, b.engine.has_wafer);
  EXPECT_EQ(a.engine.potential_energy, b.engine.potential_energy);
  EXPECT_EQ(a.engine.elapsed_seconds, b.engine.elapsed_seconds);
  EXPECT_EQ(a.engine.grid_width, b.engine.grid_width);
  EXPECT_EQ(a.engine.grid_height, b.engine.grid_height);
  EXPECT_EQ(a.engine.b, b.engine.b);
  EXPECT_EQ(a.engine.core_atoms, b.engine.core_atoms);
  EXPECT_EQ(a.stage_index, b.stage_index);
  EXPECT_EQ(a.stage_steps_done, b.stage_steps_done);
  for (std::size_t k = 0; k < 4; ++k) EXPECT_EQ(a.rng.s[k], b.rng.s[k]);
  EXPECT_EQ(a.rng.has_spare, b.rng.has_spare);
  EXPECT_EQ(a.rng.spare, b.rng.spare);
  EXPECT_EQ(a.last_frame_step, b.last_frame_step);
  EXPECT_EQ(a.last_sample_step, b.last_sample_step);
  EXPECT_EQ(a.probes, b.probes);
}

TEST(BinaryRoundTrip, PrimitivesAndVectors) {
  std::ostringstream os(std::ios::binary);
  BinaryWriter w(os);
  w.u8(250);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  w.f64(-0.1);
  w.str("hello\0world");
  w.vec3s({{1.5, -2.5, 3.5}});
  w.longs({-1, 0, 7});
  w.ints({3, -4});
  w.f64s({1e-300, 2e300});

  std::istringstream is(os.str(), std::ios::binary);
  BinaryReader r(is, "test");
  EXPECT_EQ(r.u8(), 250);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.f64(), -0.1);
  EXPECT_EQ(r.str(), std::string("hello\0world"));
  const auto v3 = r.vec3s();
  ASSERT_EQ(v3.size(), 1u);
  EXPECT_EQ(v3[0].y, -2.5);
  EXPECT_EQ(r.longs(), (std::vector<long>{-1, 0, 7}));
  EXPECT_EQ(r.ints(), (std::vector<int>{3, -4}));
  EXPECT_EQ(r.f64s(), (std::vector<double>{1e-300, 2e300}));
}

TEST(BinaryRoundTrip, ReaderThrowsOnTruncation) {
  std::istringstream is(std::string("ab"), std::ios::binary);
  BinaryReader r(is, "short");
  EXPECT_THROW((void)r.u64(), wsmd::Error);
}

TEST(CheckpointFile, RoundTripsEveryField) {
  const auto path = tmp_path("roundtrip.ckpt");
  const auto original = sample_data();
  write_checkpoint_file(path, original);
  const auto restored = read_checkpoint_file(path);
  expect_equal(original, restored);
  // The atomic write leaves no temporary behind.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(CheckpointFile, RejectsBadMagic) {
  const auto path = tmp_path("magic.ckpt");
  std::ofstream(path, std::ios::binary) << "NOTACKPTxxxxxxxxxxxxxxxx";
  try {
    read_checkpoint_file(path);
    FAIL() << "bad magic accepted";
  } catch (const wsmd::Error& e) {
    EXPECT_NE(std::string(e.what()).find("bad magic"), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(CheckpointFile, RejectsVersionMismatch) {
  const auto path = tmp_path("version.ckpt");
  write_checkpoint_file(path, sample_data());
  // Patch the version field (bytes 8..11) to a future version.
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(8);
    const std::uint32_t future = kCheckpointVersion + 7;
    f.write(reinterpret_cast<const char*>(&future), sizeof future);
  }
  try {
    read_checkpoint_file(path);
    FAIL() << "future version accepted";
  } catch (const wsmd::Error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(CheckpointFile, RejectsForeignEndianness) {
  const auto path = tmp_path("endian.ckpt");
  write_checkpoint_file(path, sample_data());
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(12);  // endian tag follows magic + version
    const std::uint32_t swapped = 0x04030201u;
    f.write(reinterpret_cast<const char*>(&swapped), sizeof swapped);
  }
  try {
    read_checkpoint_file(path);
    FAIL() << "foreign endianness accepted";
  } catch (const wsmd::Error& e) {
    EXPECT_NE(std::string(e.what()).find("endian"), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(CheckpointFile, RejectsTruncationAtEveryPrefix) {
  std::ostringstream os(std::ios::binary);
  write_checkpoint(os, sample_data());
  const std::string full = os.str();
  // Chop the file at several depths, including one byte short of complete
  // (the end marker catches even that).
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{4}, std::size_t{20}, full.size() / 2,
        full.size() - 1}) {
    std::istringstream is(full.substr(0, keep), std::ios::binary);
    EXPECT_THROW(read_checkpoint(is, "truncated"), wsmd::Error)
        << "accepted a checkpoint truncated to " << keep << " bytes";
  }
}

TEST(CheckpointFile, RejectsCorruptLengthPrefix) {
  std::ostringstream os(std::ios::binary);
  write_checkpoint(os, sample_data());
  std::string bytes = os.str();
  // The element-string length prefix sits right after the 16-byte header;
  // blow it up to an absurd count.
  const std::uint64_t absurd = ~0ull;
  std::memcpy(bytes.data() + 16, &absurd, sizeof absurd);
  std::istringstream is(bytes, std::ios::binary);
  try {
    read_checkpoint(is, "corrupt");
    FAIL() << "corrupt length prefix accepted";
  } catch (const wsmd::Error& e) {
    EXPECT_NE(std::string(e.what()).find("corrupt"), std::string::npos)
        << e.what();
  }
}

TEST(CheckpointFile, MissingFileFailsWithPath) {
  try {
    read_checkpoint_file(tmp_path("does_not_exist.ckpt"));
    FAIL() << "missing file accepted";
  } catch (const wsmd::Error& e) {
    EXPECT_NE(std::string(e.what()).find("does_not_exist"),
              std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace wsmd::io
