/// \file test_series.cpp
/// Generic numeric series I/O (io/series): the observables' output channel.
/// Writer validation (schema, finiteness), CSV round-trip, and JSONL shape.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "io/series.hpp"
#include "util/error.hpp"

namespace wsmd::io {
namespace {

std::string tmp_file(const std::string& name) {
  return ::testing::TempDir() + "wsmd_series_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

TEST(Series, CsvRoundTripsRowsAndColumns) {
  const std::string path = tmp_file("rt.csv");
  {
    SeriesWriter w(path, ThermoFormat::kCsv, {"step", "time_ps", "value"});
    w.write_row({0, 0.0, 1.5});
    w.write_row({10, 0.02, -2.25});
    EXPECT_EQ(w.rows_written(), 2u);
  }
  const auto s = read_series_csv_file(path);
  ASSERT_EQ(s.columns, (std::vector<std::string>{"step", "time_ps", "value"}));
  ASSERT_EQ(s.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(s.rows[1][s.column_index("value")], -2.25);
  EXPECT_DOUBLE_EQ(s.rows[1][s.column_index("step")], 10.0);
  EXPECT_THROW(s.column_index("nope"), Error);
  std::remove(path.c_str());
}

TEST(Series, WriterRejectsBadSchemaAndNonFiniteValues) {
  const std::string path = tmp_file("bad.csv");
  EXPECT_THROW(SeriesWriter(path, ThermoFormat::kCsv, {}), Error);
  EXPECT_THROW(SeriesWriter(path, ThermoFormat::kCsv, {"a,b"}), Error);
  SeriesWriter w(path, ThermoFormat::kCsv, {"a", "b"});
  EXPECT_THROW(w.write_row({1.0}), Error);  // wrong arity
  EXPECT_THROW(w.write_row({1.0, std::numeric_limits<double>::quiet_NaN()}),
               Error);
  EXPECT_THROW(
      w.write_row({std::numeric_limits<double>::infinity(), 0.0}), Error);
  w.write_row({1.0, 2.0});  // writer stays usable after a rejected row
  EXPECT_EQ(w.rows_written(), 1u);
  std::remove(path.c_str());
}

TEST(Series, JsonlEmitsOneObjectPerRow) {
  const std::string path = tmp_file("rows.jsonl");
  {
    SeriesWriter w(path, ThermoFormat::kJsonLines, {"step", "msd_A2"});
    w.write_row({0, 0.0});
    w.write_row({5, 0.125});
  }
  const auto text = slurp(path);
  EXPECT_NE(text.find("{\"step\": 0, \"msd_A2\": 0}"), std::string::npos)
      << text;
  EXPECT_NE(text.find("\"msd_A2\": 0.125}"), std::string::npos) << text;
  std::remove(path.c_str());
}

// A full device (/dev/full) makes every flush fail with ENOSPC: the writer
// must warn and latch ok() == false instead of throwing or silently
// dropping the failure (the old behavior lost it in the destructor).
TEST(Series, FlushFailureSurfacedNotThrown) {
  std::ifstream probe("/dev/full");
  if (!probe.good()) GTEST_SKIP() << "/dev/full not available";
  SeriesWriter w("/dev/full", ThermoFormat::kCsv, {"a", "b"});
  for (int i = 0; i < 100000 && w.ok(); ++i) {
    w.write_row({static_cast<double>(i), 0.5});  // must never throw
    w.flush();
  }
  EXPECT_FALSE(w.ok());
  EXPECT_FALSE(w.finish());
  EXPECT_FALSE(w.finish());  // idempotent, still reports the failure
  // Later rows on a failed stream are dropped, not counted.
  const std::size_t rows = w.rows_written();
  w.write_row({1.0, 2.0});
  EXPECT_EQ(w.rows_written(), rows);
}

TEST(Series, ReaderRejectsMalformedFiles) {
  {
    std::istringstream empty("");
    EXPECT_THROW(read_series_csv(empty), Error);
  }
  {
    std::istringstream ragged("a,b\n1,2\n3\n");
    EXPECT_THROW(read_series_csv(ragged), Error);
  }
  {
    std::istringstream garbage("a,b\n1,x\n");
    EXPECT_THROW(read_series_csv(garbage), Error);
  }
  {
    std::istringstream nan_row("a,b\n1,nan\n");
    EXPECT_THROW(read_series_csv(nan_row), Error);
  }
}

}  // namespace
}  // namespace wsmd::io
