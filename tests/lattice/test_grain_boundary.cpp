#include "lattice/grain_boundary.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "eam/zhou.hpp"

namespace wsmd::lattice {
namespace {

GrainBoundaryParams small_params() {
  GrainBoundaryParams p;
  p.element = "W";
  p.tilt_angle_deg = 16.0;
  p.cells_x = 12;
  p.cells_y = 12;
  p.cells_z = 3;
  return p;
}

TEST(GrainBoundary, ProducesTwoGrains) {
  const auto gb = make_grain_boundary(small_params());
  EXPECT_GT(gb.grain_a_atoms, 100u);
  EXPECT_GT(gb.grain_b_atoms, 100u);
  EXPECT_EQ(gb.structure.size(), gb.grain_a_atoms + gb.grain_b_atoms);
}

TEST(GrainBoundary, GrainsSeparatedByBoundaryPlane) {
  const auto gb = make_grain_boundary(small_params());
  // All grain-A atoms below the plane (within a small tolerance), B above.
  for (std::size_t i = 0; i < gb.grain_a_atoms; ++i) {
    EXPECT_LE(gb.structure.positions[i].y, gb.boundary_y + 1e-6);
  }
  for (std::size_t i = gb.grain_a_atoms; i < gb.structure.size(); ++i) {
    EXPECT_GE(gb.structure.positions[i].y, gb.boundary_y - 1e-6);
  }
}

TEST(GrainBoundary, NoTooClosePairsAfterFusing) {
  const auto params = small_params();
  const auto gb = make_grain_boundary(params);
  const auto& s = gb.structure;
  const double re = eam::zhou_parameters("W").re;
  const double dmin = params.min_separation_frac * re;
  // Brute-force over the seam band only (|y - boundary| < 2*re).
  std::vector<std::size_t> band;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (std::fabs(s.positions[i].y - gb.boundary_y) < 2.0 * re) {
      band.push_back(i);
    }
  }
  ASSERT_GT(band.size(), 10u);
  for (std::size_t a = 0; a < band.size(); ++a) {
    for (std::size_t b = a + 1; b < band.size(); ++b) {
      const double d = norm(s.positions[band[a]] - s.positions[band[b]]);
      EXPECT_GE(d, dmin - 1e-9)
          << "atoms " << band[a] << "," << band[b] << " too close";
    }
  }
}

TEST(GrainBoundary, MisorientationIsPresent) {
  // A bicrystal at nonzero tilt must fuse at least a few seam atoms, and a
  // zero-tilt "bicrystal" must reproduce (nearly) the single crystal.
  auto p = small_params();
  const auto tilted = make_grain_boundary(p);
  EXPECT_GT(tilted.fused_atoms, 0u);

  p.tilt_angle_deg = 0.0;
  const auto straight = make_grain_boundary(p);
  // Zero tilt: the two half crystals join seamlessly (all seam sites fuse).
  const auto single = replicate(
      UnitCell::of("bcc", eam::zhou_parameters("W").lattice_constant()),
      p.cells_x, p.cells_y, p.cells_z);
  EXPECT_NEAR(static_cast<double>(straight.structure.size()),
              static_cast<double>(single.size()),
              0.05 * static_cast<double>(single.size()));
}

TEST(GrainBoundary, TargetAtomCountIsApproximatelyMet) {
  auto p = small_params();
  p.cells_z = 4;
  const auto gb = make_grain_boundary_with_atom_count(p, 20000);
  const double n = static_cast<double>(gb.structure.size());
  EXPECT_NEAR(n, 20000.0, 0.1 * 20000.0);
}

TEST(GrainBoundary, Fig9ScaleProblemBuilds) {
  // Paper Fig. 9: 61,600 W atoms (on 62,500 cores with 900 left empty).
  auto p = small_params();
  p.cells_z = 4;
  const auto gb = make_grain_boundary_with_atom_count(p, 61600);
  const double n = static_cast<double>(gb.structure.size());
  EXPECT_NEAR(n, 61600.0, 0.08 * 61600.0);
}

}  // namespace
}  // namespace wsmd::lattice
