#include "lattice/lattice.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "eam/zhou.hpp"
#include "util/error.hpp"

namespace wsmd::lattice {
namespace {

TEST(UnitCell, AtomCountsPerCell) {
  EXPECT_EQ(UnitCell::fcc(3.6).atoms_per_cell(), 4u);
  EXPECT_EQ(UnitCell::bcc(3.2).atoms_per_cell(), 2u);
  EXPECT_EQ(UnitCell::sc(3.0).atoms_per_cell(), 1u);
}

TEST(UnitCell, OfDispatchesByName) {
  EXPECT_EQ(UnitCell::of("fcc", 1.0).name, "fcc");
  EXPECT_EQ(UnitCell::of("bcc", 1.0).name, "bcc");
  EXPECT_THROW(UnitCell::of("hcp", 1.0), Error);
  EXPECT_THROW(UnitCell::fcc(-1.0), Error);
}

TEST(Replicate, AtomCountMatches) {
  const auto s = replicate(UnitCell::fcc(3.615), 3, 4, 5);
  EXPECT_EQ(s.size(), 3u * 4 * 5 * 4);
  EXPECT_EQ(s.types.size(), s.size());
}

TEST(Replicate, AllAtomsInsideBox) {
  const auto s = replicate(UnitCell::bcc(3.165), 4, 4, 4);
  for (const auto& r : s.positions) {
    EXPECT_TRUE(s.box.contains(r));
  }
}

TEST(Replicate, OpenPaddingExpandsBox) {
  const auto s = replicate(UnitCell::sc(2.0), 2, 2, 2, 0,
                           {false, false, false}, 7.0);
  EXPECT_DOUBLE_EQ(s.box.lo.x, -7.0);
  EXPECT_DOUBLE_EQ(s.box.hi.x, 2 * 2.0 + 7.0);
}

TEST(Replicate, PeriodicAxesNotPadded) {
  const auto s = replicate(UnitCell::sc(2.0), 3, 3, 3, 0, {true, true, false});
  EXPECT_DOUBLE_EQ(s.box.lo.x, 0.0);
  EXPECT_DOUBLE_EQ(s.box.hi.x, 6.0);
  EXPECT_LT(s.box.lo.z, 0.0);
}

TEST(Replicate, NearestNeighborDistances) {
  // FCC nearest neighbor = a/sqrt(2); BCC = a*sqrt(3)/2.
  const double a = 4.0;
  const auto fcc = replicate(UnitCell::fcc(a), 3, 3, 3);
  const auto bcc = replicate(UnitCell::bcc(a), 3, 3, 3);
  auto min_dist = [](const Structure& s) {
    double best = 1e30;
    for (std::size_t i = 0; i < std::min<std::size_t>(s.size(), 50); ++i) {
      for (std::size_t j = 0; j < s.size(); ++j) {
        if (i == j) continue;
        best = std::min(best, norm(s.positions[i] - s.positions[j]));
      }
    }
    return best;
  };
  EXPECT_NEAR(min_dist(fcc), a / std::sqrt(2.0), 1e-9);
  EXPECT_NEAR(min_dist(bcc), a * std::sqrt(3.0) / 2.0, 1e-9);
}

TEST(PaperSlab, ReplicationCountsMatchTableI) {
  int nx, ny, nz;
  paper_replication("Cu", nx, ny, nz);
  EXPECT_EQ(nx, 174);
  EXPECT_EQ(ny, 192);
  EXPECT_EQ(nz, 6);
  EXPECT_EQ(nx * ny * nz * 4, 801792);  // FCC: 4 atoms/cell

  paper_replication("Ta", nx, ny, nz);
  EXPECT_EQ(nx, 256);
  EXPECT_EQ(ny, 261);
  EXPECT_EQ(nz, 6);
  EXPECT_EQ(nx * ny * nz * 2, 801792);  // BCC: 2 atoms/cell

  EXPECT_THROW(paper_replication("Xx", nx, ny, nz), Error);
}

TEST(PaperSlab, ScaledSlabKeepsThickness) {
  const auto s = paper_slab("Ta", 16);
  // 256/16 = 16, 261/16 -> 17 cells; thickness stays 6 cells.
  EXPECT_EQ(s.size(), 16u * 17 * 6 * 2);
  // Slab: z extent much smaller than x/y.
  const Vec3d len = s.box.lengths();
  EXPECT_LT(len.z, len.x);
  EXPECT_LT(len.z, len.y);
}

TEST(PaperSlab, FullTantalumSlabHas801792Atoms) {
  const auto s = paper_slab("Ta", 1);
  EXPECT_EQ(s.size(), 801792u);
}

TEST(PaperSlab, SlabDimensionsMatchPaperScale) {
  // Paper: ~60nm x 60nm x 2nm for the W/Ta slabs.
  const auto s = paper_slab("W", 1);
  const Vec3d len = s.box.lengths();
  EXPECT_NEAR(len.x, 810.0, 30.0);   // 256 * 3.165 A ~ 81 nm... (see below)
  // The paper quotes ~60nm; 256 cells * 3.165 A = 810 A = 81 nm. The quoted
  // "60 nm" is approximate; we assert the actual generated extent.
  EXPECT_NEAR(len.z, 6 * 3.165, 25.0);
}

TEST(NeighborCounts, BulkCountsMatchPaperTableI) {
  // Use interior atoms of a periodic block to measure bulk neighbor counts
  // at the paper-workload cutoffs (Table VI ratios).
  struct Case { const char* el; int expected; int tol; };
  for (const auto& c : {Case{"Cu", 42, 0}, Case{"Ta", 14, 0}, Case{"W", 59, 1}}) {
    const eam::ZhouParams p = eam::zhou_parameters(c.el);
    const auto cell = UnitCell::of(p.structure, p.lattice_constant());
    const auto s = replicate(cell, 6, 6, 6, 0, {true, true, true});
    const int n = neighbor_count_within(s, s.size() / 2, p.paper_cutoff());
    EXPECT_NEAR(n, c.expected, c.tol) << c.el;
  }
}

TEST(NeighborCounts, MeanCountNearBulkForPeriodicCrystal) {
  const eam::ZhouParams p = eam::zhou_parameters("Ta");
  const auto cell = UnitCell::of(p.structure, p.lattice_constant());
  const auto s = replicate(cell, 8, 8, 8, 0, {true, true, true});
  const double mean = mean_neighbor_count(s, p.paper_cutoff(), 500);
  EXPECT_NEAR(mean, 14.0, 0.01);
}

TEST(NeighborCounts, SlabMeanBelowBulk) {
  // Open-boundary slab atoms near surfaces have fewer neighbors.
  const auto s = paper_slab("Ta", 32);
  const double mean =
      mean_neighbor_count(s, eam::zhou_parameters("Ta").paper_cutoff(), 2000);
  EXPECT_LT(mean, 14.0);
  EXPECT_GT(mean, 10.0);
}

}  // namespace
}  // namespace wsmd::lattice
