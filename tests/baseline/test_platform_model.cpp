#include "baseline/platform_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "perf/workload.hpp"
#include "util/error.hpp"

namespace wsmd::baseline {
namespace {

TEST(FrontierModel, BestRateMatchesTableI) {
  for (const char* el : {"Cu", "W", "Ta"}) {
    const FrontierModel m(el);
    const double target = perf::paper_workload(el).frontier_steps_per_s;
    EXPECT_NEAR(m.best_steps_per_second(), target, 0.02 * target) << el;
  }
}

TEST(FrontierModel, SingleNodeAlreadyNearTheLimit) {
  // Paper Sec. V-A: "For one Frontier node having eight GCDs, the
  // performance limit has been achieved".
  const FrontierModel m("Ta");
  const double best = m.best_steps_per_second();
  EXPECT_GT(m.steps_per_second(8.0), 0.90 * best);
}

TEST(FrontierModel, GentleDeclineBeyondSaturation) {
  const FrontierModel m("Cu");
  const double peak = m.best_steps_per_second();
  const double far = m.steps_per_second(1024.0);
  EXPECT_LT(far, peak);
  EXPECT_GT(far, 0.5 * peak);  // decline, not collapse (Fig. 7a shape)
}

TEST(FrontierModel, LaunchOverheadFloorsSmallCounts) {
  // One GCD is within ~2x of the saturated rate: kernel-launch overhead,
  // not compute, dominates at this problem size.
  const FrontierModel m("W");
  EXPECT_GT(m.steps_per_second(1.0),
            0.4 * m.best_steps_per_second());
}

TEST(QuartzModel, BestRateMatchesTableI) {
  for (const char* el : {"Cu", "W", "Ta"}) {
    const QuartzModel m(el);
    const double target = perf::paper_workload(el).quartz_steps_per_s;
    EXPECT_NEAR(m.best_steps_per_second(), target, 0.03 * target) << el;
  }
}

TEST(QuartzModel, ScalingStallsAt400Nodes) {
  // Paper Sec. V-A: "the scaling stalls at 400 dual-socket nodes".
  const QuartzModel m("Ta");
  const double at400 = m.steps_per_second(400.0);
  EXPECT_GT(at400, 0.98 * m.best_steps_per_second());
  EXPECT_LT(m.steps_per_second(1600.0), at400);
}

TEST(QuartzModel, NearLinearSpeedupBeforeTheWall) {
  const QuartzModel m("Cu");
  const double r1 = m.steps_per_second(1.0);
  const double r64 = m.steps_per_second(64.0);
  EXPECT_GT(r64, 40.0 * r1);  // >= ~60% parallel efficiency at 64 nodes
}

TEST(QuartzModel, CpusBeatGpusAtThisProblemSize) {
  // Paper: "CPUs (Quartz) are more effective than GPUs (Frontier)".
  for (const char* el : {"Cu", "W", "Ta"}) {
    EXPECT_GT(QuartzModel(el).best_steps_per_second(),
              FrontierModel(el).best_steps_per_second())
        << el;
  }
}

TEST(WsePoint, SpeedupsMatchTableI) {
  // 179x vs Frontier and 55x vs Quartz for Ta; 109x/34x Cu; 96x/26x W.
  struct Row { const char* el; double vs_gpu; double vs_cpu; };
  for (const Row& r : {Row{"Ta", 179.0, 55.0}, Row{"Cu", 109.0, 34.0},
                       Row{"W", 96.0, 26.0}}) {
    const ScalingPoint wse = wse_point(r.el);
    const double gpu = FrontierModel(r.el).best_steps_per_second();
    const double cpu = QuartzModel(r.el).best_steps_per_second();
    EXPECT_NEAR(wse.steps_per_second / gpu, r.vs_gpu, 0.05 * r.vs_gpu) << r.el;
    EXPECT_NEAR(wse.steps_per_second / cpu, r.vs_cpu, 0.05 * r.vs_cpu) << r.el;
  }
}

TEST(Energy, WseRoughly30xFrontierNodePerJoule) {
  // Paper Sec. V-A: "the WSE achieves roughly 30-fold more timesteps per
  // Joule" than a Frontier node with 8 GCDs.
  const FrontierModel gpu("Ta");
  const ScalingPoint node = gpu.at(8.0);
  const ScalingPoint wse = wse_point("Ta");
  const double ratio = wse.steps_per_joule / node.steps_per_joule;
  EXPECT_NEAR(ratio, 30.0, 8.0);
}

TEST(Energy, BestGpuEfficiencyAtOneGcd) {
  // Paper: "the data show the best GPU energy efficiency when using only
  // one of the eight GCDs on a single Frontier node."
  const FrontierModel gpu("Ta");
  const double one = gpu.at(1.0).steps_per_joule;
  for (double n : {2.0, 4.0, 8.0, 16.0, 64.0}) {
    EXPECT_GT(one, gpu.at(n).steps_per_joule) << n << " GCDs";
  }
}

TEST(Energy, WseParetoDominatesBothPlatforms) {
  // Fig. 7c: WSE leads on both steps/s and steps/Joule for every node
  // count of both platforms.
  for (const char* el : {"Cu", "W", "Ta"}) {
    const ScalingPoint wse = wse_point(el);
    for (const auto& p : FrontierModel(el).sweep()) {
      EXPECT_GT(wse.steps_per_second, p.steps_per_second);
      EXPECT_GT(wse.steps_per_joule, p.steps_per_joule);
    }
    for (const auto& p : QuartzModel(el).sweep()) {
      EXPECT_GT(wse.steps_per_second, p.steps_per_second);
      EXPECT_GT(wse.steps_per_joule, p.steps_per_joule);
    }
  }
}

TEST(Energy, CpuEfficiencyFallsWithScale) {
  // Paper: "As we add more nodes ... both timesteps per second and
  // timesteps per Joule decrease" past saturation — and efficiency falls
  // monotonically along the whole curve.
  const QuartzModel cpu("W");
  double prev = cpu.at(1.0).steps_per_joule;
  for (double n : {4.0, 16.0, 64.0, 256.0, 1024.0}) {
    const double e = cpu.at(n).steps_per_joule;
    EXPECT_LT(e, prev);
    prev = e;
  }
}

TEST(SmallSystem, LjReferencesPresent) {
  const auto refs = lj_1k_references();
  ASSERT_EQ(refs.size(), 3u);
  EXPECT_LT(refs[0].steps_per_second, 25001.0);
}

TEST(Models, RejectUnknownElementOrBadCounts) {
  EXPECT_THROW(FrontierModel("Xx"), Error);
  EXPECT_THROW(QuartzModel("Xx"), Error);
  const FrontierModel m("Ta");
  EXPECT_THROW(m.steps_per_second(0.5), Error);
}

}  // namespace
}  // namespace wsmd::baseline
