#include "eam/tabulated.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "eam/zhou.hpp"
#include "util/error.hpp"

namespace wsmd::eam {
namespace {

class TabulatedZhouTest : public ::testing::Test {
 protected:
  TabulatedZhouTest()
      : analytic_("Ta"),
        tabulated_(TabulatedEam::from_potential(analytic_, 4000, 4000)) {}
  ZhouEam analytic_;
  TabulatedEam tabulated_;
};

TEST_F(TabulatedZhouTest, MetadataPreserved) {
  EXPECT_EQ(tabulated_.num_types(), 1);
  EXPECT_EQ(tabulated_.type_name(0), "Ta");
  EXPECT_DOUBLE_EQ(tabulated_.mass(0), analytic_.mass(0));
  EXPECT_DOUBLE_EQ(tabulated_.cutoff(), analytic_.cutoff());
}

TEST_F(TabulatedZhouTest, PairValuesTrackAnalytic) {
  for (double r = 1.8; r < analytic_.cutoff(); r += 0.05) {
    EXPECT_NEAR(tabulated_.pair(0, 0, r), analytic_.pair(0, 0, r), 2e-5)
        << "r = " << r;
  }
}

TEST_F(TabulatedZhouTest, DensityValuesTrackAnalytic) {
  for (double r = 1.8; r < analytic_.cutoff(); r += 0.05) {
    EXPECT_NEAR(tabulated_.density(0, r), analytic_.density(0, r), 2e-5);
  }
}

TEST_F(TabulatedZhouTest, EmbeddingValuesTrackAnalytic) {
  const double rhoe = zhou_parameters("Ta").rhoe;
  for (double rho = 0.1 * rhoe; rho < 2.0 * rhoe; rho += 0.05 * rhoe) {
    EXPECT_NEAR(tabulated_.embed(0, rho), analytic_.embed(0, rho), 5e-4)
        << "rho = " << rho;
  }
}

TEST_F(TabulatedZhouTest, DerivativesTrackAnalytic) {
  for (double r = 2.0; r < analytic_.cutoff() - 0.05; r += 0.11) {
    EXPECT_NEAR(tabulated_.pair_deriv(0, 0, r), analytic_.pair_deriv(0, 0, r),
                5e-4);
    EXPECT_NEAR(tabulated_.density_deriv(0, r), analytic_.density_deriv(0, r),
                5e-4);
  }
}

TEST_F(TabulatedZhouTest, BeyondCutoffIsZero) {
  EXPECT_DOUBLE_EQ(tabulated_.pair(0, 0, tabulated_.cutoff() + 0.1), 0.0);
  EXPECT_DOUBLE_EQ(tabulated_.density(0, tabulated_.cutoff() + 0.1), 0.0);
}

TEST(TabulatedEam, TableBytesAccounting) {
  const ZhouEam ta("Ta");
  const auto tab = TabulatedEam::from_potential(ta, 500, 600);
  // 1 density table (500) + 1 embed table (600) + 1 pair table (500), FP32.
  EXPECT_EQ(tab.table_bytes_fp32(), (500 + 600 + 500) * sizeof(float));
}

TEST(TabulatedEam, PerCoreTablesFitIn48kSram) {
  // Paper Sec. III-A: each worker stores interpolation tables for rho, F,
  // and phi in its 48 kB tile SRAM alongside code and buffers. With the
  // resolution the WSE build uses (1k points per table) a single-species
  // table set must fit comfortably.
  const ZhouEam ta("Ta");
  const auto tab = TabulatedEam::from_potential(ta, 1000, 1000);
  EXPECT_LT(tab.table_bytes_fp32(), 16u * 1024u);
}

TEST(TabulatedEam, AlloyPairTablesSymmetric) {
  const ZhouEam alloy({zhou_parameters("Cu"), zhou_parameters("Ni")});
  const auto tab = TabulatedEam::from_potential(alloy, 800, 800);
  for (double r = 2.0; r < tab.cutoff(); r += 0.2) {
    EXPECT_DOUBLE_EQ(tab.pair(0, 1, r), tab.pair(1, 0, r));
  }
  EXPECT_EQ(tab.num_types(), 2);
}

TEST(TabulatedEam, RejectsTinyTables) {
  const ZhouEam ta("Ta");
  EXPECT_THROW(TabulatedEam::from_potential(ta, 4, 4), Error);
}

}  // namespace
}  // namespace wsmd::eam
