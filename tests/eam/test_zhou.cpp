#include "eam/zhou.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/error.hpp"
#include "util/vec3.hpp"

namespace wsmd::eam {
namespace {

/// Lattice sites of an infinite crystal within `rmax` of an atom at the
/// origin, generated independently of src/lattice as a cross-check.
std::vector<Vec3d> bulk_neighbors(const std::string& structure, double a,
                                  double rmax) {
  std::vector<Vec3d> basis;
  if (structure == "fcc") {
    basis = {{0, 0, 0}, {0.5, 0.5, 0}, {0.5, 0, 0.5}, {0, 0.5, 0.5}};
  } else if (structure == "bcc") {
    basis = {{0, 0, 0}, {0.5, 0.5, 0.5}};
  } else {
    throw Error("unknown structure");
  }
  const int span = static_cast<int>(std::ceil(rmax / a)) + 1;
  std::vector<Vec3d> out;
  for (int i = -span; i <= span; ++i) {
    for (int j = -span; j <= span; ++j) {
      for (int k = -span; k <= span; ++k) {
        for (const auto& b : basis) {
          const Vec3d r{(i + b.x) * a, (j + b.y) * a, (k + b.z) * a};
          const double n = norm(r);
          if (n > 1e-9 && n <= rmax) out.push_back(r);
        }
      }
    }
  }
  return out;
}

/// Energy per atom of the perfect infinite crystal at lattice constant a.
double bulk_energy_per_atom(const EamPotential& pot,
                            const std::string& structure, double a) {
  const auto nbrs = bulk_neighbors(structure, a, pot.cutoff());
  double pair_sum = 0.0, rho = 0.0;
  for (const auto& r : nbrs) {
    const double d = norm(r);
    pair_sum += pot.pair(0, 0, d);
    rho += pot.density(0, d);
  }
  return 0.5 * pair_sum + pot.embed(0, rho);
}

/// Minimize bulk energy over the lattice constant by golden-section search.
double optimal_lattice_constant(const EamPotential& pot,
                                const std::string& structure, double a_guess) {
  double lo = 0.90 * a_guess, hi = 1.10 * a_guess;
  const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double x1 = hi - phi * (hi - lo), x2 = lo + phi * (hi - lo);
  double f1 = bulk_energy_per_atom(pot, structure, x1);
  double f2 = bulk_energy_per_atom(pot, structure, x2);
  for (int it = 0; it < 60; ++it) {
    if (f1 < f2) {
      hi = x2; x2 = x1; f2 = f1;
      x1 = hi - phi * (hi - lo);
      f1 = bulk_energy_per_atom(pot, structure, x1);
    } else {
      lo = x1; x1 = x2; f1 = f2;
      x2 = lo + phi * (hi - lo);
      f2 = bulk_energy_per_atom(pot, structure, x2);
    }
  }
  return (lo + hi) / 2;
}

struct ElementCase {
  const char* name;
  const char* structure;
  double a0;      // published lattice constant (A)
  double ecoh;    // published cohesive energy (eV/atom)
};

class ZhouElementTest : public ::testing::TestWithParam<ElementCase> {};

TEST_P(ZhouElementTest, LatticeConstantMatchesPublishedValue) {
  const auto& c = GetParam();
  const ZhouEam pot(c.name);
  const double a_opt = optimal_lattice_constant(pot, c.structure, c.a0);
  // Parameter transcription + shift-force truncation tolerance: 1.5%.
  EXPECT_NEAR(a_opt, c.a0, 0.015 * c.a0)
      << c.name << ": optimal a = " << a_opt;
}

TEST_P(ZhouElementTest, CohesiveEnergyIsInPhysicalRange) {
  const auto& c = GetParam();
  const ZhouEam pot(c.name);
  const double a_opt = optimal_lattice_constant(pot, c.structure, c.a0);
  const double e = bulk_energy_per_atom(pot, c.structure, a_opt);
  // Cohesive energy = -e; the short default cutoffs shave a few percent
  // off the published values, so allow 12%.
  EXPECT_NEAR(-e, c.ecoh, 0.12 * c.ecoh) << c.name << ": E_coh = " << -e;
}

TEST_P(ZhouElementTest, CrystalIsStableAgainstUniformStrain) {
  const auto& c = GetParam();
  const ZhouEam pot(c.name);
  const double a_opt = optimal_lattice_constant(pot, c.structure, c.a0);
  const double e0 = bulk_energy_per_atom(pot, c.structure, a_opt);
  EXPECT_LT(e0, bulk_energy_per_atom(pot, c.structure, 0.97 * a_opt));
  EXPECT_LT(e0, bulk_energy_per_atom(pot, c.structure, 1.03 * a_opt));
}

TEST_P(ZhouElementTest, RadialFunctionsVanishAtCutoff) {
  const auto& c = GetParam();
  const ZhouEam pot(c.name);
  const double rc = pot.cutoff();
  EXPECT_DOUBLE_EQ(pot.pair(0, 0, rc), 0.0);
  EXPECT_DOUBLE_EQ(pot.density(0, rc), 0.0);
  EXPECT_DOUBLE_EQ(pot.pair_deriv(0, 0, rc), 0.0);
  EXPECT_DOUBLE_EQ(pot.density_deriv(0, rc), 0.0);
  // Shift-force truncation: approach to the cutoff is continuous.
  EXPECT_NEAR(pot.pair(0, 0, rc - 1e-6), 0.0, 1e-8);
  EXPECT_NEAR(pot.density(0, rc - 1e-6), 0.0, 1e-8);
}

TEST_P(ZhouElementTest, PairDerivativeMatchesFiniteDifference) {
  const auto& c = GetParam();
  const ZhouEam pot(c.name);
  const double h = 1e-6;
  for (double r = 0.6 * pot.cutoff(); r < pot.cutoff() - 0.1; r += 0.2) {
    const double fd = (pot.pair(0, 0, r + h) - pot.pair(0, 0, r - h)) / (2 * h);
    EXPECT_NEAR(pot.pair_deriv(0, 0, r), fd, 1e-5 * (1.0 + std::fabs(fd)));
  }
}

TEST_P(ZhouElementTest, DensityDerivativeMatchesFiniteDifference) {
  const auto& c = GetParam();
  const ZhouEam pot(c.name);
  const double h = 1e-6;
  for (double r = 0.6 * pot.cutoff(); r < pot.cutoff() - 0.1; r += 0.2) {
    const double fd =
        (pot.density(0, r + h) - pot.density(0, r - h)) / (2 * h);
    EXPECT_NEAR(pot.density_deriv(0, r), fd, 1e-5 * (1.0 + std::fabs(fd)));
  }
}

TEST_P(ZhouElementTest, EmbeddingDerivativeMatchesFiniteDifference) {
  const auto& c = GetParam();
  const ZhouEam pot(c.name);
  const double rhoe = zhou_parameters(c.name).rhoe;
  const double h = 1e-6 * rhoe;
  // Sample all three branches: below rho_n, between, above rho_0.
  for (double rho : {0.3 * rhoe, 0.84 * rhoe, 1.0 * rhoe, 1.1 * rhoe,
                     1.3 * rhoe, 2.0 * rhoe}) {
    const double fd =
        (pot.embed(0, rho + h) - pot.embed(0, rho - h)) / (2 * h);
    EXPECT_NEAR(pot.embed_deriv(0, rho), fd, 1e-4 * (1.0 + std::fabs(fd)))
        << "rho/rhoe = " << rho / rhoe;
  }
}

TEST_P(ZhouElementTest, EmbeddingBranchesAreNearlyContinuous) {
  const auto& c = GetParam();
  const ZhouEam pot(c.name);
  const double rhoe = zhou_parameters(c.name).rhoe;
  for (double rho_join : {0.85 * rhoe, 1.15 * rhoe}) {
    const double below = pot.embed(0, rho_join * (1 - 1e-9));
    const double above = pot.embed(0, rho_join * (1 + 1e-9));
    // Zhou's published coefficients make the branches meet to ~1e-2 eV.
    EXPECT_NEAR(below, above, 2e-2) << "rho join at " << rho_join / rhoe;
  }
}

TEST_P(ZhouElementTest, EmbeddingMinimumNearEquilibriumDensity) {
  const auto& c = GetParam();
  const ZhouEam pot(c.name);
  const double rhoe = zhou_parameters(c.name).rhoe;
  // F'(rhoe) = F1/rhoe = 0 by construction.
  EXPECT_NEAR(pot.embed_deriv(0, rhoe), 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Elements, ZhouElementTest,
    ::testing::Values(ElementCase{"Cu", "fcc", 3.615, 3.54},
                      ElementCase{"Ta", "bcc", 3.303, 8.10},
                      ElementCase{"W", "bcc", 3.165, 8.90},
                      ElementCase{"Mo", "bcc", 3.147, 6.82},
                      ElementCase{"Ni", "fcc", 3.520, 4.45},
                      ElementCase{"Ag", "fcc", 4.085, 2.85},
                      ElementCase{"Au", "fcc", 4.078, 3.93},
                      ElementCase{"Al", "fcc", 4.050, 3.36}),
    [](const ::testing::TestParamInfo<ElementCase>& info) {
      return std::string(info.param.name);
    });

TEST(ZhouEam, PaperInteractionCountsAtPaperCutoffs) {
  // Paper Table I: interactions per atom in the bulk crystal, at the
  // cutoffs of the potentials the paper benchmarked (Table VI ratios).
  struct Row { const char* el; const char* st; double a0; int expected; int tol; };
  for (const Row& row : {Row{"Cu", "fcc", 3.615, 42, 0},
                         Row{"Ta", "bcc", 3.303, 14, 0},
                         Row{"W", "bcc", 3.165, 59, 1}}) {
    const double rc = zhou_parameters(row.el).paper_cutoff();
    const ZhouEam pot(row.el, rc);
    const auto nbrs = bulk_neighbors(row.st, row.a0, pot.cutoff());
    EXPECT_NEAR(static_cast<double>(nbrs.size()), row.expected, row.tol)
        << row.el << " with rcut=" << pot.cutoff();
  }
}

TEST(ZhouEam, ShortTaWorkloadCutoffStillGivesStableCrystal) {
  // The paper-workload Ta potential (rcut = 1.39 r_nn, mirroring Li-Ta's
  // short range) binds less than the physics cutoff but must still hold a
  // BCC crystal together for benchmarking.
  const ZhouEam ta("Ta", zhou_parameters("Ta").paper_cutoff());
  const double a_opt = optimal_lattice_constant(ta, "bcc", 3.303);
  const double e0 = bulk_energy_per_atom(ta, "bcc", a_opt);
  EXPECT_LT(e0, -3.0);  // bound
  EXPECT_LT(e0, bulk_energy_per_atom(ta, "bcc", 0.97 * a_opt));
  EXPECT_LT(e0, bulk_energy_per_atom(ta, "bcc", 1.03 * a_opt));
}

TEST(ZhouEam, UnknownElementThrows) {
  EXPECT_THROW(ZhouEam("Unobtanium"), Error);
  EXPECT_THROW(zhou_parameters("Xx"), Error);
}

TEST(ZhouEam, AvailableElementsListIsConsistent) {
  const auto names = zhou_available_elements();
  EXPECT_GE(names.size(), 9u);
  for (const auto& n : names) {
    const ZhouEam pot(n);
    EXPECT_EQ(pot.type_name(0), n);
    EXPECT_GT(pot.mass(0), 0.0);
    EXPECT_GT(pot.cutoff(), 0.0);
  }
}

TEST(ZhouEam, AlloyPairIsSymmetric) {
  const ZhouEam pot({zhou_parameters("Cu"), zhou_parameters("Ni")});
  for (double r = 2.0; r < pot.cutoff(); r += 0.3) {
    EXPECT_DOUBLE_EQ(pot.pair(0, 1, r), pot.pair(1, 0, r));
    EXPECT_DOUBLE_EQ(pot.pair_deriv(0, 1, r), pot.pair_deriv(1, 0, r));
  }
}

TEST(ZhouEam, AlloyPairDerivativeMatchesFiniteDifference) {
  const ZhouEam pot({zhou_parameters("Ta"), zhou_parameters("W")});
  const double h = 1e-6;
  for (double r = 2.2; r < pot.cutoff() - 0.2; r += 0.25) {
    const double fd = (pot.pair(0, 1, r + h) - pot.pair(0, 1, r - h)) / (2 * h);
    EXPECT_NEAR(pot.pair_deriv(0, 1, r), fd, 1e-5 * (1.0 + std::fabs(fd)));
  }
}

TEST(ZhouEam, StructurePreferenceMatchesGroundState) {
  // Cu prefers FCC; W and Ta prefer BCC. Compare the optimal-lattice bulk
  // energies of both structures under each potential.
  {
    const ZhouEam cu("Cu");
    const double e_fcc = bulk_energy_per_atom(
        cu, "fcc", optimal_lattice_constant(cu, "fcc", 3.615));
    const double e_bcc = bulk_energy_per_atom(
        cu, "bcc", optimal_lattice_constant(cu, "bcc", 2.87));
    EXPECT_LT(e_fcc, e_bcc);
  }
  {
    const ZhouEam w("W");
    const double e_bcc = bulk_energy_per_atom(
        w, "bcc", optimal_lattice_constant(w, "bcc", 3.165));
    const double e_fcc = bulk_energy_per_atom(
        w, "fcc", optimal_lattice_constant(w, "fcc", 4.0));
    EXPECT_LT(e_bcc, e_fcc);
  }
}

TEST(ZhouParams, LatticeConstantFromRe) {
  EXPECT_NEAR(zhou_parameters("Cu").lattice_constant(), 3.615, 0.01);
  EXPECT_NEAR(zhou_parameters("Ta").lattice_constant(), 3.303, 0.01);
  EXPECT_NEAR(zhou_parameters("W").lattice_constant(), 3.165, 0.01);
}

TEST(ZhouParams, PaperCutoffsMatchTableViRatios) {
  // Paper Table VI: rcut / r_nn = 1.94 (Cu), 2.02 (W), 1.39 (Ta).
  EXPECT_NEAR(zhou_parameters("Cu").paper_cutoff() /
                  zhou_parameters("Cu").re, 1.94, 1e-9);
  EXPECT_NEAR(zhou_parameters("W").paper_cutoff() /
                  zhou_parameters("W").re, 2.02, 1e-9);
  EXPECT_NEAR(zhou_parameters("Ta").paper_cutoff() /
                  zhou_parameters("Ta").re, 1.39, 1e-9);
}

TEST(ZhouParams, PhysicsCutoffAtLeastPaperCutoff) {
  for (const auto& el : {"Cu", "Ta", "W"}) {
    const auto p = zhou_parameters(el);
    EXPECT_GE(p.default_cutoff() + 1e-12, p.paper_cutoff()) << el;
  }
}

}  // namespace
}  // namespace wsmd::eam
