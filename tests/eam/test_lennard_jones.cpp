#include "eam/lennard_jones.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace wsmd::eam {
namespace {

TEST(LennardJones, IsPairwiseOnly) {
  const auto lj = LennardJones::copper_like();
  EXPECT_TRUE(lj.is_pairwise_only());
  EXPECT_DOUBLE_EQ(lj.density(0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(lj.embed(0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(lj.embed_deriv(0, 5.0), 0.0);
}

TEST(LennardJones, MinimumNearTwoToTheOneSixthSigma) {
  const LennardJones lj({"X", 1.0, 1.0, 1.0}, 4.0);
  const double r_min = std::pow(2.0, 1.0 / 6.0);
  // Shift-force truncation moves the minimum slightly; locate it numerically.
  double best_r = 0.0, best_e = 1e30;
  for (double r = 0.9; r < 2.0; r += 1e-4) {
    const double e = lj.pair(0, 0, r);
    if (e < best_e) {
      best_e = e;
      best_r = r;
    }
  }
  EXPECT_NEAR(best_r, r_min, 0.02);
  EXPECT_NEAR(best_e, -1.0, 0.05);  // well depth ~ epsilon
}

TEST(LennardJones, VanishesAtCutoff) {
  const auto lj = LennardJones::copper_like();
  const double rc = lj.cutoff();
  EXPECT_DOUBLE_EQ(lj.pair(0, 0, rc), 0.0);
  EXPECT_DOUBLE_EQ(lj.pair(0, 0, rc + 1.0), 0.0);
  EXPECT_DOUBLE_EQ(lj.pair_deriv(0, 0, rc), 0.0);
  EXPECT_NEAR(lj.pair(0, 0, rc - 1e-7), 0.0, 1e-10);
}

TEST(LennardJones, DefaultCutoffIs2p5Sigma) {
  const LennardJones lj({"X", 1.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(lj.cutoff(), 5.0);
}

TEST(LennardJones, DerivativeMatchesFiniteDifference) {
  const auto lj = LennardJones::copper_like();
  const double h = 1e-7;
  for (double r = 2.0; r < lj.cutoff() - 0.1; r += 0.17) {
    const double fd = (lj.pair(0, 0, r + h) - lj.pair(0, 0, r - h)) / (2 * h);
    EXPECT_NEAR(lj.pair_deriv(0, 0, r), fd, 1e-4 * (1.0 + std::fabs(fd)));
  }
}

TEST(LennardJones, LorentzBerthelotMixing) {
  const LennardJones lj({{"A", 1.0, 0.04, 2.0}, {"B", 2.0, 0.16, 4.0}}, 12.0);
  // Mixed minimum at 2^(1/6) * sigma_ab with sigma_ab = 3.0.
  double best_r = 0.0, best_e = 1e30;
  for (double r = 2.5; r < 5.0; r += 1e-4) {
    const double e = lj.pair(0, 1, r);
    if (e < best_e) {
      best_e = e;
      best_r = r;
    }
  }
  EXPECT_NEAR(best_r, std::pow(2.0, 1.0 / 6.0) * 3.0, 0.05);
  // eps_ab = sqrt(0.04*0.16) = 0.08.
  EXPECT_NEAR(best_e, -0.08, 0.01);
  EXPECT_DOUBLE_EQ(lj.pair(0, 1, 3.5), lj.pair(1, 0, 3.5));
}

TEST(LennardJones, RejectsInvalidSpecies) {
  EXPECT_THROW(LennardJones({"bad", -1.0, 1.0, 1.0}), Error);
  EXPECT_THROW(LennardJones({"bad", 1.0, 0.0, 1.0}), Error);
  EXPECT_THROW(LennardJones(std::vector<LennardJones::Species>{}, 1.0), Error);
}

TEST(LennardJones, TypeMetadata) {
  const auto lj = LennardJones::copper_like();
  EXPECT_EQ(lj.num_types(), 1);
  EXPECT_EQ(lj.type_name(0), "Cu");
  EXPECT_NEAR(lj.mass(0), 63.546, 1e-6);
  EXPECT_THROW(lj.type_name(1), Error);
}

}  // namespace
}  // namespace wsmd::eam
