/// \file test_profile.cpp
/// PotentialProfile (flattened r²-indexed tables): accuracy against the
/// analytic Zhou functions over the full radial grid, exact node
/// reproduction (setfl inputs pass through undistorted at knots), FP32
/// widening of the FP64 tables, the pair-only LJ special case, and the
/// per-core table memory accounting.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "eam/lennard_jones.hpp"
#include "eam/profile.hpp"
#include "eam/setfl.hpp"
#include "eam/tabulated.hpp"
#include "eam/zhou.hpp"

namespace wsmd::eam {
namespace {

class ProfileAccuracy : public ::testing::TestWithParam<const char*> {};

/// Cross-path accuracy: the profile evaluated over a dense r grid must
/// track the analytic Zhou functions to far below any physical force or
/// energy scale. Bounds are ~10x the observed interpolation error at the
/// default resolution — tight enough that a mis-indexed segment, a
/// dropped 1/r, or a coarse grid all fail loudly.
TEST_P(ProfileAccuracy, Fp64TracksAnalyticZhouOverTheFullGrid) {
  const std::string el = GetParam();
  const auto p = zhou_parameters(el);
  const ZhouEam pot(el, p.paper_cutoff());
  const ProfileF64 prof(pot);

  const double rc = pot.cutoff();
  // Max |Δ| of each tabulated function over a dense sweep of [r_lo, rc).
  const auto sweep = [&](double r_lo, double& de, double& df, double& drho,
                         double& dfr) {
    de = df = drho = dfr = 0.0;
    const int n = 20000;
    for (int k = 0; k <= n; ++k) {
      const double r = r_lo + (rc - 1e-9 - r_lo) * k / n;
      const double r2 = r * r;
      double phi, phi_force;
      prof.pair(0, 0, r2, phi, phi_force);
      de = std::max(de, std::fabs(phi - pot.pair(0, 0, r)));
      df = std::max(df, std::fabs(phi_force - pot.pair_deriv(0, 0, r) / r));
      drho = std::max(drho,
                      std::fabs(prof.density(0, r2) - pot.density(0, r)));
      dfr = std::max(
          dfr,
          std::fabs(prof.density_force(0, r2) - pot.density_deriv(0, r) / r));
    }
  };
  // Thermal range (r >= 0.7 r_e — hotter than anything the scenarios
  // reach): errors must sit orders of magnitude below FP32 state noise
  // and any physical force scale (observed <= 4e-5 at the default grid).
  double de, df, drho, dfr;
  sweep(0.7 * p.re, de, df, drho, dfr);
  EXPECT_LT(de, 5e-5) << el;
  EXPECT_LT(df, 1e-4) << el;
  EXPECT_LT(drho, 2e-5) << el;
  EXPECT_LT(dfr, 3e-5) << el;
  // Extended range, deep into the repulsive wall (0.5 r_e): the uniform
  // r² grid is coarsest in r here; the error may grow but must stay
  // bounded (a collision this deep carries ~10 eV of pair energy).
  sweep(0.5 * p.re, de, df, drho, dfr);
  EXPECT_LT(de, 1e-3) << el;
  EXPECT_LT(df, 4e-3) << el;

  // Embedding over the full tabulated rho range (the observed worst case
  // is the curvature mismatch where the mid branch meets the u^eta
  // branch: ~7e-4 eV for W).
  double max_dF = 0.0, max_dFp = 0.0;
  for (int k = 0; k <= 20000; ++k) {
    const double rho = prof.rho_max() * k / 20000;
    double F, Fp;
    prof.embed(0, rho, F, Fp);
    max_dF = std::max(max_dF, std::fabs(F - pot.embed(0, rho)));
    max_dFp = std::max(max_dFp, std::fabs(Fp - pot.embed_deriv(0, rho)));
  }
  EXPECT_LT(max_dF, 2e-3) << el;
  EXPECT_LT(max_dFp, 1e-3) << el;
}

INSTANTIATE_TEST_SUITE_P(Elements, ProfileAccuracy,
                         ::testing::Values("Cu", "W", "Ta"),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           return std::string(i.param);
                         });

TEST(Profile, NodesReproduceTheSourceExactly) {
  // Linear interpolation evaluates to the stored sample at every grid
  // node, and the stored samples are exact (double) evaluations of the
  // source — so the profile cannot distort a potential at its own knots.
  const ZhouEam pot("Ta", zhou_parameters("Ta").paper_cutoff());
  const ProfileF64 prof(pot);
  for (std::size_t k = 0; k <= prof.r2_segments(); k += 97) {
    const double r = prof.node_radius(k);
    EXPECT_EQ(prof.pair_node(0, 0, k), pot.pair(0, 0, r)) << k;
    EXPECT_EQ(prof.pair_force_node(0, 0, k), pot.pair_deriv(0, 0, r) / r)
        << k;
    EXPECT_EQ(prof.density_node(0, k), pot.density(0, r)) << k;
    EXPECT_EQ(prof.density_force_node(0, k), pot.density_deriv(0, r) / r)
        << k;
  }
}

TEST(Profile, SetflInputPassesThroughUndistortedAtKnots) {
  // A setfl-tabulated potential (the paper's distribution format) rides
  // the same guarantee: profile nodes reproduce the spline-tabulated
  // input bitwise. Round-trip Zhou-W through the setfl writer/reader to
  // get a genuine file-born TabulatedEam.
  const ZhouEam w("W", zhou_parameters("W").paper_cutoff());
  std::stringstream file;
  write_setfl(w, file, /*nrho=*/1500, /*nr=*/1500);
  const TabulatedEam tab = read_setfl(file);
  const ProfileF64 prof(tab);
  ASSERT_EQ(prof.num_types(), 1);
  ASSERT_DOUBLE_EQ(prof.cutoff(), tab.cutoff());
  for (std::size_t k = 1; k <= prof.r2_segments(); k += 61) {
    const double r = prof.node_radius(k);
    EXPECT_EQ(prof.pair_node(0, 0, k), tab.pair(0, 0, r)) << k;
    EXPECT_EQ(prof.density_node(0, k), tab.density(0, r)) << k;
    EXPECT_EQ(prof.pair_force_node(0, 0, k), tab.pair_deriv(0, 0, r) / r)
        << k;
  }
}

TEST(Profile, Fp32TablesAreWidenedFp64Samples) {
  // The wafer profile is the same table rounded once to FP32 — node k of
  // the FP32 build equals the FP64 node cast to float (one rounding, not
  // an accumulation of FP32 arithmetic).
  const ZhouEam pot("Cu", zhou_parameters("Cu").paper_cutoff());
  const ProfileF64 f64(pot);
  const ProfileF32 f32(pot);
  ASSERT_EQ(f64.r2_segments(), f32.r2_segments());
  for (std::size_t k = 0; k <= f64.r2_segments(); k += 101) {
    EXPECT_EQ(f32.pair_node(0, 0, k),
              static_cast<float>(f64.pair_node(0, 0, k)))
        << k;
    EXPECT_EQ(f32.density_node(0, k),
              static_cast<float>(f64.density_node(0, k)))
        << k;
    EXPECT_EQ(f32.pair_force_node(0, 0, k),
              static_cast<float>(f64.pair_force_node(0, 0, k)))
        << k;
  }
  // And FP32 evaluation stays within FP32 noise of the FP64 path.
  const float rc2 = f32.cutoff_sq();
  for (int k = 1; k < 1000; ++k) {
    const float r2 = rc2 * static_cast<float>(k) / 1000.0f * 0.999f;
    float phi32, pf32;
    f32.pair(0, 0, r2, phi32, pf32);
    double phi64, pf64;
    f64.pair(0, 0, static_cast<double>(r2), phi64, pf64);
    EXPECT_NEAR(phi32, phi64, 2e-5 * std::max(1.0, std::fabs(phi64))) << k;
  }
}

TEST(Profile, PairOnlyLjSkipsDensityAndEmbedding) {
  const LennardJones lj = LennardJones::for_element("Ar");
  const ProfileF64 prof(lj);
  EXPECT_TRUE(prof.pairwise_only());
  // Zero density everywhere, zero embedding at any rho.
  for (std::size_t k = 0; k <= prof.r2_segments(); k += 211) {
    EXPECT_EQ(prof.density_node(0, k), 0.0);
    EXPECT_EQ(prof.density_force_node(0, k), 0.0);
  }
  double F = 1.0, Fp = 1.0;
  prof.embed(0, 0.5, F, Fp);
  EXPECT_EQ(F, 0.0);
  EXPECT_EQ(Fp, 0.0);
  // The pair table still tracks the analytic LJ through the well.
  const double sigma = lj_parameters("Ar").sigma;
  double max_de = 0.0;
  for (int k = 0; k <= 10000; ++k) {
    const double r = 0.8 * sigma + (lj.cutoff() - 1e-9 - 0.8 * sigma) * k / 10000;
    double phi, pf;
    prof.pair(0, 0, r * r, phi, pf);
    max_de = std::max(max_de, std::fabs(phi - lj.pair(0, 0, r)));
  }
  EXPECT_LT(max_de, 2e-5);
}

TEST(Profile, CoarseFp32TablesFitTheTileSram) {
  // Paper Sec. III-A: a worker holds its table copies in 48 kB of SRAM.
  // The machine-realistic resolution (512 segments) fits with room for
  // the atom state; the host default trades that budget for fidelity.
  const ZhouEam pot("Cu", zhou_parameters("Cu").paper_cutoff());
  ProfileConfig coarse;
  coarse.nr = 512;
  coarse.nrho = 512;
  const ProfileF32 prof(pot, coarse);
  EXPECT_LE(prof.table_bytes(), 48u * 1024u);
  const ProfileF32 fine(pot);
  EXPECT_GT(fine.table_bytes(), prof.table_bytes());
}

}  // namespace
}  // namespace wsmd::eam
