#include "eam/setfl.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "eam/lennard_jones.hpp"
#include "eam/zhou.hpp"
#include "util/error.hpp"

namespace wsmd::eam {
namespace {

TEST(Setfl, RoundTripPreservesHeader) {
  const ZhouEam w("W");
  std::stringstream ss;
  write_setfl(w, ss, 500, 500);
  const TabulatedEam back = read_setfl(ss);
  EXPECT_EQ(back.num_types(), 1);
  EXPECT_EQ(back.type_name(0), "W");
  EXPECT_NEAR(back.mass(0), w.mass(0), 1e-9);
  EXPECT_NEAR(back.cutoff(), w.cutoff(), 1e-9);
}

TEST(Setfl, RoundTripPreservesPairFunction) {
  const ZhouEam ta("Ta");
  std::stringstream ss;
  write_setfl(ta, ss, 2000, 2000);
  const TabulatedEam back = read_setfl(ss);
  for (double r = 2.0; r < ta.cutoff() - 0.05; r += 0.07) {
    EXPECT_NEAR(back.pair(0, 0, r), ta.pair(0, 0, r), 1e-4) << "r = " << r;
  }
}

TEST(Setfl, RoundTripPreservesDensityAndEmbedding) {
  const ZhouEam cu("Cu");
  std::stringstream ss;
  write_setfl(cu, ss, 2000, 2000);
  const TabulatedEam back = read_setfl(ss);
  for (double r = 2.0; r < cu.cutoff() - 0.05; r += 0.07) {
    EXPECT_NEAR(back.density(0, r), cu.density(0, r), 1e-4);
  }
  const double rhoe = zhou_parameters("Cu").rhoe;
  for (double rho = 0.2 * rhoe; rho < 1.8 * rhoe; rho += 0.1 * rhoe) {
    EXPECT_NEAR(back.embed(0, rho), cu.embed(0, rho), 5e-3);
  }
}

TEST(Setfl, RoundTripAlloy) {
  const ZhouEam alloy({zhou_parameters("Cu"), zhou_parameters("Ta")});
  std::stringstream ss;
  write_setfl(alloy, ss, 1000, 1000);
  const TabulatedEam back = read_setfl(ss);
  ASSERT_EQ(back.num_types(), 2);
  EXPECT_EQ(back.type_name(0), "Cu");
  EXPECT_EQ(back.type_name(1), "Ta");
  for (double r = 2.2; r < alloy.cutoff() - 0.1; r += 0.13) {
    EXPECT_NEAR(back.pair(0, 1, r), alloy.pair(0, 1, r), 5e-4) << "r=" << r;
    EXPECT_NEAR(back.pair(1, 0, r), back.pair(0, 1, r), 1e-12);
  }
}

TEST(Setfl, FileRoundTrip) {
  const ZhouEam w("W");
  const std::string path = ::testing::TempDir() + "/wsmd_test_W.eam.alloy";
  write_setfl_file(w, path, 300, 300, 0.0, "unit test");
  const TabulatedEam back = read_setfl_file(path);
  EXPECT_EQ(back.type_name(0), "W");
}

TEST(Setfl, ReaderRejectsTruncatedFile) {
  const ZhouEam w("W");
  std::stringstream ss;
  write_setfl(w, ss, 300, 300);
  std::string text = ss.str();
  text.resize(text.size() / 2);
  std::stringstream truncated(text);
  EXPECT_THROW(read_setfl(truncated), Error);
}

TEST(Setfl, ReaderRejectsGarbage) {
  std::stringstream ss("c1\nc2\nc3\nnot_a_number W\n");
  EXPECT_THROW(read_setfl(ss), Error);
}

TEST(Setfl, ReaderRejectsMissingFile) {
  EXPECT_THROW(read_setfl_file("/nonexistent/potential.eam.alloy"), Error);
}

TEST(Setfl, WriterHandlesPairwiseOnlyPotentials) {
  // LJ exports with zero density/embedding blocks; reading it back gives a
  // potential with the same pair function.
  const auto lj = LennardJones::copper_like();
  std::stringstream ss;
  write_setfl(lj, ss, 300, 300, /*rho_max=*/1.0);
  const TabulatedEam back = read_setfl(ss);
  for (double r = 2.5; r < lj.cutoff() - 0.1; r += 0.11) {
    EXPECT_NEAR(back.pair(0, 0, r), lj.pair(0, 0, r), 1e-3);
  }
  EXPECT_NEAR(back.embed(0, 0.5), 0.0, 1e-12);
}

}  // namespace
}  // namespace wsmd::eam
