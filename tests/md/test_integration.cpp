#include "md/integrator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "eam/zhou.hpp"
#include "lattice/lattice.hpp"
#include "md/simulation.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace wsmd::md {
namespace {

Simulation small_ta_simulation(double temperature_K, unsigned seed,
                               SimulationConfig cfg = {}) {
  const auto p = eam::zhou_parameters("Ta");
  const auto s = lattice::replicate(
      lattice::UnitCell::of(p.structure, p.lattice_constant()), 4, 4, 4, 0,
      {true, true, true});
  AtomSystem sys(s, std::make_shared<eam::ZhouEam>("Ta"));
  Rng rng(seed);
  sys.thermalize(temperature_K, rng);
  return Simulation(std::move(sys), cfg);
}

TEST(Leapfrog, RejectsNonPositiveTimestep) {
  EXPECT_THROW(LeapfrogIntegrator(0.0), Error);
  EXPECT_THROW(LeapfrogIntegrator(-0.001), Error);
}

TEST(Leapfrog, FreeParticleMovesBallistically) {
  lattice::Structure s;
  s.box = Box({-100, -100, -100}, {100, 100, 100});
  s.positions = {{0, 0, 0}};
  s.types = {0};
  AtomSystem sys(s, std::make_shared<eam::ZhouEam>("Ta"));
  sys.velocities()[0] = {3.0, -1.0, 0.5};
  sys.forces()[0] = {0, 0, 0};
  const LeapfrogIntegrator integ(0.002);
  for (int k = 0; k < 100; ++k) integ.step(sys);
  EXPECT_NEAR(sys.positions()[0].x, 3.0 * 0.2, 1e-12);
  EXPECT_NEAR(sys.positions()[0].y, -1.0 * 0.2, 1e-12);
  EXPECT_NEAR(sys.positions()[0].z, 0.5 * 0.2, 1e-12);
}

TEST(Leapfrog, ConstantForceProducesQuadraticTrajectory) {
  lattice::Structure s;
  s.box = Box({-1000, -1000, -1000}, {1000, 1000, 1000});
  s.positions = {{0, 0, 0}};
  s.types = {0};
  AtomSystem sys(s, std::make_shared<eam::ZhouEam>("Ta"));
  const double f = 0.5;  // eV/A
  const double dt = 0.001;
  const int n = 200;
  const double m = sys.mass(0);
  const double a = f / m * units::kForceToAccel;
  sys.velocities()[0] = {0, 0, 0};
  // Leapfrog: initialize v at t = -dt/2 for exact quadratic tracking.
  sys.velocities()[0].x = -0.5 * a * dt;
  const LeapfrogIntegrator integ(dt);
  for (int k = 0; k < n; ++k) {
    sys.forces()[0] = {f, 0, 0};
    integ.step(sys);
  }
  const double t = n * dt;
  EXPECT_NEAR(sys.positions()[0].x, 0.5 * a * t * t, 1e-9);
}

TEST(Leapfrog, EnergyConservationNVE) {
  // 2 fs steps at 290 K, as in the paper's benchmarks. Drift over 400 steps
  // must be a tiny fraction of the kinetic energy.
  auto sim = small_ta_simulation(290.0, 101);
  sim.compute_forces();
  const ThermoState initial = sim.thermo();
  const ThermoState final = sim.run(400);
  const double scale = std::fabs(initial.kinetic_energy) + 1e-10;
  EXPECT_LT(std::fabs(final.total_energy - initial.total_energy) / scale,
            2e-3)
      << "E0 = " << initial.total_energy << " E1 = " << final.total_energy;
}

TEST(Leapfrog, EnergyDriftShrinksWithTimestepSquared) {
  // Symplectic second-order scheme: halving dt shrinks the energy error
  // by ~4x. Use a hot system so the signal dominates roundoff.
  auto drift_for = [](double dt) {
    SimulationConfig cfg;
    cfg.dt = dt;
    auto sim = small_ta_simulation(600.0, 202, cfg);
    sim.compute_forces();
    const double e0 = sim.thermo().total_energy;
    const long steps = static_cast<long>(std::lround(0.4 / dt));  // 0.4 ps
    const double e1 = sim.run(steps).total_energy;
    return std::fabs(e1 - e0);
  };
  const double d_coarse = drift_for(0.004);
  const double d_fine = drift_for(0.002);
  EXPECT_LT(d_fine, d_coarse / 2.0);
}

TEST(Leapfrog, MomentumConservedNVE) {
  auto sim = small_ta_simulation(290.0, 103);
  const Vec3d p0 = sim.system().momentum();
  EXPECT_NEAR(norm(p0), 0.0, 1e-8);  // thermalize removes drift
  sim.run(200);
  const Vec3d p1 = sim.system().momentum();
  EXPECT_NEAR(norm(p1 - p0), 0.0, 1e-6);
}

TEST(Leapfrog, TimeReversibility) {
  // Run forward n steps, reverse, run n steps: positions return to the
  // start (to roundoff). This is the discrete time reversibility the
  // paper's Sec. II-A invokes. With kick-drift leapfrog the stored velocity
  // v_{k-1/2} pairs with r_k, so exact reversal applies one more full kick
  // (bringing v to +1/2 ahead) before negating.
  auto sim = small_ta_simulation(290.0, 104);
  sim.compute_forces();
  const auto r0 = sim.system().positions().to_aos();
  sim.run(50);

  const LeapfrogIntegrator integ(sim.config().dt);
  integ.half_kick(sim.system());
  integ.half_kick(sim.system());  // full kick: v now at +1/2 of r_50
  for (auto v : sim.system().velocities()) v *= -1.0;
  sim.run(50);

  const auto r1 = sim.system().positions().to_aos();
  double max_err = 0.0;
  for (std::size_t i = 0; i < r0.size(); ++i) {
    max_err = std::max(
        max_err, norm(sim.system().box().minimum_image(r1[i], r0[i])));
  }
  EXPECT_LT(max_err, 1e-7);
}

TEST(Leapfrog, HalfKickTwiceEqualsFullKick) {
  auto sim = small_ta_simulation(290.0, 105);
  sim.compute_forces();
  auto sys_copy = sim.system();

  const LeapfrogIntegrator integ(0.002);
  integ.half_kick(sys_copy);
  integ.half_kick(sys_copy);

  auto& sys = sim.system();
  // A full kick is what step() applies before the drift; compare velocity
  // updates directly.
  const auto v_before = sys.velocities();
  integ.step(sys);
  for (std::size_t i = 0; i < sys.size(); ++i) {
    EXPECT_NEAR(norm(sys.velocities().get(i) - sys_copy.velocities().get(i)), 0.0,
                1e-12)
        << "half+half != full kick for atom " << i;
    (void)v_before;
  }
}

TEST(AtomSystem, ThermalizeHitsTargetTemperature) {
  const auto p = eam::zhou_parameters("Cu");
  const auto s = lattice::replicate(
      lattice::UnitCell::of(p.structure, p.lattice_constant()), 4, 4, 4, 0,
      {true, true, true});
  AtomSystem sys(s, std::make_shared<eam::ZhouEam>("Cu"));
  Rng rng(7);
  sys.thermalize(290.0, rng);
  EXPECT_NEAR(sys.temperature(), 290.0, 1e-9);  // exact after rescale
  EXPECT_NEAR(norm(sys.momentum()), 0.0, 1e-8);
}

TEST(AtomSystem, KineticEnergyMatchesEquipartition) {
  const auto p = eam::zhou_parameters("W");
  const auto s = lattice::replicate(
      lattice::UnitCell::of(p.structure, p.lattice_constant()), 5, 5, 5, 0,
      {true, true, true});
  AtomSystem sys(s, std::make_shared<eam::ZhouEam>("W"));
  Rng rng(8);
  sys.thermalize(400.0, rng);
  const double expected =
      1.5 * static_cast<double>(sys.size()) * units::kBoltzmann * 400.0;
  EXPECT_NEAR(sys.kinetic_energy(), expected, 1e-6 * expected);
}

}  // namespace
}  // namespace wsmd::md
