#include "md/simulation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "eam/lennard_jones.hpp"
#include "eam/zhou.hpp"
#include "lattice/lattice.hpp"
#include "util/error.hpp"

namespace wsmd::md {
namespace {

/// Periodic Ta block; reps >= 4 keeps the box above twice the Ta physics
/// cutoff so minimum-image is valid (the neighbor list enforces this).
AtomSystem make_ta_block(int reps, std::array<bool, 3> pbc = {true, true, true}) {
  const auto p = eam::zhou_parameters("Ta");
  const auto s = lattice::replicate(
      lattice::UnitCell::of(p.structure, p.lattice_constant()), reps, reps,
      reps, 0, pbc);
  return AtomSystem(s, std::make_shared<eam::ZhouEam>("Ta"));
}

/// Small open-boundary block for cheap mechanics-of-the-driver tests.
AtomSystem make_small_open_block() {
  return make_ta_block(3, {false, false, false});
}

TEST(Simulation, StepCounterAdvances) {
  Simulation sim(make_small_open_block());
  EXPECT_EQ(sim.step_count(), 0);
  sim.run(5);
  EXPECT_EQ(sim.step_count(), 5);
  sim.run(3);
  EXPECT_EQ(sim.step_count(), 8);
}

TEST(Simulation, CallbackFiresEveryStep) {
  Simulation sim(make_small_open_block());
  int calls = 0;
  long last_step = -1;
  sim.run(7, [&](const ThermoState& t) {
    ++calls;
    last_step = t.step;
  });
  EXPECT_EQ(calls, 7);
  EXPECT_EQ(last_step, 7);
}

TEST(Simulation, ZeroTemperatureLatticeStaysPut) {
  // A perfect crystal at T=0 has zero forces and zero velocities: nothing
  // moves, potential energy is constant.
  Simulation sim(make_ta_block(4));
  sim.compute_forces();
  const double e0 = sim.thermo().potential_energy;
  const auto r0 = sim.system().positions();
  sim.run(20);
  EXPECT_NEAR(sim.thermo().potential_energy, e0, 1e-9 * std::fabs(e0));
  for (std::size_t i = 0; i < r0.size(); ++i) {
    EXPECT_NEAR(norm(sim.system().positions()[i] - r0[i]), 0.0, 1e-9);
  }
}

TEST(Simulation, EquilibrateReachesTargetTemperature) {
  Simulation sim(make_ta_block(4));
  Rng rng(55);
  sim.equilibrate(290.0, 100, rng);
  // After equilibration about half the initial kinetic energy has moved
  // into potential (equipartition with phonons), and rescaling keeps T at
  // the target on rescale steps. Allow a generous band.
  EXPECT_NEAR(sim.thermo().temperature, 290.0, 80.0);
}

TEST(Simulation, NveAfterEquilibrationConservesEnergy) {
  Simulation sim(make_ta_block(4));
  Rng rng(56);
  sim.equilibrate(290.0, 80, rng);
  const double e0 = sim.thermo().total_energy;
  sim.run(200);
  const double e1 = sim.thermo().total_energy;
  EXPECT_NEAR(e1, e0, 5e-3 * std::fabs(sim.thermo().kinetic_energy) + 1e-6);
}

TEST(Simulation, RescaleThermostatHoldsTemperature) {
  SimulationConfig cfg;
  cfg.rescale_temperature_K = 500.0;
  cfg.rescale_interval = 5;
  Simulation sim(make_ta_block(4), cfg);
  Rng rng(57);
  sim.system().thermalize(100.0, rng);  // start cold
  sim.run(200);
  EXPECT_NEAR(sim.thermo().temperature, 500.0, 150.0);
}

TEST(Simulation, NeighborListRebuildsAreSparse) {
  // At 290 K with a 1 A skin, rebuilds should be far rarer than steps —
  // the mechanism LAMMPS exploits and paper Table V row "Neighbor list"
  // models (re-examine every ~10th step).
  Simulation sim(make_ta_block(4));
  Rng rng(58);
  sim.equilibrate(290.0, 50, rng);
  const std::size_t before = sim.neighbor_list().rebuild_count();
  sim.run(200);
  const std::size_t rebuilds = sim.neighbor_list().rebuild_count() - before;
  EXPECT_LT(rebuilds, 40u);  // < 1 per 5 steps
}

TEST(Simulation, OpenBoundarySlabDoesNotExplode) {
  // Thin slab with open boundaries (the paper's geometry): surfaces relax
  // but the crystal must hold together over a short run.
  const auto s = lattice::paper_slab("Ta", 64);
  AtomSystem sys(s, std::make_shared<eam::ZhouEam>("Ta"));
  Rng rng(59);
  sys.thermalize(290.0, rng);
  Simulation sim(std::move(sys));
  sim.run(50);
  // No atom should have flown further than a few lattice constants.
  const auto& pos = sim.system().positions();
  const auto& s0 = s.positions;
  double max_disp = 0.0;
  for (std::size_t i = 0; i < pos.size(); ++i) {
    max_disp = std::max(max_disp, norm(pos[i] - s0[i]));
  }
  EXPECT_LT(max_disp, 3.0);
}

TEST(Simulation, LennardJonesGasRuns) {
  lattice::Structure s;
  s.box = Box({0, 0, 0}, {30, 30, 30}, {true, true, true});
  Rng rng(60);
  for (int i = 0; i < 200; ++i) {
    s.positions.push_back({rng.uniform(0, 30), rng.uniform(0, 30),
                           rng.uniform(0, 30)});
    s.types.push_back(0);
  }
  AtomSystem sys(s, std::make_shared<eam::LennardJones>(
                        eam::LennardJones::copper_like()));
  sys.thermalize(2000.0, rng);
  SimulationConfig cfg;
  cfg.dt = 0.0005;  // gas with close random pairs: small dt
  Simulation sim(std::move(sys), cfg);
  const auto t = sim.run(50);
  EXPECT_TRUE(std::isfinite(t.total_energy));
  EXPECT_GT(t.temperature, 0.0);
}

TEST(Simulation, RejectsNegativeStepCount) {
  Simulation sim(make_small_open_block());
  EXPECT_THROW(sim.run(-1), Error);
}

TEST(Simulation, ThermoTotalIsSumOfParts) {
  Simulation sim(make_small_open_block());
  Rng rng(61);
  sim.system().thermalize(290.0, rng);
  sim.compute_forces();
  const auto t = sim.thermo();
  EXPECT_DOUBLE_EQ(t.total_energy, t.potential_energy + t.kinetic_energy);
}

}  // namespace
}  // namespace wsmd::md
