#include "md/force_eam.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "eam/lennard_jones.hpp"
#include "eam/zhou.hpp"
#include "lattice/lattice.hpp"
#include "util/random.hpp"

namespace wsmd::md {
namespace {

AtomSystem make_system(const lattice::Structure& s,
                       std::shared_ptr<const eam::EamPotential> pot) {
  return AtomSystem(s, std::move(pot));
}

/// Total potential energy at the system's current positions.
double energy_of(AtomSystem& sys) {
  NeighborList nl(sys.potential().cutoff(), 0.5);
  nl.build(sys.box(), sys.positions());
  EamForceKernel k;
  return k.compute(sys, nl);
}

/// Verify analytic forces against the numerical gradient of U for a few
/// atoms and directions.
void check_forces_match_gradient(AtomSystem& sys, double h, double tol) {
  NeighborList nl(sys.potential().cutoff(), 0.5);
  nl.build(sys.box(), sys.positions());
  EamForceKernel k;
  k.compute(sys, nl);
  const auto forces = sys.forces();

  Rng rng(17);
  const std::size_t n_checks = std::min<std::size_t>(8, sys.size());
  for (std::size_t c = 0; c < n_checks; ++c) {
    const auto i = static_cast<std::size_t>(rng.uniform_index(sys.size()));
    for (std::size_t axis = 0; axis < 3; ++axis) {
      const double orig = sys.positions()[i][axis];
      sys.positions()[i][axis] = orig + h;
      nl.build(sys.box(), sys.positions());
      const double e_plus = k.compute(sys, nl);
      sys.positions()[i][axis] = orig - h;
      nl.build(sys.box(), sys.positions());
      const double e_minus = k.compute(sys, nl);
      sys.positions()[i][axis] = orig;
      const double f_numeric = -(e_plus - e_minus) / (2.0 * h);
      EXPECT_NEAR(forces[i][axis], f_numeric, tol)
          << "atom " << i << " axis " << axis;
    }
  }
  nl.build(sys.box(), sys.positions());
  k.compute(sys, nl);  // restore forces for the caller
}

lattice::Structure jittered_crystal(const std::string& element, int reps,
                                    double jitter, unsigned seed) {
  const auto p = eam::zhou_parameters(element);
  auto s = lattice::replicate(
      lattice::UnitCell::of(p.structure, p.lattice_constant()), reps, reps,
      reps, 0, {true, true, true});
  Rng rng(seed);
  for (auto& r : s.positions) r += rng.gaussian_vec3(jitter);
  return s;
}

TEST(EamForces, DimerForceMatchesPairDerivative) {
  // Two atoms: force magnitude must equal -(phi' + 2 F' rho') at distance r.
  auto pot = std::make_shared<eam::ZhouEam>("Ta");
  lattice::Structure s;
  s.box = Box({-10, -10, -10}, {10, 10, 10});
  const double r = 2.9;
  s.positions = {{0, 0, 0}, {r, 0, 0}};
  s.types = {0, 0};
  auto sys = make_system(s, pot);

  NeighborList nl(pot->cutoff(), 0.5);
  nl.build(sys.box(), sys.positions());
  EamForceKernel k;
  k.compute(sys, nl);

  const double rho = pot->density(0, r);
  const double fp = pot->embed_deriv(0, rho);
  const double expected =
      -(pot->pair_deriv(0, 0, r) + 2.0 * fp * pot->density_deriv(0, r));
  // Force on atom 0 points along -x when the pair is repulsive at r.
  EXPECT_NEAR(sys.forces()[0].x, -expected, 1e-10);
  EXPECT_NEAR(sys.forces()[1].x, expected, 1e-10);
  EXPECT_NEAR(sys.forces()[0].y, 0.0, 1e-12);
}

TEST(EamForces, PerfectLatticeHasZeroForce) {
  auto pot = std::make_shared<eam::ZhouEam>("W");
  const auto p = eam::zhou_parameters("W");
  const auto s = lattice::replicate(
      lattice::UnitCell::of(p.structure, p.lattice_constant()), 4, 4, 4, 0,
      {true, true, true});
  auto sys = make_system(s, pot);
  NeighborList nl(pot->cutoff(), 0.5);
  nl.build(sys.box(), sys.positions());
  EamForceKernel k;
  k.compute(sys, nl);
  for (const Vec3d f : sys.forces()) {
    EXPECT_NEAR(norm(f), 0.0, 1e-8);
  }
}

TEST(EamForces, NewtonsThirdLawNetForceZero) {
  auto pot = std::make_shared<eam::ZhouEam>("Cu");
  const auto s = jittered_crystal("Cu", 3, 0.1, 11);
  auto sys = make_system(s, pot);
  NeighborList nl(pot->cutoff(), 0.5);
  nl.build(sys.box(), sys.positions());
  EamForceKernel k;
  k.compute(sys, nl);
  Vec3d net{0, 0, 0};
  for (const Vec3d f : sys.forces()) net += f;
  EXPECT_NEAR(norm(net), 0.0, 1e-7 * static_cast<double>(sys.size()));
}

TEST(EamForces, MatchesNumericalGradientTa) {
  auto pot = std::make_shared<eam::ZhouEam>("Ta");
  auto s = jittered_crystal("Ta", 4, 0.08, 23);
  auto sys = make_system(s, pot);
  check_forces_match_gradient(sys, 1e-5, 2e-4);
}

TEST(EamForces, MatchesNumericalGradientCu) {
  auto pot = std::make_shared<eam::ZhouEam>("Cu");
  auto s = jittered_crystal("Cu", 3, 0.08, 29);
  auto sys = make_system(s, pot);
  check_forces_match_gradient(sys, 1e-5, 2e-4);
}

TEST(EamForces, MatchesNumericalGradientOpenBoundaries) {
  // Surface atoms exercise the incomplete-shell code path.
  auto pot = std::make_shared<eam::ZhouEam>("W");
  const auto p = eam::zhou_parameters("W");
  auto s = lattice::replicate(
      lattice::UnitCell::of(p.structure, p.lattice_constant()), 3, 3, 3, 0,
      {false, false, false});
  Rng rng(31);
  for (auto& r : s.positions) r += rng.gaussian_vec3(0.05);
  auto sys = make_system(s, pot);
  check_forces_match_gradient(sys, 1e-5, 2e-4);
}

TEST(EamForces, MatchesNumericalGradientLennardJones) {
  auto pot = std::make_shared<eam::LennardJones>(eam::LennardJones::copper_like());
  auto s = jittered_crystal("Cu", 4, 0.05, 37);
  auto sys = make_system(s, pot);
  check_forces_match_gradient(sys, 1e-5, 2e-4);
}

TEST(EamForces, EnergyDecomposesIntoPairAndEmbedding) {
  auto pot = std::make_shared<eam::ZhouEam>("Ta");
  auto s = jittered_crystal("Ta", 4, 0.05, 41);
  auto sys = make_system(s, pot);
  NeighborList nl(pot->cutoff(), 0.5);
  nl.build(sys.box(), sys.positions());
  EamForceKernel k;
  const double total = k.compute(sys, nl);
  EXPECT_DOUBLE_EQ(total, k.pair_energy() + k.embedding_energy());
  EXPECT_LT(k.embedding_energy(), 0.0);  // embedding binds the metal
}

TEST(EamForces, DensitiesMatchDirectSum) {
  auto pot = std::make_shared<eam::ZhouEam>("W");
  auto s = jittered_crystal("W", 4, 0.05, 43);
  auto sys = make_system(s, pot);
  NeighborList nl(pot->cutoff(), 0.5);
  nl.build(sys.box(), sys.positions());
  EamForceKernel k;
  k.compute(sys, nl);

  // Recompute rho for a few atoms by brute force.
  Rng rng(47);
  for (int c = 0; c < 5; ++c) {
    const auto i = static_cast<std::size_t>(rng.uniform_index(sys.size()));
    double rho = 0.0;
    for (std::size_t j = 0; j < sys.size(); ++j) {
      if (j == i) continue;
      const double r = norm(
          sys.box().minimum_image(sys.positions()[i], sys.positions()[j]));
      if (r < pot->cutoff()) rho += pot->density(0, r);
    }
    EXPECT_NEAR(k.densities()[i], rho, 1e-10);
  }
}

TEST(EamForces, EnergyInvariantUnderRigidTranslation) {
  auto pot = std::make_shared<eam::ZhouEam>("Cu");
  auto s = jittered_crystal("Cu", 3, 0.05, 53);
  auto sys = make_system(s, pot);
  const double e0 = energy_of(sys);
  for (auto r : sys.positions()) r += Vec3d{1.7, -0.3, 0.9};
  const double e1 = energy_of(sys);
  EXPECT_NEAR(e0, e1, 1e-8 * std::fabs(e0));
}

TEST(EamForces, CohesiveEnergyPerAtomReasonable) {
  // Bulk Ta at its equilibrium lattice: E/atom ~ -8 eV.
  auto pot = std::make_shared<eam::ZhouEam>("Ta");
  const auto p = eam::zhou_parameters("Ta");
  const auto s = lattice::replicate(
      lattice::UnitCell::of(p.structure, p.lattice_constant()), 4, 4, 4, 0,
      {true, true, true});
  auto sys = make_system(s, pot);
  const double e_per_atom = energy_of(sys) / static_cast<double>(sys.size());
  EXPECT_LT(e_per_atom, -6.5);
  EXPECT_GT(e_per_atom, -9.5);
}

}  // namespace
}  // namespace wsmd::md
