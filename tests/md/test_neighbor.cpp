#include "md/neighbor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "lattice/lattice.hpp"
#include "util/error.hpp"
#include "util/random.hpp"

namespace wsmd::md {
namespace {

/// Reference brute-force neighbor set.
std::set<std::size_t> brute_force_neighbors(const Box& box,
                                            const std::vector<Vec3d>& pos,
                                            std::size_t i, double radius) {
  std::set<std::size_t> out;
  const double r2 = radius * radius;
  for (std::size_t j = 0; j < pos.size(); ++j) {
    if (j == i) continue;
    if (norm2(box.minimum_image(pos[i], pos[j])) < r2) out.insert(j);
  }
  return out;
}

std::vector<Vec3d> random_gas(Rng& rng, const Box& box, std::size_t n) {
  std::vector<Vec3d> pos(n);
  for (auto& r : pos) {
    r = {rng.uniform(box.lo.x, box.hi.x), rng.uniform(box.lo.y, box.hi.y),
         rng.uniform(box.lo.z, box.hi.z)};
  }
  return pos;
}

TEST(NeighborList, MatchesBruteForceOpenBox) {
  Rng rng(3);
  const Box box({0, 0, 0}, {20, 20, 20});
  const auto pos = random_gas(rng, box, 300);
  NeighborList nl(3.0, 0.5);
  nl.build(box, pos);
  for (std::size_t i = 0; i < pos.size(); ++i) {
    const auto expected = brute_force_neighbors(box, pos, i, nl.list_radius());
    const auto r = nl.neighbors(i);
    const std::set<std::size_t> actual(r.begin(), r.end());
    EXPECT_EQ(actual, expected) << "atom " << i;
  }
}

TEST(NeighborList, MatchesBruteForcePeriodicBox) {
  Rng rng(4);
  const Box box({0, 0, 0}, {15, 15, 15}, {true, true, true});
  const auto pos = random_gas(rng, box, 250);
  NeighborList nl(3.0, 0.4);
  nl.build(box, pos);
  for (std::size_t i = 0; i < pos.size(); ++i) {
    const auto expected = brute_force_neighbors(box, pos, i, nl.list_radius());
    const auto r = nl.neighbors(i);
    const std::set<std::size_t> actual(r.begin(), r.end());
    EXPECT_EQ(actual, expected) << "atom " << i;
  }
}

TEST(NeighborList, MatchesBruteForceMixedBoundaries) {
  Rng rng(5);
  const Box box({0, 0, 0}, {12, 18, 9}, {true, false, true});
  const auto pos = random_gas(rng, box, 200);
  NeighborList nl(2.5, 0.6);
  nl.build(box, pos);
  for (std::size_t i = 0; i < pos.size(); ++i) {
    const auto expected = brute_force_neighbors(box, pos, i, nl.list_radius());
    const auto r = nl.neighbors(i);
    const std::set<std::size_t> actual(r.begin(), r.end());
    EXPECT_EQ(actual, expected);
  }
}

TEST(NeighborList, SmallPeriodicBoxWithFewCells) {
  // Box barely larger than the list radius: periodic wrap puts multiple
  // stencil cells onto the same cell; the list must still be exact.
  Rng rng(6);
  const Box box({0, 0, 0}, {5.5, 5.5, 5.5}, {true, true, true});
  const auto pos = random_gas(rng, box, 60);
  NeighborList nl(2.0, 0.3);
  nl.build(box, pos);
  for (std::size_t i = 0; i < pos.size(); ++i) {
    const auto expected = brute_force_neighbors(box, pos, i, nl.list_radius());
    const auto r = nl.neighbors(i);
    const std::set<std::size_t> actual(r.begin(), r.end());
    EXPECT_EQ(actual, expected);
  }
}

TEST(NeighborList, ListIsSymmetric) {
  Rng rng(7);
  const Box box({0, 0, 0}, {20, 20, 20}, {true, true, true});
  const auto pos = random_gas(rng, box, 300);
  NeighborList nl(3.5, 0.5);
  nl.build(box, pos);
  for (std::size_t i = 0; i < pos.size(); ++i) {
    for (std::size_t j : nl.neighbors(i)) {
      const auto r = nl.neighbors(j);
      EXPECT_TRUE(std::find(r.begin(), r.end(), i) != r.end())
          << i << " lists " << j << " but not vice versa";
    }
  }
}

TEST(NeighborList, FccLatticeCoordination) {
  // FCC with list radius between 1st and 2nd shell: every interior atom has
  // exactly 12 neighbors.
  const double a = 4.0;
  const auto s = lattice::replicate(lattice::UnitCell::fcc(a), 5, 5, 5, 0,
                                    {true, true, true});
  NeighborList nl(a / std::sqrt(2.0) + 0.2, 0.0);
  nl.build(s.box, s.positions);
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(nl.neighbors(i).size(), 12u);
  }
}

TEST(NeighborList, SkinDelaysRebuilds) {
  Rng rng(8);
  const Box box({0, 0, 0}, {20, 20, 20}, {true, true, true});
  auto pos = random_gas(rng, box, 100);
  NeighborList nl(3.0, 1.0);
  nl.build(box, pos);
  EXPECT_EQ(nl.rebuild_count(), 1u);

  // Tiny motion: no rebuild.
  for (auto& r : pos) r += Vec3d{0.01, 0.0, 0.0};
  EXPECT_FALSE(nl.ensure_current(box, pos));
  EXPECT_EQ(nl.rebuild_count(), 1u);

  // Motion beyond skin/2: rebuild.
  pos[0] += Vec3d{0.6, 0.0, 0.0};
  EXPECT_TRUE(nl.ensure_current(box, pos));
  EXPECT_EQ(nl.rebuild_count(), 2u);
}

TEST(NeighborList, RebuildOnAtomCountChange) {
  Rng rng(9);
  const Box box({0, 0, 0}, {10, 10, 10});
  auto pos = random_gas(rng, box, 50);
  NeighborList nl(2.0, 0.5);
  nl.build(box, pos);
  pos.push_back({5, 5, 5});
  EXPECT_TRUE(nl.ensure_current(box, pos));
  EXPECT_EQ(nl.atom_count(), 51u);
}

TEST(NeighborList, RejectsInvalidConstruction) {
  EXPECT_THROW(NeighborList(0.0, 0.1), Error);
  EXPECT_THROW(NeighborList(1.0, -0.1), Error);
}

TEST(NeighborList, SkinWithinListRadius) {
  NeighborList nl(3.0, 0.7);
  EXPECT_DOUBLE_EQ(nl.list_radius(), 3.7);
  EXPECT_DOUBLE_EQ(nl.cutoff(), 3.0);
  EXPECT_DOUBLE_EQ(nl.skin(), 0.7);
}

}  // namespace
}  // namespace wsmd::md
