#include "md/neighbor.hpp"

#include "md/cell_list.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "lattice/lattice.hpp"
#include "util/error.hpp"
#include "util/random.hpp"

namespace wsmd::md {
namespace {

/// Reference brute-force neighbor set.
std::set<std::size_t> brute_force_neighbors(const Box& box,
                                            const std::vector<Vec3d>& pos,
                                            std::size_t i, double radius) {
  std::set<std::size_t> out;
  const double r2 = radius * radius;
  for (std::size_t j = 0; j < pos.size(); ++j) {
    if (j == i) continue;
    if (norm2(box.minimum_image(pos[i], pos[j])) < r2) out.insert(j);
  }
  return out;
}

std::vector<Vec3d> random_gas(Rng& rng, const Box& box, std::size_t n) {
  std::vector<Vec3d> pos(n);
  for (auto& r : pos) {
    r = {rng.uniform(box.lo.x, box.hi.x), rng.uniform(box.lo.y, box.hi.y),
         rng.uniform(box.lo.z, box.hi.z)};
  }
  return pos;
}

TEST(NeighborList, MatchesBruteForceOpenBox) {
  Rng rng(3);
  const Box box({0, 0, 0}, {20, 20, 20});
  const auto pos = random_gas(rng, box, 300);
  NeighborList nl(3.0, 0.5);
  nl.build(box, pos);
  for (std::size_t i = 0; i < pos.size(); ++i) {
    const auto expected = brute_force_neighbors(box, pos, i, nl.list_radius());
    const auto r = nl.neighbors(i);
    const std::set<std::size_t> actual(r.begin(), r.end());
    EXPECT_EQ(actual, expected) << "atom " << i;
  }
}

TEST(NeighborList, MatchesBruteForcePeriodicBox) {
  Rng rng(4);
  const Box box({0, 0, 0}, {15, 15, 15}, {true, true, true});
  const auto pos = random_gas(rng, box, 250);
  NeighborList nl(3.0, 0.4);
  nl.build(box, pos);
  for (std::size_t i = 0; i < pos.size(); ++i) {
    const auto expected = brute_force_neighbors(box, pos, i, nl.list_radius());
    const auto r = nl.neighbors(i);
    const std::set<std::size_t> actual(r.begin(), r.end());
    EXPECT_EQ(actual, expected) << "atom " << i;
  }
}

TEST(NeighborList, MatchesBruteForceMixedBoundaries) {
  Rng rng(5);
  const Box box({0, 0, 0}, {12, 18, 9}, {true, false, true});
  const auto pos = random_gas(rng, box, 200);
  NeighborList nl(2.5, 0.6);
  nl.build(box, pos);
  for (std::size_t i = 0; i < pos.size(); ++i) {
    const auto expected = brute_force_neighbors(box, pos, i, nl.list_radius());
    const auto r = nl.neighbors(i);
    const std::set<std::size_t> actual(r.begin(), r.end());
    EXPECT_EQ(actual, expected);
  }
}

TEST(NeighborList, SmallPeriodicBoxWithFewCells) {
  // Box barely larger than the list radius: periodic wrap puts multiple
  // stencil cells onto the same cell; the list must still be exact.
  Rng rng(6);
  const Box box({0, 0, 0}, {5.5, 5.5, 5.5}, {true, true, true});
  const auto pos = random_gas(rng, box, 60);
  NeighborList nl(2.0, 0.3);
  nl.build(box, pos);
  for (std::size_t i = 0; i < pos.size(); ++i) {
    const auto expected = brute_force_neighbors(box, pos, i, nl.list_radius());
    const auto r = nl.neighbors(i);
    const std::set<std::size_t> actual(r.begin(), r.end());
    EXPECT_EQ(actual, expected);
  }
}

TEST(NeighborList, ListIsSymmetric) {
  Rng rng(7);
  const Box box({0, 0, 0}, {20, 20, 20}, {true, true, true});
  const auto pos = random_gas(rng, box, 300);
  NeighborList nl(3.5, 0.5);
  nl.build(box, pos);
  for (std::size_t i = 0; i < pos.size(); ++i) {
    for (std::size_t j : nl.neighbors(i)) {
      const auto r = nl.neighbors(j);
      EXPECT_TRUE(std::find(r.begin(), r.end(), i) != r.end())
          << i << " lists " << j << " but not vice versa";
    }
  }
}

TEST(NeighborList, FccLatticeCoordination) {
  // FCC with list radius between 1st and 2nd shell: every interior atom has
  // exactly 12 neighbors.
  const double a = 4.0;
  const auto s = lattice::replicate(lattice::UnitCell::fcc(a), 5, 5, 5, 0,
                                    {true, true, true});
  NeighborList nl(a / std::sqrt(2.0) + 0.2, 0.0);
  nl.build(s.box, s.positions);
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(nl.neighbors(i).size(), 12u);
  }
}

TEST(NeighborList, SkinDelaysRebuilds) {
  Rng rng(8);
  const Box box({0, 0, 0}, {20, 20, 20}, {true, true, true});
  auto pos = random_gas(rng, box, 100);
  NeighborList nl(3.0, 1.0);
  nl.build(box, pos);
  EXPECT_EQ(nl.rebuild_count(), 1u);

  // Tiny motion: no rebuild.
  for (auto& r : pos) r += Vec3d{0.01, 0.0, 0.0};
  EXPECT_FALSE(nl.ensure_current(box, pos));
  EXPECT_EQ(nl.rebuild_count(), 1u);

  // Motion beyond skin/2: rebuild.
  pos[0] += Vec3d{0.6, 0.0, 0.0};
  EXPECT_TRUE(nl.ensure_current(box, pos));
  EXPECT_EQ(nl.rebuild_count(), 2u);
}

TEST(NeighborList, RebuildOnAtomCountChange) {
  Rng rng(9);
  const Box box({0, 0, 0}, {10, 10, 10});
  auto pos = random_gas(rng, box, 50);
  NeighborList nl(2.0, 0.5);
  nl.build(box, pos);
  pos.push_back({5, 5, 5});
  EXPECT_TRUE(nl.ensure_current(box, pos));
  EXPECT_EQ(nl.atom_count(), 51u);
}

TEST(NeighborList, RejectsInvalidConstruction) {
  EXPECT_THROW(NeighborList(0.0, 0.1), Error);
  EXPECT_THROW(NeighborList(1.0, -0.1), Error);
}

TEST(NeighborList, SkinWithinListRadius) {
  NeighborList nl(3.0, 0.7);
  EXPECT_DOUBLE_EQ(nl.list_radius(), 3.7);
  EXPECT_DOUBLE_EQ(nl.cutoff(), 3.0);
  EXPECT_DOUBLE_EQ(nl.skin(), 0.7);
}

TEST(CellList, MatchesBruteForceOnRandomGasAllBoundaryKinds) {
  Rng rng(31);
  // radius 2.5 -> >= 3 cells per axis (the generic stencil); radius 4.0
  // -> exactly 2 cells per axis (box lengths in [2r, 3r)), the regime
  // where periodic wrap folds distinct stencil offsets onto the same cell
  // and only the build-time dedup prevents double-visiting neighbors.
  for (const double radius : {2.5, 4.0}) {
    for (const auto periodic :
         {std::array<bool, 3>{false, false, false},
          std::array<bool, 3>{true, true, true},
          std::array<bool, 3>{true, false, true}}) {
      const Box box({0, 0, 0}, {9, 11, 10}, periodic);
      const auto pos = random_gas(rng, box, 160);
      CellList cl;
      cl.build(box, pos, radius);
      for (std::size_t i = 0; i < pos.size(); ++i) {
        const auto expect = brute_force_neighbors(box, pos, i, radius);
        std::vector<std::size_t> got;
        cl.for_each_neighbor(i,
                             [&](std::size_t j, const Vec3d& d, double r2) {
                               EXPECT_LT(r2, radius * radius);
                               EXPECT_NEAR(norm2(d), r2, 1e-12);
                               got.push_back(j);
                             });
        std::sort(got.begin(), got.end());
        // Duplicate-freeness asserted on the raw list, not a set.
        EXPECT_TRUE(std::adjacent_find(got.begin(), got.end()) == got.end())
            << "duplicate neighbor of atom " << i << " at radius " << radius;
        EXPECT_EQ(std::set<std::size_t>(got.begin(), got.end()), expect)
            << "atom " << i << " radius " << radius;
      }
    }
  }
}

TEST(CellList, PairIterationVisitsEachUnorderedPairOnce) {
  Rng rng(77);
  const Box box({0, 0, 0}, {8, 8, 8}, {true, true, true});
  const auto pos = random_gas(rng, box, 120);
  const double radius = 2.0;
  CellList cl;
  cl.build(box, pos, radius);
  std::set<std::pair<std::size_t, std::size_t>> pairs;
  cl.for_each_pair([&](std::size_t i, std::size_t j, const Vec3d&, double) {
    EXPECT_LT(i, j);
    EXPECT_TRUE(pairs.emplace(i, j).second) << "duplicate pair " << i << ","
                                            << j;
  });
  // Cross-check the pair count against the per-atom view (each unordered
  // pair appears in exactly two neighbor lists).
  std::size_t directed = 0;
  for (std::size_t i = 0; i < pos.size(); ++i) {
    cl.for_each_neighbor(i,
                         [&](std::size_t, const Vec3d&, double) { ++directed; });
  }
  EXPECT_EQ(directed, 2 * pairs.size());
}

}  // namespace
}  // namespace wsmd::md
