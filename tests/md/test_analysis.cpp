#include "md/analysis.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "eam/zhou.hpp"
#include "lattice/grain_boundary.hpp"
#include "lattice/lattice.hpp"
#include "util/error.hpp"

namespace wsmd::md {
namespace {

TEST(Centrosymmetry, PerfectBccBulkIsZero) {
  const double a = 3.165;
  const auto s = lattice::replicate(lattice::UnitCell::bcc(a), 5, 5, 5, 0,
                                    {true, true, true});
  const auto out = analyze_structure(s.box, s.positions, 1.2 * a, 8);
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_NEAR(out.centrosymmetry[i], 0.0, 1e-9);
    EXPECT_GE(out.coordination[i], 8);
  }
}

TEST(Centrosymmetry, PerfectFccBulkIsZero) {
  const double a = 3.615;
  const auto s = lattice::replicate(lattice::UnitCell::fcc(a), 4, 4, 4, 0,
                                    {true, true, true});
  const auto out = analyze_structure(s.box, s.positions, 0.9 * a, 12);
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_NEAR(out.centrosymmetry[i], 0.0, 1e-9);
    EXPECT_EQ(out.coordination[i], 12);
  }
}

TEST(Centrosymmetry, SurfaceAtomsAreDefective) {
  // Open boundaries: face atoms lose their opposite partners.
  const double a = 3.165;
  const auto s = lattice::replicate(lattice::UnitCell::bcc(a), 5, 5, 5);
  const auto out = analyze_structure(s.box, s.positions, 1.2 * a, 8);
  const auto defect = defective_atoms(out, 0.5);
  int surface_defects = 0, interior_defects = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const Vec3d& r = s.positions[i];
    const bool surface = r.x < 0.6 * a || r.x > 4.0 * a || r.y < 0.6 * a ||
                         r.y > 4.0 * a || r.z < 0.6 * a || r.z > 4.0 * a;
    if (surface && defect[i]) ++surface_defects;
    if (!surface && defect[i]) ++interior_defects;
  }
  EXPECT_GT(surface_defects, 50);
  EXPECT_EQ(interior_defects, 0);
}

TEST(Centrosymmetry, GrainBoundaryBandDetected) {
  // The Fig. 2 classification: atoms near the boundary plane carry high
  // centrosymmetry; grain interiors stay crystalline.
  lattice::GrainBoundaryParams params;
  params.element = "W";
  params.tilt_angle_deg = 16.0;
  params.cells_x = 10;
  params.cells_y = 10;
  params.cells_z = 3;
  const auto gb = lattice::make_grain_boundary(params);
  const double a = eam::zhou_parameters("W").lattice_constant();
  const auto out =
      analyze_structure(gb.structure.box, gb.structure.positions, 1.2 * a, 8);
  const auto defect = defective_atoms(out, 1.0);

  int boundary_defects = 0, boundary_total = 0;
  int interior_defects = 0, interior_total = 0;
  for (std::size_t i = 0; i < gb.structure.size(); ++i) {
    const Vec3d& r = gb.structure.positions[i];
    // Skip the open-surface shell; compare GB band vs grain interior.
    const double lx = params.cells_x * a, lz = params.cells_z * a;
    if (r.x < a || r.x > lx - a || r.z < a || r.z > lz - a) continue;
    const double dy = std::fabs(r.y - gb.boundary_y);
    if (dy < 0.8 * a) {
      ++boundary_total;
      if (defect[i]) ++boundary_defects;
    } else if (dy > 2.5 * a && r.y > a && r.y < params.cells_y * a - a) {
      ++interior_total;
      if (defect[i]) ++interior_defects;
    }
  }
  ASSERT_GT(boundary_total, 20);
  ASSERT_GT(interior_total, 50);
  // Most of the boundary band is defective; grain interiors are clean.
  EXPECT_GT(static_cast<double>(boundary_defects) / boundary_total, 0.5);
  EXPECT_LT(static_cast<double>(interior_defects) / interior_total, 0.05);
}

TEST(Centrosymmetry, RejectsBadArguments) {
  const auto s = lattice::replicate(lattice::UnitCell::bcc(3.0), 3, 3, 3);
  EXPECT_THROW(analyze_structure(s.box, s.positions, 4.0, 7), Error);
  EXPECT_THROW(analyze_structure(s.box, {}, 4.0, 8), Error);
  StructureAnalysis a;
  EXPECT_THROW(defective_atoms(a, 0.0), Error);
}

}  // namespace
}  // namespace wsmd::md
