/// \file test_threaded_force.cpp
/// Deterministic threaded force sweep: md::Simulation with threads = 2 or 8
/// must reproduce the serial trajectory *bitwise*, not approximately.
///
/// The sweep tiles atoms at a fixed width (md/force_eam.cpp kForceTile)
/// with static round-robin tile assignment and a serial tile-ordered energy
/// reduction, so worker count changes only who computes a tile, never the
/// FP operation order. These tests are the contract behind the `reference:N`
/// scenario backend and CI's thread-determinism leg.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "eam/zhou.hpp"
#include "lattice/lattice.hpp"
#include "md/simulation.hpp"
#include "util/random.hpp"

namespace wsmd::md {
namespace {

lattice::Structure jittered_ta(unsigned seed) {
  const auto p = eam::zhou_parameters("Ta");
  auto s = lattice::replicate(
      lattice::UnitCell::of(p.structure, p.lattice_constant()), 4, 4, 4, 0,
      {true, true, true});
  Rng rng(seed);
  for (auto& r : s.positions) r += rng.gaussian_vec3(0.05);
  return s;
}

Simulation make_sim(const lattice::Structure& s, int threads,
                    bool tabulated) {
  SimulationConfig cfg;
  cfg.threads = threads;
  cfg.tabulated = tabulated;
  Simulation sim(AtomSystem(s, std::make_shared<eam::ZhouEam>("Ta")), cfg);
  Rng rng(99);
  sim.system().thermalize(300.0, rng);  // same seed -> same velocities
  return sim;
}

void expect_bitwise_equal(Simulation& a, Simulation& b, const char* label) {
  const auto ra = a.system().positions().to_aos();
  const auto rb = b.system().positions().to_aos();
  const auto va = a.system().velocities().to_aos();
  const auto vb = b.system().velocities().to_aos();
  const auto fa = a.system().forces().to_aos();
  const auto fb = b.system().forces().to_aos();
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    ASSERT_EQ(ra[i].x, rb[i].x) << label << ": position x, atom " << i;
    ASSERT_EQ(ra[i].y, rb[i].y) << label << ": position y, atom " << i;
    ASSERT_EQ(ra[i].z, rb[i].z) << label << ": position z, atom " << i;
    ASSERT_EQ(va[i].x, vb[i].x) << label << ": velocity x, atom " << i;
    ASSERT_EQ(fa[i].x, fb[i].x) << label << ": force x, atom " << i;
    ASSERT_EQ(fa[i].y, fb[i].y) << label << ": force y, atom " << i;
    ASSERT_EQ(fa[i].z, fb[i].z) << label << ": force z, atom " << i;
  }
}

class ThreadedForce : public ::testing::TestWithParam<int> {};

TEST_P(ThreadedForce, SingleEvaluationMatchesSerialBitwise) {
  const auto s = jittered_ta(31);
  auto serial = make_sim(s, 1, /*tabulated=*/true);
  auto threaded = make_sim(s, GetParam(), /*tabulated=*/true);
  const double pe1 = serial.compute_forces();
  const double pen = threaded.compute_forces();
  EXPECT_EQ(pe1, pen);
  expect_bitwise_equal(serial, threaded, "single tabulated eval");
}

TEST_P(ThreadedForce, TrajectoryMatchesSerialBitwise) {
  const auto s = jittered_ta(32);
  auto serial = make_sim(s, 1, /*tabulated=*/true);
  auto threaded = make_sim(s, GetParam(), /*tabulated=*/true);
  const auto t1 = serial.run(12);
  const auto tn = threaded.run(12);
  EXPECT_EQ(t1.potential_energy, tn.potential_energy);
  EXPECT_EQ(t1.total_energy, tn.total_energy);
  EXPECT_EQ(t1.temperature, tn.temperature);
  expect_bitwise_equal(serial, threaded, "12-step tabulated trajectory");
}

TEST_P(ThreadedForce, AnalyticPathMatchesSerialBitwise) {
  const auto s = jittered_ta(33);
  auto serial = make_sim(s, 1, /*tabulated=*/false);
  auto threaded = make_sim(s, GetParam(), /*tabulated=*/false);
  const auto t1 = serial.run(5);
  const auto tn = threaded.run(5);
  EXPECT_EQ(t1.potential_energy, tn.potential_energy);
  expect_bitwise_equal(serial, threaded, "5-step analytic trajectory");
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, ThreadedForce,
                         ::testing::Values(2, 8),
                         [](const ::testing::TestParamInfo<int>& i) {
                           return "threads" + std::to_string(i.param);
                         });

}  // namespace
}  // namespace wsmd::md
