/// \file test_simd.cpp
/// Dispatch-layer contract and scalar/AVX2 kernel parity.
///
/// The SIMD tiers promise *bitwise* agreement (md/simd.hpp): the scalar
/// kernels execute the same lane-blocked expression trees the vector code
/// does, so every test here compares with EXPECT_EQ on floats — no
/// tolerances. Row lengths sweep across block boundaries (0, partial, one
/// block, block+tail, many blocks) to pin the masked remainder handling.
///
/// CI sets WSMD_EXPECT_TIER to assert that each matrix leg actually runs
/// the tier it was built for (avx2 legs must not silently fall back).

#include "md/simd.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/wse_md.hpp"
#include "eam/profile.hpp"
#include "eam/zhou.hpp"
#include "lattice/lattice.hpp"
#include "md/simulation.hpp"
#include "util/random.hpp"
#include "util/soa.hpp"

namespace wsmd::md {
namespace {

/// Restore the default dispatch no matter how a test exits.
struct TierGuard {
  ~TierGuard() { simd::clear_tier_override(); }
};

TEST(SimdDispatch, ScalarTierAlwaysAvailable) {
  EXPECT_TRUE(simd::tier_supported(simd::Tier::kScalar));
  EXPECT_TRUE(simd::tier_supported(simd::active_tier()));
  const simd::KernelTable& k = simd::kernels_for(simd::Tier::kScalar);
  EXPECT_NE(k.sieve_f64, nullptr);
  EXPECT_NE(k.rho_row_f64, nullptr);
  EXPECT_NE(k.force_row_f64, nullptr);
  EXPECT_NE(k.sieve_f32, nullptr);
  EXPECT_NE(k.rho_row_f32, nullptr);
  EXPECT_NE(k.force_row_f32, nullptr);
}

TEST(SimdDispatch, CompiledTierBoundsRuntimeTier) {
  EXPECT_LE(static_cast<int>(simd::runtime_tier()),
            static_cast<int>(simd::compiled_tier()));
}

TEST(SimdDispatch, MatchesExpectedTierFromEnv) {
  // CI matrix legs export WSMD_EXPECT_TIER (avx2 for SIMD builds on x86-64
  // runners, scalar for -DWSMD_SIMD=OFF builds) so a silent fallback to the
  // scalar path fails the leg instead of quietly passing it.
  const char* expect = std::getenv("WSMD_EXPECT_TIER");
  if (expect == nullptr) {
    GTEST_SKIP() << "WSMD_EXPECT_TIER not set";
  }
  EXPECT_STREQ(simd::tier_name(simd::active_tier()), expect);
}

TEST(SimdDispatch, OverrideForcesTier) {
  TierGuard guard;
  simd::set_tier_override(simd::Tier::kScalar);
  EXPECT_EQ(simd::active_tier(), simd::Tier::kScalar);
  EXPECT_EQ(&simd::kernels(), &simd::kernels_for(simd::Tier::kScalar));
  simd::clear_tier_override();
}

/// Randomized SoA neighborhood shared by the parity sweeps: positions in a
/// box periodic on x/y and open on z (exercises the inv_len = 0 branch-free
/// minimum image on a real open axis).
struct ParityFixture {
  static constexpr std::size_t kAtoms = 97;  // not a lane multiple
  Vec3dPlanes pos64;
  Vec3fPlanes pos32;
  std::vector<int> types;
  std::vector<std::uint32_t> candidates;
  std::vector<double> fprime64;
  std::vector<float> fprime32;
  simd::BoxF64 box64{{14.0, 14.0, 14.0}, {1.0 / 14.0, 1.0 / 14.0, 0.0}};
  simd::BoxF32 box32{{14.0f, 14.0f, 14.0f},
                     {1.0f / 14.0f, 1.0f / 14.0f, 0.0f}};

  ParityFixture() {
    Rng rng(421);
    pos64.resize(kAtoms);
    pos32.resize(kAtoms);
    types.assign(kAtoms, 0);
    fprime64.resize(kAtoms);
    fprime32.resize(kAtoms);
    for (std::size_t i = 0; i < kAtoms; ++i) {
      // Dense enough that a realistic fraction of candidates pass rc.
      const Vec3d r{rng.uniform() * 14.0, rng.uniform() * 14.0,
                    rng.uniform() * 14.0};
      pos64.set(i, r);
      pos32.set(i, Vec3f(r));
      fprime64[i] = rng.uniform() * 2.0 - 1.0;
      fprime32[i] = static_cast<float>(fprime64[i]);
      if (i > 0) candidates.push_back(static_cast<std::uint32_t>(i));
    }
  }
};

TEST(SimdParity, F64KernelsMatchScalarBitwise) {
  if (!simd::tier_supported(simd::Tier::kAvx2)) {
    GTEST_SKIP() << "AVX2 tier not compiled in or not supported by this CPU";
  }
  ParityFixture f;
  const auto pot = std::make_shared<eam::ZhouEam>("Ta");
  const eam::ProfileF64 prof(*pot);
  const auto raw = prof.raw();
  const double rc2 = pot->cutoff() * pot->cutoff();
  const simd::KernelTable& sc = simd::kernels_for(simd::Tier::kScalar);
  const simd::KernelTable& vx = simd::kernels_for(simd::Tier::kAvx2);

  // Row lengths across every remainder class of the 4-lane FP64 blocks.
  for (std::size_t count :
       {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{3},
        std::size_t{4}, std::size_t{5}, std::size_t{7}, std::size_t{8},
        std::size_t{13}, std::size_t{32}, std::size_t{96}}) {
    ASSERT_LE(count, f.candidates.size());
    const std::size_t cap = count + simd::kPadF64;
    std::vector<std::uint32_t> idx_a(cap), idx_b(cap);
    std::vector<double> dx_a(cap), dy_a(cap), dz_a(cap), r2_a(cap);
    std::vector<double> dx_b(cap), dy_b(cap), dz_b(cap), r2_b(cap);
    const Vec3d ri = f.pos64.get(0);
    const std::size_t na = sc.sieve_f64(
        f.pos64.x(), f.pos64.y(), f.pos64.z(), ri.x, ri.y, ri.z,
        f.candidates.data(), count, f.box64, rc2, idx_a.data(), dx_a.data(),
        dy_a.data(), dz_a.data(), r2_a.data());
    const std::size_t nb = vx.sieve_f64(
        f.pos64.x(), f.pos64.y(), f.pos64.z(), ri.x, ri.y, ri.z,
        f.candidates.data(), count, f.box64, rc2, idx_b.data(), dx_b.data(),
        dy_b.data(), dz_b.data(), r2_b.data());
    ASSERT_EQ(na, nb) << "sieve count diverged at row length " << count;
    for (std::size_t k = 0; k < na; ++k) {
      ASSERT_EQ(idx_a[k], idx_b[k]) << "row " << count << " entry " << k;
      ASSERT_EQ(dx_a[k], dx_b[k]) << "row " << count << " entry " << k;
      ASSERT_EQ(dy_a[k], dy_b[k]) << "row " << count << " entry " << k;
      ASSERT_EQ(dz_a[k], dz_b[k]) << "row " << count << " entry " << k;
      ASSERT_EQ(r2_a[k], r2_b[k]) << "row " << count << " entry " << k;
    }

    const double rho_a = sc.rho_row_f64(raw, f.types.data(), idx_a.data(),
                                        r2_a.data(), na);
    const double rho_b = vx.rho_row_f64(raw, f.types.data(), idx_b.data(),
                                        r2_b.data(), nb);
    EXPECT_EQ(rho_a, rho_b) << "rho diverged at row length " << count;

    for (const bool pairwise_only : {false, true}) {
      const auto acc_a = sc.force_row_f64(
          raw, f.types.data(), f.fprime64.data(), f.fprime64[0], 0,
          idx_a.data(), dx_a.data(), dy_a.data(), dz_a.data(), r2_a.data(),
          na, pairwise_only);
      const auto acc_b = vx.force_row_f64(
          raw, f.types.data(), f.fprime64.data(), f.fprime64[0], 0,
          idx_b.data(), dx_b.data(), dy_b.data(), dz_b.data(), r2_b.data(),
          nb, pairwise_only);
      EXPECT_EQ(acc_a.fx, acc_b.fx) << "row " << count;
      EXPECT_EQ(acc_a.fy, acc_b.fy) << "row " << count;
      EXPECT_EQ(acc_a.fz, acc_b.fz) << "row " << count;
      EXPECT_EQ(acc_a.phi, acc_b.phi) << "row " << count;
    }
  }
}

TEST(SimdParity, F32KernelsMatchScalarBitwise) {
  if (!simd::tier_supported(simd::Tier::kAvx2)) {
    GTEST_SKIP() << "AVX2 tier not compiled in or not supported by this CPU";
  }
  ParityFixture f;
  const auto pot = std::make_shared<eam::ZhouEam>("Ta");
  const eam::ProfileF32 prof(*pot);
  const auto raw = prof.raw();
  const auto rc2 = static_cast<float>(pot->cutoff() * pot->cutoff());
  const simd::KernelTable& sc = simd::kernels_for(simd::Tier::kScalar);
  const simd::KernelTable& vx = simd::kernels_for(simd::Tier::kAvx2);

  // Row lengths across every remainder class of the 8-lane FP32 blocks.
  for (std::size_t count :
       {std::size_t{0}, std::size_t{1}, std::size_t{3}, std::size_t{7},
        std::size_t{8}, std::size_t{9}, std::size_t{15}, std::size_t{16},
        std::size_t{17}, std::size_t{40}, std::size_t{96}}) {
    ASSERT_LE(count, f.candidates.size());
    const std::size_t cap = count + simd::kPadF32;
    std::vector<std::uint32_t> idx_a(cap), idx_b(cap);
    std::vector<float> r2_a(cap), r2_b(cap);
    const Vec3f ri = f.pos32.get(0);
    const std::size_t na =
        sc.sieve_f32(f.pos32.x(), f.pos32.y(), f.pos32.z(), ri.x, ri.y, ri.z,
                     f.candidates.data(), count, f.box32, rc2, idx_a.data(),
                     r2_a.data());
    const std::size_t nb =
        vx.sieve_f32(f.pos32.x(), f.pos32.y(), f.pos32.z(), ri.x, ri.y, ri.z,
                     f.candidates.data(), count, f.box32, rc2, idx_b.data(),
                     r2_b.data());
    ASSERT_EQ(na, nb) << "sieve count diverged at row length " << count;
    for (std::size_t k = 0; k < na; ++k) {
      ASSERT_EQ(idx_a[k], idx_b[k]) << "row " << count << " entry " << k;
      ASSERT_EQ(r2_a[k], r2_b[k]) << "row " << count << " entry " << k;
    }

    const float rho_a = sc.rho_row_f32(raw, f.types.data(), idx_a.data(),
                                       r2_a.data(), na);
    const float rho_b = vx.rho_row_f32(raw, f.types.data(), idx_b.data(),
                                       r2_b.data(), nb);
    EXPECT_EQ(rho_a, rho_b) << "rho diverged at row length " << count;

    for (const bool pairwise_only : {false, true}) {
      const auto acc_a = sc.force_row_f32(
          raw, f.pos32.x(), f.pos32.y(), f.pos32.z(), ri.x, ri.y, ri.z,
          f.box32, f.types.data(), f.fprime32.data(), f.fprime32[0], 0,
          idx_a.data(), na, pairwise_only);
      const auto acc_b = vx.force_row_f32(
          raw, f.pos32.x(), f.pos32.y(), f.pos32.z(), ri.x, ri.y, ri.z,
          f.box32, f.types.data(), f.fprime32.data(), f.fprime32[0], 0,
          idx_b.data(), nb, pairwise_only);
      EXPECT_EQ(acc_a.fx, acc_b.fx) << "row " << count;
      EXPECT_EQ(acc_a.fy, acc_b.fy) << "row " << count;
      EXPECT_EQ(acc_a.fz, acc_b.fz) << "row " << count;
      EXPECT_EQ(acc_a.phi, acc_b.phi) << "row " << count;
    }
  }
}

lattice::Structure small_ta(unsigned seed) {
  const auto p = eam::zhou_parameters("Ta");
  auto s = lattice::replicate(
      lattice::UnitCell::of(p.structure, p.lattice_constant()), 4, 4, 4, 0,
      {true, true, true});
  Rng rng(seed);
  for (auto& r : s.positions) r += rng.gaussian_vec3(0.05);
  return s;
}

TEST(SimdParity, ReferenceForcesMatchAcrossTiersBitwise) {
  if (!simd::tier_supported(simd::Tier::kAvx2)) {
    GTEST_SKIP() << "AVX2 tier not compiled in or not supported by this CPU";
  }
  TierGuard guard;
  const auto s = small_ta(7);
  Simulation sim(AtomSystem(s, std::make_shared<eam::ZhouEam>("Ta")));

  simd::set_tier_override(simd::Tier::kScalar);
  const double pe_scalar = sim.compute_forces();
  const auto f_scalar = sim.system().forces().to_aos();

  simd::set_tier_override(simd::Tier::kAvx2);
  const double pe_avx2 = sim.compute_forces();
  const auto f_avx2 = sim.system().forces().to_aos();

  EXPECT_EQ(pe_scalar, pe_avx2);
  for (std::size_t i = 0; i < f_scalar.size(); ++i) {
    EXPECT_EQ(f_scalar[i].x, f_avx2[i].x) << "atom " << i;
    EXPECT_EQ(f_scalar[i].y, f_avx2[i].y) << "atom " << i;
    EXPECT_EQ(f_scalar[i].z, f_avx2[i].z) << "atom " << i;
  }
}

TEST(SimdParity, WaferTrajectoryMatchesAcrossTiersBitwise) {
  if (!simd::tier_supported(simd::Tier::kAvx2)) {
    GTEST_SKIP() << "AVX2 tier not compiled in or not supported by this CPU";
  }
  TierGuard guard;
  const auto p = eam::zhou_parameters("Ta");
  const auto s = lattice::replicate(
      lattice::UnitCell::of(p.structure, p.lattice_constant()), 5, 5, 3, 0,
      {false, false, false});
  core::WseMdConfig cfg;
  cfg.mapping.cell_size = p.lattice_constant();
  const auto pot =
      std::make_shared<eam::ZhouEam>("Ta", p.paper_cutoff());

  const auto run_under = [&](simd::Tier tier) {
    simd::set_tier_override(tier);
    core::WseMd eng(s, pot, cfg);
    Rng rng(11);
    eng.thermalize(120.0, rng);
    eng.run(5);
    return std::make_pair(eng.positions(), eng.potential_energy());
  };
  const auto [r_scalar, pe_scalar] = run_under(simd::Tier::kScalar);
  const auto [r_avx2, pe_avx2] = run_under(simd::Tier::kAvx2);

  EXPECT_EQ(pe_scalar, pe_avx2);
  ASSERT_EQ(r_scalar.size(), r_avx2.size());
  for (std::size_t i = 0; i < r_scalar.size(); ++i) {
    EXPECT_EQ(r_scalar[i].x, r_avx2[i].x) << "atom " << i;
    EXPECT_EQ(r_scalar[i].y, r_avx2[i].y) << "atom " << i;
    EXPECT_EQ(r_scalar[i].z, r_avx2[i].z) << "atom " << i;
  }
}

}  // namespace
}  // namespace wsmd::md
