/// \file test_snapshot_restore.cpp
/// Engine::snapshot()/restore(): the checkpoint/restart contract at the
/// engine layer. A snapshot restored into a fresh engine of the same
/// backend over the same structure must continue the trajectory *bitwise*
/// — positions, velocities, and thermo identical to the uninterrupted run
/// at every later step. That must survive the hard cases: a Verlet-list
/// rebuild landing after the restore point (reference), an atom-swap
/// mutated core mapping (wafer), and re-sharding onto a different thread
/// count (a serial-wafer snapshot restored into sharded:N and vice versa).

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "eam/zhou.hpp"
#include "engine/engine.hpp"
#include "engine/sharded_wafer.hpp"
#include "lattice/lattice.hpp"
#include "util/error.hpp"

namespace wsmd::engine {
namespace {

struct Fixture {
  lattice::Structure structure;
  eam::EamPotentialPtr potential;
  EngineConfig config;

  explicit Fixture(int swap_interval = 0) {
    const auto p = eam::zhou_parameters("Cu");
    structure = lattice::replicate(
        lattice::UnitCell::of(p.structure, p.lattice_constant()), 4, 4, 3);
    potential = std::make_shared<eam::ZhouEam>("Cu", p.paper_cutoff());
    config.wafer.mapping.cell_size = p.lattice_constant();
    config.wafer.swap_interval = swap_interval;
    config.threads = 3;
  }
};

void expect_bitwise_equal(Engine& a, Engine& b, const std::string& label) {
  EXPECT_EQ(a.step_count(), b.step_count()) << label;
  const auto pa = a.positions(), pb = b.positions();
  const auto va = a.velocities(), vb = b.velocities();
  ASSERT_EQ(pa.size(), pb.size()) << label;
  for (std::size_t i = 0; i < pa.size(); ++i) {
    for (std::size_t ax = 0; ax < 3; ++ax) {
      ASSERT_EQ(pa[i][ax], pb[i][ax]) << label << ": atom " << i;
      ASSERT_EQ(va[i][ax], vb[i][ax]) << label << ": atom " << i;
    }
  }
  const auto ta = a.thermo(), tb = b.thermo();
  EXPECT_EQ(ta.potential_energy, tb.potential_energy) << label;
  EXPECT_EQ(ta.kinetic_energy, tb.kinetic_energy) << label;
  EXPECT_EQ(ta.temperature, tb.temperature) << label;
}

/// Run `total` steps uninterrupted; in parallel, snapshot a twin at
/// `snapshot_at`, restore into a *fresh* engine, and finish there. Both
/// must agree bitwise at the end (and at every step via thermo).
void check_restart_parity(Backend backend, int swap_interval,
                          const std::string& label) {
  Fixture f(swap_interval);
  const long snapshot_at = 9, total = 25;

  auto straight = make_engine(backend, f.structure, f.potential, f.config);
  Rng rng1(777);
  straight->thermalize(320.0, rng1);
  straight->run(total);

  auto first = make_engine(backend, f.structure, f.potential, f.config);
  Rng rng2(777);
  first->thermalize(320.0, rng2);
  first->run(snapshot_at);
  const State snap = first->snapshot();
  EXPECT_EQ(snap.step, snapshot_at) << label;
  first.reset();  // the "kill": the original process is gone

  auto resumed = make_engine(backend, f.structure, f.potential, f.config);
  resumed->restore(snap);
  EXPECT_EQ(resumed->step_count(), snapshot_at) << label;
  resumed->run(total - snapshot_at);

  expect_bitwise_equal(*straight, *resumed, label);
}

TEST(SnapshotRestore, ReferenceContinuesBitwise) {
  check_restart_parity(Backend::kReference, 0, "reference");
}

TEST(SnapshotRestore, WaferContinuesBitwise) {
  check_restart_parity(Backend::kWafer, 0, "wafer");
}

TEST(SnapshotRestore, ShardedContinuesBitwise) {
  check_restart_parity(Backend::kShardedWafer, 0, "sharded");
}

TEST(SnapshotRestore, WaferWithAtomSwapsRestoresTheMutatedMapping) {
  // swap_interval 4 fires swaps both before and after the restore point —
  // the mapping the checkpoint carries is not the constructed one.
  check_restart_parity(Backend::kWafer, 4, "wafer+swaps");
  check_restart_parity(Backend::kShardedWafer, 4, "sharded+swaps");
}

TEST(SnapshotRestore, SerialWaferSnapshotReshardsBitwise) {
  // The sharded-restore guarantee: a serial-wafer snapshot restored into
  // sharded:N (re-sharded across threads) continues bitwise identical to
  // the serial engine, extending the existing sharded-parity invariant to
  // restarts. And the reverse direction, for completeness.
  Fixture f(/*swap_interval=*/5);
  const long snapshot_at = 10, total = 24;

  auto serial = make_engine(Backend::kWafer, f.structure, f.potential,
                            f.config);
  Rng rng(2024);
  serial->thermalize(300.0, rng);
  serial->run(snapshot_at);
  const State snap = serial->snapshot();
  serial->run(total - snapshot_at);

  for (const int threads : {1, 2, 4}) {
    EngineConfig config = f.config;
    config.threads = threads;
    auto sharded = make_engine(Backend::kShardedWafer, f.structure,
                               f.potential, config);
    sharded->restore(snap);
    sharded->run(total - snapshot_at);
    expect_bitwise_equal(*serial, *sharded,
                         "serial->sharded:" + std::to_string(threads));
  }

  // Sharded snapshot back onto the serial engine.
  auto sharded = make_engine(Backend::kShardedWafer, f.structure,
                             f.potential, f.config);
  Rng rng2(2024);
  sharded->thermalize(300.0, rng2);
  sharded->run(snapshot_at);
  const State snap2 = sharded->snapshot();
  auto serial2 = make_engine(Backend::kWafer, f.structure, f.potential,
                             f.config);
  serial2->restore(snap2);
  serial2->run(total - snapshot_at);
  expect_bitwise_equal(*serial, *serial2, "sharded->serial");
}

TEST(SnapshotRestore, SnapshotIsValidBeforeAnyStep) {
  Fixture f;
  for (const Backend backend :
       {Backend::kReference, Backend::kWafer, Backend::kShardedWafer}) {
    auto a = make_engine(backend, f.structure, f.potential, f.config);
    const State snap = a->snapshot();
    EXPECT_EQ(snap.step, 0);
    auto b = make_engine(backend, f.structure, f.potential, f.config);
    b->restore(snap);
    expect_bitwise_equal(*a, *b, "pre-step snapshot");
  }
}

TEST(SnapshotRestore, RejectsAtomCountMismatch) {
  Fixture f;
  const auto p = eam::zhou_parameters("Cu");
  const auto small = lattice::replicate(
      lattice::UnitCell::of(p.structure, p.lattice_constant()), 2, 2, 2);
  for (const Backend backend :
       {Backend::kReference, Backend::kWafer, Backend::kShardedWafer}) {
    auto big = make_engine(backend, f.structure, f.potential, f.config);
    auto tiny = make_engine(backend, small, f.potential, f.config);
    EXPECT_THROW(tiny->restore(big->snapshot()), wsmd::Error)
        << "backend accepted a snapshot of a different structure";
  }
}

TEST(SnapshotRestore, SetPositionsRoundTripsThroughTheSurface) {
  Fixture f;
  for (const Backend backend :
       {Backend::kReference, Backend::kWafer, Backend::kShardedWafer}) {
    auto eng = make_engine(backend, f.structure, f.potential, f.config);
    auto shifted = eng->positions();
    for (auto& r : shifted) r = r + Vec3d{0.05, -0.03, 0.02};
    eng->set_positions(shifted);
    const auto got = eng->positions();
    for (std::size_t i = 0; i < got.size(); ++i) {
      for (std::size_t ax = 0; ax < 3; ++ax) {
        // Wafer backends round through FP32 — that rounding is the stored
        // state, and positions() widens it exactly.
        const double expect =
            backend == Backend::kReference
                ? shifted[i][ax]
                : static_cast<double>(static_cast<float>(shifted[i][ax]));
        ASSERT_EQ(got[i][ax], expect) << "atom " << i;
      }
    }
  }
}

}  // namespace
}  // namespace wsmd::engine
