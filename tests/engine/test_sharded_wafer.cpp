/// \file test_sharded_wafer.cpp
/// Sharded/serial parity: the ShardedWafer backend must reproduce the
/// serial core::WseMd trajectory *bitwise* (FP32 state, FP64 reductions)
/// at any thread count, including atom-swap steps and shard counts
/// exceeding the grid height. Also covers the per-shard accounting and the
/// modeled halo-exchange cost.

#include "engine/sharded_wafer.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>

#include "eam/zhou.hpp"
#include "lattice/lattice.hpp"

namespace wsmd::engine {
namespace {

struct Fixture {
  lattice::Structure structure;
  eam::EamPotentialPtr potential;

  explicit Fixture(std::array<bool, 3> pbc = {false, false, false}) {
    const auto p = eam::zhou_parameters("Ta");
    structure = lattice::replicate(
        lattice::UnitCell::of(p.structure, p.lattice_constant()), 6, 6, 4, 0,
        pbc);
    potential = std::make_shared<eam::ZhouEam>("Ta", p.paper_cutoff());
  }

  core::WseMdConfig config() const {
    core::WseMdConfig cfg;
    cfg.mapping.cell_size = eam::zhou_parameters("Ta").lattice_constant();
    return cfg;
  }
};

/// Exact comparison: positions()/velocities() widen FP32 state exactly, so
/// double == iff the underlying floats are bitwise equal.
void expect_identical_state(const core::WseMd& serial, const core::WseMd& sharded) {
  const auto rp = serial.positions();
  const auto sp = sharded.positions();
  const auto rv = serial.velocities();
  const auto sv = sharded.velocities();
  ASSERT_EQ(rp.size(), sp.size());
  for (std::size_t i = 0; i < rp.size(); ++i) {
    EXPECT_EQ(rp[i].x, sp[i].x) << "atom " << i;
    EXPECT_EQ(rp[i].y, sp[i].y) << "atom " << i;
    EXPECT_EQ(rp[i].z, sp[i].z) << "atom " << i;
    EXPECT_EQ(rv[i].x, sv[i].x) << "atom " << i;
    EXPECT_EQ(rv[i].y, sv[i].y) << "atom " << i;
    EXPECT_EQ(rv[i].z, sv[i].z) << "atom " << i;
  }
  EXPECT_EQ(serial.potential_energy(), sharded.potential_energy());
  EXPECT_EQ(serial.kinetic_energy(), sharded.kinetic_energy());
}

class ThreadParity : public ::testing::TestWithParam<int> {};

TEST_P(ThreadParity, BitwiseMatchesSerialOver100Steps) {
  const int threads = GetParam();
  Fixture f;

  core::WseMd serial(f.structure, f.potential, f.config());
  ShardedWaferConfig scfg;
  scfg.wse = f.config();
  scfg.threads = threads;
  ShardedWafer sharded(f.structure, f.potential, scfg);
  EXPECT_EQ(sharded.threads(), threads);

  Rng rng_a(2024), rng_b(2024);
  serial.thermalize(290.0, rng_a);
  sharded.thermalize(290.0, rng_b);

  const int steps = 100;
  const auto serial_stats = serial.run(steps);
  const auto sharded_thermo = sharded.run(steps);

  expect_identical_state(serial, sharded.wafer());
  EXPECT_EQ(sharded_thermo.step, steps);

  // The reduced accounting matches too: same cycles, same reduction order.
  const auto& sharded_stats = sharded.last_step_stats();
  EXPECT_EQ(serial_stats.max_cycles, sharded_stats.max_cycles);
  EXPECT_EQ(serial_stats.mean_cycles, sharded_stats.mean_cycles);
  EXPECT_EQ(serial_stats.stddev_cycles, sharded_stats.stddev_cycles);
  EXPECT_EQ(serial_stats.mean_candidates, sharded_stats.mean_candidates);
  EXPECT_EQ(serial_stats.mean_interactions, sharded_stats.mean_interactions);
}

TEST_P(ThreadParity, ScrambleAndSwapRecoveryMatchesSerial) {
  // Fig. 9 protocol: sub-optimal initial mapping, online swaps every step.
  // The swap phases (parallel select, serial mutual commit) must make the
  // same remapping decisions at every thread count.
  const int threads = GetParam();
  Fixture f;

  core::WseMdConfig cfg = f.config();
  cfg.mapping.refine_rounds = 0;
  cfg.swap_interval = 1;
  cfg.b_override = 6;  // slack for the scrambled mapping

  core::WseMd serial(f.structure, f.potential, cfg);
  ShardedWaferConfig scfg;
  scfg.wse = cfg;
  scfg.threads = threads;
  ShardedWafer sharded(f.structure, f.potential, scfg);

  Rng scramble_a(99), scramble_b(99);
  serial.scramble_mapping(scramble_a, 200);
  sharded.wafer().scramble_mapping(scramble_b, 200);
  Rng rng_a(7), rng_b(7);
  serial.thermalize(150.0, rng_a);
  sharded.thermalize(150.0, rng_b);

  serial.run(100);
  sharded.run(100);

  expect_identical_state(serial, sharded.wafer());
  EXPECT_EQ(serial.assignment_cost(), sharded.wafer().assignment_cost());
  // The mapping itself recovered identically.
  for (std::size_t i = 0; i < serial.atom_count(); ++i) {
    EXPECT_EQ(serial.mapping().core_of(i), sharded.wafer().mapping().core_of(i))
        << "atom " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadParity, ::testing::Values(1, 2, 4),
                         [](const ::testing::TestParamInfo<int>& i) {
                           // snprintf instead of string concatenation: the
                           // latter trips a g++-12 -Wrestrict false positive.
                           char name[16];
                           std::snprintf(name, sizeof name, "t%d", i.param);
                           return std::string(name);
                         });

TEST(ShardedWafer, MoreShardsThanGridRowsStillExact) {
  Fixture f;
  core::WseMd serial(f.structure, f.potential, f.config());
  ShardedWaferConfig scfg;
  scfg.wse = f.config();
  scfg.threads = 64;  // far more than grid rows: many empty shards
  ShardedWafer sharded(f.structure, f.potential, scfg);

  Rng a(5), b(5);
  serial.thermalize(290.0, a);
  sharded.thermalize(290.0, b);
  serial.run(10);
  sharded.run(10);
  expect_identical_state(serial, sharded.wafer());
}

TEST(ShardedWafer, ShardsTileTheGrid) {
  Fixture f;
  ShardedWaferConfig scfg;
  scfg.wse = f.config();
  scfg.threads = 3;
  ShardedWafer sharded(f.structure, f.potential, scfg);

  const auto& shards = sharded.shards();
  ASSERT_EQ(shards.size(), 3u);
  const int h = sharded.wafer().mapping().grid_height();
  int covered = 0;
  for (std::size_t t = 0; t < shards.size(); ++t) {
    EXPECT_EQ(shards[t].x0, 0);
    EXPECT_EQ(shards[t].x1, sharded.wafer().mapping().grid_width());
    if (t > 0) {
      EXPECT_EQ(shards[t].y0, shards[t - 1].y1);
    }
    covered += shards[t].y1 - shards[t].y0;
  }
  EXPECT_EQ(shards.front().y0, 0);
  EXPECT_EQ(shards.back().y1, h);
  EXPECT_EQ(covered, h);
}

TEST(ShardedWafer, ShardStatsReduceToGlobalStats) {
  Fixture f;
  ShardedWaferConfig scfg;
  scfg.wse = f.config();
  scfg.threads = 4;
  ShardedWafer sharded(f.structure, f.potential, scfg);
  Rng rng(11);
  sharded.thermalize(290.0, rng);
  sharded.step();

  const auto& global = sharded.last_step_stats();
  double max_cycles = 0.0;
  for (const auto& s : sharded.shard_stats()) {
    max_cycles = std::max(max_cycles, s.max_cycles);
    if (s.mean_cycles > 0.0) {
      EXPECT_GE(global.max_cycles, s.max_cycles);
    }
  }
  EXPECT_EQ(global.max_cycles, max_cycles);
}

TEST(ShardedWafer, HaloCostChargedPerShard) {
  Fixture f;
  ShardedWaferConfig one;
  one.wse = f.config();
  one.threads = 1;
  ShardedWafer serial(f.structure, f.potential, one);
  EXPECT_EQ(serial.halo_cycles_per_step(), 0.0);

  ShardedWaferConfig four = one;
  four.threads = 4;
  ShardedWafer sharded(f.structure, f.potential, four);
  EXPECT_GT(sharded.halo_cycles_per_step(), 0.0);

  // More shards -> more internal boundary -> more halo cost.
  ShardedWaferConfig eight = one;
  eight.threads = 8;
  ShardedWafer finer(f.structure, f.potential, eight);
  EXPECT_GT(finer.halo_cycles_per_step(), sharded.halo_cycles_per_step());
}

TEST(CostModelHalo, GhostRegionArithmetic) {
  const auto model = wse::CostModel::paper_baseline();
  // Free-standing 10x10 shard, b=1: ghost ring = 12*12 - 10*10 = 44 cores.
  const double cycles = model.halo_exchange_cycles(10, 10, 1);
  const double expected_ns = 44.0 * model.components().mcast_per_candidate;
  EXPECT_NEAR(cycles, expected_ns * model.clock_ghz(), 1e-9);
  EXPECT_NEAR(cycles, 44.0 * model.ghost_core_cycles(), 1e-9);
  // b=0 halo is empty.
  EXPECT_EQ(model.halo_exchange_cycles(10, 10, 0), 0.0);
}

TEST(ShardedWafer, HaloClippedToPhysicalGrid) {
  // Two row strips: the only real boundary is the shared edge, so the
  // charged ghost cores are exactly the 2b-deep bands either side of it
  // (x2 for the two exchanges per step) — halo cores hanging off the grid
  // edges are not billed.
  Fixture f;
  ShardedWaferConfig cfg;
  cfg.wse = f.config();
  cfg.threads = 2;
  ShardedWafer sharded(f.structure, f.potential, cfg);
  const int w = sharded.wafer().mapping().grid_width();
  const int b = sharded.wafer().b();
  const auto& model = sharded.wafer().config().cost_model;
  const double expected =
      2.0 * 2.0 * static_cast<double>(w) * b * model.ghost_core_cycles();
  EXPECT_NEAR(sharded.halo_cycles_per_step(), expected, 1e-9);
}

}  // namespace
}  // namespace wsmd::engine
