/// \file test_engine.cpp
/// The unified Engine interface: adapters report consistent state with the
/// engines they wrap, the per-step callback contract matches
/// md::Simulation::run, and the FP64/FP32 backends stay physically
/// equivalent when driven through the common surface.

#include "engine/engine.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "eam/zhou.hpp"
#include "engine/reference_engine.hpp"
#include "engine/sharded_wafer.hpp"
#include "engine/wafer_engine.hpp"
#include "lattice/lattice.hpp"

namespace wsmd::engine {
namespace {

struct Fixture {
  lattice::Structure structure;
  eam::EamPotentialPtr potential;
  EngineConfig config;

  Fixture() {
    const auto p = eam::zhou_parameters("Ta");
    structure = lattice::replicate(
        lattice::UnitCell::of(p.structure, p.lattice_constant()), 5, 5, 3);
    potential = std::make_shared<eam::ZhouEam>("Ta", p.paper_cutoff());
    config.wafer.mapping.cell_size = p.lattice_constant();
    config.threads = 2;
  }
};

TEST(EngineFactory, BuildsEveryBackend) {
  Fixture f;
  const auto ref =
      make_engine(Backend::kReference, f.structure, f.potential, f.config);
  const auto wafer =
      make_engine(Backend::kWafer, f.structure, f.potential, f.config);
  const auto sharded =
      make_engine(Backend::kShardedWafer, f.structure, f.potential, f.config);

  EXPECT_STREQ(ref->backend_name(), "reference-fp64");
  EXPECT_STREQ(wafer->backend_name(), "wafer-serial");
  EXPECT_STREQ(sharded->backend_name(), "sharded-wafer");
  for (const Engine* e :
       {ref.get(), wafer.get(), sharded.get()}) {
    EXPECT_EQ(e->atom_count(), f.structure.size());
    EXPECT_EQ(e->step_count(), 0);
    EXPECT_EQ(e->positions().size(), f.structure.size());
  }
  EXPECT_EQ(dynamic_cast<ShardedWafer*>(sharded.get())->threads(), 2);
}

TEST(EngineInterface, CallbackFiresEveryStepOnEveryBackend) {
  Fixture f;
  for (const Backend backend :
       {Backend::kReference, Backend::kWafer, Backend::kShardedWafer}) {
    const auto engine =
        make_engine(backend, f.structure, f.potential, f.config);
    Rng rng(41);
    engine->thermalize(200.0, rng);
    long fired = 0;
    long last_step = -1;
    const auto final_thermo = engine->run(7, [&](const Thermo& t) {
      ++fired;
      EXPECT_GT(t.step, last_step) << engine->backend_name();
      last_step = t.step;
      EXPECT_TRUE(std::isfinite(t.total_energy));
    });
    EXPECT_EQ(fired, 7) << engine->backend_name();
    EXPECT_EQ(last_step, 7) << engine->backend_name();
    EXPECT_EQ(final_thermo.step, 7) << engine->backend_name();
    EXPECT_EQ(engine->step_count(), 7) << engine->backend_name();
  }
}

TEST(EngineInterface, ThermoIsConsistentAcrossBackends) {
  // The same crystal at rest: potential energies agree to FP32 tolerance
  // before any stepping (thermo is valid from construction).
  Fixture f;
  const auto ref =
      make_engine(Backend::kReference, f.structure, f.potential, f.config);
  const auto e_ref = ref->thermo().potential_energy;
  for (const Backend backend : {Backend::kWafer, Backend::kShardedWafer}) {
    auto engine = make_engine(backend, f.structure, f.potential, f.config);
    engine->step();  // wafer engines evaluate energy during the step
    EXPECT_NEAR(engine->thermo().potential_energy, e_ref,
                1e-4 * std::fabs(e_ref) + 1e-6)
        << engine->backend_name();
  }
}

TEST(EngineInterface, WaferTracksReferenceThroughCommonSurface) {
  // The central equivalence claim, exercised through the Engine interface:
  // identical initial velocities -> trajectories agree to FP32 tolerance.
  Fixture f;
  auto ref = make_engine(Backend::kReference, f.structure, f.potential,
                         f.config);
  auto sharded = make_engine(Backend::kShardedWafer, f.structure, f.potential,
                             f.config);
  Rng rng(99);
  ref->thermalize(290.0, rng);
  sharded->set_velocities(ref->velocities());

  ref->run(15);
  sharded->run(15);

  const auto rp = ref->positions();
  const auto sp = sharded->positions();
  double max_err = 0.0;
  for (std::size_t i = 0; i < rp.size(); ++i) {
    max_err = std::max(max_err, norm(rp[i] - sp[i]));
  }
  EXPECT_LT(max_err, 5e-3);
}

TEST(ReferenceEngine, MatchesUnderlyingSimulation) {
  Fixture f;
  ReferenceEngine engine(f.structure, f.potential);
  Rng rng(3);
  engine.thermalize(250.0, rng);
  engine.run(5);
  const auto t = engine.thermo();
  const auto s = engine.simulation().thermo();
  EXPECT_EQ(t.step, s.step);
  EXPECT_EQ(t.potential_energy, s.potential_energy);
  EXPECT_EQ(t.kinetic_energy, s.kinetic_energy);
  EXPECT_EQ(t.temperature, s.temperature);
}

TEST(WaferEngine, ExposesModeledAccounting) {
  Fixture f;
  WaferEngine engine(f.structure, f.potential, f.config.wafer);
  engine.step();
  const auto& stats = engine.last_step_stats();
  EXPECT_EQ(stats.step, 1);
  EXPECT_GT(stats.max_cycles, 0.0);
  EXPECT_GT(stats.wall_seconds, 0.0);
  EXPECT_GT(engine.wafer().elapsed_seconds(), 0.0);
}

TEST(EngineInterface, VelocityTransferRoundTrips) {
  Fixture f;
  auto a = make_engine(Backend::kWafer, f.structure, f.potential, f.config);
  auto b = make_engine(Backend::kShardedWafer, f.structure, f.potential,
                       f.config);
  Rng rng(17);
  a->thermalize(290.0, rng);
  b->set_velocities(a->velocities());
  const auto va = a->velocities();
  const auto vb = b->velocities();
  for (std::size_t i = 0; i < va.size(); ++i) {
    EXPECT_EQ(va[i].x, vb[i].x);
    EXPECT_EQ(va[i].y, vb[i].y);
    EXPECT_EQ(va[i].z, vb[i].z);
  }
}

}  // namespace
}  // namespace wsmd::engine
