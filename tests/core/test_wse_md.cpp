#include "core/wse_md.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "eam/zhou.hpp"
#include "lattice/lattice.hpp"
#include "md/simulation.hpp"

namespace wsmd::core {
namespace {

/// Small Ta slab with the paper-workload (short) cutoff so candidate
/// neighborhoods stay compact.
struct Fixture {
  lattice::Structure structure;
  eam::EamPotentialPtr potential;

  explicit Fixture(int reps_xy = 6, int reps_z = 4,
                   std::array<bool, 3> pbc = {false, false, false}) {
    const auto p = eam::zhou_parameters("Ta");
    structure = lattice::replicate(
        lattice::UnitCell::of(p.structure, p.lattice_constant()), reps_xy,
        reps_xy, reps_z, 0, pbc);
    potential = std::make_shared<eam::ZhouEam>("Ta", p.paper_cutoff());
  }

  WseMdConfig config() const {
    WseMdConfig cfg;
    cfg.mapping.cell_size = eam::zhou_parameters("Ta").lattice_constant();
    return cfg;
  }
};

/// Fully periodic bulk fixture: no surfaces, so a perfect crystal is a
/// true equilibrium and NVE energy is sharply conserved.
Fixture periodic_fixture() { return Fixture(6, 4, {true, true, true}); }

TEST(WseMd, ConstructsWithDerivedNeighborhood) {
  Fixture f;
  WseMd engine(f.structure, f.potential, f.config());
  EXPECT_GE(engine.b(), 2);
  EXPECT_LE(engine.b(), 6);
  EXPECT_EQ(engine.atom_count(), f.structure.size());
}

TEST(WseMd, PerfectLatticeStaysPut) {
  // Periodic bulk: zero net force on every site (open slabs would relax
  // their surfaces, which is physics, not error).
  Fixture f = periodic_fixture();
  WseMd engine(f.structure, f.potential, f.config());
  const auto r0 = engine.positions();
  engine.run(30);
  const auto r1 = engine.positions();
  for (std::size_t i = 0; i < r0.size(); ++i) {
    // FP32 forces on a perfect lattice are ~1e-6 eV/A of rounding noise.
    EXPECT_NEAR(norm(f.structure.box.minimum_image(r1[i], r0[i])), 0.0, 1e-3)
        << "atom " << i;
  }
}

TEST(WseMd, MatchesReferenceEngineTrajectory) {
  // The central equivalence claim: the wafer-mapped algorithm reproduces
  // the reference FP64 engine's trajectory to FP32 tolerance.
  Fixture f;
  md::AtomSystem ref_sys(f.structure, f.potential);
  Rng rng(2024);
  ref_sys.thermalize(290.0, rng);
  const auto v0 = ref_sys.velocities().to_aos();

  md::Simulation ref(std::move(ref_sys));
  WseMd wse(f.structure, f.potential, f.config());
  wse.set_velocities(v0);

  const int steps = 20;
  ref.run(steps);
  wse.run(steps);

  const auto rp = ref.system().positions().to_aos();
  const auto wp = wse.positions();
  double max_err = 0.0;
  for (std::size_t i = 0; i < rp.size(); ++i) {
    max_err = std::max(max_err, norm(rp[i] - wp[i]));
  }
  // 20 steps of FP32 vs FP64: discrepancy should be far below thermal
  // displacements (~0.1 A) — otherwise the neighborhood missed a pair.
  EXPECT_LT(max_err, 5e-3) << "WSE trajectory diverged from reference";
}

TEST(WseMd, PotentialEnergyMatchesReference) {
  Fixture f;
  md::AtomSystem ref_sys(f.structure, f.potential);
  md::Simulation ref(std::move(ref_sys));
  const double e_ref = ref.compute_forces();

  WseMd wse(f.structure, f.potential, f.config());
  wse.step();  // evaluates energy along the way
  EXPECT_NEAR(wse.potential_energy(), e_ref,
              1e-4 * std::fabs(e_ref) + 1e-6);
}

TEST(WseMd, StepStatsAreSane) {
  Fixture f;
  WseMd engine(f.structure, f.potential, f.config());
  const auto stats = engine.step();
  const double full = wse::CostModel::candidates_for_b(engine.b());
  EXPECT_GT(stats.mean_candidates, 0.2 * full);  // clipped at surfaces
  EXPECT_LE(stats.mean_candidates, full);
  EXPECT_GT(stats.mean_interactions, 5.0);   // bulk Ta has 14
  EXPECT_LT(stats.mean_interactions, 15.0);
  EXPECT_GT(stats.wall_seconds, 0.0);
  EXPECT_GE(stats.max_cycles, stats.mean_cycles);
}

TEST(WseMd, CycleAccountingMatchesCostModel) {
  Fixture f;
  WseMdConfig cfg = f.config();
  WseMd engine(f.structure, f.potential, cfg);
  const auto stats = engine.step();
  // The slowest worker is a bulk atom with the full clipped neighborhood;
  // its cycles must equal the cost model at its counts (validated by
  // recomputing the model bound at the maximum possible counts).
  const double upper = cfg.cost_model.timestep_cycles(
      wse::CostModel::candidates_for_b(engine.b()), 14.0);
  EXPECT_LE(stats.max_cycles, upper + 1e-6);
}

TEST(WseMd, ThermalRunConservesEnergyApproximately) {
  Fixture f = periodic_fixture();
  WseMd engine(f.structure, f.potential, f.config());
  Rng rng(7);
  engine.thermalize(150.0, rng);
  engine.step();
  const double e0 = engine.potential_energy() + engine.kinetic_energy();
  engine.run(100);
  const double e1 = engine.potential_energy() + engine.kinetic_energy();
  // FP32 NVE: total energy fluctuates at the meV/atom scale but must not
  // blow up (a runaway indicates missed interactions).
  EXPECT_LT(std::fabs(e1 - e0),
            0.005 * static_cast<double>(engine.atom_count()));
}

TEST(WseMd, SwapsReduceAssignmentCostAfterScramble) {
  // Scramble the mapping, then let the online greedy swaps recover it —
  // the mechanism of paper Fig. 9.
  Fixture f;
  WseMdConfig cfg = f.config();
  cfg.mapping.refine_rounds = 0;
  cfg.swap_interval = 1;
  WseMd engine(f.structure, f.potential, cfg);

  // Scramble: swap random core pairs, then let swaps recover (T = 0, so
  // only the remapping changes anything).
  Rng rng(99);
  engine.scramble_mapping(rng, 200);
  const double scrambled_cost = engine.assignment_cost();
  engine.run(30);
  const double recovered_cost = engine.assignment_cost();
  EXPECT_LT(recovered_cost, scrambled_cost);
}

TEST(WseMd, SwapStatsReported) {
  Fixture f;
  WseMdConfig cfg = f.config();
  cfg.swap_interval = 5;
  WseMd engine(f.structure, f.potential, cfg);
  Rng rng(3);
  engine.thermalize(290.0, rng);
  int swapped_steps = 0;
  for (int k = 0; k < 10; ++k) {
    if (engine.step().swapped) ++swapped_steps;
  }
  EXPECT_EQ(swapped_steps, 2);  // steps 5 and 10
}

TEST(WseMd, MaxInplaneDisplacementGrowsWithTemperature) {
  Fixture f;
  WseMd engine(f.structure, f.potential, f.config());
  EXPECT_DOUBLE_EQ(engine.max_inplane_displacement(), 0.0);
  Rng rng(17);
  engine.thermalize(290.0, rng);
  engine.run(20);
  EXPECT_GT(engine.max_inplane_displacement(), 0.0);
  EXPECT_LT(engine.max_inplane_displacement(), 1.0);  // no runaway atoms
}

TEST(WseMd, ElapsedTimeAccumulates) {
  Fixture f;
  WseMd engine(f.structure, f.potential, f.config());
  engine.run(10);
  const double t10 = engine.elapsed_seconds();
  EXPECT_GT(t10, 0.0);
  engine.run(10);
  EXPECT_NEAR(engine.elapsed_seconds(), 2.0 * t10, 0.2 * t10);
}

TEST(WseMd, RunCallbackFiresEveryStep) {
  // Mirrors md::Simulation::run(n, callback) so the two engines can be
  // driven identically.
  Fixture f;
  WseMd engine(f.structure, f.potential, f.config());
  int fired = 0;
  long last_step = 0;
  const auto final_stats = engine.run(6, [&](const WseStepStats& s) {
    ++fired;
    EXPECT_EQ(s.step, last_step + 1);
    last_step = s.step;
    EXPECT_GT(s.max_cycles, 0.0);
  });
  EXPECT_EQ(fired, 6);
  EXPECT_EQ(final_stats.step, 6);
  EXPECT_EQ(engine.step_count(), 6);
}

TEST(WseMd, BOverrideRespected) {
  Fixture f;
  WseMdConfig cfg = f.config();
  cfg.b_override = 6;
  WseMd engine(f.structure, f.potential, cfg);
  EXPECT_EQ(engine.b(), 6);
}

TEST(WseMd, CandidateAndNeighborCountsIdenticalAcrossPotentialModes) {
  // The r² < rcut² accept test is the *same computation* on the analytic
  // and profiled paths — the sqrt/FP64-widening hoist moved all heavy work
  // behind the accept test, so which pairs interact cannot depend on the
  // evaluation mode. Pin it: identical state in, identical candidate and
  // neighbor counts out.
  Fixture f;
  WseMdConfig tab_cfg = f.config();
  tab_cfg.tabulated = true;
  WseMdConfig ana_cfg = f.config();
  ana_cfg.tabulated = false;
  WseMd tab(f.structure, f.potential, tab_cfg);
  WseMd ana(f.structure, f.potential, ana_cfg);
  ASSERT_NE(tab.profile(), nullptr);
  ASSERT_EQ(ana.profile(), nullptr);

  Rng rng(17);
  tab.thermalize(420.0, rng);
  ana.set_velocities(tab.velocities());

  const auto st = tab.step();
  const auto sa = ana.step();
  EXPECT_EQ(st.mean_candidates, sa.mean_candidates);
  EXPECT_EQ(st.mean_interactions, sa.mean_interactions);

  // Regression anchor for the accept test itself: the engine's accepted
  // count must equal an independent FP32 brute-force pair count at the
  // pre-step positions (the open slab needs no minimum image, and b is
  // wide enough that every in-range pair is a candidate).
  WseMd fresh(f.structure, f.potential, tab_cfg);
  fresh.set_velocities(std::vector<Vec3d>(f.structure.size(), Vec3d{}));
  const auto positions = fresh.positions();
  const auto rc2 =
      static_cast<float>(f.potential->cutoff() * f.potential->cutoff());
  std::size_t brute_pairs = 0;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const Vec3f ri(positions[i]);
    for (std::size_t j = 0; j < positions.size(); ++j) {
      if (i == j) continue;
      const Vec3f d = Vec3f(positions[j]) - ri;
      if (dot(d, d) < rc2) ++brute_pairs;
    }
  }
  const auto s0 = fresh.step();
  EXPECT_EQ(std::llround(s0.mean_interactions *
                         static_cast<double>(fresh.atom_count())),
            static_cast<long long>(brute_pairs));
}

TEST(WseMd, ProfiledEnergyTracksAnalyticEnergy) {
  // Cross-mode sanity at the engine level: same configuration, both
  // evaluation paths, energies within table-interpolation + FP32 noise.
  Fixture f = periodic_fixture();
  WseMdConfig tab_cfg = f.config();
  WseMdConfig ana_cfg = f.config();
  ana_cfg.tabulated = false;
  WseMd tab(f.structure, f.potential, tab_cfg);
  WseMd ana(f.structure, f.potential, ana_cfg);
  EXPECT_NEAR(tab.potential_energy(), ana.potential_energy(),
              1e-4 * std::fabs(ana.potential_energy()) + 1e-3);
}

}  // namespace
}  // namespace wsmd::core
