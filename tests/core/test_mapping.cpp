#include "core/mapping.hpp"

#include <gtest/gtest.h>

#include <set>

#include "eam/zhou.hpp"
#include "lattice/lattice.hpp"
#include "util/error.hpp"

namespace wsmd::core {
namespace {

TEST(FoldCellIndex, IsBijectionOntoInterleavedLine) {
  for (int n : {4, 5, 8, 9, 16, 261}) {
    std::set<int> seen;
    const int columns = 2 * ((n + 1) / 2);
    for (int c = 0; c < n; ++c) {
      const int k = fold_cell_index(c, n);
      EXPECT_GE(k, 0);
      EXPECT_LT(k, columns);
      EXPECT_TRUE(seen.insert(k).second) << "collision at c=" << c;
    }
  }
}

TEST(FoldCellIndex, RingNeighborsStayWithinTwoColumns) {
  // The property behind paper Fig. 5: "communicating workers are two hops
  // away instead of one hop" — ring-adjacent cells land at most 2 apart.
  for (int n : {4, 6, 8, 10, 12, 256}) {
    for (int c = 0; c < n; ++c) {
      const int next = (c + 1) % n;
      const int d = std::abs(fold_cell_index(c, n) - fold_cell_index(next, n));
      EXPECT_LE(d, 2) << "n=" << n << " c=" << c;
    }
  }
}

TEST(FoldCellIndex, WrapPairIsAdjacent) {
  // The two cells across the periodic wrap interleave to distance 1.
  for (int n : {4, 8, 12, 256}) {
    EXPECT_EQ(fold_cell_index(0, n), 0);
    EXPECT_EQ(fold_cell_index(n - 1, n), 1);
  }
}

TEST(FoldCellIndex, RejectsBadInput) {
  EXPECT_THROW(fold_cell_index(0, 0), Error);
  EXPECT_THROW(fold_cell_index(5, 5), Error);
  EXPECT_THROW(fold_cell_index(-1, 5), Error);
}

class TaMappingTest : public ::testing::Test {
 protected:
  TaMappingTest() {
    const auto p = eam::zhou_parameters("Ta");
    structure_ = lattice::replicate(
        lattice::UnitCell::of(p.structure, p.lattice_constant()), 10, 10, 6);
    MappingConfig cfg;
    cfg.cell_size = p.lattice_constant();
    mapping_ = AtomMapping::for_structure(structure_, cfg);
  }
  lattice::Structure structure_;
  AtomMapping mapping_;
};

TEST_F(TaMappingTest, OneAtomPerCore) {
  // Bijectivity: every atom has a core; no core holds two atoms.
  std::set<std::pair<int, int>> used;
  for (std::size_t i = 0; i < structure_.size(); ++i) {
    const CoreCoord c = mapping_.core_of(i);
    EXPECT_TRUE(used.insert({c.x, c.y}).second)
        << "core (" << c.x << "," << c.y << ") assigned twice";
    EXPECT_EQ(mapping_.atom_at(c.x, c.y), static_cast<long>(i));
  }
}

TEST_F(TaMappingTest, CoreGridIsLargerThanAtomCount) {
  // "the number of cores is slightly larger than the number of atoms"
  EXPECT_GE(mapping_.core_count(), structure_.size());
  EXPECT_LT(mapping_.core_count(), 2 * structure_.size());
}

TEST_F(TaMappingTest, AssignmentCostIsBounded) {
  // The per-column construction keeps every atom within its cell's block
  // footprint: cost well under two lattice constants.
  const double cost = mapping_.assignment_cost(structure_.positions);
  const double a = eam::zhou_parameters("Ta").lattice_constant();
  EXPECT_LT(cost, 2.0 * a);
  EXPECT_GT(cost, 0.0);
}

TEST_F(TaMappingTest, RequiredBCoversCutoffInteractions) {
  const double rcut = eam::zhou_parameters("Ta").paper_cutoff();
  const int b = mapping_.required_b(structure_.positions, rcut);
  // Paper Table I achieves b = 4 for Ta; our greedy mapping must land in
  // the same regime (a square neighborhood of <= 11x11).
  EXPECT_GE(b, 2);
  EXPECT_LE(b, 5);
}

TEST_F(TaMappingTest, RefineDoesNotWorsenCost) {
  const double before = mapping_.assignment_cost(structure_.positions);
  const double after = mapping_.refine(structure_.positions, 3);
  EXPECT_LE(after, before + 1e-12);
}

TEST_F(TaMappingTest, SwapAtomsKeepsInverseConsistent) {
  const CoreCoord a = mapping_.core_of(0);
  const CoreCoord b = mapping_.core_of(1);
  mapping_.swap_atoms(a, b);
  EXPECT_EQ(mapping_.core_of(0), b);
  EXPECT_EQ(mapping_.core_of(1), a);
  EXPECT_EQ(mapping_.atom_at(b.x, b.y), 0);
  EXPECT_EQ(mapping_.atom_at(a.x, a.y), 1);
}

TEST(Mapping, PaperScaleBlocksMatchCandidateRegime) {
  // Scaled-down paper slabs: the measured neighborhood radius b must be in
  // the regime of paper Table I (b=4 Ta; b=7 Cu/W) — small enough that
  // candidate counts stay within ~2x of the paper's 80/224.
  struct Case { const char* el; int b_paper; };
  for (const auto& c : {Case{"Ta", 4}, Case{"Cu", 7}, Case{"W", 7}}) {
    const auto s = lattice::paper_slab(c.el, 24);
    const auto p = eam::zhou_parameters(c.el);
    MappingConfig cfg;
    cfg.cell_size = p.lattice_constant();
    const auto m = AtomMapping::for_structure(s, cfg);
    const int b = m.required_b(s.positions, p.paper_cutoff());
    EXPECT_GE(b, c.b_paper - 2) << c.el;
    EXPECT_LE(b, c.b_paper + 2) << c.el;
  }
}

TEST(Mapping, FoldedPeriodicAxisKeepsWrapPairsLocal) {
  // Periodic x: atoms across the wrap must map to nearby cores (the whole
  // point of the Fig. 5 fold).
  const auto p = eam::zhou_parameters("Ta");
  auto s = lattice::replicate(
      lattice::UnitCell::of(p.structure, p.lattice_constant()), 12, 6, 4, 0,
      {true, false, false});
  MappingConfig cfg;
  cfg.cell_size = p.lattice_constant();
  cfg.fold_periodic = true;
  const auto m = AtomMapping::for_structure(s, cfg);

  // required_b with the periodic minimum image must stay small; without
  // the fold it would be ~the grid width.
  const int b = m.required_b(s.positions, p.paper_cutoff());
  EXPECT_LE(b, 11);  // roughly 2x the open-boundary radius plus slack
  EXPECT_GE(b, 1);
}

TEST(Mapping, FoldedBIsAboutTwiceOpenB) {
  // Paper Sec. III-E: folding doubles the fabric distance between logical
  // neighbors (two hops instead of one).
  const auto p = eam::zhou_parameters("Ta");
  const auto open = lattice::replicate(
      lattice::UnitCell::of(p.structure, p.lattice_constant()), 12, 6, 4, 0,
      {false, false, false});
  auto periodic = open;
  periodic.box.periodic = {true, false, false};

  MappingConfig cfg;
  cfg.cell_size = p.lattice_constant();
  const auto m_open = AtomMapping::for_structure(open, cfg);
  const auto m_fold = AtomMapping::for_structure(periodic, cfg);
  const int b_open = m_open.required_b(open.positions, p.paper_cutoff());
  const int b_fold = m_fold.required_b(periodic.positions, p.paper_cutoff());
  EXPECT_GT(b_fold, b_open);
  EXPECT_LE(b_fold, 2 * b_open + 3);
}

TEST(Mapping, EmptyStructureRejected) {
  lattice::Structure s;
  s.box = Box({0, 0, 0}, {1, 1, 1});
  EXPECT_THROW(AtomMapping::for_structure(s), Error);
}

TEST(Mapping, ChebyshevDistance) {
  EXPECT_EQ(chebyshev({0, 0}, {3, -4}), 4);
  EXPECT_EQ(chebyshev({2, 2}, {2, 2}), 0);
  EXPECT_EQ(chebyshev({-1, 5}, {1, 5}), 2);
}

}  // namespace
}  // namespace wsmd::core
