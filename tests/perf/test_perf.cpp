#include <gtest/gtest.h>

#include <cmath>

#include "perf/flop_model.hpp"
#include "perf/multiwafer.hpp"
#include "perf/timescale.hpp"
#include "perf/workload.hpp"
#include "util/error.hpp"

namespace wsmd::perf {
namespace {

TEST(Workload, TableIRows) {
  const auto cu = paper_workload("Cu");
  EXPECT_EQ(cu.repl_x * cu.repl_y * cu.repl_z * 4, 801792);
  EXPECT_EQ(cu.interactions, 42);
  EXPECT_EQ(cu.candidates, 224);
  EXPECT_EQ((2 * cu.b + 1) * (2 * cu.b + 1) - 1, cu.candidates);

  const auto ta = paper_workload("Ta");
  EXPECT_EQ(ta.repl_x * ta.repl_y * ta.repl_z * 2, 801792);
  EXPECT_EQ(ta.candidates, 80);
  EXPECT_EQ((2 * ta.b + 1) * (2 * ta.b + 1) - 1, ta.candidates);
  EXPECT_NEAR(ta.measured_steps_per_s, 274016.0, 1.0);

  EXPECT_THROW(paper_workload("Xx"), Error);
  EXPECT_EQ(all_paper_workloads().size(), 3u);
}

TEST(FlopModel, TableIIISubtotals) {
  // Paper Table III: per candidate 6+3(+1) ops, per interaction 14+19+3,
  // fixed 8+2+2.
  const FlopModel m;
  EXPECT_EQ(m.per_candidate_ops(), 10);
  EXPECT_EQ(m.per_interaction_ops(), 36);
  EXPECT_EQ(m.fixed_ops(), 12);
  EXPECT_EQ(m.rows().size(), 12u);
}

TEST(FlopModel, PerComponentAtPeakTimes) {
  // Paper: 5.3 ns / 26.6 ns = 20% (candidate), 21.2 ns / 71.4 ns = 30%
  // (interaction), 7.1 ns / 574 ns = 1% (fixed).
  const FlopModel m;
  EXPECT_NEAR(m.at_peak_ns(m.per_candidate_ops()), 5.3, 0.5);
  EXPECT_NEAR(m.at_peak_ns(m.per_interaction_ops()), 21.2, 2.5);
  EXPECT_NEAR(m.at_peak_ns(m.fixed_ops()), 7.1, 1.0);
}

TEST(FlopModel, TableIVUtilizationCs2) {
  // Paper Table IV: CS-2 utilization 22% (Cu), 23% (W), 20% (Ta). Our
  // FLOP accounting lands within ~2.5 points of the published values.
  const FlopModel m;
  const Platform cs2 = platform_cs2();
  struct Row { const char* el; double util; };
  for (const Row& r : {Row{"Cu", 0.22}, Row{"W", 0.23}, Row{"Ta", 0.20}}) {
    const auto w = paper_workload(r.el);
    const double u =
        m.utilization(static_cast<double>(w.atoms), w.candidates,
                      w.interactions, w.measured_steps_per_s, cs2.peak_pflops);
    EXPECT_NEAR(u, r.util, 0.025) << r.el;
  }
}

TEST(FlopModel, TableIVUtilizationFrontierAndQuartz) {
  // Paper Table IV: Frontier 0.4/0.4/0.2 %, Quartz 1.9/2.5/1.0 %.
  const FlopModel m;
  struct Row { const char* el; double frontier; double quartz; };
  for (const Row& r : {Row{"Cu", 0.004, 0.019}, Row{"W", 0.004, 0.025},
                       Row{"Ta", 0.002, 0.010}}) {
    const auto w = paper_workload(r.el);
    const double uf = m.utilization(
        static_cast<double>(w.atoms), w.candidates, w.interactions,
        w.frontier_steps_per_s, platform_frontier_32gcd().peak_pflops);
    const double uq = m.utilization(
        static_cast<double>(w.atoms), w.candidates, w.interactions,
        w.quartz_steps_per_s, platform_quartz_800cpu().peak_pflops);
    EXPECT_NEAR(uf, r.frontier, 0.0012) << r.el;
    EXPECT_NEAR(uq, r.quartz, 0.004) << r.el;
  }
}

TEST(MultiWafer, ReproducesTableVILowUtilization) {
  // Paper Table VI "Low Utilization (20%)" block.
  struct Row {
    const char* el; int x, z; double ratio, twall;
    int lambda, k; double steps; double fraction;
  };
  const Row rows[] = {
      {"Cu", 283, 10, 1.94, 9.41, 78, 20, 105152.0, 0.99},
      {"W", 317, 8, 2.02, 10.4, 88, 21, 95281.0, 0.99},
      {"Ta", 317, 8, 1.39, 3.65, 88, 31, 269214.0, 0.98},
  };
  for (const Row& r : rows) {
    MultiWaferParams p;
    p.x_extent = r.x;
    p.z_extent = r.z;
    p.rcut_over_rlattice = r.ratio;
    p.twall_us = r.twall;
    const auto out = multiwafer_performance(p, 0.20);
    EXPECT_NEAR(out.lambda, r.lambda, 1) << r.el;
    EXPECT_NEAR(out.k, r.k, 1) << r.el;
    EXPECT_NEAR(out.steps_per_second, r.steps, 0.02 * r.steps) << r.el;
    EXPECT_NEAR(out.performance_fraction, r.fraction, 0.02) << r.el;
  }
}

TEST(MultiWafer, ReproducesTableVIHighUtilization) {
  // Paper Table VI "High Utilization (80%)" block.
  struct Row {
    const char* el; int x, z; double ratio, twall;
    int lambda, k; double steps; double fraction;
  };
  const Row rows[] = {
      {"Cu", 283, 10, 1.94, 9.41, 15, 3, 99239.0, 0.93},
      {"W", 317, 8, 2.02, 10.4, 17, 4, 91743.0, 0.95},
      {"Ta", 317, 8, 1.39, 3.65, 17, 6, 251046.0, 0.92},
  };
  for (const Row& r : rows) {
    MultiWaferParams p;
    p.x_extent = r.x;
    p.z_extent = r.z;
    p.rcut_over_rlattice = r.ratio;
    p.twall_us = r.twall;
    const auto out = multiwafer_performance(p, 0.80);
    EXPECT_NEAR(out.lambda, r.lambda, 1) << r.el;
    EXPECT_NEAR(out.k, r.k, 1) << r.el;
    EXPECT_NEAR(out.steps_per_second, r.steps, 0.05 * r.steps) << r.el;
    EXPECT_NEAR(out.performance_fraction, r.fraction, 0.04) << r.el;
  }
}

TEST(MultiWafer, AtomCountsMatchTableVI) {
  MultiWaferParams cu{283, 10, 1.94, 9.41};
  EXPECT_EQ(multiwafer_performance(cu, 0.20).natom, 800890);
  MultiWaferParams ta{317, 8, 1.39, 3.65};
  EXPECT_EQ(multiwafer_performance(ta, 0.20).natom, 803912);
}

TEST(MultiWafer, ThickerHaloRaisesPerformanceLowersUtilization) {
  MultiWaferParams p{317, 8, 1.39, 3.65};
  const auto low = multiwafer_performance(p, 0.20);   // thick halo
  const auto high = multiwafer_performance(p, 0.80);  // thin halo
  EXPECT_GT(low.steps_per_second, high.steps_per_second);
  EXPECT_LT(low.interior_fraction, high.interior_fraction);
}

TEST(MultiWafer, RejectsDegenerateInputs) {
  MultiWaferParams p{317, 8, 1.39, 3.65};
  EXPECT_THROW(multiwafer_performance(p, 0.0), Error);
  EXPECT_THROW(multiwafer_performance(p, 1.0), Error);
  EXPECT_THROW(multiwafer_performance_lambda(p, 0), Error);
  EXPECT_THROW(multiwafer_performance_lambda(p, 200), Error);
}

TEST(Timescale, Fig1Anchors) {
  // Paper Fig. 1: 800k Ta atoms for 30 days at 2 fs steps: WSE ~1.3 ms of
  // simulated time; Frontier = WSE / 179 ~ 7 us.
  const double wse =
      reachable_timescale_seconds(274016.0, 2.0, 30.0);
  EXPECT_NEAR(wse, 1.42e-3, 0.1e-3);
  const double gpu = reachable_timescale_seconds(1530.0, 2.0, 30.0);
  EXPECT_NEAR(wse / gpu, 179.0, 2.0);
}

TEST(Timescale, LengthScale) {
  // ~250 atoms across at ~3 A spacing -> ~7.5e-8 m (Fig. 1 annotation).
  EXPECT_NEAR(length_scale_meters(250.0, 3.0), 7.5e-8, 1e-9);
  EXPECT_THROW(reachable_timescale_seconds(0.0, 2.0, 30.0), Error);
}

}  // namespace
}  // namespace wsmd::perf
