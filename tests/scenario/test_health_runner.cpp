/// \file test_health_runner.cpp
/// The run-health watchdog wired through the scenario runner: every
/// detector exercised end-to-end (NaN injection, temperature runaway,
/// energy drift, stalled engine via a fault-injecting engine wrapper),
/// warn-vs-abort behavior, the diagnostic bundle's contents, interval
/// snapshots on a sharded run, and telemetry finalization on the
/// interrupt path.

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "io/checkpoint.hpp"
#include "scenario/deck.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "telemetry/health.hpp"

namespace wsmd::scenario {
namespace {

namespace fs = std::filesystem;

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// A tiny Cu slab that steps in milliseconds.
Deck small_deck(const std::string& name) {
  Deck deck = parse_deck_string("element = Cu\n"
                                "geometry = slab\n"
                                "scale = 96\n"
                                "backend = reference\n"
                                "dt = 0.002\n"
                                "seed = 7\n"
                                "thermalize = 300\n"
                                "run = 10\n",
                                "<test>");
  deck.set("name", name);
  return deck;
}

/// Engine wrapper that runs a hook before every forwarded step — the
/// injection point for stalls and interrupts (opt.engine_factory).
class FaultEngine : public engine::Engine {
 public:
  FaultEngine(std::unique_ptr<engine::Engine> inner,
              std::function<void(long)> before_step)
      : inner_(std::move(inner)), before_step_(std::move(before_step)) {}

  const char* backend_name() const override {
    return inner_->backend_name();
  }
  engine::ModeledPhaseCost modeled_phase_cost() const override {
    return inner_->modeled_phase_cost();
  }
  std::vector<engine::ShardLoad> shard_load() const override {
    return inner_->shard_load();
  }
  std::size_t atom_count() const override { return inner_->atom_count(); }
  long step_count() const override { return inner_->step_count(); }
  std::vector<Vec3d> positions() const override {
    return inner_->positions();
  }
  std::vector<Vec3d> velocities() const override {
    return inner_->velocities();
  }
  void set_velocities(const std::vector<Vec3d>& v) override {
    inner_->set_velocities(v);
  }
  void set_positions(const std::vector<Vec3d>& r) override {
    inner_->set_positions(r);
  }
  engine::State snapshot() const override { return inner_->snapshot(); }
  void restore(const engine::State& s) override { inner_->restore(s); }
  void thermalize(double temperature_K, Rng& rng) override {
    inner_->thermalize(temperature_K, rng);
  }
  engine::Thermo step() override {
    if (before_step_) before_step_(inner_->step_count() + 1);
    return inner_->step();
  }
  engine::Thermo thermo() const override { return inner_->thermo(); }

 private:
  std::unique_ptr<engine::Engine> inner_;
  std::function<void(long)> before_step_;
};

RunOptions fault_options(std::function<void(long)> before_step) {
  RunOptions opt;
  opt.engine_factory = [before_step = std::move(before_step)](
                           const Scenario& sc,
                           const lattice::Structure& s) {
    return std::make_unique<FaultEngine>(build_engine(sc, s), before_step);
  };
  return opt;
}

TEST(HealthRunner, NanInjectionWarnCompletesTheRun) {
  const std::string base = ::testing::TempDir() + "wsmd_health_nanwarn";
  Deck deck = small_deck("nanwarn");
  deck.set("health.inject_nan", "3");  // health.nan defaults to warn
  deck.set("thermo", base + ".thermo.csv");
  const auto result = run_scenario(scenario_from_deck(deck));
  EXPECT_EQ(result.health_events, 1u) << "nan warn, latched once";
  EXPECT_EQ(result.total_steps, 10);
  // The thermo logger rejects non-finite rows; the runner skips them
  // instead of dying on its own log, so the file holds only the finite
  // prefix (step 0 pre-run, thermalize, steps 1-2).
  EXPECT_LT(result.thermo_samples, 10u);
  EXPECT_GE(result.thermo_samples, 2u);
  EXPECT_EQ(slurp(result.thermo_path).find("nan"), std::string::npos);
}

TEST(HealthRunner, NanInjectionAbortLeavesACompleteBundle) {
  const std::string base = ::testing::TempDir() + "wsmd_health_nanabort";
  const std::string bundle = base + ".bundle";
  fs::remove_all(bundle);
  Deck deck = small_deck("nanabort");
  deck.set("health.nan", "abort");
  deck.set("health.inject_nan", "4");
  deck.set("health.thermo_tail", "8");
  deck.set("health.bundle", bundle);
  deck.set("telemetry.metrics", base + ".metrics.jsonl");

  bool threw = false;
  try {
    run_scenario(scenario_from_deck(deck));
  } catch (const telemetry::HealthAbortError& ex) {
    threw = true;
    EXPECT_EQ(ex.event().detector, "nan");
    EXPECT_EQ(ex.event().step, 4);
    EXPECT_EQ(ex.bundle_dir(), bundle);
    EXPECT_NE(std::string(ex.what()).find(bundle), std::string::npos);
  }
  ASSERT_TRUE(threw);

  // The bundle: a loadable checkpoint (PR 4 format; carries the poisoned
  // state plus the schedule cursor of the aborted step)...
  const auto ckpt =
      io::read_checkpoint_file((fs::path(bundle) / "checkpoint.ckpt").string());
  EXPECT_EQ(ckpt.engine.step, 4);
  EXPECT_EQ(ckpt.element, "Cu");
  // ...the last-K thermo ring including the blow-up row...
  const std::string tail =
      slurp((fs::path(bundle) / "thermo_tail.csv").string());
  EXPECT_NE(tail.find("step,pe_eV"), std::string::npos);
  EXPECT_NE(tail.find("nan"), std::string::npos) << tail;
  // ...the trace (an abort-armed session always captures events)...
  EXPECT_TRUE(fs::exists(fs::path(bundle) / "trace.json"));
  // ...and the verdict document.
  const std::string health =
      slurp((fs::path(bundle) / "health.json").string());
  EXPECT_NE(health.find("\"verdict\": \"abort\""), std::string::npos);
  EXPECT_NE(health.find("\"detector\": \"nan\""), std::string::npos);
  EXPECT_NE(health.find("\"scenario\": \"nanabort\""), std::string::npos);

  // The metrics export is finalized on the unwind path: the aggregate
  // rows are present even though the run died mid-schedule.
  const std::string metrics = slurp(base + ".metrics.jsonl");
  EXPECT_NE(metrics.find("\"kind\": \"counter\""), std::string::npos);
}

TEST(HealthRunner, TemperatureRunawayAbortsDuringThermostattedStage) {
  Deck deck = small_deck("trunaway");
  // Schedule overrides replace the file's schedule in set order; the
  // thermostatted equilibrate stage needs a KE source before it.
  deck.set("thermalize", "300");
  deck.set("equilibrate", "300 10");
  deck.set("health.temperature", "abort");
  deck.set("health.temperature_band", "1e-9");  // any drift trips it
  bool threw = false;
  try {
    run_scenario(scenario_from_deck(deck));
  } catch (const telemetry::HealthAbortError& ex) {
    threw = true;
    EXPECT_EQ(ex.event().detector, "temperature");
    EXPECT_EQ(ex.event().limit, 1e-9);
  }
  EXPECT_TRUE(threw);
  fs::remove_all("trunaway.health");  // bundle dir defaulted to <name>.health
}

TEST(HealthRunner, TemperatureInsideTheBandStaysQuiet) {
  Deck deck = small_deck("tquiet");
  deck.set("thermalize", "300");
  deck.set("equilibrate", "300 10");
  deck.set("health.temperature", "warn");
  deck.set("health.temperature_band", "1e6");
  const auto result = run_scenario(scenario_from_deck(deck));
  EXPECT_EQ(result.health_events, 0u);
}

TEST(HealthRunner, EnergyDriftWarnsDuringRunStages) {
  Deck deck = small_deck("edrift");
  deck.set("health.energy_drift", "warn");
  deck.set("health.energy_band", "1e-12");  // FP integration noise trips it
  const auto result = run_scenario(scenario_from_deck(deck));
  EXPECT_GE(result.health_events, 1u);
}

TEST(HealthRunner, StallWarnFiresFromTheWatchdogThread) {
  Deck deck = small_deck("stallwarn");
  deck.set("run", "2");
  deck.set("health.stall", "warn");
  deck.set("health.stall_timeout", "0.05");
  auto opt = fault_options([](long step) {
    if (step == 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(250));
    }
  });
  const auto result = run_scenario(scenario_from_deck(deck), opt);
  EXPECT_GE(result.health_events, 1u) << "the stalled step must be seen";
}

TEST(HealthRunner, StallAbortGoesToTheInstalledHandler) {
  Deck deck = small_deck("stallabort");
  deck.set("run", "2");
  deck.set("health.stall", "abort");
  deck.set("health.stall_timeout", "0.05");
  std::vector<telemetry::HealthEvent> captured;
  auto opt = fault_options([](long step) {
    if (step == 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(250));
    }
  });
  // Without this hook the default handler writes the partial bundle and
  // _Exit(3)s the process — tests must capture instead.
  opt.stall_handler = [&captured](const telemetry::HealthEvent& ev) {
    captured.push_back(ev);
  };
  run_scenario(scenario_from_deck(deck), opt);
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].detector, "stall");
  EXPECT_EQ(captured[0].action, telemetry::HealthAction::kAbort);
  EXPECT_GE(captured[0].value, 0.05);
}

TEST(HealthRunner, ShardedRunStreamsPerShardSnapshots) {
  const std::string base = ::testing::TempDir() + "wsmd_health_snap";
  Deck deck = small_deck("shardsnap");
  deck.set("scale", "32");
  deck.set("backend", "sharded:2");
  deck.set("run", "300");
  deck.set("telemetry.metrics", base + ".metrics.jsonl");
  deck.set("telemetry.snapshot", "0.0001");
  const auto result = run_scenario(scenario_from_deck(deck));
  ASSERT_GE(result.snapshots.size(), 3u)
      << "a 300-step sharded run at 0.1 ms cadence must snapshot";
  long long prev_seq = -1;
  for (const auto& row : result.snapshots) {
    EXPECT_EQ(row.seq, prev_seq + 1);
    prev_seq = row.seq;
    ASSERT_EQ(row.shard_busy_s.size(), 2u) << "per-shard busy time";
    ASSERT_EQ(row.shard_wait_s.size(), 2u) << "per-shard wait time";
    EXPECT_GT(row.ns_per_day, 0.0);
    EXPECT_GT(row.imbalance, 0.0) << "shards did work every interval";
  }
  const std::string metrics = slurp(base + ".metrics.jsonl");
  EXPECT_NE(metrics.find("\"kind\": \"snapshot\""), std::string::npos);
  EXPECT_NE(metrics.find("\"shard_busy_s\": ["), std::string::npos);
  EXPECT_NE(metrics.find("\"kind\": \"span\""), std::string::npos)
      << "finalized aggregates close the stream";
}

TEST(HealthRunner, InterruptFinalizesTelemetryExports) {
  const std::string base = ::testing::TempDir() + "wsmd_health_intr";
  reset_interrupt();
  Deck deck = small_deck("interrupted");
  deck.set("run", "50");
  deck.set("telemetry.metrics", base + ".metrics.jsonl");
  auto opt = fault_options([](long step) {
    if (step == 3) request_interrupt();
  });
  bool threw = false;
  try {
    run_scenario(scenario_from_deck(deck), opt);
  } catch (const InterruptedError& ex) {
    threw = true;
    EXPECT_EQ(ex.step(), 3);
  }
  reset_interrupt();
  ASSERT_TRUE(threw);
  // The exports were finalized before the unwind surfaced: the metrics
  // file carries the aggregate tail of the partial run.
  const std::string metrics = slurp(base + ".metrics.jsonl");
  EXPECT_NE(metrics.find("\"kind\": \"counter\""), std::string::npos);
}

}  // namespace
}  // namespace wsmd::scenario
