/// \file test_deck.cpp
/// Deck parsing and the deck -> Scenario translation: order-preserving
/// schedules, last-wins overrides, eager validation (a typo'd deck fails
/// loudly, never silently simulates the default), and deterministic defect
/// generation.

#include <gtest/gtest.h>

#include "scenario/deck.hpp"
#include "scenario/scenario.hpp"
#include "telemetry/health.hpp"
#include "util/error.hpp"

namespace wsmd::scenario {
namespace {

TEST(Deck, ParsesKeyValueLinesWithComments) {
  const auto deck = parse_deck_string(
      "# full-line comment\n"
      "name = demo\n"
      "\n"
      "element = W   # trailing comment\n"
      "scale=7\n",
      "demo.deck");
  ASSERT_EQ(deck.entries.size(), 3u);
  EXPECT_EQ(deck.get("name"), "demo");
  EXPECT_EQ(deck.get("element"), "W");
  EXPECT_EQ(deck.get("scale"), "7");
  // '#' opens a comment only at line start / after whitespace, so values
  // may contain it — matching CLI-override behavior for the same token.
  const auto hashes = parse_deck_string("summary = out#1.json  # note\n");
  EXPECT_EQ(hashes.get("summary"), "out#1.json");
  EXPECT_EQ(deck.entries[1].line, 4);
  EXPECT_FALSE(deck.has("backend"));
  EXPECT_EQ(deck.get("backend", "reference"), "reference");
}

TEST(Deck, MalformedLinesThrowWithLineNumber) {
  try {
    parse_deck_string("name = ok\nthis is not a pair\n", "bad.deck");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("bad.deck:2"), std::string::npos);
  }
  EXPECT_THROW(parse_deck_string("= value\n"), Error);
}

TEST(Deck, OverridesAppendAndLastWins) {
  auto deck = parse_deck_string("backend = reference\n");
  deck.set("backend", "sharded:4");
  EXPECT_EQ(deck.get("backend"), "sharded:4");
  const auto o = parse_override("thermo=out.csv");
  EXPECT_EQ(o.key, "thermo");
  EXPECT_EQ(o.value, "out.csv");
  EXPECT_THROW(parse_override("no-equals-sign"), Error);
  EXPECT_THROW(parse_override("=value"), Error);
}

TEST(Scenario, SchedulePreservesDeckOrder) {
  const auto sc = scenario_from_deck(parse_deck_string(
      "element = Ta\n"
      "thermalize = 290\n"
      "equilibrate = 290 20\n"
      "ramp = 290 600 50\n"
      "run = 30\n"
      "quench = 10 5\n"));
  ASSERT_EQ(sc.schedule.size(), 5u);
  EXPECT_EQ(sc.schedule[0].kind, Stage::Kind::kThermalize);
  EXPECT_EQ(sc.schedule[1].kind, Stage::Kind::kEquilibrate);
  EXPECT_EQ(sc.schedule[2].kind, Stage::Kind::kRamp);
  EXPECT_DOUBLE_EQ(sc.schedule[2].t0, 290.0);
  EXPECT_DOUBLE_EQ(sc.schedule[2].t1, 600.0);
  EXPECT_EQ(sc.schedule[3].kind, Stage::Kind::kRun);
  EXPECT_EQ(sc.schedule[4].kind, Stage::Kind::kQuench);
  EXPECT_EQ(sc.total_steps(), 20 + 50 + 30 + 5);
}

TEST(Scenario, CliScheduleOverridesReplaceTheDeckSchedule) {
  auto deck = parse_deck_string(
      "element = Cu\nthermalize = 290\nequilibrate = 290 20\nrun = 30\n");
  // Scalar overrides never touch the schedule.
  deck.set("seed", "99");
  EXPECT_EQ(scenario_from_deck(deck).schedule.size(), 3u);
  // A schedule key on the CLI replaces the whole schedule — `run=50`
  // means "run 50 NVE steps", not "append 50 more".
  deck.set("thermalize", "400");
  deck.set("run", "50");
  const auto sc = scenario_from_deck(deck);
  ASSERT_EQ(sc.schedule.size(), 2u);
  EXPECT_EQ(sc.schedule[0].kind, Stage::Kind::kThermalize);
  EXPECT_DOUBLE_EQ(sc.schedule[0].t0, 400.0);
  EXPECT_EQ(sc.schedule[1].kind, Stage::Kind::kRun);
  EXPECT_EQ(sc.schedule[1].steps, 50);
  EXPECT_EQ(sc.total_steps(), 50);
}

TEST(Scenario, RejectsUnknownKeysAndBadValues) {
  EXPECT_THROW(scenario_from_deck(parse_deck_string("vacancyfraction = 0.1\n")),
               Error);
  EXPECT_THROW(scenario_from_deck(parse_deck_string("geometry = sphere\n")),
               Error);
  EXPECT_THROW(scenario_from_deck(parse_deck_string("dt = 0\n")), Error);
  EXPECT_THROW(scenario_from_deck(parse_deck_string("dt = fast\n")), Error);
  EXPECT_THROW(scenario_from_deck(parse_deck_string("run = -5\n")), Error);
  EXPECT_THROW(scenario_from_deck(parse_deck_string("replicate = 4 4\n")),
               Error);
  EXPECT_THROW(scenario_from_deck(parse_deck_string("vacancy_fraction = 1.5\n")),
               Error);
  EXPECT_THROW(scenario_from_deck(parse_deck_string("element = Unobtanium\n")),
               Error);
  EXPECT_THROW(scenario_from_deck(parse_deck_string("backend = gpu\n")),
               Error);
  EXPECT_THROW(scenario_from_deck(parse_deck_string("thermo_format = xml\n")),
               Error);
  // A sign typo in a stage temperature must fail at parse time, not
  // surface later as NaN velocities.
  EXPECT_THROW(scenario_from_deck(parse_deck_string("thermalize = -10\n")),
               Error);
  EXPECT_THROW(scenario_from_deck(parse_deck_string("quench = -150 15\n")),
               Error);
  EXPECT_THROW(scenario_from_deck(parse_deck_string("ramp = 300 -600 50\n")),
               Error);
  // Thermostatting a motionless system silently runs at 0 K — rejected
  // eagerly unless something earlier could have produced kinetic energy.
  EXPECT_THROW(scenario_from_deck(parse_deck_string("equilibrate = 300 50\n")),
               Error);
  EXPECT_NO_THROW(scenario_from_deck(
      parse_deck_string("thermalize = 290\nequilibrate = 300 50\n")));
  EXPECT_NO_THROW(scenario_from_deck(
      parse_deck_string("run = 10\nequilibrate = 300 50\n")));
  // Quenching toward 0 K needs no prior KE source requirement violation
  // only when targets are positive; quench to exactly 0 from rest is a
  // no-op and allowed.
  EXPECT_NO_THROW(scenario_from_deck(parse_deck_string("quench = 0 5\n")));
  // Vacancies on a fused bicrystal would silently corrupt the seam.
  EXPECT_THROW(
      scenario_from_deck(parse_deck_string(
          "element = Ta\ngeometry = grain_boundary\nvacancy_fraction = 0.01\n")),
      Error);
  // Keys a geometry ignores reject instead of silently simulating the
  // default-size system.
  EXPECT_THROW(scenario_from_deck(parse_deck_string(
                   "geometry = grain_boundary\nreplicate = 8 8 8\n")),
               Error);
  EXPECT_THROW(scenario_from_deck(parse_deck_string(
                   "geometry = grain_boundary\nscale = 8\n")),
               Error);
  EXPECT_THROW(scenario_from_deck(parse_deck_string(
                   "geometry = slab\ngb_atoms = 500\n")),
               Error);
}

TEST(Scenario, PotentialAndPairStyleKeysValidateEagerly) {
  // Evaluation-path selector: tabulated (default) | analytic, nothing else.
  EXPECT_EQ(scenario_from_deck(parse_deck_string("")).potential, "tabulated");
  EXPECT_EQ(
      scenario_from_deck(parse_deck_string("potential = analytic\n")).potential,
      "analytic");
  try {
    scenario_from_deck(parse_deck_string("potential = spline\n", "p.deck"));
    FAIL() << "expected Error";
  } catch (const Error& e) {
    // Eager validation with file:line blame.
    EXPECT_NE(std::string(e.what()).find("p.deck:1"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("tabulated|analytic"),
              std::string::npos);
  }

  // Interaction family: eam (default) | lj with its own element table.
  EXPECT_THROW(scenario_from_deck(parse_deck_string("pair_style = morse\n")),
               Error);
  EXPECT_NO_THROW(scenario_from_deck(parse_deck_string(
      "pair_style = lj\nelement = Ar\ngeometry = bulk\nreplicate = 4 4 4\n")));
  // Cu is a Zhou element, not a built-in LJ species.
  EXPECT_THROW(scenario_from_deck(parse_deck_string(
                   "pair_style = lj\nelement = Cu\nreplicate = 4 4 4\n")),
               Error);
  // LJ scenarios size their crystal explicitly and have no bicrystal
  // generator.
  EXPECT_THROW(scenario_from_deck(parse_deck_string(
                   "pair_style = lj\nelement = Ar\ngeometry = slab\n")),
               Error);
  EXPECT_THROW(scenario_from_deck(parse_deck_string(
                   "pair_style = lj\nelement = Ar\n"
                   "geometry = grain_boundary\n")),
               Error);
}

TEST(Scenario, LjMaterialFactsDriveStructureAndEngine) {
  // 4 cells per axis keep the periodic box above 2x the 2.5-sigma cutoff.
  const auto sc = scenario_from_deck(parse_deck_string(
      "pair_style = lj\nelement = Ar\ngeometry = bulk\n"
      "replicate = 4 4 4\nthermalize = 40\nrun = 2\n"));
  const auto facts = material_facts(sc);
  EXPECT_EQ(facts.structure, "fcc");
  EXPECT_NEAR(facts.lattice_constant, 5.25, 0.05);  // solid Ar a0 (A)
  const auto s = build_structure(sc);
  EXPECT_EQ(s.size(), 4u * 4u * 4u * 4u);  // FCC: 4 atoms per cell
  auto eng = build_engine(sc, s);
  EXPECT_EQ(eng->atom_count(), s.size());
  // Pure pair potential: the engine runs with a zero density pass.
  EXPECT_LT(eng->thermo().potential_energy, 0.0);  // cohesive LJ crystal
}

TEST(Scenario, BackendSpecParsing) {
  EXPECT_EQ(parse_backend("reference").backend, engine::Backend::kReference);
  EXPECT_EQ(parse_backend("wafer").backend, engine::Backend::kWafer);
  const auto sharded = parse_backend("sharded:8");
  EXPECT_EQ(sharded.backend, engine::Backend::kShardedWafer);
  EXPECT_EQ(sharded.threads, 8);
  EXPECT_EQ(parse_backend("sharded").threads, 0);  // auto
  EXPECT_TRUE(sharded.is_wafer());
  EXPECT_FALSE(parse_backend("reference").is_wafer());
  EXPECT_THROW(parse_backend("sharded:0"), Error);
  EXPECT_THROW(parse_backend("sharded:x"), Error);
}

TEST(Scenario, RanksBackendSpecParsing) {
  const auto ranks = parse_backend("ranks:4");
  EXPECT_EQ(ranks.backend, engine::Backend::kRanks);
  EXPECT_EQ(ranks.ranks, 4);
  EXPECT_EQ(ranks.threads, 1);  // one shard thread per rank by default
  EXPECT_TRUE(ranks.is_wafer());

  // ranks:MxN — N shard threads inside each of the M rank processes.
  const auto grid = parse_backend("ranks:2x3");
  EXPECT_EQ(grid.backend, engine::Backend::kRanks);
  EXPECT_EQ(grid.ranks, 2);
  EXPECT_EQ(grid.threads, 3);

  // Bare "ranks" keeps the default rank count.
  EXPECT_EQ(parse_backend("ranks").backend, engine::Backend::kRanks);
  EXPECT_EQ(parse_backend("ranks").ranks, 2);

  EXPECT_THROW(parse_backend("ranks:0"), Error);
  EXPECT_THROW(parse_backend("ranks:x"), Error);
  EXPECT_THROW(parse_backend("ranks:17"), Error);   // > kMaxRanks
  EXPECT_THROW(parse_backend("ranks:2x0"), Error);
  EXPECT_THROW(parse_backend("ranks:2x"), Error);
  EXPECT_THROW(parse_backend("ranks:2y3"), Error);
}

TEST(Scenario, BuildStructureGeometries) {
  // Explicit replication, open slab.
  auto sc = scenario_from_deck(parse_deck_string(
      "element = Cu\ngeometry = slab\nreplicate = 3 3 2\n"));
  StructureInfo info;
  const auto slab = build_structure(sc, &info);
  EXPECT_EQ(slab.size(), 3u * 3u * 2u * 4u);  // FCC: 4 atoms/cell
  EXPECT_EQ(info.atoms, slab.size());
  EXPECT_FALSE(slab.box.periodic[0]);

  // Bulk is periodic.
  sc = scenario_from_deck(parse_deck_string(
      "element = W\ngeometry = bulk\nreplicate = 4 4 4\n"));
  const auto bulk = build_structure(sc);
  EXPECT_EQ(bulk.size(), 4u * 4u * 4u * 2u);  // BCC: 2 atoms/cell
  EXPECT_TRUE(bulk.box.periodic[0] && bulk.box.periodic[2]);

  // Bulk without explicit replication is rejected (paper slabs are open).
  EXPECT_THROW(build_structure(scenario_from_deck(
                   parse_deck_string("element = W\ngeometry = bulk\n"))),
               Error);

  // Grain boundary reports seam bookkeeping.
  sc = scenario_from_deck(parse_deck_string(
      "element = Ta\ngeometry = grain_boundary\ngb_atoms = 800\n"
      "tilt_angle_deg = 16\n"));
  const auto gb = build_structure(sc, &info);
  EXPECT_GT(gb.size(), 400u);
  EXPECT_GT(info.gb_fused_atoms, 0u);
}

TEST(Scenario, VacanciesAreDeterministicPerSeed) {
  const char* text =
      "element = W\ngeometry = bulk\nreplicate = 4 4 4\n"
      "vacancy_fraction = 0.05\nseed = 123\n";
  StructureInfo a_info, b_info;
  const auto a = build_structure(
      scenario_from_deck(parse_deck_string(text)), &a_info);
  const auto b = build_structure(
      scenario_from_deck(parse_deck_string(text)), &b_info);
  const std::size_t full = 4u * 4u * 4u * 2u;
  EXPECT_EQ(a_info.vacancies_removed,
            static_cast<std::size_t>(0.05 * full + 0.5));
  EXPECT_EQ(a.size(), full - a_info.vacancies_removed);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.positions[i].x, b.positions[i].x);
  }
  // A different seed removes a different set.
  const auto c = build_structure(scenario_from_deck(parse_deck_string(
      "element = W\ngeometry = bulk\nreplicate = 4 4 4\n"
      "vacancy_fraction = 0.05\nseed = 456\n")));
  ASSERT_EQ(c.size(), a.size());
  bool any_differs = false;
  for (std::size_t i = 0; i < a.size() && !any_differs; ++i) {
    any_differs = a.positions[i].x != c.positions[i].x;
  }
  EXPECT_TRUE(any_differs);
}

TEST(Scenario, ObserveKeysParseIntoProbeConfig) {
  const auto sc = scenario_from_deck(parse_deck_string(
      "element = Cu\n"
      "geometry = grain_boundary\n"
      "gb_atoms = 800\n"
      "observe.probes = rdf msd vacf defects\n"
      "observe.every = 5\n"
      "observe.rdf_every = 10\n"
      "observe.format = jsonl\n"
      "observe.prefix = out/obs\n"
      "observe.rdf_rcut = 6.0\n"
      "observe.rdf_bins = 300\n"
      "observe.csp_threshold = 0.75\n"
      "observe.gb_axis = z\n"));
  ASSERT_TRUE(sc.observe.enabled());
  EXPECT_EQ(sc.observe.probes,
            (std::vector<std::string>{"rdf", "msd", "vacf", "defects"}));
  EXPECT_EQ(sc.observe.cadence_for("rdf"), 10);    // per-probe override
  EXPECT_EQ(sc.observe.cadence_for("msd"), 5);     // inherits observe.every
  EXPECT_EQ(sc.observe.format, "jsonl");
  EXPECT_EQ(sc.observe.prefix, "out/obs");
  EXPECT_DOUBLE_EQ(sc.observe.rdf_rcut, 6.0);
  EXPECT_EQ(sc.observe.rdf_bins, 300);
  EXPECT_DOUBLE_EQ(sc.observe.csp_threshold, 0.75);
  EXPECT_EQ(sc.observe.gb_axis, 2);

  // GB tracking defaults to the generator's boundary normal (y) when the
  // deck enables the defect probe on a bicrystal without naming an axis.
  const auto defaulted = scenario_from_deck(parse_deck_string(
      "element = Ta\ngeometry = grain_boundary\nobserve.probes = defects\n"));
  EXPECT_EQ(defaulted.observe.gb_axis, 1);
  // ...and stays off elsewhere.
  const auto slab = scenario_from_deck(
      parse_deck_string("element = Cu\nobserve.probes = defects\n"));
  EXPECT_EQ(slab.observe.gb_axis, -1);
}

TEST(Scenario, ObserveRejectsUnknownKeysWithFileLineContext) {
  // Typo'd observe key: rejected like any unknown key, pointing at the
  // offending line.
  try {
    scenario_from_deck(parse_deck_string(
        "observe.probes = rdf\nobserve.rdf_cutoff = 6\n", "obs.deck"));
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("obs.deck:2"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(
      scenario_from_deck(parse_deck_string("observe.probs = rdf\n")), Error);
  // Unknown / duplicate probe names.
  EXPECT_THROW(
      scenario_from_deck(parse_deck_string("observe.probes = xrd\n")), Error);
  EXPECT_THROW(
      scenario_from_deck(parse_deck_string("observe.probes = rdf rdf\n")),
      Error);
  EXPECT_THROW(scenario_from_deck(parse_deck_string("observe.probes =\n")),
               Error);
}

TEST(Scenario, ObserveRejectsBadCadences) {
  EXPECT_THROW(scenario_from_deck(parse_deck_string(
                   "observe.probes = msd\nobserve.every = 0\n")),
               Error);
  EXPECT_THROW(scenario_from_deck(parse_deck_string(
                   "observe.probes = msd\nobserve.every = -5\n")),
               Error);
  EXPECT_THROW(scenario_from_deck(parse_deck_string(
                   "observe.probes = msd\nobserve.msd_every = 0\n")),
               Error);
  EXPECT_THROW(scenario_from_deck(parse_deck_string(
                   "observe.probes = rdf\nobserve.rdf_every = x\n")),
               Error);
  EXPECT_THROW(scenario_from_deck(parse_deck_string(
                   "observe.probes = rdf\nobserve.rdf_bins = 1\n")),
               Error);
  EXPECT_THROW(scenario_from_deck(parse_deck_string(
                   "observe.probes = rdf\nobserve.rdf_rcut = 0\n")),
               Error);
  EXPECT_THROW(scenario_from_deck(parse_deck_string(
                   "observe.probes = defects\nobserve.csp_threshold = -1\n")),
               Error);
}

TEST(Scenario, ObserveRejectsCrossKeyAndGeometryMismatches) {
  // observe.* keys without observe.probes: a deck that configures probes it
  // never enables is a typo, not a request for silence.
  try {
    scenario_from_deck(parse_deck_string("observe.every = 5\n", "lone.deck"));
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("lone.deck:1"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("observe.probes"),
              std::string::npos);
  }
  // Parameters for probes that are not enabled.
  EXPECT_THROW(scenario_from_deck(parse_deck_string(
                   "observe.probes = msd\nobserve.rdf_bins = 100\n")),
               Error);
  EXPECT_THROW(scenario_from_deck(parse_deck_string(
                   "observe.probes = rdf\nobserve.csp_threshold = 1\n")),
               Error);
  EXPECT_THROW(scenario_from_deck(parse_deck_string(
                   "observe.probes = rdf\nobserve.vacf_every = 5\n")),
               Error);
  // GB tracking needs a grain boundary.
  EXPECT_THROW(
      scenario_from_deck(parse_deck_string(
          "geometry = slab\nobserve.probes = defects\nobserve.gb_axis = y\n")),
      Error);
  // Probe-geometry mismatch, caught at parse time: the rdf radius cannot
  // satisfy minimum image in this periodic box.
  try {
    scenario_from_deck(parse_deck_string(
        "element = Cu\ngeometry = bulk\nreplicate = 3 3 3\n"
        "observe.probes = rdf\nobserve.rdf_rcut = 7.0\n",
        "tight.deck"));
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("tight.deck:5"), std::string::npos)
        << e.what();
  }
  // Same box with a radius that fits is accepted.
  EXPECT_NO_THROW(scenario_from_deck(parse_deck_string(
      "element = Cu\ngeometry = bulk\nreplicate = 4 4 4\n"
      "observe.probes = rdf\nobserve.rdf_rcut = 6.5\n")));
  // The defect probe's derived CSP radius is checked the same way: a 2x2x2
  // periodic cell cannot host the 1.2 a0 search sphere.
  EXPECT_THROW(scenario_from_deck(parse_deck_string(
                   "element = Cu\ngeometry = bulk\nreplicate = 2 2 2\n"
                   "observe.probes = defects\n")),
               Error);
}

TEST(Scenario, HealthKeysParseIntoTheWatchdogConfig) {
  // Defaults: NaN detection warns, everything else off.
  const auto base = scenario_from_deck(parse_deck_string(""));
  EXPECT_EQ(base.health.nan, telemetry::HealthAction::kWarn);
  EXPECT_EQ(base.health.energy_drift, telemetry::HealthAction::kOff);
  EXPECT_EQ(base.health.temperature, telemetry::HealthAction::kOff);
  EXPECT_EQ(base.health.stall, telemetry::HealthAction::kOff);
  EXPECT_FALSE(base.health.any_abort());

  const auto sc = scenario_from_deck(parse_deck_string(
      "health.nan = abort\n"
      "health.energy_drift = warn\n"
      "health.energy_band = 0.01\n"
      "health.temperature = abort\n"
      "health.temperature_band = 75\n"
      "health.stall = warn\n"
      "health.stall_timeout = 5\n"
      "health.thermo_tail = 32\n"
      "health.bundle = triage\n"
      "health.inject_nan = 4\n"));
  EXPECT_EQ(sc.health.nan, telemetry::HealthAction::kAbort);
  EXPECT_EQ(sc.health.energy_drift, telemetry::HealthAction::kWarn);
  EXPECT_DOUBLE_EQ(sc.health.energy_band, 0.01);
  EXPECT_EQ(sc.health.temperature, telemetry::HealthAction::kAbort);
  EXPECT_DOUBLE_EQ(sc.health.temperature_band_K, 75.0);
  EXPECT_EQ(sc.health.stall, telemetry::HealthAction::kWarn);
  EXPECT_DOUBLE_EQ(sc.health.stall_timeout_s, 5.0);
  EXPECT_EQ(sc.health.thermo_tail, 32);
  EXPECT_EQ(sc.health.bundle_dir, "triage");
  EXPECT_EQ(sc.health.inject_nan_step, 4);
  EXPECT_TRUE(sc.health.any_enabled());
  EXPECT_TRUE(sc.health.any_abort());

  // The default NaN detector can be switched off explicitly.
  const auto off =
      scenario_from_deck(parse_deck_string("health.nan = off\n"));
  EXPECT_EQ(off.health.nan, telemetry::HealthAction::kOff);
  EXPECT_FALSE(off.health.any_enabled());
}

TEST(Scenario, HealthKeysValidateEagerly) {
  // Action tokens are a closed set with file:line blame.
  try {
    scenario_from_deck(parse_deck_string("health.nan = on\n", "h.deck"));
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("h.deck:1"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("off|warn|abort"),
              std::string::npos);
  }
  EXPECT_THROW(scenario_from_deck(parse_deck_string("health.stall = true\n")),
               Error);
  // Bands and timeouts must be positive numbers.
  EXPECT_THROW(scenario_from_deck(parse_deck_string(
                   "health.energy_drift = warn\nhealth.energy_band = 0\n")),
               Error);
  EXPECT_THROW(
      scenario_from_deck(parse_deck_string(
          "health.temperature = warn\nhealth.temperature_band = -5\n")),
      Error);
  EXPECT_THROW(scenario_from_deck(parse_deck_string(
                   "health.stall = warn\nhealth.stall_timeout = soon\n")),
               Error);
  // A band/timeout for a disabled detector is dead configuration.
  try {
    scenario_from_deck(
        parse_deck_string("health.energy_band = 0.01\n", "dead.deck"));
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("dead.deck:1"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("health.energy_drift"),
              std::string::npos);
  }
  EXPECT_THROW(
      scenario_from_deck(parse_deck_string("health.temperature_band = 50\n")),
      Error);
  EXPECT_THROW(
      scenario_from_deck(parse_deck_string("health.stall_timeout = 10\n")),
      Error);
  // The NaN fault drill needs the NaN detector it exercises.
  EXPECT_THROW(scenario_from_deck(parse_deck_string(
                   "health.nan = off\nhealth.inject_nan = 3\n")),
               Error);
  EXPECT_THROW(
      scenario_from_deck(parse_deck_string("health.inject_nan = -1\n")),
      Error);
  // The bundle's thermo tail keeps a bounded ring.
  EXPECT_THROW(
      scenario_from_deck(parse_deck_string("health.thermo_tail = 0\n")),
      Error);
  EXPECT_THROW(
      scenario_from_deck(parse_deck_string("health.thermo_tail = 200000\n")),
      Error);
  EXPECT_THROW(scenario_from_deck(parse_deck_string("health.bundle =\n")),
               Error);
}

TEST(Scenario, SnapshotCadenceImpliesTheMetricsFile) {
  // No cadence by default; no metrics file implied.
  EXPECT_DOUBLE_EQ(scenario_from_deck(parse_deck_string("")).
                   telemetry_snapshot_s, 0.0);

  const auto sc = scenario_from_deck(
      parse_deck_string("name = snapdeck\ntelemetry.snapshot = 0.5\n"));
  EXPECT_DOUBLE_EQ(sc.telemetry_snapshot_s, 0.5);
  // Snapshots stream into the metrics file, so a cadence without an
  // explicit path resolves the same auto default as telemetry.metrics=auto.
  EXPECT_EQ(sc.telemetry_metrics_path, "snapdeck.metrics.jsonl");

  // An explicit path wins over the implied default.
  const auto named = scenario_from_deck(parse_deck_string(
      "telemetry.snapshot = 0.5\ntelemetry.metrics = custom.jsonl\n"));
  EXPECT_EQ(named.telemetry_metrics_path, "custom.jsonl");

  // `off` clears an earlier cadence (resume-time CLI override path).
  const auto off = scenario_from_deck(parse_deck_string(
      "telemetry.snapshot = 0.5\ntelemetry.snapshot = off\n"));
  EXPECT_DOUBLE_EQ(off.telemetry_snapshot_s, 0.0);

  EXPECT_THROW(
      scenario_from_deck(parse_deck_string("telemetry.snapshot = 0\n")),
      Error);
  EXPECT_THROW(
      scenario_from_deck(parse_deck_string("telemetry.snapshot = -1\n")),
      Error);
  EXPECT_THROW(
      scenario_from_deck(parse_deck_string("telemetry.snapshot = fast\n")),
      Error);
  // Streaming into an explicitly disabled metrics file is a contradiction.
  try {
    scenario_from_deck(parse_deck_string(
        "telemetry.snapshot = 0.5\ntelemetry.metrics = off\n", "c.deck"));
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("c.deck:1"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("telemetry.metrics is off"),
              std::string::npos);
  }
}

TEST(Scenario, HealthAndSnapshotKeysRoundTripThroughDeckFromScenario) {
  const auto sc = scenario_from_deck(parse_deck_string(
      "name = rt\n"
      "telemetry.snapshot = 0.25\n"
      "health.nan = abort\n"
      "health.energy_drift = warn\n"
      "health.energy_band = 0.05\n"
      "health.stall = abort\n"
      "health.stall_timeout = 30\n"
      "health.thermo_tail = 16\n"
      "health.bundle = rt.triage\n"
      "health.inject_nan = 2\n"));
  const auto again = scenario_from_deck(deck_from_scenario(sc));
  EXPECT_DOUBLE_EQ(again.telemetry_snapshot_s, 0.25);
  EXPECT_EQ(again.health.nan, telemetry::HealthAction::kAbort);
  EXPECT_EQ(again.health.energy_drift, telemetry::HealthAction::kWarn);
  EXPECT_DOUBLE_EQ(again.health.energy_band, 0.05);
  EXPECT_EQ(again.health.stall, telemetry::HealthAction::kAbort);
  EXPECT_DOUBLE_EQ(again.health.stall_timeout_s, 30.0);
  EXPECT_EQ(again.health.thermo_tail, 16);
  EXPECT_EQ(again.health.bundle_dir, "rt.triage");
  EXPECT_EQ(again.health.inject_nan_step, 2);
  // Untouched defaults stay implicit: a default scenario round-trips to a
  // deck with no health.* or telemetry.snapshot keys at all.
  const auto plain = deck_from_scenario(scenario_from_deck(
      parse_deck_string("")));
  for (const auto& e : plain.entries) {
    EXPECT_EQ(e.key.rfind("health.", 0), std::string::npos) << e.key;
    EXPECT_NE(e.key, "telemetry.snapshot");
  }
}

TEST(Scenario, DistKeysValidateEagerlyAndRoundTrip) {
  // dist.* keys are dead configuration off a ranks: backend.
  try {
    scenario_from_deck(
        parse_deck_string("backend = sharded:2\ndist.timeout = 10\n",
                          "d.deck"));
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("d.deck:2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("ranks:M"), std::string::npos);
  }
  // The kill drill is a pair: either half alone would silently never fire.
  EXPECT_THROW(scenario_from_deck(parse_deck_string(
                   "backend = ranks:2\ndist.kill_rank = 0\n")),
               Error);
  EXPECT_THROW(scenario_from_deck(parse_deck_string(
                   "backend = ranks:2\ndist.kill_step = 3\n")),
               Error);
  // The killed rank must exist under the configured rank count.
  EXPECT_THROW(scenario_from_deck(parse_deck_string(
                   "backend = ranks:2\ndist.kill_rank = 2\n"
                   "dist.kill_step = 3\n")),
               Error);
  // Value validation is eager too.
  EXPECT_THROW(scenario_from_deck(parse_deck_string(
                   "backend = ranks:2\ndist.timeout = 0\n")),
               Error);

  const auto sc = scenario_from_deck(parse_deck_string(
      "backend = ranks:4\ndist.timeout = 15\n"
      "dist.kill_rank = 3\ndist.kill_step = 5\n"));
  EXPECT_DOUBLE_EQ(sc.dist_timeout_s, 15.0);
  EXPECT_EQ(sc.dist_kill_rank, 3);
  EXPECT_EQ(sc.dist_kill_step, 5);
  const auto again = scenario_from_deck(deck_from_scenario(sc));
  EXPECT_DOUBLE_EQ(again.dist_timeout_s, 15.0);
  EXPECT_EQ(again.dist_kill_rank, 3);
  EXPECT_EQ(again.dist_kill_step, 5);

  // Non-ranks scenarios round-trip without any dist.* keys (byte-stable
  // embedded checkpoint decks).
  const auto plain = deck_from_scenario(scenario_from_deck(
      parse_deck_string("backend = sharded:2\n")));
  for (const auto& e : plain.entries) {
    EXPECT_EQ(e.key.rfind("dist.", 0), std::string::npos) << e.key;
  }
}

TEST(Scenario, BuildEngineHonorsBackendAndOverride) {
  const auto sc = scenario_from_deck(parse_deck_string(
      "element = Ta\ngeometry = slab\nreplicate = 3 3 2\n"
      "backend = wafer\n"));
  const auto structure = build_structure(sc);
  auto wafer = build_engine(sc, structure);
  EXPECT_STREQ(wafer->backend_name(), "wafer-serial");
  auto ref = build_engine(sc, structure, "reference");
  EXPECT_STREQ(ref->backend_name(), "reference-fp64");
  auto sharded = build_engine(sc, structure, "sharded:2");
  EXPECT_STREQ(sharded->backend_name(), "sharded-wafer");
  auto ranks = build_engine(sc, structure, "ranks:2");
  EXPECT_STREQ(ranks->backend_name(), "ranks");
  EXPECT_EQ(ranks->atom_count(), structure.size());
  EXPECT_EQ(wafer->atom_count(), structure.size());
}

}  // namespace
}  // namespace wsmd::scenario
