/// \file test_runner_stages.cpp
/// Runner-side regressions that fell out of the checkpoint work:
///
///   - The thermostat-rescale schedule, pinned per stage kind through
///     stage_rescales_after(): equilibrate, ramp, and *quench* all honor
///     rescale_interval (quench historically rescaled every step) and all
///     fire on the stage's final step; thermalize and run never rescale.
///     An integration check pins the consequence: equilibrate and quench
///     with identical parameters now produce identical thermo streams.
///
///   - resolve_output_path(): absolute paths pass through untouched (the
///     old front()!='/' test missed nothing on POSIX but string
///     concatenation mangled "./"-prefixed paths), relative paths join
///     under --output-dir with proper path semantics, and nested parents
///     are created.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "io/thermo_log.hpp"
#include "scenario/deck.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"

namespace wsmd::scenario {
namespace {

namespace fs = std::filesystem;

Stage stage_of(Stage::Kind kind, long steps) {
  Stage st;
  st.kind = kind;
  st.t0 = 300.0;
  st.t1 = 350.0;
  st.steps = steps;
  return st;
}

TEST(RescaleSchedule, AllFourStageKindsPinned) {
  const int interval = 4;
  // Thermostatted stages: every interval-th step of the stage, plus the
  // final step. 10 steps at interval 4 -> steps 4, 8, 10.
  for (const auto kind : {Stage::Kind::kEquilibrate, Stage::Kind::kRamp,
                          Stage::Kind::kQuench}) {
    const auto st = stage_of(kind, 10);
    std::vector<long> fired;
    for (long k = 1; k <= st.steps; ++k) {
      if (stage_rescales_after(st, k, interval)) fired.push_back(k);
    }
    EXPECT_EQ(fired, (std::vector<long>{4, 8, 10}))
        << "stage kind " << st.name();
  }
  // A stage shorter than the interval still thermostats once, at its end.
  for (const auto kind : {Stage::Kind::kEquilibrate, Stage::Kind::kRamp,
                          Stage::Kind::kQuench}) {
    const auto st = stage_of(kind, 3);
    EXPECT_FALSE(stage_rescales_after(st, 1, interval));
    EXPECT_FALSE(stage_rescales_after(st, 2, interval));
    EXPECT_TRUE(stage_rescales_after(st, 3, interval)) << st.name();
  }
  // Free stages never rescale.
  for (const auto kind : {Stage::Kind::kRun, Stage::Kind::kThermalize}) {
    const auto st = stage_of(kind, 10);
    for (long k = 1; k <= st.steps; ++k) {
      EXPECT_FALSE(stage_rescales_after(st, k, interval)) << st.name();
    }
  }
}

TEST(RescaleSchedule, QuenchAndEquilibrateNowShareOneSchedule) {
  // Same target, steps, seed, interval: the two stage kinds must produce
  // bit-identical thermo streams — the only difference was the rescale
  // cadence, and that difference was the bug.
  const std::string base = ::testing::TempDir() + "wsmd_stage_";
  const auto run_kind = [&](const std::string& stage_line,
                            const std::string& tag) {
    Deck deck = parse_deck_string(
        "name = stage_" + tag +
            "\n"
            "element = Cu\n"
            "geometry = slab\n"
            "replicate = 3 3 2\n"
            "seed = 91\n"
            "rescale_interval = 4\n"
            "thermalize = 300\n" +
            stage_line + "\n",
        "stage_test.deck");
    deck.set("thermo", base + tag + ".thermo.csv");
    deck.set("thermo_every", "1");
    const auto result = run_scenario(scenario_from_deck(deck));
    return result.thermo_path;
  };
  const auto eq_path = run_kind("equilibrate = 200 10", "eq");
  const auto qu_path = run_kind("quench = 200 10", "qu");
  const auto eq = io::read_thermo_csv_file(eq_path);
  const auto qu = io::read_thermo_csv_file(qu_path);
  ASSERT_EQ(eq.size(), qu.size());
  for (std::size_t k = 0; k < eq.size(); ++k) {
    EXPECT_EQ(eq[k].step, qu[k].step);
    EXPECT_EQ(eq[k].total_energy, qu[k].total_energy) << "step "
                                                      << eq[k].step;
    EXPECT_EQ(eq[k].temperature, qu[k].temperature) << "step " << eq[k].step;
  }
  std::remove(eq_path.c_str());
  std::remove(qu_path.c_str());
}

TEST(ResolveOutputPath, AbsolutePathsPassThroughUntouched) {
  const std::string abs = ::testing::TempDir() + "wsmd_paths_abs.csv";
  EXPECT_EQ(resolve_output_path(abs, "somewhere/else"),
            fs::path(abs).lexically_normal().string());
  EXPECT_EQ(resolve_output_path(abs, ""),
            fs::path(abs).lexically_normal().string());
}

TEST(ResolveOutputPath, DotPrefixedRelativePathsJoinCleanly) {
  const std::string dir = ::testing::TempDir() + "wsmd_paths_dot";
  const auto resolved = resolve_output_path("./x.csv", dir);
  EXPECT_EQ(resolved, (fs::path(dir) / "x.csv").lexically_normal().string())
      << "the './' must not survive the join";
  fs::remove_all(dir);
}

TEST(ResolveOutputPath, NestedRelativeOutputsCreateParents) {
  const std::string dir = ::testing::TempDir() + "wsmd_paths_nested";
  fs::remove_all(dir);
  const auto resolved = resolve_output_path("a/b/c.csv", dir);
  EXPECT_EQ(resolved,
            (fs::path(dir) / "a" / "b" / "c.csv").lexically_normal().string());
  EXPECT_TRUE(fs::is_directory(fs::path(dir) / "a" / "b"))
      << "parent directories must exist so the writer can open the file";
  fs::remove_all(dir);
}

TEST(ResolveOutputPath, EmptyStaysEmpty) {
  EXPECT_EQ(resolve_output_path("", "out"), "");
}

}  // namespace
}  // namespace wsmd::scenario
