/// \file test_resume.cpp
/// Checkpoint/restart at the scenario level: the invariant this pins is
/// *resume-after-kill reproduces the uninterrupted run* — a run killed
/// mid-stage and resumed from its last checkpoint must produce the same
/// thermo and observable series as the run that never stopped. Exercised
/// on scenarios/cu_gb_mobility.deck (all four probes live) with kill
/// points inside two different stages, on both the reference backend and
/// sharded:3. Sharded-vs-serial parity is pinned bitwise by the engine
/// tests, so both backends are compared exactly here (stricter than the
/// FP32 acceptance band).
///
/// Also covered: the checkpoint deck keys' eager validation, the
/// embedded-deck round trip (deck_from_scenario), and the rejection of
/// resumes whose overrides change the schedule or the structure.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "io/checkpoint.hpp"
#include "io/series.hpp"
#include "io/thermo_log.hpp"
#include "scenario/deck.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "util/error.hpp"

namespace wsmd::scenario {
namespace {

std::string gb_deck_path() {
  return std::string(WSMD_SOURCE_DIR) + "/scenarios/cu_gb_mobility.deck";
}

/// The checkpoint's embedded deck as a parseable Deck (what `wsmd resume`
/// builds).
Deck embedded_deck(const io::CheckpointData& ckpt) {
  return deck_from_entries(ckpt.deck, "<checkpoint>");
}

void expect_rows_equal(const io::Series& straight, const io::Series& resumed,
                       long from_step, const std::string& label) {
  ASSERT_EQ(straight.columns, resumed.columns) << label;
  const bool has_step =
      !straight.columns.empty() && straight.columns[0] == "step";
  std::vector<std::size_t> keep;
  for (std::size_t r = 0; r < straight.rows.size(); ++r) {
    if (!has_step || straight.rows[r][0] >= static_cast<double>(from_step)) {
      keep.push_back(r);
    }
  }
  ASSERT_EQ(keep.size(), resumed.rows.size())
      << label << ": row count from step " << from_step;
  for (std::size_t r = 0; r < keep.size(); ++r) {
    for (std::size_t c = 0; c < straight.columns.size(); ++c) {
      ASSERT_EQ(straight.rows[keep[r]][c], resumed.rows[r][c])
          << label << ": column '" << straight.columns[c] << "' row " << r;
    }
  }
}

TEST(Resume, KillMidStageReproducesTheUninterruptedRun) {
  for (const std::string backend : {"reference", "sharded:3"}) {
    const std::string base =
        ::testing::TempDir() + "wsmd_resume_" + backend.substr(0, 3);

    Deck deck = parse_deck_file(gb_deck_path());
    deck.set("xyz", "");  // trajectory not under test
    deck.set("summary", "");
    deck.set("thermo", base + ".straight.thermo.csv");
    deck.set("thermo_every", "1");
    deck.set("observe.prefix", base + ".straight");
    deck.set("observe.format", "csv");
    deck.set("checkpoint.every", "5");
    deck.set("checkpoint.path", base + ".*.ckpt");

    RunOptions opt;
    opt.backend_override = backend;
    const auto straight = run_scenario(scenario_from_deck(deck), opt);
    // Schedule: thermalize + equilibrate 10 + run 20 = 30 steps,
    // checkpoints at 5,10,...,30.
    ASSERT_EQ(straight.checkpoints_written, 6u) << backend;
    const auto straight_thermo =
        io::read_thermo_csv_file(straight.thermo_path);

    // Kill points: step 5 is mid-equilibrate, step 15 mid-run — the
    // resumed thermostat schedule must continue from the saved stage
    // cursor, not restart the stage.
    for (const long at : {5L, 15L}) {
      const auto ckpt = io::read_checkpoint_file(
          base + "." + std::to_string(at) + ".ckpt");
      EXPECT_EQ(ckpt.engine.step, at);
      EXPECT_EQ(ckpt.probes.size(), 4u) << "all four probes checkpointed";
      // The embedded deck records the *effective* backend — the
      // --backend= override of the original run, not the deck's — so a
      // plain `wsmd resume CKPT` continues where the checkpoint ran.
      for (const auto& [key, value] : ckpt.deck) {
        if (key == "backend") {
          EXPECT_EQ(value, backend);
        }
      }

      Deck rdeck = embedded_deck(ckpt);
      rdeck.set("thermo", base + ".resumed.thermo.csv");
      rdeck.set("observe.prefix", base + ".resumed");
      rdeck.set("checkpoint.every", "0");  // don't overwrite the kill set
      const auto resumed =
          resume_scenario(scenario_from_deck(rdeck), ckpt, opt);
      EXPECT_EQ(resumed.resumed_from_step, at);
      EXPECT_EQ(resumed.final_thermo.step, 30);

      const std::string label =
          backend + " resumed@" + std::to_string(at);
      // Thermo: the resumed log opens with the restored step and must
      // then match the uninterrupted stream sample-for-sample.
      const auto resumed_thermo =
          io::read_thermo_csv_file(resumed.thermo_path);
      std::size_t k0 = 0;
      while (k0 < straight_thermo.size() && straight_thermo[k0].step < at) {
        ++k0;
      }
      ASSERT_EQ(straight_thermo.size() - k0, resumed_thermo.size()) << label;
      for (std::size_t k = 0; k < resumed_thermo.size(); ++k) {
        const auto& g = straight_thermo[k0 + k];
        const auto& r = resumed_thermo[k];
        ASSERT_EQ(g.step, r.step) << label;
        ASSERT_EQ(g.potential_energy, r.potential_energy)
            << label << " step " << g.step;
        ASSERT_EQ(g.kinetic_energy, r.kinetic_energy)
            << label << " step " << g.step;
        ASSERT_EQ(g.temperature, r.temperature) << label << " step "
                                                << g.step;
      }

      // Observables: every probe's resumed stream continues the
      // uninterrupted series (rows at steps > kill point), and the
      // finish-time RDF table — accumulated across the kill — matches
      // wholesale.
      ASSERT_EQ(resumed.observables.size(), straight.observables.size());
      for (std::size_t p = 0; p < resumed.observables.size(); ++p) {
        const auto& probe = resumed.observables[p];
        const auto straight_series =
            io::read_series_csv_file(straight.observables[p].path);
        const auto resumed_series = io::read_series_csv_file(probe.path);
        if (probe.kind == "rdf") {
          expect_rows_equal(straight_series, resumed_series, 0,
                            label + " rdf");
        } else {
          expect_rows_equal(straight_series, resumed_series, at + 1,
                            label + " " + probe.kind);
        }
        std::remove(probe.path.c_str());
      }
      std::remove(resumed.thermo_path.c_str());
    }
    for (const auto& o : straight.observables) std::remove(o.path.c_str());
    std::remove(straight.thermo_path.c_str());
    for (long s = 5; s <= 30; s += 5) {
      std::remove((base + "." + std::to_string(s) + ".ckpt").c_str());
    }
  }
}

TEST(Resume, RejectsScheduleAndStructureChanges) {
  const std::string base = ::testing::TempDir() + "wsmd_resume_reject";
  Deck deck = parse_deck_file(gb_deck_path());
  deck.set("xyz", "");
  deck.set("summary", "");
  deck.set("thermo", "");
  deck.set("observe.prefix", base + ".straight");
  deck.set("checkpoint.every", "15");
  deck.set("checkpoint.path", base + ".ckpt");
  const auto result = run_scenario(scenario_from_deck(deck));
  ASSERT_EQ(result.checkpoints_written, 2u);  // steps 15 and 30 (overwrite)
  const auto ckpt = io::read_checkpoint_file(base + ".ckpt");

  {
    // A schedule override desynchronizes the saved cursor.
    Deck rdeck = embedded_deck(ckpt);
    rdeck.set("run", "50");
    rdeck.set("observe.prefix", base + ".r1");
    EXPECT_THROW(resume_scenario(scenario_from_deck(rdeck), ckpt, {}),
                 wsmd::Error);
  }
  {
    // A structure override builds different atoms.
    Deck rdeck = embedded_deck(ckpt);
    rdeck.set("gb_atoms", "400");
    rdeck.set("observe.prefix", base + ".r2");
    EXPECT_THROW(resume_scenario(scenario_from_deck(rdeck), ckpt, {}),
                 wsmd::Error);
  }
  {
    // An element override is a different material entirely.
    Deck rdeck = embedded_deck(ckpt);
    rdeck.set("element", "Ta");
    rdeck.set("observe.prefix", base + ".r3");
    EXPECT_THROW(resume_scenario(scenario_from_deck(rdeck), ckpt, {}),
                 wsmd::Error);
  }
  {
    // A same-shape schedule with a different target temperature keeps
    // every step count identical — the cursor arithmetic alone cannot
    // tell, so the stage-for-stage comparison must.
    Deck rdeck = embedded_deck(ckpt);
    rdeck.set("thermalize", "300");
    rdeck.set("equilibrate", "500 10");  // deck says 300 K
    rdeck.set("run", "20");
    rdeck.set("observe.prefix", base + ".r4");
    EXPECT_THROW(resume_scenario(scenario_from_deck(rdeck), ckpt, {}),
                 wsmd::Error);
  }
  {
    // The thermostat cadence is part of the schedule too.
    Deck rdeck = embedded_deck(ckpt);
    rdeck.set("rescale_interval", "3");
    rdeck.set("observe.prefix", base + ".r5");
    EXPECT_THROW(resume_scenario(scenario_from_deck(rdeck), ckpt, {}),
                 wsmd::Error);
  }
  {
    // Physics knobs that silently change the continued trajectory: the
    // integration timestep and the wafer atom-swap cadence.
    Deck rdeck = embedded_deck(ckpt);
    rdeck.set("dt", "0.004");
    rdeck.set("observe.prefix", base + ".r6");
    EXPECT_THROW(resume_scenario(scenario_from_deck(rdeck), ckpt, {}),
                 wsmd::Error);
  }
  {
    Deck rdeck = embedded_deck(ckpt);
    rdeck.set("swap_interval", "5");
    rdeck.set("observe.prefix", base + ".r7");
    EXPECT_THROW(resume_scenario(scenario_from_deck(rdeck), ckpt, {}),
                 wsmd::Error);
  }
  {
    // Observable *analysis* parameters are part of the accumulated state:
    // an RDF histogram binned over a different range must not merge with
    // the checkpointed one. (observe.prefix/format stay free — every
    // resume in this suite overrides the prefix.)
    Deck rdeck = embedded_deck(ckpt);
    rdeck.set("observe.rdf_rcut", "3.0");
    rdeck.set("observe.prefix", base + ".r8");
    EXPECT_THROW(resume_scenario(scenario_from_deck(rdeck), ckpt, {}),
                 wsmd::Error);
  }
  {
    Deck rdeck = embedded_deck(ckpt);
    rdeck.set("observe.every", "5");
    rdeck.set("observe.prefix", base + ".r9");
    EXPECT_THROW(resume_scenario(scenario_from_deck(rdeck), ckpt, {}),
                 wsmd::Error);
  }
  {
    // The potential evaluation path (profile tables vs analytic form) is
    // part of the trajectory: a checkpoint written under
    // potential=tabulated (the default) must not continue on the analytic
    // kernels.
    Deck rdeck = embedded_deck(ckpt);
    rdeck.set("potential", "analytic");
    rdeck.set("observe.prefix", base + ".r10");
    EXPECT_THROW(resume_scenario(scenario_from_deck(rdeck), ckpt, {}),
                 wsmd::Error);
  }
  for (const auto& o : result.observables) std::remove(o.path.c_str());
  std::remove((base + ".ckpt").c_str());
}

TEST(Resume, AnalyticModeResumesBitwiseUnderItsOwnKey) {
  // The analytic path keeps the same kill-and-resume guarantee as the
  // tabulated default — and the embedded deck carries `potential =
  // analytic`, so a plain resume continues on the matching kernels.
  const std::string base = ::testing::TempDir() + "wsmd_resume_analytic";
  const char* spec =
      "element = Cu\n"
      "geometry = slab\n"
      "scale = 64\n"
      "potential = analytic\n"
      "thermalize = 120\n"
      "run = 12\n"
      "thermo_every = 1\n";
  Deck deck = parse_deck_string(spec, "<analytic-resume>");
  deck.set("name", "analytic_resume");
  deck.set("thermo", base + ".straight.thermo.csv");
  deck.set("checkpoint.every", "6");
  deck.set("checkpoint.path", base + ".*.ckpt");
  const auto straight = run_scenario(scenario_from_deck(deck));
  ASSERT_GE(straight.checkpoints_written, 2u);

  const auto ckpt = io::read_checkpoint_file(base + ".6.ckpt");
  EXPECT_EQ(embedded_deck(ckpt).get("potential"), "analytic");
  Deck rdeck = embedded_deck(ckpt);
  rdeck.set("thermo", base + ".resumed.thermo.csv");
  rdeck.set("checkpoint.every", "0");
  resume_scenario(scenario_from_deck(rdeck), ckpt, {});

  expect_rows_equal(
      io::read_series_csv_file(base + ".straight.thermo.csv"),
      io::read_series_csv_file(base + ".resumed.thermo.csv"),
      /*from_step=*/6, "analytic thermo");
  for (const auto* suffix :
       {".straight.thermo.csv", ".resumed.thermo.csv", ".6.ckpt",
        ".12.ckpt"}) {
    std::remove((base + suffix).c_str());
  }
}

TEST(Resume, OffGridCheckpointKeepsTheThermoTailAligned) {
  // thermo_every=10 with a checkpoint at step 15: the resumed log must
  // start at step 20, not emit an off-grid overlap row at 15 the
  // uninterrupted log does not have.
  const std::string base = ::testing::TempDir() + "wsmd_resume_offgrid";
  Deck deck = parse_deck_string(
      "name = offgrid\n"
      "element = Cu\n"
      "geometry = slab\n"
      "replicate = 3 3 2\n"
      "seed = 17\n"
      "thermalize = 300\n"
      "run = 30\n",
      "offgrid.deck");
  deck.set("thermo", base + ".straight.csv");
  deck.set("thermo_every", "10");
  deck.set("checkpoint.every", "15");
  deck.set("checkpoint.path", base + ".*.ckpt");
  const auto straight = run_scenario(scenario_from_deck(deck));
  const auto ckpt = io::read_checkpoint_file(base + ".15.ckpt");

  Deck rdeck = embedded_deck(ckpt);
  rdeck.set("thermo", base + ".resumed.csv");
  rdeck.set("checkpoint.every", "0");
  const auto resumed = resume_scenario(scenario_from_deck(rdeck), ckpt, {});

  const auto full = io::read_thermo_csv_file(straight.thermo_path);
  const auto tail = io::read_thermo_csv_file(resumed.thermo_path);
  ASSERT_EQ(tail.size(), 2u);  // steps 20 and 30 only
  EXPECT_EQ(tail[0].step, 20);
  EXPECT_EQ(tail[1].step, 30);
  for (std::size_t k = 0; k < tail.size(); ++k) {
    const auto& g = full[full.size() - tail.size() + k];
    EXPECT_EQ(g.step, tail[k].step);
    EXPECT_EQ(g.total_energy, tail[k].total_energy);
  }
  std::remove(straight.thermo_path.c_str());
  std::remove(resumed.thermo_path.c_str());
  std::remove((base + ".15.ckpt").c_str());
  std::remove((base + ".30.ckpt").c_str());
}

TEST(Resume, StarMayExpandIntoDirectoryComponents) {
  // `checkpoint.path = snaps-*/run.ckpt` puts the step number in a
  // directory name: each expanded parent must be created at write time,
  // and no literal "snaps-*" junk directory may appear.
  namespace fs = std::filesystem;
  const std::string base = ::testing::TempDir() + "wsmd_resume_stardir";
  fs::remove_all(base);
  Deck deck = parse_deck_string(
      "name = stardir\n"
      "element = Cu\n"
      "geometry = slab\n"
      "replicate = 3 3 2\n"
      "seed = 23\n"
      "thermalize = 300\n"
      "run = 20\n",
      "stardir.deck");
  deck.set("checkpoint.every", "10");
  deck.set("checkpoint.path", base + "/snaps-*/run.ckpt");
  const auto result = run_scenario(scenario_from_deck(deck));
  EXPECT_EQ(result.checkpoints_written, 2u);
  EXPECT_TRUE(fs::exists(base + "/snaps-10/run.ckpt"));
  EXPECT_TRUE(fs::exists(base + "/snaps-20/run.ckpt"));
  EXPECT_FALSE(fs::exists(base + "/snaps-*"));
  const auto ckpt = io::read_checkpoint_file(base + "/snaps-10/run.ckpt");
  EXPECT_EQ(ckpt.engine.step, 10);
  fs::remove_all(base);
}

TEST(Resume, EmbeddedDeckRoundTripsTheScenario) {
  Deck deck = parse_deck_file(gb_deck_path());
  deck.set("backend", "sharded:2");
  deck.set("checkpoint.every", "7");
  const auto sc = scenario_from_deck(deck);
  const auto sc2 = scenario_from_deck(deck_from_scenario(sc));

  EXPECT_EQ(sc2.name, sc.name);
  EXPECT_EQ(sc2.element, sc.element);
  EXPECT_EQ(sc2.geometry, sc.geometry);
  EXPECT_EQ(sc2.tilt_angle_deg, sc.tilt_angle_deg);
  EXPECT_EQ(sc2.gb_target_atoms, sc.gb_target_atoms);
  EXPECT_EQ(sc2.backend, sc.backend);
  EXPECT_EQ(sc2.dt, sc.dt);
  EXPECT_EQ(sc2.seed, sc.seed);
  EXPECT_EQ(sc2.rescale_interval, sc.rescale_interval);
  ASSERT_EQ(sc2.schedule.size(), sc.schedule.size());
  for (std::size_t i = 0; i < sc.schedule.size(); ++i) {
    EXPECT_EQ(sc2.schedule[i].kind, sc.schedule[i].kind);
    EXPECT_EQ(sc2.schedule[i].t0, sc.schedule[i].t0);
    EXPECT_EQ(sc2.schedule[i].t1, sc.schedule[i].t1);
    EXPECT_EQ(sc2.schedule[i].steps, sc.schedule[i].steps);
  }
  EXPECT_EQ(sc2.xyz_path, sc.xyz_path);
  EXPECT_EQ(sc2.xyz_every, sc.xyz_every);
  EXPECT_EQ(sc2.thermo_path, sc.thermo_path);
  EXPECT_EQ(sc2.observe.probes, sc.observe.probes);
  EXPECT_EQ(sc2.observe.every, sc.observe.every);
  EXPECT_EQ(sc2.observe.gb_axis, sc.observe.gb_axis);
  EXPECT_EQ(sc2.observe.csp_threshold, sc.observe.csp_threshold);
  EXPECT_EQ(sc2.checkpoint_every, sc.checkpoint_every);
  EXPECT_EQ(sc2.checkpoint_path, sc.checkpoint_path);
}

TEST(CheckpointKeys, ValidateEagerly) {
  const auto sc_of = [](const std::string& text) {
    return scenario_from_deck(parse_deck_string(text, "test.deck"));
  };
  // Path without a cadence key would silently never checkpoint.
  EXPECT_THROW(sc_of("thermalize = 300\nrun = 5\ncheckpoint.path = x.ckpt"),
               wsmd::Error);
  // Negative cadence.
  EXPECT_THROW(sc_of("run = 5\ncheckpoint.every = -1"), wsmd::Error);
  // Non-numeric cadence.
  EXPECT_THROW(sc_of("run = 5\ncheckpoint.every = soon"), wsmd::Error);
  // Empty path.
  EXPECT_THROW(sc_of("run = 5\ncheckpoint.every = 5\ncheckpoint.path ="),
               wsmd::Error);
  // Defaults: path falls back to <name>.ckpt; explicit 0 disables.
  const auto sc =
      sc_of("name = ck\nthermalize = 300\nrun = 5\ncheckpoint.every = 2");
  EXPECT_EQ(sc.checkpoint_every, 2);
  EXPECT_EQ(sc.checkpoint_path, "ck.ckpt");
  const auto off = sc_of(
      "run = 5\ncheckpoint.every = 2\ncheckpoint.path = x.ckpt\n"
      "checkpoint.every = 0");
  EXPECT_EQ(off.checkpoint_every, 0);
}

}  // namespace
}  // namespace wsmd::scenario
