/// \file test_scenario_golden.cpp
/// Golden-run regression harness: every checked-in scenario deck under
/// scenarios/ is replayed on the reference and sharded-wafer backends and
/// the thermo stream is compared against the recorded golden log
/// (scenarios/golden/<name>.thermo.csv).
///
/// This is what turns CI from "unit tests pass" into "the physics didn't
/// drift": any change to the potential, integrator, lattice generators,
/// defect streams, thermostat stages, or engine phase kernels that alters
/// the trajectory shows up as a thermo mismatch here.
///
/// Tolerances: the reference replay must match the golden (also recorded
/// on the reference backend) to FP64 replay precision — only compiler
/// codegen differences are allowed through. The sharded-wafer replay runs
/// the same physics in FP32 with half-step kinetic-energy convention
/// (engine/engine.hpp), so it gets a physics-level band; sharded-vs-serial
/// wafer bitwise parity is already pinned by the engine tests.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "io/series.hpp"
#include "io/thermo_log.hpp"
#include "scenario/deck.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"

namespace wsmd::scenario {
namespace {

namespace fs = std::filesystem;

std::string scenarios_dir() { return std::string(WSMD_SOURCE_DIR) + "/scenarios"; }

std::vector<std::string> discover_decks() {
  std::vector<std::string> decks;
  for (const auto& entry : fs::directory_iterator(scenarios_dir())) {
    if (entry.path().extension() == ".deck") {
      decks.push_back(entry.path().string());
    }
  }
  std::sort(decks.begin(), decks.end());
  return decks;
}

struct Tolerance {
  double energy_rel;   ///< pe / total energy, relative to the golden value
  double energy_abs;   ///< absolute floor (eV)
  double temp_abs;     ///< temperature band (K)
};

/// Reference replay: FP64 determinism up to compiler codegen.
constexpr Tolerance kReferenceTol{1e-5, 1e-6, 0.5};
/// Wafer replay: FP32 state + half-step KE convention. Bands sit ~4x above
/// the observed cross-backend spread at CI sizes, far below any real
/// physics drift (wrong potential/integrator shifts energies by eV/atom).
constexpr Tolerance kWaferTol{8e-3, 0.1, 45.0};
/// Wafer replay of pair_style=lj decks: the LJ well (~0.01 eV) is ~40x
/// shallower than EAM cohesion, so the same FP32 state noise decorrelates
/// a chaotic melt trajectory to a larger *relative* energy spread (observed
/// max ~1.3% through the ar_lj_melt ramp; band ~3x that).
constexpr Tolerance kLjWaferTol{4e-2, 0.2, 45.0};

void compare_stream(const std::vector<io::ThermoSample>& golden,
                    const std::vector<io::ThermoSample>& got,
                    const Tolerance& tol, const std::string& label) {
  ASSERT_EQ(golden.size(), got.size()) << label << ": sample count drifted";
  for (std::size_t k = 0; k < golden.size(); ++k) {
    const auto& g = golden[k];
    const auto& r = got[k];
    ASSERT_EQ(g.step, r.step) << label << ": step sequence drifted at row "
                              << k;
    const auto band = [&](double value) {
      return std::max(tol.energy_abs, tol.energy_rel * std::fabs(value));
    };
    EXPECT_NEAR(r.potential_energy, g.potential_energy,
                band(g.potential_energy))
        << label << ": potential energy drifted at step " << g.step;
    EXPECT_NEAR(r.total_energy, g.total_energy, band(g.total_energy))
        << label << ": total energy drifted at step " << g.step;
    EXPECT_NEAR(r.temperature, g.temperature, tol.temp_abs)
        << label << ": temperature drifted at step " << g.step;
  }
}

/// Per-column tolerance for golden observable series: band =
/// max(abs, rel * |golden|). Two tiers mirror the thermo tolerances —
/// "tight" admits only compiler-codegen divergence of the FP64 replay,
/// "loose" admits the FP32 wafer state (bands ~10x the observed
/// sharded-vs-reference spread at CI sizes, far below physics drift).
struct ColumnTol {
  double rel = 0.0;
  double abs = 0.0;
};

ColumnTol observable_tolerance(const std::string& column, bool tight) {
  if (column == "step") return {0.0, 0.0};
  if (column == "time_ps" || column == "r_A") return {0.0, 1e-9};
  if (column == "msd_A2") return tight ? ColumnTol{1e-3, 1e-4}
                                       : ColumnTol{0.1, 3e-3};
  if (column == "vacf") return tight ? ColumnTol{0.0, 1e-3}
                                     : ColumnTol{0.0, 5e-2};
  if (column == "raw_A2_ps2") return tight ? ColumnTol{1e-3, 1e-2}
                                           : ColumnTol{0.1, 0.1};
  // Integer counts: a few atoms may flip across the CSP threshold (the
  // step-0 lattice is centrosymmetry-degenerate, so even codegen-level
  // position noise can reorder tied bonds).
  if (column == "defect_count") return tight ? ColumnTol{0.0, 4.0}
                                             : ColumnTol{0.0, 10.0};
  if (column == "defect_fraction") return tight ? ColumnTol{0.0, 6e-3}
                                                : ColumnTol{0.0, 1.5e-2};
  if (column == "mean_csp_A2") return tight ? ColumnTol{0.02, 0.5}
                                            : ColumnTol{0.05, 1.5};
  if (column == "gb_position_A") return tight ? ColumnTol{0.0, 0.1}
                                              : ColumnTol{0.0, 0.3};
  if (column == "g") return tight ? ColumnTol{0.02, 0.5}
                                  : ColumnTol{0.1, 1.5};
  ADD_FAILURE() << "no tolerance defined for observable column '" << column
                << "' — teach observable_tolerance() about it";
  return {0.0, 0.0};
}

void compare_series(const io::Series& golden, const io::Series& got,
                    bool tight, const std::string& label) {
  ASSERT_EQ(golden.columns, got.columns) << label << ": column set drifted";
  ASSERT_EQ(golden.rows.size(), got.rows.size())
      << label << ": row count drifted";
  for (std::size_t r = 0; r < golden.rows.size(); ++r) {
    for (std::size_t c = 0; c < golden.columns.size(); ++c) {
      const double g = golden.rows[r][c];
      const double v = got.rows[r][c];
      const auto tol = observable_tolerance(golden.columns[c], tight);
      EXPECT_NEAR(v, g, std::max(tol.abs, tol.rel * std::fabs(g)))
          << label << ": column '" << golden.columns[c] << "' drifted at row "
          << r;
    }
  }
}

class ScenarioGolden : public ::testing::TestWithParam<std::string> {};

TEST_P(ScenarioGolden, ReplayMatchesGoldenOnReferenceAndSharded) {
  const std::string deck_path = GetParam();
  const auto deck_name = fs::path(deck_path).stem().string();
  const std::string golden_path =
      scenarios_dir() + "/golden/" + deck_name + ".thermo.csv";
  ASSERT_TRUE(fs::exists(golden_path))
      << "no golden recorded for " << deck_name
      << " — run the deck on the reference backend and check in the "
         "thermo CSV";
  const auto golden = io::read_thermo_csv_file(golden_path);
  ASSERT_FALSE(golden.empty());

  // WSMD_GOLDEN_REF_THREADS=N replays the reference leg on the threaded
  // force sweep (backend reference:N). The trajectory is bitwise-identical
  // at any thread count, so the same goldens and tight tolerances apply —
  // CI's thread-determinism leg runs this at 1/2/8 workers.
  std::string ref_backend = "reference";
  if (const char* t = std::getenv("WSMD_GOLDEN_REF_THREADS")) {
    ref_backend += ":";
    ref_backend += t;
  }
  struct BackendCase {
    std::string backend;
    const Tolerance* tol;
  };
  for (const auto& bc : std::vector<BackendCase>{
           {ref_backend, &kReferenceTol}, {"sharded:3", &kWaferTol}}) {
    Deck deck = parse_deck_file(deck_path);
    const std::string tmp_base = ::testing::TempDir() + "wsmd_golden_" +
                                 deck_name + "_" + bc.backend;
    const std::string thermo_path = tmp_base + ".csv";
    // Replay wants only the thermo + observable streams: no
    // trajectory/summary clutter, full thermo sampling so every golden row
    // has a counterpart.
    deck.set("thermo", thermo_path);
    deck.set("thermo_format", "csv");
    deck.set("thermo_every", "1");
    deck.set("xyz", "");
    deck.set("summary", "");
    const auto sc_probe = scenario_from_deck(deck);
    if (sc_probe.observe.enabled()) {
      deck.set("observe.prefix", tmp_base);
      deck.set("observe.format", "csv");
    }
    const Tolerance* tol = bc.tol;
    if (tol == &kWaferTol && sc_probe.pair_style == "lj") tol = &kLjWaferTol;

    RunOptions opt;
    opt.backend_override = bc.backend;
    const auto result = run_scenario(scenario_from_deck(deck), opt);
    EXPECT_EQ(result.total_steps,
              golden.back().step);  // schedule length is part of the golden
    const auto got = io::read_thermo_csv_file(thermo_path);
    compare_stream(golden, got, *tol, deck_name + " on " + bc.backend);
    std::remove(thermo_path.c_str());

    // Observable streams replay against their own goldens — this is the
    // acceptance bar for the obs subsystem: RDF/MSD/VACF/GB-defect series
    // must be stable on the reference *and* wafer backends.
    const bool tight = bc.backend == ref_backend;
    for (const auto& probe : result.observables) {
      const std::string golden_series_path =
          scenarios_dir() + "/golden/" + deck_name + "." + probe.kind +
          ".csv";
      ASSERT_TRUE(fs::exists(golden_series_path))
          << "no golden " << probe.kind << " series recorded for "
          << deck_name;
      compare_series(io::read_series_csv_file(golden_series_path),
                     io::read_series_csv_file(probe.path), tight,
                     deck_name + "." + probe.kind + " on " + bc.backend);
      std::remove(probe.path.c_str());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Decks, ScenarioGolden,
                         ::testing::ValuesIn(discover_decks()),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           return fs::path(i.param).stem().string();
                         });

/// Distributed acceptance: the golden cu_slab deck replayed on the
/// executed ranks: backend at two rank counts must land inside the same
/// FP32 band the serial wafer replay uses. Per-atom trajectories are
/// bitwise-identical to the serial wafer (pinned by the engine tests); the
/// thermo stream differs only by the fixed-rank-order regrouping of the
/// global FP64 reductions, so any real halo/migration bug blows straight
/// through kWaferTol. One dedicated test instead of a parameterized third
/// leg: forking M processes per deck would triple the suite's cost.
TEST(ScenarioGoldenRanks, CuSlabMatchesGoldenOnTwoAndFourRanks) {
  const std::string deck_path = scenarios_dir() + "/cu_slab.deck";
  ASSERT_TRUE(fs::exists(deck_path));
  const auto golden =
      io::read_thermo_csv_file(scenarios_dir() + "/golden/cu_slab.thermo.csv");
  ASSERT_FALSE(golden.empty());

  for (const std::string backend : {"ranks:2", "ranks:4"}) {
    Deck deck = parse_deck_file(deck_path);
    const std::string thermo_path =
        ::testing::TempDir() + "wsmd_golden_cu_slab_" + backend + ".csv";
    deck.set("thermo", thermo_path);
    deck.set("thermo_format", "csv");
    deck.set("thermo_every", "1");
    deck.set("xyz", "");
    deck.set("summary", "");

    RunOptions opt;
    opt.backend_override = backend;
    const auto result = run_scenario(scenario_from_deck(deck), opt);
    EXPECT_EQ(result.backend_name, "ranks");
    EXPECT_EQ(result.total_steps, golden.back().step);
    const auto got = io::read_thermo_csv_file(thermo_path);
    compare_stream(golden, got, kWaferTol, "cu_slab on " + backend);
    std::remove(thermo_path.c_str());
  }
}

/// The harness is only meaningful while decks exist; catch an empty or
/// mislocated scenarios/ directory instead of vacuously passing.
TEST(ScenarioGoldenSuite, CoversTheCheckedInDecks) {
  const auto decks = discover_decks();
  EXPECT_GE(decks.size(), 3u) << "expected the three paper-derived decks";
  for (const auto& d : decks) {
    const auto name = fs::path(d).stem().string();
    EXPECT_TRUE(fs::exists(scenarios_dir() + "/golden/" + name +
                           ".thermo.csv"))
        << "deck " << name << " has no golden thermo log";
  }
}

}  // namespace
}  // namespace wsmd::scenario
