/// \file test_shm_channel.cpp
/// The shared-memory halo rings (dist/shm_channel): slot wrap-around over
/// many messages, capacity back-pressure and empty-ring timeouts, the
/// per-slot sequence counters catching torn/out-of-protocol writes, the
/// peer-socket death canary, zero-copy publish, and the /dev/shm
/// unlink-before-fork leak proofing.

#include "dist/shm_channel.hpp"

#include <gtest/gtest.h>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "dist/domain.hpp"

namespace wsmd::dist {
namespace {

namespace fs = std::filesystem;

/// Pair segment plus both ends' ring views, the way one rank pair holds
/// them in-process. `a` sends on ring i->j, `b` on j->i.
struct RingFixture {
  ShmPairSegment segment;
  ShmHalo a;  // rank_i's view
  ShmHalo b;  // rank_j's view

  explicit RingFixture(std::size_t slot_bytes = 256)
      : segment(static_cast<long>(::getpid()), 0, 1, slot_bytes),
        a(segment.halo_for(0)),
        b(segment.halo_for(1)) {}
};

/// No peer socket, generous deadline: waits that should never block.
ShmWait patient() { return ShmWait{-1, 5'000}; }
/// No peer socket, near-immediate deadline: waits expected to time out.
ShmWait impatient() { return ShmWait{-1, 20}; }

std::vector<float> payload_of(int step, std::size_t n) {
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<float>(step * 1000 + static_cast<int>(i));
  return v;
}

TEST(ShmRing, RoundTripsPayloadsThroughBothDirections) {
  RingFixture f;
  const auto sent = payload_of(1, 16);
  f.a.send.publish(Tag::kHaloFprime, sent.data(), sent.size() * sizeof(float),
                   patient());

  std::size_t size = 0;
  const std::uint8_t* p = f.b.recv.acquire(Tag::kHaloFprime, size, patient());
  ASSERT_EQ(size, sent.size() * sizeof(float));
  std::vector<float> got(sent.size());
  std::memcpy(got.data(), p, size);
  f.b.recv.release();
  EXPECT_EQ(got, sent);

  // The reverse direction is an independent ring.
  const auto back = payload_of(2, 8);
  f.b.send.publish(Tag::kHaloState, back.data(), back.size() * sizeof(float),
                   patient());
  p = f.a.recv.acquire(Tag::kHaloState, size, patient());
  ASSERT_EQ(size, back.size() * sizeof(float));
  EXPECT_EQ(std::memcmp(p, back.data(), size), 0);
  f.a.recv.release();
}

TEST(ShmRing, WrapsAroundTheTwoSlotsForManyMessages) {
  // Far more messages than slots: every slot is reused many times and the
  // sequence numbers keep advancing (2n+2 per message n).
  RingFixture f;
  for (int n = 0; n < 64; ++n) {
    const auto sent = payload_of(n, 4 + static_cast<std::size_t>(n % 3));
    f.a.send.publish(n % 2 == 0 ? Tag::kHaloFprime : Tag::kHaloState,
                     sent.data(), sent.size() * sizeof(float), patient());
    std::size_t size = 0;
    const std::uint8_t* p = f.b.recv.acquire(
        n % 2 == 0 ? Tag::kHaloFprime : Tag::kHaloState, size, patient());
    ASSERT_EQ(size, sent.size() * sizeof(float)) << "message " << n;
    EXPECT_EQ(std::memcmp(p, sent.data(), size), 0) << "message " << n;
    f.b.recv.release();
  }
}

TEST(ShmRing, EmptyPayloadsKeepTheSequenceAdvancing) {
  // Pairs with no atoms in a band still publish empty messages so both
  // sides' message counters stay in lockstep.
  RingFixture f;
  for (int n = 0; n < 8; ++n) {
    f.a.send.publish(Tag::kHaloFprime, nullptr, 0, patient());
    std::size_t size = 99;
    f.b.recv.acquire(Tag::kHaloFprime, size, patient());
    EXPECT_EQ(size, 0u);
    f.b.recv.release();
  }
}

TEST(ShmRing, ZeroCopyPublishGathersDirectlyIntoTheSlot) {
  RingFixture f;
  ShmWait w = patient();
  std::uint8_t* dst = f.a.send.begin_publish(w);
  const auto sent = payload_of(7, 12);
  std::memcpy(dst, sent.data(), sent.size() * sizeof(float));
  f.a.send.commit_publish(Tag::kHaloState, sent.size() * sizeof(float));

  std::size_t size = 0;
  const std::uint8_t* p = f.b.recv.acquire(Tag::kHaloState, size, patient());
  ASSERT_EQ(size, sent.size() * sizeof(float));
  EXPECT_EQ(std::memcmp(p, sent.data(), size), 0);
  f.b.recv.release();
}

TEST(ShmRing, FullRingTimesOutWhenTheConsumerStalls) {
  // Two slots: the third publish needs the consumer to advance. With a
  // stalled consumer the bounded wait must surface as TimeoutError, not a
  // hang (the lockstep protocol never reaches this state; the guard is for
  // broken peers).
  RingFixture f;
  const float x = 1.0f;
  f.a.send.publish(Tag::kHaloFprime, &x, sizeof(x), patient());
  f.a.send.publish(Tag::kHaloState, &x, sizeof(x), patient());
  EXPECT_THROW(f.a.send.publish(Tag::kHaloFprime, &x, sizeof(x), impatient()),
               TimeoutError);
}

TEST(ShmRing, EmptyRingTimesOutWhenTheProducerStalls) {
  RingFixture f;
  std::size_t size = 0;
  EXPECT_THROW(f.b.recv.acquire(Tag::kHaloFprime, size, impatient()),
               TimeoutError);
}

TEST(ShmRing, OversizedPayloadIsRejectedUpFront) {
  RingFixture f(64);
  std::vector<float> big(64);  // 256 bytes > 64-byte slots
  EXPECT_THROW(f.a.send.publish(Tag::kHaloFprime, big.data(),
                                big.size() * sizeof(float), patient()),
               wsmd::Error);
}

TEST(ShmRing, TornWriteIsCaughtByTheSlotSequence) {
  // Build rings over local memory so the test can corrupt the control
  // block the way a torn or out-of-protocol producer write would.
  alignas(64) shm_detail::RingHeader header{};
  header.head.store(0);
  header.tail.store(0);
  std::vector<std::uint8_t> slots(2 * 128);
  ShmRing producer(&header, slots.data(), 128);
  ShmRing consumer(&header, slots.data(), 128);

  const float x = 3.0f;
  producer.publish(Tag::kHaloFprime, &x, sizeof(x), patient());
  // Simulate the producer having started rewriting message 0's slot
  // before the consumer got to it: sequence shows "writing message 2".
  header.slot_seq[0].store(2 * 2 + 1);
  std::size_t size = 0;
  EXPECT_THROW(consumer.acquire(Tag::kHaloFprime, size, patient()),
               TransportError);
}

TEST(ShmRing, RewriteDuringInPlaceReadIsCaughtAtRelease) {
  alignas(64) shm_detail::RingHeader header{};
  header.head.store(0);
  header.tail.store(0);
  std::vector<std::uint8_t> slots(2 * 128);
  ShmRing producer(&header, slots.data(), 128);
  ShmRing consumer(&header, slots.data(), 128);

  const float x = 4.0f;
  producer.publish(Tag::kHaloFprime, &x, sizeof(x), patient());
  std::size_t size = 0;
  consumer.acquire(Tag::kHaloFprime, size, patient());
  // The producer must not touch the slot until release() advances tail; a
  // sequence bump during the in-place read is a protocol violation.
  header.slot_seq[0].store(2 * 2 + 2);
  EXPECT_THROW(consumer.release(), TransportError);
}

TEST(ShmRing, UnexpectedTagFailsLoudly) {
  RingFixture f;
  const float x = 5.0f;
  f.a.send.publish(Tag::kHaloState, &x, sizeof(x), patient());
  std::size_t size = 0;
  EXPECT_THROW(f.b.recv.acquire(Tag::kHaloFprime, size, patient()),
               TransportError);
}

TEST(ShmRing, DeadPeerSurfacesThroughTheSocketCanary) {
  // The consumer's wait polls the (idle) peer socket: when the peer's end
  // closes, the wait fails as PeerClosedError immediately — long before a
  // generous dist.timeout would fire.
  RingFixture f;
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  ::close(sv[1]);  // the "peer" dies
  ShmWait wait{sv[0], 60'000};
  std::size_t size = 0;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW(f.b.recv.acquire(Tag::kHaloFprime, size, wait),
               PeerClosedError);
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(10));
  ::close(sv[0]);
}

TEST(ShmRing, ConcurrentProducerConsumerStreamsWithoutCorruption) {
  // A real two-thread stream through shared memory: the consumer verifies
  // every payload byte of 500 messages. Any missed fence or slot-reuse
  // race shows up as a mismatch or a sequence error.
  RingFixture f(512);
  constexpr int kMessages = 500;
  std::thread producer([&] {
    for (int n = 0; n < kMessages; ++n) {
      const auto v = payload_of(n, 64);
      f.a.send.publish(Tag::kHaloFprime, v.data(), v.size() * sizeof(float),
                       patient());
    }
  });
  int mismatches = 0;
  for (int n = 0; n < kMessages; ++n) {
    std::size_t size = 0;
    const std::uint8_t* p = f.b.recv.acquire(Tag::kHaloFprime, size, patient());
    const auto expect = payload_of(n, 64);
    if (size != expect.size() * sizeof(float) ||
        std::memcmp(p, expect.data(), size) != 0) {
      ++mismatches;
    }
    f.b.recv.release();
  }
  producer.join();
  EXPECT_EQ(mismatches, 0);
}

TEST(ShmPairSegment, NeverLeavesADevShmEntryBehind) {
  // The coordinator unlinks the name before fork: the entry must be gone
  // the moment the constructor returns, so no rank death — SIGKILL
  // included — can leak it.
  const long pid = static_cast<long>(::getpid());
  const std::string entry =
      "/dev/shm" + shm_segment_name(pid, 4, 5);
  {
    ShmPairSegment seg(pid, 4, 5, 128);
    EXPECT_FALSE(fs::exists(entry)) << entry;
    // The mapping itself stays fully usable after the unlink.
    auto halo = seg.halo_for(4);
    const float x = 6.0f;
    halo.send.publish(Tag::kHaloFprime, &x, sizeof(x), patient());
    std::size_t size = 0;
    auto peer = seg.halo_for(5);
    const std::uint8_t* p = peer.recv.acquire(Tag::kHaloFprime, size,
                                              patient());
    ASSERT_EQ(size, sizeof(float));
    float got;
    std::memcpy(&got, p, sizeof(got));
    EXPECT_EQ(got, 6.0f);
    peer.recv.release();
  }
  EXPECT_FALSE(fs::exists(entry));
}

TEST(ShmPairSegment, ReclaimsAStaleNameFromACrashedRun) {
  // Debris from a crashed coordinator that recycled our pid: O_EXCL sees
  // EEXIST, the constructor unlinks and retries instead of failing.
  const long pid = static_cast<long>(::getpid());
  const std::string name = shm_segment_name(pid, 6, 7);
  int fd = ::shm_open(name.c_str(), O_CREAT | O_RDWR, 0600);
  ASSERT_GE(fd, 0);
  ::close(fd);
  ASSERT_TRUE(fs::exists("/dev/shm" + name));
  ShmPairSegment seg(pid, 6, 7, 64);
  EXPECT_FALSE(fs::exists("/dev/shm" + name));
}

TEST(ShmPairSegment, HaloViewsAreMirroredBetweenTheTwoRanks) {
  ShmPairSegment seg(static_cast<long>(::getpid()), 2, 3, 64);
  auto two = seg.halo_for(2);
  auto three = seg.halo_for(3);
  const float x = 8.0f;
  two.send.publish(Tag::kHaloState, &x, sizeof(x), patient());
  std::size_t size = 0;
  const std::uint8_t* p = three.recv.acquire(Tag::kHaloState, size, patient());
  ASSERT_EQ(size, sizeof(float));
  EXPECT_EQ(std::memcmp(p, &x, sizeof(x)), 0);
  three.recv.release();
  EXPECT_THROW(seg.halo_for(9), wsmd::Error);
}

}  // namespace
}  // namespace wsmd::dist
