/// \file test_domain.cpp
/// Domain-decomposition bookkeeping: row-strip partition properties, halo
/// interval arithmetic (including radii spanning whole neighbor strips),
/// deterministic pack order, the shared modeled halo cost, and the
/// rank-scratch path scheme that keeps concurrent ranks from colliding.

#include "dist/domain.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>

#include "eam/zhou.hpp"
#include "lattice/lattice.hpp"

namespace wsmd::dist {
namespace {

TEST(RowStrips, TileTheGridInOrder) {
  const auto strips = row_strips(7, 20, 3);
  ASSERT_EQ(strips.size(), 3u);
  EXPECT_EQ(strips.front().y0, 0);
  EXPECT_EQ(strips.back().y1, 20);
  for (std::size_t t = 0; t < strips.size(); ++t) {
    EXPECT_EQ(strips[t].x0, 0);
    EXPECT_EQ(strips[t].x1, 7);
    if (t > 0) {
      EXPECT_EQ(strips[t].y0, strips[t - 1].y1);
    }
  }
}

TEST(RowStrips, MoreStripsThanRowsLeavesEmpties) {
  const auto strips = row_strips(4, 3, 8);
  int covered = 0, empties = 0;
  for (const auto& s : strips) {
    covered += s.y1 - s.y0;
    if (s.empty()) ++empties;
  }
  EXPECT_EQ(covered, 3);
  EXPECT_EQ(empties, 5);
}

TEST(HaloRows, AdjacentStripsShareBandsOfWidthB) {
  const auto strips = row_strips(8, 12, 2);  // rows [0,6) and [6,12)
  const int b = 2;
  // Strip 1 needs rows [4,6) of strip 0; strip 0 needs rows [6,8) of 1.
  const RowSpan down = halo_rows(strips, 0, 1, b);
  EXPECT_EQ(down.lo, 4);
  EXPECT_EQ(down.hi, 6);
  const RowSpan up = halo_rows(strips, 1, 0, b);
  EXPECT_EQ(up.lo, 6);
  EXPECT_EQ(up.hi, 8);
  // A strip needs nothing from itself.
  EXPECT_TRUE(halo_rows(strips, 0, 0, b).empty());
}

TEST(HaloRows, FarApartStripsExchangeNothing) {
  const auto strips = row_strips(8, 30, 3);  // heights 10 each
  EXPECT_TRUE(halo_rows(strips, 0, 2, 3).empty());
  EXPECT_TRUE(halo_rows(strips, 2, 0, 3).empty());
}

TEST(HaloRows, RadiusSpanningWholeNeighborStripReachesFurther) {
  // Strip height 2 with b = 5: the ghost region of strip 2 spans strips
  // 0..1 entirely plus part of 3 — next-nearest peers appear.
  const auto strips = row_strips(4, 8, 4);  // heights 2 each
  const RowSpan from0 = halo_rows(strips, 0, 2, 5);
  EXPECT_FALSE(from0.empty());
  EXPECT_EQ(from0.lo, 0);
  EXPECT_EQ(from0.hi, 2);  // all of strip 0 is within 5 rows of strip 2
}

TEST(HaloPairs, ChainForSmallBAllPairsForLargeB) {
  const auto strips = row_strips(4, 30, 3);  // heights 10
  const auto chain = halo_pairs(strips, 3);
  ASSERT_EQ(chain.size(), 2u);
  EXPECT_EQ(chain[0], std::make_pair(0, 1));
  EXPECT_EQ(chain[1], std::make_pair(1, 2));

  const auto all = halo_pairs(strips, 25);  // b > 2 strip heights
  EXPECT_EQ(all.size(), 3u);  // (0,1), (0,2), (1,2) — lexicographic
  EXPECT_EQ(all[1], std::make_pair(0, 2));
}

TEST(HaloPairs, EmptyStripsHaveNoPairs) {
  const auto strips = row_strips(4, 2, 4);  // two strips empty
  for (const auto& [i, j] : halo_pairs(strips, 3)) {
    EXPECT_FALSE(strips[static_cast<std::size_t>(i)].empty());
    EXPECT_FALSE(strips[static_cast<std::size_t>(j)].empty());
  }
}

TEST(AtomsInRows, RowMajorAndComplete) {
  // Real mapping: every atom appears exactly once over the full row range,
  // in row-major core order (the deterministic wire order).
  const auto p = eam::zhou_parameters("Ta");
  const auto structure = lattice::replicate(
      lattice::UnitCell::of(p.structure, p.lattice_constant()), 4, 4, 3);
  const auto potential = std::make_shared<eam::ZhouEam>("Ta", p.paper_cutoff());
  core::WseMdConfig cfg;
  cfg.mapping.cell_size = p.lattice_constant();
  core::WseMd md(structure, potential, cfg);

  const auto& mapping = md.mapping();
  const auto atoms = atoms_in_rows(mapping, 0, mapping.grid_height());
  EXPECT_EQ(atoms.size(), md.atom_count());
  std::set<std::uint32_t> seen(atoms.begin(), atoms.end());
  EXPECT_EQ(seen.size(), atoms.size());

  // Concatenating per-strip lists reproduces the full list: pack order is
  // independent of the partition.
  const auto strips = row_strips(mapping.grid_width(), mapping.grid_height(), 3);
  std::vector<std::uint32_t> glued;
  for (const auto& s : strips) {
    const auto part = atoms_in_rows(mapping, s.y0, s.y1);
    glued.insert(glued.end(), part.begin(), part.end());
  }
  EXPECT_EQ(glued, atoms);
}

TEST(HaloCost, SingleStripIsFreeMoreStripsCostMore) {
  const auto model = wse::CostModel::paper_baseline();
  const auto one = row_strips(20, 20, 1);
  EXPECT_EQ(halo_cycles_per_step(one, 2, 20, 20, model), 0.0);

  const auto two = row_strips(20, 20, 2);
  const auto four = row_strips(20, 20, 4);
  const double c2 = halo_cycles_per_step(two, 2, 20, 20, model);
  const double c4 = halo_cycles_per_step(four, 2, 20, 20, model);
  EXPECT_GT(c2, 0.0);
  EXPECT_GT(c4, c2);

  // Two strips: ghost cores are the 2b-wide band either side of the shared
  // edge, clipped nowhere horizontally; x2 for two exchanges per step.
  const double expected = 2.0 * 2.0 * 20.0 * 2.0 * model.ghost_core_cycles();
  EXPECT_NEAR(c2, expected, 1e-9);
}

TEST(RunScopedNames, OneSchemeForScratchAndShmSegments) {
  // Every per-run resource name flows through the same helpers: a run is
  // pinned by kind + coordinator pid, a rank by the ".rankK" suffix.
  EXPECT_EQ(run_scoped_name("dist", 1234), "wsmd-dist-1234");
  EXPECT_EQ(run_scoped_name("shm", 7), "wsmd-shm-7");
  EXPECT_EQ(rank_suffix("stderr", 3), "stderr.rank3");
  EXPECT_EQ(rank_suffix(run_scoped_name("shm", 7), 0), "wsmd-shm-7.rank0");

  // shm_open names: leading slash, run-scoped, both pair members named.
  EXPECT_EQ(shm_segment_name(1234, 0, 1), "/wsmd-shm-1234.rank0-1");
  EXPECT_EQ(shm_segment_name(99, 2, 3), "/wsmd-shm-99.rank2-3");
  // Distinct runs and distinct pairs never collide.
  EXPECT_NE(shm_segment_name(1, 0, 1), shm_segment_name(2, 0, 1));
  EXPECT_NE(shm_segment_name(1, 0, 1), shm_segment_name(1, 0, 2));
}

TEST(ScratchPaths, RankSuffixedAndRunDisjoint) {
  EXPECT_EQ(rank_scratch_path("/tmp/out", "stderr", 3), "/tmp/out/stderr.rank3");
  EXPECT_EQ(rank_scratch_path("/tmp/out/", "stderr", 0),
            "/tmp/out/stderr.rank0");

  std::string dir;
  {
    ScratchDir scratch("");
    dir = scratch.path();
    EXPECT_TRUE(std::filesystem::is_directory(dir));
    // Pid-suffixed: two runs sharing a parent cannot collide.
    EXPECT_NE(dir.find(".wsmd-dist-"), std::string::npos);
    std::ofstream(scratch.rank_file("stderr", 1)) << "rank log\n";
    EXPECT_TRUE(std::filesystem::exists(dir + "/stderr.rank1"));
  }
  // Atomic teardown: the directory and everything in it are gone.
  EXPECT_FALSE(std::filesystem::exists(dir));
}

TEST(ScratchPaths, KeepSurvivesDestruction) {
  std::string dir;
  {
    ScratchDir scratch("");
    dir = scratch.path();
    std::ofstream(scratch.rank_file("stderr", 0)) << "evidence\n";
    scratch.keep();
  }
  EXPECT_TRUE(std::filesystem::exists(dir + "/stderr.rank0"));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace wsmd::dist
