/// \file test_distributed_engine.cpp
/// Executed multi-process backend vs the serial wafer engine: per-atom
/// trajectories must match bitwise at any rank count (the halo exchanges
/// transfer exact FP32 values), global reductions within the FP64 partial-
/// sum band, and the whole Engine surface — thermalize, snapshot/restore
/// across differing rank counts, dead-rank failure reporting — must behave
/// like any other backend.

#include "dist/distributed_engine.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>

#include "eam/zhou.hpp"
#include "engine/wafer_engine.hpp"
#include "engine/reference_engine.hpp"
#include "lattice/lattice.hpp"

namespace wsmd::dist {
namespace {

struct Fixture {
  lattice::Structure structure;
  eam::EamPotentialPtr potential;

  explicit Fixture(int nx = 6, int ny = 6, int nz = 4) {
    const auto p = eam::zhou_parameters("Ta");
    structure = lattice::replicate(
        lattice::UnitCell::of(p.structure, p.lattice_constant()), nx, ny, nz);
    potential = std::make_shared<eam::ZhouEam>("Ta", p.paper_cutoff());
  }

  core::WseMdConfig config() const {
    core::WseMdConfig cfg;
    cfg.mapping.cell_size = eam::zhou_parameters("Ta").lattice_constant();
    return cfg;
  }

  DistributedConfig dist_config(int ranks, int threads = 1) const {
    DistributedConfig dc;
    dc.wse = config();
    dc.ranks = ranks;
    dc.threads = threads;
    dc.step_timeout_ms = 60'000;
    return dc;
  }
};

/// Engine-level state comparison, exact: positions()/velocities() widen the
/// ranks' FP32 state exactly, so double == iff bitwise equal floats.
void expect_identical_state(engine::Engine& serial, engine::Engine& dist) {
  const auto rp = serial.positions();
  const auto dp = dist.positions();
  const auto rv = serial.velocities();
  const auto dv = dist.velocities();
  ASSERT_EQ(rp.size(), dp.size());
  for (std::size_t i = 0; i < rp.size(); ++i) {
    ASSERT_EQ(rp[i].x, dp[i].x) << "atom " << i;
    ASSERT_EQ(rp[i].y, dp[i].y) << "atom " << i;
    ASSERT_EQ(rp[i].z, dp[i].z) << "atom " << i;
    ASSERT_EQ(rv[i].x, dv[i].x) << "atom " << i;
    ASSERT_EQ(rv[i].y, dv[i].y) << "atom " << i;
    ASSERT_EQ(rv[i].z, dv[i].z) << "atom " << i;
  }
}

/// Reductions regroup FP64 partial sums across ranks: equal to the serial
/// row-major sum within a tight relative band, not bitwise.
void expect_matching_thermo(const engine::Thermo& a, const engine::Thermo& b) {
  EXPECT_EQ(a.step, b.step);
  EXPECT_NEAR(a.potential_energy, b.potential_energy,
              1e-9 * std::abs(a.potential_energy));
  EXPECT_NEAR(a.kinetic_energy, b.kinetic_energy,
              1e-9 * std::max(1.0, std::abs(a.kinetic_energy)));
}

class RankParity : public ::testing::TestWithParam<int> {};

TEST_P(RankParity, BitwiseMatchesSerialOver60Steps) {
  const int ranks = GetParam();
  Fixture f;

  engine::WaferEngine serial(f.structure, f.potential, f.config());
  DistributedEngine dist(f.structure, f.potential, f.dist_config(ranks));
  EXPECT_EQ(dist.ranks(), ranks);
  EXPECT_STREQ(dist.backend_name(), "ranks");

  Rng rng_a(2024), rng_b(2024);
  serial.thermalize(290.0, rng_a);
  dist.thermalize(290.0, rng_b);
  expect_matching_thermo(serial.thermo(), dist.thermo());

  const auto st = serial.run(60);
  const auto dt = dist.run(60);
  expect_identical_state(serial, dist);
  expect_matching_thermo(st, dt);
  EXPECT_EQ(dist.step_count(), 60);
}

TEST_P(RankParity, SwapStepsMigrateAtomsIdentically) {
  // Swap phase every step: atoms migrate between cores (and therefore
  // between rank strips at the boundaries). The merged partner commit must
  // make the same remapping decisions as the serial sweep, and migrated
  // atoms must carry bitwise state with them.
  const int ranks = GetParam();
  Fixture f;
  core::WseMdConfig cfg = f.config();
  cfg.mapping.refine_rounds = 0;  // sub-optimal mapping: swaps actually fire
  cfg.swap_interval = 1;
  cfg.b_override = 5;

  engine::WaferEngine serial(f.structure, f.potential, cfg);
  DistributedConfig dc = f.dist_config(ranks);
  dc.wse = cfg;
  DistributedEngine dist(f.structure, f.potential, dc);

  Rng rng_a(7), rng_b(7);
  serial.thermalize(600.0, rng_a);
  dist.thermalize(600.0, rng_b);
  std::size_t swaps = 0;
  for (int k = 0; k < 40; ++k) {
    serial.step();
    swaps += serial.last_step_stats().swaps_applied;
  }
  dist.run(40);
  EXPECT_GT(swaps, 0u) << "fixture no longer triggers migrations";

  expect_identical_state(serial, dist);
  // The mapping mutated by the swaps is identical too — including atoms
  // that crossed a strip boundary mid-run.
  const auto serial_snap = serial.snapshot();
  const auto dist_snap = dist.snapshot();
  ASSERT_EQ(serial_snap.core_atoms.size(), dist_snap.core_atoms.size());
  EXPECT_EQ(serial_snap.core_atoms, dist_snap.core_atoms);
}

INSTANTIATE_TEST_SUITE_P(Ranks, RankParity, ::testing::Values(1, 2, 4),
                         [](const ::testing::TestParamInfo<int>& i) {
                           char name[16];
                           std::snprintf(name, sizeof name, "m%d", i.param);
                           return std::string(name);
                         });

TEST(DistributedEngine, RankThreadsKeepBitwiseParity) {
  // ranks:2x2 — two shard threads inside each rank process.
  Fixture f;
  engine::WaferEngine serial(f.structure, f.potential, f.config());
  DistributedEngine dist(f.structure, f.potential, f.dist_config(2, 2));
  EXPECT_EQ(dist.rank_threads(), 2);

  Rng a(11), b(11);
  serial.thermalize(290.0, a);
  dist.thermalize(290.0, b);
  serial.run(30);
  dist.run(30);
  expect_identical_state(serial, dist);
}

TEST(DistributedEngine, GhostRadiusSpanningWholeNeighborStrips) {
  // Small structure, 4 ranks: strip heights shrink to ~b, so halos span
  // entire neighbor strips and the next-nearest-peer exchange paths run.
  Fixture f(3, 3, 3);
  engine::WaferEngine serial(f.structure, f.potential, f.config());
  DistributedEngine dist(f.structure, f.potential, f.dist_config(4));
  const auto& strips = dist.strips();
  bool spans_neighbor = false;
  for (std::size_t t = 0; t + 1 < strips.size(); ++t) {
    if (!strips[t].empty() &&
        strips[t].y1 - strips[t].y0 <= serial.wafer().b()) {
      spans_neighbor = true;
    }
  }
  EXPECT_TRUE(spans_neighbor) << "fixture no longer exercises the edge case";

  Rng a(3), b(3);
  serial.thermalize(290.0, a);
  dist.thermalize(290.0, b);
  serial.run(25);
  dist.run(25);
  expect_identical_state(serial, dist);
}

TEST(DistributedEngine, BitwiseStableAcrossRepeatedRuns) {
  Fixture f;
  auto run_once = [&](std::vector<Vec3d>& pos, engine::Thermo& t) {
    DistributedEngine dist(f.structure, f.potential, f.dist_config(2));
    Rng rng(99);
    dist.thermalize(350.0, rng);
    t = dist.run(20);
    pos = dist.positions();
  };
  std::vector<Vec3d> p1, p2;
  engine::Thermo t1, t2;
  run_once(p1, t1);
  run_once(p2, t2);
  ASSERT_EQ(p1.size(), p2.size());
  for (std::size_t i = 0; i < p1.size(); ++i) {
    EXPECT_EQ(p1[i].x, p2[i].x);
    EXPECT_EQ(p1[i].y, p2[i].y);
    EXPECT_EQ(p1[i].z, p2[i].z);
  }
  // Fixed rank-order reduction: the global sums are bitwise stable too.
  EXPECT_EQ(t1.potential_energy, t2.potential_energy);
  EXPECT_EQ(t1.kinetic_energy, t2.kinetic_energy);
}

/// /dev/shm entries created for this run (should always be none: segments
/// are unlinked before fork, whatever happens later).
int dev_shm_entries() {
  namespace fs = std::filesystem;
  int n = 0;
  if (!fs::exists("/dev/shm")) return 0;  // tmpfs not mounted here
  for (const auto& e : fs::directory_iterator("/dev/shm")) {
    if (e.path().filename().string().rfind("wsmd-shm-", 0) == 0) ++n;
  }
  return n;
}

TEST(DistributedEngine, TrajectoriesAreBitwiseTransportInvariant) {
  // Same structure, same seed, the two halo carriers: per-atom state and
  // the fixed-rank-order reductions must agree bitwise. Both tiers run the
  // identical do_step pipeline; only the wire differs.
  Fixture f;
  auto run_with = [&](HaloTransport transport, std::vector<Vec3d>& pos,
                      std::vector<Vec3d>& vel, engine::Thermo& t) {
    DistributedConfig dc = f.dist_config(2);
    dc.wse.swap_interval = 7;  // migrations ride the state exchange too
    dc.transport = transport;
    DistributedEngine dist(f.structure, f.potential, dc);
    Rng rng(31);
    dist.thermalize(310.0, rng);
    t = dist.run(30);
    pos = dist.positions();
    vel = dist.velocities();
  };
  std::vector<Vec3d> ps, pm, vs, vm;
  engine::Thermo ts, tm;
  run_with(HaloTransport::kSocket, ps, vs, ts);
  run_with(HaloTransport::kShm, pm, vm, tm);
  ASSERT_EQ(ps.size(), pm.size());
  for (std::size_t i = 0; i < ps.size(); ++i) {
    ASSERT_EQ(ps[i].x, pm[i].x) << "atom " << i;
    ASSERT_EQ(ps[i].y, pm[i].y) << "atom " << i;
    ASSERT_EQ(ps[i].z, pm[i].z) << "atom " << i;
    ASSERT_EQ(vs[i].x, vm[i].x) << "atom " << i;
    ASSERT_EQ(vs[i].y, vm[i].y) << "atom " << i;
    ASSERT_EQ(vs[i].z, vm[i].z) << "atom " << i;
  }
  EXPECT_EQ(ts.potential_energy, tm.potential_energy);
  EXPECT_EQ(ts.kinetic_energy, tm.kinetic_energy);
}

TEST(DistributedEngine, SocketTransportKeepsSerialParity) {
  // The fallback tier gets the same bitwise-parity scrutiny as the
  // default: socket ranks vs the serial wafer engine.
  Fixture f;
  engine::WaferEngine serial(f.structure, f.potential, f.config());
  DistributedConfig dc = f.dist_config(3);
  dc.transport = HaloTransport::kSocket;
  DistributedEngine dist(f.structure, f.potential, dc);
  Rng a(17), b(17);
  serial.thermalize(290.0, a);
  dist.thermalize(290.0, b);
  serial.run(25);
  dist.run(25);
  expect_identical_state(serial, dist);
}

TEST(DistributedEngine, ShmSegmentsNeverAppearInDevShm) {
  // Unlink-before-fork: no wsmd shm entry exists even while the engine is
  // alive and exchanging halos, so nothing can be left to leak.
  Fixture f;
  const int before = dev_shm_entries();
  DistributedEngine dist(f.structure, f.potential, f.dist_config(4));
  Rng rng(23);
  dist.thermalize(290.0, rng);
  dist.run(5);
  EXPECT_EQ(dev_shm_entries(), before);
}

TEST(DistributedEngine, ThermalizeAdvancesCallerRngLikeSerial) {
  Fixture f;
  engine::WaferEngine serial(f.structure, f.potential, f.config());
  DistributedEngine dist(f.structure, f.potential, f.dist_config(2));
  Rng rng_a(5), rng_b(5);
  serial.thermalize(290.0, rng_a);
  dist.thermalize(290.0, rng_b);
  // The caller's stream continues from the same point on both backends —
  // seeds drawn after thermalize stay reproducible across backends.
  for (int k = 0; k < 8; ++k) {
    EXPECT_EQ(rng_a.next_u64(), rng_b.next_u64());
  }
}

TEST(DistributedEngine, CheckpointRestoresAcrossRankCounts) {
  // ranks:2 checkpoint -> resumed on ranks:4 and on the serial wafer; both
  // continuations must be bitwise identical (State is backend-global, so
  // re-ranking is just a different strip partition of the same state).
  Fixture f;
  core::WseMdConfig cfg = f.config();
  cfg.swap_interval = 5;

  DistributedConfig two = f.dist_config(2);
  two.wse = cfg;
  DistributedEngine source(f.structure, f.potential, two);
  Rng rng(42);
  source.thermalize(290.0, rng);
  source.run(20);
  const auto checkpoint = source.snapshot();
  EXPECT_EQ(checkpoint.step, 20);
  EXPECT_TRUE(checkpoint.has_wafer);
  source.run(15);  // ground truth continuation

  DistributedConfig four = f.dist_config(4);
  four.wse = cfg;
  DistributedEngine resumed(f.structure, f.potential, four);
  resumed.restore(checkpoint);
  EXPECT_EQ(resumed.step_count(), 20);
  resumed.run(15);
  expect_identical_state(source, resumed);
  expect_matching_thermo(source.thermo(), resumed.thermo());

  engine::WaferEngine serial(f.structure, f.potential, cfg);
  serial.restore(checkpoint);
  serial.run(15);
  expect_identical_state(source, serial);
}

TEST(DistributedEngine, WaferCheckpointRestoresOntoRanks) {
  // The reverse direction: a serial-wafer checkpoint re-ranked onto
  // ranks:2 continues bitwise.
  Fixture f;
  engine::WaferEngine serial(f.structure, f.potential, f.config());
  Rng rng(13);
  serial.thermalize(290.0, rng);
  serial.run(10);
  const auto checkpoint = serial.snapshot();
  serial.run(10);

  DistributedEngine resumed(f.structure, f.potential, f.dist_config(2));
  resumed.restore(checkpoint);
  resumed.run(10);
  expect_identical_state(serial, resumed);
}

TEST(DistributedEngine, RanksCheckpointTransfersToReference) {
  // Cross-backend: a ranks:2 checkpoint resumes on the FP64 reference
  // engine — a best-effort state transfer, not bitwise; it must load and
  // integrate stably from the transferred state.
  Fixture f;
  DistributedEngine source(f.structure, f.potential, f.dist_config(2));
  Rng rng(21);
  source.thermalize(290.0, rng);
  source.run(10);
  const auto checkpoint = source.snapshot();
  const double e0 = source.thermo().total_energy;

  engine::ReferenceEngine reference(f.structure, f.potential, {});
  reference.restore(checkpoint);
  EXPECT_EQ(reference.step_count(), 10);
  const auto t = reference.run(5);
  EXPECT_EQ(t.step, 15);
  // Same physical system: energies agree to cross-backend tolerance.
  EXPECT_NEAR(t.total_energy, e0, 1e-3 * std::abs(e0));
}

TEST(DistributedEngine, SetPositionsAndVelocitiesPropagate) {
  Fixture f;
  engine::WaferEngine serial(f.structure, f.potential, f.config());
  DistributedEngine dist(f.structure, f.potential, f.dist_config(2));
  Rng rng(8);
  serial.thermalize(290.0, rng);

  dist.set_positions(serial.positions());
  dist.set_velocities(serial.velocities());
  expect_matching_thermo(serial.thermo(), dist.thermo());
  serial.run(10);
  dist.run(10);
  expect_identical_state(serial, dist);
}

class DeadRankDrill : public ::testing::TestWithParam<HaloTransport> {};

TEST_P(DeadRankDrill, TripsRankFailureAndLeavesNoShmDebris) {
  Fixture f;
  const int shm_before = dev_shm_entries();
  DistributedConfig dc = f.dist_config(2);
  dc.transport = GetParam();
  dc.kill_rank = 1;
  dc.kill_step = 3;
  dc.step_timeout_ms = 20'000;
  {
    DistributedEngine dist(f.structure, f.potential, dc);
    Rng rng(4);
    dist.thermalize(290.0, rng);
    dist.run(2);  // steps 1..2 complete

    try {
      dist.step();  // rank 1 dies at the start of step 3
      FAIL() << "expected RankFailureError";
    } catch (const RankFailureError& e) {
      ASSERT_EQ(e.last_known_steps().size(), 2u);
      // Both ranks had completed step 2; nobody finished step 3.
      EXPECT_EQ(e.last_known_steps()[0], 2);
      EXPECT_EQ(e.last_known_steps()[1], 2);
      EXPECT_NE(std::string(e.what()).find("failed"), std::string::npos);
    }
    EXPECT_EQ(dist.last_known_steps()[0], 2);
  }
  // A hard rank death and the abort teardown leak no /dev/shm entries.
  EXPECT_EQ(dev_shm_entries(), shm_before);
}

INSTANTIATE_TEST_SUITE_P(Transports, DeadRankDrill,
                         ::testing::Values(HaloTransport::kShm,
                                           HaloTransport::kSocket),
                         [](const ::testing::TestParamInfo<HaloTransport>& i) {
                           return i.param == HaloTransport::kShm ? "shm"
                                                                 : "socket";
                         });

TEST(DistributedEngine, ModeledHaloCostJoinsSharedFormula) {
  Fixture f;
  DistributedEngine dist(f.structure, f.potential, f.dist_config(2));
  Rng rng(1);
  dist.thermalize(290.0, rng);
  dist.run(10);

  const auto cost = dist.modeled_phase_cost();
  EXPECT_TRUE(cost.valid);
  EXPECT_EQ(cost.steps, 10);
  EXPECT_GT(cost.halo_seconds, 0.0);
  const auto& model = f.config().cost_model;
  const auto snap = dist.snapshot();
  const double cycles = halo_cycles_per_step(dist.strips(), snap.b,
                                             snap.grid_width, snap.grid_height,
                                             model);
  EXPECT_NEAR(cost.halo_seconds,
              cycles * 10.0 / (model.clock_ghz() * 1e9),
              1e-12);
  EXPECT_GT(cost.total_seconds, 0.0);
}

TEST(DistributedEngine, ShardLoadReportsPerRankAccounting) {
  Fixture f;
  DistributedEngine dist(f.structure, f.potential, f.dist_config(2));
  Rng rng(2);
  dist.thermalize(290.0, rng);
  dist.run(5);
  const auto load = dist.shard_load();
  ASSERT_EQ(load.size(), 2u);
  for (const auto& l : load) {
    EXPECT_GT(l.busy_seconds, 0.0);
    EXPECT_GE(l.wait_seconds, 0.0);
  }
}

TEST(DistributedEngine, RejectsBadRankCounts) {
  Fixture f;
  DistributedConfig dc = f.dist_config(0);
  EXPECT_THROW(DistributedEngine(f.structure, f.potential, dc), Error);
  dc.ranks = kMaxRanks + 1;
  EXPECT_THROW(DistributedEngine(f.structure, f.potential, dc), Error);
}

}  // namespace
}  // namespace wsmd::dist
