/// \file test_transport.cpp
/// Framed socketpair transport: POD round-trips, handshake-grade header
/// validation (magic, version, tag), deadline and EOF error mapping, and
/// the full-duplex exchange with payloads far beyond the kernel socket
/// buffers (the write-write deadlock case).

#include "dist/transport.hpp"

#include <unistd.h>

#include "dist/protocol.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>

namespace wsmd::dist {
namespace {

constexpr int kMs = 5'000;

TEST(Transport, PodRoundTrip) {
  auto pair = make_channel_pair();
  Handshake out;
  out.rank = 3;
  out.world = 4;
  out.atoms = 123456;
  out.grid_width = 17;
  pair.a.send_pod(Tag::kHello, out, kMs);
  const auto in = pair.b.recv_pod<Handshake>(Tag::kHello, kMs);
  EXPECT_EQ(in.rank, 3);
  EXPECT_EQ(in.world, 4);
  EXPECT_EQ(in.atoms, 123456u);
  EXPECT_EQ(in.grid_width, 17);
}

TEST(Transport, EmptyPayloadAndTagDispatch) {
  auto pair = make_channel_pair();
  pair.a.send(Tag::kEvalPe, nullptr, 0, kMs);
  Tag tag;
  const auto payload = pair.b.recv_any(tag, kMs);
  EXPECT_EQ(tag, Tag::kEvalPe);
  EXPECT_TRUE(payload.empty());
}

TEST(Transport, WrongTagThrows) {
  auto pair = make_channel_pair();
  pair.a.send_pod(Tag::kOk, Ack{}, kMs);
  EXPECT_THROW(pair.b.recv(Tag::kStepDone, kMs), TransportError);
}

TEST(Transport, VersionMismatchRejected) {
  auto pair = make_channel_pair();
  // Handcraft a frame from a "future build": right magic, wrong version.
  struct {
    std::uint32_t magic = kMagic;
    std::uint16_t version = kProtocolVersion + 1;
    std::uint16_t tag = 1;
    std::uint64_t length = 0;
  } header;
  ASSERT_EQ(::write(pair.a.fd(), &header, sizeof(header)),
            static_cast<ssize_t>(sizeof(header)));
  try {
    pair.b.recv(Tag::kHello, kMs);
    FAIL() << "expected TransportError";
  } catch (const TransportError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST(Transport, BadMagicRejected) {
  auto pair = make_channel_pair();
  struct {
    std::uint32_t magic = 0xDEADBEEF;
    std::uint16_t version = kProtocolVersion;
    std::uint16_t tag = 1;
    std::uint64_t length = 0;
  } header;
  ASSERT_EQ(::write(pair.a.fd(), &header, sizeof(header)),
            static_cast<ssize_t>(sizeof(header)));
  EXPECT_THROW(pair.b.recv(Tag::kHello, kMs), Error);
}

TEST(Transport, RecvTimesOutWithoutTraffic) {
  auto pair = make_channel_pair();
  EXPECT_THROW(pair.b.recv(Tag::kHello, 50), TimeoutError);
}

TEST(Transport, PeerCloseIsEofNotHang) {
  auto pair = make_channel_pair();
  pair.a.close();
  EXPECT_THROW(pair.b.recv(Tag::kHello, kMs), PeerClosedError);
}

TEST(Transport, SendToClosedPeerThrowsPeerClosed) {
  auto pair = make_channel_pair();
  pair.b.close();
  const std::vector<std::uint8_t> big(1 << 20, 0x55);
  EXPECT_THROW(pair.a.send(Tag::kHaloState, big.data(), big.size(), kMs),
               PeerClosedError);
}

TEST(Transport, FullDuplexExchangeBeyondSocketBuffers) {
  // Both sides send ~8 MB simultaneously — far past any socket buffer. A
  // half-duplex implementation deadlocks on write-write here.
  auto pair = make_channel_pair();
  std::vector<std::uint8_t> from_a(8u << 20), from_b(8u << 20);
  for (std::size_t i = 0; i < from_a.size(); ++i) {
    from_a[i] = static_cast<std::uint8_t>(i * 7 + 1);
    from_b[i] = static_cast<std::uint8_t>(i * 13 + 5);
  }

  std::vector<std::uint8_t> b_got;
  std::thread peer([&] {
    b_got = pair.b.exchange(Tag::kHaloState, from_b.data(), from_b.size(),
                            30'000);
  });
  const auto a_got =
      pair.a.exchange(Tag::kHaloState, from_a.data(), from_a.size(), 30'000);
  peer.join();

  EXPECT_EQ(a_got, from_b);
  EXPECT_EQ(b_got, from_a);
}

TEST(Transport, ExchangeRejectsCrossedTags) {
  auto pair = make_channel_pair();
  const std::uint8_t byte = 1;
  std::thread peer([&] {
    try {
      pair.b.exchange(Tag::kHaloState, &byte, 1, kMs);
    } catch (const TransportError&) {
      // Expected on this side too once the tags disagree.
    }
  });
  EXPECT_THROW(pair.a.exchange(Tag::kHaloFprime, &byte, 1, kMs),
               TransportError);
  peer.join();
}

TEST(PackerUnpacker, RoundTripAndBounds) {
  Packer p;
  p.put(std::int32_t{-7});
  const double values[3] = {1.5, -2.25, 3.75};
  p.put_array(values, 3);
  p.put(std::uint64_t{42});

  Unpacker u(p.bytes());
  EXPECT_EQ(u.get<std::int32_t>(), -7);
  const auto arr = u.get_array<double>();
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_EQ(arr[1], -2.25);
  EXPECT_EQ(u.get<std::uint64_t>(), 42u);
  EXPECT_TRUE(u.done());

  // Reading past the end is a loud error, not garbage.
  EXPECT_THROW(u.get<std::uint8_t>(), Error);
}

}  // namespace
}  // namespace wsmd::dist
