/// \file test_end_to_end.cpp
/// Cross-layer integration tests: lattice -> mapping -> wavelet-level
/// fabric exchange -> physics, tying the substrates together the way the
/// real system does.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>

#include "core/mapping.hpp"
#include "core/wse_md.hpp"
#include "eam/tabulated.hpp"
#include "eam/zhou.hpp"
#include "lattice/lattice.hpp"
#include "md/simulation.hpp"
#include "wse/multicast.hpp"

namespace wsmd {
namespace {

/// The keystone property: running the *actual marching multicast* on the
/// fabric simulator, with atoms placed by the *actual mapping*, delivers
/// every interaction partner of every atom to its worker core.
TEST(EndToEnd, FabricExchangeDeliversAllInteractionPartners) {
  const auto p = eam::zhou_parameters("Ta");
  const auto crystal = lattice::replicate(
      lattice::UnitCell::of(p.structure, p.lattice_constant()), 6, 6, 4);
  core::MappingConfig mcfg;
  mcfg.cell_size = p.lattice_constant();
  const auto mapping = core::AtomMapping::for_structure(crystal, mcfg);
  const double rcut = p.paper_cutoff();
  const int b = mapping.required_b(crystal.positions, rcut);

  // One payload word per core: the atom id (sentinel for empty tiles).
  const int W = mapping.grid_width(), H = mapping.grid_height();
  const std::uint32_t kEmpty = 0xFFFFFFFFu;
  std::vector<std::vector<std::uint32_t>> payloads(
      static_cast<std::size_t>(W) * H);
  for (int y = 0; y < H; ++y) {
    for (int x = 0; x < W; ++x) {
      const long a = mapping.atom_at(x, y);
      payloads[static_cast<std::size_t>(y) * W + x] = {
          a < 0 ? kEmpty : static_cast<std::uint32_t>(a)};
    }
  }
  const auto ex = wse::neighborhood_exchange(W, H, b, payloads);
  ASSERT_EQ(ex.contention_events, 0u);

  const double rc2 = rcut * rcut;
  for (std::size_t i = 0; i < crystal.size(); ++i) {
    const auto c = mapping.core_of(i);
    const auto& got = ex.gathered[static_cast<std::size_t>(c.y) * W + c.x];
    const std::set<std::uint32_t> delivered(got.begin(), got.end());
    for (std::size_t j = 0; j < crystal.size(); ++j) {
      if (j == i) continue;
      if (norm2(crystal.positions[j] - crystal.positions[i]) >= rc2) continue;
      EXPECT_TRUE(delivered.count(static_cast<std::uint32_t>(j)))
          << "fabric exchange missed interacting pair (" << i << "," << j
          << ") at b=" << b;
    }
  }
}

/// Engine-equivalence sweep across all three paper elements.
class ElementEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(ElementEquivalence, WseTrajectoryTracksReference) {
  const std::string el = GetParam();
  const auto p = eam::zhou_parameters(el);
  const auto crystal = lattice::replicate(
      lattice::UnitCell::of(p.structure, p.lattice_constant()), 5, 5, 3);
  auto analytic = std::make_shared<eam::ZhouEam>(el, p.paper_cutoff());

  md::AtomSystem ref_sys(crystal, analytic);
  Rng rng(99);
  ref_sys.thermalize(290.0, rng);
  const auto v0 = ref_sys.velocities().to_aos();
  md::Simulation ref(std::move(ref_sys));

  core::WseMdConfig cfg;
  cfg.mapping.cell_size = p.lattice_constant();
  core::WseMd wse(crystal, analytic, cfg);
  wse.set_velocities(v0);

  ref.run(15);
  wse.run(15);

  const auto rp = ref.system().positions().to_aos();
  const auto wp = wse.positions();
  double max_err = 0.0;
  for (std::size_t i = 0; i < rp.size(); ++i) {
    max_err = std::max(max_err, norm(rp[i] - wp[i]));
  }
  EXPECT_LT(max_err, 5e-3) << el;
}

TEST_P(ElementEquivalence, PotentialEnergyAgreesWithReference) {
  const std::string el = GetParam();
  const auto p = eam::zhou_parameters(el);
  const auto crystal = lattice::replicate(
      lattice::UnitCell::of(p.structure, p.lattice_constant()), 5, 5, 3);
  auto analytic = std::make_shared<eam::ZhouEam>(el, p.paper_cutoff());

  md::AtomSystem ref_sys(crystal, analytic);
  md::Simulation ref(std::move(ref_sys));
  const double e_ref = ref.compute_forces();

  core::WseMdConfig cfg;
  cfg.mapping.cell_size = p.lattice_constant();
  core::WseMd wse(crystal, analytic, cfg);
  wse.step();
  EXPECT_NEAR(wse.potential_energy(), e_ref, 1e-4 * std::fabs(e_ref) + 1e-6)
      << el;
}

TEST_P(ElementEquivalence, TabulatedPotentialMatchesAnalyticInEngine) {
  // The wafer workers use tabulated potentials (48 kB SRAM); the energy
  // they compute must match the analytic form through the whole engine.
  const std::string el = GetParam();
  const auto p = eam::zhou_parameters(el);
  const auto crystal = lattice::replicate(
      lattice::UnitCell::of(p.structure, p.lattice_constant()), 4, 4, 3);
  auto analytic = std::make_shared<eam::ZhouEam>(el, p.paper_cutoff());
  auto tabulated = std::make_shared<eam::TabulatedEam>(
      eam::TabulatedEam::from_potential(*analytic, 4000, 4000));

  core::WseMdConfig cfg;
  cfg.mapping.cell_size = p.lattice_constant();
  core::WseMd a(crystal, analytic, cfg);
  core::WseMd t(crystal, tabulated, cfg);
  a.step();
  t.step();
  EXPECT_NEAR(t.potential_energy(), a.potential_energy(),
              1e-3 * std::fabs(a.potential_energy()))
      << el;
}

INSTANTIATE_TEST_SUITE_P(Elements, ElementEquivalence,
                         ::testing::Values("Cu", "W", "Ta"),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           return std::string(i.param);
                         });

/// Temperature-sweep property: FP32 NVE stays bounded across conditions.
class ThermalStability
    : public ::testing::TestWithParam<std::tuple<const char*, double>> {};

TEST_P(ThermalStability, EnergyStaysBoundedOverNve) {
  const auto [el, temperature] = GetParam();
  const auto p = eam::zhou_parameters(el);
  const auto crystal = lattice::replicate(
      lattice::UnitCell::of(p.structure, p.lattice_constant()), 5, 5, 4, 0,
      {true, true, true});
  auto pot = std::make_shared<eam::ZhouEam>(el, p.paper_cutoff());

  core::WseMdConfig cfg;
  cfg.mapping.cell_size = p.lattice_constant();
  core::WseMd engine(crystal, pot, cfg);
  Rng rng(31);
  engine.thermalize(temperature, rng);
  engine.step();
  const double e0 = engine.potential_energy() + engine.kinetic_energy();
  engine.run(60);
  const double e1 = engine.potential_energy() + engine.kinetic_energy();
  EXPECT_LT(std::fabs(e1 - e0),
            0.01 * static_cast<double>(engine.atom_count()) + 0.05)
      << el << " at " << temperature << " K";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ThermalStability,
    ::testing::Combine(::testing::Values("Cu", "Ta"),
                       ::testing::Values(50.0, 290.0, 600.0)),
    [](const ::testing::TestParamInfo<std::tuple<const char*, double>>& i) {
      return std::string(std::get<0>(i.param)) + "_" +
             std::to_string(static_cast<int>(std::get<1>(i.param))) + "K";
    });

}  // namespace
}  // namespace wsmd
