#include "core/mapping.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>

#include "util/error.hpp"

namespace wsmd::core {

int fold_cell_index(int cell, int num_cells) {
  WSMD_REQUIRE(num_cells > 0, "fold needs a positive cell count");
  WSMD_REQUIRE(cell >= 0 && cell < num_cells, "cell index out of range");
  // First half of the ring lands on even line positions left-to-right;
  // second half lands on odd positions right-to-left, interleaving the two
  // sides of the split circle (paper Fig. 5).
  const int half = (num_cells + 1) / 2;
  if (cell < half) return 2 * cell;
  return 2 * (num_cells - 1 - cell) + 1;
}

namespace {

/// Greedy small-scale assignment: pair atoms with block slots by ascending
/// in-plane logical distance, measured in *core hops* (per-axis pitch
/// units) because that is what determines the neighborhood radius b.
/// Deterministic; near-optimal for the worst-pair metric at these sizes
/// (<= ~32 atoms per column).
std::vector<int> assign_atoms_to_slots(
    const std::vector<Vec3d>& atom_xy,       // logical projected positions
    const std::vector<Vec3d>& slot_nominal,  // slot nominal positions
    double pitch_x, double pitch_y) {
  const std::size_t n = atom_xy.size();
  WSMD_REQUIRE(n <= slot_nominal.size(), "more atoms than slots in a column");
  struct Cand {
    double d;
    std::uint32_t atom, slot;
  };
  std::vector<Cand> cands;
  cands.reserve(n * slot_nominal.size());
  for (std::uint32_t a = 0; a < n; ++a) {
    for (std::uint32_t s = 0; s < slot_nominal.size(); ++s) {
      const Vec3d d = atom_xy[a] - slot_nominal[s];
      const double dd =
          std::max(std::fabs(d.x) / pitch_x, std::fabs(d.y) / pitch_y);
      cands.push_back({dd, a, s});
    }
  }
  std::sort(cands.begin(), cands.end(), [](const Cand& l, const Cand& r) {
    if (l.d != r.d) return l.d < r.d;
    if (l.atom != r.atom) return l.atom < r.atom;
    return l.slot < r.slot;
  });
  std::vector<int> atom_slot(n, -1);
  std::vector<bool> slot_used(slot_nominal.size(), false);
  std::size_t assigned = 0;
  for (const Cand& c : cands) {
    if (assigned == n) break;
    if (atom_slot[c.atom] != -1 || slot_used[c.slot]) continue;
    atom_slot[c.atom] = static_cast<int>(c.slot);
    slot_used[c.slot] = true;
    ++assigned;
  }
  WSMD_REQUIRE(assigned == n, "column assignment failed");
  return atom_slot;
}

/// Site-aware, z-monotone assignment. Crystalline columns contain a few
/// distinct in-plane sites (BCC: 2, FCC: 4), each with a z-stack of atoms.
/// Assigning every site a fixed group of block columns — identical in
/// every cell — makes same-site atoms in neighboring cells land exactly
/// block_w (block_h) cores apart, which is what keeps the neighborhood
/// radius at the paper's b (Ta 4, W 7). Returns an empty vector when the
/// column does not decompose cleanly (disordered configurations fall back
/// to the greedy metric assignment).
std::vector<int> site_partition_assign(const std::vector<Vec3d>& atom_xy,
                                       const std::vector<double>& atom_z,
                                       double cell, int block_w, int block_h) {
  const std::size_t n = atom_xy.size();
  // Quantize sub-cell positions to a quarter-cell grid to identify sites.
  struct Site {
    int qx, qy;
    std::vector<std::size_t> atoms;
  };
  std::vector<Site> sites;
  for (std::size_t i = 0; i < n; ++i) {
    const double fx = atom_xy[i].x / cell - std::floor(atom_xy[i].x / cell);
    const double fy = atom_xy[i].y / cell - std::floor(atom_xy[i].y / cell);
    const int qx = static_cast<int>(std::floor(fx * 4.0 + 0.5)) % 4;
    const int qy = static_cast<int>(std::floor(fy * 4.0 + 0.5)) % 4;
    bool found = false;
    for (auto& s : sites) {
      if (s.qx == qx && s.qy == qy) {
        s.atoms.push_back(i);
        found = true;
        break;
      }
    }
    if (!found) sites.push_back({qx, qy, {i}});
  }
  if (sites.size() > 4) return {};  // not a simple crystal column

  // Group sites by x, order groups by x and members by y.
  std::sort(sites.begin(), sites.end(), [](const Site& a, const Site& b) {
    if (a.qx != b.qx) return a.qx < b.qx;
    return a.qy < b.qy;
  });
  struct Group {
    int qx;
    std::vector<std::size_t> atoms;  // ordered by (qy, z)
  };
  std::vector<Group> groups;
  for (auto& s : sites) {
    std::sort(s.atoms.begin(), s.atoms.end(),
              [&](std::size_t a, std::size_t b) { return atom_z[a] < atom_z[b]; });
    if (groups.empty() || groups.back().qx != s.qx) {
      groups.push_back({s.qx, {}});
    }
    auto& g = groups.back();
    g.atoms.insert(g.atoms.end(), s.atoms.begin(), s.atoms.end());
  }

  // Column ranges per x-group; reject when they do not fit.
  int total_cols = 0;
  std::vector<int> width(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    width[g] = static_cast<int>(
        (groups[g].atoms.size() + static_cast<std::size_t>(block_h) - 1) /
        static_cast<std::size_t>(block_h));
    total_cols += width[g];
  }
  if (total_cols > block_w) return {};

  std::vector<int> atom_slot(n, -1);
  int col_base = 0;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    // Fill the group's column range row-major in (qy, z) order: atoms
    // adjacent in z land in the same or adjacent rows (z-monotone).
    for (std::size_t k = 0; k < groups[g].atoms.size(); ++k) {
      const int col = col_base + static_cast<int>(k) % width[g];
      const int row = static_cast<int>(k) / width[g];
      if (row >= block_h) return {};
      atom_slot[groups[g].atoms[k]] = row * block_w + col;
    }
    col_base += width[g];
  }
  return atom_slot;
}

}  // namespace

Vec3d AtomMapping::logical_xy(const Vec3d& position) const {
  const Vec3d w = box_.wrap(position);
  Vec3d out{0, 0, 0};
  for (int axis = 0; axis < 2; ++axis) {
    const AxisInfo& ax = axes_[static_cast<std::size_t>(axis)];
    const double u = (axis == 0 ? w.x : w.y) - origin_[static_cast<std::size_t>(axis)];
    double g;
    if (!ax.folded) {
      g = u;
    } else {
      // Piecewise fold: cell c keeps its sub-cell offset (mirrored on the
      // second branch so the seam at the split is continuous) and lands at
      // the interleaved column fold_cell_index(c).
      int c = std::clamp(static_cast<int>(std::floor(u / ax.cell)), 0,
                         ax.cells - 1);
      const double s = u - c * ax.cell;
      const int k = fold_cell_index(c, ax.cells);
      const bool second_branch = c >= (ax.cells + 1) / 2;
      g = k * ax.cell + (second_branch ? ax.cell - s : s);
    }
    out[static_cast<std::size_t>(axis)] = g;
  }
  return out;
}

AtomMapping AtomMapping::for_structure(const lattice::Structure& s,
                                       MappingConfig config) {
  WSMD_REQUIRE(s.size() > 0, "cannot map an empty structure");
  AtomMapping m;
  m.box_ = s.box;

  // Anchor the partition on the *atoms*, not the (possibly padded) box:
  // open-boundary slabs carry vacuum padding that would misalign the cell
  // columns against the crystal and inflate per-column counts. Periodic
  // axes use the box bounds (wrapped coordinates are authoritative there).
  Vec3d atom_lo = s.box.wrap(s.positions.front());
  Vec3d atom_hi = atom_lo;
  for (const auto& r : s.positions) {
    const Vec3d w = s.box.wrap(r);
    for (std::size_t a = 0; a < 3; ++a) {
      atom_lo[a] = std::min(atom_lo[a], w[a]);
      atom_hi[a] = std::max(atom_hi[a], w[a]);
    }
  }
  Vec3d len{0, 0, 0};
  for (std::size_t a = 0; a < 2; ++a) {
    if (s.box.periodic[a]) {
      m.origin_[a] = s.box.lo[a];
      len[a] = s.box.lengths()[a];
    } else {
      m.origin_[a] = atom_lo[a] - 1e-9;
      len[a] = std::max(atom_hi[a] - atom_lo[a] + 2e-9, 1e-6);
    }
  }

  // Partition-cell size: explicit, or sized for ~8 atoms per column.
  double cell = config.cell_size;
  if (cell <= 0.0) {
    const double area = len.x * len.y;
    const double per_col = 8.0;
    cell = std::sqrt(area * per_col / static_cast<double>(s.size()));
  }
  WSMD_REQUIRE(cell > 0.0, "cell size must be positive");

  for (int axis = 0; axis < 2; ++axis) {
    AxisInfo& ax = m.axes_[static_cast<std::size_t>(axis)];
    ax.cell = cell;
    ax.cells = std::max(
        1, static_cast<int>(std::ceil(len[static_cast<std::size_t>(axis)] / cell)));
    ax.folded = config.fold_periodic && s.box.periodic[static_cast<std::size_t>(axis)];
    ax.columns = ax.folded ? 2 * ((ax.cells + 1) / 2) : ax.cells;
  }

  // Bin atoms into logical columns.
  const int fc_x = m.axes_[0].columns;
  const int fc_y = m.axes_[1].columns;
  std::vector<std::vector<std::size_t>> columns(
      static_cast<std::size_t>(fc_x) * static_cast<std::size_t>(fc_y));
  std::vector<Vec3d> logical(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    logical[i] = m.logical_xy(s.positions[i]);
    const int cx = std::clamp(static_cast<int>(logical[i].x / cell), 0, fc_x - 1);
    const int cy = std::clamp(static_cast<int>(logical[i].y / cell), 0, fc_y - 1);
    columns[static_cast<std::size_t>(cy) * fc_x + cx].push_back(i);
  }

  std::size_t max_per_column = 0;
  std::size_t fullest = 0;
  for (std::size_t c = 0; c < columns.size(); ++c) {
    if (columns[c].size() > max_per_column) {
      max_per_column = columns[c].size();
      fullest = c;
    }
  }
  WSMD_REQUIRE(max_per_column > 0, "no atoms binned");

  // Block dimensions: prefer the smallest-diameter block on which the
  // site partition decomposes cleanly (that is what pins the neighborhood
  // radius b to the paper's values); fall back to near-square.
  int block_w = 0, block_h = 0;
  {
    std::vector<Vec3d> probe_xy;
    std::vector<double> probe_z;
    for (std::size_t i : columns[fullest]) {
      probe_xy.push_back(logical[i]);
      probe_z.push_back(s.positions[i].z);
    }
    int best_max = 0, best_area = 0;
    bool found = false;
    for (int w = 1; w <= static_cast<int>(max_per_column); ++w) {
      const int h = static_cast<int>(
          (max_per_column + static_cast<std::size_t>(w) - 1) /
          static_cast<std::size_t>(w));
      if (!site_partition_assign(probe_xy, probe_z, cell, w, h).empty()) {
        const int md = std::max(w, h);
        const int area = w * h;
        if (!found || md < best_max || (md == best_max && area < best_area)) {
          found = true;
          best_max = md;
          best_area = area;
          block_w = w;
          block_h = h;
        }
      }
    }
    if (!found) {
      block_w = static_cast<int>(
          std::ceil(std::sqrt(static_cast<double>(max_per_column))));
      block_h = static_cast<int>(
          std::ceil(static_cast<double>(max_per_column) / block_w));
    }
  }

  m.grid_w_ = fc_x * block_w;
  m.grid_h_ = fc_y * block_h;
  m.pitch_x_ = cell / block_w;
  m.pitch_y_ = cell / block_h;

  m.atom_core_.resize(s.size());
  m.core_atom_.assign(m.core_count(), -1);

  // Per-column assignment of atoms to block slots: site-aware z-monotone
  // partition for crystalline columns, greedy metric fallback otherwise.
  std::vector<Vec3d> atom_xy, slot_pos;
  std::vector<double> atom_z;
  for (int cy = 0; cy < fc_y; ++cy) {
    for (int cx = 0; cx < fc_x; ++cx) {
      const auto& atoms = columns[static_cast<std::size_t>(cy) * fc_x + cx];
      if (atoms.empty()) continue;
      atom_xy.clear();
      atom_z.clear();
      slot_pos.clear();
      for (std::size_t i : atoms) {
        atom_xy.push_back(logical[i]);
        atom_z.push_back(s.positions[i].z);
      }
      std::vector<CoreCoord> slots;
      for (int by = 0; by < block_h; ++by) {
        for (int bx = 0; bx < block_w; ++bx) {
          const CoreCoord c{cx * block_w + bx, cy * block_h + by};
          slots.push_back(c);
          slot_pos.push_back(m.nominal_position(c));
        }
      }
      std::vector<int> assign =
          site_partition_assign(atom_xy, atom_z, cell, block_w, block_h);
      if (assign.empty()) {
        assign = assign_atoms_to_slots(atom_xy, slot_pos, m.pitch_x_, m.pitch_y_);
      }
      for (std::size_t k = 0; k < atoms.size(); ++k) {
        const CoreCoord c = slots[static_cast<std::size_t>(assign[k])];
        m.atom_core_[atoms[k]] = c;
        m.core_atom_[static_cast<std::size_t>(c.y) * m.grid_w_ + c.x] =
            static_cast<long>(atoms[k]);
      }
    }
  }

  if (config.refine_rounds > 0) {
    m.refine(s.positions, config.refine_rounds);
  }
  return m;
}

CoreCoord AtomMapping::core_of(std::size_t atom) const {
  WSMD_REQUIRE(atom < atom_core_.size(), "atom index out of range");
  return atom_core_[atom];
}

long AtomMapping::atom_at(int x, int y) const {
  WSMD_REQUIRE(x >= 0 && x < grid_w_ && y >= 0 && y < grid_h_,
               "core out of range");
  return core_atom_[static_cast<std::size_t>(y) * grid_w_ + x];
}

Vec3d AtomMapping::nominal_position(const CoreCoord& c) const {
  return {(c.x + 0.5) * pitch_x_, (c.y + 0.5) * pitch_y_, 0.0};
}

double AtomMapping::displacement(std::size_t atom, const Vec3d& position) const {
  const Vec3d nominal = nominal_position(core_of(atom));
  const Vec3d lg = logical_xy(position);
  const double dx = std::fabs(lg.x - nominal.x);
  const double dy = std::fabs(lg.y - nominal.y);
  return std::max(dx, dy);
}

double AtomMapping::assignment_cost(const std::vector<Vec3d>& positions) const {
  WSMD_REQUIRE(positions.size() == atom_core_.size(),
               "position count mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    worst = std::max(worst, displacement(i, positions[i]));
  }
  return worst;
}

int AtomMapping::required_b(const std::vector<Vec3d>& positions,
                            double rcut) const {
  WSMD_REQUIRE(positions.size() == atom_core_.size(),
               "position count mismatch");
  WSMD_REQUIRE(rcut > 0.0, "cutoff must be positive");

  struct Key {
    long long x, y, z;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      std::size_t h = 1469598103934665603ull;
      for (long long v : {k.x, k.y, k.z}) {
        h ^= static_cast<std::size_t>(v) + 0x9E3779B97F4A7C15ull;
        h *= 1099511628211ull;
      }
      return h;
    }
  };
  auto key_of = [rcut](const Vec3d& r) {
    return Key{static_cast<long long>(std::floor(r.x / rcut)),
               static_cast<long long>(std::floor(r.y / rcut)),
               static_cast<long long>(std::floor(r.z / rcut))};
  };
  std::unordered_map<Key, std::vector<std::size_t>, KeyHash> grid;
  grid.reserve(positions.size());
  // Hash wrapped positions so periodic images meet in the same cells; the
  // pair distance itself uses the box minimum image.
  std::vector<Vec3d> wrapped(positions.size());
  for (std::size_t i = 0; i < positions.size(); ++i) {
    wrapped[i] = box_.wrap(positions[i]);
    grid[key_of(wrapped[i])].push_back(i);
  }

  const double rc2 = rcut * rcut;
  int b = 0;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const Key c = key_of(wrapped[i]);
    for (long long dz = -1; dz <= 1; ++dz) {
      for (long long dy = -1; dy <= 1; ++dy) {
        for (long long dx = -1; dx <= 1; ++dx) {
          const auto it = grid.find(Key{c.x + dx, c.y + dy, c.z + dz});
          if (it == grid.end()) continue;
          for (std::size_t j : it->second) {
            if (j <= i) continue;
            const Vec3d d = box_.minimum_image(wrapped[i], wrapped[j]);
            if (norm2(d) >= rc2) continue;
            b = std::max(b, chebyshev(atom_core_[i], atom_core_[j]));
          }
        }
      }
    }
  }
  // NOTE: hashing wrapped coordinates misses periodic pairs whose images
  // straddle the wrap; include them by also checking the edge cells when
  // any axis is periodic. For the folded mapping those pairs are exactly
  // the ones the fold keeps local, so scan the boundary band explicitly.
  for (int axis = 0; axis < 2; ++axis) {
    if (!box_.periodic[static_cast<std::size_t>(axis)]) continue;
    std::vector<std::size_t> lo_band, hi_band;
    const double lo_edge = box_.lo[static_cast<std::size_t>(axis)] + rcut;
    const double hi_edge = box_.hi[static_cast<std::size_t>(axis)] - rcut;
    for (std::size_t i = 0; i < positions.size(); ++i) {
      const double u = wrapped[i][static_cast<std::size_t>(axis)];
      if (u < lo_edge) lo_band.push_back(i);
      if (u > hi_edge) hi_band.push_back(i);
    }
    for (std::size_t i : lo_band) {
      for (std::size_t j : hi_band) {
        if (i == j) continue;
        const Vec3d d = box_.minimum_image(wrapped[i], wrapped[j]);
        if (norm2(d) >= rc2) continue;
        b = std::max(b, chebyshev(atom_core_[i], atom_core_[j]));
      }
    }
  }
  return b;
}

double AtomMapping::refine(const std::vector<Vec3d>& positions, int rounds) {
  WSMD_REQUIRE(positions.size() == atom_core_.size(),
               "position count mismatch");
  // Greedy local search: for every core pair within Chebyshev distance 2,
  // swap the held atoms (or move into an empty core) when that reduces the
  // pairwise worst displacement. Deterministic sweep order.
  for (int round = 0; round < rounds; ++round) {
    bool improved = false;
    for (int y = 0; y < grid_h_; ++y) {
      for (int x = 0; x < grid_w_; ++x) {
        for (int dy = 0; dy <= 2; ++dy) {
          for (int dx = (dy == 0 ? 1 : -2); dx <= 2; ++dx) {
            // Re-read on every probe: an accepted swap changes the slot.
            const long a =
                core_atom_[static_cast<std::size_t>(y) * grid_w_ + x];
            const int nx = x + dx, ny = y + dy;
            if (nx < 0 || nx >= grid_w_ || ny < 0 || ny >= grid_h_) continue;
            const long bt =
                core_atom_[static_cast<std::size_t>(ny) * grid_w_ + nx];
            if (a < 0 && bt < 0) continue;
            const CoreCoord ca{x, y}, cb{nx, ny};
            // Hop-normalized distance: what the neighborhood radius b
            // actually depends on.
            auto disp = [&](long atom, const CoreCoord& c) {
              if (atom < 0) return 0.0;
              const Vec3d nom = nominal_position(c);
              const Vec3d lg =
                  logical_xy(positions[static_cast<std::size_t>(atom)]);
              return std::max(std::fabs(lg.x - nom.x) / pitch_x_,
                              std::fabs(lg.y - nom.y) / pitch_y_);
            };
            const double before = std::max(disp(a, ca), disp(bt, cb));
            const double after = std::max(disp(a, cb), disp(bt, ca));
            if (after + 1e-12 < before) {
              swap_atoms(ca, cb);
              improved = true;
            }
          }
        }
      }
    }
    if (!improved) break;
  }
  return assignment_cost(positions);
}

void AtomMapping::swap_atoms(const CoreCoord& a, const CoreCoord& b) {
  WSMD_REQUIRE(a.x >= 0 && a.x < grid_w_ && a.y >= 0 && a.y < grid_h_,
               "core a out of range");
  WSMD_REQUIRE(b.x >= 0 && b.x < grid_w_ && b.y >= 0 && b.y < grid_h_,
               "core b out of range");
  auto& slot_a = core_atom_[static_cast<std::size_t>(a.y) * grid_w_ + a.x];
  auto& slot_b = core_atom_[static_cast<std::size_t>(b.y) * grid_w_ + b.x];
  std::swap(slot_a, slot_b);
  if (slot_a >= 0) atom_core_[static_cast<std::size_t>(slot_a)] = a;
  if (slot_b >= 0) atom_core_[static_cast<std::size_t>(slot_b)] = b;
}

void AtomMapping::restore_assignment(const std::vector<long>& core_atom) {
  WSMD_REQUIRE(core_atom.size() == core_count(),
               "restore_assignment: table covers " << core_atom.size()
                                                   << " cores, grid has "
                                                   << core_count());
  std::vector<bool> placed(atom_core_.size(), false);
  for (std::size_t c = 0; c < core_atom.size(); ++c) {
    const long a = core_atom[c];
    if (a < 0) continue;
    WSMD_REQUIRE(static_cast<std::size_t>(a) < atom_core_.size(),
                 "restore_assignment: atom id " << a << " out of range");
    WSMD_REQUIRE(!placed[static_cast<std::size_t>(a)],
                 "restore_assignment: atom " << a
                                             << " assigned to two cores");
    placed[static_cast<std::size_t>(a)] = true;
  }
  for (std::size_t a = 0; a < placed.size(); ++a) {
    WSMD_REQUIRE(placed[a],
                 "restore_assignment: atom " << a << " assigned to no core");
  }
  core_atom_ = core_atom;
  for (std::size_t c = 0; c < core_atom_.size(); ++c) {
    const long a = core_atom_[c];
    if (a < 0) continue;
    atom_core_[static_cast<std::size_t>(a)] = {
        static_cast<int>(c) % grid_w_, static_cast<int>(c) / grid_w_};
  }
}

}  // namespace wsmd::core
