#include "core/wse_md.hpp"

#include <algorithm>
#include <cmath>

#include "telemetry/telemetry.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace wsmd::core {

WseMd::WseMd(const lattice::Structure& s, eam::EamPotentialPtr potential,
             WseMdConfig config)
    : config_(config),
      potential_(std::move(potential)),
      box_(s.box),
      mapping_(AtomMapping::for_structure(s, config.mapping)) {
  WSMD_REQUIRE(potential_ != nullptr, "WseMd needs a potential");
  rcut_ = potential_->cutoff();
  if (config_.tabulated) {
    // The paper's per-core table copies: one FP32 profile shared by every
    // worker (the host simulation holds one copy; the real machine
    // replicates it into each tile's SRAM). Deterministic build — restart
    // and shard decomposition cannot perturb it.
    profile_ = std::make_shared<eam::ProfileF32>(*potential_);
  }
  box_len_f_ = Vec3f(box_.lengths());
  for (std::size_t a = 0; a < 3; ++a) {
    box_periodic_[a] = box_.periodic[a];
    box_inv_len_f_[a] = 1.0f / box_len_f_[a];
    sbox_.len[a] = box_len_f_[a];
    sbox_.inv_len[a] = box_periodic_[a] ? box_inv_len_f_[a] : 0.0f;
  }

  positions_.resize(s.size());
  velocities_.assign(s.size(), Vec3f{0, 0, 0});
  types_ = s.types;
  fprime_.assign(s.size(), 0.0f);
  initial_positions_.resize(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    positions_.set(i, Vec3f(s.positions[i]));
    // Displacement diagnostics are measured against the FP32-rounded
    // state the workers actually hold.
    initial_positions_[i] = Vec3d(positions_.get(i));
  }

  if (config_.b_override > 0) {
    b_ = config_.b_override;
  } else {
    // One extra hop of slack over the initial configuration's exact
    // requirement absorbs thermal motion between swaps.
    b_ = mapping_.required_b(s.positions, rcut_) + 1;
  }
  WSMD_REQUIRE(b_ >= 1, "neighborhood radius must be at least 1");
}

double WseMd::potential_energy() const {
  if (!pe_current_) {
    // Evaluate the initial configuration's energy on demand so thermo
    // snapshots are valid from construction on (the Engine contract)
    // without charging every construction a full force sweep. Phases run
    // on the current positions; nothing is committed, and the first real
    // step resets the workspace anyway. The const_cast only enables
    // calling the non-const density kernel — everything it mutates
    // (ws_, fprime_, pe_, pe_current_) is declared mutable, so this is
    // well-defined even on a const object. Like every WseMd method, not
    // safe to race from multiple threads.
    begin_step(ws_);
    const_cast<WseMd*>(this)->density_phase(full_grid(), ws_);
    force_phase(full_grid(), ws_);
    pe_ = reduce_potential_energy(ws_);
    pe_current_ = true;
  }
  return pe_;
}

double WseMd::reduce_potential_energy(const StepWorkspace& ws) const {
  // Serial row-major reduction of the energy contributions: the summation
  // order (and thus the FP64 result) is independent of how the phases were
  // sharded.
  const int w = mapping_.grid_width();
  const int h = mapping_.grid_height();
  double pe_pair = 0.0, pe_embed = 0.0;
  for (int cy = 0; cy < h; ++cy) {
    for (int cx = 0; cx < w; ++cx) {
      const long ai = mapping_.atom_at(cx, cy);
      if (ai < 0) continue;
      pe_embed += ws.pe_embed[static_cast<std::size_t>(ai)];
    }
  }
  for (int cy = 0; cy < h; ++cy) {
    for (int cx = 0; cx < w; ++cx) {
      const long ai = mapping_.atom_at(cx, cy);
      if (ai < 0) continue;
      pe_pair +=
          0.5 * static_cast<double>(ws.pair_half[static_cast<std::size_t>(ai)]);
    }
  }
  return pe_pair + pe_embed;
}

std::vector<Vec3d> WseMd::positions() const {
  std::vector<Vec3d> out(positions_.size());
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    out[i] = Vec3d(positions_.get(i));
  }
  return out;
}

std::vector<Vec3d> WseMd::velocities() const {
  std::vector<Vec3d> out(velocities_.size());
  for (std::size_t i = 0; i < velocities_.size(); ++i) {
    out[i] = Vec3d(velocities_.get(i));
  }
  return out;
}

void WseMd::set_velocities(const std::vector<Vec3d>& v) {
  WSMD_REQUIRE(v.size() == velocities_.size(), "velocity count mismatch");
  for (std::size_t i = 0; i < v.size(); ++i) velocities_.set(i, Vec3f(v[i]));
}

void WseMd::set_positions(const std::vector<Vec3d>& r) {
  WSMD_REQUIRE(r.size() == positions_.size(), "position count mismatch");
  for (std::size_t i = 0; i < r.size(); ++i) positions_.set(i, Vec3f(r[i]));
  pe_current_ = false;
  // A bare position overwrite (cross-backend transfer, tests) may exceed
  // what the constructed mapping planned for; never shrink b, only widen.
  std::vector<Vec3d> wide(positions_.size());
  for (std::size_t i = 0; i < wide.size(); ++i) {
    wide[i] = Vec3d(positions_.get(i));
  }
  b_ = std::max(b_, mapping_.required_b(wide, rcut_) + 1);
}

WseMd::SavedState WseMd::save_state() const {
  SavedState st;
  st.step = step_count_;
  st.elapsed_seconds = elapsed_seconds_;
  st.potential_energy = potential_energy();  // forces the lazy evaluation
  st.positions = positions();
  st.velocities = velocities();
  st.grid_width = mapping_.grid_width();
  st.grid_height = mapping_.grid_height();
  st.b = b_;
  st.core_atoms = mapping_.core_atoms();
  st.initial_positions = initial_positions_;
  return st;
}

void WseMd::restore_state(const SavedState& state) {
  WSMD_REQUIRE(state.positions.size() == positions_.size() &&
                   state.velocities.size() == positions_.size(),
               "restore_state: atom count mismatch ("
                   << state.positions.size() << " vs " << positions_.size()
                   << ")");
  WSMD_REQUIRE(state.grid_width == mapping_.grid_width() &&
                   state.grid_height == mapping_.grid_height(),
               "restore_state: core grid mismatch ("
                   << state.grid_width << "x" << state.grid_height << " vs "
                   << mapping_.grid_width() << "x" << mapping_.grid_height()
                   << ") — was the checkpoint taken from this structure?");
  WSMD_REQUIRE(state.step >= 0, "restore_state: negative step counter");
  WSMD_REQUIRE(state.b >= 1, "restore_state: neighborhood radius < 1");
  WSMD_REQUIRE(state.initial_positions.size() == positions_.size(),
               "restore_state: displacement baseline size mismatch");
  mapping_.restore_assignment(state.core_atoms);
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    positions_.set(i, Vec3f(state.positions[i]));
    velocities_.set(i, Vec3f(state.velocities[i]));
  }
  initial_positions_ = state.initial_positions;
  b_ = state.b;
  step_count_ = state.step;
  elapsed_seconds_ = state.elapsed_seconds;
  // The committed PE carries the wafer thermo convention (energy of the
  // configuration the last step integrated *from*); adopting it keeps the
  // first post-restore thermo row bitwise on the uninterrupted run.
  pe_ = state.potential_energy;
  pe_current_ = true;
}

void WseMd::thermalize(double temperature_K, Rng& rng) {
  WSMD_REQUIRE(temperature_K >= 0.0, "temperature must be non-negative");
  Vec3d p_total{0, 0, 0};
  double mass_total = 0.0;
  std::vector<Vec3d> v(velocities_.size());
  for (std::size_t i = 0; i < velocities_.size(); ++i) {
    const double m = potential_->mass(types_[i]);
    const double sigma = std::sqrt(units::kBoltzmann * temperature_K / m *
                                   units::kForceToAccel);
    v[i] = rng.gaussian_vec3(sigma);
    p_total += v[i] * m;
    mass_total += m;
  }
  const Vec3d v_cm = p_total / mass_total;
  for (auto& vi : v) vi -= v_cm;
  set_velocities(v);
}

void WseMd::gather_neighborhood(int cx, int cy,
                                std::vector<std::uint32_t>& out) const {
  out.clear();
  const int w = mapping_.grid_width();
  const int h = mapping_.grid_height();
  // Deterministic candidate order: row-major sweep of the clipped square,
  // mirroring the fixed arrival order of the marching multicast.
  for (int y = std::max(0, cy - b_); y <= std::min(h - 1, cy + b_); ++y) {
    for (int x = std::max(0, cx - b_); x <= std::min(w - 1, cx + b_); ++x) {
      if (x == cx && y == cy) continue;
      const long a = mapping_.atom_at(x, y);
      if (a >= 0) out.push_back(static_cast<std::uint32_t>(a));
    }
  }
}

WseStepStats WseMd::step() { return do_timestep(); }

WseStepStats WseMd::run(int n, const StepCallback& callback) {
  WSMD_REQUIRE(n >= 0, "negative step count");
  WseStepStats last;
  for (int k = 0; k < n; ++k) {
    last = do_timestep();
    if (callback) callback(last);
  }
  return last;
}

ShardRect WseMd::full_grid() const {
  return ShardRect{0, 0, mapping_.grid_width(), mapping_.grid_height()};
}

void WseMd::begin_step(StepWorkspace& ws) const {
  telemetry::ScopedSpan span("wse.begin");
  const std::size_t n = positions_.size();
  // Row capacity: every cell in the (2b+1)² neighborhood square except the
  // center can hold an atom, plus the sieve's vector-store overshoot pad.
  const auto span_cells = static_cast<std::size_t>(2 * b_ + 1);
  ws.neighbor_stride = span_cells * span_cells - 1 + simd::kPadF32;
  ws.neighbor_idx.resize(n * ws.neighbor_stride);
  ws.neighbor_count.assign(n, 0);
  ws.candidates.assign(n, 0);
  ws.pe_embed.assign(n, 0.0);
  ws.pair_half.assign(n, 0.0f);
  ws.cycles.assign(n, 0.0);
  ws.new_positions = positions_;
  ws.new_velocities = velocities_;
  ws.partner.resize(mapping_.core_count());
}

void WseMd::density_phase(const ShardRect& shard, StepWorkspace& ws) {
  telemetry::ScopedSpan span("wse.density");
  const auto rc2 = static_cast<float>(rcut_ * rcut_);
  const eam::ProfileF32* prof = profile_.get();
  const bool pairwise_only = potential_->is_pairwise_only();
  const simd::KernelTable& kern = simd::kernels();
  eam::ProfileF32::Raw raw{};
  if (prof != nullptr) raw = prof->raw();
  const float* px = positions_.x();
  const float* py = positions_.y();
  const float* pz = positions_.z();
  // Function-local scratch (one per phase call) keeps sharded workers from
  // racing: r2 is only needed transiently between the sieve and the density
  // row — persisting it per atom would not fit at paper scale.
  std::vector<std::uint32_t> gathered;
  std::vector<float> r2_scratch(ws.neighbor_stride);
  for (int cy = shard.y0; cy < shard.y1; ++cy) {
    for (int cx = shard.x0; cx < shard.x1; ++cx) {
      const long ai = mapping_.atom_at(cx, cy);
      if (ai < 0) continue;
      const auto i = static_cast<std::size_t>(ai);
      gather_neighborhood(cx, cy, gathered);
      ws.candidates[i] = static_cast<std::uint32_t>(gathered.size());
      std::uint32_t* row = ws.neighbor_idx.data() + i * ws.neighbor_stride;
      const Vec3f ri = positions_.get(i);
      float rho = 0.0f;
      if (prof != nullptr) {
        // Batched sieve: 8-wide accept test, accepted indices compacted
        // into the row; then one 8-wide table sweep over the survivors.
        const std::size_t m =
            kern.sieve_f32(px, py, pz, ri.x, ri.y, ri.z, gathered.data(),
                           gathered.size(), sbox_, rc2, row,
                           r2_scratch.data());
        ws.neighbor_count[i] = static_cast<std::uint32_t>(m);
        if (!pairwise_only) {
          rho = kern.rho_row_f32(raw, types_.data(), row, r2_scratch.data(),
                                 m);
        }
      } else {
        // Analytic path: per-candidate accept + direct potential calls.
        std::uint32_t m = 0;
        for (std::uint32_t j : gathered) {
          const Vec3f d = minimum_image_f(ri, positions_.get(j));
          const float r2 = dot(d, d);
          if (r2 >= rc2) continue;
          row[m++] = j;
          if (pairwise_only) continue;  // phase 3 skipped for pair styles
          rho += static_cast<float>(potential_->density(
              types_[j], std::sqrt(static_cast<double>(r2))));
        }
        ws.neighbor_count[i] = m;
      }
      if (pairwise_only) {
        ws.pe_embed[i] = 0.0;
        fprime_[i] = 0.0f;
      } else if (prof != nullptr) {
        float f, fp;
        prof->embed(types_[i], rho, f, fp);
        ws.pe_embed[i] = f;
        fprime_[i] = fp;
      } else {
        ws.pe_embed[i] = potential_->embed(types_[i], rho);
        fprime_[i] =
            static_cast<float>(potential_->embed_deriv(types_[i], rho));
      }
    }
  }
}

void WseMd::force_phase(const ShardRect& shard, StepWorkspace& ws) const {
  telemetry::ScopedSpan span("wse.force");
  // F' of every neighborhood is available now, as after the embedding
  // exchange on the real machine.
  const auto dt = static_cast<float>(config_.dt);
  const eam::ProfileF32* prof = profile_.get();
  const bool pairwise_only = potential_->is_pairwise_only();
  const simd::KernelTable& kern = simd::kernels();
  eam::ProfileF32::Raw raw{};
  if (prof != nullptr) raw = prof->raw();
  const float* px = positions_.x();
  const float* py = positions_.y();
  const float* pz = positions_.z();
  for (int cy = shard.y0; cy < shard.y1; ++cy) {
    for (int cx = shard.x0; cx < shard.x1; ++cx) {
      const long ai = mapping_.atom_at(cx, cy);
      if (ai < 0) continue;
      const auto i = static_cast<std::size_t>(ai);
      const Vec3f ri = positions_.get(i);
      const float fprime_i = fprime_[i];
      const int ti = types_[i];
      const std::uint32_t* row =
          ws.neighbor_idx.data() + i * ws.neighbor_stride;
      const std::uint32_t m = ws.neighbor_count[i];
      Vec3f force{0, 0, 0};
      float pair_acc = 0.0f;
      if (prof != nullptr) {
        // Batched force row: re-gathers neighbor positions and recomputes
        // the sieve's displacement bitwise, then 8-wide table sweeps.
        const simd::PairAccumF32 acc = kern.force_row_f32(
            raw, px, py, pz, ri.x, ri.y, ri.z, sbox_, types_.data(),
            fprime_.data(), fprime_i, ti, row, m, pairwise_only);
        force = Vec3f{acc.fx, acc.fy, acc.fz};
        pair_acc = acc.phi;
      } else {
        for (std::uint32_t k = 0; k < m; ++k) {
          const std::uint32_t j = row[k];
          const Vec3f d = minimum_image_f(ri, positions_.get(j));
          const float r2 = dot(d, d);
          const double rd = std::sqrt(static_cast<double>(r2));
          pair_acc += static_cast<float>(potential_->pair(ti, types_[j], rd));
          float fmag =
              static_cast<float>(potential_->pair_deriv(ti, types_[j], rd));
          if (!pairwise_only) {
            fmag += fprime_i * static_cast<float>(
                                   potential_->density_deriv(types_[j], rd)) +
                    fprime_[j] * static_cast<float>(
                                     potential_->density_deriv(ti, rd));
          }
          force += d * (fmag / static_cast<float>(rd));
        }
      }
      ws.pair_half[i] = pair_acc;

      const auto inv_m = static_cast<float>(
          1.0 / potential_->mass(types_[i]) * units::kForceToAccel);
      const Vec3f a = force * inv_m;
      const Vec3f v_new = velocities_.get(i) + a * dt;
      ws.new_velocities.set(i, v_new);
      ws.new_positions.set(i, Vec3f(box_.wrap(Vec3d(ri + v_new * dt))));

      // Cycle accounting for this worker's timestep.
      ws.cycles[i] = config_.cost_model.timestep_cycles(
          static_cast<double>(ws.candidates[i]), static_cast<double>(m));
    }
  }
}

bool WseMd::commit_step(StepWorkspace& ws) {
  telemetry::ScopedSpan span("wse.commit");
  positions_.swap(ws.new_positions);
  velocities_.swap(ws.new_velocities);

  pe_ = reduce_potential_energy(ws);
  pe_current_ = true;
  ++step_count_;

  // Reduce the accounting now, before a phase-5 swap reorders the row-major
  // sweep, so stats match the serial engine's historical reduction order.
  ws.reduced = reduce_region(full_grid(), ws);

  return config_.swap_interval > 0 && step_count_ % config_.swap_interval == 0;
}

void WseMd::swap_select(const ShardRect& shard,
                        std::vector<int>& partner) const {
  telemetry::ScopedSpan span("wse.swap_select");
  // Paper Sec. III-D, first exchange: workers see neighbors' atom state and
  // score the best greedy swap. Empty tiles participate ("atoms at
  // infinity"). Reads only committed positions and the mapping; writes only
  // the region's partner slots, so disjoint shards are thread-safe.
  WSMD_REQUIRE(partner.size() == mapping_.core_count(),
               "partner array must cover every core");
  const int w = mapping_.grid_width();
  const int h = mapping_.grid_height();
  const int radius = 1;  // greedy swaps with immediate neighbors

  auto disp = [&](long atom, const CoreCoord& c) {
    if (atom < 0) return 0.0;
    const Vec3d nom = mapping_.nominal_position(c);
    const Vec3d lg = mapping_.logical_xy(
        Vec3d(positions_.get(static_cast<std::size_t>(atom))));
    return std::max(std::fabs(lg.x - nom.x), std::fabs(lg.y - nom.y));
  };

  for (int cy = shard.y0; cy < shard.y1; ++cy) {
    for (int cx = shard.x0; cx < shard.x1; ++cx) {
      const CoreCoord me{cx, cy};
      const long a = mapping_.atom_at(cx, cy);
      double best_gain = 1e-9;
      int best = -1;
      for (int dy = -radius; dy <= radius; ++dy) {
        for (int dx = -radius; dx <= radius; ++dx) {
          if (dx == 0 && dy == 0) continue;
          const int nx = cx + dx, ny = cy + dy;
          if (nx < 0 || nx >= w || ny < 0 || ny >= h) continue;
          const CoreCoord other{nx, ny};
          const long bt = mapping_.atom_at(nx, ny);
          if (a < 0 && bt < 0) continue;
          const double before = std::max(disp(a, me), disp(bt, other));
          const double after = std::max(disp(a, other), disp(bt, me));
          const double gain = before - after;
          if (gain > best_gain) {
            best_gain = gain;
            best = ny * w + nx;
          }
        }
      }
      partner[static_cast<std::size_t>(cy) * w + cx] = best;
    }
  }
}

std::size_t WseMd::swap_commit(const std::vector<int>& partner) {
  telemetry::ScopedSpan span("wse.swap_commit");
  // Second exchange: chosen partner ids cross the fabric; mutual agreement
  // commits the swap. Serial — it mutates the mapping.
  WSMD_REQUIRE(partner.size() == mapping_.core_count(),
               "partner array must cover every core");
  const int w = mapping_.grid_width();
  const int h = mapping_.grid_height();
  std::size_t applied = 0;
  for (int cy = 0; cy < h; ++cy) {
    for (int cx = 0; cx < w; ++cx) {
      const int me = cy * w + cx;
      const int p = partner[static_cast<std::size_t>(me)];
      if (p < 0 || p <= me) continue;  // each pair handled once
      if (partner[static_cast<std::size_t>(p)] != me) continue;
      const CoreCoord ca{cx, cy};
      const CoreCoord cb{p % w, p / w};
      mapping_.swap_atoms(ca, cb);
      ++applied;
    }
  }
  return applied;
}

WseStepStats WseMd::reduce_region(const ShardRect& shard,
                                  const StepWorkspace& ws) const {
  WseStepStats stats;
  RunningStats cycles;
  double cand_total = 0.0, inter_total = 0.0;
  std::size_t occupied = 0;
  for (int cy = shard.y0; cy < shard.y1; ++cy) {
    for (int cx = shard.x0; cx < shard.x1; ++cx) {
      const long ai = mapping_.atom_at(cx, cy);
      if (ai < 0) continue;
      const auto i = static_cast<std::size_t>(ai);
      cycles.add(ws.cycles[i]);
      cand_total += static_cast<double>(ws.candidates[i]);
      inter_total += static_cast<double>(ws.neighbor_count[i]);
      ++occupied;
    }
  }
  if (occupied > 0) {
    const auto n = static_cast<double>(occupied);
    stats.mean_candidates = cand_total / n;
    stats.mean_interactions = inter_total / n;
  }
  stats.max_cycles = cycles.max();
  stats.mean_cycles = cycles.mean();
  stats.stddev_cycles = cycles.stddev();
  return stats;
}

void WseMd::begin_step_region(StepWorkspace& ws) const {
  telemetry::ScopedSpan span("wse.begin");
  const std::size_t n = positions_.size();
  const auto span_cells = static_cast<std::size_t>(2 * b_ + 1);
  ws.neighbor_stride = span_cells * span_cells - 1 + simd::kPadF32;
  // resize (not assign): slots outside the caller's regions keep stale
  // values nobody reads; slots inside are written by the phases before any
  // read. This keeps the per-rank begin cost O(region), not O(N).
  ws.neighbor_idx.resize(n * ws.neighbor_stride);
  ws.neighbor_count.resize(n);
  ws.candidates.resize(n);
  ws.pe_embed.resize(n);
  ws.pair_half.resize(n);
  ws.cycles.resize(n);
  ws.new_positions.resize(n);
  ws.new_velocities.resize(n);
  ws.partner.resize(mapping_.core_count());
}

WseMd::RegionEnergy WseMd::reduce_region_energy(const ShardRect& shard,
                                                const StepWorkspace& ws) const {
  RegionEnergy pe;
  for (int cy = shard.y0; cy < shard.y1; ++cy) {
    for (int cx = shard.x0; cx < shard.x1; ++cx) {
      const long ai = mapping_.atom_at(cx, cy);
      if (ai < 0) continue;
      pe.embed += ws.pe_embed[static_cast<std::size_t>(ai)];
    }
  }
  for (int cy = shard.y0; cy < shard.y1; ++cy) {
    for (int cx = shard.x0; cx < shard.x1; ++cx) {
      const long ai = mapping_.atom_at(cx, cy);
      if (ai < 0) continue;
      pe.pair +=
          0.5 * static_cast<double>(ws.pair_half[static_cast<std::size_t>(ai)]);
    }
  }
  return pe;
}

WseMd::RegionAccounting WseMd::reduce_region_raw(const ShardRect& shard,
                                                 const StepWorkspace& ws) const {
  RegionAccounting acc;
  for (int cy = shard.y0; cy < shard.y1; ++cy) {
    for (int cx = shard.x0; cx < shard.x1; ++cx) {
      const long ai = mapping_.atom_at(cx, cy);
      if (ai < 0) continue;
      const auto i = static_cast<std::size_t>(ai);
      acc.candidate_total += static_cast<double>(ws.candidates[i]);
      acc.interaction_total += static_cast<double>(ws.neighbor_count[i]);
      acc.cycles_sum += ws.cycles[i];
      acc.cycles_sq_sum += ws.cycles[i] * ws.cycles[i];
      acc.cycles_max = std::max(acc.cycles_max, ws.cycles[i]);
      ++acc.occupied;
    }
  }
  return acc;
}

bool WseMd::commit_region(const ShardRect& shard, StepWorkspace& ws,
                          RegionEnergy& pe) {
  telemetry::ScopedSpan span("wse.commit");
  for (int cy = shard.y0; cy < shard.y1; ++cy) {
    for (int cx = shard.x0; cx < shard.x1; ++cx) {
      const long ai = mapping_.atom_at(cx, cy);
      if (ai < 0) continue;
      const auto i = static_cast<std::size_t>(ai);
      positions_.set(i, ws.new_positions.get(i));
      velocities_.set(i, ws.new_velocities.get(i));
    }
  }
  pe = reduce_region_energy(shard, ws);
  ++step_count_;
  return config_.swap_interval > 0 && step_count_ % config_.swap_interval == 0;
}

double WseMd::kinetic_energy_region(const ShardRect& shard) const {
  double mv2 = 0.0;
  for (int cy = shard.y0; cy < shard.y1; ++cy) {
    for (int cx = shard.x0; cx < shard.x1; ++cx) {
      const long ai = mapping_.atom_at(cx, cy);
      if (ai < 0) continue;
      const auto i = static_cast<std::size_t>(ai);
      mv2 += potential_->mass(types_[i]) * norm2(Vec3d(velocities_.get(i)));
    }
  }
  return 0.5 * mv2 * units::kMv2ToEnergy;
}

WseStepStats WseMd::finish_step(const StepWorkspace& ws,
                                std::size_t swaps_applied, bool swapped) {
  WseStepStats stats = ws.reduced;
  stats.step = step_count_;
  stats.swaps_applied = swaps_applied;
  stats.swapped = swapped;
  // Workers synchronize through the neighborhood exchanges, so the slowest
  // worker sets the array step time (paper Sec. V-B).
  stats.wall_seconds =
      stats.max_cycles / (config_.cost_model.clock_ghz() * 1e9);
  if (stats.swapped) {
    // A swap costs roughly one timestep (paper Sec. V-E).
    stats.wall_seconds *= 2.0;
  }
  elapsed_seconds_ += stats.wall_seconds;
  cum_.candidate_step_sum += stats.mean_candidates;
  cum_.interaction_step_sum += stats.mean_interactions;
  if (stats.swapped) {
    ++cum_.swap_steps;
    telemetry::count("wse.swap_steps");
    telemetry::count("wse.swaps_applied", stats.swaps_applied);
  }
  telemetry::count("wse.steps");
  if (telemetry::enabled()) {
    // Totals across all occupied cores (the reductions report per-core
    // means): the counters the snapshot stream differentiates into
    // pairs/sec and candidates/sec throughput series.
    const double n = static_cast<double>(atom_count());
    telemetry::count("wse.interactions", static_cast<std::uint64_t>(
                                             stats.mean_interactions * n + 0.5));
    telemetry::count("wse.candidates", static_cast<std::uint64_t>(
                                           stats.mean_candidates * n + 0.5));
  }
  return stats;
}

WseStepStats WseMd::do_timestep() {
  begin_step(ws_);
  const ShardRect all = full_grid();
  density_phase(all, ws_);
  force_phase(all, ws_);
  const bool swap_now = commit_step(ws_);
  std::size_t applied = 0;
  if (swap_now) {
    swap_select(all, ws_.partner);
    applied = swap_commit(ws_.partner);
  }
  return finish_step(ws_, applied, swap_now);
}

double WseMd::kinetic_energy() const {
  double mv2 = 0.0;
  for (std::size_t i = 0; i < velocities_.size(); ++i) {
    mv2 += potential_->mass(types_[i]) * norm2(Vec3d(velocities_.get(i)));
  }
  return 0.5 * mv2 * units::kMv2ToEnergy;
}

void WseMd::scramble_mapping(Rng& rng, int count) {
  const int w = mapping_.grid_width();
  const int h = mapping_.grid_height();
  for (int k = 0; k < count; ++k) {
    const int x1 = static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(w)));
    const int y1 = static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(h)));
    const int x2 = std::min(w - 1, x1 + static_cast<int>(rng.uniform_index(3)));
    const int y2 = std::min(h - 1, y1 + static_cast<int>(rng.uniform_index(3)));
    mapping_.swap_atoms({x1, y1}, {x2, y2});
  }
}

double WseMd::assignment_cost() const {
  double worst = 0.0;
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    worst =
        std::max(worst, mapping_.displacement(i, Vec3d(positions_.get(i))));
  }
  return worst;
}

double WseMd::max_inplane_displacement() const {
  double worst = 0.0;
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    const Vec3d d = Vec3d(positions_.get(i)) - initial_positions_[i];
    worst = std::max(worst, std::max(std::fabs(d.x), std::fabs(d.y)));
  }
  return worst;
}

}  // namespace wsmd::core
