#include "core/wse_md.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/units.hpp"

namespace wsmd::core {

WseMd::WseMd(const lattice::Structure& s, eam::EamPotentialPtr potential,
             WseMdConfig config)
    : config_(config),
      potential_(std::move(potential)),
      box_(s.box),
      mapping_(AtomMapping::for_structure(s, config.mapping)) {
  WSMD_REQUIRE(potential_ != nullptr, "WseMd needs a potential");
  rcut_ = potential_->cutoff();

  positions_.resize(s.size());
  velocities_.assign(s.size(), Vec3f{0, 0, 0});
  types_ = s.types;
  fprime_.assign(s.size(), 0.0f);
  initial_positions_.resize(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    positions_[i] = Vec3f(s.positions[i]);
    // Displacement diagnostics are measured against the FP32-rounded
    // state the workers actually hold.
    initial_positions_[i] = Vec3d(positions_[i]);
  }

  if (config_.b_override > 0) {
    b_ = config_.b_override;
  } else {
    // One extra hop of slack over the initial configuration's exact
    // requirement absorbs thermal motion between swaps.
    b_ = mapping_.required_b(s.positions, rcut_) + 1;
  }
  WSMD_REQUIRE(b_ >= 1, "neighborhood radius must be at least 1");
}

std::vector<Vec3d> WseMd::positions() const {
  std::vector<Vec3d> out(positions_.size());
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    out[i] = Vec3d(positions_[i]);
  }
  return out;
}

std::vector<Vec3d> WseMd::velocities() const {
  std::vector<Vec3d> out(velocities_.size());
  for (std::size_t i = 0; i < velocities_.size(); ++i) {
    out[i] = Vec3d(velocities_[i]);
  }
  return out;
}

void WseMd::set_velocities(const std::vector<Vec3d>& v) {
  WSMD_REQUIRE(v.size() == velocities_.size(), "velocity count mismatch");
  for (std::size_t i = 0; i < v.size(); ++i) velocities_[i] = Vec3f(v[i]);
}

void WseMd::thermalize(double temperature_K, Rng& rng) {
  WSMD_REQUIRE(temperature_K >= 0.0, "temperature must be non-negative");
  Vec3d p_total{0, 0, 0};
  double mass_total = 0.0;
  std::vector<Vec3d> v(velocities_.size());
  for (std::size_t i = 0; i < velocities_.size(); ++i) {
    const double m = potential_->mass(types_[i]);
    const double sigma = std::sqrt(units::kBoltzmann * temperature_K / m *
                                   units::kForceToAccel);
    v[i] = rng.gaussian_vec3(sigma);
    p_total += v[i] * m;
    mass_total += m;
  }
  const Vec3d v_cm = p_total / mass_total;
  for (auto& vi : v) vi -= v_cm;
  set_velocities(v);
}

void WseMd::gather_neighborhood(int cx, int cy,
                                std::vector<std::size_t>& out) const {
  out.clear();
  const int w = mapping_.grid_width();
  const int h = mapping_.grid_height();
  // Deterministic candidate order: row-major sweep of the clipped square,
  // mirroring the fixed arrival order of the marching multicast.
  for (int y = std::max(0, cy - b_); y <= std::min(h - 1, cy + b_); ++y) {
    for (int x = std::max(0, cx - b_); x <= std::min(w - 1, cx + b_); ++x) {
      if (x == cx && y == cy) continue;
      const long a = mapping_.atom_at(x, y);
      if (a >= 0) out.push_back(static_cast<std::size_t>(a));
    }
  }
}

WseStepStats WseMd::step() { return do_timestep(); }

WseStepStats WseMd::run(int n) {
  WSMD_REQUIRE(n >= 0, "negative step count");
  WseStepStats last;
  for (int k = 0; k < n; ++k) last = do_timestep();
  return last;
}

WseStepStats WseMd::do_timestep() {
  const int w = mapping_.grid_width();
  const int h = mapping_.grid_height();
  const auto rc2 = static_cast<float>(rcut_ * rcut_);

  WseStepStats stats;
  RunningStats cycles;
  double cand_total = 0.0, inter_total = 0.0;

  // Phases 1-3a per worker: candidate exchange, neighbor list, density.
  // Two sweeps are needed because forces use neighbors' F' values, which
  // the real machine obtains with the second (embedding) exchange.
  struct WorkerScratch {
    std::vector<std::size_t> neighbors;  // accepted candidates (atom ids)
    std::size_t candidates = 0;
  };
  std::vector<WorkerScratch> scratch(positions_.size());

  double pe_pair = 0.0, pe_embed = 0.0;
  std::vector<std::size_t> gathered;
  for (int cy = 0; cy < h; ++cy) {
    for (int cx = 0; cx < w; ++cx) {
      const long ai = mapping_.atom_at(cx, cy);
      if (ai < 0) continue;
      const auto i = static_cast<std::size_t>(ai);
      gather_neighborhood(cx, cy, gathered);
      auto& sc = scratch[i];
      sc.candidates = gathered.size();
      sc.neighbors.clear();
      const Vec3f ri = positions_[i];
      float rho = 0.0f;
      for (std::size_t j : gathered) {
        // FP32 displacement with minimum image (open axes unaffected).
        const Vec3d d64 = box_.minimum_image(Vec3d(ri), Vec3d(positions_[j]));
        const Vec3f d(d64);
        const float r2 = dot(d, d);
        if (r2 >= rc2) continue;
        sc.neighbors.push_back(j);
        rho += static_cast<float>(
            potential_->density(types_[j], std::sqrt(static_cast<double>(r2))));
      }
      pe_embed += potential_->embed(types_[i], rho);
      fprime_[i] =
          static_cast<float>(potential_->embed_deriv(types_[i], rho));
    }
  }

  // Phase 4: force evaluation + leap-frog integration (F' of neighbors now
  // available, as after the embedding exchange).
  const auto dt = static_cast<float>(config_.dt);
  std::vector<Vec3f> new_positions = positions_;
  std::vector<Vec3f> new_velocities = velocities_;
  for (int cy = 0; cy < h; ++cy) {
    for (int cx = 0; cx < w; ++cx) {
      const long ai = mapping_.atom_at(cx, cy);
      if (ai < 0) continue;
      const auto i = static_cast<std::size_t>(ai);
      const auto& sc = scratch[i];
      const Vec3f ri = positions_[i];
      Vec3f force{0, 0, 0};
      float pair_acc = 0.0f;
      for (std::size_t j : sc.neighbors) {
        const Vec3d d64 = box_.minimum_image(Vec3d(ri), Vec3d(positions_[j]));
        const Vec3f d(d64);
        const float r2 = dot(d, d);
        const auto r = static_cast<float>(std::sqrt(static_cast<double>(r2)));
        const double rd = r;
        pair_acc += static_cast<float>(potential_->pair(types_[i], types_[j], rd));
        const auto dphi =
            static_cast<float>(potential_->pair_deriv(types_[i], types_[j], rd));
        const auto drho_j =
            static_cast<float>(potential_->density_deriv(types_[j], rd));
        const auto drho_i =
            static_cast<float>(potential_->density_deriv(types_[i], rd));
        const float fmag = fprime_[i] * drho_j + fprime_[j] * drho_i + dphi;
        force += d * (fmag / r);
      }
      pe_pair += 0.5 * static_cast<double>(pair_acc);

      const auto inv_m = static_cast<float>(
          1.0 / potential_->mass(types_[i]) * units::kForceToAccel);
      const Vec3f a = force * inv_m;
      new_velocities[i] = velocities_[i] + a * dt;
      new_positions[i] = Vec3f(box_.wrap(Vec3d(ri + new_velocities[i] * dt)));

      // Cycle accounting for this worker's timestep.
      const double c = config_.cost_model.timestep_cycles(
          static_cast<double>(sc.candidates),
          static_cast<double>(sc.neighbors.size()));
      cycles.add(c);
      cand_total += static_cast<double>(sc.candidates);
      inter_total += static_cast<double>(sc.neighbors.size());
    }
  }
  positions_.swap(new_positions);
  velocities_.swap(new_velocities);
  pe_ = pe_pair + pe_embed;
  ++step_count_;

  // Phase 5: occasional atom swap.
  if (config_.swap_interval > 0 &&
      step_count_ % config_.swap_interval == 0) {
    stats.swaps_applied = do_atom_swap();
    stats.swapped = true;
  }

  const auto n = static_cast<double>(positions_.size());
  stats.mean_candidates = cand_total / n;
  stats.mean_interactions = inter_total / n;
  stats.max_cycles = cycles.max();
  stats.mean_cycles = cycles.mean();
  stats.stddev_cycles = cycles.stddev();
  // Workers synchronize through the neighborhood exchanges, so the slowest
  // worker sets the array step time (paper Sec. V-B).
  stats.wall_seconds =
      cycles.max() / (config_.cost_model.clock_ghz() * 1e9);
  if (stats.swapped) {
    // A swap costs roughly one timestep (paper Sec. V-E).
    stats.wall_seconds *= 2.0;
  }
  elapsed_seconds_ += stats.wall_seconds;
  return stats;
}

std::size_t WseMd::do_atom_swap() {
  // Paper Sec. III-D: two neighborhood exchanges. First, workers see
  // neighbors' atom state and score the best swap; second, they exchange
  // chosen partner ids; mutual choices commit. Empty tiles participate.
  const int w = mapping_.grid_width();
  const int h = mapping_.grid_height();
  const int radius = 1;  // greedy swaps with immediate neighbors

  auto disp = [&](long atom, const CoreCoord& c) {
    if (atom < 0) return 0.0;
    const Vec3d nom = mapping_.nominal_position(c);
    const Vec3d lg =
        mapping_.logical_xy(Vec3d(positions_[static_cast<std::size_t>(atom)]));
    return std::max(std::fabs(lg.x - nom.x), std::fabs(lg.y - nom.y));
  };

  // Pass 1: each core picks its best partner.
  std::vector<int> partner(mapping_.core_count(), -1);
  for (int cy = 0; cy < h; ++cy) {
    for (int cx = 0; cx < w; ++cx) {
      const CoreCoord me{cx, cy};
      const long a = mapping_.atom_at(cx, cy);
      double best_gain = 1e-9;
      int best = -1;
      for (int dy = -radius; dy <= radius; ++dy) {
        for (int dx = -radius; dx <= radius; ++dx) {
          if (dx == 0 && dy == 0) continue;
          const int nx = cx + dx, ny = cy + dy;
          if (nx < 0 || nx >= w || ny < 0 || ny >= h) continue;
          const CoreCoord other{nx, ny};
          const long bt = mapping_.atom_at(nx, ny);
          if (a < 0 && bt < 0) continue;
          const double before = std::max(disp(a, me), disp(bt, other));
          const double after = std::max(disp(a, other), disp(bt, me));
          const double gain = before - after;
          if (gain > best_gain) {
            best_gain = gain;
            best = ny * w + nx;
          }
        }
      }
      partner[static_cast<std::size_t>(cy) * w + cx] = best;
    }
  }

  // Pass 2: mutual agreement commits the swap.
  std::size_t applied = 0;
  for (int cy = 0; cy < h; ++cy) {
    for (int cx = 0; cx < w; ++cx) {
      const int me = cy * w + cx;
      const int p = partner[static_cast<std::size_t>(me)];
      if (p < 0 || p <= me) continue;  // each pair handled once
      if (partner[static_cast<std::size_t>(p)] != me) continue;
      const CoreCoord ca{cx, cy};
      const CoreCoord cb{p % w, p / w};
      mapping_.swap_atoms(ca, cb);
      ++applied;
    }
  }
  return applied;
}

double WseMd::kinetic_energy() const {
  double mv2 = 0.0;
  for (std::size_t i = 0; i < velocities_.size(); ++i) {
    mv2 += potential_->mass(types_[i]) * norm2(Vec3d(velocities_[i]));
  }
  return 0.5 * mv2 * units::kMv2ToEnergy;
}

void WseMd::scramble_mapping(Rng& rng, int count) {
  const int w = mapping_.grid_width();
  const int h = mapping_.grid_height();
  for (int k = 0; k < count; ++k) {
    const int x1 = static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(w)));
    const int y1 = static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(h)));
    const int x2 = std::min(w - 1, x1 + static_cast<int>(rng.uniform_index(3)));
    const int y2 = std::min(h - 1, y1 + static_cast<int>(rng.uniform_index(3)));
    mapping_.swap_atoms({x1, y1}, {x2, y2});
  }
}

double WseMd::assignment_cost() const {
  double worst = 0.0;
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    worst = std::max(worst, mapping_.displacement(i, Vec3d(positions_[i])));
  }
  return worst;
}

double WseMd::max_inplane_displacement() const {
  double worst = 0.0;
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    const Vec3d d = Vec3d(positions_[i]) - initial_positions_[i];
    worst = std::max(worst, std::max(std::fabs(d.x), std::fabs(d.y)));
  }
  return worst;
}

}  // namespace wsmd::core
