#pragma once

/// \file mapping.hpp
/// Locality-preserving atom-to-core mapping (paper Sec. III-A).
///
/// The wafer is a 2-D grid of cores; the simulation domain is flattened
/// onto its x-y plane by the projection P (z is dropped). Each core c has a
/// nominal position P(c) in the domain; the assignment cost
///
///     C(g) = max_i  max_norm( P(r_i) - P(g(i)) )
///
/// is the worst-case in-plane displacement between an atom and its worker
/// core. Interacting atoms are then separated by at most 2 C(g) + rcut in
/// the plane, which fixes the neighborhood radius b of the candidate
/// exchange: every (2b+1)^2 square of cores must contain all interaction
/// partners of its center (paper Sec. III-A).
///
/// WSMD's construction: partition the domain into lattice-cell columns,
/// give each column a rectangular block of cores sized for its atom count,
/// and solve a small per-column assignment problem placing each atom on the
/// block slot nearest its projected position. A greedy swap refinement
/// (also used online as the atom-swap step) further reduces the cost — the
/// paper reports 2.1 A + cutoff for its best offline mapping (Sec. V-E).
///
/// Periodic x/y axes use the fold-to-line transform of paper Fig. 5: the
/// coordinate circle is split in half and the two halves interleave, so
/// logical ring neighbors sit at most 2 core columns apart.

#include <cstdint>
#include <vector>

#include "lattice/lattice.hpp"
#include "util/random.hpp"
#include "util/vec3.hpp"

namespace wsmd::core {

/// Integer core coordinate on the fabric.
struct CoreCoord {
  int x = 0;
  int y = 0;
  friend bool operator==(const CoreCoord&, const CoreCoord&) = default;
};

struct MappingConfig {
  /// Edge length of a partition cell in Angstrom (defaults to the crystal
  /// lattice constant when built via `for_structure`). Must exceed 0.
  double cell_size = 0.0;
  /// Apply the Fig. 5 fold on periodic axes.
  bool fold_periodic = true;
  /// Greedy refinement rounds after the initial per-cell assignment.
  int refine_rounds = 2;
};

/// Fold a periodic cell index onto the interleaved line (paper Fig. 5):
/// the ring 0,1,...,n-1 splits at n/2; indices from the two halves
/// alternate so ring neighbors are at most 2 apart on the line.
int fold_cell_index(int cell, int num_cells);

/// Chebyshev distance between cores.
inline int chebyshev(const CoreCoord& a, const CoreCoord& b) {
  const int dx = a.x > b.x ? a.x - b.x : b.x - a.x;
  const int dy = a.y > b.y ? a.y - b.y : b.y - a.y;
  return dx > dy ? dx : dy;
}

class AtomMapping {
 public:
  /// Build a mapping for the structure. The core grid is sized
  /// automatically: (cells_x * block_w) x (cells_y * block_h) where the
  /// block holds the largest per-column atom count.
  static AtomMapping for_structure(const lattice::Structure& s,
                                   MappingConfig config = {});

  std::size_t atom_count() const { return atom_core_.size(); }
  int grid_width() const { return grid_w_; }
  int grid_height() const { return grid_h_; }
  std::size_t core_count() const {
    return static_cast<std::size_t>(grid_w_) * static_cast<std::size_t>(grid_h_);
  }

  /// Core worker of atom i.
  CoreCoord core_of(std::size_t atom) const;

  /// Atom handled by core (x, y); -1 when the core is empty (the paper
  /// allows empty tiles, "atoms at infinity").
  long atom_at(int x, int y) const;

  /// Nominal in-plane position of a core (domain coordinates, A).
  Vec3d nominal_position(const CoreCoord& c) const;

  /// Per-atom in-plane displacement max_norm(P(r_i) - P(g(i))) for the
  /// given positions (A).
  double displacement(std::size_t atom, const Vec3d& position) const;

  /// Assignment cost C(g) = worst-case displacement (A).
  double assignment_cost(const std::vector<Vec3d>& positions) const;

  /// Smallest b such that every pair of atoms within `rcut` maps to cores
  /// within Chebyshev distance b (exact, via a spatial hash over pairs).
  int required_b(const std::vector<Vec3d>& positions, double rcut) const;

  /// Angstroms of domain per core step along x / y (the pitch converting
  /// assignment cost into fabric hops).
  double pitch_x() const { return pitch_x_; }
  double pitch_y() const { return pitch_y_; }

  /// Greedy swap refinement: repeatedly exchange atoms between nearby
  /// cores when that lowers the pairwise max displacement. Returns the
  /// final assignment cost. This is the paper's offline optimization and
  /// the primitive behind the online atom swap (Sec. III-D).
  double refine(const std::vector<Vec3d>& positions, int rounds);

  /// Reassign atom->core (used by the online atom-swap step).
  void swap_atoms(const CoreCoord& a, const CoreCoord& b);

  /// The full core->atom table (core y*w+x -> atom id or -1), the
  /// assignment a checkpoint stores.
  const std::vector<long>& core_atoms() const { return core_atom_; }

  /// Replace the assignment wholesale (checkpoint restore). The grid
  /// geometry is unchanged; `core_atom` must cover every core and place
  /// every atom exactly once.
  void restore_assignment(const std::vector<long>& core_atom);

  /// Logical (fold-transformed) in-plane coordinates of a physical
  /// position: identity minus the box origin on open axes; the Fig. 5
  /// interleaved fold on periodic axes. All displacement metrics and core
  /// nominal positions live in this space.
  Vec3d logical_xy(const Vec3d& position) const;

 private:
  struct AxisInfo {
    bool folded = false;
    double cell = 1.0;
    int cells = 1;
    int columns = 1;  ///< logical columns (2x ceil(cells/2) when folded)
  };

  int grid_w_ = 0, grid_h_ = 0;
  double pitch_x_ = 1.0, pitch_y_ = 1.0;
  Vec3d origin_{0, 0, 0};
  Box box_;
  std::array<AxisInfo, 2> axes_;
  std::vector<CoreCoord> atom_core_;   // atom -> core
  std::vector<long> core_atom_;        // core (y*w+x) -> atom or -1
};

}  // namespace wsmd::core
