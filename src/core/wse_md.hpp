#pragma once

/// \file wse_md.hpp
/// The wafer-scale MD engine: one atom per core (paper Secs. III-A..III-D).
///
/// Each core is a worker owning at most one atom (id, position, velocity,
/// FP32 — the paper's wafer kernels run single precision) plus local copies
/// of the potential tables. A timestep executes the paper's five phases:
///
///   1. Candidate exchange — multicast positions through the (2b+1)^2
///      neighborhood (systolic marching multicast; the wavelet-level
///      schedule is validated in src/wse, and this engine performs the
///      equivalent gather functionally while charging cycles from the
///      calibrated cost model);
///   2. Neighbor list — r^2 against rcut^2, candidates arriving in
///      deterministic order;
///   3. Embedding — accumulate rho_i, evaluate F_i and F'_i, and exchange
///      F' with the neighborhood (it enters the force on other atoms);
///   4. Force + leap-frog integration (paper Eqs. 4-5);
///   5. Atom swap — optional greedy remapping every `swap_interval` steps
///      (paper Sec. III-D), with empty tiles ("atoms at infinity")
///      participating so atoms can migrate across cores.
///
/// Physics equivalence with the FP64 reference engine (src/md) is enforced
/// by the integration tests; performance comes from wse::CostModel.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/mapping.hpp"
#include "eam/potential.hpp"
#include "eam/profile.hpp"
#include "lattice/lattice.hpp"
#include "md/simd.hpp"
#include "util/random.hpp"
#include "util/soa.hpp"
#include "util/stats.hpp"
#include "wse/cost_model.hpp"

namespace wsmd::core {

struct WseMdConfig {
  double dt = 0.002;  ///< ps (paper: 2 fs)
  /// Perform the greedy atom-swap remap every this many steps (0 = never).
  int swap_interval = 0;
  /// Mapping construction parameters (cell size defaults to ~8 atoms per
  /// column when zero; pass the lattice constant for crystal workloads).
  MappingConfig mapping;
  /// Cycle/time accounting model.
  wse::CostModel cost_model = wse::CostModel::paper_baseline();
  /// Neighborhood radius override; 0 derives the radius from the mapping
  /// (required_b plus one hop of slack for thermal motion).
  int b_override = 0;
  /// Evaluate the phase-2..4 kernels from a flattened FP32 r²-indexed
  /// PotentialProfile (eam/profile) — the paper's per-core table copies —
  /// instead of virtual potential calls with a per-pair sqrt. Built once at
  /// construction; deterministic, so checkpoint restore and serial-vs-
  /// sharded parity are unaffected. `false` keeps the analytic path
  /// (scenario key `potential = analytic`).
  bool tabulated = true;
};

/// Per-step accounting, mirroring the counters the paper reports.
struct WseStepStats {
  long step = 0;                   ///< step index this snapshot belongs to
  double mean_candidates = 0.0;    ///< exchanged candidate atoms per worker
  double mean_interactions = 0.0;  ///< neighbor-list entries per worker
  double max_cycles = 0.0;         ///< slowest worker (sets the step time)
  double mean_cycles = 0.0;
  double stddev_cycles = 0.0;
  double wall_seconds = 0.0;       ///< modeled step time (max worker)
  bool swapped = false;
  std::size_t swaps_applied = 0;
};

/// Rectangular core region, half-open: x in [x0, x1), y in [y0, y1).
/// The phase kernels below operate on one region at a time; engine backends
/// (src/engine) tile the grid into disjoint shards and run them on
/// concurrent threads.
struct ShardRect {
  int x0 = 0;
  int y0 = 0;
  int x1 = 0;
  int y1 = 0;
  bool empty() const { return x1 <= x0 || y1 <= y0; }
};

/// Reusable per-step buffers for the phase kernels. Every array is indexed
/// by atom id except `partner` (indexed by core id, used by the atom-swap
/// phase). Each atom is owned by exactly one core, so kernels running on
/// disjoint shards never write the same slot — the workspace is safe to
/// share across threads within one step.
struct StepWorkspace {
  // Phase 1-3 outputs. The accepted-neighbor lists live in one flat
  // fixed-stride buffer (row i at neighbor_idx[i * neighbor_stride], length
  // neighbor_count[i]): the SIMD sieve compacts straight into the row, and
  // the per-step allocation churn of nested vectors is gone. Only indices
  // are stored — at paper scale (800k atoms) caching per-neighbor
  // displacements would cost gigabytes, so the force phase re-gathers.
  std::vector<std::uint32_t> neighbor_idx;    ///< accepted candidates, flat
  std::vector<std::uint32_t> neighbor_count;  ///< accepted per atom
  std::size_t neighbor_stride = 0;            ///< row capacity (incl. pad)
  std::vector<std::uint32_t> candidates;      ///< gathered per worker
  std::vector<double> pe_embed;               ///< F(rho_i) per atom
  // Phase 4 outputs.
  std::vector<float> pair_half;   ///< sum_j phi_ij before the 1/2 factor
  std::vector<double> cycles;     ///< cost-model cycles per worker
  Vec3fPlanes new_positions;
  Vec3fPlanes new_velocities;
  // Phase 5 (atom swap) scratch: chosen partner core id or -1, per core.
  std::vector<int> partner;
  // Full-grid accounting reduced by commit_step (before any swap perturbs
  // the row-major reduction order); finalized by finish_step.
  WseStepStats reduced;
};

class WseMd {
 public:
  WseMd(const lattice::Structure& s, eam::EamPotentialPtr potential,
        WseMdConfig config = {});

  std::size_t atom_count() const { return positions_.size(); }
  const AtomMapping& mapping() const { return mapping_; }
  int b() const { return b_; }
  const WseMdConfig& config() const { return config_; }

  /// FP32-held atom state, widened for inspection.
  std::vector<Vec3d> positions() const;
  std::vector<Vec3d> velocities() const;
  /// Overwrite velocities (e.g. copied from the reference engine so both
  /// integrate the same trajectory).
  void set_velocities(const std::vector<Vec3d>& v);
  /// Overwrite positions (FP32-rounded); invalidates the cached potential
  /// energy. When the new positions have drifted from the mapping (e.g. a
  /// cross-backend state transfer), widen b so the candidate exchange
  /// still covers every interacting pair.
  void set_positions(const std::vector<Vec3d>& r);

  /// Complete dynamic state for checkpoint/restart: the FP32 atom state
  /// (widened exactly to FP64), the step counter and modeled clock, the
  /// atom-to-core assignment as mutated by online swaps, the neighborhood
  /// radius (derived from the initial structure, not recoverable mid-run),
  /// the committed potential energy (thermo reports the *pre-step* PE — a
  /// recompute from current positions would not reproduce it), and the
  /// displacement-diagnostic baseline.
  struct SavedState {
    long step = 0;
    double elapsed_seconds = 0.0;
    double potential_energy = 0.0;
    std::vector<Vec3d> positions;
    std::vector<Vec3d> velocities;
    int grid_width = 0;
    int grid_height = 0;
    int b = 0;
    std::vector<long> core_atoms;
    std::vector<Vec3d> initial_positions;
  };

  SavedState save_state() const;

  /// Restore a snapshot taken from an identically-built engine (same
  /// structure, potential, mapping config). The continued trajectory is
  /// bitwise identical to the uninterrupted run at any shard count.
  /// Throws on atom-count or core-grid mismatch.
  void restore_state(const SavedState& state);

  /// Maxwell-Boltzmann initialization at T (FP32-rounded).
  void thermalize(double temperature_K, Rng& rng);

  /// Advance one timestep; returns the accounting.
  WseStepStats step();

  /// Advance n steps; returns the last step's stats. `callback`, when set,
  /// fires after every step (mirrors md::Simulation::run so the two engines
  /// can be driven identically).
  using StepCallback = std::function<void(const WseStepStats&)>;
  WseStepStats run(int n, const StepCallback& callback = {});

  /// --- Phase-kernel interface -------------------------------------------
  /// One timestep decomposes into the paper's five phases, exposed here so
  /// engine backends (src/engine) can run them shard-parallel:
  ///
  ///   begin_step(ws);
  ///   density_phase(shard, ws)   for disjoint shards covering the grid;
  ///   --- barrier (F' of every neighborhood must be published) ---
  ///   force_phase(shard, ws)     for disjoint shards covering the grid;
  ///   --- barrier ---
  ///   bool swap = commit_step(ws);
  ///   if (swap) { swap_select(shard, ws.partner)  for disjoint shards;
  ///               --- barrier ---
  ///               applied = swap_commit(ws.partner); }
  ///   stats = finish_step(ws, applied, swap);
  ///
  /// The kernels write only per-atom workspace slots (and fprime_) owned by
  /// cores inside `shard`, so disjoint shards may run on concurrent
  /// threads. Candidate arrival order per worker is a row-major sweep of
  /// its neighborhood regardless of sharding, and all cross-worker
  /// reductions happen serially in commit/finish in row-major core order —
  /// results are bitwise independent of the shard decomposition.

  /// The whole grid as one region (the serial decomposition).
  ShardRect full_grid() const;

  /// Size workspace buffers and seed new_positions/new_velocities.
  void begin_step(StepWorkspace& ws) const;

  /// Phases 1-3: candidate exchange, neighbor list, embedding density;
  /// publishes fprime_ for the region's atoms.
  void density_phase(const ShardRect& shard, StepWorkspace& ws);

  /// Phase 4: force evaluation + leap-frog integration into the workspace
  /// (requires fprime_ of all neighborhoods, i.e. a barrier after the
  /// density phase).
  void force_phase(const ShardRect& shard, StepWorkspace& ws) const;

  /// Swap in the integrated state, accumulate the potential energy, and
  /// advance the step counter. Returns true when this step is an atom-swap
  /// step (phase 5 still pending).
  bool commit_step(StepWorkspace& ws);

  /// Phase 5a: each core in the region picks its best greedy swap partner
  /// (reads committed positions; writes only the region's partner slots).
  /// `partner` must be sized core_count().
  void swap_select(const ShardRect& shard, std::vector<int>& partner) const;

  /// Phase 5b: mutual choices commit (serial; mutates the mapping).
  std::size_t swap_commit(const std::vector<int>& partner);

  /// Reduce per-worker accounting over a core region in row-major order.
  /// Fills the candidate/interaction/cycle fields only (no clock update).
  WseStepStats reduce_region(const ShardRect& shard,
                             const StepWorkspace& ws) const;

  /// --- Region-scoped stepping (src/dist) --------------------------------
  /// A distributed rank runs the phase kernels over only its own core
  /// strip (plus ghost halos exchanged out-of-band), so the full-grid
  /// begin/commit/reduce above would waste O(N) work per rank per step and
  /// read workspace slots that were never written. These variants touch
  /// only what a region step defines.

  /// Size the workspace buffers without seeding them from the full current
  /// state (no O(N) copies or fills). Every slot the phase kernels read for
  /// a region atom is written earlier in the same step, so undefined slots
  /// outside the caller's regions are never observed.
  void begin_step_region(StepWorkspace& ws) const;

  /// Partial FP64 energy sums over one region, each accumulated in
  /// row-major core order (embedding and pair kept separate so a
  /// coordinator can combine partials in a fixed rank order).
  struct RegionEnergy {
    double embed = 0.0;
    double pair = 0.0;
  };
  RegionEnergy reduce_region_energy(const ShardRect& shard,
                                    const StepWorkspace& ws) const;

  /// Raw (unnormalized) accounting partials over one region, combinable
  /// across disjoint regions without loss: sums, sum of squares, max and
  /// occupied-core count instead of the means reduce_region reports.
  struct RegionAccounting {
    double candidate_total = 0.0;
    double interaction_total = 0.0;
    double cycles_sum = 0.0;
    double cycles_sq_sum = 0.0;
    double cycles_max = 0.0;
    std::uint64_t occupied = 0;
  };
  RegionAccounting reduce_region_raw(const ShardRect& shard,
                                     const StepWorkspace& ws) const;

  /// Commit the integrated state for the region's atoms only (copy, not
  /// the serial path's full-array swap) and advance the step counter. The
  /// cached full-grid potential energy is left untouched — a rank never
  /// holds the full energy; the coordinator combines the partials returned
  /// through `pe`. Returns true when this step is an atom-swap step.
  bool commit_region(const ShardRect& shard, StepWorkspace& ws,
                     RegionEnergy& pe);

  /// Kinetic energy partial over the region's atoms, row-major core order.
  double kinetic_energy_region(const ShardRect& shard) const;

  /// Displacement baseline (what save_state stores), without forcing the
  /// lazy energy evaluation save_state performs.
  const std::vector<Vec3d>& initial_positions() const {
    return initial_positions_;
  }

  /// Embedding-derivative plane, exchanged across rank halos between the
  /// density and force phases (mutable derived state, republished every
  /// step).
  std::vector<float>& fprime() { return fprime_; }
  /// FP32 atom state planes, written directly by the halo unpack (the
  /// exchanged values are exactly the FP32 state the owner holds, so this
  /// is a bitwise transfer, not a round-trip through FP64).
  Vec3fPlanes& positions_f32() { return positions_; }
  Vec3fPlanes& velocities_f32() { return velocities_; }

  /// Final serial reduction: full-grid stats, modeled wall time (doubled on
  /// swap steps, paper Sec. V-E), and the cumulative clock.
  WseStepStats finish_step(const StepWorkspace& ws, std::size_t swaps_applied,
                           bool swapped);

  /// Total potential energy (eV, FP32 sums). Valid from construction on:
  /// before the first step it is evaluated lazily from the current
  /// positions (mirroring md::Simulation's on-demand forces); afterwards
  /// it is the value reduced by the last commit.
  double potential_energy() const;

  /// Kinetic energy of the current (half-step) velocities (eV).
  double kinetic_energy() const;

  /// Current assignment cost C(g) in Angstrom (paper Fig. 9 metric).
  double assignment_cost() const;

  /// Degrade the mapping with `count` random local swaps. Fig. 9-style
  /// experiments start "from a sub-optimal initial mapping" and watch the
  /// online atom swaps recover it.
  void scramble_mapping(Rng& rng, int count);

  /// Largest in-plane (max-norm) displacement of any atom from its initial
  /// position (the black curve of paper Fig. 9).
  double max_inplane_displacement() const;

  long step_count() const { return step_count_; }

  /// Cumulative modeled wall time (s) and cycles since construction.
  double elapsed_seconds() const { return elapsed_seconds_; }

  /// Run totals accumulated by finish_step, for cost-model breakdowns of a
  /// whole run (engine::ModeledPhaseCost): sums over steps of the per-step
  /// mean per-worker candidate/interaction counts, plus how many steps
  /// applied an atom swap.
  struct CumulativeStats {
    double candidate_step_sum = 0.0;    ///< sum of mean_candidates
    double interaction_step_sum = 0.0;  ///< sum of mean_interactions
    long swap_steps = 0;
  };
  const CumulativeStats& cumulative_stats() const { return cum_; }

  /// The flattened FP32 evaluation tables (null on the analytic path).
  const eam::ProfileF32* profile() const { return profile_.get(); }

 private:
  void gather_neighborhood(int cx, int cy,
                           std::vector<std::uint32_t>& out) const;
  WseStepStats do_timestep();

  /// FP32 minimum-image displacement rj - ri (analytic path; the tabulated
  /// path runs the batched sieve instead). The candidate loops run this for
  /// every gathered candidate, so it stays entirely in FP32. nearbyint —
  /// not round — so the correction matches the SIMD kernels' round-half-
  /// even `_mm256_round_ps` convention.
  Vec3f minimum_image_f(const Vec3f& ri, const Vec3f& rj) const {
    Vec3f d = rj - ri;
    for (std::size_t a = 0; a < 3; ++a) {
      if (!box_periodic_[a]) continue;
      d[a] -= std::nearbyint(d[a] * box_inv_len_f_[a]) * box_len_f_[a];
    }
    return d;
  }
  /// Row-major serial PE reduction over the phase outputs (shared by
  /// commit_step and the construction-time energy evaluation).
  double reduce_potential_energy(const StepWorkspace& ws) const;

  WseMdConfig config_;
  eam::EamPotentialPtr potential_;
  eam::ProfileF32Ptr profile_;  ///< set when config_.tabulated
  Box box_;
  // FP32 copies of the box geometry for the per-candidate minimum image.
  Vec3f box_len_f_{0, 0, 0};
  Vec3f box_inv_len_f_{0, 0, 0};
  std::array<bool, 3> box_periodic_{false, false, false};
  /// Branch-free box view for the SIMD sieve (inv_len = 0 on open axes).
  simd::BoxF32 sbox_{{0, 0, 0}, {0, 0, 0}};
  AtomMapping mapping_;
  int b_ = 1;
  double rcut_ = 0.0;

  // FP32 per-atom state, split into x/y/z planes for the batched kernels.
  Vec3fPlanes positions_;
  Vec3fPlanes velocities_;
  std::vector<int> types_;
  // Embedding derivative, exchanged per step. Mutable: the lazy initial
  // potential_energy() evaluation republishes it from a const context
  // (it is derived state, recomputed every step from positions).
  mutable std::vector<float> fprime_;
  std::vector<Vec3d> initial_positions_;

  // Lazily evaluated before the first step (potential_energy() const).
  mutable double pe_ = 0.0;
  mutable bool pe_current_ = false;
  long step_count_ = 0;
  double elapsed_seconds_ = 0.0;
  CumulativeStats cum_;

  /// Workspace reused by the serial step()/run() path and the lazy initial
  /// energy evaluation (engine backends own their own and drive the phase
  /// kernels directly); begin_step fully resets it each use.
  mutable StepWorkspace ws_;
};

}  // namespace wsmd::core
