#pragma once

/// \file wse_md.hpp
/// The wafer-scale MD engine: one atom per core (paper Secs. III-A..III-D).
///
/// Each core is a worker owning at most one atom (id, position, velocity,
/// FP32 — the paper's wafer kernels run single precision) plus local copies
/// of the potential tables. A timestep executes the paper's five phases:
///
///   1. Candidate exchange — multicast positions through the (2b+1)^2
///      neighborhood (systolic marching multicast; the wavelet-level
///      schedule is validated in src/wse, and this engine performs the
///      equivalent gather functionally while charging cycles from the
///      calibrated cost model);
///   2. Neighbor list — r^2 against rcut^2, candidates arriving in
///      deterministic order;
///   3. Embedding — accumulate rho_i, evaluate F_i and F'_i, and exchange
///      F' with the neighborhood (it enters the force on other atoms);
///   4. Force + leap-frog integration (paper Eqs. 4-5);
///   5. Atom swap — optional greedy remapping every `swap_interval` steps
///      (paper Sec. III-D), with empty tiles ("atoms at infinity")
///      participating so atoms can migrate across cores.
///
/// Physics equivalence with the FP64 reference engine (src/md) is enforced
/// by the integration tests; performance comes from wse::CostModel.

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/mapping.hpp"
#include "eam/potential.hpp"
#include "lattice/lattice.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"
#include "wse/cost_model.hpp"

namespace wsmd::core {

struct WseMdConfig {
  double dt = 0.002;  ///< ps (paper: 2 fs)
  /// Perform the greedy atom-swap remap every this many steps (0 = never).
  int swap_interval = 0;
  /// Mapping construction parameters (cell size defaults to ~8 atoms per
  /// column when zero; pass the lattice constant for crystal workloads).
  MappingConfig mapping;
  /// Cycle/time accounting model.
  wse::CostModel cost_model = wse::CostModel::paper_baseline();
  /// Neighborhood radius override; 0 derives the radius from the mapping
  /// (required_b plus one hop of slack for thermal motion).
  int b_override = 0;
};

/// Per-step accounting, mirroring the counters the paper reports.
struct WseStepStats {
  double mean_candidates = 0.0;    ///< exchanged candidate atoms per worker
  double mean_interactions = 0.0;  ///< neighbor-list entries per worker
  double max_cycles = 0.0;         ///< slowest worker (sets the step time)
  double mean_cycles = 0.0;
  double stddev_cycles = 0.0;
  double wall_seconds = 0.0;       ///< modeled step time (max worker)
  bool swapped = false;
  std::size_t swaps_applied = 0;
};

class WseMd {
 public:
  WseMd(const lattice::Structure& s, eam::EamPotentialPtr potential,
        WseMdConfig config = {});

  std::size_t atom_count() const { return positions_.size(); }
  const AtomMapping& mapping() const { return mapping_; }
  int b() const { return b_; }
  const WseMdConfig& config() const { return config_; }

  /// FP32-held atom state, widened for inspection.
  std::vector<Vec3d> positions() const;
  std::vector<Vec3d> velocities() const;
  /// Overwrite velocities (e.g. copied from the reference engine so both
  /// integrate the same trajectory).
  void set_velocities(const std::vector<Vec3d>& v);

  /// Maxwell-Boltzmann initialization at T (FP32-rounded).
  void thermalize(double temperature_K, Rng& rng);

  /// Advance one timestep; returns the accounting.
  WseStepStats step();

  /// Advance n steps; returns the last step's stats.
  WseStepStats run(int n);

  /// Total potential energy of the last force evaluation (eV, FP32 sums).
  double potential_energy() const { return pe_; }

  /// Kinetic energy of the current (half-step) velocities (eV).
  double kinetic_energy() const;

  /// Current assignment cost C(g) in Angstrom (paper Fig. 9 metric).
  double assignment_cost() const;

  /// Degrade the mapping with `count` random local swaps. Fig. 9-style
  /// experiments start "from a sub-optimal initial mapping" and watch the
  /// online atom swaps recover it.
  void scramble_mapping(Rng& rng, int count);

  /// Largest in-plane (max-norm) displacement of any atom from its initial
  /// position (the black curve of paper Fig. 9).
  double max_inplane_displacement() const;

  long step_count() const { return step_count_; }

  /// Cumulative modeled wall time (s) and cycles since construction.
  double elapsed_seconds() const { return elapsed_seconds_; }

 private:
  struct Worker {
    long atom = -1;  ///< atom index or -1 (empty tile: "atom at infinity")
  };

  void gather_neighborhood(int cx, int cy,
                           std::vector<std::size_t>& out) const;
  WseStepStats do_timestep();
  std::size_t do_atom_swap();

  WseMdConfig config_;
  eam::EamPotentialPtr potential_;
  Box box_;
  AtomMapping mapping_;
  int b_ = 1;
  double rcut_ = 0.0;

  // FP32 per-atom state (SoA).
  std::vector<Vec3f> positions_;
  std::vector<Vec3f> velocities_;
  std::vector<int> types_;
  std::vector<float> fprime_;  // embedding derivative, exchanged per step
  std::vector<Vec3d> initial_positions_;

  double pe_ = 0.0;
  long step_count_ = 0;
  double elapsed_seconds_ = 0.0;
};

}  // namespace wsmd::core
