#include "obs/vacf.hpp"

#include <algorithm>

#include "io/checkpoint.hpp"
#include "util/error.hpp"

namespace wsmd::obs {

VacfProbe::VacfProbe(const Config& config)
    : path_(config.path),
      writer_(config.path, config.format,
              {"step", "time_ps", "vacf", "raw_A2_ps2"}) {}

void VacfProbe::sample(const Frame& frame) {
  WSMD_REQUIRE(frame.velocities != nullptr,
               "vacf needs velocities (unavailable when replaying a saved "
               "trajectory)");
  const auto& vel = *frame.velocities;
  WSMD_REQUIRE(!vel.empty(), "vacf needs at least 1 atom");
  const double inv_n = 1.0 / static_cast<double>(vel.size());

  if (v0_.empty()) {
    double norm = 0.0;
    for (const auto& v : vel) norm += norm2(v);
    norm *= inv_n;
    if (norm > 0.0) {  // motion has started: pin the time origin here
      v0_ = vel;
      norm0_ = norm;
    }
  } else {
    WSMD_REQUIRE(vel.size() == v0_.size(),
                 "vacf atom count changed mid-run: " << v0_.size() << " -> "
                                                     << vel.size());
  }

  double raw = 0.0;
  if (!v0_.empty()) {
    for (std::size_t i = 0; i < vel.size(); ++i) raw += dot(v0_[i], vel[i]);
    raw *= inv_n;
  }
  last_vacf_ = norm0_ > 0.0 ? raw / norm0_ : 0.0;
  // Pre-origin rows are placeholders, not measurements: letting their 0
  // into the minimum would fake a full decorrelation in every run that
  // samples the at-rest lattice before thermalize.
  if (!v0_.empty()) min_vacf_ = std::min(min_vacf_, last_vacf_);
  writer_.write_row(
      {static_cast<double>(frame.step), frame.time_ps, last_vacf_, raw});
  ++samples_;
}

void VacfProbe::finish() { writer_.finish(); }

void VacfProbe::save_state(io::BinaryWriter& w) const {
  Probe::save_state(w);
  w.vec3s(v0_);
  w.f64(norm0_);
  w.f64(last_vacf_);
  w.f64(min_vacf_);
}

void VacfProbe::restore_state(io::BinaryReader& r) {
  Probe::restore_state(r);
  v0_ = r.vec3s();
  norm0_ = r.f64();
  last_vacf_ = r.f64();
  min_vacf_ = r.f64();
}

void VacfProbe::summarize(JsonObject& meta) const {
  // With no origin ever pinned (motion never started) the streamed series
  // is all placeholder zeros; report 0, not the untouched sentinel, so
  // the summary never fabricates an unmeasured correlation minimum.
  meta.set("obs_vacf_samples", samples_)
      .set("obs_vacf_final", last_vacf_)
      .set("obs_vacf_min", v0_.empty() ? 0.0 : min_vacf_);
}

}  // namespace wsmd::obs
