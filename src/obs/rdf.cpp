#include "obs/rdf.hpp"

#include <cmath>
#include <numbers>
#include <utility>

#include "io/checkpoint.hpp"
#include "io/series.hpp"
#include "md/cell_list.hpp"
#include "util/error.hpp"

namespace wsmd::obs {

namespace {

const RdfProbe::Config& validated(const RdfProbe::Config& config) {
  WSMD_REQUIRE(config.rcut > 0.0, "rdf rcut must be positive");
  WSMD_REQUIRE(config.bins >= 2, "rdf needs at least 2 bins");
  return config;
}

}  // namespace

RdfProbe::RdfProbe(const Config& config)
    : config_(validated(config)),
      writer_(config.path, config.format, {"r_A", "g"}) {
  histogram_.assign(static_cast<std::size_t>(config_.bins), 0.0);
}

void RdfProbe::sample(const Frame& frame) {
  const auto& pos = *frame.positions;
  WSMD_REQUIRE(pos.size() >= 2, "rdf needs at least 2 atoms");
  md::CellList::require_min_image(*frame.box, config_.rcut);
  if (samples_ == 0) {
    atoms_ = pos.size();
    volume_ = frame.box->volume();
  } else {
    WSMD_REQUIRE(pos.size() == atoms_,
                 "rdf atom count changed mid-run: " << atoms_ << " -> "
                                                    << pos.size());
  }
  const double inv_width = config_.bins / config_.rcut;
  md::CellList cl;
  cl.build(*frame.box, pos, config_.rcut);
  cl.for_each_pair([&](std::size_t, std::size_t, const Vec3d&, double r2) {
    const auto bin = static_cast<std::size_t>(std::sqrt(r2) * inv_width);
    if (bin < histogram_.size()) histogram_[bin] += 1.0;
  });
  ++samples_;
}

void RdfProbe::finish() {
  const double dr = bin_width();
  const double pair_density =
      samples_ == 0 ? 0.0
                    : static_cast<double>(atoms_) *
                          static_cast<double>(atoms_ - 1) / (2.0 * volume_);
  std::vector<double> g_of_r(histogram_.size(), 0.0);
  for (std::size_t k = 0; k < histogram_.size(); ++k) {
    const double r_lo = dr * static_cast<double>(k);
    const double shell =
        4.0 / 3.0 * std::numbers::pi *
        (std::pow(r_lo + dr, 3) - std::pow(r_lo, 3));
    if (samples_ > 0 && shell > 0.0 && pair_density > 0.0) {
      g_of_r[k] = histogram_[k] /
                  (static_cast<double>(samples_) * pair_density * shell);
    }
    writer_.write_row({r_lo + 0.5 * dr, g_of_r[k]});
  }
  writer_.finish();
  rows_written_ = writer_.rows_written();

  // First *local* maximum above the ideal-gas baseline, not the global
  // max: bins below the nearest-neighbor shell hold no pairs, so this is
  // the first-shell fingerprint even when a later, broader shell bins
  // taller.
  for (std::size_t k = 0; k < g_of_r.size(); ++k) {
    const double prev = k > 0 ? g_of_r[k - 1] : 0.0;
    const double next = k + 1 < g_of_r.size() ? g_of_r[k + 1] : 0.0;
    if (g_of_r[k] > 1.0 && g_of_r[k] >= prev && g_of_r[k] >= next) {
      first_peak_g_ = g_of_r[k];
      first_peak_r_ = dr * (static_cast<double>(k) + 0.5);
      break;
    }
  }
}

void RdfProbe::save_state(io::BinaryWriter& w) const {
  Probe::save_state(w);
  w.f64s(histogram_);
  w.u64(atoms_);
  w.f64(volume_);
}

void RdfProbe::restore_state(io::BinaryReader& r) {
  Probe::restore_state(r);
  auto histogram = r.f64s();
  WSMD_REQUIRE(histogram.size() == histogram_.size(),
               r.context() << ": rdf bin count changed since the checkpoint ("
                           << histogram.size() << " -> " << histogram_.size()
                           << ")");
  histogram_ = std::move(histogram);
  atoms_ = static_cast<std::size_t>(r.u64());
  volume_ = r.f64();
}

void RdfProbe::summarize(JsonObject& meta) const {
  meta.set("obs_rdf_samples", samples_)
      .set("obs_rdf_bins", rows_written_)
      .set("obs_rdf_rcut_A", config_.rcut)
      .set("obs_rdf_first_peak_A", first_peak_r_)
      .set("obs_rdf_first_peak_g", first_peak_g_);
}

}  // namespace wsmd::obs
