#include "obs/msd.hpp"

#include <cmath>
#include <cstdio>

#include "io/checkpoint.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace wsmd::obs {

MsdProbe::MsdProbe(const Config& config)
    : path_(config.path),
      writer_(config.path, config.format, {"step", "time_ps", "msd_A2"}) {}

void MsdProbe::sample(const Frame& frame) {
  const auto& pos = *frame.positions;
  WSMD_REQUIRE(!pos.empty(), "msd needs at least 1 atom");
  if (samples_ == 0) {
    origin_ = pos;
    unwrapped_ = pos;
    prev_ = pos;
  } else {
    WSMD_REQUIRE(pos.size() == prev_.size(),
                 "msd atom count changed mid-run: " << prev_.size() << " -> "
                                                    << pos.size());
    bool suspect = false;
    for (std::size_t i = 0; i < pos.size(); ++i) {
      // Minimum-image step from the previous sample accumulates the true
      // (unwrapped) path; open axes reduce to the plain difference.
      const Vec3d d = frame.box->minimum_image(prev_[i], pos[i]);
      // Unwrapping is provably correct only while the true per-sample
      // motion stays under half a box edge; a minimum-image step beyond a
      // quarter edge means the real displacement may already have aliased
      // by a full box length. Flag it instead of corrupting silently.
      for (std::size_t a = 0; a < 3 && !suspect; ++a) {
        if (!frame.box->periodic[a]) continue;
        suspect = std::fabs(d[a]) > 0.25 * frame.box->length(a);
      }
      unwrapped_[i] += d;
      prev_[i] = pos[i];
    }
    if (suspect) {
      ++suspect_samples_;
      if (!warned_) {
        warned_ = true;
        std::fprintf(
            stderr,
            "wsmd: warning: msd probe saw a per-sample displacement beyond "
            "a quarter of the periodic box at step %ld (sampling every %ld "
            "step(s)); minimum-image unwrapping is only reliable below half "
            "a box edge per sample — reduce observe.every / observe."
            "msd_every (or xyz_every for offline analyze replays)\n",
            frame.step, frame.step - prev_step_);
      }
    }
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < pos.size(); ++i) {
    sum += norm2(unwrapped_[i] - origin_[i]);
  }
  last_msd_ = sum / static_cast<double>(pos.size());
  writer_.write_row(
      {static_cast<double>(frame.step), frame.time_ps, last_msd_});
  times_.push_back(frame.time_ps);
  msds_.push_back(last_msd_);
  prev_step_ = frame.step;
  ++samples_;
}

void MsdProbe::finish() { writer_.finish(); }

void MsdProbe::summarize(JsonObject& meta) const {
  meta.set("obs_msd_samples", samples_)
      .set("obs_msd_final_A2", last_msd_)
      .set("obs_msd_suspect_samples", suspect_samples_)
      // Einstein relation D = d(MSD)/dt / 6 from an OLS fit of MSD ~ t.
      .set("obs_msd_diffusion_A2_per_ps",
           fit_slope_with_intercept(times_, msds_) / 6.0);
}

void MsdProbe::save_state(io::BinaryWriter& w) const {
  Probe::save_state(w);
  w.vec3s(origin_);
  w.vec3s(unwrapped_);
  w.vec3s(prev_);
  w.f64s(times_);
  w.f64s(msds_);
  w.f64(last_msd_);
  w.i64(prev_step_);
  w.u64(suspect_samples_);
  w.u8(warned_ ? 1 : 0);
}

void MsdProbe::restore_state(io::BinaryReader& r) {
  Probe::restore_state(r);
  origin_ = r.vec3s();
  unwrapped_ = r.vec3s();
  prev_ = r.vec3s();
  times_ = r.f64s();
  msds_ = r.f64s();
  last_msd_ = r.f64();
  prev_step_ = static_cast<long>(r.i64());
  suspect_samples_ = static_cast<std::size_t>(r.u64());
  warned_ = r.u8() != 0;
}

}  // namespace wsmd::obs
