#include "obs/msd.hpp"

#include "util/error.hpp"
#include "util/stats.hpp"

namespace wsmd::obs {

MsdProbe::MsdProbe(const Config& config)
    : path_(config.path),
      writer_(config.path, config.format, {"step", "time_ps", "msd_A2"}) {}

void MsdProbe::sample(const Frame& frame) {
  const auto& pos = *frame.positions;
  WSMD_REQUIRE(!pos.empty(), "msd needs at least 1 atom");
  if (samples_ == 0) {
    origin_ = pos;
    unwrapped_ = pos;
    prev_ = pos;
  } else {
    WSMD_REQUIRE(pos.size() == prev_.size(),
                 "msd atom count changed mid-run: " << prev_.size() << " -> "
                                                    << pos.size());
    for (std::size_t i = 0; i < pos.size(); ++i) {
      // Minimum-image step from the previous sample accumulates the true
      // (unwrapped) path; open axes reduce to the plain difference.
      unwrapped_[i] += frame.box->minimum_image(prev_[i], pos[i]);
      prev_[i] = pos[i];
    }
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < pos.size(); ++i) {
    sum += norm2(unwrapped_[i] - origin_[i]);
  }
  last_msd_ = sum / static_cast<double>(pos.size());
  writer_.write_row(
      {static_cast<double>(frame.step), frame.time_ps, last_msd_});
  times_.push_back(frame.time_ps);
  msds_.push_back(last_msd_);
  ++samples_;
}

void MsdProbe::finish() { writer_.flush(); }

void MsdProbe::summarize(JsonObject& meta) const {
  meta.set("obs_msd_samples", samples_)
      .set("obs_msd_final_A2", last_msd_)
      // Einstein relation D = d(MSD)/dt / 6 from an OLS fit of MSD ~ t.
      .set("obs_msd_diffusion_A2_per_ps",
           fit_slope_with_intercept(times_, msds_) / 6.0);
}

}  // namespace wsmd::obs
