#include "obs/probe.hpp"

#include <cstring>
#include <sstream>

#include "io/checkpoint.hpp"
#include "telemetry/telemetry.hpp"
#include "util/error.hpp"

namespace wsmd::obs {

namespace {

/// Telemetry span names must be static literals outliving the session, so
/// a probe's kind tag maps onto a fixed table.
const char* probe_span_name(const char* kind) {
  if (std::strcmp(kind, "rdf") == 0) return "obs.rdf";
  if (std::strcmp(kind, "msd") == 0) return "obs.msd";
  if (std::strcmp(kind, "vacf") == 0) return "obs.vacf";
  if (std::strcmp(kind, "defects") == 0) return "obs.defects";
  return "obs.probe";
}

}  // namespace

void Probe::save_state(io::BinaryWriter& w) const { w.u64(samples_); }

void Probe::restore_state(io::BinaryReader& r) {
  samples_ = static_cast<std::size_t>(r.u64());
}

void ObserverBus::add(std::unique_ptr<Probe> probe, long every) {
  WSMD_REQUIRE(probe != nullptr, "null probe");
  WSMD_REQUIRE(every >= 1, "probe cadence must be >= 1, got " << every);
  WSMD_REQUIRE(!finished_, "cannot add probes to a finished bus");
  slots_.push_back(Slot{std::move(probe), every, -1});
}

bool ObserverBus::has_pending(long step) const {
  for (const auto& s : slots_) {
    if (s.pending_at(step)) return true;
  }
  return false;
}

bool ObserverBus::needs_positions_at(long step, bool final_state) const {
  for (const auto& s : slots_) {
    if (!s.probe->wants_positions()) continue;
    if (final_state ? s.pending_at(step) : s.fires_at(step)) return true;
  }
  return false;
}

bool ObserverBus::needs_velocities_at(long step, bool final_state) const {
  for (const auto& s : slots_) {
    if (!s.probe->wants_velocities()) continue;
    if (final_state ? s.pending_at(step) : s.fires_at(step)) return true;
  }
  return false;
}

bool ObserverBus::due(long step) const {
  for (const auto& s : slots_) {
    if (s.fires_at(step)) return true;
  }
  return false;
}

void ObserverBus::observe(const Frame& frame) {
  WSMD_REQUIRE(!finished_, "observe() after finish()");
  for (auto& s : slots_) {
    if (!s.fires_at(frame.step)) continue;
    telemetry::ScopedSpan span(probe_span_name(s.probe->kind()));
    s.probe->sample(frame);
    s.last_step = frame.step;
  }
}

void ObserverBus::observe_all(const Frame& frame) {
  WSMD_REQUIRE(!finished_, "observe_all() after finish()");
  for (auto& s : slots_) {
    if (!s.pending_at(frame.step)) continue;  // already saw this state
    telemetry::ScopedSpan span(probe_span_name(s.probe->kind()));
    s.probe->sample(frame);
    s.last_step = frame.step;
  }
}

void ObserverBus::finish() {
  WSMD_REQUIRE(!finished_, "finish() called twice");
  for (auto& s : slots_) s.probe->finish();
  finished_ = true;
}

std::size_t ObserverBus::failed_outputs() const {
  std::size_t failed = 0;
  for (const auto& s : slots_) {
    if (!s.probe->output_ok()) ++failed;
  }
  return failed;
}

void ObserverBus::summarize(JsonObject& meta) const {
  WSMD_REQUIRE(finished_, "summarize() before finish()");
  for (const auto& s : slots_) s.probe->summarize(meta);
}

std::vector<std::pair<std::string, std::string>>
ObserverBus::save_probe_states() const {
  std::vector<std::pair<std::string, std::string>> blobs;
  blobs.reserve(slots_.size());
  for (const auto& s : slots_) {
    std::ostringstream os(std::ios::binary);
    io::BinaryWriter w(os);
    w.i64(s.last_step);
    s.probe->save_state(w);
    blobs.emplace_back(s.probe->kind(), os.str());
  }
  return blobs;
}

void ObserverBus::restore_probe_states(
    const std::vector<std::pair<std::string, std::string>>& blobs,
    const std::string& context) {
  WSMD_REQUIRE(!finished_, "restore_probe_states() after finish()");
  WSMD_REQUIRE(blobs.size() == slots_.size(),
               context << ": checkpoint holds " << blobs.size()
                       << " probe state(s), the scenario configures "
                       << slots_.size()
                       << " — observe.* changed since the checkpoint");
  for (std::size_t k = 0; k < slots_.size(); ++k) {
    WSMD_REQUIRE(blobs[k].first == slots_[k].probe->kind(),
                 context << ": probe " << k << " is '"
                         << slots_[k].probe->kind()
                         << "' but the checkpoint saved '" << blobs[k].first
                         << "' — observe.probes changed since the "
                            "checkpoint");
    std::istringstream is(blobs[k].second, std::ios::binary);
    io::BinaryReader r(is, context + " (probe '" + blobs[k].first + "')");
    slots_[k].last_step = static_cast<long>(r.i64());
    slots_[k].probe->restore_state(r);
  }
}

}  // namespace wsmd::obs
