#include "obs/probe.hpp"

#include "util/error.hpp"

namespace wsmd::obs {

void ObserverBus::add(std::unique_ptr<Probe> probe, long every) {
  WSMD_REQUIRE(probe != nullptr, "null probe");
  WSMD_REQUIRE(every >= 1, "probe cadence must be >= 1, got " << every);
  WSMD_REQUIRE(!finished_, "cannot add probes to a finished bus");
  slots_.push_back(Slot{std::move(probe), every, -1});
}

bool ObserverBus::has_pending(long step) const {
  for (const auto& s : slots_) {
    if (s.pending_at(step)) return true;
  }
  return false;
}

bool ObserverBus::needs_positions_at(long step, bool final_state) const {
  for (const auto& s : slots_) {
    if (!s.probe->wants_positions()) continue;
    if (final_state ? s.pending_at(step) : s.fires_at(step)) return true;
  }
  return false;
}

bool ObserverBus::needs_velocities_at(long step, bool final_state) const {
  for (const auto& s : slots_) {
    if (!s.probe->wants_velocities()) continue;
    if (final_state ? s.pending_at(step) : s.fires_at(step)) return true;
  }
  return false;
}

bool ObserverBus::due(long step) const {
  for (const auto& s : slots_) {
    if (s.fires_at(step)) return true;
  }
  return false;
}

void ObserverBus::observe(const Frame& frame) {
  WSMD_REQUIRE(!finished_, "observe() after finish()");
  for (auto& s : slots_) {
    if (!s.fires_at(frame.step)) continue;
    s.probe->sample(frame);
    s.last_step = frame.step;
  }
}

void ObserverBus::observe_all(const Frame& frame) {
  WSMD_REQUIRE(!finished_, "observe_all() after finish()");
  for (auto& s : slots_) {
    if (!s.pending_at(frame.step)) continue;  // already saw this state
    s.probe->sample(frame);
    s.last_step = frame.step;
  }
}

void ObserverBus::finish() {
  WSMD_REQUIRE(!finished_, "finish() called twice");
  for (auto& s : slots_) s.probe->finish();
  finished_ = true;
}

void ObserverBus::summarize(JsonObject& meta) const {
  WSMD_REQUIRE(finished_, "summarize() before finish()");
  for (const auto& s : slots_) s.probe->summarize(meta);
}

}  // namespace wsmd::obs
