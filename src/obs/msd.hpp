#pragma once

/// \file msd.hpp
/// Mean-squared displacement with unwrapped-coordinate tracking.
///
/// MSD(t) = <|u_i(t) - u_i(0)|^2> over atoms, where u are *unwrapped*
/// coordinates: on periodic axes the probe accumulates minimum-image
/// displacements between consecutive samples, so an atom that crosses the
/// box boundary keeps contributing its true path length instead of snapping
/// back. Correct while no atom moves more than half a box length between
/// consecutive samples — comfortably true for solids at any reasonable
/// cadence (and checked implicitly by the golden replays).
///
/// When that constraint is at risk the probe says so instead of silently
/// corrupting the series: any per-sample minimum-image step beyond a
/// quarter of a periodic box edge (half the provable-correct range —
/// beyond it the true displacement may have aliased by a full box length)
/// counts the sample as suspect and warns once, naming the offending
/// sampling cadence. Typical causes: a large `observe.every`, or an
/// offline `wsmd analyze` replay over a trajectory saved with sparse
/// `xyz_every`.
///
/// The streamed series is (step, time, MSD); the summary folds in a
/// diffusion-coefficient estimate D = slope/6 from a least-squares fit of
/// MSD vs t (util/stats), the Einstein relation.

#include <string>
#include <vector>

#include "io/series.hpp"
#include "obs/probe.hpp"

namespace wsmd::obs {

class MsdProbe final : public Probe {
 public:
  struct Config {
    std::string path;
    io::ThermoFormat format = io::ThermoFormat::kCsv;
  };

  explicit MsdProbe(const Config& config);

  const char* kind() const override { return "msd"; }
  const std::string& output_path() const override { return path_; }
  void sample(const Frame& frame) override;
  void finish() override;
  bool output_ok() const override { return writer_.ok(); }
  void summarize(JsonObject& meta) const override;
  void save_state(io::BinaryWriter& w) const override;
  void restore_state(io::BinaryReader& r) override;

  /// Latest MSD value (A^2), for direct API users.
  double current_msd() const { return last_msd_; }

  /// Samples whose per-step minimum-image displacement exceeded a quarter
  /// of a periodic box edge (unwrapping unreliable; see file comment).
  /// Nonzero means the sampling cadence is too sparse for this system.
  std::size_t suspect_samples() const { return suspect_samples_; }

 private:
  std::string path_;
  io::SeriesWriter writer_;
  std::vector<Vec3d> origin_;     ///< unwrapped positions at the first sample
  std::vector<Vec3d> unwrapped_;  ///< running unwrapped positions
  std::vector<Vec3d> prev_;       ///< wrapped positions at the last sample
  std::vector<double> times_, msds_;  ///< for the finish-time diffusion fit
  double last_msd_ = 0.0;
  long prev_step_ = 0;            ///< step of the last sample (cadence blame)
  std::size_t suspect_samples_ = 0;
  bool warned_ = false;
};

}  // namespace wsmd::obs
