#pragma once

/// \file vacf.hpp
/// Velocity autocorrelation function C(t) = <v(0) . v(t)> / <v(0) . v(0)>.
///
/// The time origin is the first sample with any thermal motion: scenario
/// schedules start from a lattice at rest (velocities arrive with the first
/// thermalize stage), and correlating against an all-zero origin would be
/// meaningless. Samples before the origin stream C = 0.
///
/// VACF needs velocities, so this probe is unavailable during offline
/// trajectory replay (`wsmd analyze` skips it with a warning) — positions
/// alone cannot reconstruct the half-step velocity state the wafer
/// backends hold.

#include <string>
#include <vector>

#include "io/series.hpp"
#include "obs/probe.hpp"

namespace wsmd::obs {

class VacfProbe final : public Probe {
 public:
  struct Config {
    std::string path;
    io::ThermoFormat format = io::ThermoFormat::kCsv;
  };

  explicit VacfProbe(const Config& config);

  const char* kind() const override { return "vacf"; }
  bool wants_positions() const override { return false; }
  bool wants_velocities() const override { return true; }
  const std::string& output_path() const override { return path_; }
  void sample(const Frame& frame) override;
  void finish() override;
  bool output_ok() const override { return writer_.ok(); }
  void summarize(JsonObject& meta) const override;
  void save_state(io::BinaryWriter& w) const override;
  void restore_state(io::BinaryReader& r) override;

  /// Latest normalized C(t), for direct API users.
  double current_vacf() const { return last_vacf_; }

 private:
  std::string path_;
  io::SeriesWriter writer_;
  std::vector<Vec3d> v0_;   ///< velocities at the time origin
  double norm0_ = 0.0;      ///< <v(0) . v(0)>
  double last_vacf_ = 0.0;
  double min_vacf_ = 1.0;   ///< most negative C seen (cage rebound marker)
};

}  // namespace wsmd::obs
