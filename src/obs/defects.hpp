#pragma once

/// \file defects.hpp
/// Defect / grain-boundary tracker built on the centrosymmetry parameter.
///
/// This is the paper's Fig. 2 measurement made streaming: per sample the
/// probe runs md::analyze_structure (cell-list CSP, O(N)), classifies atoms
/// above the CSP threshold as defective, and streams defect count, defect
/// fraction, and mean CSP. With grain-boundary tracking enabled it also
/// streams the boundary's mean-plane position along the GB normal — the
/// CSP-weighted mean coordinate of defective *core* atoms (atoms within
/// `surface_margin` of an open box face are excluded, since open surfaces
/// are intrinsically centro-asymmetric and would otherwise drown the
/// boundary signal in a small slab). The finish-time summary fits position
/// vs time to report a GB mobility, the paper's science-per-wall-clock
/// quantity.

#include <string>
#include <vector>

#include "io/series.hpp"
#include "obs/probe.hpp"

namespace wsmd::obs {

class DefectProbe final : public Probe {
 public:
  struct Config {
    double csp_rcut = 0.0;     ///< CSP neighbor search radius (A), > 0
    int csp_neighbors = 12;    ///< 12 FCC, 8 BCC
    double csp_threshold = 1.0;  ///< defect classification threshold (A^2)
    int gb_axis = -1;          ///< GB normal axis (0/1/2), -1 = no tracking
    double surface_margin = 0.0;  ///< open-surface exclusion shell (A)
    std::string path;
    io::ThermoFormat format = io::ThermoFormat::kCsv;
  };

  explicit DefectProbe(const Config& config);

  const char* kind() const override { return "defects"; }
  const std::string& output_path() const override { return path_; }
  void sample(const Frame& frame) override;
  void finish() override;
  bool output_ok() const override { return writer_.ok(); }
  void summarize(JsonObject& meta) const override;
  void save_state(io::BinaryWriter& w) const override;
  void restore_state(io::BinaryReader& r) override;

  long current_defect_count() const { return last_count_; }
  double current_gb_position() const { return last_gb_position_; }

 private:
  Config config_;
  std::string path_;
  io::SeriesWriter writer_;
  long last_count_ = 0;
  double last_fraction_ = 0.0;
  double last_gb_position_ = 0.0;
  bool have_gb_position_ = false;
  std::vector<double> times_, gb_positions_;  ///< for the mobility fit
};

}  // namespace wsmd::obs
