#pragma once

/// \file factory.hpp
/// Observable-set configuration (the `observe.*` deck surface) and the
/// factory that turns it into a ready ObserverBus.
///
/// ProbeSetConfig mirrors the deck keys one-to-one so the scenario layer
/// can validate eagerly and pass the struct through unchanged; material
/// facts the probes need (lattice constant for default cutoffs, FCC/BCC
/// coordination for CSP) arrive separately so obs stays independent of the
/// eam layer.

#include <memory>
#include <string>
#include <vector>

#include "obs/probe.hpp"

namespace wsmd::obs {

/// Valid probe kind names ("rdf", "msd", "vacf", "defects").
bool is_probe_kind(const std::string& kind);
const std::vector<std::string>& probe_kinds();

/// Parsed `observe.*` deck keys. Zeroed numeric fields mean "derive the
/// default from the material at build time".
struct ProbeSetConfig {
  std::vector<std::string> probes;  ///< enabled kinds, deck order, unique
  long every = 10;                  ///< default sampling cadence (steps)
  /// Per-probe cadence overrides (0 = inherit `every`).
  long rdf_every = 0, msd_every = 0, vacf_every = 0, defects_every = 0;
  std::string format = "csv";  ///< csv | jsonl
  std::string prefix;          ///< output path prefix ("" = scenario name)

  double rdf_rcut = 0.0;  ///< histogram range (0 = 1.8 * lattice constant)
  int rdf_bins = 200;

  double csp_threshold = 1.0;  ///< defect classification threshold (A^2)
  int gb_axis = -1;            ///< GB normal (0/1/2); -1 = no GB tracking

  bool enabled() const { return !probes.empty(); }
  bool has(const std::string& kind) const;
  long cadence_for(const std::string& kind) const;

  /// The output prefix actually used: the configured one, or the scenario
  /// name when unset. Single authority for the defaulting rule — the
  /// runner, the offline analyzer, and `--print` all go through it.
  std::string effective_prefix(const std::string& scenario_name) const {
    return prefix.empty() ? scenario_name : prefix;
  }
};

/// Material facts the default probe parameters derive from.
struct Material {
  double lattice_constant = 0.0;  ///< conventional cubic a0 (A)
  int csp_neighbors = 12;         ///< 12 FCC, 8 BCC
};

/// Effective (default-resolved) probe parameters, exposed so the driver can
/// report them and tests can pin them.
double effective_rdf_rcut(const ProbeSetConfig& config, const Material& m);
double effective_csp_rcut(const Material& m);

/// Build a bus holding one probe per configured kind. Output files are
/// `<prefix>.<kind>.csv` (or .jsonl). When `with_velocities` is false
/// (offline trajectory replay), velocity-dependent probes are skipped and
/// their kinds appended to `*skipped` — the caller decides how loudly to
/// report that. Throws when nothing remains to observe.
std::unique_ptr<ObserverBus> make_observer_bus(
    const ProbeSetConfig& config, const Material& material,
    bool with_velocities = true, std::vector<std::string>* skipped = nullptr);

}  // namespace wsmd::obs
