#pragma once

/// \file probe.hpp
/// Streaming observables: the Probe interface and the ObserverBus.
///
/// The paper's headline result is science per wall-clock — grain-boundary
/// motion and defect evolution observed over long trajectories (Fig. 2) —
/// not raw steps/second. Production long-timescale MD computes observables
/// *while running* rather than post-hoc (the ACEMD model), so WSMD streams
/// them: a Probe consumes state snapshots (`Frame`) at a per-probe cadence
/// and writes its time series through src/io as the run advances.
///
/// Probes are driven purely through the Engine surface (positions /
/// velocities widened to FP64), so the same probe works identically on the
/// reference, wafer, and sharded backends — which is what lets golden CI
/// replay observable streams across backends. The same probes also replay
/// offline over a saved XYZ trajectory (`wsmd analyze`), where velocities
/// are unavailable and `Frame::velocities` is null.

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/bench_json.hpp"
#include "util/box.hpp"
#include "util/vec3.hpp"

namespace wsmd::io {
class BinaryWriter;
class BinaryReader;
}  // namespace wsmd::io

namespace wsmd::obs {

/// One state snapshot handed to probes. Pointers are borrowed for the
/// duration of the call only.
struct Frame {
  long step = 0;
  double time_ps = 0.0;  ///< step * dt
  const Box* box = nullptr;
  const std::vector<Vec3d>* positions = nullptr;
  /// Null when replaying a position-only trajectory (`wsmd analyze`).
  const std::vector<Vec3d>* velocities = nullptr;
};

/// One streaming observable. A probe owns its output (it opens its
/// SeriesWriter at construction, so a bad path fails before the run
/// starts), accumulates whatever state it needs across samples, and at
/// finish() writes any end-of-run artifacts and closes the stream.
class Probe {
 public:
  virtual ~Probe() = default;

  /// Probe kind tag ("rdf", "msd", "vacf", "defects").
  virtual const char* kind() const = 0;

  /// What sample() actually reads from the Frame. Drivers use these to
  /// skip the O(N) state widening/copy for snapshots no due probe reads.
  virtual bool wants_positions() const { return true; }
  virtual bool wants_velocities() const { return false; }

  /// Path of the probe's primary output file.
  virtual const std::string& output_path() const = 0;

  /// Consume one frame.
  virtual void sample(const Frame& frame) = 0;

  /// Close the output; called exactly once, after the last sample.
  virtual void finish() = 0;

  /// Fold end-of-run summary statistics into `meta`, keys prefixed
  /// "obs_<kind>_" (the runner splices this into the BENCH envelope).
  /// Valid only after finish().
  virtual void summarize(JsonObject& meta) const = 0;

  /// Health of the probe's output stream: false once a write/flush failed
  /// (io::SeriesWriter latched a failure) — the output file is incomplete.
  /// Meaningful any time; drivers report it after finish().
  virtual bool output_ok() const { return true; }

  /// Serialize / restore the probe's accumulators (checkpoint/restart).
  /// A restored probe continues its series and finish-time summary as if
  /// the run had never stopped; only the *output file* restarts at the
  /// resume point (SeriesWriter truncates on construction), so a resumed
  /// run's streams cover [resume step, end] while finish-time tables
  /// (RDF) and summaries cover the whole trajectory. Implementations
  /// must call the base class first, in both directions.
  virtual void save_state(io::BinaryWriter& w) const;
  virtual void restore_state(io::BinaryReader& r);

  std::size_t samples_taken() const { return samples_; }

 protected:
  std::size_t samples_ = 0;  ///< concrete probes bump this in sample()
};

/// Dispatches frames to a set of probes, each at its own sampling cadence
/// (probe p fires when step % every_p == 0).
class ObserverBus {
 public:
  /// Register a probe with sampling period `every` (steps, >= 1).
  void add(std::unique_ptr<Probe> probe, long every);

  std::size_t size() const { return slots_.size(); }
  const Probe& probe(std::size_t k) const { return *slots_[k].probe; }
  long cadence(std::size_t k) const { return slots_[k].every; }

  /// True when any probe is due at `step` — lets the driver skip the
  /// positions()/velocities() snapshot entirely on non-sampling steps.
  bool due(long step) const;

  /// True when any probe has not yet sampled `step` — i.e. observe_all()
  /// would do work. Lets the driver skip the final-state snapshot when
  /// the schedule already ended on every probe's cadence.
  bool has_pending(long step) const;

  /// True when a probe reading that part of the state would fire for this
  /// dispatch — i.e. it is due at `step` (or, for the final-state
  /// top-off, has not yet sampled it). Lets the driver skip each O(N)
  /// snapshot copy on steps where no firing probe reads it.
  bool needs_positions_at(long step, bool final_state) const;
  bool needs_velocities_at(long step, bool final_state) const;

  /// Dispatch to every probe due at frame.step.
  void observe(const Frame& frame);

  /// Dispatch to every probe that has not yet sampled this exact step,
  /// cadence regardless. Used for the final state of a run (so every series
  /// ends where the run ended) and for offline trajectory replay (where the
  /// stored frames *are* the sampling).
  void observe_all(const Frame& frame);

  /// Finish every probe; valid once. Summaries are available afterwards via
  /// summarize().
  void finish();

  /// Number of probes whose output stream failed (output_ok() == false).
  std::size_t failed_outputs() const;

  /// Fold every probe's summary into `meta`.
  void summarize(JsonObject& meta) const;

  /// Serialize every probe's accumulators (plus the bus's own dispatch
  /// cursor) into (kind, blob) pairs for a checkpoint.
  std::vector<std::pair<std::string, std::string>> save_probe_states() const;

  /// Restore from checkpointed pairs. The bus must hold the same probe
  /// set in the same order as when the checkpoint was written (the
  /// factory is deterministic for a given config); throws with `context`
  /// in the message otherwise.
  void restore_probe_states(
      const std::vector<std::pair<std::string, std::string>>& blobs,
      const std::string& context);

 private:
  struct Slot {
    std::unique_ptr<Probe> probe;
    long every = 1;
    long last_step = -1;

    // The two dispatch predicates, defined exactly once: every method
    // (due/observe/observe_all/has_pending/needs_velocities_at) goes
    // through these, so the runner's "will velocities be read?" query can
    // never drift from what observe()/observe_all() actually dispatch.
    bool fires_at(long step) const { return step % every == 0; }
    bool pending_at(long step) const { return last_step != step; }
  };
  std::vector<Slot> slots_;
  bool finished_ = false;
};

}  // namespace wsmd::obs
