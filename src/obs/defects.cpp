#include "obs/defects.hpp"

#include "io/checkpoint.hpp"
#include "md/analysis.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace wsmd::obs {

namespace {

std::vector<std::string> columns_for(const DefectProbe::Config& c) {
  std::vector<std::string> cols = {"step", "time_ps", "defect_count",
                                   "defect_fraction", "mean_csp_A2"};
  if (c.gb_axis >= 0) cols.push_back("gb_position_A");
  return cols;
}

}  // namespace

DefectProbe::DefectProbe(const Config& config)
    : config_(config),
      path_(config.path),
      writer_(config.path, config.format, columns_for(config)) {
  WSMD_REQUIRE(config_.csp_rcut > 0.0, "defects csp_rcut must be positive");
  WSMD_REQUIRE(config_.csp_threshold > 0.0,
               "defects csp_threshold must be positive");
  WSMD_REQUIRE(config_.gb_axis >= -1 && config_.gb_axis <= 2,
               "defects gb_axis must be 0..2 (or -1 = off)");
  WSMD_REQUIRE(config_.surface_margin >= 0.0,
               "defects surface_margin must be >= 0");
}

void DefectProbe::sample(const Frame& frame) {
  const auto& pos = *frame.positions;
  const auto analysis = md::analyze_structure(*frame.box, pos,
                                              config_.csp_rcut,
                                              config_.csp_neighbors);
  const auto defect = md::defective_atoms(analysis, config_.csp_threshold);

  long count = 0;
  double csp_sum = 0.0;
  for (std::size_t i = 0; i < pos.size(); ++i) {
    csp_sum += analysis.centrosymmetry[i];
    if (defect[i]) ++count;
  }
  last_count_ = count;
  last_fraction_ = static_cast<double>(count) / static_cast<double>(pos.size());
  const double mean_csp = csp_sum / static_cast<double>(pos.size());

  std::vector<double> row = {static_cast<double>(frame.step), frame.time_ps,
                             static_cast<double>(count), last_fraction_,
                             mean_csp};
  if (config_.gb_axis >= 0) {
    // CSP-weighted mean plane of the defective core (open-surface shell
    // excluded: surface atoms are centro-asymmetric by construction and
    // would pull the estimate toward the slab centroid).
    const auto axis = static_cast<std::size_t>(config_.gb_axis);
    double weight = 0.0, moment = 0.0;
    for (std::size_t i = 0; i < pos.size(); ++i) {
      if (!defect[i]) continue;
      bool core = true;
      for (std::size_t a = 0; a < 3 && core; ++a) {
        if (frame.box->periodic[a]) continue;
        core = pos[i][a] >= frame.box->lo[a] + config_.surface_margin &&
               pos[i][a] <= frame.box->hi[a] - config_.surface_margin;
      }
      if (!core) continue;
      const double w = analysis.centrosymmetry[i];
      weight += w;
      moment += w * pos[i][axis];
    }
    if (weight > 0.0) {
      last_gb_position_ = moment / weight;
      have_gb_position_ = true;
      // Only actual measurements feed the mobility fit — a placeholder
      // row would fabricate a slope the moment a real boundary appears.
      times_.push_back(frame.time_ps);
      gb_positions_.push_back(last_gb_position_);
    } else if (!have_gb_position_) {
      // No defective core yet (e.g. a perfect crystal): report the box
      // midpoint until a boundary appears, so the stream stays finite.
      last_gb_position_ =
          0.5 * (frame.box->lo[axis] + frame.box->hi[axis]);
    }
    row.push_back(last_gb_position_);
  }
  writer_.write_row(row);
  ++samples_;
}

void DefectProbe::finish() { writer_.finish(); }

void DefectProbe::save_state(io::BinaryWriter& w) const {
  Probe::save_state(w);
  w.i64(last_count_);
  w.f64(last_fraction_);
  w.f64(last_gb_position_);
  w.u8(have_gb_position_ ? 1 : 0);
  w.f64s(times_);
  w.f64s(gb_positions_);
}

void DefectProbe::restore_state(io::BinaryReader& r) {
  Probe::restore_state(r);
  last_count_ = static_cast<long>(r.i64());
  last_fraction_ = r.f64();
  last_gb_position_ = r.f64();
  have_gb_position_ = r.u8() != 0;
  times_ = r.f64s();
  gb_positions_ = r.f64s();
}

void DefectProbe::summarize(JsonObject& meta) const {
  meta.set("obs_defects_samples", samples_)
      .set("obs_defects_final_count", static_cast<long long>(last_count_))
      .set("obs_defects_final_fraction", last_fraction_);
  if (config_.gb_axis >= 0) {
    meta.set("obs_defects_gb_position_A", last_gb_position_)
        .set("obs_defects_gb_mobility_A_per_ps",
             fit_slope_with_intercept(times_, gb_positions_));
  }
}

}  // namespace wsmd::obs
