#pragma once

/// \file rdf.hpp
/// Radial distribution function g(r), cell-list binned.
///
/// Each sample accumulates a pair-distance histogram in O(N) via the shared
/// md::CellList (never the O(N^2) all-pairs loop), so sampling RDF during a
/// 200k-atom slab run costs about as much as one force evaluation. The
/// histogram is normalized at finish() against the ideal-gas pair density
///
///     g(r_k) = 2 V H_k / (S N (N-1) Vshell_k)
///
/// with H_k the accumulated unordered-pair count, S the number of samples,
/// and V the nominal box volume. For open-boundary slabs V includes the box
/// padding, so absolute g values carry a constant scale factor; peak
/// *positions* — the lattice fingerprint the tests pin (FCC a/sqrt(2), BCC
/// a*sqrt(3)/2) — are unaffected.

#include <string>
#include <vector>

#include "io/series.hpp"
#include "obs/probe.hpp"

namespace wsmd::obs {

class RdfProbe final : public Probe {
 public:
  struct Config {
    double rcut = 0.0;   ///< histogram range (A), > 0
    int bins = 200;      ///< histogram bins, >= 2
    std::string path;    ///< output table path
    io::ThermoFormat format = io::ThermoFormat::kCsv;
  };

  explicit RdfProbe(const Config& config);

  const char* kind() const override { return "rdf"; }
  const std::string& output_path() const override { return config_.path; }
  void sample(const Frame& frame) override;
  void finish() override;
  bool output_ok() const override { return writer_.ok(); }
  void summarize(JsonObject& meta) const override;
  void save_state(io::BinaryWriter& w) const override;
  void restore_state(io::BinaryReader& r) override;

  /// Accumulated histogram (unordered pair counts), for direct API users.
  const std::vector<double>& histogram() const { return histogram_; }
  double bin_width() const { return config_.rcut / config_.bins; }

 private:
  Config config_;
  io::SeriesWriter writer_;  ///< opened at construction: bad paths fail
                             ///< before the run starts, not after it
  std::vector<double> histogram_;
  std::size_t atoms_ = 0;
  double volume_ = 0.0;
  // Finish-time results.
  double first_peak_r_ = 0.0;
  double first_peak_g_ = 0.0;
  std::size_t rows_written_ = 0;
};

}  // namespace wsmd::obs
