#include "obs/factory.hpp"

#include <algorithm>

#include "obs/defects.hpp"
#include "obs/msd.hpp"
#include "obs/rdf.hpp"
#include "obs/vacf.hpp"
#include "util/error.hpp"

namespace wsmd::obs {

const std::vector<std::string>& probe_kinds() {
  static const std::vector<std::string> kinds = {"rdf", "msd", "vacf",
                                                 "defects"};
  return kinds;
}

bool is_probe_kind(const std::string& kind) {
  const auto& kinds = probe_kinds();
  return std::find(kinds.begin(), kinds.end(), kind) != kinds.end();
}

bool ProbeSetConfig::has(const std::string& kind) const {
  return std::find(probes.begin(), probes.end(), kind) != probes.end();
}

long ProbeSetConfig::cadence_for(const std::string& kind) const {
  long override_every = 0;
  if (kind == "rdf") override_every = rdf_every;
  else if (kind == "msd") override_every = msd_every;
  else if (kind == "vacf") override_every = vacf_every;
  else if (kind == "defects") override_every = defects_every;
  else WSMD_REQUIRE(false, "unknown probe kind '" << kind << "'");
  return override_every > 0 ? override_every : every;
}

double effective_rdf_rcut(const ProbeSetConfig& config, const Material& m) {
  if (config.rdf_rcut > 0.0) return config.rdf_rcut;
  WSMD_REQUIRE(m.lattice_constant > 0.0,
               "cannot derive an rdf rcut without a lattice constant");
  // Three to four coordination shells: enough structure for the first-peak
  // fingerprint while keeping periodic CI boxes (>= 4 cells) legal.
  return 1.8 * m.lattice_constant;
}

double effective_csp_rcut(const Material& m) {
  WSMD_REQUIRE(m.lattice_constant > 0.0,
               "cannot derive a csp rcut without a lattice constant");
  // Past the CSP shell with thermal headroom, below the shell after it:
  // FCC keeps the 12 nearest of <= 18 candidates, BCC the 8 of <= 14.
  return 1.2 * m.lattice_constant;
}

std::unique_ptr<ObserverBus> make_observer_bus(
    const ProbeSetConfig& config, const Material& material,
    bool with_velocities, std::vector<std::string>* skipped) {
  WSMD_REQUIRE(config.enabled(), "no probes configured");
  WSMD_REQUIRE(!config.prefix.empty(), "observable output prefix is empty");
  const io::ThermoFormat format = io::thermo_format_from_name(config.format);
  const std::string ext =
      format == io::ThermoFormat::kCsv ? ".csv" : ".jsonl";

  auto bus = std::make_unique<ObserverBus>();
  for (const auto& kind : config.probes) {
    WSMD_REQUIRE(is_probe_kind(kind), "unknown probe kind '" << kind << "'");
    const std::string path = config.prefix + "." + kind + ext;
    if (kind == "rdf") {
      RdfProbe::Config c;
      c.rcut = effective_rdf_rcut(config, material);
      c.bins = config.rdf_bins;
      c.path = path;
      c.format = format;
      bus->add(std::make_unique<RdfProbe>(c), config.cadence_for(kind));
    } else if (kind == "msd") {
      bus->add(std::make_unique<MsdProbe>(MsdProbe::Config{path, format}),
               config.cadence_for(kind));
    } else if (kind == "vacf") {
      if (!with_velocities) {
        if (skipped) skipped->push_back(kind);
        continue;
      }
      bus->add(std::make_unique<VacfProbe>(VacfProbe::Config{path, format}),
               config.cadence_for(kind));
    } else {  // defects
      DefectProbe::Config c;
      c.csp_rcut = effective_csp_rcut(material);
      c.csp_neighbors = material.csp_neighbors;
      c.csp_threshold = config.csp_threshold;
      c.gb_axis = config.gb_axis;
      // One CSP radius of margin hides the open surfaces from the GB
      // plane estimate without eating into a CI-sized grain interior.
      c.surface_margin = effective_csp_rcut(material);
      c.path = path;
      c.format = format;
      bus->add(std::make_unique<DefectProbe>(c), config.cadence_for(kind));
    }
  }
  WSMD_REQUIRE(bus->size() > 0,
               "every configured probe was skipped (velocity-dependent "
               "probes cannot replay a position-only trajectory)");
  return bus;
}

}  // namespace wsmd::obs
