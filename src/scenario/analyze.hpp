#pragma once

/// \file analyze.hpp
/// Offline observable replay: run a scenario's `observe.*` probes over a
/// saved XYZ trajectory instead of a live engine.
///
/// This is the `wsmd analyze` subcommand. The deck supplies everything the
/// trajectory file cannot: the box (rebuilt from the scenario's structure
/// generator), the element/material for probe defaults, dt for the time
/// axis, and the probe configuration itself. Stored frames *are* the
/// sampling — every frame is fed to every probe, so a run whose
/// `xyz_every` equals its `observe.every` replays to the same series the
/// live run streamed (modulo the trajectory's 10-significant-digit
/// round-trip). Velocity-dependent probes (vacf) are skipped with a
/// warning: positions alone cannot reconstruct them.

#include <functional>
#include <string>
#include <vector>

#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"

namespace wsmd::scenario {

struct AnalyzeOptions {
  /// Directory prefixed to relative output paths ("" = current directory).
  std::string output_dir;
  /// Progress sink (one human-readable line per event); empty = silent.
  std::function<void(const std::string&)> log;
};

struct AnalyzeResult {
  std::string scenario;
  std::string trajectory_path;
  std::size_t frames = 0;
  std::vector<ProbeOutput> observables;
  std::vector<std::string> skipped_probes;  ///< e.g. vacf (needs velocities)
  std::string summary_path;
};

/// Replay `sc`'s probes over the trajectory at `xyz_path`. Outputs go to
/// `<prefix>.analysis.<probe>.csv` (prefix as in a live run) so an offline
/// pass never clobbers the live streams, plus a
/// `<prefix>.analysis.summary.json` BENCH envelope. Throws wsmd::Error
/// when the deck configures no probes, the trajectory mismatches the
/// scenario's structure, or frames are unreadable.
AnalyzeResult analyze_trajectory(const Scenario& sc,
                                 const std::string& xyz_path,
                                 const AnalyzeOptions& opt = {});

}  // namespace wsmd::scenario
