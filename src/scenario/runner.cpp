#include "scenario/runner.hpp"

#include <chrono>
#include <cmath>
#include <filesystem>
#include <memory>
#include <optional>

#include "io/thermo_log.hpp"
#include "io/trajectory.hpp"
#include "util/bench_json.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

namespace wsmd::scenario {

std::string resolve_output_path(const std::string& path,
                                const std::string& dir) {
  std::string resolved = path;
  if (!path.empty() && !dir.empty() && path.front() != '/') {
    resolved = dir + "/" + path;
  }
  // Create the target directory up front: `wsmd --output-dir=out deck`
  // must work without a manual mkdir.
  if (!resolved.empty()) {
    const auto parent = std::filesystem::path(resolved).parent_path();
    if (!parent.empty()) std::filesystem::create_directories(parent);
  }
  return resolved;
}

std::vector<ProbeOutput> collect_probe_outputs(
    const obs::ObserverBus& bus,
    const std::function<void(const std::string&)>& log) {
  std::vector<ProbeOutput> outputs;
  for (std::size_t k = 0; k < bus.size(); ++k) {
    const auto& probe = bus.probe(k);
    outputs.push_back(
        {probe.kind(), probe.output_path(), probe.samples_taken()});
    if (log) {
      log(format("  %s: %zu samples -> %s", probe.kind(),
                 probe.samples_taken(), probe.output_path().c_str()));
    }
  }
  return outputs;
}

namespace {

/// Berendsen-style hard rescale toward `target_K` through the generic
/// Engine surface.
void rescale_to(engine::Engine& eng, double target_K) {
  const double current = eng.thermo().temperature;
  if (current <= 1e-12) return;  // no thermal motion to scale
  const double f = std::sqrt(target_K / current);
  auto v = eng.velocities();
  for (auto& vi : v) vi = f * vi;
  eng.set_velocities(v);
}

io::ThermoSample to_sample(const engine::Thermo& t) {
  io::ThermoSample s;
  s.step = t.step;
  s.potential_energy = t.potential_energy;
  s.kinetic_energy = t.kinetic_energy;
  s.total_energy = t.total_energy;
  s.temperature = t.temperature;
  return s;
}

std::string stage_label(const Stage& st) {
  switch (st.kind) {
    case Stage::Kind::kThermalize:
      return format("thermalize %.5g K", st.t0);
    case Stage::Kind::kEquilibrate:
      return format("equilibrate %.5g K / %ld steps", st.t0, st.steps);
    case Stage::Kind::kRamp:
      return format("ramp %.5g -> %.5g K / %ld steps", st.t0, st.t1,
                    st.steps);
    case Stage::Kind::kQuench:
      return format("quench %.5g K / %ld steps", st.t0, st.steps);
    case Stage::Kind::kRun:
      return format("run %ld steps (NVE)", st.steps);
  }
  return "?";
}

}  // namespace

ScenarioResult run_scenario(const Scenario& sc, const RunOptions& opt) {
  const auto say = [&opt](const std::string& line) {
    if (opt.log) opt.log(line);
  };

  ScenarioResult result;
  result.scenario = sc.name;

  const auto structure = build_structure(sc, &result.structure);
  auto eng = build_engine(sc, structure, opt.backend_override);
  result.backend_name = eng->backend_name();
  say(format("%s: %zu atoms (%s %s), backend %s", sc.name.c_str(),
             result.structure.atoms, sc.element.c_str(), sc.geometry.c_str(),
             result.backend_name.c_str()));
  if (result.structure.vacancies_removed > 0) {
    say(format("  %zu vacancies introduced", result.structure.vacancies_removed));
  }
  if (result.structure.gb_fused_atoms > 0) {
    say(format("  %zu seam atoms fused at the grain boundary",
               result.structure.gb_fused_atoms));
  }

  // Outputs.
  result.xyz_path = resolve_output_path(sc.xyz_path, opt.output_dir);
  result.thermo_path = resolve_output_path(sc.thermo_path, opt.output_dir);
  result.summary_path = resolve_output_path(sc.summary_path, opt.output_dir);
  std::unique_ptr<io::XyzTrajectoryWriter> trajectory;
  if (!result.xyz_path.empty()) {
    trajectory = std::make_unique<io::XyzTrajectoryWriter>(
        result.xyz_path, std::vector<std::string>{sc.element});
  }
  std::optional<io::ThermoLogger> thermo_log;
  if (!result.thermo_path.empty()) {
    thermo_log.emplace(result.thermo_path,
                       io::thermo_format_from_name(sc.thermo_format));
  }

  // Streaming observables (src/obs): one probe per configured kind, all
  // driven through the generic Engine surface so they behave identically on
  // every backend.
  std::unique_ptr<obs::ObserverBus> bus;
  if (sc.observe.enabled()) {
    auto obs_config = sc.observe;
    obs_config.prefix = resolve_output_path(
        obs_config.effective_prefix(sc.name), opt.output_dir);
    bus = obs::make_observer_bus(obs_config, material_for(sc));
    for (std::size_t k = 0; k < bus->size(); ++k) {
      say(format("  probe: %s every %ld steps -> %s",
                 bus->probe(k).kind(), bus->cadence(k),
                 bus->probe(k).output_path().c_str()));
    }
  }
  long last_frame_step = -1;
  long last_sample_step = -1;
  const auto emit_frame = [&](const engine::Thermo& t,
                              const std::vector<Vec3d>& positions) {
    trajectory->append(structure.box, positions, structure.types,
                       format("step=%ld E=%.8g T=%.6g", t.step,
                              t.total_energy, t.temperature));
    last_frame_step = t.step;
  };
  const auto emit_sample = [&](const engine::Thermo& t) {
    if (!thermo_log) return;
    thermo_log->write(to_sample(t));
    last_sample_step = t.step;
  };
  // Position-dependent outputs (trajectory frame + observables) share one
  // snapshot per sampling step: eng->positions() widens the whole FP32
  // state to FP64, so it is taken at most once, and velocities only when
  // some probe actually reads them.
  const auto stream_state = [&](const engine::Thermo& t, bool final_state) {
    const bool want_frame =
        trajectory && (final_state ? t.step != last_frame_step
                                   : t.step % sc.xyz_every == 0);
    const bool want_obs =
        bus && (final_state ? bus->has_pending(t.step) : bus->due(t.step));
    if (!want_frame && !want_obs) return;
    const bool with_positions =
        want_frame ||
        (want_obs && bus->needs_positions_at(t.step, final_state));
    std::vector<Vec3d> positions;
    if (with_positions) positions = eng->positions();
    if (want_frame) emit_frame(t, positions);
    if (want_obs) {
      const bool with_velocities =
          bus->needs_velocities_at(t.step, final_state);
      std::vector<Vec3d> velocities;
      if (with_velocities) velocities = eng->velocities();
      obs::Frame frame;
      frame.step = t.step;
      frame.time_ps = static_cast<double>(t.step) * sc.dt;
      frame.box = &structure.box;
      frame.positions = with_positions ? &positions : nullptr;
      frame.velocities = with_velocities ? &velocities : nullptr;
      if (final_state) {
        bus->observe_all(frame);
      } else {
        bus->observe(frame);
      }
    }
  };

  // Initial state: frame + sample + observables before any stage runs.
  stream_state(eng->thermo(), /*final_state=*/false);
  emit_sample(eng->thermo());

  Rng rng(sc.seed);
  const auto wall_start = std::chrono::steady_clock::now();
  for (const auto& st : sc.schedule) {
    StageResult sr;
    sr.label = stage_label(st);
    sr.kind = st.name();
    sr.steps = st.steps;
    say("  stage: " + sr.label);

    if (st.kind == Stage::Kind::kThermalize) {
      eng->thermalize(st.t0, rng);
      sr.end = eng->thermo();
      emit_sample(sr.end);
      result.stages.push_back(std::move(sr));
      continue;
    }

    for (long k = 0; k < st.steps; ++k) {
      engine::Thermo t = eng->step();
      bool rescaled = false;
      switch (st.kind) {
        case Stage::Kind::kEquilibrate:
          // Final-step rescale guarantees the stage thermostats at least
          // once even when steps < rescale_interval.
          if ((k + 1) % sc.rescale_interval == 0 || k + 1 == st.steps) {
            rescale_to(*eng, st.t0);
            rescaled = true;
          }
          break;
        case Stage::Kind::kRamp:
          // Also fire on the stage's last step so the ramp ends at t1 even
          // when steps is not a multiple of the rescale interval.
          if ((k + 1) % sc.rescale_interval == 0 || k + 1 == st.steps) {
            const double target =
                st.t0 + (st.t1 - st.t0) * static_cast<double>(k + 1) /
                            static_cast<double>(st.steps);
            rescale_to(*eng, target);
            rescaled = true;
          }
          break;
        case Stage::Kind::kQuench:
          rescale_to(*eng, st.t0);
          rescaled = true;
          break;
        default:
          break;
      }
      // Outputs record the state after the step's full processing —
      // thermostat action included — so the log's last row, the final
      // trajectory frame, and the summary all describe the same state.
      if (rescaled) t = eng->thermo();
      if (t.step % sc.thermo_every == 0) emit_sample(t);
      stream_state(t, /*final_state=*/false);
    }
    sr.end = eng->thermo();
    result.stages.push_back(std::move(sr));
  }
  const auto wall_end = std::chrono::steady_clock::now();
  result.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  result.total_steps = sc.total_steps();
  result.final_thermo = eng->thermo();

  // Close every output at the final step, unless that exact step was
  // already written (the step loop on a multiple of the interval, a
  // trailing thermalize's emission, or the pre-run emission when nothing
  // stepped) — the trajectory, thermo log, and summary must agree on
  // where the run ended.
  stream_state(result.final_thermo, /*final_state=*/true);
  if (thermo_log && result.final_thermo.step != last_sample_step) {
    emit_sample(result.final_thermo);
  }
  result.xyz_frames = trajectory ? trajectory->frames_written() : 0;
  result.thermo_samples = thermo_log ? thermo_log->samples_written() : 0;
  if (bus) {
    bus->finish();
    result.observables = collect_probe_outputs(*bus, opt.log);
  }

  if (!result.summary_path.empty()) {
    BenchJson summary("scenario_" + sc.name);
    summary.meta()
        .set("scenario", sc.name)
        .set("element", sc.element)
        .set("geometry", sc.geometry)
        .set("backend", result.backend_name)
        .set("atoms", result.structure.atoms)
        .set("vacancies_removed", result.structure.vacancies_removed)
        .set("gb_fused_atoms", result.structure.gb_fused_atoms)
        .set("dt_ps", sc.dt)
        .set("seed", static_cast<long long>(sc.seed))
        .set("total_steps", static_cast<long long>(result.total_steps))
        .set("wall_seconds", result.wall_seconds)
        .set("steps_per_s", result.wall_seconds > 0.0
                                ? static_cast<double>(result.total_steps) /
                                      result.wall_seconds
                                : 0.0)
        .set("final_total_eV", result.final_thermo.total_energy)
        .set("final_temperature_K", result.final_thermo.temperature)
        .set("xyz_frames", result.xyz_frames)
        .set("thermo_samples", result.thermo_samples);
    // Observable summaries (first peaks, diffusion, GB mobility, ...) ride
    // in the same BENCH envelope so trend tooling sees physics and
    // throughput side by side.
    if (bus) bus->summarize(summary.meta());
    for (const auto& sr : result.stages) {
      summary.add_row()
          .set("stage", sr.kind)
          .set("label", sr.label)
          .set("steps", static_cast<long long>(sr.steps))
          .set("end_step", static_cast<long long>(sr.end.step))
          .set("end_total_eV", sr.end.total_energy)
          .set("end_temperature_K", sr.end.temperature);
    }
    summary.write_to(result.summary_path);
    say("  summary -> " + result.summary_path);
  }
  say(format("  done: %ld steps on %s, final E = %.6g eV, T = %.4g K",
             result.total_steps, result.backend_name.c_str(),
             result.final_thermo.total_energy,
             result.final_thermo.temperature));
  return result;
}

}  // namespace wsmd::scenario
