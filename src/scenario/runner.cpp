#include "scenario/runner.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <memory>
#include <optional>

#include "dist/distributed_engine.hpp"
#include "io/checkpoint.hpp"
#include "io/thermo_log.hpp"
#include "io/trajectory.hpp"
#include "telemetry/telemetry.hpp"
#include "util/bench_json.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

namespace wsmd::scenario {

namespace {
std::atomic<bool> g_interrupt{false};
}  // namespace

InterruptedError::InterruptedError(long step)
    : Error(format("run interrupted at step %ld (telemetry exports "
                   "finalized)",
                   step)),
      step_(step) {}

void request_interrupt() {
  g_interrupt.store(true, std::memory_order_relaxed);
}

bool interrupt_requested() {
  return g_interrupt.load(std::memory_order_relaxed);
}

void reset_interrupt() { g_interrupt.store(false, std::memory_order_relaxed); }

std::string join_output_path(const std::string& path,
                             const std::string& dir) {
  if (path.empty()) return path;
  namespace fs = std::filesystem;
  fs::path resolved(path);
  if (!dir.empty() && !resolved.is_absolute()) {
    resolved = fs::path(dir) / resolved;
  }
  return resolved.lexically_normal().string();
}

std::string resolve_output_path(const std::string& path,
                                const std::string& dir) {
  const std::string resolved = join_output_path(path, dir);
  // Create the target directory up front: `wsmd --output-dir=out deck`
  // must work without a manual mkdir.
  if (!resolved.empty()) {
    const auto parent = std::filesystem::path(resolved).parent_path();
    if (!parent.empty()) std::filesystem::create_directories(parent);
  }
  return resolved;
}

bool stage_rescales_after(const Stage& st, long steps_done,
                          int rescale_interval) {
  switch (st.kind) {
    case Stage::Kind::kEquilibrate:
    case Stage::Kind::kRamp:
    case Stage::Kind::kQuench:
      // Interval cadence plus a guaranteed final-step rescale: the stage
      // thermostats at least once even when steps < rescale_interval, and
      // a ramp ends at t1 even when steps is not an interval multiple.
      return steps_done % rescale_interval == 0 || steps_done == st.steps;
    case Stage::Kind::kThermalize:
    case Stage::Kind::kRun:
      return false;
  }
  return false;
}

std::vector<ProbeOutput> collect_probe_outputs(
    const obs::ObserverBus& bus,
    const std::function<void(const std::string&)>& log) {
  std::vector<ProbeOutput> outputs;
  for (std::size_t k = 0; k < bus.size(); ++k) {
    const auto& probe = bus.probe(k);
    outputs.push_back(
        {probe.kind(), probe.output_path(), probe.samples_taken()});
    if (log) {
      log(format("  %s: %zu samples -> %s", probe.kind(),
                 probe.samples_taken(), probe.output_path().c_str()));
    }
  }
  return outputs;
}

namespace {

/// Berendsen-style hard rescale toward `target_K` through the generic
/// Engine surface.
void rescale_to(engine::Engine& eng, double target_K) {
  const double current = eng.thermo().temperature;
  if (current <= 1e-12) return;  // no thermal motion to scale
  const double f = std::sqrt(target_K / current);
  auto v = eng.velocities();
  for (auto& vi : v) vi = f * vi;
  eng.set_velocities(v);
}

io::ThermoSample to_sample(const engine::Thermo& t) {
  io::ThermoSample s;
  s.step = t.step;
  s.potential_energy = t.potential_energy;
  s.kinetic_energy = t.kinetic_energy;
  s.total_energy = t.total_energy;
  s.temperature = t.temperature;
  return s;
}

std::string stage_label(const Stage& st) {
  switch (st.kind) {
    case Stage::Kind::kThermalize:
      return format("thermalize %.5g K", st.t0);
    case Stage::Kind::kEquilibrate:
      return format("equilibrate %.5g K / %ld steps", st.t0, st.steps);
    case Stage::Kind::kRamp:
      return format("ramp %.5g -> %.5g K / %ld steps", st.t0, st.t1,
                    st.steps);
    case Stage::Kind::kQuench:
      return format("quench %.5g K / %ld steps", st.t0, st.steps);
    case Stage::Kind::kRun:
      return format("run %ld steps (NVE)", st.steps);
  }
  return "?";
}

/// Static-literal span name per stage kind (telemetry span names must
/// outlive the session, so no format()-built strings).
const char* stage_span_name(Stage::Kind kind) {
  switch (kind) {
    case Stage::Kind::kThermalize: return "stage.thermalize";
    case Stage::Kind::kEquilibrate: return "stage.equilibrate";
    case Stage::Kind::kRamp: return "stage.ramp";
    case Stage::Kind::kQuench: return "stage.quench";
    case Stage::Kind::kRun: return "stage.run";
  }
  return "stage.unknown";
}

/// Expand the `*` placeholder in a checkpoint path with the step number
/// (keeps every checkpoint; without a placeholder the latest overwrites).
std::string checkpoint_file_for(const std::string& pattern, long step) {
  const auto star = pattern.find('*');
  if (star == std::string::npos) return pattern;
  return pattern.substr(0, star) + std::to_string(step) +
         pattern.substr(star + 1);
}

/// Validate a checkpoint against the scenario it is about to resume: same
/// structure (atom types), same box, the same schedule stage-for-stage as
/// the one the checkpoint was written under (the cursor is meaningless
/// against a different schedule — and a swapped-in stage of equal length
/// would pass any step-count check while silently changing the physics),
/// and a cursor consistent with that schedule. Catches resumes with
/// incompatible overrides before any state is touched.
void validate_resume(const Scenario& sc, const lattice::Structure& structure,
                     const io::CheckpointData& ckpt) {
  WSMD_REQUIRE(ckpt.element == sc.element,
               "resume: checkpoint element '"
                   << ckpt.element << "' does not match scenario element '"
                   << sc.element << "'");
  WSMD_REQUIRE(ckpt.types == structure.types,
               "resume: checkpoint atom set ("
                   << ckpt.types.size()
                   << " atoms) does not match the structure this scenario "
                      "builds ("
                   << structure.types.size()
                   << " atoms) — geometry/replicate/seed changed?");
  for (std::size_t a = 0; a < 3; ++a) {
    WSMD_REQUIRE(std::fabs(ckpt.box.lo[a] - structure.box.lo[a]) < 1e-9 &&
                     std::fabs(ckpt.box.hi[a] - structure.box.hi[a]) < 1e-9 &&
                     ckpt.box.periodic[a] == structure.box.periodic[a],
                 "resume: checkpoint box does not match the scenario's "
                 "structure (axis "
                     << a << ")");
  }
  // Rebuild the schedule the checkpoint was written under from its
  // embedded deck and require the resumed scenario's schedule to match it
  // stage for stage.
  const Scenario saved = scenario_from_deck(
      deck_from_entries(ckpt.deck, "<checkpoint deck>"));
  WSMD_REQUIRE(saved.schedule.size() == sc.schedule.size(),
               "resume: schedule overrides are not supported (checkpoint "
               "was written under "
                   << saved.schedule.size() << " stage(s), resuming with "
                   << sc.schedule.size() << ")");
  for (std::size_t i = 0; i < sc.schedule.size(); ++i) {
    const auto& a = saved.schedule[i];
    const auto& b = sc.schedule[i];
    WSMD_REQUIRE(a.kind == b.kind && a.t0 == b.t0 && a.t1 == b.t1 &&
                     a.steps == b.steps,
                 "resume: schedule overrides are not supported (stage "
                     << i << " changed from '" << a.name() << "' to '"
                     << b.name() << "' parameters)");
  }
  WSMD_REQUIRE(saved.pair_style == sc.pair_style,
               "resume: pair_style changed (" << saved.pair_style << " -> "
                                              << sc.pair_style
                                              << ") — the interaction "
                                                 "family is part of the "
                                                 "trajectory");
  WSMD_REQUIRE(saved.potential == sc.potential,
               "resume: potential= changed ("
                   << saved.potential << " -> " << sc.potential
                   << ") — the evaluation path (profile tables vs analytic "
                      "form) is part of the trajectory, not an output "
                      "option");
  WSMD_REQUIRE(saved.rescale_interval == sc.rescale_interval,
               "resume: rescale_interval changed ("
                   << saved.rescale_interval << " -> " << sc.rescale_interval
                   << ") — the thermostat cadence is part of the schedule");
  WSMD_REQUIRE(saved.dt == sc.dt,
               "resume: dt changed (" << saved.dt << " -> " << sc.dt
                                      << ") — the timestep is part of the "
                                         "trajectory, not an output option");
  WSMD_REQUIRE(saved.swap_interval == sc.swap_interval,
               "resume: swap_interval changed ("
                   << saved.swap_interval << " -> " << sc.swap_interval
                   << ") — the atom-swap cadence changes the wafer "
                      "trajectory");
  if (!ckpt.probes.empty() && sc.observe.enabled()) {
    // The saved accumulators were measured under the checkpointed
    // analysis parameters; merging them with samples taken under
    // different ones corrupts silently (e.g. an RDF histogram binned
    // over two different ranges). Output keys (observe.prefix /
    // observe.format) remain free, and a scenario with observables
    // disabled outright (C++ API — deck syntax cannot express it) takes
    // the warn-and-discard path in the runner instead.
    const auto& a = saved.observe;
    const auto& b = sc.observe;
    WSMD_REQUIRE(
        a.probes == b.probes && a.every == b.every &&
            a.rdf_every == b.rdf_every && a.msd_every == b.msd_every &&
            a.vacf_every == b.vacf_every &&
            a.defects_every == b.defects_every &&
            a.rdf_rcut == b.rdf_rcut && a.rdf_bins == b.rdf_bins &&
            a.csp_threshold == b.csp_threshold && a.gb_axis == b.gb_axis,
        "resume: observe.* analysis parameters changed — the checkpointed "
        "probe accumulators were measured under the saved settings (only "
        "observe.prefix / observe.format may change on resume)");
  }
  WSMD_REQUIRE(ckpt.stage_index < sc.schedule.size(),
               "resume: checkpoint stage cursor "
                   << ckpt.stage_index << " is outside the schedule ("
                   << sc.schedule.size() << " stage(s))");
  const auto& st = sc.schedule[ckpt.stage_index];
  WSMD_REQUIRE(ckpt.stage_steps_done >= 0 &&
                   ckpt.stage_steps_done <= st.steps,
               "resume: checkpoint cursor ("
                   << ckpt.stage_steps_done << " steps into a " << st.steps
                   << "-step '" << st.name() << "' stage) is out of range");
  long expected_step = ckpt.stage_steps_done;
  for (std::size_t i = 0; i < ckpt.stage_index; ++i) {
    expected_step += sc.schedule[i].steps;
  }
  WSMD_REQUIRE(expected_step == ckpt.engine.step,
               "resume: schedule does not line up with the checkpoint "
               "(cursor implies step "
                   << expected_step << ", engine state is at step "
                   << ckpt.engine.step
                   << ") — schedule overrides are not supported on resume");
}

ScenarioResult run_impl(const Scenario& sc, const RunOptions& opt,
                        const io::CheckpointData* resume) {
  const auto say = [&opt](const std::string& line) {
    if (opt.log) opt.log(line);
  };

  ScenarioResult result;
  result.scenario = sc.name;

  const auto structure = build_structure(sc, &result.structure);
  if (resume != nullptr) validate_resume(sc, structure, *resume);
  auto eng = opt.engine_factory
                 ? opt.engine_factory(sc, structure)
                 : build_engine(sc, structure, opt.backend_override,
                                opt.output_dir);
  WSMD_REQUIRE(eng != nullptr, "engine factory returned no engine");
  result.backend_name = eng->backend_name();
  say(format("%s: %zu atoms (%s %s), backend %s", sc.name.c_str(),
             result.structure.atoms, sc.element.c_str(), sc.geometry.c_str(),
             result.backend_name.c_str()));
  if (result.structure.vacancies_removed > 0) {
    say(format("  %zu vacancies introduced", result.structure.vacancies_removed));
  }
  if (result.structure.gb_fused_atoms > 0) {
    say(format("  %zu seam atoms fused at the grain boundary",
               result.structure.gb_fused_atoms));
  }
  if (resume != nullptr) {
    eng->restore(resume->engine);
    result.resumed_from_step = resume->engine.step;
    say(format("  resumed at step %ld (stage %zu, %ld step(s) done; "
               "checkpoint written by backend %s)",
               resume->engine.step,
               static_cast<std::size_t>(resume->stage_index),
               resume->stage_steps_done, resume->backend.c_str()));
  }

  // Outputs.
  result.xyz_path = resolve_output_path(sc.xyz_path, opt.output_dir);
  result.thermo_path = resolve_output_path(sc.thermo_path, opt.output_dir);
  result.summary_path = resolve_output_path(sc.summary_path, opt.output_dir);

  // Telemetry session: armed when the scenario exports a trace/metrics
  // file or the caller wants the measured span totals (`wsmd report`).
  // Individual trace events are only captured when a trace file is
  // requested; aggregates/counters are always collected while armed.
  result.trace_path =
      resolve_output_path(sc.telemetry_trace_path, opt.output_dir);
  result.metrics_path =
      resolve_output_path(sc.telemetry_metrics_path, opt.output_dir);
  // An abort-configured health detector also arms the session (with trace
  // capture): its diagnostic bundle includes a trace, and arming must be
  // decided up front, not when the detector trips. Decks without health
  // overrides keep the default warn-only config, so the telemetry-off
  // byte-identical goldens are unaffected.
  const bool telemetry_on = opt.collect_telemetry ||
                            !result.trace_path.empty() ||
                            !result.metrics_path.empty() ||
                            sc.health.any_abort();
  if (telemetry_on) {
    telemetry::SessionConfig tcfg;
    tcfg.capture_trace =
        !result.trace_path.empty() || sc.health.any_abort();
    telemetry::begin_session(tcfg);
  }
  // The metrics file is written through a SnapshotStream: interval rows
  // while the run is live (cadence > 0), the PR 6 aggregate rows on
  // finalize — which the unwind path below reaches even when the run
  // aborts, so partial runs still leave artifacts.
  std::unique_ptr<telemetry::SnapshotStream> metrics_stream;
  if (!result.metrics_path.empty()) {
    metrics_stream = std::make_unique<telemetry::SnapshotStream>(
        result.metrics_path, sc.telemetry_snapshot_s, sc.dt);
  }

  // Run-health watchdog (telemetry/health.hpp). The bundle directory is
  // resolved now — the stall handler on the watchdog thread must not
  // touch the filesystem layout lazily.
  const std::string bundle_dir = join_output_path(
      sc.health.bundle_dir.empty() ? sc.name + ".health"
                                   : sc.health.bundle_dir,
      opt.output_dir);
  std::unique_ptr<telemetry::HealthMonitor> health;
  if (sc.health.any_enabled()) {
    health = std::make_unique<telemetry::HealthMonitor>(
        sc.health, [&say](const telemetry::HealthEvent& ev) {
          say("  health: WARNING: " + ev.detector + " — " + ev.message);
        });
  }
  if (health && sc.health.stall == telemetry::HealthAction::kAbort) {
    health->set_stall_handler(
        opt.stall_handler
            ? opt.stall_handler
            : telemetry::HealthMonitor::EventSink(
                  [&](const telemetry::HealthEvent& ev) {
                    // The runner thread is wedged mid-step, so the engine
                    // state is unreachable: the bundle carries what the
                    // watchdog can safely write, then the process exits.
                    namespace fs = std::filesystem;
                    try {
                      fs::create_directories(bundle_dir);
                      telemetry::HealthArtifacts art;
                      art.dir = bundle_dir;
                      art.metrics = result.metrics_path;
                      art.thermo_tail =
                          (fs::path(bundle_dir) / "thermo_tail.csv").string();
                      telemetry::write_thermo_tail_csv(art.thermo_tail,
                                                       health->tail());
                      telemetry::write_health_json(
                          (fs::path(bundle_dir) / "health.json").string(),
                          sc.name, result.backend_name, health->events(),
                          &ev, art);
                      say("  health: ABORT (stall) — bundle -> " +
                          bundle_dir);
                    } catch (...) {
                    }
                    std::_Exit(3);
                  }));
  }
  std::unique_ptr<io::XyzTrajectoryWriter> trajectory;
  if (!result.xyz_path.empty()) {
    trajectory = std::make_unique<io::XyzTrajectoryWriter>(
        result.xyz_path, std::vector<std::string>{sc.element});
  }
  std::optional<io::ThermoLogger> thermo_log;
  if (!result.thermo_path.empty()) {
    thermo_log.emplace(result.thermo_path,
                       io::thermo_format_from_name(sc.thermo_format));
  }

  // Streaming observables (src/obs): one probe per configured kind, all
  // driven through the generic Engine surface so they behave identically on
  // every backend.
  std::unique_ptr<obs::ObserverBus> bus;
  if (sc.observe.enabled()) {
    auto obs_config = sc.observe;
    obs_config.prefix = resolve_output_path(
        obs_config.effective_prefix(sc.name), opt.output_dir);
    bus = obs::make_observer_bus(obs_config, material_for(sc));
    for (std::size_t k = 0; k < bus->size(); ++k) {
      say(format("  probe: %s every %ld steps -> %s",
                 bus->probe(k).kind(), bus->cadence(k),
                 bus->probe(k).output_path().c_str()));
    }
  }
  long last_frame_step = -1;
  long last_sample_step = -1;

  // Restore the run-side state the checkpoint carries beyond the engine:
  // probe accumulators, output cursors, and the thermostat RNG stream.
  Rng rng(sc.seed);
  if (resume != nullptr) {
    rng.set_state(resume->rng);
    last_frame_step = resume->last_frame_step;
    last_sample_step = resume->last_sample_step;
    if (bus && !resume->probes.empty()) {
      bus->restore_probe_states(resume->probes, "resume");
    } else if (bus) {
      // Probes configured now but not checkpointed: they re-prime at the
      // resume point, so their series and summaries cover only the
      // resumed portion (MSD/VACF origins restart here).
      say("  warning: checkpoint carries no probe state — observables "
          "re-prime at the resume step");
    } else if (!resume->probes.empty()) {
      say("  warning: checkpointed probe state discarded (observe.* "
          "disabled by override)");
    }
  }

  const auto emit_frame = [&](const engine::Thermo& t,
                              const std::vector<Vec3d>& positions) {
    telemetry::ScopedSpan span("io.xyz");
    trajectory->append(structure.box, positions, structure.types,
                       format("step=%ld E=%.8g T=%.6g", t.step,
                              t.total_energy, t.temperature));
    last_frame_step = t.step;
  };
  const auto emit_sample = [&](const engine::Thermo& t) {
    if (!thermo_log) return;
    // The logger rejects non-finite rows by design; after a blow-up the
    // health monitor's thermo tail is the record of the bad rows, and a
    // warn-configured run must keep running rather than die on its log.
    if (!std::isfinite(t.total_energy) || !std::isfinite(t.temperature) ||
        !std::isfinite(t.potential_energy) ||
        !std::isfinite(t.kinetic_energy)) {
      return;
    }
    telemetry::ScopedSpan span("io.thermo");
    thermo_log->write(to_sample(t));
    last_sample_step = t.step;
  };
  // Position-dependent outputs (trajectory frame + observables) share one
  // snapshot per sampling step: eng->positions() widens the whole FP32
  // state to FP64, so it is taken at most once, and velocities only when
  // some probe actually reads them.
  const auto stream_state = [&](const engine::Thermo& t, bool final_state) {
    const bool want_frame =
        trajectory && (final_state ? t.step != last_frame_step
                                   : t.step % sc.xyz_every == 0);
    const bool want_obs =
        bus && (final_state ? bus->has_pending(t.step) : bus->due(t.step));
    if (!want_frame && !want_obs) return;
    const bool with_positions =
        want_frame ||
        (want_obs && bus->needs_positions_at(t.step, final_state));
    std::vector<Vec3d> positions;
    if (with_positions) positions = eng->positions();
    if (want_frame) emit_frame(t, positions);
    if (want_obs) {
      const bool with_velocities =
          bus->needs_velocities_at(t.step, final_state);
      std::vector<Vec3d> velocities;
      if (with_velocities) velocities = eng->velocities();
      obs::Frame frame;
      frame.step = t.step;
      frame.time_ps = static_cast<double>(t.step) * sc.dt;
      frame.box = &structure.box;
      frame.positions = with_positions ? &positions : nullptr;
      frame.velocities = with_velocities ? &velocities : nullptr;
      if (final_state) {
        bus->observe_all(frame);
      } else {
        bus->observe(frame);
      }
    }
  };

  // Periodic checkpoint write (atomic: tmp + rename). The checkpoint
  // captures the post-thermostat state of the step just finished plus the
  // schedule cursor pointing at it, so a resumed run continues with the
  // very next step. The pattern is only joined here — its `*` may expand
  // into directory components, so write_checkpoint_file creates the
  // expanded file's parent per write instead.
  result.checkpoint_path =
      join_output_path(sc.checkpoint_path, opt.output_dir);
  const auto make_checkpoint_data = [&](std::size_t stage_index,
                                        long steps_done) {
    io::CheckpointData ck;
    ck.element = sc.element;
    ck.backend = result.backend_name;
    ck.box = structure.box;
    ck.types = structure.types;
    // The embedded deck must record the *effective* scenario: fold a
    // --backend= override into it, or a plain `wsmd resume CKPT` would
    // silently continue on the deck's backend instead of the one that
    // wrote the checkpoint (breaking the bitwise-continuation promise).
    Scenario effective = sc;
    if (!opt.backend_override.empty()) {
      effective.backend = opt.backend_override;
    }
    for (const auto& e : deck_from_scenario(effective).entries) {
      ck.deck.emplace_back(e.key, e.value);
    }
    ck.engine = eng->snapshot();
    ck.stage_index = stage_index;
    ck.stage_steps_done = steps_done;
    ck.rng = rng.state();
    ck.last_frame_step = last_frame_step;
    ck.last_sample_step = last_sample_step;
    if (bus) ck.probes = bus->save_probe_states();
    return ck;
  };
  const auto maybe_checkpoint = [&](std::size_t stage_index, long steps_done,
                                    const engine::Thermo& t) {
    if (sc.checkpoint_every <= 0 || t.step % sc.checkpoint_every != 0) {
      return;
    }
    const io::CheckpointData ck = make_checkpoint_data(stage_index, steps_done);
    const std::string file =
        checkpoint_file_for(result.checkpoint_path, t.step);
    {
      telemetry::ScopedSpan span("io.checkpoint");
      io::write_checkpoint_file(file, ck);
    }
    ++result.checkpoints_written;
    say(format("  checkpoint -> %s (step %ld)", file.c_str(), t.step));
  };

  // Diagnostic bundle for an abort-action detector that trips on the
  // runner thread: checkpoint (PR 4 format — a healthy earlier state can
  // be resumed from it even when the final velocities are NaN), the
  // last-K thermo rows around the trip, the trace so far, and the
  // health.json verdict.
  const auto write_bundle = [&](const telemetry::HealthEvent& ev,
                                std::size_t stage_index, long steps_done) {
    namespace fs = std::filesystem;
    fs::create_directories(bundle_dir);
    telemetry::HealthArtifacts art;
    art.dir = bundle_dir;
    art.metrics = result.metrics_path;
    art.checkpoint = (fs::path(bundle_dir) / "checkpoint.ckpt").string();
    io::write_checkpoint_file(art.checkpoint,
                              make_checkpoint_data(stage_index, steps_done));
    if (health) {
      art.thermo_tail = (fs::path(bundle_dir) / "thermo_tail.csv").string();
      telemetry::write_thermo_tail_csv(art.thermo_tail, health->tail());
    }
    if (telemetry_on) {
      art.trace = (fs::path(bundle_dir) / "trace.json").string();
      telemetry::write_trace_json(art.trace);
    }
    telemetry::write_health_json(
        (fs::path(bundle_dir) / "health.json").string(), sc.name,
        result.backend_name, health ? health->events()
                                    : std::vector<telemetry::HealthEvent>{},
        &ev, art);
    say("  health: ABORT (" + ev.detector + ") — bundle -> " + bundle_dir);
  };

  // Feed one thermo row through the watchdog; throws HealthAbortError
  // (bundle written first) when an abort-action detector trips.
  const auto check_health = [&](const engine::Thermo& t,
                                std::size_t stage_index, long steps_done,
                                double target_K, bool has_target) {
    if (!health) return;
    telemetry::HealthSample hs;
    hs.step = t.step;
    hs.pe = t.potential_energy;
    hs.ke = t.kinetic_energy;
    hs.total = t.total_energy;
    hs.temperature = t.temperature;
    hs.target_K = target_K;
    hs.has_target = has_target;
    health->record(hs);
    if (auto fatal = health->check(hs)) {
      write_bundle(*fatal, stage_index, steps_done);
      throw telemetry::HealthAbortError(*fatal, bundle_dir);
    }
  };

  if (resume == nullptr) {
    // Initial state: frame + sample + observables before any stage runs.
    stream_state(eng->thermo(), /*final_state=*/false);
    emit_sample(eng->thermo());
  } else {
    // The restored state opens the resumed outputs (the probes already
    // sampled this step before the checkpoint — only the thermo log gets
    // the overlap row, as the fresh run's pre-run emission does). The
    // row stays on the thermo_every grid: off-grid checkpoint steps emit
    // nothing, or the resumed tail would hold a row the uninterrupted
    // log does not and the byte-identical-tail guarantee would break.
    const auto restored = eng->thermo();
    if (restored.step % sc.thermo_every == 0) emit_sample(restored);
  }

  const std::size_t start_stage = resume ? resume->stage_index : 0;
  const long start_steps = resume ? resume->stage_steps_done : 0;
  const auto wall_start = std::chrono::steady_clock::now();
  const auto wall_now = [&wall_start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         wall_start)
        .count();
  };

  // --progress heartbeat: fired on a wall-clock interval (long-gap stages
  // still show a live ETA) plus once at the end.
  const long total_steps_all = sc.total_steps();
  const long progress_start_step = resume != nullptr ? resume->engine.step : 0;
  double last_progress_s = 0.0;
  const auto report_progress = [&](long step, bool final_report) {
    if (!opt.progress) return;
    ProgressInfo p;
    p.step = step;
    p.total_steps = total_steps_all;
    p.final = final_report;
    p.wall_seconds = wall_now();
    last_progress_s = p.wall_seconds;
    const long executed = step - progress_start_step;
    if (p.wall_seconds > 0.0 && executed > 0) {
      const double steps_per_s =
          static_cast<double>(executed) / p.wall_seconds;
      // dt is in ps; 1000 ps per ns, 86400 s per day.
      p.ns_per_day = steps_per_s * sc.dt * 1e-3 * 86400.0;
      p.eta_seconds =
          static_cast<double>(total_steps_all - step) / steps_per_s;
    }
    opt.progress(p);
  };

  // Finalize the telemetry exports: disarm the session, write the trace,
  // and close out the metrics stream (snapshot rows -> aggregate rows).
  // Idempotent, and reached from the unwind path too — a health abort or
  // an interrupt still leaves the artifacts of the partial run.
  bool exports_finalized = false;
  const auto finalize_exports = [&] {
    if (exports_finalized) return;
    exports_finalized = true;
    if (!telemetry_on) return;
    telemetry::end_session();
    if (!result.trace_path.empty()) {
      telemetry::write_trace_json(result.trace_path);
      say("  trace -> " + result.trace_path);
    }
    if (metrics_stream) {
      metrics_stream->finalize();
      result.snapshots = metrics_stream->rows();
      say("  metrics -> " + result.metrics_path);
    }
  };

  bool nan_injected = false;
  try {
    for (std::size_t si = start_stage; si < sc.schedule.size(); ++si) {
      const auto& st = sc.schedule[si];
      telemetry::ScopedSpan stage_span(stage_span_name(st.kind));
      StageResult sr;
      sr.label = stage_label(st);
      sr.kind = st.name();
      sr.steps = st.steps;
      const long k0 = si == start_stage ? start_steps : 0;
      say("  stage: " + sr.label +
          (k0 > 0 ? format(" (resuming after %ld step(s))", k0) : ""));
      const bool thermostatted = st.kind == Stage::Kind::kEquilibrate ||
                                 st.kind == Stage::Kind::kRamp ||
                                 st.kind == Stage::Kind::kQuench;
      if (health) {
        health->begin_stage(st.kind == Stage::Kind::kRun, thermostatted,
                            st.t0);
      }

      if (st.kind == Stage::Kind::kThermalize) {
        eng->thermalize(st.t0, rng);
        sr.end = eng->thermo();
        check_health(sr.end, si, 0, st.t0, /*has_target=*/false);
        emit_sample(sr.end);
        result.stages.push_back(std::move(sr));
        continue;
      }

      for (long k = k0; k < st.steps; ++k) {
        // NaN fault drill (health.inject_nan): poison one velocity
        // component right before the configured step so the nan detector
        // path is rehearsable end-to-end from a plain deck.
        if (sc.health.inject_nan_step > 0 && !nan_injected &&
            eng->step_count() + 1 >= sc.health.inject_nan_step) {
          nan_injected = true;
          auto v = eng->velocities();
          if (!v.empty()) {
            v[0].x = std::numeric_limits<double>::quiet_NaN();
            eng->set_velocities(v);
          }
          say(format("  health: fault drill — NaN injected before step %ld",
                     eng->step_count() + 1));
        }
        engine::Thermo t = eng->step();
        if (health) health->step_completed();
        // Runner-level step counter: backends count their own work (wse.*,
        // md.*) but only when it happens inside the session — this one
        // guarantees every telemetry-on run exports at least one counter,
        // which the metrics schema checker requires.
        telemetry::count("run.steps");
        // One shared rescale schedule for every thermostatted stage kind
        // (stage_rescales_after — quench included, which historically
        // rescaled every step while the others honored rescale_interval);
        // ramp slides the target toward t1, the others hold t0.
        const bool rescaled =
            stage_rescales_after(st, k + 1, sc.rescale_interval);
        const double target =
            st.kind == Stage::Kind::kRamp
                ? st.t0 + (st.t1 - st.t0) * static_cast<double>(k + 1) /
                              static_cast<double>(st.steps)
                : st.t0;
        if (rescaled) rescale_to(*eng, target);
        // Outputs record the state after the step's full processing —
        // thermostat action included — so the log's last row, the final
        // trajectory frame, and the summary all describe the same state.
        if (rescaled) t = eng->thermo();
        // The watchdog sees the row before any output consumes it: on an
        // abort the bundle, not a half-written log, is the record.
        check_health(t, si, k + 1, target, thermostatted);
        if (t.step % sc.thermo_every == 0) emit_sample(t);
        stream_state(t, /*final_state=*/false);
        maybe_checkpoint(si, k + 1, t);
        // Wall-clock-driven work, sharing one clock read per step:
        // interval snapshots and the progress heartbeat.
        if (opt.progress ||
            (metrics_stream && metrics_stream->cadence_seconds() > 0.0)) {
          const double wall = wall_now();
          if (metrics_stream && metrics_stream->snapshot_due(wall)) {
            std::vector<double> busy, wait;
            for (const auto& load : eng->shard_load()) {
              busy.push_back(load.busy_seconds);
              wait.push_back(load.wait_seconds);
            }
            metrics_stream->take_snapshot(t.step, wall, busy, wait);
          }
          if (opt.progress &&
              wall - last_progress_s >= opt.progress_interval_s) {
            report_progress(t.step, /*final_report=*/false);
          }
        }
        if (interrupt_requested()) throw InterruptedError(t.step);
      }
      sr.end = eng->thermo();
      result.stages.push_back(std::move(sr));
    }
  } catch (const dist::RankFailureError& ex) {
    // A rank process died or stopped answering its deadline: the run can
    // never make progress again, which is exactly the condition the stall
    // detector guards — so a dead rank always takes the stall-abort path
    // (diagnostic bundle + exit code 2), health.stall configured or not.
    // Unlike the runner-thread bundle above there is no checkpoint: the
    // atom state lives sharded across the ranks and part of it died with
    // the failed one.
    telemetry::HealthEvent ev;
    ev.detector = "stall";
    ev.action = telemetry::HealthAction::kAbort;
    ev.step = eng->step_count();
    ev.value = static_cast<double>(ex.failed_rank());
    ev.message = ex.what();
    namespace fs = std::filesystem;
    try {
      fs::create_directories(bundle_dir);
      telemetry::HealthArtifacts art;
      art.dir = bundle_dir;
      art.metrics = result.metrics_path;
      if (health) {
        art.thermo_tail = (fs::path(bundle_dir) / "thermo_tail.csv").string();
        telemetry::write_thermo_tail_csv(art.thermo_tail, health->tail());
      }
      if (telemetry_on) {
        art.trace = (fs::path(bundle_dir) / "trace.json").string();
        telemetry::write_trace_json(art.trace);
      }
      // Per-rank post-mortem: last-known step counters from the failure
      // itself, stderr captures copied out of the engine's scratch dir
      // (which its destructor is about to remove) under their
      // rank-suffixed names.
      std::vector<telemetry::RankStatus> ranks;
      if (auto* de = dynamic_cast<dist::DistributedEngine*>(eng.get())) {
        const auto logs = de->rank_log_paths();
        const auto& steps = ex.last_known_steps();
        for (std::size_t r = 0; r < logs.size(); ++r) {
          telemetry::RankStatus rs;
          rs.rank = static_cast<int>(r);
          rs.last_step = r < steps.size() ? steps[r] : -1;
          const fs::path src(logs[r]);
          if (fs::exists(src)) {
            const fs::path dst = fs::path(bundle_dir) / src.filename();
            fs::copy_file(src, dst, fs::copy_options::overwrite_existing);
            rs.log = dst.string();
          }
          ranks.push_back(std::move(rs));
        }
      }
      auto events =
          health ? health->events() : std::vector<telemetry::HealthEvent>{};
      events.push_back(ev);
      telemetry::write_health_json(
          (fs::path(bundle_dir) / "health.json").string(), sc.name,
          result.backend_name, events, &ev, art, ranks);
      say(format("  health: ABORT (stall: rank %d failed) — bundle -> %s",
                 ex.failed_rank(), bundle_dir.c_str()));
    } catch (...) {
      // Bundle writing is best-effort; the rank failure is the error.
    }
    if (health) health->stop();
    finalize_exports();
    throw telemetry::HealthAbortError(ev, bundle_dir);
  } catch (...) {
    if (health) health->stop();
    finalize_exports();
    throw;
  }
  const auto wall_end = std::chrono::steady_clock::now();
  result.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  result.total_steps = sc.total_steps();
  const long steps_executed =
      result.total_steps - (resume != nullptr ? resume->engine.step : 0);
  result.final_thermo = eng->thermo();
  report_progress(result.final_thermo.step, /*final_report=*/true);

  // Close every output at the final step, unless that exact step was
  // already written (the step loop on a multiple of the interval, a
  // trailing thermalize's emission, or the pre-run emission when nothing
  // stepped) — the trajectory, thermo log, and summary must agree on
  // where the run ended.
  stream_state(result.final_thermo, /*final_state=*/true);
  if (thermo_log && result.final_thermo.step != last_sample_step) {
    emit_sample(result.final_thermo);
  }
  result.xyz_frames = trajectory ? trajectory->frames_written() : 0;
  result.thermo_samples = thermo_log ? thermo_log->samples_written() : 0;
  if (bus) {
    bus->finish();
    result.observables = collect_probe_outputs(*bus, opt.log);
    result.probe_output_failures = bus->failed_outputs();
    if (result.probe_output_failures > 0) {
      say(format("  warning: %zu probe output stream(s) reported write "
                 "failures — observable files are incomplete",
                 result.probe_output_failures));
    }
  }

  // Disarm telemetry and export before the summary: the collected data
  // stays readable (span_stats / counters) for `wsmd report` after the
  // run returns, and the exports must not record their own writes.
  result.modeled = eng->modeled_phase_cost();
  if (health) {
    health->stop();
    result.health_events = health->events().size();
    if (result.health_events > 0) {
      say(format("  health: %zu warning event(s) — see the summary",
                 result.health_events));
    }
  }
  finalize_exports();

  if (!result.summary_path.empty()) {
    BenchJson summary("scenario_" + sc.name);
    summary.meta()
        .set("scenario", sc.name)
        .set("element", sc.element)
        .set("geometry", sc.geometry)
        .set("backend", result.backend_name)
        .set("atoms", result.structure.atoms)
        .set("vacancies_removed", result.structure.vacancies_removed)
        .set("gb_fused_atoms", result.structure.gb_fused_atoms)
        .set("dt_ps", sc.dt)
        .set("seed", static_cast<long long>(sc.seed))
        .set("total_steps", static_cast<long long>(result.total_steps))
        .set("wall_seconds", result.wall_seconds)
        // Throughput counts the steps *this process* executed: a resumed
        // run only stepped the post-checkpoint remainder, and crediting
        // it the full schedule would fabricate a speedup in the trend
        // tooling the BENCH envelope feeds.
        .set("steps_executed", static_cast<long long>(steps_executed))
        .set("steps_per_s", result.wall_seconds > 0.0
                                ? static_cast<double>(steps_executed) /
                                      result.wall_seconds
                                : 0.0)
        .set("final_total_eV", result.final_thermo.total_energy)
        .set("final_temperature_K", result.final_thermo.temperature)
        .set("xyz_frames", result.xyz_frames)
        .set("thermo_samples", result.thermo_samples);
    if (result.checkpoints_written > 0) {
      summary.meta()
          .set("checkpoints_written", result.checkpoints_written)
          .set("checkpoint", result.checkpoint_path);
    }
    if (result.resumed_from_step >= 0) {
      summary.meta().set("resumed_from_step",
                         static_cast<long long>(result.resumed_from_step));
    }
    if (!result.trace_path.empty()) {
      summary.meta().set("trace", result.trace_path);
    }
    if (!result.metrics_path.empty()) {
      summary.meta().set("metrics", result.metrics_path);
      if (!result.snapshots.empty()) {
        summary.meta().set("snapshots", result.snapshots.size());
      }
    }
    if (result.health_events > 0) {
      summary.meta().set("health_events", result.health_events);
    }
    // Observable summaries (first peaks, diffusion, GB mobility, ...) ride
    // in the same BENCH envelope so trend tooling sees physics and
    // throughput side by side.
    if (bus) bus->summarize(summary.meta());
    for (const auto& sr : result.stages) {
      summary.add_row()
          .set("stage", sr.kind)
          .set("label", sr.label)
          .set("steps", static_cast<long long>(sr.steps))
          .set("end_step", static_cast<long long>(sr.end.step))
          .set("end_total_eV", sr.end.total_energy)
          .set("end_temperature_K", sr.end.temperature);
    }
    summary.write_to(result.summary_path);
    say("  summary -> " + result.summary_path);
  }
  say(format("  done: %ld steps on %s, final E = %.6g eV, T = %.4g K",
             result.total_steps, result.backend_name.c_str(),
             result.final_thermo.total_energy,
             result.final_thermo.temperature));
  return result;
}

}  // namespace

ScenarioResult run_scenario(const Scenario& sc, const RunOptions& opt) {
  return run_impl(sc, opt, nullptr);
}

ScenarioResult resume_scenario(const Scenario& sc,
                               const io::CheckpointData& ckpt,
                               const RunOptions& opt) {
  return run_impl(sc, opt, &ckpt);
}

}  // namespace wsmd::scenario
