#include "scenario/scenario.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <utility>

#include "dist/distributed_engine.hpp"
#include "eam/lennard_jones.hpp"
#include "eam/zhou.hpp"
#include "lattice/grain_boundary.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

namespace wsmd::scenario {

namespace {

[[noreturn]] void bad_entry(const Deck& deck, const DeckEntry& e,
                            const std::string& why) {
  // line == 0 marks an appended CLI override — pointing at the deck file
  // would send the user grepping for a key that is not in it.
  const std::string where =
      e.line > 0 ? deck.source + ":" + std::to_string(e.line)
                 : "<cli override>";
  WSMD_REQUIRE(false, where << ": key '" << e.key << "' = '" << e.value
                            << "': " << why);
  std::abort();  // unreachable
}

double parse_double_token(const Deck& deck, const DeckEntry& e,
                          const std::string& token) {
  double v = 0.0;
  if (!parse_double_strict(token, v)) bad_entry(deck, e, "not a number");
  return v;
}

long parse_long_token(const Deck& deck, const DeckEntry& e,
                      const std::string& token) {
  long v = 0;
  if (!parse_long_strict(token, v)) bad_entry(deck, e, "not an integer");
  return v;
}

/// Split the value and require exactly `n` whitespace-separated tokens.
std::vector<std::string> tokens_n(const Deck& deck, const DeckEntry& e,
                                  std::size_t n) {
  auto t = split_whitespace(e.value);
  if (t.size() != n) {
    bad_entry(deck, e,
              "expected " + std::to_string(n) + " value(s), got " +
                  std::to_string(t.size()));
  }
  return t;
}

double one_double(const Deck& deck, const DeckEntry& e) {
  return parse_double_token(deck, e, tokens_n(deck, e, 1)[0]);
}

long one_long(const Deck& deck, const DeckEntry& e) {
  return parse_long_token(deck, e, tokens_n(deck, e, 1)[0]);
}

long nonneg_steps(const Deck& deck, const DeckEntry& e, long v) {
  if (v < 0) bad_entry(deck, e, "step count must be >= 0");
  return v;
}

double nonneg_temp(const Deck& deck, const DeckEntry& e, double t) {
  if (t < 0.0) bad_entry(deck, e, "temperature must be >= 0 K");
  return t;
}

}  // namespace

const char* Stage::name() const {
  switch (kind) {
    case Kind::kThermalize: return "thermalize";
    case Kind::kEquilibrate: return "equilibrate";
    case Kind::kRamp: return "ramp";
    case Kind::kQuench: return "quench";
    case Kind::kRun: return "run";
  }
  return "?";
}

BackendSpec parse_backend(const std::string& spec) {
  BackendSpec bs;
  if (spec == "reference" || starts_with(spec, "reference:")) {
    bs.backend = engine::Backend::kReference;
    if (starts_with(spec, "reference:")) {
      const std::string n = spec.substr(10);
      char* end = nullptr;
      const long threads = std::strtol(n.c_str(), &end, 10);
      WSMD_REQUIRE(end && *end == '\0' && threads > 0,
                   "bad reference thread count '" << n << "'");
      bs.threads = static_cast<int>(threads);
    }
    return bs;
  }
  if (spec == "wafer") {
    bs.backend = engine::Backend::kWafer;
    return bs;
  }
  if (spec == "sharded" || starts_with(spec, "sharded:")) {
    bs.backend = engine::Backend::kShardedWafer;
    bs.threads = 0;  // auto
    if (starts_with(spec, "sharded:")) {
      const std::string n = spec.substr(8);
      char* end = nullptr;
      const long threads = std::strtol(n.c_str(), &end, 10);
      WSMD_REQUIRE(end && *end == '\0' && threads > 0,
                   "bad sharded thread count '" << n << "'");
      bs.threads = static_cast<int>(threads);
    }
    return bs;
  }
  if (spec == "ranks" || starts_with(spec, "ranks:")) {
    // ranks:M forks M rank processes; ranks:MxN additionally runs N shard
    // threads inside each rank. Plain "ranks" means ranks:2.
    bs.backend = engine::Backend::kRanks;
    bs.threads = 1;
    if (starts_with(spec, "ranks:")) {
      const std::string n = spec.substr(6);
      char* end = nullptr;
      const long ranks = std::strtol(n.c_str(), &end, 10);
      WSMD_REQUIRE(end != nullptr && end != n.c_str() && ranks >= 1 &&
                       ranks <= dist::kMaxRanks,
                   "bad rank count '" << n << "' (want 1.."
                                      << dist::kMaxRanks
                                      << ", e.g. ranks:4 or ranks:4x2)");
      bs.ranks = static_cast<int>(ranks);
      if (*end == 'x') {
        const char* t = end + 1;
        const long threads = std::strtol(t, &end, 10);
        WSMD_REQUIRE(end != nullptr && end != t && *end == '\0' &&
                         threads > 0,
                     "bad per-rank thread count '" << n
                                                   << "' (want ranks:MxN)");
        bs.threads = static_cast<int>(threads);
      } else {
        WSMD_REQUIRE(*end == '\0', "bad rank spec '"
                                       << n
                                       << "' (want ranks:M or ranks:MxN)");
      }
    }
    return bs;
  }
  WSMD_REQUIRE(false,
               "unknown backend '"
                   << spec
                   << "' (want reference|reference:N|wafer|sharded|"
                      "sharded:N|ranks:M|ranks:MxN)");
  return bs;  // unreachable
}

long Scenario::total_steps() const {
  long total = 0;
  for (const auto& st : schedule) total += st.steps;
  return total;
}

bool is_schedule_key(const std::string& key) {
  return key == "thermalize" || key == "equilibrate" || key == "ramp" ||
         key == "quench" || key == "run" || key == "nve";
}

Scenario scenario_from_deck(const Deck& deck) {
  Scenario sc;
  // observe.* entries are remembered so cross-key validation below can
  // point at the offending deck line, not just the file.
  std::map<std::string, const DeckEntry*> observe_seen;
  // health.* entries likewise, so band-without-detector errors blame the
  // right line; snapshot/metrics interplay needs the same treatment.
  std::map<std::string, const DeckEntry*> health_seen;
  // dist.* entries: they only mean anything on a ranks: backend, and the
  // kill drill keys come in pairs — blame the offending line.
  std::map<std::string, const DeckEntry*> dist_seen;
  const DeckEntry* snapshot_entry = nullptr;
  bool metrics_off = false;  ///< telemetry.metrics explicitly disabled
  const DeckEntry* checkpoint_path_entry = nullptr;
  // Schedule keys accumulate stages in deck order, so plain last-wins
  // cannot apply to them. Instead, whole-schedule replacement: if any
  // schedule key arrives as an override (line == 0, appended by the CLI),
  // the overrides define the entire schedule and the file's stages are
  // dropped — `wsmd deck run=50` means "run 50 NVE steps", not "append
  // another 50 to whatever the deck did".
  const bool overrides_define_schedule = [&deck] {
    for (const auto& e : deck.entries) {
      if (e.line == 0 && is_schedule_key(e.key)) return true;
    }
    return false;
  }();
  for (const auto& e : deck.entries) {
    if (overrides_define_schedule && e.line > 0 && is_schedule_key(e.key)) {
      continue;
    }
    if (e.key == "name") {
      sc.name = e.value;
    } else if (e.key == "element") {
      sc.element = e.value;
    } else if (e.key == "pair_style") {
      if (e.value != "eam" && e.value != "lj") {
        bad_entry(deck, e, "want eam|lj");
      }
      sc.pair_style = e.value;
    } else if (e.key == "potential") {
      if (e.value != "tabulated" && e.value != "analytic") {
        bad_entry(deck, e, "want tabulated|analytic");
      }
      sc.potential = e.value;
    } else if (e.key == "geometry") {
      if (e.value != "slab" && e.value != "bulk" &&
          e.value != "grain_boundary") {
        bad_entry(deck, e, "want slab|bulk|grain_boundary");
      }
      sc.geometry = e.value;
    } else if (e.key == "scale") {
      const long v = one_long(deck, e);
      if (v < 1) bad_entry(deck, e, "scale must be >= 1");
      sc.scale = static_cast<int>(v);
    } else if (e.key == "replicate") {
      const auto t = tokens_n(deck, e, 3);
      for (std::size_t a = 0; a < 3; ++a) {
        const long v = parse_long_token(deck, e, t[a]);
        if (v < 1) bad_entry(deck, e, "replication counts must be >= 1");
        sc.replicate[a] = static_cast<int>(v);
      }
    } else if (e.key == "vacancy_fraction") {
      const double v = one_double(deck, e);
      if (v < 0.0 || v >= 1.0) bad_entry(deck, e, "want [0, 1)");
      sc.vacancy_fraction = v;
    } else if (e.key == "tilt_angle_deg") {
      sc.tilt_angle_deg = one_double(deck, e);
    } else if (e.key == "gb_atoms") {
      const long v = one_long(deck, e);
      if (v < 16) bad_entry(deck, e, "gb_atoms must be >= 16");
      sc.gb_target_atoms = static_cast<std::size_t>(v);
    } else if (e.key == "backend") {
      parse_backend(e.value);  // validate eagerly
      sc.backend = e.value;
    } else if (e.key == "dt") {
      const double v = one_double(deck, e);
      if (v <= 0.0) bad_entry(deck, e, "dt must be > 0");
      sc.dt = v;
    } else if (e.key == "swap_interval") {
      const long v = one_long(deck, e);
      if (v < 0) bad_entry(deck, e, "swap_interval must be >= 0");
      sc.swap_interval = static_cast<int>(v);
    } else if (e.key == "rescale_interval") {
      const long v = one_long(deck, e);
      if (v < 1) bad_entry(deck, e, "rescale_interval must be >= 1");
      sc.rescale_interval = static_cast<int>(v);
    } else if (e.key == "seed") {
      const long v = one_long(deck, e);
      if (v < 0) bad_entry(deck, e, "seed must be >= 0");
      sc.seed = static_cast<std::uint64_t>(v);
    } else if (e.key == "thermalize") {
      Stage st;
      st.kind = Stage::Kind::kThermalize;
      st.t0 = nonneg_temp(deck, e, one_double(deck, e));
      sc.schedule.push_back(st);
    } else if (e.key == "equilibrate" || e.key == "quench") {
      const auto t = tokens_n(deck, e, 2);
      Stage st;
      st.kind = e.key == "equilibrate" ? Stage::Kind::kEquilibrate
                                       : Stage::Kind::kQuench;
      st.t0 = st.t1 = nonneg_temp(deck, e, parse_double_token(deck, e, t[0]));
      st.steps = nonneg_steps(deck, e, parse_long_token(deck, e, t[1]));
      sc.schedule.push_back(st);
    } else if (e.key == "ramp") {
      const auto t = tokens_n(deck, e, 3);
      Stage st;
      st.kind = Stage::Kind::kRamp;
      st.t0 = nonneg_temp(deck, e, parse_double_token(deck, e, t[0]));
      st.t1 = nonneg_temp(deck, e, parse_double_token(deck, e, t[1]));
      st.steps = nonneg_steps(deck, e, parse_long_token(deck, e, t[2]));
      sc.schedule.push_back(st);
    } else if (e.key == "run" || e.key == "nve") {
      Stage st;
      st.kind = Stage::Kind::kRun;
      st.steps = nonneg_steps(deck, e, one_long(deck, e));
      sc.schedule.push_back(st);
    } else if (e.key == "xyz") {
      sc.xyz_path = e.value;
    } else if (e.key == "xyz_every") {
      const long v = one_long(deck, e);
      if (v < 1) bad_entry(deck, e, "xyz_every must be >= 1");
      sc.xyz_every = v;
    } else if (e.key == "thermo") {
      sc.thermo_path = e.value;
    } else if (e.key == "thermo_every") {
      const long v = one_long(deck, e);
      if (v < 1) bad_entry(deck, e, "thermo_every must be >= 1");
      sc.thermo_every = v;
    } else if (e.key == "thermo_format") {
      if (e.value != "csv" && e.value != "jsonl") {
        bad_entry(deck, e, "want csv|jsonl");
      }
      sc.thermo_format = e.value;
    } else if (e.key == "summary") {
      sc.summary_path = e.value;
    } else if (e.key == "observe.probes") {
      const auto t = split_whitespace(e.value);
      if (t.empty()) {
        bad_entry(deck, e, "expected at least one of rdf|msd|vacf|defects");
      }
      std::vector<std::string> probes;
      for (const auto& kind : t) {
        if (!obs::is_probe_kind(kind)) {
          bad_entry(deck, e,
                    "unknown probe '" + kind + "' (want rdf|msd|vacf|defects)");
        }
        if (std::find(probes.begin(), probes.end(), kind) != probes.end()) {
          bad_entry(deck, e, "duplicate probe '" + kind + "'");
        }
        probes.push_back(kind);
      }
      sc.observe.probes = std::move(probes);
      observe_seen[e.key] = &e;
    } else if (e.key == "observe.every" || e.key == "observe.rdf_every" ||
               e.key == "observe.msd_every" ||
               e.key == "observe.vacf_every" ||
               e.key == "observe.defects_every") {
      const long v = one_long(deck, e);
      if (v < 1) bad_entry(deck, e, "sampling cadence must be >= 1");
      if (e.key == "observe.every") sc.observe.every = v;
      else if (e.key == "observe.rdf_every") sc.observe.rdf_every = v;
      else if (e.key == "observe.msd_every") sc.observe.msd_every = v;
      else if (e.key == "observe.vacf_every") sc.observe.vacf_every = v;
      else sc.observe.defects_every = v;
      observe_seen[e.key] = &e;
    } else if (e.key == "observe.format") {
      if (e.value != "csv" && e.value != "jsonl") {
        bad_entry(deck, e, "want csv|jsonl");
      }
      sc.observe.format = e.value;
      observe_seen[e.key] = &e;
    } else if (e.key == "observe.prefix") {
      if (e.value.empty()) bad_entry(deck, e, "prefix must not be empty");
      sc.observe.prefix = e.value;
      observe_seen[e.key] = &e;
    } else if (e.key == "observe.rdf_rcut") {
      const double v = one_double(deck, e);
      if (v <= 0.0) bad_entry(deck, e, "rdf rcut must be > 0 A");
      sc.observe.rdf_rcut = v;
      observe_seen[e.key] = &e;
    } else if (e.key == "observe.rdf_bins") {
      const long v = one_long(deck, e);
      if (v < 2 || v > 100000) bad_entry(deck, e, "want 2..100000 bins");
      sc.observe.rdf_bins = static_cast<int>(v);
      observe_seen[e.key] = &e;
    } else if (e.key == "observe.csp_threshold") {
      const double v = one_double(deck, e);
      if (v <= 0.0) bad_entry(deck, e, "csp threshold must be > 0 A^2");
      sc.observe.csp_threshold = v;
      observe_seen[e.key] = &e;
    } else if (e.key == "observe.gb_axis") {
      if (e.value != "x" && e.value != "y" && e.value != "z") {
        bad_entry(deck, e, "want x|y|z");
      }
      sc.observe.gb_axis = e.value == "x" ? 0 : (e.value == "y" ? 1 : 2);
      observe_seen[e.key] = &e;
    } else if (e.key == "checkpoint.every") {
      const long v = one_long(deck, e);
      if (v < 0) bad_entry(deck, e, "checkpoint cadence must be >= 0 (0 = off)");
      sc.checkpoint_every = v;
    } else if (e.key == "checkpoint.path") {
      if (e.value.empty()) {
        bad_entry(deck, e, "checkpoint path must not be empty");
      }
      checkpoint_path_entry = &e;
      sc.checkpoint_path = e.value;
    } else if (e.key == "telemetry.trace" || e.key == "telemetry.metrics") {
      // `auto` resolves to a name-derived default after the loop (the name
      // key may appear later in the deck); `off` is the explicit disable
      // for resume-time overrides.
      if (e.value.empty()) bad_entry(deck, e, "want PATH|auto|off");
      std::string& path = e.key == "telemetry.trace"
                              ? sc.telemetry_trace_path
                              : sc.telemetry_metrics_path;
      path = e.value == "off" ? "" : e.value;
      if (e.key == "telemetry.metrics") metrics_off = e.value == "off";
    } else if (e.key == "telemetry.snapshot") {
      if (e.value == "off") {
        sc.telemetry_snapshot_s = 0.0;
        snapshot_entry = nullptr;
      } else {
        const double v = one_double(deck, e);
        if (v <= 0.0) {
          bad_entry(deck, e, "snapshot cadence must be > 0 seconds (or off)");
        }
        sc.telemetry_snapshot_s = v;
        snapshot_entry = &e;
      }
    } else if (e.key == "dist.timeout") {
      const double v = one_double(deck, e);
      if (v <= 0.0) bad_entry(deck, e, "timeout must be > 0 seconds");
      sc.dist_timeout_s = v;
      dist_seen[e.key] = &e;
    } else if (e.key == "dist.kill_rank") {
      const long v = one_long(deck, e);
      if (v < 0) bad_entry(deck, e, "kill rank must be >= 0");
      sc.dist_kill_rank = static_cast<int>(v);
      dist_seen[e.key] = &e;
    } else if (e.key == "dist.kill_step") {
      const long v = one_long(deck, e);
      if (v < 1) bad_entry(deck, e, "kill step must be >= 1 (1-based)");
      sc.dist_kill_step = v;
      dist_seen[e.key] = &e;
    } else if (e.key == "dist.transport") {
      if (e.value != "shm" && e.value != "socket") {
        bad_entry(deck, e, "want shm|socket");
      }
      sc.dist_transport = e.value;
      dist_seen[e.key] = &e;
    } else if (e.key == "health.nan" || e.key == "health.energy_drift" ||
               e.key == "health.temperature" || e.key == "health.stall") {
      telemetry::HealthAction action = telemetry::HealthAction::kOff;
      if (!telemetry::parse_health_action(e.value, &action)) {
        bad_entry(deck, e, "want off|warn|abort");
      }
      if (e.key == "health.nan") sc.health.nan = action;
      else if (e.key == "health.energy_drift") sc.health.energy_drift = action;
      else if (e.key == "health.temperature") sc.health.temperature = action;
      else sc.health.stall = action;
    } else if (e.key == "health.energy_band") {
      const double v = one_double(deck, e);
      if (v <= 0.0) bad_entry(deck, e, "energy band must be > 0 (relative)");
      sc.health.energy_band = v;
      health_seen[e.key] = &e;
    } else if (e.key == "health.temperature_band") {
      const double v = one_double(deck, e);
      if (v <= 0.0) bad_entry(deck, e, "temperature band must be > 0 K");
      sc.health.temperature_band_K = v;
      health_seen[e.key] = &e;
    } else if (e.key == "health.stall_timeout") {
      const double v = one_double(deck, e);
      if (v <= 0.0) bad_entry(deck, e, "stall timeout must be > 0 seconds");
      sc.health.stall_timeout_s = v;
      health_seen[e.key] = &e;
    } else if (e.key == "health.thermo_tail") {
      const long v = one_long(deck, e);
      if (v < 1 || v > 100000) bad_entry(deck, e, "want 1..100000 rows");
      sc.health.thermo_tail = v;
    } else if (e.key == "health.bundle") {
      if (e.value.empty()) bad_entry(deck, e, "bundle path must not be empty");
      sc.health.bundle_dir = e.value;
    } else if (e.key == "health.inject_nan") {
      const long v = one_long(deck, e);
      if (v < 0) bad_entry(deck, e, "inject step must be >= 0 (0 = off)");
      sc.health.inject_nan_step = v;
      health_seen[e.key] = &e;
    } else {
      bad_entry(deck, e, "unknown key");
    }
  }
  // Fail on an unknown element now, not steps into a run; the lookup table
  // depends on the pair style.
  if (sc.pair_style == "lj") {
    eam::lj_parameters(sc.element);
    // The bicrystal generator and the paper slabs are Zhou-EAM metal
    // geometries; LJ scenarios size their crystal explicitly.
    WSMD_REQUIRE(sc.geometry != "grain_boundary",
                 deck.source << ": pair_style=lj does not support "
                                "geometry=grain_boundary (the bicrystal "
                                "builder is EAM-metal only)");
    WSMD_REQUIRE(sc.replicate[0] > 0,
                 deck.source << ": pair_style=lj needs an explicit "
                                "'replicate' (the paper slabs are EAM "
                                "workloads)");
  } else {
    eam::zhou_parameters(sc.element);
  }

  // Geometry/key cross-validation: a key the chosen geometry ignores must
  // reject, not silently simulate something else. Vacancies on a fused
  // bicrystal would corrupt the seam; replicate/scale do not apply to the
  // bicrystal solver, and the bicrystal controls do not apply elsewhere.
  if (sc.geometry == "grain_boundary") {
    WSMD_REQUIRE(sc.vacancy_fraction == 0.0,
                 deck.source << ": vacancy_fraction is not supported with "
                                "geometry=grain_boundary");
    WSMD_REQUIRE(!deck.has("replicate") && !deck.has("scale"),
                 deck.source << ": replicate/scale do not apply to "
                                "geometry=grain_boundary (size it with "
                                "gb_atoms)");
  } else {
    WSMD_REQUIRE(!deck.has("tilt_angle_deg") && !deck.has("gb_atoms"),
                 deck.source << ": tilt_angle_deg/gb_atoms require "
                                "geometry=grain_boundary");
  }

  // Velocity rescaling cannot heat a motionless system (scaling zero stays
  // zero), so a thermostat stage before any source of kinetic energy would
  // silently run at 0 K. Thermalize provides KE directly; any stepped
  // stage may convert potential energy (e.g. an unrelaxed grain boundary)
  // and is given the benefit of the doubt.
  bool may_have_ke = false;
  for (const auto& st : sc.schedule) {
    const bool thermostats = st.kind == Stage::Kind::kEquilibrate ||
                             st.kind == Stage::Kind::kRamp ||
                             st.kind == Stage::Kind::kQuench;
    WSMD_REQUIRE(!(thermostats && std::max(st.t0, st.t1) > 0.0 &&
                   !may_have_ke),
                 deck.source << ": stage '" << st.name()
                             << "' thermostats a 0 K system — add a "
                                "'thermalize' stage before it");
    if ((st.kind == Stage::Kind::kThermalize && st.t0 > 0.0) ||
        st.steps > 0) {
      may_have_ke = true;
    }
  }

  // Checkpointing cross-validation: a path with no cadence at all would
  // silently never checkpoint. An explicit `checkpoint.every = 0` is the
  // documented off-switch (e.g. a resume override), so only the entirely
  // absent key is an error.
  if (checkpoint_path_entry != nullptr && sc.checkpoint_every == 0 &&
      !deck.has("checkpoint.every")) {
    bad_entry(deck, *checkpoint_path_entry,
              "checkpoint.path needs checkpoint.every");
  }
  if (sc.checkpoint_every > 0 && sc.checkpoint_path.empty()) {
    sc.checkpoint_path = sc.name + ".ckpt";
  }
  if (sc.telemetry_trace_path == "auto") {
    sc.telemetry_trace_path = sc.name + ".trace.json";
  }
  if (sc.telemetry_metrics_path == "auto") {
    sc.telemetry_metrics_path = sc.name + ".metrics.jsonl";
  }
  // Snapshots stream into the metrics file: a cadence with metrics
  // explicitly off is a contradiction, and with metrics merely absent the
  // metrics file is implied (same auto default as telemetry.metrics=auto).
  if (sc.telemetry_snapshot_s > 0.0) {
    if (metrics_off) {
      bad_entry(deck, *snapshot_entry,
                "telemetry.snapshot streams into the metrics file, but "
                "telemetry.metrics is off");
    }
    if (sc.telemetry_metrics_path.empty()) {
      sc.telemetry_metrics_path = sc.name + ".metrics.jsonl";
    }
  }
  // health.* cross-key validation: a band/timeout for a disabled detector
  // is dead configuration — reject it like the observe.* rules do.
  const auto requires_detector = [&](const char* key,
                                     telemetry::HealthAction action,
                                     const char* detector_key) {
    const auto it = health_seen.find(key);
    if (it != health_seen.end() && action == telemetry::HealthAction::kOff) {
      bad_entry(deck, *it->second,
                std::string("requires ") + detector_key + " = warn|abort");
    }
  };
  requires_detector("health.energy_band", sc.health.energy_drift,
                    "health.energy_drift");
  requires_detector("health.temperature_band", sc.health.temperature,
                    "health.temperature");
  requires_detector("health.stall_timeout", sc.health.stall, "health.stall");
  if (sc.health.inject_nan_step > 0 &&
      sc.health.nan == telemetry::HealthAction::kOff) {
    bad_entry(deck, *health_seen.at("health.inject_nan"),
              "the NaN fault drill needs health.nan = warn|abort");
  }

  // dist.* cross-key validation, eager like everything above: the keys
  // are dead configuration off a ranks: backend, and the kill drill is a
  // (rank, step) pair — half of it would silently never fire.
  if (!dist_seen.empty()) {
    const BackendSpec bs = parse_backend(sc.backend);
    if (bs.backend != engine::Backend::kRanks) {
      bad_entry(deck, *dist_seen.begin()->second,
                "dist.* keys need backend = ranks:M (got '" + sc.backend +
                    "')");
    }
    if (sc.dist_kill_rank >= 0 && sc.dist_kill_step == 0) {
      bad_entry(deck, *dist_seen.at("dist.kill_rank"),
                "dist.kill_rank needs dist.kill_step");
    }
    if (sc.dist_kill_step > 0 && sc.dist_kill_rank < 0) {
      bad_entry(deck, *dist_seen.at("dist.kill_step"),
                "dist.kill_step needs dist.kill_rank");
    }
    if (sc.dist_kill_rank >= bs.ranks) {
      bad_entry(deck, *dist_seen.at("dist.kill_rank"),
                format("kill rank %d is outside backend %s (ranks 0..%d)",
                       sc.dist_kill_rank, sc.backend.c_str(), bs.ranks - 1));
    }
  }

  // observe.* cross-key validation. Each rule blames the deck line that
  // introduced the inconsistent key, so the fix is one hop away.
  if (!observe_seen.empty() && sc.observe.probes.empty()) {
    bad_entry(deck, *observe_seen.begin()->second,
              "observe.* keys need observe.probes");
  }
  const auto requires_probe = [&](const char* key, const char* probe) {
    const auto it = observe_seen.find(key);
    if (it != observe_seen.end() && !sc.observe.has(probe)) {
      bad_entry(deck, *it->second,
                std::string("requires the ") + probe + " probe");
    }
  };
  requires_probe("observe.rdf_every", "rdf");
  requires_probe("observe.rdf_rcut", "rdf");
  requires_probe("observe.rdf_bins", "rdf");
  requires_probe("observe.msd_every", "msd");
  requires_probe("observe.vacf_every", "vacf");
  requires_probe("observe.defects_every", "defects");
  requires_probe("observe.csp_threshold", "defects");
  requires_probe("observe.gb_axis", "defects");
  if (const auto it = observe_seen.find("observe.gb_axis");
      it != observe_seen.end() && sc.geometry != "grain_boundary") {
    bad_entry(deck, *it->second,
              "grain-boundary tracking requires geometry=grain_boundary");
  }
  // Default: a defect probe on a bicrystal tracks the boundary plane along
  // the generator's GB normal (y) unless the deck says otherwise.
  if (sc.observe.has("defects") && sc.geometry == "grain_boundary" &&
      sc.observe.gb_axis < 0) {
    sc.observe.gb_axis = 1;
  }
  // Probe-geometry mismatch, caught eagerly where the box is knowable at
  // parse time: minimum-image probes need every periodic box length >=
  // 2 * their search radius, and only geometry=bulk is periodic.
  if (sc.observe.enabled() && sc.geometry == "bulk" && sc.replicate[0] > 0) {
    const double a0 = material_facts(sc).lattice_constant;
    // `blame_key` is the deck line at fault (nullptr / absent falls back
    // to the observe.probes line); `fix_hint` must only name knobs that
    // actually control the radius.
    const auto require_box_fits = [&](const char* probe,
                                      const char* blame_key, double rcut,
                                      const char* fix_hint) {
      const DeckEntry* entry = observe_seen.at("observe.probes");
      if (blame_key != nullptr) {
        if (const auto it = observe_seen.find(blame_key);
            it != observe_seen.end()) {
          entry = it->second;
        }
      }
      for (std::size_t a = 0; a < 3; ++a) {
        const double len = sc.replicate[a] * a0;
        if (len < 2.0 * rcut) {
          bad_entry(deck, *entry,
                    format("%s search radius %.4g A needs periodic box "
                           ">= %.4g A, but axis %zu is %.4g A — %s",
                           probe, rcut, 2.0 * rcut, a, len, fix_hint));
        }
      }
    };
    const obs::Material mat{a0, 0};
    if (sc.observe.has("rdf")) {
      require_box_fits("rdf", "observe.rdf_rcut",
                       obs::effective_rdf_rcut(sc.observe, mat),
                       "enlarge 'replicate' or shrink observe.rdf_rcut");
    }
    if (sc.observe.has("defects")) {
      // The CSP radius is fixed at 1.2 a0 (no deck knob): only the box
      // can give.
      require_box_fits("defects (csp)", nullptr,
                       obs::effective_csp_rcut(mat), "enlarge 'replicate'");
    }
  }
  return sc;
}

Deck deck_from_scenario(const Scenario& sc) {
  // Collected as raw pairs and numbered by deck_from_entries — the single
  // authority for file-style line numbering, so overrides appended later
  // (line 0) get the usual whole-schedule-replacement semantics.
  std::vector<std::pair<std::string, std::string>> entries;
  const auto add = [&entries](const std::string& key,
                              const std::string& value) {
    entries.emplace_back(key, value);
  };
  // %.17g round-trips FP64 exactly through the strict parser.
  const auto num = [](double v) { return format("%.17g", v); };

  add("name", sc.name);
  add("element", sc.element);
  // Emitted unconditionally (defaults included): the checkpoint's embedded
  // deck must pin the evaluation path, or a resume could silently continue
  // a tabulated trajectory on the analytic kernels.
  add("pair_style", sc.pair_style);
  add("potential", sc.potential);
  add("geometry", sc.geometry);
  if (sc.geometry == "grain_boundary") {
    add("tilt_angle_deg", num(sc.tilt_angle_deg));
    add("gb_atoms", std::to_string(sc.gb_target_atoms));
  } else if (sc.replicate[0] > 0) {
    add("replicate", format("%d %d %d", sc.replicate[0], sc.replicate[1],
                            sc.replicate[2]));
  } else {
    add("scale", std::to_string(sc.scale));
  }
  if (sc.vacancy_fraction > 0.0) {
    add("vacancy_fraction", num(sc.vacancy_fraction));
  }
  add("backend", sc.backend);
  add("dt", num(sc.dt));
  add("swap_interval", std::to_string(sc.swap_interval));
  add("rescale_interval", std::to_string(sc.rescale_interval));
  add("seed", std::to_string(sc.seed));
  // dist.* keys only under a ranks: backend (the parser rejects them
  // elsewhere) and only off their defaults, so round-trips of non-ranks
  // scenarios are byte-identical to before the keys existed. A checkpoint
  // resumed with --backend=ranks:4 re-ranks: the slab partition is derived
  // from the rank count at restore, never stored.
  if (parse_backend(sc.backend).backend == engine::Backend::kRanks) {
    // Transport is emitted unconditionally: a checkpoint-embedded deck
    // must pin the carrier its run used, not inherit a future default.
    add("dist.transport", sc.dist_transport);
    if (sc.dist_timeout_s != 300.0) add("dist.timeout", num(sc.dist_timeout_s));
    if (sc.dist_kill_rank >= 0) {
      add("dist.kill_rank", std::to_string(sc.dist_kill_rank));
      add("dist.kill_step", std::to_string(sc.dist_kill_step));
    }
  }
  for (const auto& st : sc.schedule) {
    switch (st.kind) {
      case Stage::Kind::kThermalize:
        add("thermalize", num(st.t0));
        break;
      case Stage::Kind::kEquilibrate:
      case Stage::Kind::kQuench:
        add(st.name(), num(st.t0) + " " + std::to_string(st.steps));
        break;
      case Stage::Kind::kRamp:
        add("ramp", num(st.t0) + " " + num(st.t1) + " " +
                        std::to_string(st.steps));
        break;
      case Stage::Kind::kRun:
        add("run", std::to_string(st.steps));
        break;
    }
  }
  if (!sc.xyz_path.empty()) {
    add("xyz", sc.xyz_path);
    add("xyz_every", std::to_string(sc.xyz_every));
  }
  if (!sc.thermo_path.empty()) {
    add("thermo", sc.thermo_path);
    add("thermo_every", std::to_string(sc.thermo_every));
    add("thermo_format", sc.thermo_format);
  }
  if (!sc.summary_path.empty()) add("summary", sc.summary_path);
  if (sc.observe.enabled()) {
    std::string probes;
    for (const auto& kind : sc.observe.probes) {
      probes += (probes.empty() ? "" : " ") + kind;
    }
    add("observe.probes", probes);
    add("observe.every", std::to_string(sc.observe.every));
    const auto add_cadence = [&](const char* key, long every) {
      if (every > 0) add(key, std::to_string(every));
    };
    add_cadence("observe.rdf_every", sc.observe.rdf_every);
    add_cadence("observe.msd_every", sc.observe.msd_every);
    add_cadence("observe.vacf_every", sc.observe.vacf_every);
    add_cadence("observe.defects_every", sc.observe.defects_every);
    add("observe.format", sc.observe.format);
    if (!sc.observe.prefix.empty()) add("observe.prefix", sc.observe.prefix);
    if (sc.observe.has("rdf")) {
      if (sc.observe.rdf_rcut > 0.0) {
        add("observe.rdf_rcut", num(sc.observe.rdf_rcut));
      }
      add("observe.rdf_bins", std::to_string(sc.observe.rdf_bins));
    }
    if (sc.observe.has("defects")) {
      add("observe.csp_threshold", num(sc.observe.csp_threshold));
      if (sc.observe.gb_axis >= 0) {
        add("observe.gb_axis",
            std::string(1, "xyz"[static_cast<std::size_t>(
                                sc.observe.gb_axis)]));
      }
    }
  }
  if (sc.checkpoint_every > 0) {
    add("checkpoint.every", std::to_string(sc.checkpoint_every));
    add("checkpoint.path", sc.checkpoint_path);
  }
  if (!sc.telemetry_trace_path.empty()) {
    add("telemetry.trace", sc.telemetry_trace_path);
  }
  if (!sc.telemetry_metrics_path.empty()) {
    add("telemetry.metrics", sc.telemetry_metrics_path);
  }
  if (sc.telemetry_snapshot_s > 0.0) {
    add("telemetry.snapshot", num(sc.telemetry_snapshot_s));
  }
  // health.* keys: only non-default settings are emitted, and dependent
  // band/timeout keys only when their detector is enabled (the parser
  // rejects them otherwise, and round-tripping must stay clean).
  {
    const telemetry::HealthConfig def;
    const auto act = [](telemetry::HealthAction a) {
      return std::string(telemetry::health_action_name(a));
    };
    if (sc.health.nan != def.nan) add("health.nan", act(sc.health.nan));
    if (sc.health.energy_drift != def.energy_drift) {
      add("health.energy_drift", act(sc.health.energy_drift));
    }
    if (sc.health.energy_drift != telemetry::HealthAction::kOff &&
        sc.health.energy_band != def.energy_band) {
      add("health.energy_band", num(sc.health.energy_band));
    }
    if (sc.health.temperature != def.temperature) {
      add("health.temperature", act(sc.health.temperature));
    }
    if (sc.health.temperature != telemetry::HealthAction::kOff &&
        sc.health.temperature_band_K != def.temperature_band_K) {
      add("health.temperature_band", num(sc.health.temperature_band_K));
    }
    if (sc.health.stall != def.stall) add("health.stall", act(sc.health.stall));
    if (sc.health.stall != telemetry::HealthAction::kOff &&
        sc.health.stall_timeout_s != def.stall_timeout_s) {
      add("health.stall_timeout", num(sc.health.stall_timeout_s));
    }
    if (sc.health.thermo_tail != def.thermo_tail) {
      add("health.thermo_tail", std::to_string(sc.health.thermo_tail));
    }
    if (!sc.health.bundle_dir.empty()) {
      add("health.bundle", sc.health.bundle_dir);
    }
    if (sc.health.inject_nan_step > 0 &&
        sc.health.nan != telemetry::HealthAction::kOff) {
      add("health.inject_nan", std::to_string(sc.health.inject_nan_step));
    }
  }
  return deck_from_entries(entries, "<scenario>");
}

MaterialFacts material_facts(const Scenario& sc) {
  if (sc.pair_style == "lj") {
    const auto m = eam::lj_parameters(sc.element);
    return MaterialFacts{m.structure, m.lattice_constant()};
  }
  const auto params = eam::zhou_parameters(sc.element);
  return MaterialFacts{params.structure, params.lattice_constant()};
}

obs::Material material_for(const Scenario& sc) {
  const auto facts = material_facts(sc);
  return obs::Material{facts.lattice_constant,
                       facts.structure == "fcc" ? 12 : 8};
}

lattice::Structure build_structure(const Scenario& sc, StructureInfo* info) {
  const auto facts = material_facts(sc);
  StructureInfo local;
  lattice::Structure s;
  if (sc.geometry == "grain_boundary") {
    lattice::GrainBoundaryParams gb;
    gb.element = sc.element;
    gb.tilt_angle_deg = sc.tilt_angle_deg;
    auto built = lattice::make_grain_boundary_with_atom_count(
        gb, sc.gb_target_atoms);
    local.gb_fused_atoms = built.fused_atoms;
    s = std::move(built.structure);
  } else {
    const bool bulk = sc.geometry == "bulk";
    const std::array<bool, 3> periodic = bulk
                                             ? std::array<bool, 3>{true, true, true}
                                             : std::array<bool, 3>{false, false, false};
    if (sc.replicate[0] > 0) {
      const auto cell =
          lattice::UnitCell::of(facts.structure, facts.lattice_constant);
      s = lattice::replicate(cell, sc.replicate[0], sc.replicate[1],
                             sc.replicate[2], /*type=*/0, periodic);
    } else {
      WSMD_REQUIRE(!bulk,
                   "geometry=bulk needs an explicit 'replicate' (the paper "
                   "slabs are open-boundary)");
      s = lattice::paper_slab(sc.element, sc.scale);
    }
  }
  if (sc.vacancy_fraction > 0.0) {
    // Defect stream is derived from — but independent of — the thermal
    // seed, so changing vacancy_fraction never perturbs the velocities.
    Rng vac_rng(sc.seed ^ 0xD1CEB00CULL);
    local.vacancies_removed =
        lattice::apply_vacancies(s, sc.vacancy_fraction, vac_rng);
  }
  local.atoms = s.size();
  if (info) *info = local;
  return s;
}

std::unique_ptr<engine::Engine> build_engine(
    const Scenario& sc, const lattice::Structure& s,
    const std::string& backend_override, const std::string& scratch_dir) {
  const BackendSpec bs = parse_backend(
      backend_override.empty() ? sc.backend : backend_override);
  eam::EamPotentialPtr potential;
  if (sc.pair_style == "lj") {
    potential = std::make_shared<eam::LennardJones>(
        eam::LennardJones::for_element(sc.element));
  } else {
    const auto params = eam::zhou_parameters(sc.element);
    potential =
        std::make_shared<eam::ZhouEam>(sc.element, params.paper_cutoff());
  }

  engine::EngineConfig config;
  const bool tabulated = sc.potential == "tabulated";
  config.reference.dt = sc.dt;
  config.reference.tabulated = tabulated;
  // `reference:N` spins up the deterministic threaded force sweep; the
  // trajectory is bitwise-identical at any N (see md/force_eam.hpp).
  config.reference.threads = bs.threads;
  config.wafer.dt = sc.dt;
  config.wafer.tabulated = tabulated;
  config.wafer.swap_interval = sc.swap_interval;
  config.wafer.mapping.cell_size = material_facts(sc).lattice_constant;
  config.threads = bs.threads;
  config.ranks = bs.ranks;
  config.rank_threads = bs.threads;
  config.dist_timeout_ms = static_cast<int>(sc.dist_timeout_s * 1000.0);
  config.dist_kill_rank = sc.dist_kill_rank;
  config.dist_kill_step = sc.dist_kill_step;
  config.dist_scratch = scratch_dir;
  config.dist_transport = sc.dist_transport;
  return engine::make_engine(bs.backend, s, std::move(potential), config);
}

}  // namespace wsmd::scenario
