#pragma once

/// \file runner.hpp
/// Executes a Scenario end-to-end on any Engine backend.
///
/// The runner is backend-agnostic: thermostat stages are implemented purely
/// through the Engine surface (thermo + velocities + set_velocities), so
/// equilibrate/ramp/quench behave identically on the FP64 reference and the
/// FP32 wafer backends — which is what makes golden-run replay across
/// backends meaningful. While running it streams XYZ trajectory frames and
/// a thermo log (src/io), and finishes by writing a machine-readable
/// summary in the BENCH_*.json envelope (util/bench_json).

#include <functional>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "scenario/scenario.hpp"

namespace wsmd::scenario {

struct RunOptions {
  /// Non-empty: run on this backend instead of the deck's
  /// (reference|wafer|sharded|sharded:N).
  std::string backend_override;
  /// Directory prefixed to relative output paths ("" = current directory).
  std::string output_dir;
  /// Progress sink (one human-readable line per event); empty = silent.
  std::function<void(const std::string&)> log;
};

struct StageResult {
  std::string label;      ///< e.g. "equilibrate 290 K / 20 steps"
  const char* kind = "";  ///< stage keyword
  long steps = 0;
  engine::Thermo end;     ///< thermo after the stage's last step
};

/// One streaming observable's output bookkeeping.
struct ProbeOutput {
  std::string kind;      ///< rdf | msd | vacf | defects
  std::string path;      ///< resolved output file
  std::size_t samples = 0;
};

struct ScenarioResult {
  std::string scenario;
  std::string backend_name;   ///< as reported by the engine
  StructureInfo structure;
  long total_steps = 0;
  double wall_seconds = 0.0;  ///< host wall time of the stepping loop
  engine::Thermo final_thermo;
  std::vector<StageResult> stages;
  std::size_t xyz_frames = 0;
  std::size_t thermo_samples = 0;
  std::vector<ProbeOutput> observables;  ///< one per configured probe
  // Resolved output paths ("" = output disabled).
  std::string xyz_path;
  std::string thermo_path;
  std::string summary_path;
};

/// Run the scenario: build structure + engine, execute the schedule, stream
/// outputs. Throws wsmd::Error on invalid configuration or I/O failure.
ScenarioResult run_scenario(const Scenario& sc, const RunOptions& opt = {});

/// Resolve an output path against a run's output directory (relative paths
/// are prefixed; parent directories are created). Shared by the runner and
/// the offline analyzer so both lay files out identically.
std::string resolve_output_path(const std::string& path,
                                const std::string& dir);

/// Collect each probe's {kind, path, samples} from a finished bus and log
/// one line per probe via `log` (when set). Shared by the runner and the
/// offline analyzer so their reports cannot drift.
std::vector<ProbeOutput> collect_probe_outputs(
    const obs::ObserverBus& bus,
    const std::function<void(const std::string&)>& log);

}  // namespace wsmd::scenario
