#pragma once

/// \file runner.hpp
/// Executes a Scenario end-to-end on any Engine backend.
///
/// The runner is backend-agnostic: thermostat stages are implemented purely
/// through the Engine surface (thermo + velocities + set_velocities), so
/// equilibrate/ramp/quench behave identically on the FP64 reference and the
/// FP32 wafer backends — which is what makes golden-run replay across
/// backends meaningful. While running it streams XYZ trajectory frames and
/// a thermo log (src/io), and finishes by writing a machine-readable
/// summary in the BENCH_*.json envelope (util/bench_json).

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "lattice/lattice.hpp"
#include "scenario/scenario.hpp"
#include "telemetry/health.hpp"
#include "telemetry/snapshot.hpp"

namespace wsmd::io {
struct CheckpointData;
}  // namespace wsmd::io

namespace wsmd::scenario {

/// Periodic progress snapshot delivered on a wall-clock interval while the
/// step loop runs (RunOptions::progress) — the `wsmd --progress`
/// heartbeat. Decoupled from the thermo cadence so a stage with sparse
/// thermo rows still shows a live ETA.
struct ProgressInfo {
  long step = 0;           ///< engine step just completed
  long total_steps = 0;    ///< schedule total
  double wall_seconds = 0.0;
  double ns_per_day = 0.0; ///< simulated time throughput at the current rate
  double eta_seconds = 0.0;
  bool final = false;      ///< last report of the run
};

struct RunOptions {
  /// Non-empty: run on this backend instead of the deck's
  /// (reference|reference:N|wafer|sharded|sharded:N).
  std::string backend_override;
  /// Directory prefixed to relative output paths ("" = current directory).
  std::string output_dir;
  /// Progress sink (one human-readable line per event); empty = silent.
  /// A stall-warn event is reported through this sink from the watchdog
  /// thread — the sink must be thread-safe when health.stall is enabled.
  std::function<void(const std::string&)> log;
  /// Progress heartbeat, fired every `progress_interval_s` of wall-clock
  /// plus once at the end.
  std::function<void(const ProgressInfo&)> progress;
  /// Wall-clock seconds between progress heartbeats (<= 0 fires after
  /// every step).
  double progress_interval_s = 1.0;
  /// Arm a telemetry session (aggregates only) even when the scenario
  /// writes no trace/metrics file — `wsmd report` needs the measured span
  /// totals without forcing an export path.
  bool collect_telemetry = false;
  /// Non-empty: build the engine through this hook instead of
  /// build_engine — the watchdog tests inject fault-wrapped engines here.
  std::function<std::unique_ptr<engine::Engine>(const Scenario&,
                                                const lattice::Structure&)>
      engine_factory;
  /// Override for the stall-abort path (called on the watchdog thread;
  /// the runner thread is wedged). Default: write the partial diagnostic
  /// bundle (thermo tail + health.json) and terminate the process with
  /// exit code 3. Tests install a capture hook.
  telemetry::HealthMonitor::EventSink stall_handler;
};

struct StageResult {
  std::string label;      ///< e.g. "equilibrate 290 K / 20 steps"
  const char* kind = "";  ///< stage keyword
  long steps = 0;
  engine::Thermo end;     ///< thermo after the stage's last step
};

/// One streaming observable's output bookkeeping.
struct ProbeOutput {
  std::string kind;      ///< rdf | msd | vacf | defects
  std::string path;      ///< resolved output file
  std::size_t samples = 0;
};

struct ScenarioResult {
  std::string scenario;
  std::string backend_name;   ///< as reported by the engine
  StructureInfo structure;
  long total_steps = 0;
  double wall_seconds = 0.0;  ///< host wall time of the stepping loop
  engine::Thermo final_thermo;
  std::vector<StageResult> stages;
  std::size_t xyz_frames = 0;
  std::size_t thermo_samples = 0;
  std::vector<ProbeOutput> observables;  ///< one per configured probe
  // Resolved output paths ("" = output disabled).
  std::string xyz_path;
  std::string thermo_path;
  std::string summary_path;
  // Checkpoint/restart bookkeeping.
  std::string checkpoint_path;           ///< resolved pattern ("" = off)
  std::size_t checkpoints_written = 0;
  long resumed_from_step = -1;           ///< -1 = fresh run
  // Telemetry exports ("" = not written) and the engine's cost-model
  // breakdown of the run (valid only on wafer backends).
  std::string trace_path;
  std::string metrics_path;
  engine::ModeledPhaseCost modeled;
  /// Probes whose output stream failed mid-run (io::SeriesWriter surfaced
  /// a write/flush failure instead of silently dropping rows).
  std::size_t probe_output_failures = 0;
  /// Interval snapshots streamed into the metrics file (empty unless
  /// telemetry.snapshot > 0) — the dashboard's time series.
  std::vector<telemetry::SnapshotRow> snapshots;
  /// Health-watchdog events that fired during the run (warns; an abort
  /// raises HealthAbortError instead of returning).
  std::size_t health_events = 0;
};

/// Thrown when the run is interrupted via request_interrupt() (the SIGINT/
/// SIGTERM path): the step loop stops at a step boundary after finalizing
/// the telemetry exports, so a killed run still leaves its artifacts.
class InterruptedError : public Error {
 public:
  explicit InterruptedError(long step);
  long step() const { return step_; }

 private:
  long step_ = 0;
};

/// Async-signal-safe interrupt request: the step loop checks the flag at
/// every step boundary and unwinds with InterruptedError (after
/// finalizing telemetry exports). The driver's signal handlers call this.
void request_interrupt();
bool interrupt_requested();
/// Clear the flag (tests; a new run after a handled interrupt).
void reset_interrupt();

/// Run the scenario: build structure + engine, execute the schedule, stream
/// outputs. Throws wsmd::Error on invalid configuration or I/O failure,
/// telemetry::HealthAbortError when an abort-configured health detector
/// trips (diagnostic bundle already written), and InterruptedError when
/// request_interrupt() fired. On every one of those paths the telemetry
/// exports (trace + metrics, snapshots included) are finalized first.
ScenarioResult run_scenario(const Scenario& sc, const RunOptions& opt = {});

/// Continue a checkpointed run: rebuild the structure, restore engine /
/// probe / RNG state from `ckpt`, and execute the remaining schedule from
/// the saved mid-stage cursor. `sc` must be the scenario rebuilt from the
/// checkpoint's embedded deck (scenario_from_deck over its entries), plus
/// any compatible overrides — outputs and backend may change freely (the
/// state transfers across backends); schedule or structure changes are
/// rejected. Output files restart at the resume step: the thermo log and
/// probe streams cover [resume step, end], finish-time tables (RDF) and
/// summaries cover the whole trajectory, so point --output-dir somewhere
/// fresh to keep the original partial outputs. Resuming on the backend
/// that wrote the checkpoint continues the trajectory bit-for-bit.
ScenarioResult resume_scenario(const Scenario& sc,
                               const io::CheckpointData& ckpt,
                               const RunOptions& opt = {});

/// Join a path under a run's output directory (relative paths are
/// prefixed, absolute ones pass through; no filesystem side effects).
/// Used directly for the checkpoint pattern, whose `*` placeholder
/// expands to directory components only at write time.
std::string join_output_path(const std::string& path,
                             const std::string& dir);

/// join_output_path plus eager parent-directory creation. Shared by the
/// runner and the offline analyzer so both lay files out identically.
std::string resolve_output_path(const std::string& path,
                                const std::string& dir);

/// The thermostat-rescale schedule, factored out so tests can pin it per
/// stage kind: a thermostatted stage (equilibrate / ramp / quench)
/// rescales after every `rescale_interval`-th step of the stage and
/// always after the stage's final step (so short stages thermostat at
/// least once and ramps end exactly at t1); thermalize and run never
/// rescale. `steps_done` counts completed steps within the stage (1-based).
bool stage_rescales_after(const Stage& st, long steps_done,
                          int rescale_interval);

/// Collect each probe's {kind, path, samples} from a finished bus and log
/// one line per probe via `log` (when set). Shared by the runner and the
/// offline analyzer so their reports cannot drift.
std::vector<ProbeOutput> collect_probe_outputs(
    const obs::ObserverBus& bus,
    const std::function<void(const std::string&)>& log);

}  // namespace wsmd::scenario
