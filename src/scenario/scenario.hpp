#pragma once

/// \file scenario.hpp
/// The declarative simulation description the `wsmd` driver executes.
///
/// A Scenario names everything needed to run one workload end-to-end on any
/// backend: structure (element, geometry, replication, defects), thermostat
/// schedule, backend selection, and outputs. It is built from a deck
/// (scenario/deck.hpp) — unknown keys are rejected so a typo'd deck fails
/// loudly instead of silently simulating the default — and the same
/// `key=value` tokens work as CLI overrides.
///
/// Recognized keys:
///   name, element                  — identification / parameter-set lookup
///   pair_style = eam|lj            — interaction family: Zhou EAM metals
///                                    (default) or built-in noble-gas LJ
///                                    (pure pair potential; the engines
///                                    skip the density pass)
///   potential = tabulated|analytic — force-evaluation path: flattened
///                                    r²-indexed profile tables (default,
///                                    the paper's per-core table copies)
///                                    or the analytic functional form
///   geometry  = slab|bulk|grain_boundary
///   scale     = N                  — paper_slab divisor (geometry=slab,
///                                    when no explicit `replicate`)
///   replicate = NX NY NZ           — explicit unit-cell replication
///   vacancy_fraction = F           — random vacancies (slab/bulk)
///   tilt_angle_deg = D, gb_atoms = N — bicrystal controls (grain_boundary)
///   backend  = reference|reference:N|wafer|sharded|sharded:N|
///              ranks:M|ranks:MxN   — ranks: forks M rank processes, each
///                                    owning a row slab of the core grid
///                                    (N shard threads per rank; see
///                                    src/dist/)
///   dt, swap_interval, rescale_interval, seed
///   dist.transport = shm|socket    — ranks: backends only: halo payload
///                                    carrier — per-pair POSIX shared-memory
///                                    rings (default) or the AF_UNIX peer
///                                    sockets; trajectories are bitwise
///                                    transport-invariant
///   dist.timeout = S               — ranks: backends only: per-message
///                                    send/recv deadline in seconds before
///                                    a rank is declared dead (default 300)
///   dist.kill_rank = R             — fault drill (ranks: only): rank R
///   dist.kill_step = K               exits hard before its K-th step, so
///                                    the dead-rank path is rehearsable
///                                    from a plain deck (both or neither)
///   thermalize = T                 — schedule stages, in deck order:
///   equilibrate = T STEPS            one-shot MB velocities; velocity-
///   ramp = T0 T1 STEPS               rescale toward T; linear target;
///   quench = T STEPS                 rescale toward a cold T; free NVE
///   run = STEPS                      (all rescaling stages honor
///                                    rescale_interval + final step)
///   xyz = PATH, xyz_every = N      — trajectory output
///   thermo = PATH, thermo_every = N, thermo_format = csv|jsonl
///   summary = PATH                 — machine-readable run summary (JSON)
///   observe.probes = P...          — streaming observables (src/obs):
///   observe.every = N                any of rdf msd vacf defects; sampled
///   observe.<probe>_every = N        every N steps (per-probe override);
///   observe.format = csv|jsonl       each probe writes PREFIX.<probe>.csv
///   observe.prefix = PREFIX          (default PREFIX = scenario name)
///   observe.rdf_rcut = R           — g(r) range (default 1.8 a0)
///   observe.rdf_bins = N           — histogram bins
///   observe.csp_threshold = X      — defect CSP threshold (A^2)
///   observe.gb_axis = x|y|z        — GB mean-plane tracking axis
///                                    (geometry=grain_boundary only)
///   checkpoint.every = N           — write a restart checkpoint every N
///                                    steps (io/checkpoint; resume with
///                                    `wsmd resume CKPT`)
///   checkpoint.path = PATH         — checkpoint file (default
///                                    <name>.ckpt); a `*` is replaced by
///                                    the step number (keeps every
///                                    checkpoint instead of overwriting)
///   telemetry.trace = PATH|auto|off — chrome://tracing timeline of the
///                                    run (src/telemetry); `auto` writes
///                                    <name>.trace.json, `off` disables
///                                    (for resume overrides)
///   telemetry.metrics = PATH|auto|off — span/counter aggregates as JSON
///                                    lines; `auto` = <name>.metrics.jsonl
///   telemetry.snapshot = S|off     — interval snapshots: every S seconds
///                                    of wall-clock, stream a throughput +
///                                    per-shard-load row into the metrics
///                                    file (implies telemetry.metrics)
///   health.nan = warn|abort|off    — run-health watchdog (telemetry/
///   health.energy_drift = ...        health.hpp). Detectors: non-finite
///   health.energy_band = F           thermo; relative |E-E0| > F during
///   health.temperature = ...         `run` stages; |T-target| > K during
///   health.temperature_band = K      thermostatted stages; no completed
///   health.stall = ...               step within S seconds. `abort`
///   health.stall_timeout = S         writes a diagnostic bundle
///   health.thermo_tail = K           (checkpoint, last-K thermo rows,
///   health.bundle = DIR              trace, health.json) into DIR
///                                    (default <name>.health) and exits
///                                    nonzero. Defaults: nan=warn, all
///                                    other detectors off.
///   health.inject_nan = STEP       — fault drill: poison one velocity
///                                    component before this 1-based step
///                                    of the first stepped stage

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "lattice/lattice.hpp"
#include "obs/factory.hpp"
#include "scenario/deck.hpp"
#include "telemetry/health.hpp"

namespace wsmd::scenario {

/// One thermostat-schedule stage.
struct Stage {
  enum class Kind {
    kThermalize,   ///< one-shot Maxwell-Boltzmann at t0 (no steps)
    kEquilibrate,  ///< velocity rescale toward t0 every rescale_interval
    kRamp,         ///< rescale toward a target sliding t0 -> t1
    kQuench,       ///< rescale toward a (cold) t0, same cadence
    kRun,          ///< free NVE
  };
  Kind kind = Kind::kRun;
  double t0 = 0.0;  ///< target temperature (K); start of ramp
  double t1 = 0.0;  ///< end-of-ramp temperature (K)
  long steps = 0;

  const char* name() const;
};

/// Parsed backend selector ("reference[:N]" | "wafer" | "sharded[:N]" |
/// "ranks:M[xN]").
struct BackendSpec {
  engine::Backend backend = engine::Backend::kReference;
  int threads = 1;  ///< worker count (reference/sharded; 0 = auto) or, for
                    ///< ranks:MxN, shard threads per rank process
  int ranks = 2;    ///< rank-process count (ranks: backends only)

  bool is_wafer() const { return backend != engine::Backend::kReference; }
};

BackendSpec parse_backend(const std::string& spec);

struct Scenario {
  std::string name = "scenario";
  std::string element = "Cu";
  std::string pair_style = "eam";       ///< eam | lj
  std::string potential = "tabulated";  ///< tabulated | analytic
  std::string geometry = "slab";  ///< slab | bulk | grain_boundary
  int scale = 64;                 ///< paper_slab divisor
  std::array<int, 3> replicate = {0, 0, 0};  ///< 0 = use paper slab / scale
  double vacancy_fraction = 0.0;
  double tilt_angle_deg = 16.0;     ///< grain_boundary only
  std::size_t gb_target_atoms = 3000;  ///< grain_boundary only

  std::string backend = "reference";
  double dt = 0.002;        ///< ps
  int swap_interval = 0;    ///< wafer backends: atom-swap cadence (0 = off)
  int rescale_interval = 10;
  std::uint64_t seed = 2024;

  /// Distributed (ranks:) backend knobs; ignored elsewhere. The kill pair
  /// is the dead-rank fault drill (dist::DistributedConfig): rank
  /// `dist_kill_rank` exits hard before its `dist_kill_step`-th step.
  std::string dist_transport = "shm";  ///< halo carrier: "shm" | "socket"
  double dist_timeout_s = 300.0;  ///< per-message deadline before a rank
                                  ///< is declared dead
  int dist_kill_rank = -1;        ///< -1 = drill off
  long dist_kill_step = 0;

  std::vector<Stage> schedule;

  std::string xyz_path;       ///< empty = no trajectory
  long xyz_every = 10;
  std::string thermo_path;    ///< empty = no thermo log
  long thermo_every = 1;
  std::string thermo_format = "csv";
  std::string summary_path;   ///< empty = no summary file

  obs::ProbeSetConfig observe;  ///< empty probes = no observables

  /// Checkpoint/restart (io/checkpoint): write a restart file every
  /// `checkpoint_every` steps (0 = off) to `checkpoint_path` (defaults to
  /// "<name>.ckpt"; a `*` in the path is replaced with the step number so
  /// every checkpoint is kept instead of overwritten).
  std::string checkpoint_path;
  long checkpoint_every = 0;

  /// Telemetry exports (src/telemetry); empty = not written. The runner
  /// arms a collection session whenever either is set (trace-event capture
  /// only when `telemetry_trace_path` is).
  std::string telemetry_trace_path;
  std::string telemetry_metrics_path;

  /// Interval-snapshot cadence in wall-clock seconds (0 = end-of-run
  /// aggregates only). A positive cadence implies telemetry.metrics — the
  /// snapshots stream into the metrics file (telemetry/snapshot.hpp).
  double telemetry_snapshot_s = 0.0;

  /// Run-health watchdog configuration (telemetry/health.hpp). Default:
  /// NaN detection warns, every other detector off.
  telemetry::HealthConfig health;

  long total_steps() const;
};

/// Crystal facts of the scenario's material, resolved through its
/// pair_style (Zhou table for eam, built-in noble-gas table for lj) — the
/// single lookup the structure generators, probes, and engine mapping all
/// share.
struct MaterialFacts {
  std::string structure;          ///< "fcc" | "bcc"
  double lattice_constant = 0.0;  ///< conventional cubic a0 (A)
};
MaterialFacts material_facts(const Scenario& sc);

/// Material facts the probes derive defaults from (lattice constant,
/// FCC/BCC CSP coordination), looked up from the scenario's element.
obs::Material material_for(const Scenario& sc);

/// Build a Scenario from a deck; throws on unknown keys or invalid values.
/// Scalar keys are last-wins. Schedule keys are order-accumulating within
/// one source, so they get whole-schedule replacement instead: when any
/// schedule key appears as a CLI override (DeckEntry::line == 0), the
/// overrides define the entire schedule and the file's stages are dropped.
Scenario scenario_from_deck(const Deck& deck);

/// The inverse: emit a Scenario as a canonical deck whose entries carry
/// file-style line numbers (so later CLI overrides behave exactly as they
/// do against a deck file). Round-trips: scenario_from_deck applied to the
/// result reproduces the scenario. Checkpoints embed this deck, which is
/// what makes `wsmd resume CKPT` self-contained — the effective scenario
/// (original CLI overrides included) travels inside the checkpoint.
Deck deck_from_scenario(const Scenario& sc);

/// Structure generation bookkeeping the driver reports.
struct StructureInfo {
  std::size_t atoms = 0;
  std::size_t vacancies_removed = 0;
  std::size_t gb_fused_atoms = 0;
};

/// Generate the scenario's atomic configuration (deterministic for a given
/// scenario: defects draw from a seed-derived RNG stream).
lattice::Structure build_structure(const Scenario& sc, StructureInfo* info = nullptr);

/// Construct the scenario's engine over `s`. `backend_override`, when
/// non-empty, replaces the deck's backend selection. `scratch_dir` is the
/// parent for per-run scratch files (the ranks: backend's rank-suffixed
/// stderr logs live in a pid-suffixed subdirectory of it, so concurrent
/// runs sharing an --output-dir never collide); empty = system temp.
std::unique_ptr<engine::Engine> build_engine(
    const Scenario& sc, const lattice::Structure& s,
    const std::string& backend_override = "",
    const std::string& scratch_dir = "");

}  // namespace wsmd::scenario
