#pragma once

/// \file deck.hpp
/// Scenario deck parsing: the small declarative `key = value` format the
/// `wsmd` driver reads.
///
/// A deck is a text file of `key = value` lines; `#` starts a comment
/// (full-line or trailing), blank lines are skipped. Keys may repeat — the
/// thermostat schedule is built from the *order* of schedule keys
/// (`thermalize`, `equilibrate`, `ramp`, `quench`, `run`), so the parser
/// preserves entry order verbatim instead of collapsing into a map. CLI
/// overrides use the same `key=value` syntax and append to the deck.
///
///   # paper Cu slab, scaled for CI
///   name      = cu_slab
///   element   = Cu
///   geometry  = slab
///   scale     = 32
///   thermalize  = 290
///   equilibrate = 290 20
///   run         = 30
///   backend   = reference
///   thermo    = cu_slab.thermo.csv

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace wsmd::scenario {

/// One `key = value` line, in file order.
struct DeckEntry {
  std::string key;
  std::string value;
  int line = 0;  ///< 1-based source line (0 for CLI overrides)
};

struct Deck {
  std::string source;  ///< file path or "<cli>" for diagnostics
  std::vector<DeckEntry> entries;

  /// Last value for `key`, or `fallback` when absent (last wins so CLI
  /// overrides appended after the file take effect).
  std::string get(const std::string& key, const std::string& fallback = "") const;
  bool has(const std::string& key) const;

  /// Append an override (`key=value` or explicit pair).
  void set(const std::string& key, const std::string& value);
};

/// Parse deck text. Malformed lines (no '=', empty key) throw wsmd::Error
/// with the line number.
Deck parse_deck(std::istream& is, const std::string& source = "<stream>");
Deck parse_deck_string(const std::string& text,
                       const std::string& source = "<string>");
Deck parse_deck_file(const std::string& path);

/// Split a `key=value` token (as given on the CLI); throws when '=' is
/// missing or the key is empty.
DeckEntry parse_override(const std::string& token);

/// Rebuild a Deck from raw (key, value) pairs — a checkpoint's embedded
/// deck — assigning file-style line numbers so overrides appended later
/// (line 0) get the normal CLI-against-a-file semantics. Single authority
/// for the reconstruction: `wsmd resume` and the runner's resume
/// validation must agree on it.
Deck deck_from_entries(
    const std::vector<std::pair<std::string, std::string>>& entries,
    const std::string& source);

}  // namespace wsmd::scenario
