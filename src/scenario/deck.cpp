#include "scenario/deck.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace wsmd::scenario {

std::string Deck::get(const std::string& key,
                      const std::string& fallback) const {
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    if (it->key == key) return it->value;
  }
  return fallback;
}

bool Deck::has(const std::string& key) const {
  for (const auto& e : entries) {
    if (e.key == key) return true;
  }
  return false;
}

void Deck::set(const std::string& key, const std::string& value) {
  entries.push_back({key, value, 0});
}

Deck parse_deck(std::istream& is, const std::string& source) {
  Deck deck;
  deck.source = source;
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    // Strip comments: '#' opens one only at line start or after
    // whitespace, so a '#' embedded in a value ("summary = out#1.json")
    // survives — matching how the same token behaves as a CLI override.
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (line[i] == '#' &&
          (i == 0 || line[i - 1] == ' ' || line[i - 1] == '\t')) {
        line.erase(i);
        break;
      }
    }
    const std::string stripped = trim(line);
    if (stripped.empty()) continue;
    const auto eq = stripped.find('=');
    WSMD_REQUIRE(eq != std::string::npos,
                 source << ":" << lineno << ": expected 'key = value', got '"
                        << stripped << "'");
    DeckEntry entry;
    entry.key = trim(stripped.substr(0, eq));
    entry.value = trim(stripped.substr(eq + 1));
    entry.line = lineno;
    WSMD_REQUIRE(!entry.key.empty(),
                 source << ":" << lineno << ": empty key");
    deck.entries.push_back(std::move(entry));
  }
  return deck;
}

Deck parse_deck_string(const std::string& text, const std::string& source) {
  std::istringstream is(text);
  return parse_deck(is, source);
}

Deck parse_deck_file(const std::string& path) {
  std::ifstream is(path);
  WSMD_REQUIRE(is.good(), "cannot open deck '" << path << "'");
  return parse_deck(is, path);
}

DeckEntry parse_override(const std::string& token) {
  const auto eq = token.find('=');
  WSMD_REQUIRE(eq != std::string::npos,
               "override '" << token << "' is not key=value");
  DeckEntry entry;
  entry.key = trim(token.substr(0, eq));
  entry.value = trim(token.substr(eq + 1));
  WSMD_REQUIRE(!entry.key.empty(), "override '" << token << "' has no key");
  return entry;
}

Deck deck_from_entries(
    const std::vector<std::pair<std::string, std::string>>& entries,
    const std::string& source) {
  Deck deck;
  deck.source = source;
  deck.entries.reserve(entries.size());
  for (const auto& [key, value] : entries) {
    deck.entries.push_back(
        {key, value, static_cast<int>(deck.entries.size()) + 1});
  }
  return deck;
}

}  // namespace wsmd::scenario
