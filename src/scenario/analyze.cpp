#include "scenario/analyze.hpp"

#include "io/xyz.hpp"
#include "util/bench_json.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

namespace wsmd::scenario {

namespace {

/// Pull the step number out of a frame comment ("... step=N ..."), as
/// written by the runner's trajectory stream. Returns false for foreign
/// trajectories without the token.
bool parse_step_token(const std::string& comment, long& step) {
  for (const auto& token : split_whitespace(comment)) {
    if (starts_with(token, "step=")) {
      return parse_long_strict(token.substr(5), step);
    }
  }
  return false;
}

}  // namespace

AnalyzeResult analyze_trajectory(const Scenario& sc,
                                 const std::string& xyz_path,
                                 const AnalyzeOptions& opt) {
  const auto say = [&opt](const std::string& line) {
    if (opt.log) opt.log(line);
  };
  WSMD_REQUIRE(sc.observe.enabled(),
               "deck configures no observables — add observe.probes");

  AnalyzeResult result;
  result.scenario = sc.name;
  result.trajectory_path = xyz_path;

  // The deck rebuilds what the trajectory lacks: box and material.
  const auto structure = build_structure(sc);

  auto obs_config = sc.observe;
  obs_config.prefix =
      resolve_output_path(obs_config.effective_prefix(sc.name),
                          opt.output_dir) +
      ".analysis";
  auto bus = obs::make_observer_bus(obs_config, material_for(sc),
                                    /*with_velocities=*/false,
                                    &result.skipped_probes);
  for (const auto& kind : result.skipped_probes) {
    say(format("  warning: skipping probe '%s' — it needs velocities, and "
               "an XYZ trajectory stores only positions",
               kind.c_str()));
  }

  const auto frames = io::read_xyz_file(xyz_path);
  WSMD_REQUIRE(!frames.empty(), "trajectory '" << xyz_path << "' is empty");
  say(format("%s: replaying %zu frames of %s over %zu probes",
             sc.name.c_str(), frames.size(), xyz_path.c_str(), bus->size()));

  long prev_step = -1;
  for (std::size_t k = 0; k < frames.size(); ++k) {
    const auto& frame = frames[k];
    WSMD_REQUIRE(frame.size() == structure.size(),
                 "frame " << k << " has " << frame.size()
                          << " atoms but the scenario builds "
                          << structure.size()
                          << " — trajectory/deck mismatch");
    if (k == 0) {
      for (std::size_t i = 0; i < frame.species.size(); ++i) {
        WSMD_REQUIRE(frame.species[i] == sc.element,
                     "trajectory species '" << frame.species[i]
                                            << "' does not match deck "
                                               "element '"
                                            << sc.element << "'");
      }
    }
    long step = 0;
    if (!parse_step_token(frame.comment, step)) {
      // Foreign trajectory without step markers: assume the deck's xyz
      // cadence so the time axis stays physically scaled.
      step = static_cast<long>(k) * sc.xyz_every;
    }
    WSMD_REQUIRE(step > prev_step, "trajectory steps are not increasing ("
                                       << prev_step << " -> " << step
                                       << " at frame " << k << ")");
    prev_step = step;

    obs::Frame f;
    f.step = step;
    f.time_ps = static_cast<double>(step) * sc.dt;
    f.box = &structure.box;
    f.positions = &frame.positions;
    f.velocities = nullptr;
    // Stored frames are the sampling: every probe sees every frame.
    bus->observe_all(f);
  }
  result.frames = frames.size();

  bus->finish();
  result.observables = collect_probe_outputs(*bus, opt.log);

  result.summary_path = obs_config.prefix + ".summary.json";
  BenchJson summary("analyze_" + sc.name);
  summary.meta()
      .set("scenario", sc.name)
      .set("trajectory", xyz_path)
      .set("element", sc.element)
      .set("geometry", sc.geometry)
      .set("atoms", structure.size())
      .set("frames", result.frames)
      .set("dt_ps", sc.dt);
  if (!result.skipped_probes.empty()) {
    std::string joined;
    for (const auto& kind : result.skipped_probes) {
      joined += (joined.empty() ? "" : " ") + kind;
    }
    summary.meta().set("skipped_probes", joined);
  }
  bus->summarize(summary.meta());
  summary.write_to(result.summary_path);
  say("  summary -> " + result.summary_path);
  return result;
}

}  // namespace wsmd::scenario
