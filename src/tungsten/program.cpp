#include "tungsten/program.hpp"

#include "util/error.hpp"

namespace wsmd::tungsten {

Thread& Thread::send_vector(int vc, std::vector<std::uint32_t> data) {
  Op op;
  op.kind = Op::Kind::SendVector;
  op.vc = vc;
  op.data = std::move(data);
  ops.push_back(std::move(op));
  return *this;
}

Thread& Thread::send_commands(int vc, std::vector<wse::RouterCmd> cmds) {
  Op op;
  op.kind = Op::Kind::SendCommandList;
  op.vc = vc;
  op.commands = std::move(cmds);
  ops.push_back(std::move(op));
  return *this;
}

Thread& Thread::receive_into(int vc, std::string buffer,
                             std::size_t expected_words) {
  Op op;
  op.kind = Op::Kind::ReceiveInto;
  op.vc = vc;
  op.buffer = std::move(buffer);
  op.expected_words = expected_words;
  ops.push_back(std::move(op));
  return *this;
}

Machine::Machine(int width, int height, int num_vcs)
    : fabric_(width, height, num_vcs) {}

void Machine::load(int x, int y, TileProgram program) {
  tiles_[{x, y}] = LoadedTile{std::move(program), {}};
}

std::uint64_t Machine::run(std::uint64_t max_cycles) {
  // Lower: each thread's Send ops on a VC collapse into one queued fabric
  // send (data vector followed by its command wavelet), exactly how the
  // hardware's send thread streams a memory vector then a control wavelet.
  for (auto& [xy, tile] : tiles_) {
    const auto [x, y] = xy;
    std::map<int, std::pair<std::vector<std::uint32_t>,
                            std::vector<wse::RouterCmd>>>
        per_vc;
    for (const Thread& th : tile.program.threads) {
      for (const Op& op : th.ops) {
        switch (op.kind) {
          case Op::Kind::SendVector: {
            auto& entry = per_vc[op.vc];
            WSMD_REQUIRE(entry.first.empty(),
                         "one send vector per VC per exchange");
            entry.first = op.data;
            break;
          }
          case Op::Kind::SendCommandList: {
            auto& entry = per_vc[op.vc];
            WSMD_REQUIRE(entry.second.empty(),
                         "one command list per VC per exchange");
            entry.second = op.commands;
            break;
          }
          case Op::Kind::ReceiveInto:
            break;  // resolved after the run
        }
      }
    }
    bool first_axis_send = true;
    for (auto& [vc, payload] : per_vc) {
      // Loopback on the first channel of each send pair so a tile's own
      // payload is gathered exactly once (mirrors the exchange driver).
      fabric_.queue_send(x, y, vc, std::move(payload.first),
                         std::move(payload.second), first_axis_send);
      first_axis_send = false;
    }
  }

  const std::uint64_t cycles = fabric_.run_until_quiescent(max_cycles);

  // Resolve receives.
  for (auto& [xy, tile] : tiles_) {
    const auto [x, y] = xy;
    for (const Thread& th : tile.program.threads) {
      for (const Op& op : th.ops) {
        if (op.kind != Op::Kind::ReceiveInto) continue;
        const auto& words = fabric_.received(x, y, op.vc);
        if (op.expected_words != 0) {
          WSMD_REQUIRE(words.size() == op.expected_words,
                       "tile (" << x << "," << y << ") vc " << op.vc
                                << " received " << words.size()
                                << " words, expected " << op.expected_words);
        }
        auto& buf = tile.buffers[op.buffer];
        buf.insert(buf.end(), words.begin(), words.end());
      }
    }
  }
  return cycles;
}

const std::vector<std::uint32_t>& Machine::buffer(
    int x, int y, const std::string& name) const {
  const auto it = tiles_.find({x, y});
  WSMD_REQUIRE(it != tiles_.end(), "no program loaded at (" << x << "," << y << ")");
  const auto bit = it->second.buffers.find(name);
  WSMD_REQUIRE(bit != it->second.buffers.end(),
               "no buffer '" << name << "' at (" << x << "," << y << ")");
  return bit->second;
}

}  // namespace wsmd::tungsten
