#pragma once

/// \file program.hpp
/// A miniature "Tungsten"-style per-tile dataflow program representation.
///
/// The paper implements its MD kernel in Tungsten, a WSE domain-specific
/// language whose neighborhood-exchange stage reads (paper Fig. 4c):
///
///     parallel {
///       serial { lr[] <- atom;  lr[] <- {(ADV,ADV,RST),(ADV)}; }
///       serial { rl[] <- atom;  rl[] <- {(ADV,ADV,RST),(ADV)}; }
///       forall j in [0,b+1)  row[j]   <- lr[];
///       forall j in [0,b+1)  row[j+b] <- rl[];
///     }
///
/// This module reproduces that programming model: a TileProgram is a
/// `parallel` set of `serial` threads (the WSE core runs multiple hardware
/// threads; sends and receives are single vector-move instructions against
/// fabric channels). The Machine lowers programs onto the wavelet-level
/// Fabric and executes them, so the exchange used by the MD core can be
/// *written the way the paper writes it* and validated cycle by cycle.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "wse/fabric.hpp"

namespace wsmd::tungsten {

/// One instruction of a serial thread.
struct Op {
  enum class Kind {
    SendVector,       ///< memory -> fabric vector move:  vc[] <- data
    SendCommandList,  ///< command wavelet:               vc[] <- {cmds}
    ReceiveInto,      ///< fabric -> memory vector move:  buffer <- vc[]
  };
  Kind kind;
  int vc = 0;
  std::vector<std::uint32_t> data;        // SendVector payload
  std::vector<wse::RouterCmd> commands;   // SendCommandList payload
  std::string buffer;                     // ReceiveInto destination
  std::size_t expected_words = 0;         // ReceiveInto length (0 = all)
};

/// A `serial { ... }` block: ops issue in order on the core's send thread.
struct Thread {
  std::vector<Op> ops;

  Thread& send_vector(int vc, std::vector<std::uint32_t> data);
  Thread& send_commands(int vc, std::vector<wse::RouterCmd> cmds);
  Thread& receive_into(int vc, std::string buffer,
                       std::size_t expected_words = 0);
};

/// A `parallel { ... }` block: the tile's concurrent threads (the WSE core
/// supports nine hardware threads; the exchange uses four).
struct TileProgram {
  std::vector<Thread> threads;
  Thread& thread() {
    threads.emplace_back();
    return threads.back();
  }
};

/// Executes TilePrograms on the wavelet-level fabric.
class Machine {
 public:
  Machine(int width, int height, int num_vcs);

  /// Install a program on tile (x, y). Roles must be configured separately
  /// (fabric().set_role or the multicast helpers).
  void load(int x, int y, TileProgram program);

  wse::Fabric& fabric() { return fabric_; }
  const wse::Fabric& fabric() const { return fabric_; }

  /// Lower all programs onto the fabric and run to quiescence. Returns the
  /// cycle count. Receive buffers become readable afterwards; a mismatch
  /// between expected and delivered word counts throws.
  std::uint64_t run(std::uint64_t max_cycles = 1000000);

  /// Named receive buffer of a tile after run().
  const std::vector<std::uint32_t>& buffer(int x, int y,
                                           const std::string& name) const;

 private:
  struct LoadedTile {
    TileProgram program;
    std::map<std::string, std::vector<std::uint32_t>> buffers;
  };
  wse::Fabric fabric_;
  std::map<std::pair<int, int>, LoadedTile> tiles_;
};

}  // namespace wsmd::tungsten
