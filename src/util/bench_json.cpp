#include "util/bench_json.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace wsmd {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace

JsonObject& JsonObject::set(const std::string& key, double value) {
  char buf[40];
  if (!std::isfinite(value)) {
    // JSON has no inf/nan; null keeps the document loadable.
    fields_.emplace_back(key, "null");
    return *this;
  }
  std::snprintf(buf, sizeof buf, "%.17g", value);
  fields_.emplace_back(key, buf);
  return *this;
}

JsonObject& JsonObject::set(const std::string& key, long long value) {
  fields_.emplace_back(key, std::to_string(value));
  return *this;
}

JsonObject& JsonObject::set(const std::string& key, bool value) {
  fields_.emplace_back(key, value ? "true" : "false");
  return *this;
}

JsonObject& JsonObject::set(const std::string& key, const std::string& value) {
  fields_.emplace_back(key, escape(value));
  return *this;
}

JsonObject& JsonObject::set_raw(const std::string& key,
                                const std::string& json) {
  fields_.emplace_back(key, json);
  return *this;
}

std::string JsonObject::encode() const {
  std::ostringstream os;
  os << '{';
  for (std::size_t k = 0; k < fields_.size(); ++k) {
    if (k > 0) os << ", ";
    os << escape(fields_[k].first) << ": " << fields_[k].second;
  }
  os << '}';
  return os.str();
}

std::string JsonObject::encode_members(const std::string& prefix) const {
  std::ostringstream os;
  for (std::size_t k = 0; k < fields_.size(); ++k) {
    if (k > 0) os << ",\n";
    os << prefix << escape(fields_[k].first) << ": " << fields_[k].second;
  }
  return os.str();
}

BenchJson::BenchJson(std::string bench_name) : name_(std::move(bench_name)) {
  WSMD_REQUIRE(!name_.empty(), "bench name must be non-empty");
}

JsonObject BenchJson::provenance() {
  JsonObject o;
#ifdef WSMD_GIT_SHA
  o.set("git_sha", WSMD_GIT_SHA);
#else
  o.set("git_sha", "unknown");
#endif
#if defined(__clang__)
  o.set("compiler", format("clang %d.%d.%d", __clang_major__,
                           __clang_minor__, __clang_patchlevel__));
#elif defined(__GNUC__)
  o.set("compiler",
        format("gcc %d.%d.%d", __GNUC__, __GNUC_MINOR__, __GNUC_PATCHLEVEL__));
#else
  o.set("compiler", "unknown");
#endif
#ifdef WSMD_BUILD_TYPE
  o.set("build_type", WSMD_BUILD_TYPE);
#else
  o.set("build_type", "unknown");
#endif
  o.set("threads",
        static_cast<long long>(std::thread::hardware_concurrency()));
  return o;
}

JsonObject& BenchJson::add_row() {
  rows_.emplace_back();
  return rows_.back();
}

std::string BenchJson::encode() const {
  std::ostringstream os;
  os << "{\n  \"bench\": " << escape(name_);
  if (!meta_.empty()) {
    os << ",\n" << meta_.encode_members("  ");
  }
  os << ",\n  \"meta\": " << provenance().encode();
  os << ",\n  \"rows\": [";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    os << (r == 0 ? "\n" : ",\n") << "    " << rows_[r].encode();
  }
  os << "\n  ]\n}\n";
  return os.str();
}

std::string BenchJson::write(const std::string& dir) const {
  const std::string path = dir + "/BENCH_" + name_ + ".json";
  write_to(path);
  return path;
}

void BenchJson::write_to(const std::string& path) const {
  std::ofstream out(path);
  WSMD_REQUIRE(out.good(), "cannot open " << path << " for writing");
  out << encode();
  WSMD_REQUIRE(out.good(), "failed writing " << path);
}

}  // namespace wsmd
