#pragma once

/// \file stats.hpp
/// Statistics helpers: running moments and small least-squares fits.
///
/// The paper's performance analysis (Sec. V-B, Table II) fits the linear
/// model  twall = A*ncandidate + B*ninteraction + C  to a controlled sweep
/// and reports r^2 = 0.9998. `fit_linear_model` solves exactly that class of
/// problem (ordinary least squares with a handful of regressors) via normal
/// equations with Gaussian elimination, which is ample for <=4 regressors.

#include <cstddef>
#include <vector>

namespace wsmd {

/// Streaming mean / variance (Welford).
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 when fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Result of an ordinary-least-squares fit  y ~ X*beta.
struct LinearFit {
  std::vector<double> coefficients;  ///< beta, one per regressor column
  double r_squared = 0.0;            ///< coefficient of determination
  double residual_rms = 0.0;         ///< RMS of residuals
};

/// Ordinary least squares. `rows[i]` holds the regressor values for sample i
/// (including a constant-1 column if an intercept is wanted); `y[i]` is the
/// observed response. Requires rows.size() == y.size() >= #regressors.
LinearFit fit_linear_model(const std::vector<std::vector<double>>& rows,
                           const std::vector<double>& y);

/// Convenience: fit y = A*x1 + B*x2 + C (the paper's Table II model).
/// Returned coefficients are ordered {A, B, C}.
LinearFit fit_two_regressors_with_intercept(const std::vector<double>& x1,
                                            const std::vector<double>& x2,
                                            const std::vector<double>& y);

/// Convenience: slope of the OLS line y = a*x + b. Returns 0 when the fit
/// is degenerate (fewer than 2 samples, or x spans no range) — the
/// observables use this for diffusion (MSD slope) and GB mobility fits.
double fit_slope_with_intercept(const std::vector<double>& x,
                                const std::vector<double>& y);

}  // namespace wsmd
