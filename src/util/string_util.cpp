#include "util/string_util.hpp"

#include <algorithm>
#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace wsmd {

std::vector<std::string> split_whitespace(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t j = i;
    while (j < s.size() && !std::isspace(static_cast<unsigned char>(s[j]))) ++j;
    if (j > i) out.emplace_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool parse_long_strict(const std::string& token, long& out) {
  try {
    std::size_t pos = 0;
    out = std::stol(token, &pos);
    return pos == token.size();
  } catch (const std::exception&) {
    return false;
  }
}

bool parse_double_strict(const std::string& token, double& out) {
  try {
    std::size_t pos = 0;
    out = std::stod(token, &pos);
    return pos == token.size();
  } catch (const std::exception&) {
    return false;
  }
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args_copy);
    out.resize(static_cast<std::size_t>(needed));
  }
  va_end(args_copy);
  return out;
}

std::string with_commas(long long value) {
  const bool neg = value < 0;
  unsigned long long v =
      neg ? 0ull - static_cast<unsigned long long>(value)
          : static_cast<unsigned long long>(value);
  std::string digits = std::to_string(v);
  std::string out;
  int count = 0;
  for (std::size_t i = digits.size(); i-- > 0;) {
    out.push_back(digits[i]);
    if (++count == 3 && i != 0) {
      out.push_back(',');
      count = 0;
    }
  }
  if (neg) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace wsmd
