#include "util/spline.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace wsmd {

CubicSplineTable::CubicSplineTable(double x0, double dx, std::vector<double> y)
    : x0_(x0), dx_(dx), y_(std::move(y)) {
  WSMD_REQUIRE(y_.size() >= 3, "cubic spline needs at least 3 samples");
  WSMD_REQUIRE(dx_ > 0.0, "cubic spline grid spacing must be positive");

  // Natural spline: second derivatives vanish at both ends. Tridiagonal
  // solve (Thomas algorithm) specialized for a uniform grid, where every
  // sub/superdiagonal weight is dx/6 relative to the diagonal.
  const std::size_t n = y_.size();
  y2_.assign(n, 0.0);
  std::vector<double> u(n, 0.0);
  for (std::size_t i = 1; i + 1 < n; ++i) {
    const double sig = 0.5;
    const double p = sig * y2_[i - 1] + 2.0;
    y2_[i] = (sig - 1.0) / p;
    const double d2 = (y_[i + 1] - y_[i]) / dx_ - (y_[i] - y_[i - 1]) / dx_;
    u[i] = (6.0 * d2 / (2.0 * dx_) - sig * u[i - 1]) / p;
  }
  for (std::size_t i = n - 1; i-- > 0;) {
    y2_[i] = y2_[i] * y2_[i + 1] + u[i];
  }
}

CubicSplineTable CubicSplineTable::sample(
    const std::function<double(double)>& f, double x0, double x1,
    std::size_t n) {
  WSMD_REQUIRE(n >= 3 && x1 > x0, "invalid spline sampling range");
  const double dx = (x1 - x0) / static_cast<double>(n - 1);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) y[i] = f(x0 + dx * static_cast<double>(i));
  return CubicSplineTable(x0, dx, std::move(y));
}

void CubicSplineTable::segment(double x, std::size_t& k, double& t) const {
  const double s = (x - x0_) / dx_;
  const double max_idx = static_cast<double>(n() - 2);
  double fk = std::floor(s);
  if (fk < 0.0) fk = 0.0;
  if (fk > max_idx) fk = max_idx;
  k = static_cast<std::size_t>(fk);
  t = s - fk;
}

double CubicSplineTable::value(double x) const {
  std::size_t k;
  double t;
  segment(x, k, t);
  const double a = 1.0 - t;
  const double b = t;
  const double h2 = dx_ * dx_ / 6.0;
  return a * y_[k] + b * y_[k + 1] +
         ((a * a * a - a) * y2_[k] + (b * b * b - b) * y2_[k + 1]) * h2;
}

double CubicSplineTable::derivative(double x) const {
  std::size_t k;
  double t;
  segment(x, k, t);
  const double a = 1.0 - t;
  const double b = t;
  return (y_[k + 1] - y_[k]) / dx_ +
         ((3.0 * b * b - 1.0) * y2_[k + 1] - (3.0 * a * a - 1.0) * y2_[k]) *
             dx_ / 6.0;
}

void CubicSplineTable::value_and_derivative(double x, double& v,
                                            double& d) const {
  std::size_t k;
  double t;
  segment(x, k, t);
  const double a = 1.0 - t;
  const double b = t;
  const double h2 = dx_ * dx_ / 6.0;
  v = a * y_[k] + b * y_[k + 1] +
      ((a * a * a - a) * y2_[k] + (b * b * b - b) * y2_[k + 1]) * h2;
  d = (y_[k + 1] - y_[k]) / dx_ +
      ((3.0 * b * b - 1.0) * y2_[k + 1] - (3.0 * a * a - 1.0) * y2_[k]) * dx_ /
          6.0;
}

LinearTable::LinearTable(double x0, double dx, std::vector<double> y)
    : x0_(x0), dx_(dx), inv_dx_(1.0 / dx), y_(std::move(y)) {
  WSMD_REQUIRE(y_.size() >= 2, "linear table needs at least 2 samples");
  WSMD_REQUIRE(dx_ > 0.0, "linear table grid spacing must be positive");
}

LinearTable LinearTable::sample(const std::function<double(double)>& f,
                                double x0, double x1, std::size_t n) {
  WSMD_REQUIRE(n >= 2 && x1 > x0, "invalid table sampling range");
  const double dx = (x1 - x0) / static_cast<double>(n - 1);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) y[i] = f(x0 + dx * static_cast<double>(i));
  return LinearTable(x0, dx, std::move(y));
}

double LinearTable::value(double x) const {
  const double s = (x - x0_) * inv_dx_;
  const double max_idx = static_cast<double>(y_.size() - 2);
  double fk = std::floor(s);
  if (fk < 0.0) fk = 0.0;
  if (fk > max_idx) fk = max_idx;
  const auto k = static_cast<std::size_t>(fk);
  const double t = s - fk;
  return y_[k] + t * (y_[k + 1] - y_[k]);
}

double LinearTable::derivative(double x) const {
  const double s = (x - x0_) * inv_dx_;
  const double max_idx = static_cast<double>(y_.size() - 2);
  double fk = std::floor(s);
  if (fk < 0.0) fk = 0.0;
  if (fk > max_idx) fk = max_idx;
  const auto k = static_cast<std::size_t>(fk);
  return (y_[k + 1] - y_[k]) * inv_dx_;
}

}  // namespace wsmd
