#pragma once

/// \file units.hpp
/// Physical constants and the "metal" unit system used throughout WSMD.
///
/// Unit system (identical to LAMMPS `units metal`, which the paper's
/// reference runs used):
///   length   : Angstrom (A)
///   time     : picosecond (ps)
///   energy   : electron-volt (eV)
///   mass     : atomic mass unit (amu / g/mol)
///   temperature : Kelvin
///   force    : eV/A
///
/// With these units an acceleration computed as force/mass must be scaled by
/// `kForceToAccel` to land in A/ps^2.

namespace wsmd::units {

/// Boltzmann constant in eV/K (CODATA 2018).
inline constexpr double kBoltzmann = 8.617333262e-5;

/// Conversion factor: (eV/A) / amu -> A/ps^2.
/// = eV[J] / (amu[kg] * 1e-10[m/A]) expressed in A/ps^2.
inline constexpr double kForceToAccel = 9648.5332212;

/// Conversion factor for kinetic energy: amu*(A/ps)^2 -> eV.
/// KE = 0.5 * m * v^2 * kMv2ToEnergy.
inline constexpr double kMv2ToEnergy = 1.0 / kForceToAccel;

/// One femtosecond in ps; MD timesteps in the paper are 2 fs.
inline constexpr double kFemtosecond = 1.0e-3;

/// Default timestep used by the paper's benchmark simulations (2 fs).
inline constexpr double kPaperTimestepPs = 2.0 * kFemtosecond;

}  // namespace wsmd::units
