#pragma once

/// \file soa.hpp
/// Structure-of-arrays storage for Vec3 quantities: three contiguous
/// scalar planes (x, y, z).
///
/// The force hot loops gather neighbor coordinates; with AoS Vec3 arrays a
/// 4-lane FP64 gather touches 4 interleaved 24-byte records, while planes
/// turn it into three dense gathers the SIMD kernels (md/simd.hpp) issue
/// directly against x()/y()/z(). This is the CPU-side analogue of the
/// paper's per-core register layout: each wafer worker holds its atom's
/// coordinates as independent scalars, never as a packed struct.
///
/// Element access keeps the Vec3 API alive for the cold paths:
///   planes[i]        -> Vec3<T> by value (const) or a reference proxy
///                       (mutable) whose x/y/z alias the planes, so
///                       `p[i].x`, `p[i] = v`, `p[i] += v` all work.
///   planes.get/set   -> explicit value transfer (preferred in new code).
/// Mutable iteration yields proxies by value (the vector<bool> idiom):
/// write `for (auto r : planes)` — not `auto&` — when mutating.

#include <cstddef>
#include <vector>

#include "util/vec3.hpp"

namespace wsmd {

template <typename T>
class Vec3Planes {
 public:
  /// Mutable element proxy: three scalar references into the planes.
  struct Ref {
    T& x;
    T& y;
    T& z;
    operator Vec3<T>() const { return {x, y, z}; }
    Ref& operator=(const Vec3<T>& v) {
      x = v.x;
      y = v.y;
      z = v.z;
      return *this;
    }
    Ref& operator=(const Ref& o) { return *this = Vec3<T>(o); }
    Ref& operator+=(const Vec3<T>& v) {
      x += v.x;
      y += v.y;
      z += v.z;
      return *this;
    }
    Ref& operator-=(const Vec3<T>& v) {
      x -= v.x;
      y -= v.y;
      z -= v.z;
      return *this;
    }
    Ref& operator*=(T s) {
      x *= s;
      y *= s;
      z *= s;
      return *this;
    }
    T& operator[](std::size_t a) { return a == 0 ? x : (a == 1 ? y : z); }
    T operator[](std::size_t a) const { return a == 0 ? x : (a == 1 ? y : z); }
  };

  Vec3Planes() = default;
  explicit Vec3Planes(std::size_t n) { resize(n); }
  explicit Vec3Planes(const std::vector<Vec3<T>>& aos) { from_aos(aos); }

  std::size_t size() const { return x_.size(); }
  bool empty() const { return x_.empty(); }
  void resize(std::size_t n) {
    x_.resize(n);
    y_.resize(n);
    z_.resize(n);
  }
  void assign(std::size_t n, const Vec3<T>& v) {
    x_.assign(n, v.x);
    y_.assign(n, v.y);
    z_.assign(n, v.z);
  }
  void swap(Vec3Planes& o) {
    x_.swap(o.x_);
    y_.swap(o.y_);
    z_.swap(o.z_);
  }

  Vec3<T> get(std::size_t i) const { return {x_[i], y_[i], z_[i]}; }
  void set(std::size_t i, const Vec3<T>& v) {
    x_[i] = v.x;
    y_[i] = v.y;
    z_[i] = v.z;
  }
  void add(std::size_t i, const Vec3<T>& v) {
    x_[i] += v.x;
    y_[i] += v.y;
    z_[i] += v.z;
  }

  Vec3<T> operator[](std::size_t i) const { return get(i); }
  Ref operator[](std::size_t i) { return {x_[i], y_[i], z_[i]}; }

  /// Raw plane access — what the SIMD kernels load/gather from.
  const T* x() const { return x_.data(); }
  const T* y() const { return y_.data(); }
  const T* z() const { return z_.data(); }
  T* x() { return x_.data(); }
  T* y() { return y_.data(); }
  T* z() { return z_.data(); }

  /// AoS bridging for the cold boundaries (checkpoint state, Engine
  /// surface, lattice structures). Never called from hot loops.
  std::vector<Vec3<T>> to_aos() const {
    std::vector<Vec3<T>> out(size());
    for (std::size_t i = 0; i < out.size(); ++i) out[i] = get(i);
    return out;
  }
  void from_aos(const std::vector<Vec3<T>>& aos) {
    resize(aos.size());
    for (std::size_t i = 0; i < aos.size(); ++i) set(i, aos[i]);
  }

  struct const_iterator {
    const Vec3Planes* p;
    std::size_t i;
    Vec3<T> operator*() const { return p->get(i); }
    const_iterator& operator++() {
      ++i;
      return *this;
    }
    bool operator!=(const const_iterator& o) const { return i != o.i; }
  };
  struct iterator {
    Vec3Planes* p;
    std::size_t i;
    Ref operator*() const { return (*p)[i]; }
    iterator& operator++() {
      ++i;
      return *this;
    }
    bool operator!=(const iterator& o) const { return i != o.i; }
  };
  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const { return {this, size()}; }
  iterator begin() { return {this, 0}; }
  iterator end() { return {this, size()}; }

 private:
  std::vector<T> x_, y_, z_;
};

using Vec3dPlanes = Vec3Planes<double>;
using Vec3fPlanes = Vec3Planes<float>;

}  // namespace wsmd
