#pragma once

/// \file vec3.hpp
/// Minimal 3-component vector used for positions, velocities, and forces.
///
/// Templated on the scalar so the reference MD engine can run in FP64 while
/// the wafer-scale path runs in FP32, exactly mirroring the paper's precision
/// split (LAMMPS FP64 vs WSE FP32, Sec. IV-B).

#include <cmath>
#include <cstddef>
#include <ostream>

namespace wsmd {

template <typename T>
struct Vec3 {
  T x{0}, y{0}, z{0};

  constexpr Vec3() = default;
  constexpr Vec3(T x_, T y_, T z_) : x(x_), y(y_), z(z_) {}

  /// Conversion between precisions is explicit so a silent FP64->FP32
  /// truncation cannot sneak into the reference engine.
  template <typename U>
  explicit constexpr Vec3(const Vec3<U>& o)
      : x(static_cast<T>(o.x)), y(static_cast<T>(o.y)), z(static_cast<T>(o.z)) {}

  constexpr T& operator[](std::size_t i) { return i == 0 ? x : (i == 1 ? y : z); }
  constexpr const T& operator[](std::size_t i) const {
    return i == 0 ? x : (i == 1 ? y : z);
  }

  constexpr Vec3& operator+=(const Vec3& o) {
    x += o.x; y += o.y; z += o.z;
    return *this;
  }
  constexpr Vec3& operator-=(const Vec3& o) {
    x -= o.x; y -= o.y; z -= o.z;
    return *this;
  }
  constexpr Vec3& operator*=(T s) {
    x *= s; y *= s; z *= s;
    return *this;
  }
  constexpr Vec3& operator/=(T s) {
    x /= s; y /= s; z /= s;
    return *this;
  }

  friend constexpr Vec3 operator+(Vec3 a, const Vec3& b) { return a += b; }
  friend constexpr Vec3 operator-(Vec3 a, const Vec3& b) { return a -= b; }
  friend constexpr Vec3 operator*(Vec3 a, T s) { return a *= s; }
  friend constexpr Vec3 operator*(T s, Vec3 a) { return a *= s; }
  friend constexpr Vec3 operator/(Vec3 a, T s) { return a /= s; }
  friend constexpr Vec3 operator-(const Vec3& a) { return {-a.x, -a.y, -a.z}; }

  friend constexpr bool operator==(const Vec3& a, const Vec3& b) {
    return a.x == b.x && a.y == b.y && a.z == b.z;
  }

  friend constexpr T dot(const Vec3& a, const Vec3& b) {
    return a.x * b.x + a.y * b.y + a.z * b.z;
  }
  friend constexpr Vec3 cross(const Vec3& a, const Vec3& b) {
    return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z,
            a.x * b.y - a.y * b.x};
  }
  friend constexpr T norm2(const Vec3& a) { return dot(a, a); }
  friend T norm(const Vec3& a) { return std::sqrt(norm2(a)); }

  /// Chebyshev (max) norm: the fabric-distance metric used by the
  /// locality-preserving atom mapping (paper Sec. III-A assignment cost).
  friend constexpr T max_norm(const Vec3& a) {
    const T ax = a.x < 0 ? -a.x : a.x;
    const T ay = a.y < 0 ? -a.y : a.y;
    const T az = a.z < 0 ? -a.z : a.z;
    return ax > ay ? (ax > az ? ax : az) : (ay > az ? ay : az);
  }

  friend std::ostream& operator<<(std::ostream& os, const Vec3& a) {
    return os << '(' << a.x << ", " << a.y << ", " << a.z << ')';
  }
};

using Vec3d = Vec3<double>;
using Vec3f = Vec3<float>;

}  // namespace wsmd
