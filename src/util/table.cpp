#include "util/table.hpp"

#include <cstdio>
#include <sstream>

#include "util/error.hpp"

namespace wsmd {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  WSMD_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  WSMD_REQUIRE(cells.size() == headers_.size(),
               "row has " << cells.size() << " cells, expected "
                          << headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::str() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > width[c]) width[c] = row[c].size();
    }
  }

  std::ostringstream os;
  if (!title_.empty()) os << title_ << '\n';

  auto emit_row = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c];
      for (std::size_t p = cells[c].size(); p < width[c]; ++p) os << ' ';
      os << " |";
    }
    os << '\n';
  };

  emit_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << ' ';
    for (std::size_t p = 0; p < width[c]; ++p) os << '-';
    os << " |";
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void TablePrinter::print() const { std::fputs(str().c_str(), stdout); }

}  // namespace wsmd
