#pragma once

/// \file bench_json.hpp
/// Machine-readable benchmark output.
///
/// The paper-reproduction benches print human tables; to track the perf
/// trajectory across PRs they additionally emit `BENCH_<name>.json` — a
/// flat metadata object plus an array of uniform result rows, e.g.
///
///   {
///     "bench": "fig7_strong_scaling",
///     "atoms": 12672,
///     "rows": [
///       {"threads": 1, "steps_per_s": 3.1, "max_cycles": 3477.0},
///       {"threads": 4, "steps_per_s": 11.9, "max_cycles": 3477.0}
///     ]
///   }
///
/// The encoder is deliberately tiny (ordered keys, scalars only): enough
/// for trend tooling to `json.load` without pulling a JSON dependency into
/// the repo.

#include <string>
#include <utility>
#include <vector>

namespace wsmd {

/// Ordered key -> scalar JSON object.
class JsonObject {
 public:
  JsonObject& set(const std::string& key, double value);
  JsonObject& set(const std::string& key, long long value);
  JsonObject& set(const std::string& key, int value) {
    return set(key, static_cast<long long>(value));
  }
  JsonObject& set(const std::string& key, std::size_t value) {
    return set(key, static_cast<long long>(value));
  }
  JsonObject& set(const std::string& key, bool value);
  JsonObject& set(const std::string& key, const std::string& value);
  JsonObject& set(const std::string& key, const char* value) {
    return set(key, std::string(value));
  }

  /// Set a pre-encoded JSON value (a nested object or array). The caller
  /// guarantees `json` is valid JSON; it is spliced verbatim.
  JsonObject& set_raw(const std::string& key, const std::string& json);

  bool empty() const { return fields_.empty(); }

  /// Compact single-line encoding: {"k": v, ...}.
  std::string encode() const;

  /// Just the members, one per line prefixed with `prefix`, comma-joined,
  /// no braces — for splicing into an enclosing object.
  std::string encode_members(const std::string& prefix) const;

 private:
  std::vector<std::pair<std::string, std::string>> fields_;  // key -> encoded
};

/// One benchmark's machine-readable output: metadata + result rows,
/// serialized to `BENCH_<name>.json`. Every document carries a nested
/// "meta" provenance block (git SHA, compiler id/version, build type,
/// hardware thread count) so BENCH_*.json trajectories are attributable
/// across machines; trend tooling that only reads "rows" ignores it.
class BenchJson {
 public:
  explicit BenchJson(std::string bench_name);

  /// Top-level metadata (workload sizes, configuration).
  JsonObject& meta() { return meta_; }

  /// Build-provenance facts baked into every document's "meta" block.
  /// The git SHA and build type are captured at CMake configure time
  /// (WSMD_GIT_SHA / WSMD_BUILD_TYPE definitions on this translation
  /// unit; "unknown" outside a configured build), the compiler from
  /// predefined macros, the thread count from the running host.
  static JsonObject provenance();

  /// Append a result row.
  JsonObject& add_row();

  std::string encode() const;

  /// Write `BENCH_<name>.json` into `dir`; returns the written path.
  std::string write(const std::string& dir = ".") const;

  /// Write the encoded document to an explicit path (the scenario driver
  /// reuses this format for its run summaries).
  void write_to(const std::string& path) const;

 private:
  std::string name_;
  JsonObject meta_;
  std::vector<JsonObject> rows_;
};

}  // namespace wsmd
