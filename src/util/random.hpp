#pragma once

/// \file random.hpp
/// Deterministic pseudo-random number generation.
///
/// MD initial conditions (thermal velocities, jitter) must be reproducible
/// across platforms, so WSMD uses its own xoshiro256++ implementation rather
/// than std::mt19937 + distribution objects (whose outputs are not specified
/// bit-for-bit by the standard).

#include <cstdint>

#include "util/vec3.hpp"

namespace wsmd {

/// Complete serialized Rng state (checkpoint/restart). Covers the
/// xoshiro256++ words and the Marsaglia spare, so a restored stream
/// continues bit-for-bit — gaussian() included — from where it stopped.
struct RngState {
  std::uint64_t s[4] = {0, 0, 0, 0};
  bool has_spare = false;
  double spare = 0.0;
};

/// xoshiro256++ PRNG (Blackman & Vigna), seeded via SplitMix64.
/// Deterministic across compilers and platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform 64-bit integer.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal deviate (Marsaglia polar method; deterministic).
  double gaussian();

  /// Gaussian with given mean and standard deviation.
  double gaussian(double mean, double sigma);

  /// Isotropic Gaussian 3-vector with per-component standard deviation sigma.
  Vec3d gaussian_vec3(double sigma);

  /// Split off an independent stream (for per-worker determinism).
  Rng split();

  /// Snapshot / restore the full generator state (checkpoint/restart).
  RngState state() const;
  void set_state(const RngState& state);

 private:
  std::uint64_t s_[4];
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace wsmd
