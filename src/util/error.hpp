#pragma once

/// \file error.hpp
/// Error handling for the WSMD library.
///
/// The library throws `wsmd::Error` (derived from std::runtime_error) for
/// precondition violations and unrecoverable runtime failures. The
/// WSMD_REQUIRE macro is the standard way to express a checked precondition:
/// it is always active (also in Release builds) because the library is used
/// as the ground truth for physics verification and silent corruption is far
/// more expensive than the branch.

#include <sstream>
#include <stdexcept>
#include <string>

namespace wsmd {

/// Exception type thrown by all WSMD components.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_error(const char* cond, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": requirement failed: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace wsmd

/// Checked precondition: throws wsmd::Error when `cond` is false. The
/// message argument may use stream syntax: WSMD_REQUIRE(n > 0, "n=" << n).
#define WSMD_REQUIRE(cond, msg)                                              \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::ostringstream wsmd_require_os_;                                   \
      wsmd_require_os_ << msg;                                               \
      ::wsmd::detail::throw_error(#cond, __FILE__, __LINE__,                 \
                                  wsmd_require_os_.str());                   \
    }                                                                        \
  } while (false)
