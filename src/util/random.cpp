#include "util/random.hpp"

#include <cmath>

#include "util/error.hpp"

namespace wsmd {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  WSMD_REQUIRE(n > 0, "uniform_index needs a nonempty range");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = n * (~0ull / n);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % n;
}

double Rng::gaussian() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u, v, s;
  do {
    u = 2.0 * uniform() - 1.0;
    v = 2.0 * uniform() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * mul;
  has_spare_ = true;
  return u * mul;
}

double Rng::gaussian(double mean, double sigma) {
  return mean + sigma * gaussian();
}

Vec3d Rng::gaussian_vec3(double sigma) {
  return {gaussian(0.0, sigma), gaussian(0.0, sigma), gaussian(0.0, sigma)};
}

Rng Rng::split() { return Rng(next_u64()); }

RngState Rng::state() const {
  RngState st;
  for (std::size_t k = 0; k < 4; ++k) st.s[k] = s_[k];
  st.has_spare = has_spare_;
  st.spare = spare_;
  return st;
}

void Rng::set_state(const RngState& state) {
  for (std::size_t k = 0; k < 4; ++k) s_[k] = state.s[k];
  has_spare_ = state.has_spare;
  spare_ = state.spare;
}

}  // namespace wsmd
