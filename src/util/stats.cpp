#include "util/stats.hpp"

#include <cmath>

#include "util/error.hpp"

namespace wsmd {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

namespace {

/// Solve the square system M*x = b in place by Gaussian elimination with
/// partial pivoting. Sized for the handful of regressors used here.
std::vector<double> solve_dense(std::vector<std::vector<double>> m,
                                std::vector<double> b) {
  const std::size_t n = b.size();
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::fabs(m[r][col]) > std::fabs(m[pivot][col])) pivot = r;
    }
    WSMD_REQUIRE(std::fabs(m[pivot][col]) > 1e-300,
                 "singular normal equations in least-squares fit");
    std::swap(m[col], m[pivot]);
    std::swap(b[col], b[pivot]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = m[r][col] / m[col][col];
      for (std::size_t c = col; c < n; ++c) m[r][c] -= f * m[col][c];
      b[r] -= f * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t ri = n; ri-- > 0;) {
    double acc = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) acc -= m[ri][c] * x[c];
    x[ri] = acc / m[ri][ri];
  }
  return x;
}

}  // namespace

LinearFit fit_linear_model(const std::vector<std::vector<double>>& rows,
                           const std::vector<double>& y) {
  WSMD_REQUIRE(!rows.empty(), "least-squares fit needs samples");
  WSMD_REQUIRE(rows.size() == y.size(), "regressor/response size mismatch");
  const std::size_t n = rows.size();
  const std::size_t k = rows.front().size();
  WSMD_REQUIRE(k > 0 && n >= k, "need at least as many samples as regressors");
  for (const auto& r : rows) {
    WSMD_REQUIRE(r.size() == k, "ragged regressor matrix");
  }

  // Normal equations: (X^T X) beta = X^T y.
  std::vector<std::vector<double>> xtx(k, std::vector<double>(k, 0.0));
  std::vector<double> xty(k, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t a = 0; a < k; ++a) {
      xty[a] += rows[i][a] * y[i];
      for (std::size_t b = a; b < k; ++b) xtx[a][b] += rows[i][a] * rows[i][b];
    }
  }
  for (std::size_t a = 0; a < k; ++a) {
    for (std::size_t b = 0; b < a; ++b) xtx[a][b] = xtx[b][a];
  }

  LinearFit fit;
  fit.coefficients = solve_dense(std::move(xtx), std::move(xty));

  double y_mean = 0.0;
  for (double v : y) y_mean += v;
  y_mean /= static_cast<double>(n);

  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double pred = 0.0;
    for (std::size_t a = 0; a < k; ++a) pred += fit.coefficients[a] * rows[i][a];
    ss_res += (y[i] - pred) * (y[i] - pred);
    ss_tot += (y[i] - y_mean) * (y[i] - y_mean);
  }
  fit.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  fit.residual_rms = std::sqrt(ss_res / static_cast<double>(n));
  return fit;
}

LinearFit fit_two_regressors_with_intercept(const std::vector<double>& x1,
                                            const std::vector<double>& x2,
                                            const std::vector<double>& y) {
  WSMD_REQUIRE(x1.size() == x2.size() && x1.size() == y.size(),
               "mismatched sweep vectors");
  std::vector<std::vector<double>> rows;
  rows.reserve(x1.size());
  for (std::size_t i = 0; i < x1.size(); ++i) rows.push_back({x1[i], x2[i], 1.0});
  return fit_linear_model(rows, y);
}

double fit_slope_with_intercept(const std::vector<double>& x,
                                const std::vector<double>& y) {
  WSMD_REQUIRE(x.size() == y.size(), "mismatched fit vectors");
  if (x.size() < 2 || x.back() <= x.front()) return 0.0;
  std::vector<std::vector<double>> rows;
  rows.reserve(x.size());
  for (const double xi : x) rows.push_back({xi, 1.0});
  return fit_linear_model(rows, y).coefficients[0];
}

}  // namespace wsmd
