#pragma once

/// \file table.hpp
/// ASCII table rendering for bench binaries.
///
/// Every bench target reproduces a table or figure of the paper and prints it
/// in the paper's row/column layout; TablePrinter handles the column sizing
/// so the bench code reads like the table it reproduces.

#include <string>
#include <vector>

namespace wsmd {

/// Collects rows of stringified cells and renders them with aligned columns.
class TablePrinter {
 public:
  /// `headers` fixes the column count; subsequent rows must match it.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Add a data row. Throws if the cell count differs from the header count.
  void add_row(std::vector<std::string> cells);

  /// Optional caption printed above the table.
  void set_title(std::string title) { title_ = std::move(title); }

  /// Render to a string (ASCII, pipe-separated, padded columns).
  std::string str() const;

  /// Render to stdout.
  void print() const;

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace wsmd
