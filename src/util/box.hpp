#pragma once

/// \file box.hpp
/// Orthorhombic simulation box with per-axis periodicity.
///
/// The paper's benchmark slabs use open (non-periodic) boundaries so atoms
/// can migrate in and out at the edges (Sec. I), while the PBC machinery of
/// Sec. III-E / V-F needs selectable periodicity per axis. Minimum-image
/// displacement is exact for orthorhombic cells when the cutoff is below
/// half the box length, which all WSMD workloads satisfy.

#include <array>
#include <cmath>

#include "util/error.hpp"
#include "util/vec3.hpp"

namespace wsmd {

struct Box {
  Vec3d lo{0, 0, 0};
  Vec3d hi{0, 0, 0};
  std::array<bool, 3> periodic{false, false, false};

  Box() = default;
  Box(Vec3d lo_, Vec3d hi_, std::array<bool, 3> periodic_ = {false, false, false})
      : lo(lo_), hi(hi_), periodic(periodic_) {
    WSMD_REQUIRE(hi.x > lo.x && hi.y > lo.y && hi.z > lo.z,
                 "box must have positive extent");
  }

  Vec3d lengths() const { return hi - lo; }
  double length(int axis) const { return (hi - lo)[static_cast<std::size_t>(axis)]; }
  double volume() const {
    const Vec3d l = lengths();
    return l.x * l.y * l.z;
  }

  /// Fold a position into the box along periodic axes only.
  Vec3d wrap(Vec3d r) const {
    const Vec3d len = lengths();
    for (std::size_t a = 0; a < 3; ++a) {
      if (!periodic[a]) continue;
      double c = r[a] - lo[a];
      c -= std::floor(c / len[a]) * len[a];
      r[a] = lo[a] + c;
    }
    return r;
  }

  /// Minimum-image displacement rj - ri honoring periodic axes.
  Vec3d minimum_image(const Vec3d& ri, const Vec3d& rj) const {
    Vec3d d = rj - ri;
    const Vec3d len = lengths();
    for (std::size_t a = 0; a < 3; ++a) {
      if (!periodic[a]) continue;
      d[a] -= std::round(d[a] / len[a]) * len[a];
    }
    return d;
  }

  /// True when the point lies inside (non-periodic axes only are checked;
  /// periodic axes always contain the wrapped image).
  bool contains(const Vec3d& r) const {
    for (std::size_t a = 0; a < 3; ++a) {
      if (periodic[a]) continue;
      if (r[a] < lo[a] || r[a] > hi[a]) return false;
    }
    return true;
  }
};

}  // namespace wsmd
