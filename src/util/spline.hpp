#pragma once

/// \file spline.hpp
/// Interpolation tables for EAM potential functions.
///
/// The paper stores per-atom-type interpolation tables for rho, F, and phi on
/// every core and evaluates them with a "spline segment" lookup followed by a
/// low-order polynomial evaluation (Table III counts 1 add, 1 mul, 2 misc
/// for the segment lookup and a linear evaluation for the derivative
/// splines). WSMD provides two table kinds:
///
///  * CubicSplineTable — natural cubic spline on a uniform grid; used by the
///    FP64 reference engine where interpolation error must be negligible.
///  * LinearTable — piecewise-linear values (what the paper's inner loop
///    costs assume for derivative evaluation); used by the wafer-path FP32
///    kernels and by the FLOP accounting.

#include <cstddef>
#include <functional>
#include <vector>

namespace wsmd {

/// Natural cubic spline over a uniform grid on [x0, x0 + (n-1)*dx].
/// Evaluation clamps to the table ends (EAM functions are constructed to
/// vanish at the cutoff so clamping is physically benign).
class CubicSplineTable {
 public:
  CubicSplineTable() = default;

  /// Build from uniformly spaced samples y[i] = f(x0 + i*dx). Requires
  /// n >= 3 and dx > 0.
  CubicSplineTable(double x0, double dx, std::vector<double> y);

  /// Sample an arbitrary callable on n uniform points across [x0, x1].
  static CubicSplineTable sample(const std::function<double(double)>& f,
                                 double x0, double x1, std::size_t n);

  double x_min() const { return x0_; }
  double x_max() const { return x0_ + dx_ * static_cast<double>(n() - 1); }
  std::size_t n() const { return y_.size(); }
  double dx() const { return dx_; }

  /// Interpolated value f(x).
  double value(double x) const;
  /// Interpolated derivative f'(x).
  double derivative(double x) const;
  /// Value and derivative in one segment lookup (the hot path).
  void value_and_derivative(double x, double& v, double& d) const;

 private:
  void segment(double x, std::size_t& k, double& t) const;

  double x0_ = 0.0;
  double dx_ = 1.0;
  std::vector<double> y_;
  std::vector<double> y2_;  // second derivatives from the tridiagonal solve
};

/// Piecewise-linear table over a uniform grid; mirrors the evaluation cost
/// model of the paper's inner loop ("Linear splines" row of Table III).
class LinearTable {
 public:
  LinearTable() = default;
  LinearTable(double x0, double dx, std::vector<double> y);

  static LinearTable sample(const std::function<double(double)>& f, double x0,
                            double x1, std::size_t n);

  double x_min() const { return x0_; }
  double x_max() const { return x0_ + dx_ * static_cast<double>(y_.size() - 1); }
  std::size_t n() const { return y_.size(); }

  double value(double x) const;
  /// Slope of the active segment (piecewise-constant derivative).
  double derivative(double x) const;

 private:
  double x0_ = 0.0;
  double dx_ = 1.0;
  double inv_dx_ = 1.0;
  std::vector<double> y_;
};

}  // namespace wsmd
