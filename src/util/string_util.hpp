#pragma once

/// \file string_util.hpp
/// Small string helpers shared by the IO and bench-reporting layers.

#include <string>
#include <string_view>
#include <vector>

namespace wsmd {

/// Split on any run of whitespace; no empty tokens are produced.
std::vector<std::string> split_whitespace(std::string_view s);

/// Split on a single delimiter character; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char delim);

/// Strip leading/trailing whitespace.
std::string trim(std::string_view s);

/// True when `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Strict full-token numeric parsing: succeeds only when the entire token
/// is consumed (no trailing garbage), returns false on any failure without
/// throwing. Shared by the deck parser and the trajectory/thermo readers
/// so "50abc" is rejected identically everywhere.
bool parse_long_strict(const std::string& token, long& out);
bool parse_double_strict(const std::string& token, double& out);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Format a count with thousands separators ("801792" -> "801,792").
std::string with_commas(long long value);

}  // namespace wsmd
