#include "baseline/platform_model.hpp"

#include <cmath>

#include "perf/workload.hpp"
#include "util/error.hpp"
#include "wse/cost_model.hpp"

namespace wsmd::baseline {

namespace {

/// Frontier power: ~425 W per loaded GCD plus ~500 W of node overhead
/// (CPU, NIC, fans) per occupied node of 8 GCDs.
double frontier_power(double gcds) {
  const double nodes = std::ceil(gcds / 8.0);
  return gcds * 425.0 + nodes * 500.0;
}

/// Quartz power: ~350 W per loaded dual-socket Broadwell node.
double quartz_power(double nodes) { return nodes * 350.0; }

}  // namespace

FrontierModel::FrontierModel(const std::string& element) : element_(element) {
  const perf::PaperWorkload w = perf::paper_workload(element);
  // Calibration: best rate R* at n* = 16 GCDs (paper: the limit is reached
  // by about one node of 8 GCDs; rates are flat around the peak), single
  // GCD at ~0.59 R* (launch-overhead floor; Fig. 7a shows the GPU already
  // near 10^3 steps/s at 1/8 node).
  const double r_star = w.frontier_steps_per_s;
  const double n_star = 16.0;
  const double r_one = 0.59 * r_star;
  // t'(n*) = 0  =>  a = g n*^2 / ((1+n*) ln 2)
  // t(1)  = a + c + g
  // t(n*) = a/n* + c + g log2(1+n*)
  const double ln2 = std::log(2.0);
  const double k_a = n_star * n_star / ((1.0 + n_star) * ln2);
  // Subtracting the two level equations eliminates c.
  const double lhs = 1.0 / r_one - 1.0 / r_star;
  const double coef = k_a + 1.0 - (k_a / n_star + std::log2(1.0 + n_star));
  g_ = lhs / coef;
  a_ = k_a * g_;
  c_ = 1.0 / r_star - a_ / n_star - g_ * std::log2(1.0 + n_star);
  WSMD_REQUIRE(a_ > 0.0 && c_ > 0.0 && g_ > 0.0,
               "Frontier calibration failed for " << element);
}

double FrontierModel::steps_per_second(double gcds) const {
  WSMD_REQUIRE(gcds >= 1.0, "need at least one GCD");
  const double t = a_ / gcds + c_ + g_ * std::log2(1.0 + gcds);
  return 1.0 / t;
}

double FrontierModel::power_watts(double gcds) const {
  return frontier_power(gcds);
}

ScalingPoint FrontierModel::at(double gcds) const {
  ScalingPoint p;
  p.units = gcds;
  p.nodes = gcds / 8.0;
  p.steps_per_second = steps_per_second(gcds);
  p.power_watts = power_watts(gcds);
  p.steps_per_joule = p.steps_per_second / p.power_watts;
  return p;
}

double FrontierModel::best_steps_per_second() const {
  double best = 0.0;
  for (double n = 1.0; n <= 1024.0; n *= 2.0) {
    best = std::max(best, steps_per_second(n));
  }
  return best;
}

std::vector<ScalingPoint> FrontierModel::sweep() const {
  std::vector<ScalingPoint> out;
  for (double n = 1.0; n <= 1024.0; n *= 2.0) out.push_back(at(n));
  return out;
}

QuartzModel::QuartzModel(const std::string& element) : element_(element) {
  const perf::PaperWorkload w = perf::paper_workload(element);
  // Calibration: near-linear speedup stalls at n* = 400 nodes with the
  // best rate R* (Table I): t(n) = a/n + g n has its minimum 2 sqrt(a g)
  // at n* = sqrt(a/g), so a = n*/(2 R*) and g = a/n*^2.
  const double r_star = w.quartz_steps_per_s;
  const double n_star = 400.0;
  a_ = n_star / (2.0 * r_star);
  g_ = a_ / (n_star * n_star);
}

double QuartzModel::steps_per_second(double nodes) const {
  WSMD_REQUIRE(nodes >= 1.0, "need at least one node");
  const double t = a_ / nodes + g_ * nodes;
  return 1.0 / t;
}

double QuartzModel::power_watts(double nodes) const {
  return quartz_power(nodes);
}

ScalingPoint QuartzModel::at(double nodes) const {
  ScalingPoint p;
  p.units = nodes;
  p.nodes = nodes;
  p.steps_per_second = steps_per_second(nodes);
  p.power_watts = power_watts(nodes);
  p.steps_per_joule = p.steps_per_second / p.power_watts;
  return p;
}

double QuartzModel::best_steps_per_second() const {
  double best = 0.0;
  for (double n = 1.0; n <= 4096.0; n *= 2.0) {
    best = std::max(best, steps_per_second(n));
  }
  return best;
}

std::vector<ScalingPoint> QuartzModel::sweep() const {
  std::vector<ScalingPoint> out;
  for (double n = 1.0; n <= 4096.0; n *= 2.0) out.push_back(at(n));
  return out;
}

ScalingPoint wse_point(const std::string& element) {
  const perf::PaperWorkload w = perf::paper_workload(element);
  const auto model = wse::CostModel::paper_baseline();
  ScalingPoint p;
  p.units = 1.0;  // one wafer
  p.nodes = 1.0;
  p.steps_per_second = model.steps_per_second(w.candidates, w.interactions);
  p.power_watts = perf::platform_cs2().power_watts;
  p.steps_per_joule = p.steps_per_second / p.power_watts;
  return p;
}

std::vector<SmallSystemReference> lj_1k_references() {
  // Paper Sec. II-B: published production-code rates for a 1k-atom LJ
  // system, the strong-scaling-limit mimic.
  return {
      {"NVIDIA V100 (LAMMPS, kernel-launch bound)", 10000.0, "[13]"},
      {"V100 with kernel fusion (+~20%)", 12000.0, "[14]"},
      {"2x Intel Skylake, 36 MPI ranks", 25000.0, "[13]"},
  };
}

}  // namespace wsmd::baseline
