#pragma once

/// \file platform_model.hpp
/// Strong-scaling and energy models of the paper's comparison platforms.
///
/// The paper measures LAMMPS EAM on Frontier (AMD MI250X GCDs) and Quartz
/// (dual-socket Broadwell nodes); we cannot. These analytic models are
/// calibrated to every published number (Table I best rates, Fig. 7
/// saturation shapes, the Sec. V-A observations) and regenerate the
/// comparison curves:
///
///   GPU:  t(n) = a/n + c + g*log2(1+n)
///     — kernel-launch dominated: rises only ~1.7x from one GCD, saturates
///       around two nodes ("on the order of 100,000 atoms per GPU is the
///       limit to strong scaling"), then declines gently with MPI cost.
///
///   CPU:  t(n) = a/n + g*n
///     — near-linear speedup to the MPI-latency wall at ~400 dual-socket
///       nodes ("1000 atoms per CPU socket seems to be the limit"), then a
///       harder decline.
///
/// Power: per-GCD plus per-node overhead on Frontier; per-node on Quartz;
/// the 23 kW CS-2 from the paper. The models reproduce the paper's
/// "roughly 30-fold more timesteps per Joule than a Frontier node" and the
/// Fig. 7c Pareto dominance.

#include <string>
#include <vector>

namespace wsmd::baseline {

/// A point on a platform's strong-scaling curve.
struct ScalingPoint {
  double units;            ///< GCDs (GPU) or nodes (CPU)
  double nodes;            ///< node count (8 GCDs per Frontier node)
  double steps_per_second;
  double power_watts;
  double steps_per_joule;
};

/// Strong-scaling model of LAMMPS EAM on Frontier for one element.
class FrontierModel {
 public:
  /// Calibrate from the best published rate for the element (Table I).
  explicit FrontierModel(const std::string& element);

  double steps_per_second(double gcds) const;
  double power_watts(double gcds) const;
  ScalingPoint at(double gcds) const;

  /// Best rate over all GCD counts (the Table I "Frontier" column).
  double best_steps_per_second() const;

  /// Sweep typical GCD counts (1 GCD .. 1024 GCDs).
  std::vector<ScalingPoint> sweep() const;

 private:
  std::string element_;
  double a_, c_, g_;  // t(n) = a/n + c + g log2(1+n), seconds
};

/// Strong-scaling model of LAMMPS EAM on Quartz for one element.
class QuartzModel {
 public:
  explicit QuartzModel(const std::string& element);

  double steps_per_second(double nodes) const;
  double power_watts(double nodes) const;
  ScalingPoint at(double nodes) const;
  double best_steps_per_second() const;
  std::vector<ScalingPoint> sweep() const;

 private:
  std::string element_;
  double a_, g_;  // t(n) = a/n + g n, seconds
};

/// The WSE point for one element (rate from the calibrated cost model at
/// the paper's candidate/interaction counts; 23 kW system power).
ScalingPoint wse_point(const std::string& element);

/// Sec. II-B context: published small-system LJ rates (1k atoms).
struct SmallSystemReference {
  std::string platform;
  double steps_per_second;
  std::string source;
};
std::vector<SmallSystemReference> lj_1k_references();

}  // namespace wsmd::baseline
