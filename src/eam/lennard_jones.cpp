#include "eam/lennard_jones.hpp"

#include <cmath>

#include "util/error.hpp"

namespace wsmd::eam {

LennardJones::LennardJones(Species species, double cutoff)
    : LennardJones(std::vector<Species>{std::move(species)},
                   cutoff > 0.0 ? cutoff : 0.0) {}

LennardJones::LennardJones(std::vector<Species> species, double cutoff)
    : species_(std::move(species)) {
  WSMD_REQUIRE(!species_.empty(), "LennardJones needs at least one species");
  for (const auto& s : species_) {
    WSMD_REQUIRE(s.epsilon > 0.0 && s.sigma > 0.0 && s.mass > 0.0,
                 "invalid LJ species '" << s.name << "'");
  }
  rc_ = cutoff;
  if (rc_ <= 0.0) {
    for (const auto& s : species_) rc_ = std::max(rc_, 2.5 * s.sigma);
  }
  const int nt = num_types();
  phi_rc_.resize(static_cast<std::size_t>(nt) * nt);
  dphi_rc_.resize(static_cast<std::size_t>(nt) * nt);
  for (int a = 0; a < nt; ++a) {
    for (int b = 0; b < nt; ++b) {
      phi_rc_[static_cast<std::size_t>(a) * nt + b] = raw_pair(a, b, rc_);
      dphi_rc_[static_cast<std::size_t>(a) * nt + b] = raw_pair_deriv(a, b, rc_);
    }
  }
}

LennardJones LennardJones::copper_like() {
  return LennardJones({"Cu", 63.546, 0.4093, 2.338});
}

namespace {

/// Classic noble-gas LJ parameters (epsilon/kB in K converted at
/// kB = 8.617333e-5 eV/K; sigma in A). Sources: Bernardes 1958 / standard
/// textbook values — good enough for the melt/diversity scenarios; nothing
/// here calibrates against experiment.
const LjMaterial kLjTable[] = {
    {"Ne", 20.180, 0.0030675, 2.749, "fcc"},
    {"Ar", 39.948, 0.0103235, 3.405, "fcc"},
    {"Kr", 83.798, 0.0141325, 3.650, "fcc"},
    {"Xe", 131.293, 0.0196137, 3.980, "fcc"},
};

}  // namespace

double LjMaterial::lattice_constant() const {
  // Full-lattice-sum FCC minimum: r_nn/sigma = (2*A12/A6)^(1/6) with the
  // fcc lattice sums A12 = 12.13188, A6 = 14.45392; a0 = sqrt(2) r_nn.
  const double rnn = std::pow(2.0 * 12.13188 / 14.45392, 1.0 / 6.0) * sigma;
  return std::sqrt(2.0) * rnn;
}

double LjMaterial::default_cutoff() const { return 2.5 * sigma; }

std::vector<std::string> lj_available_elements() {
  std::vector<std::string> names;
  for (const auto& m : kLjTable) names.push_back(m.name);
  return names;
}

LjMaterial lj_parameters(const std::string& element) {
  for (const auto& m : kLjTable) {
    if (m.name == element) return m;
  }
  WSMD_REQUIRE(false, "no built-in LJ parameters for element '"
                          << element << "' (pair_style=lj knows "
                          << "Ne, Ar, Kr, Xe)");
  return {};
}

LennardJones LennardJones::for_element(const std::string& element) {
  const auto m = lj_parameters(element);
  return LennardJones({m.name, m.mass, m.epsilon, m.sigma},
                      m.default_cutoff());
}

int LennardJones::num_types() const { return static_cast<int>(species_.size()); }

std::string LennardJones::type_name(int type) const {
  WSMD_REQUIRE(type >= 0 && type < num_types(), "type out of range");
  return species_[static_cast<std::size_t>(type)].name;
}

double LennardJones::mass(int type) const {
  WSMD_REQUIRE(type >= 0 && type < num_types(), "type out of range");
  return species_[static_cast<std::size_t>(type)].mass;
}

void LennardJones::mix(int ti, int tj, double& eps, double& sig) const {
  const auto& a = species_[static_cast<std::size_t>(ti)];
  const auto& b = species_[static_cast<std::size_t>(tj)];
  eps = std::sqrt(a.epsilon * b.epsilon);  // Berthelot
  sig = 0.5 * (a.sigma + b.sigma);         // Lorentz
}

double LennardJones::raw_pair(int ti, int tj, double r) const {
  double eps, sig;
  mix(ti, tj, eps, sig);
  const double sr2 = sig * sig / (r * r);
  const double sr6 = sr2 * sr2 * sr2;
  return 4.0 * eps * (sr6 * sr6 - sr6);
}

double LennardJones::raw_pair_deriv(int ti, int tj, double r) const {
  double eps, sig;
  mix(ti, tj, eps, sig);
  const double sr2 = sig * sig / (r * r);
  const double sr6 = sr2 * sr2 * sr2;
  return 4.0 * eps * (-12.0 * sr6 * sr6 + 6.0 * sr6) / r;
}

double LennardJones::pair(int ti, int tj, double r) const {
  if (r >= rc_) return 0.0;
  const std::size_t idx =
      static_cast<std::size_t>(ti) * static_cast<std::size_t>(num_types()) +
      static_cast<std::size_t>(tj);
  return raw_pair(ti, tj, r) - phi_rc_[idx] - dphi_rc_[idx] * (r - rc_);
}

double LennardJones::pair_deriv(int ti, int tj, double r) const {
  if (r >= rc_) return 0.0;
  const std::size_t idx =
      static_cast<std::size_t>(ti) * static_cast<std::size_t>(num_types()) +
      static_cast<std::size_t>(tj);
  return raw_pair_deriv(ti, tj, r) - dphi_rc_[idx];
}

}  // namespace wsmd::eam
