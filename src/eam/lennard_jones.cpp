#include "eam/lennard_jones.hpp"

#include <cmath>

#include "util/error.hpp"

namespace wsmd::eam {

LennardJones::LennardJones(Species species, double cutoff)
    : LennardJones(std::vector<Species>{std::move(species)},
                   cutoff > 0.0 ? cutoff : 0.0) {}

LennardJones::LennardJones(std::vector<Species> species, double cutoff)
    : species_(std::move(species)) {
  WSMD_REQUIRE(!species_.empty(), "LennardJones needs at least one species");
  for (const auto& s : species_) {
    WSMD_REQUIRE(s.epsilon > 0.0 && s.sigma > 0.0 && s.mass > 0.0,
                 "invalid LJ species '" << s.name << "'");
  }
  rc_ = cutoff;
  if (rc_ <= 0.0) {
    for (const auto& s : species_) rc_ = std::max(rc_, 2.5 * s.sigma);
  }
  const int nt = num_types();
  phi_rc_.resize(static_cast<std::size_t>(nt) * nt);
  dphi_rc_.resize(static_cast<std::size_t>(nt) * nt);
  for (int a = 0; a < nt; ++a) {
    for (int b = 0; b < nt; ++b) {
      phi_rc_[static_cast<std::size_t>(a) * nt + b] = raw_pair(a, b, rc_);
      dphi_rc_[static_cast<std::size_t>(a) * nt + b] = raw_pair_deriv(a, b, rc_);
    }
  }
}

LennardJones LennardJones::copper_like() {
  return LennardJones({"Cu", 63.546, 0.4093, 2.338});
}

int LennardJones::num_types() const { return static_cast<int>(species_.size()); }

std::string LennardJones::type_name(int type) const {
  WSMD_REQUIRE(type >= 0 && type < num_types(), "type out of range");
  return species_[static_cast<std::size_t>(type)].name;
}

double LennardJones::mass(int type) const {
  WSMD_REQUIRE(type >= 0 && type < num_types(), "type out of range");
  return species_[static_cast<std::size_t>(type)].mass;
}

void LennardJones::mix(int ti, int tj, double& eps, double& sig) const {
  const auto& a = species_[static_cast<std::size_t>(ti)];
  const auto& b = species_[static_cast<std::size_t>(tj)];
  eps = std::sqrt(a.epsilon * b.epsilon);  // Berthelot
  sig = 0.5 * (a.sigma + b.sigma);         // Lorentz
}

double LennardJones::raw_pair(int ti, int tj, double r) const {
  double eps, sig;
  mix(ti, tj, eps, sig);
  const double sr2 = sig * sig / (r * r);
  const double sr6 = sr2 * sr2 * sr2;
  return 4.0 * eps * (sr6 * sr6 - sr6);
}

double LennardJones::raw_pair_deriv(int ti, int tj, double r) const {
  double eps, sig;
  mix(ti, tj, eps, sig);
  const double sr2 = sig * sig / (r * r);
  const double sr6 = sr2 * sr2 * sr2;
  return 4.0 * eps * (-12.0 * sr6 * sr6 + 6.0 * sr6) / r;
}

double LennardJones::pair(int ti, int tj, double r) const {
  if (r >= rc_) return 0.0;
  const std::size_t idx =
      static_cast<std::size_t>(ti) * static_cast<std::size_t>(num_types()) +
      static_cast<std::size_t>(tj);
  return raw_pair(ti, tj, r) - phi_rc_[idx] - dphi_rc_[idx] * (r - rc_);
}

double LennardJones::pair_deriv(int ti, int tj, double r) const {
  if (r >= rc_) return 0.0;
  const std::size_t idx =
      static_cast<std::size_t>(ti) * static_cast<std::size_t>(num_types()) +
      static_cast<std::size_t>(tj);
  return raw_pair_deriv(ti, tj, r) - dphi_rc_[idx];
}

}  // namespace wsmd::eam
