#pragma once

/// \file tabulated.hpp
/// Spline-tabulated EAM potential.
///
/// The paper's per-core kernels evaluate rho, F, and phi from local
/// interpolation tables ("It also stores local copies of interpolation
/// tables for rho_i, F_i, and phi_ij", Sec. III-A). TabulatedEam is that
/// representation: uniform-grid tables for every type / type-pair,
/// constructed either from an analytic potential or from a DYNAMO `setfl`
/// file. It implements the same EamPotential interface so engines cannot
/// tell tabulated and analytic potentials apart.

#include <string>
#include <vector>

#include "eam/potential.hpp"
#include "util/spline.hpp"

namespace wsmd::eam {

/// EAM potential backed by cubic-spline tables on uniform grids.
class TabulatedEam final : public EamPotential {
 public:
  /// Tabulate an arbitrary potential with `nr` radial and `nrho` density
  /// samples. `rho_max` bounds the embedding table; when zero it is sized
  /// from the densest plausible environment (~2x the bulk density implied
  /// by the radial table).
  static TabulatedEam from_potential(const EamPotential& src, int nr = 2000,
                                     int nrho = 2000, double rho_max = 0.0);

  int num_types() const override;
  std::string type_name(int type) const override;
  double mass(int type) const override;
  double cutoff() const override { return rc_; }

  double density(int type, double r) const override;
  double density_deriv(int type, double r) const override;
  double pair(int ti, int tj, double r) const override;
  double pair_deriv(int ti, int tj, double r) const override;
  double embed(int type, double rho) const override;
  double embed_deriv(int type, double rho) const override;

  /// Raw table access (used by the setfl writer and the WSE worker memory
  /// model, which must account for per-core table bytes against the 48 kB
  /// tile SRAM budget).
  const CubicSplineTable& density_table(int type) const;
  const CubicSplineTable& embed_table(int type) const;
  const CubicSplineTable& pair_table(int ti, int tj) const;

  /// Total bytes of FP32 table data a single worker core must hold for one
  /// atom of each listed type (paper Sec. III-A worker state).
  std::size_t table_bytes_fp32() const;

  /// Construct directly from tables (used by the setfl reader).
  TabulatedEam(std::vector<std::string> names, std::vector<double> masses,
               double rc, std::vector<CubicSplineTable> rho_tables,
               std::vector<CubicSplineTable> embed_tables,
               std::vector<CubicSplineTable> pair_tables);

 private:
  std::size_t pair_index(int ti, int tj) const;

  std::vector<std::string> names_;
  std::vector<double> masses_;
  double rc_ = 0.0;
  std::vector<CubicSplineTable> rho_;    // per type
  std::vector<CubicSplineTable> embed_;  // per type
  std::vector<CubicSplineTable> pair_;   // upper-triangular pair matrix
};

}  // namespace wsmd::eam
