#pragma once

/// \file zhou.hpp
/// Analytic EAM of Zhou, Johnson & Wadley, Phys. Rev. B 69, 144113 (2004).
///
/// The paper's tungsten potential [29] (Zhou et al., Acta Mater. 49, 4005
/// (2001)) is this functional form; for Cu and Ta the paper used tabulated
/// potentials (Adams 1989, Li 2003) that are not redistributable, so WSMD
/// substitutes the Zhou parameterisation, which has the same ground-state
/// structures (FCC Cu; BCC Ta, W) and comparable cutoffs. DESIGN.md records
/// this substitution; interaction counts — the quantity the wafer-scale
/// performance actually depends on — are matched to the paper by the cutoff
/// choice (Cu 42, W ~59, Ta 14 neighbors in the perfect bulk crystal).
///
/// Functional form (r in Angstrom, energies in eV):
///   f(r)   = fe exp(-beta (r/re - 1)) / (1 + (r/re - lambda)^20)
///   phi(r) = A exp(-alpha (r/re - 1)) / (1 + (r/re - kappa)^20)
///          - B exp(-beta  (r/re - 1)) / (1 + (r/re - lambda)^20)
///   F(rho) three-branch:
///     rho <  rho_n = 0.85 rho_e : sum_i Fn_i (rho/rho_n - 1)^i,  i = 0..3
///     rho <  rho_0 = 1.15 rho_e : sum_i F_i  (rho/rho_e - 1)^i,  i = 0..3
///     rho >= rho_0              : Fe (1 - eta ln(rho/rho_s)) (rho/rho_s)^eta
///
/// The raw radial functions decay rapidly but do not vanish exactly; WSMD
/// applies a shift-force truncation g(r) -> g(r) - g(rc) - g'(rc)(r - rc)
/// so value and slope are exactly zero at the cutoff, which the paper's
/// algorithm (and our energy-conservation tests) require.

#include <string>
#include <vector>

#include "eam/potential.hpp"

namespace wsmd::eam {

/// Parameter set for one element in the Zhou 2004 form.
struct ZhouParams {
  std::string name;    ///< chemical symbol
  double mass = 0.0;   ///< amu
  double re = 0.0;     ///< equilibrium nearest-neighbor distance (A)
  double fe = 0.0;     ///< density scale
  double rhoe = 0.0;   ///< equilibrium host density
  double rhos = 0.0;   ///< density scale in the third embedding branch
  double alpha = 0.0;  ///< repulsive pair exponent
  double beta = 0.0;   ///< attractive pair / density exponent
  double A = 0.0;      ///< repulsive pair amplitude (eV)
  double B = 0.0;      ///< attractive pair amplitude (eV)
  double kappa = 0.0;  ///< repulsive soft-cutoff offset
  double lambda = 0.0; ///< attractive soft-cutoff offset
  double Fn[4] = {0, 0, 0, 0};  ///< low-density embedding coefficients (eV)
  double F[4] = {0, 0, 0, 0};   ///< mid-density embedding coefficients (eV)
  double eta = 0.0;    ///< high-density embedding exponent
  double Fe = 0.0;     ///< high-density embedding scale (eV)

  /// Crystal structure of the ground state ("fcc" or "bcc").
  std::string structure;

  /// Conventional cubic lattice constant implied by re (A):
  /// FCC a0 = re*sqrt(2); BCC a0 = 2*re/sqrt(3).
  double lattice_constant() const;

  /// Default (physics) cutoff used when none is given explicitly: wide
  /// enough that shift-force truncation barely perturbs cohesion.
  double default_cutoff() const;

  /// The cutoff of the potential the *paper* benchmarked for this element
  /// (Table VI rcut/r_nn ratios: Cu 1.94, W 2.02, Ta 1.39). Reproduces the
  /// paper's per-atom interaction counts (Cu 42, W ~59, Ta 14), which is
  /// what the wafer-scale timestep cost depends on. Falls back to the
  /// physics cutoff for elements the paper did not run.
  double paper_cutoff() const;
};

/// Elements with built-in parameter sets.
std::vector<std::string> zhou_available_elements();

/// Look up the parameter set for a chemical symbol; throws for unknown ones.
ZhouParams zhou_parameters(const std::string& element);

/// Zhou-form analytic EAM, optionally multi-element (alloy pair functions
/// use Johnson's density-weighted mixing:
///   phi_ab = 1/2 [ f_b/f_a phi_aa + f_a/f_b phi_bb ]).
class ZhouEam final : public EamPotential {
 public:
  /// Single element with its default cutoff.
  explicit ZhouEam(const std::string& element);

  /// Single element with an explicit cutoff (Angstrom).
  ZhouEam(const std::string& element, double cutoff);

  /// Alloy: one parameter set per type; cutoff is the max of the defaults
  /// unless given.
  explicit ZhouEam(std::vector<ZhouParams> params, double cutoff = 0.0);

  int num_types() const override;
  std::string type_name(int type) const override;
  double mass(int type) const override;
  double cutoff() const override { return rc_; }

  double density(int type, double r) const override;
  double density_deriv(int type, double r) const override;
  double pair(int ti, int tj, double r) const override;
  double pair_deriv(int ti, int tj, double r) const override;
  double embed(int type, double rho) const override;
  double embed_deriv(int type, double rho) const override;

  const ZhouParams& params(int type) const;

 private:
  /// Raw (untruncated) radial functions.
  double raw_density(int type, double r) const;
  double raw_density_deriv(int type, double r) const;
  double raw_pair_same(int type, double r) const;
  double raw_pair_same_deriv(int type, double r) const;
  double raw_pair(int ti, int tj, double r) const;
  double raw_pair_deriv(int ti, int tj, double r) const;

  std::vector<ZhouParams> p_;
  double rc_ = 0.0;
  // Shift-force constants per type / type-pair, evaluated at rc.
  std::vector<double> rho_rc_, drho_rc_;
  std::vector<double> phi_rc_, dphi_rc_;  // indexed ti*num_types+tj
};

}  // namespace wsmd::eam
