#pragma once

/// \file lennard_jones.hpp
/// Lennard-Jones 12-6 potential expressed through the EamPotential
/// interface (zero density / zero embedding).
///
/// The paper excludes LJ from the headline runs (it "cannot replicate basic
/// crystal properties", Sec. II-A) but uses it for the state-of-the-art
/// strong-scaling discussion (Sec. II-B: 1k-atom LJ at <10k steps/s on a
/// V100, ~25k steps/s on a dual-socket Skylake). WSMD keeps it for exactly
/// that comparison bench and as a cheap, analytically transparent potential
/// for engine tests.

#include <string>
#include <vector>

#include "eam/potential.hpp"

namespace wsmd::eam {

/// Built-in LJ material: species parameters plus the crystal facts the
/// scenario layer needs to generate structures (the LJ analogue of
/// eam::zhou_parameters). The noble gases carry the classic
/// Lennard-Jones/Bernardes parameterisation; all are FCC ground states.
struct LjMaterial {
  std::string name;     ///< chemical symbol ("Ar", ...)
  double mass = 0.0;    ///< amu
  double epsilon = 0.0; ///< well depth (eV)
  double sigma = 0.0;   ///< length scale (A)
  std::string structure = "fcc";

  /// Conventional cubic lattice constant of the full-lattice-sum LJ FCC
  /// minimum: a0 = 2^(1/2) * 1.0902 sigma (r_nn/sigma = (2 A12/A6)^(1/6)).
  double lattice_constant() const;
  /// Standard truncation: 2.5 sigma.
  double default_cutoff() const;
};

/// Elements with built-in LJ parameter sets (noble gases).
std::vector<std::string> lj_available_elements();

/// Look up the LJ material for a chemical symbol; throws for unknown ones.
LjMaterial lj_parameters(const std::string& element);

/// Multi-type LJ with Lorentz-Berthelot mixing and shift-force truncation
/// (value and slope zero at the cutoff, matching the EAM convention).
class LennardJones final : public EamPotential {
 public:
  struct Species {
    std::string name;
    double mass;     ///< amu
    double epsilon;  ///< eV
    double sigma;    ///< A
  };

  /// Single species; cutoff defaults to 2.5 sigma.
  LennardJones(Species species, double cutoff = 0.0);

  /// Multiple species with Lorentz-Berthelot mixing.
  explicit LennardJones(std::vector<Species> species, double cutoff);

  /// Copper-like LJ in metal units (eps=0.4093 eV, sigma=2.338 A) — handy
  /// for tests that want an FCC-friendly scale without EAM cost.
  static LennardJones copper_like();

  /// Single built-in material (lj_parameters) at its default cutoff.
  static LennardJones for_element(const std::string& element);

  int num_types() const override;
  std::string type_name(int type) const override;
  double mass(int type) const override;
  double cutoff() const override { return rc_; }

  double density(int, double) const override { return 0.0; }
  double density_deriv(int, double) const override { return 0.0; }
  double pair(int ti, int tj, double r) const override;
  double pair_deriv(int ti, int tj, double r) const override;
  double embed(int, double) const override { return 0.0; }
  double embed_deriv(int, double) const override { return 0.0; }
  bool is_pairwise_only() const override { return true; }

 private:
  double raw_pair(int ti, int tj, double r) const;
  double raw_pair_deriv(int ti, int tj, double r) const;
  void mix(int ti, int tj, double& eps, double& sig) const;

  std::vector<Species> species_;
  double rc_ = 0.0;
  std::vector<double> phi_rc_, dphi_rc_;
};

}  // namespace wsmd::eam
