#pragma once

/// \file setfl.hpp
/// DYNAMO/LAMMPS `setfl` (.eam.alloy) potential file IO.
///
/// The paper's reference LAMMPS runs consume tabulated potentials in this
/// format (Adams Cu [28], Zhou W [29], Li Ta [30]). WSMD can both *write*
/// setfl files from any EamPotential (so our Zhou parameterisation can be
/// exported and diffed against LAMMPS) and *read* arbitrary setfl files (so
/// a user with the original files can run the genuine article).
///
/// Format (whitespace-delimited text):
///   line 1-3 : comments
///   line 4   : Nelements  name_1 ... name_N
///   line 5   : Nrho  drho  Nr  dr  cutoff
///   per element: "atomic_number mass lattice_constant structure"
///                F(rho) on Nrho points, rho(r) on Nr points
///   then for i = 1..N, j = 1..i : r*phi_ij(r) on Nr points

#include <iosfwd>
#include <string>

#include "eam/tabulated.hpp"

namespace wsmd::eam {

/// Write `pot` in setfl format. `nrho`/`nr` control the table resolution;
/// `rho_max` bounds the embedding grid (0 = automatic).
void write_setfl(const EamPotential& pot, std::ostream& os, int nrho = 2000,
                 int nr = 2000, double rho_max = 0.0,
                 const std::string& comment = "");

/// Convenience overload writing to a file path.
void write_setfl_file(const EamPotential& pot, const std::string& path,
                      int nrho = 2000, int nr = 2000, double rho_max = 0.0,
                      const std::string& comment = "");

/// Parse a setfl stream into a tabulated potential. Throws wsmd::Error on
/// malformed input.
TabulatedEam read_setfl(std::istream& is);

/// Convenience overload reading from a file path.
TabulatedEam read_setfl_file(const std::string& path);

}  // namespace wsmd::eam
