#pragma once

/// \file potential.hpp
/// Abstract interface for Embedded Atom Method potentials (paper Sec. II-A).
///
/// The EAM total energy is
///     U = 1/2 sum_{i != j} phi_{ij}(r_ij) + sum_i F_i(rho(r_i)),
///     rho(r_i) = sum_{j != i} rho_j(r_ij)
/// (paper Eqs. 2-3), with all three functions depending on atom type so
/// heterogeneous ensembles are supported. Forces follow paper Eq. 4.
///
/// A pairwise potential (e.g. Lennard-Jones) is representable as the special
/// case with zero density and zero embedding, so the MD engines accept a
/// single interface for both families.

#include <memory>
#include <string>

namespace wsmd::eam {

/// Type-resolved EAM potential. Distances in Angstrom, energies in eV,
/// masses in amu. All radial functions must vanish (value and first
/// derivative) at and beyond `cutoff()` so that neighbor-list truncation is
/// exact (paper Sec. II-A: functions "vanish exactly beyond rcut").
class EamPotential {
 public:
  virtual ~EamPotential() = default;

  /// Number of atom types (>= 1).
  virtual int num_types() const = 0;

  /// Chemical symbol for a type ("Cu", "Ta", ...).
  virtual std::string type_name(int type) const = 0;

  /// Atomic mass in amu.
  virtual double mass(int type) const = 0;

  /// Global interaction cutoff radius in Angstrom.
  virtual double cutoff() const = 0;

  /// Electron density contributed by an atom of `type` at distance r.
  virtual double density(int type, double r) const = 0;

  /// d(density)/dr.
  virtual double density_deriv(int type, double r) const = 0;

  /// Pair energy phi_{ij}(r) between types ti and tj (symmetric in ti,tj).
  virtual double pair(int ti, int tj, double r) const = 0;

  /// d(phi_{ij})/dr.
  virtual double pair_deriv(int ti, int tj, double r) const = 0;

  /// Embedding energy F_i(rho).
  virtual double embed(int type, double rho) const = 0;

  /// dF/d(rho).
  virtual double embed_deriv(int type, double rho) const = 0;

  /// True when density and embedding are identically zero (pure pair
  /// potential); lets engines skip the density pass.
  virtual bool is_pairwise_only() const { return false; }
};

using EamPotentialPtr = std::shared_ptr<const EamPotential>;

}  // namespace wsmd::eam
