#include "eam/tabulated.hpp"

#include <cmath>

#include "util/error.hpp"

namespace wsmd::eam {

TabulatedEam::TabulatedEam(std::vector<std::string> names,
                           std::vector<double> masses, double rc,
                           std::vector<CubicSplineTable> rho_tables,
                           std::vector<CubicSplineTable> embed_tables,
                           std::vector<CubicSplineTable> pair_tables)
    : names_(std::move(names)),
      masses_(std::move(masses)),
      rc_(rc),
      rho_(std::move(rho_tables)),
      embed_(std::move(embed_tables)),
      pair_(std::move(pair_tables)) {
  const std::size_t nt = names_.size();
  WSMD_REQUIRE(nt > 0, "TabulatedEam needs at least one type");
  WSMD_REQUIRE(masses_.size() == nt, "mass count mismatch");
  WSMD_REQUIRE(rho_.size() == nt, "density table count mismatch");
  WSMD_REQUIRE(embed_.size() == nt, "embedding table count mismatch");
  WSMD_REQUIRE(pair_.size() == nt * (nt + 1) / 2, "pair table count mismatch");
  WSMD_REQUIRE(rc_ > 0.0, "cutoff must be positive");
}

TabulatedEam TabulatedEam::from_potential(const EamPotential& src, int nr,
                                          int nrho, double rho_max) {
  WSMD_REQUIRE(nr >= 16 && nrho >= 16, "table resolution too small");
  const int nt = src.num_types();
  const double rc = src.cutoff();

  std::vector<std::string> names;
  std::vector<double> masses;
  std::vector<CubicSplineTable> rho_tables, embed_tables, pair_tables;

  // The radial grid starts slightly above zero: EAM pair functions diverge
  // at r=0 and no physical configuration probes r < ~0.5 A.
  const double r_min = 1e-2;

  double peak_density = 0.0;
  for (int t = 0; t < nt; ++t) {
    names.push_back(src.type_name(t));
    masses.push_back(src.mass(t));
    rho_tables.push_back(CubicSplineTable::sample(
        [&](double r) { return src.density(t, r); }, r_min, rc,
        static_cast<std::size_t>(nr)));
    peak_density = std::max(peak_density, src.density(t, 0.8 * r_min + 0.5));
  }

  if (rho_max <= 0.0) {
    // Bound the host density by ~80 neighbors at close approach; generous
    // for any crystal the library generates.
    double densest = 0.0;
    for (int t = 0; t < nt; ++t) {
      densest = std::max(densest, src.density(t, 0.6 * rc));
    }
    rho_max = std::max(1.0, 80.0 * densest);
  }
  for (int t = 0; t < nt; ++t) {
    embed_tables.push_back(CubicSplineTable::sample(
        [&](double rho) { return src.embed(t, rho); }, 0.0, rho_max,
        static_cast<std::size_t>(nrho)));
  }
  for (int a = 0; a < nt; ++a) {
    for (int b = a; b < nt; ++b) {
      pair_tables.push_back(CubicSplineTable::sample(
          [&](double r) { return src.pair(a, b, r); }, r_min, rc,
          static_cast<std::size_t>(nr)));
    }
  }
  return TabulatedEam(std::move(names), std::move(masses), rc,
                      std::move(rho_tables), std::move(embed_tables),
                      std::move(pair_tables));
}

int TabulatedEam::num_types() const { return static_cast<int>(names_.size()); }

std::string TabulatedEam::type_name(int type) const {
  WSMD_REQUIRE(type >= 0 && type < num_types(), "type out of range");
  return names_[static_cast<std::size_t>(type)];
}

double TabulatedEam::mass(int type) const {
  WSMD_REQUIRE(type >= 0 && type < num_types(), "type out of range");
  return masses_[static_cast<std::size_t>(type)];
}

std::size_t TabulatedEam::pair_index(int ti, int tj) const {
  WSMD_REQUIRE(ti >= 0 && ti < num_types() && tj >= 0 && tj < num_types(),
               "pair type out of range");
  if (ti > tj) std::swap(ti, tj);
  // Row-major upper triangle: index = ti*nt - ti(ti-1)/2 + (tj - ti).
  const auto t = static_cast<std::size_t>(ti);
  const auto nt = static_cast<std::size_t>(num_types());
  return t * nt - t * (t - 1) / 2 + static_cast<std::size_t>(tj - ti);
}

double TabulatedEam::density(int type, double r) const {
  if (r >= rc_) return 0.0;
  return rho_[static_cast<std::size_t>(type)].value(r);
}

double TabulatedEam::density_deriv(int type, double r) const {
  if (r >= rc_) return 0.0;
  return rho_[static_cast<std::size_t>(type)].derivative(r);
}

double TabulatedEam::pair(int ti, int tj, double r) const {
  if (r >= rc_) return 0.0;
  return pair_[pair_index(ti, tj)].value(r);
}

double TabulatedEam::pair_deriv(int ti, int tj, double r) const {
  if (r >= rc_) return 0.0;
  return pair_[pair_index(ti, tj)].derivative(r);
}

double TabulatedEam::embed(int type, double rho) const {
  return embed_[static_cast<std::size_t>(type)].value(rho);
}

double TabulatedEam::embed_deriv(int type, double rho) const {
  return embed_[static_cast<std::size_t>(type)].derivative(rho);
}

const CubicSplineTable& TabulatedEam::density_table(int type) const {
  WSMD_REQUIRE(type >= 0 && type < num_types(), "type out of range");
  return rho_[static_cast<std::size_t>(type)];
}

const CubicSplineTable& TabulatedEam::embed_table(int type) const {
  WSMD_REQUIRE(type >= 0 && type < num_types(), "type out of range");
  return embed_[static_cast<std::size_t>(type)];
}

const CubicSplineTable& TabulatedEam::pair_table(int ti, int tj) const {
  return pair_[pair_index(ti, tj)];
}

std::size_t TabulatedEam::table_bytes_fp32() const {
  std::size_t samples = 0;
  for (const auto& t : rho_) samples += t.n();
  for (const auto& t : embed_) samples += t.n();
  for (const auto& t : pair_) samples += t.n();
  return samples * sizeof(float);
}

}  // namespace wsmd::eam
