#include "eam/profile.hpp"

#include <cmath>

#include "util/error.hpp"

namespace wsmd::eam {

namespace {

/// Fill one interleaved 2-wide table block from exact node samples.
template <typename T>
void fill_linear(T* block, const std::vector<double>& nodes) {
  const std::size_t n = nodes.size() - 1;
  for (std::size_t k = 0; k < n; ++k) {
    const T y0 = static_cast<T>(nodes[k]);
    const T y1 = static_cast<T>(nodes[k + 1]);
    block[2 * k] = y0;
    block[2 * k + 1] = y1 - y0;
  }
}

/// Fill one interleaved 4-wide bundle from two node-sample series.
template <typename T>
void fill_bundle(T* block, const std::vector<double>& a,
                 const std::vector<double>& b) {
  const std::size_t n = a.size() - 1;
  for (std::size_t k = 0; k < n; ++k) {
    const T a0 = static_cast<T>(a[k]);
    const T a1 = static_cast<T>(a[k + 1]);
    const T b0 = static_cast<T>(b[k]);
    const T b1 = static_cast<T>(b[k + 1]);
    block[4 * k] = a0;
    block[4 * k + 1] = a1 - a0;
    block[4 * k + 2] = b0;
    block[4 * k + 3] = b1 - b0;
  }
}

}  // namespace

template <typename T>
PotentialProfile<T>::PotentialProfile(const EamPotential& src,
                                      ProfileConfig config) {
  WSMD_REQUIRE(config.nr >= 64 && config.nrho >= 64,
               "profile resolution too small (want >= 64 segments)");
  nt_ = src.num_types();
  WSMD_REQUIRE(nt_ >= 1, "profile needs at least one type");
  rc_ = src.cutoff();
  WSMD_REQUIRE(rc_ > 0.0, "profile needs a positive cutoff");
  nr_ = static_cast<std::size_t>(config.nr);
  nrho_ = static_cast<std::size_t>(config.nrho);
  pairwise_only_ = src.is_pairwise_only();

  dr2_ = rc_ * rc_ / static_cast<double>(nr_);
  rc2_ = static_cast<T>(rc_ * rc_);
  inv_dr2_ = static_cast<T>(1.0 / dr2_);
  // Small-r sampling clamp: pair functions diverge toward r = 0 (an LJ
  // phi'/r grows like r^-14) and would overflow FP32 table slots, but no
  // physical configuration probes below a twentieth of the cutoff — a pair
  // that close has already blown up the integrator.
  r_floor_ = 0.05 * rc_;

  const auto nt = static_cast<std::size_t>(nt_);
  std::vector<double> a(nr_ + 1), b(nr_ + 1);

  rho_.resize(nt * nr_ * 2);
  rho_force_.resize(nt * nr_ * 2);
  for (int t = 0; t < nt_; ++t) {
    for (std::size_t k = 0; k <= nr_; ++k) {
      const double r = node_radius(k);
      a[k] = src.density(t, r);
      b[k] = src.density_deriv(t, r) / r;
    }
    fill_linear(rho_.data() + static_cast<std::size_t>(t) * nr_ * 2, a);
    fill_linear(rho_force_.data() + static_cast<std::size_t>(t) * nr_ * 2, b);
  }

  pair_.resize(nt * nt * nr_ * 4);
  for (int ti = 0; ti < nt_; ++ti) {
    for (int tj = 0; tj < nt_; ++tj) {
      for (std::size_t k = 0; k <= nr_; ++k) {
        const double r = node_radius(k);
        a[k] = src.pair(ti, tj, r);
        b[k] = src.pair_deriv(ti, tj, r) / r;
      }
      fill_bundle(pair_.data() +
                      (static_cast<std::size_t>(ti) * nt +
                       static_cast<std::size_t>(tj)) *
                          nr_ * 4,
                  a, b);
    }
  }

  rho_max_ = config.rho_max;
  if (rho_max_ <= 0.0) {
    // Same bound TabulatedEam uses: ~80 neighbors at close approach,
    // generous for any crystal the library generates.
    double densest = 0.0;
    for (int t = 0; t < nt_; ++t) {
      densest = std::max(densest, src.density(t, 0.6 * rc_));
    }
    rho_max_ = std::max(1.0, 80.0 * densest);
  }
  drho_ = rho_max_ / static_cast<double>(nrho_);
  inv_drho_ = static_cast<T>(1.0 / drho_);

  embed_.resize(nt * nrho_ * 4);
  std::vector<double> fa(nrho_ + 1), fb(nrho_ + 1);
  for (int t = 0; t < nt_; ++t) {
    for (std::size_t k = 0; k <= nrho_; ++k) {
      const double rho = drho_ * static_cast<double>(k);
      fa[k] = src.embed(t, rho);
      fb[k] = src.embed_deriv(t, rho);
    }
    fill_bundle(embed_.data() + static_cast<std::size_t>(t) * nrho_ * 4, fa,
                fb);
  }
}

template <typename T>
double PotentialProfile<T>::node_radius(std::size_t k) const {
  return std::max(std::sqrt(r2_node(k)), r_floor_);
}

template <typename T>
T PotentialProfile<T>::density_node(int type, std::size_t k) const {
  const T* block = rho_.data() + static_cast<std::size_t>(type) * nr_ * 2;
  if (k < nr_) return block[2 * k];
  return block[2 * (nr_ - 1)] + block[2 * (nr_ - 1) + 1];
}

template <typename T>
T PotentialProfile<T>::density_force_node(int type, std::size_t k) const {
  const T* block =
      rho_force_.data() + static_cast<std::size_t>(type) * nr_ * 2;
  if (k < nr_) return block[2 * k];
  return block[2 * (nr_ - 1)] + block[2 * (nr_ - 1) + 1];
}

template <typename T>
T PotentialProfile<T>::pair_node(int ti, int tj, std::size_t k) const {
  const T* block = pair_.data() +
                   (static_cast<std::size_t>(ti) * static_cast<std::size_t>(nt_) +
                    static_cast<std::size_t>(tj)) *
                       nr_ * 4;
  if (k < nr_) return block[4 * k];
  return block[4 * (nr_ - 1)] + block[4 * (nr_ - 1) + 1];
}

template <typename T>
T PotentialProfile<T>::pair_force_node(int ti, int tj, std::size_t k) const {
  const T* block = pair_.data() +
                   (static_cast<std::size_t>(ti) * static_cast<std::size_t>(nt_) +
                    static_cast<std::size_t>(tj)) *
                       nr_ * 4;
  if (k < nr_) return block[4 * k + 2];
  return block[4 * (nr_ - 1) + 2] + block[4 * (nr_ - 1) + 3];
}

template class PotentialProfile<float>;
template class PotentialProfile<double>;

}  // namespace wsmd::eam
