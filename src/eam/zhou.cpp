#include "eam/zhou.hpp"

#include <cmath>

#include "util/error.hpp"

namespace wsmd::eam {

namespace {

/// Parameter table transcribed from Zhou, Johnson & Wadley, PRB 69, 144113
/// (2004), Table III (and the companion EAM database distributed with it).
/// Digits are as published; the validation tests check the derived physics
/// (lattice constant at the energy minimum, cohesive energy, stability)
/// rather than trusting any single digit.
const ZhouParams kZhouTable[] = {
    // name  mass      re        fe        rhoe       rhos       alpha     beta      A         B         kappa     lambda    Fn0        Fn1        Fn2       Fn3        F0     F1  F2        F3         eta        Fe         structure
    {"Cu", 63.546, 2.556162, 1.554485, 21.175871, 21.175395, 8.127620,
     4.334731, 0.396620, 0.548085, 0.308782, 0.756515,
     {-2.170269, -0.263788, 1.088878, -0.817603},
     {-2.19, 0.0, 0.561830, -2.100595}, 0.310490, -2.186568, "fcc"},
    {"Ag", 107.8682, 2.891814, 1.106232, 14.604100, 14.604144, 9.132010,
     4.870405, 0.277758, 0.419611, 0.339710, 0.750758,
     {-1.729364, -0.255882, 0.912050, -0.561432},
     {-1.75, 0.0, 0.744561, -1.150650}, 0.783924, -1.748423, "fcc"},
    {"Au", 196.96657, 2.885034, 1.529021, 19.991632, 19.991509, 9.516052,
     5.075228, 0.229762, 0.356666, 0.356570, 0.748798,
     {-2.937772, -0.500288, 1.601954, -0.835530},
     {-2.98, 0.0, 1.706587, -1.134778}, 1.021095, -2.978815, "fcc"},
    {"Ni", 58.6934, 2.488746, 2.007018, 27.562015, 27.930410, 8.383453,
     4.471175, 0.429046, 0.633531, 0.443599, 0.820658,
     {-2.693513, -0.076445, 0.241442, -2.375626},
     {-2.70, 0.0, 0.265390, -0.152856}, 0.469000, -2.699486, "fcc"},
    {"Al", 26.981539, 2.863924, 1.403115, 20.418205, 23.195740, 6.613165,
     3.527021, 0.314873, 0.365551, 0.379846, 0.759692,
     {-2.807602, -0.301435, 1.258562, -1.247604},
     {-2.83, 0.0, 0.622245, -2.488244}, 0.785902, -2.824528, "fcc"},
    {"Fe", 55.845, 2.481987, 1.885957, 20.041463, 20.041463, 9.818270,
     5.236411, 0.392811, 0.646243, 0.170306, 0.340613,
     {-2.534992, -0.059605, 0.193065, -2.282322},
     {-2.54, 0.0, 0.200269, -0.148770}, 0.391750, -2.539945, "bcc"},
    {"Mo", 95.95, 2.728100, 2.723710, 29.354065, 29.354065, 8.393531,
     4.476550, 0.708787, 1.120373, 0.137640, 0.275280,
     {-3.692913, -0.178812, 0.380450, -3.133650},
     {-3.71, 0.0, 0.875874, 0.776222}, 0.790879, -3.712093, "bcc"},
    {"Ta", 180.94788, 2.860082, 3.086341, 33.787168, 33.787168, 8.489528,
     4.527748, 0.611679, 1.032101, 0.176977, 0.353954,
     {-5.103845, -0.405524, 1.112997, -3.585325},
     {-5.14, 0.0, 1.640098, 0.221375}, 0.848843, -5.141526, "bcc"},
    {"W", 183.84, 2.740840, 3.487340, 37.234847, 37.234847, 8.900114,
     4.746728, 0.882435, 1.394592, 0.139209, 0.278417,
     {-4.946281, -0.148818, 0.365057, -4.432406},
     {-4.96, 0.0, 0.661935, 0.348147}, -0.582714, -4.961306, "bcc"},
};

/// Physics cutoff factors (rcut = factor * re): wide enough that the Zhou
/// radial functions have decayed to near zero, so shift-force truncation
/// perturbs cohesion negligibly. FCC: through the 4th shell boundary; BCC:
/// through the 5th shell.
double physics_cutoff_factor(const std::string& structure) {
  return structure == "bcc" ? 2.02 : 1.94;
}

/// Paper workload cutoff factors (paper Table VI, rcut / r_nn): properties
/// of the potentials the paper benchmarked (Adams-Cu, Zhou-W, Li-Ta). These
/// reproduce the Table I interaction counts (Cu 42, W ~59, Ta 14) that the
/// wafer-scale performance depends on. For Ta this is *shorter* than the
/// Zhou-Ta physics cutoff — the Li-Ta potential is short-ranged by design —
/// so benchmarks construct ZhouEam("Ta", paper_cutoff()) when reproducing
/// the paper's workload, accepting slightly softer Ta physics (see
/// DESIGN.md, substitutions).
double paper_cutoff_factor(const std::string& name,
                           const std::string& structure) {
  if (name == "Cu") return 1.94;
  if (name == "W") return 2.02;
  if (name == "Ta") return 1.39;
  return physics_cutoff_factor(structure);
}

}  // namespace

double ZhouParams::lattice_constant() const {
  if (structure == "fcc") return re * std::sqrt(2.0);
  if (structure == "bcc") return 2.0 * re / std::sqrt(3.0);
  WSMD_REQUIRE(false, "unknown structure '" << structure << "'");
  return 0.0;
}

double ZhouParams::default_cutoff() const {
  return physics_cutoff_factor(structure) * re;
}

double ZhouParams::paper_cutoff() const {
  return paper_cutoff_factor(name, structure) * re;
}

std::vector<std::string> zhou_available_elements() {
  std::vector<std::string> names;
  for (const auto& p : kZhouTable) names.push_back(p.name);
  return names;
}

ZhouParams zhou_parameters(const std::string& element) {
  for (const auto& p : kZhouTable) {
    if (p.name == element) return p;
  }
  WSMD_REQUIRE(false, "no Zhou EAM parameters for element '" << element << "'");
  return {};
}

ZhouEam::ZhouEam(const std::string& element)
    : ZhouEam({zhou_parameters(element)}, 0.0) {}

ZhouEam::ZhouEam(const std::string& element, double cutoff)
    : ZhouEam({zhou_parameters(element)}, cutoff) {}

ZhouEam::ZhouEam(std::vector<ZhouParams> params, double cutoff)
    : p_(std::move(params)) {
  WSMD_REQUIRE(!p_.empty(), "ZhouEam needs at least one parameter set");
  rc_ = cutoff;
  if (rc_ <= 0.0) {
    for (const auto& p : p_) rc_ = std::max(rc_, p.default_cutoff());
  }

  const int nt = num_types();
  rho_rc_.resize(nt);
  drho_rc_.resize(nt);
  for (int t = 0; t < nt; ++t) {
    rho_rc_[t] = raw_density(t, rc_);
    drho_rc_[t] = raw_density_deriv(t, rc_);
  }
  phi_rc_.resize(static_cast<std::size_t>(nt) * nt);
  dphi_rc_.resize(static_cast<std::size_t>(nt) * nt);
  for (int a = 0; a < nt; ++a) {
    for (int b = 0; b < nt; ++b) {
      phi_rc_[static_cast<std::size_t>(a) * nt + b] = raw_pair(a, b, rc_);
      dphi_rc_[static_cast<std::size_t>(a) * nt + b] = raw_pair_deriv(a, b, rc_);
    }
  }
}

int ZhouEam::num_types() const { return static_cast<int>(p_.size()); }

std::string ZhouEam::type_name(int type) const { return params(type).name; }

double ZhouEam::mass(int type) const { return params(type).mass; }

const ZhouParams& ZhouEam::params(int type) const {
  WSMD_REQUIRE(type >= 0 && type < num_types(), "type " << type << " out of range");
  return p_[static_cast<std::size_t>(type)];
}

namespace {

/// Zhou radial building block: amp * exp(-expo*(x-1)) / (1 + (x-off)^20)
/// with x = r/re, plus its derivative with respect to r.
struct RadialTerm {
  double value;
  double deriv;
};

RadialTerm zhou_radial(double r, double re, double amp, double expo,
                       double off) {
  const double x = r / re;
  const double e = amp * std::exp(-expo * (x - 1.0));
  const double t = x - off;
  double t19 = 1.0;
  for (int i = 0; i < 19; ++i) t19 *= t;  // t^19; exponent 20 is fixed by form
  const double t20 = t19 * t;
  const double denom = 1.0 + t20;
  const double value = e / denom;
  // d/dx [e/denom] = (-expo*e*denom - e*20 t^19) / denom^2
  const double dvalue_dx = (-expo * e) / denom - e * 20.0 * t19 / (denom * denom);
  return {value, dvalue_dx / re};
}

}  // namespace

double ZhouEam::raw_density(int type, double r) const {
  const auto& p = params(type);
  return zhou_radial(r, p.re, p.fe, p.beta, p.lambda).value;
}

double ZhouEam::raw_density_deriv(int type, double r) const {
  const auto& p = params(type);
  return zhou_radial(r, p.re, p.fe, p.beta, p.lambda).deriv;
}

double ZhouEam::raw_pair_same(int type, double r) const {
  const auto& p = params(type);
  return zhou_radial(r, p.re, p.A, p.alpha, p.kappa).value -
         zhou_radial(r, p.re, p.B, p.beta, p.lambda).value;
}

double ZhouEam::raw_pair_same_deriv(int type, double r) const {
  const auto& p = params(type);
  return zhou_radial(r, p.re, p.A, p.alpha, p.kappa).deriv -
         zhou_radial(r, p.re, p.B, p.beta, p.lambda).deriv;
}

double ZhouEam::raw_pair(int ti, int tj, double r) const {
  if (ti == tj) return raw_pair_same(ti, r);
  // Johnson alloy mixing (density-weighted average of the elemental pairs).
  const double fa = raw_density(ti, r);
  const double fb = raw_density(tj, r);
  const double paa = raw_pair_same(ti, r);
  const double pbb = raw_pair_same(tj, r);
  WSMD_REQUIRE(fa > 0.0 && fb > 0.0,
               "alloy mixing undefined where elemental densities vanish");
  return 0.5 * (fb / fa * paa + fa / fb * pbb);
}

double ZhouEam::raw_pair_deriv(int ti, int tj, double r) const {
  if (ti == tj) return raw_pair_same_deriv(ti, r);
  const double fa = raw_density(ti, r);
  const double fb = raw_density(tj, r);
  const double dfa = raw_density_deriv(ti, r);
  const double dfb = raw_density_deriv(tj, r);
  const double paa = raw_pair_same(ti, r);
  const double pbb = raw_pair_same(tj, r);
  const double dpaa = raw_pair_same_deriv(ti, r);
  const double dpbb = raw_pair_same_deriv(tj, r);
  WSMD_REQUIRE(fa > 0.0 && fb > 0.0,
               "alloy mixing undefined where elemental densities vanish");
  const double term_a =
      (dfb * fa - fb * dfa) / (fa * fa) * paa + fb / fa * dpaa;
  const double term_b =
      (dfa * fb - fa * dfb) / (fb * fb) * pbb + fa / fb * dpbb;
  return 0.5 * (term_a + term_b);
}

double ZhouEam::density(int type, double r) const {
  if (r >= rc_) return 0.0;
  return raw_density(type, r) - rho_rc_[static_cast<std::size_t>(type)] -
         drho_rc_[static_cast<std::size_t>(type)] * (r - rc_);
}

double ZhouEam::density_deriv(int type, double r) const {
  if (r >= rc_) return 0.0;
  return raw_density_deriv(type, r) - drho_rc_[static_cast<std::size_t>(type)];
}

double ZhouEam::pair(int ti, int tj, double r) const {
  if (r >= rc_) return 0.0;
  const std::size_t idx =
      static_cast<std::size_t>(ti) * static_cast<std::size_t>(num_types()) +
      static_cast<std::size_t>(tj);
  return raw_pair(ti, tj, r) - phi_rc_[idx] - dphi_rc_[idx] * (r - rc_);
}

double ZhouEam::pair_deriv(int ti, int tj, double r) const {
  if (r >= rc_) return 0.0;
  const std::size_t idx =
      static_cast<std::size_t>(ti) * static_cast<std::size_t>(num_types()) +
      static_cast<std::size_t>(tj);
  return raw_pair_deriv(ti, tj, r) - dphi_rc_[idx];
}

double ZhouEam::embed(int type, double rho) const {
  const auto& p = params(type);
  const double rho_n = 0.85 * p.rhoe;
  const double rho_0 = 1.15 * p.rhoe;
  if (rho < rho_n) {
    const double t = rho / rho_n - 1.0;
    return ((p.Fn[3] * t + p.Fn[2]) * t + p.Fn[1]) * t + p.Fn[0];
  }
  if (rho < rho_0) {
    const double t = rho / p.rhoe - 1.0;
    return ((p.F[3] * t + p.F[2]) * t + p.F[1]) * t + p.F[0];
  }
  const double u = rho / p.rhos;
  const double lnu = std::log(u);
  return p.Fe * (1.0 - p.eta * lnu) * std::pow(u, p.eta);
}

double ZhouEam::embed_deriv(int type, double rho) const {
  const auto& p = params(type);
  const double rho_n = 0.85 * p.rhoe;
  const double rho_0 = 1.15 * p.rhoe;
  if (rho < rho_n) {
    const double t = rho / rho_n - 1.0;
    return ((3.0 * p.Fn[3] * t + 2.0 * p.Fn[2]) * t + p.Fn[1]) / rho_n;
  }
  if (rho < rho_0) {
    const double t = rho / p.rhoe - 1.0;
    return ((3.0 * p.F[3] * t + 2.0 * p.F[2]) * t + p.F[1]) / p.rhoe;
  }
  const double u = rho / p.rhos;
  const double lnu = std::log(u);
  // d/drho [ Fe (1 - eta ln u) u^eta ] = -Fe eta^2 u^(eta-1) ln(u) / rhos.
  return -p.Fe * p.eta * p.eta * std::pow(u, p.eta - 1.0) * lnu / p.rhos;
}

}  // namespace wsmd::eam
