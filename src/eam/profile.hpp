#pragma once

/// \file profile.hpp
/// Flattened, r²-indexed potential profiles: the branch-free table
/// representation the force hot loops evaluate.
///
/// The paper's wafer kernels never call the potential's functional form in
/// the inner loop — each core holds *local copies of the interpolation
/// tables* for rho, F, and phi (Sec. III-A) and evaluates them with a
/// segment lookup plus a low-order polynomial (Table III). The same shape
/// keeps FPGA-MD inner loops branch-free and bandwidth-bound (Yang et al.).
/// PotentialProfile is that representation for both host engines:
///
///  * every radial function is tabulated **as a function of r²** on a
///    uniform r² grid. The accept test in the hot loop already produces r²
///    (`r2 < rcut2`), so indexing by r² removes the per-pair `sqrt`
///    entirely — the standard MD table trick (cf. LAMMPS pair tables).
///  * the force kernels are stored pre-divided by r: phi'(r)/r and
///    rho'(r)/r. The pair force is then `d * (F'_i rho'_j/r + F'_j
///    rho'_i/r + phi'/r)` — no division in the loop either.
///  * coefficients are interleaved per segment (value, segment delta) in
///    flat contiguous arrays, so one lookup touches one or two cache lines
///    and no virtual dispatch.
///  * the embedding term F(rho), F'(rho) is tabulated on a uniform rho
///    grid, bundled so the density pass fetches both with one index.
///
/// The profile is built once from any EamPotential and instantiated at two
/// precisions, mirroring the paper's precision split: FP64 for the
/// reference engine, FP32 for the wafer path (the per-core table copies the
/// real machine holds in 48 kB of SRAM are FP32). Node values are exact
/// samples of the source potential — linear interpolation reproduces them
/// bitwise at the grid nodes, so a setfl-tabulated input passes through the
/// profile undistorted at its knots.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "eam/potential.hpp"

namespace wsmd::eam {

/// Table resolution. The defaults keep interpolation error far below FP32
/// state noise (see tests/eam/test_profile.cpp bounds); a real wafer core
/// would hold coarser tables (see table_bytes() and the README estimate).
struct ProfileConfig {
  int nr = 8192;          ///< r² segments over [0, cutoff²]
  int nrho = 8192;        ///< rho segments over [0, rho_max]
  double rho_max = 0.0;   ///< embedding range (0 = derive from the source)
};

/// Flat r²-indexed evaluation tables for one EamPotential, precision T.
template <typename T>
class PotentialProfile {
 public:
  PotentialProfile(const EamPotential& src, ProfileConfig config = {});

  int num_types() const { return nt_; }
  double cutoff() const { return rc_; }
  T cutoff_sq() const { return rc2_; }
  bool pairwise_only() const { return pairwise_only_; }
  double rho_max() const { return rho_max_; }

  /// --- Hot-path lookups (branch-free, r²-indexed) ----------------------
  /// Callers guard with `r2 < cutoff_sq()` — the accept test the loops
  /// already perform; lookups at or beyond the cutoff are out of contract.

  /// Electron density rho(r) contributed by an atom of `type`.
  T density(int type, T r2) const {
    const T t = r2 * inv_dr2_;
    const std::size_t k = segment(t, nr_);
    const T* c = rho_.data() + (static_cast<std::size_t>(type) * nr_ + k) * 2;
    return c[0] + c[1] * (t - static_cast<T>(k));
  }

  /// rho'(r)/r (the density force kernel).
  T density_force(int type, T r2) const {
    const T t = r2 * inv_dr2_;
    const std::size_t k = segment(t, nr_);
    const T* c =
        rho_force_.data() + (static_cast<std::size_t>(type) * nr_ + k) * 2;
    return c[0] + c[1] * (t - static_cast<T>(k));
  }

  /// Pair energy phi(r) and force kernel phi'(r)/r in one segment lookup
  /// (the two ride in one interleaved 4-wide bundle).
  void pair(int ti, int tj, T r2, T& phi, T& phi_force) const {
    const T t = r2 * inv_dr2_;
    const std::size_t k = segment(t, nr_);
    const T frac = t - static_cast<T>(k);
    const T* c = pair_.data() +
                 ((static_cast<std::size_t>(ti) * nt_ +
                   static_cast<std::size_t>(tj)) *
                      nr_ +
                  k) *
                     4;
    phi = c[0] + c[1] * frac;
    phi_force = c[2] + c[3] * frac;
  }

  /// Embedding energy F(rho) and derivative F'(rho), one bundle lookup.
  /// rho beyond rho_max extrapolates the last segment linearly.
  void embed(int type, T rho, T& f, T& fprime) const {
    const T t = rho * inv_drho_;
    const std::size_t k = segment(t, nrho_);
    const T frac = t - static_cast<T>(k);
    const T* c =
        embed_.data() + (static_cast<std::size_t>(type) * nrho_ + k) * 4;
    f = c[0] + c[1] * frac;
    fprime = c[2] + c[3] * frac;
  }

  /// Raw table view for the batched SIMD kernels (md/simd.hpp): flat
  /// coefficient pointers plus the index scales, so a kernel can gather
  /// bundle elements directly instead of calling the accessors per pair.
  /// Counts are int32 because the vector paths compute table indices in
  /// 32-bit lanes (nt² · nr · 4 stays far below 2³¹ for every real
  /// potential). The view borrows the profile's storage — keep the profile
  /// alive while using it.
  struct Raw {
    const T* rho;        ///< 2-wide bundles {value, delta}
    const T* rho_force;  ///< 2-wide bundles {rho'/r, delta}
    const T* pair;       ///< 4-wide bundles {phi, dphi, phi'/r, dphi'/r}
    const T* embed;      ///< 4-wide bundles {F, dF, F', dF'}
    std::int32_t nr;
    std::int32_t nrho;
    std::int32_t nt;
    T inv_dr2;
    T inv_drho;
  };
  Raw raw() const {
    return {rho_.data(),
            rho_force_.data(),
            pair_.data(),
            embed_.data(),
            static_cast<std::int32_t>(nr_),
            static_cast<std::int32_t>(nrho_),
            nt_,
            inv_dr2_,
            inv_drho_};
  }

  /// --- Introspection (tests, memory accounting) ------------------------

  std::size_t r2_segments() const { return nr_; }
  std::size_t rho_segments() const { return nrho_; }
  /// The k-th r² grid node (k in [0, r2_segments()]).
  double r2_node(std::size_t k) const { return dr2_ * static_cast<double>(k); }
  /// Radius the k-th node was sampled at: sqrt(r2_node) floored at the
  /// small-r clamp (EAM pair functions diverge toward r = 0; no physical
  /// configuration probes below the clamp).
  double node_radius(std::size_t k) const;

  /// Exact stored node values (what linear interpolation reproduces
  /// bitwise at the nodes).
  T density_node(int type, std::size_t k) const;
  T density_force_node(int type, std::size_t k) const;
  T pair_node(int ti, int tj, std::size_t k) const;
  T pair_force_node(int ti, int tj, std::size_t k) const;

  /// Total table bytes a single worker holding these coefficient arrays
  /// would store (paper Sec. III-A per-core state accounting).
  std::size_t table_bytes() const {
    return (rho_.size() + rho_force_.size() + pair_.size() + embed_.size()) *
           sizeof(T);
  }

 private:
  static std::size_t segment(T t, std::size_t n) {
    // t >= 0 by construction (r² and rho are non-negative); clamping the
    // index keeps the lookup branch-predictable and total.
    std::size_t k = static_cast<std::size_t>(t);
    return k < n ? k : n - 1;
  }

  std::size_t nr_ = 0;
  std::size_t nrho_ = 0;
  int nt_ = 0;
  double rc_ = 0.0;
  double dr2_ = 0.0;
  double drho_ = 0.0;
  double rho_max_ = 0.0;
  double r_floor_ = 0.0;
  T rc2_{};
  T inv_dr2_{};
  T inv_drho_{};
  bool pairwise_only_ = false;

  // Interleaved per-segment coefficients (value, next-node delta):
  // rho_[type][k]       -> {rho, d rho}            (2-wide)
  // rho_force_[type][k] -> {rho'/r, d rho'/r}      (2-wide)
  // pair_[ti*nt+tj][k]  -> {phi, d phi, phi'/r, d phi'/r}   (4-wide)
  // embed_[type][k]     -> {F, dF, F', dF'}        (4-wide)
  std::vector<T> rho_;
  std::vector<T> rho_force_;
  std::vector<T> pair_;
  std::vector<T> embed_;
};

extern template class PotentialProfile<float>;
extern template class PotentialProfile<double>;

using ProfileF32 = PotentialProfile<float>;
using ProfileF64 = PotentialProfile<double>;
using ProfileF32Ptr = std::shared_ptr<const ProfileF32>;
using ProfileF64Ptr = std::shared_ptr<const ProfileF64>;

}  // namespace wsmd::eam
