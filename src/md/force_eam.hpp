#pragma once

/// \file force_eam.hpp
/// Two-pass EAM force evaluation (paper Eqs. 2-4).
///
/// Pass 1 accumulates the host electron density rho_i for every atom and
/// evaluates the embedding term F_i(rho_i) and its derivative. Pass 2
/// evaluates the radial force
///   f_i = - sum_j [ F'_i rho'_j(r_ij) + F'_j rho'_i(r_ij) + phi'_ij(r_ij) ]
///         * (r_i - r_j)/r_ij
/// This is the same decomposition LAMMPS's pair_eam uses and the same terms
/// the paper's per-core kernel computes (Table III).
///
/// Two evaluation paths share the pass structure:
///   * analytic — virtual EamPotential calls with a per-pair sqrt (the
///     ground-truth functional form, kept selectable for validation);
///   * profiled — flat r²-indexed PotentialProfile lookups (eam/profile):
///     no virtual dispatch, no sqrt, no division in the inner loop. This is
///     the production hot path (scenario key `potential = tabulated`).

#include <vector>

#include "eam/profile.hpp"
#include "md/atom_system.hpp"
#include "md/neighbor.hpp"

namespace wsmd::md {

/// Scratch + result holder for force evaluations; reusable across steps.
class EamForceKernel {
 public:
  /// Evaluate forces into `system.forces()`. Returns total potential energy
  /// (pair + embedding) in eV. The neighbor list must be current and built
  /// with the potential's cutoff (list entries beyond the cutoff are
  /// filtered here — the list radius includes the skin). When `profile` is
  /// non-null it must be built from the system's potential; the evaluation
  /// then runs table-driven instead of through virtual calls.
  double compute(AtomSystem& system, const NeighborList& neighbors,
                 const eam::ProfileF64* profile = nullptr);

  /// Host densities from the most recent compute() (diagnostics/tests).
  const std::vector<double>& densities() const { return rho_; }

  /// Embedding energy share of the last compute() (eV).
  double embedding_energy() const { return e_embed_; }
  /// Pair energy share of the last compute() (eV).
  double pair_energy() const { return e_pair_; }

 private:
  double compute_analytic(AtomSystem& system, const NeighborList& neighbors);
  double compute_profiled(AtomSystem& system, const NeighborList& neighbors,
                          const eam::ProfileF64& profile);

  std::vector<double> rho_;
  std::vector<double> fprime_;
  double e_embed_ = 0.0;
  double e_pair_ = 0.0;
};

}  // namespace wsmd::md
