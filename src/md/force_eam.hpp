#pragma once

/// \file force_eam.hpp
/// Two-pass EAM force evaluation (paper Eqs. 2-4).
///
/// Pass 1 accumulates the host electron density rho_i for every atom and
/// evaluates the embedding term F_i(rho_i) and its derivative. Pass 2
/// evaluates the radial force
///   f_i = - sum_j [ F'_i rho'_j(r_ij) + F'_j rho'_i(r_ij) + phi'_ij(r_ij) ]
///         * (r_i - r_j)/r_ij
/// This is the same decomposition LAMMPS's pair_eam uses and the same terms
/// the paper's per-core kernel computes (Table III).
///
/// Evaluation paths sharing the pass structure:
///   * analytic — virtual EamPotential calls with a per-pair sqrt (the
///     ground-truth functional form, kept selectable for validation);
///   * batched — the production hot path: a SIMD distance sieve compacts
///     each neighbor row into accepted (idx, d, r²) lanes once, then the
///     density and force passes run the vectorized r²-indexed
///     PotentialProfile lookups (md/simd.hpp) over the compacted rows;
///   * pairwise — the PR 5 scalar one-pair-at-a-time profile loop, kept as
///     the bench comparator for the batching win.
///
/// Threading: atoms are carved into fixed 256-atom tiles dispatched
/// round-robin over an engine::ShardPool. Each tile writes only its own
/// atoms' forces (the full neighbor list makes every row independent) and
/// its own energy partial; partials are then summed serially in tile
/// order. The tile size is a constant — not derived from the worker count
/// — so forces and energies are bitwise identical at any thread count,
/// including the inline serial run.

#include <cstdint>
#include <vector>

#include "eam/profile.hpp"
#include "md/atom_system.hpp"
#include "md/neighbor.hpp"

namespace wsmd::engine {
class ShardPool;
}

namespace wsmd::md {

/// Scratch + result holder for force evaluations; reusable across steps.
class EamForceKernel {
 public:
  enum class EvalPath {
    kBatched,   ///< SIMD sieve + batched table lookups (default)
    kPairwise,  ///< legacy scalar per-pair profile loop (bench comparator)
  };

  /// Evaluate forces into `system.forces()`. Returns total potential energy
  /// (pair + embedding) in eV. The neighbor list must be current and built
  /// with the potential's cutoff (list entries beyond the cutoff are
  /// filtered here — the list radius includes the skin). When `profile` is
  /// non-null it must be built from the system's potential; the evaluation
  /// then runs table-driven instead of through virtual calls. A non-null
  /// `pool` threads the sweep (deterministically — see above).
  double compute(AtomSystem& system, const NeighborList& neighbors,
                 const eam::ProfileF64* profile = nullptr,
                 engine::ShardPool* pool = nullptr,
                 EvalPath path = EvalPath::kBatched);

  /// Host densities from the most recent compute() (diagnostics/tests).
  const std::vector<double>& densities() const { return rho_; }

  /// Embedding energy share of the last compute() (eV).
  double embedding_energy() const { return e_embed_; }
  /// Pair energy share of the last compute() (eV).
  double pair_energy() const { return e_pair_; }

 private:
  double compute_analytic(AtomSystem& system, const NeighborList& neighbors,
                          engine::ShardPool* pool);
  double compute_batched(AtomSystem& system, const NeighborList& neighbors,
                         const eam::ProfileF64& profile,
                         engine::ShardPool* pool);
  double compute_pairwise(AtomSystem& system, const NeighborList& neighbors,
                          const eam::ProfileF64& profile);

  std::vector<double> rho_;
  std::vector<double> fprime_;
  double e_embed_ = 0.0;
  double e_pair_ = 0.0;

  // Batched-path scratch: per-row compacted sieve output in one padded CSR
  // block (row i starts at acc_off_[i]; the +kPadF64-per-row padding absorbs
  // the sieve's full-width compaction stores), reused across steps.
  std::vector<std::size_t> acc_off_;
  std::vector<std::uint32_t> acc_n_;
  std::vector<std::uint32_t> acc_idx_;
  std::vector<double> acc_dx_;
  std::vector<double> acc_dy_;
  std::vector<double> acc_dz_;
  std::vector<double> acc_r2_;
  // Per-tile energy partials, reduced serially in tile order.
  std::vector<double> tile_embed_;
  std::vector<double> tile_pair_;
};

}  // namespace wsmd::md
