#pragma once

/// \file cell_list.hpp
/// Shared spatial cell list: the O(N) neighbor-search primitive behind the
/// Verlet list (md/neighbor), the structural analysis (md/analysis), and the
/// streaming observables (src/obs).
///
/// Atoms are binned into cells of edge >= `radius`; candidate neighbors of
/// an atom are the atoms in its cell's 27-stencil. The stencil cell ids are
/// deduplicated at build time, so every atom is visited at most once per
/// query even when a periodic axis holds fewer than three cells (the wrap
/// would otherwise fold distinct stencil offsets onto the same cell).
///
/// Correctness contract, shared with the Verlet list it was extracted from:
/// distances use the minimum-image convention, which is exact only while at
/// most one periodic image of any neighbor lies within `radius` — callers
/// on periodic boxes must keep every periodic box length >= 2 * cutoff.

#include <cstddef>
#include <vector>

#include "util/box.hpp"
#include "util/vec3.hpp"

namespace wsmd::md {

class CellList {
 public:
  CellList() = default;

  /// Enforce the minimum-image precondition: every periodic box length
  /// must be >= 2 * `cutoff`. Callers validate with the cutoff they
  /// guarantee to their users — which may be smaller than the cell radius
  /// (the Verlet list builds cells at cutoff + skin but only promises
  /// completeness within cutoff), so build() cannot enforce this itself.
  static void require_min_image(const Box& box, double cutoff);

  /// Bin `positions` into cells of edge >= `radius`. For periodic axes the
  /// box bounds are authoritative; open axes bin over the atom extrema
  /// (atoms may drift outside the nominal box). The list keeps a pointer to
  /// `positions`: the vector must stay alive and unmodified while queries
  /// run (every call site builds and queries back-to-back).
  void build(const Box& box, const std::vector<Vec3d>& positions,
             double radius);

  std::size_t atom_count() const { return positions_ ? positions_->size() : 0; }
  double radius() const { return radius_; }
  std::size_t cell_count() const {
    return cell_start_.empty() ? 0 : cell_start_.size() - 1;
  }

  /// Invoke `f(j, d, r2)` for every atom j != i whose minimum-image
  /// displacement d = rj - ri has |d|^2 = r2 < radius^2. Each such j is
  /// visited exactly once, in cell-traversal order.
  template <typename F>
  void for_each_neighbor(std::size_t i, F&& f) const {
    const std::vector<Vec3d>& pos = *positions_;
    const Vec3d ri = pos[i];
    const double r2max = radius_ * radius_;
    const std::size_t cell = atom_cell_[i];
    for (std::size_t s = stencil_start_[cell]; s < stencil_start_[cell + 1];
         ++s) {
      const std::size_t cc = stencil_cells_[s];
      for (std::size_t k = cell_start_[cc]; k < cell_start_[cc + 1]; ++k) {
        const std::size_t j = cell_atoms_[k];
        if (j == i) continue;
        const Vec3d d = box_.minimum_image(ri, pos[j]);
        const double r2 = norm2(d);
        if (r2 < r2max) f(j, d, r2);
      }
    }
  }

  /// Invoke `f(i, j, d, r2)` once per unordered pair i < j within `radius`
  /// (d is the minimum image rj - ri). The full stencil holds both
  /// directions of every pair; guarding j > i *before* the distance work
  /// halves the minimum-image evaluations relative to filtering
  /// for_each_neighbor's output.
  template <typename F>
  void for_each_pair(F&& f) const {
    const std::vector<Vec3d>& pos = *positions_;
    const double r2max = radius_ * radius_;
    const std::size_t n = atom_count();
    for (std::size_t i = 0; i < n; ++i) {
      const Vec3d ri = pos[i];
      const std::size_t cell = atom_cell_[i];
      for (std::size_t s = stencil_start_[cell];
           s < stencil_start_[cell + 1]; ++s) {
        const std::size_t cc = stencil_cells_[s];
        for (std::size_t k = cell_start_[cc]; k < cell_start_[cc + 1]; ++k) {
          const std::size_t j = cell_atoms_[k];
          if (j <= i) continue;
          const Vec3d d = box_.minimum_image(ri, pos[j]);
          const double r2 = norm2(d);
          if (r2 < r2max) f(i, j, d, r2);
        }
      }
    }
  }

 private:
  Box box_;
  const std::vector<Vec3d>* positions_ = nullptr;
  double radius_ = 0.0;
  int ncell_[3] = {1, 1, 1};
  Vec3d lo_{0, 0, 0};
  double cell_edge_[3] = {0, 0, 0};

  std::vector<std::size_t> atom_cell_;      ///< atom -> flat cell id
  std::vector<std::size_t> cell_start_;     ///< CSR offsets into cell_atoms_
  std::vector<std::size_t> cell_atoms_;     ///< atom ids grouped by cell
  std::vector<std::size_t> stencil_start_;  ///< CSR offsets into stencil_cells_
  std::vector<std::size_t> stencil_cells_;  ///< deduped neighbor cell ids
};

}  // namespace wsmd::md
