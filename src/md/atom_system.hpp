#pragma once

/// \file atom_system.hpp
/// Structure-of-arrays atom storage for the reference MD engine.
///
/// Plays the role of LAMMPS's Atom class in the paper's baseline runs:
/// positions/velocities/forces in FP64, per-type masses from the potential.
/// State lives in Vec3dPlanes (contiguous x/y/z planes) so the batched
/// force kernels (md/simd.hpp) load and gather dense scalar lanes; element
/// access keeps the Vec3 API via the planes' reference proxy. The
/// wafer-scale path (src/core) keeps per-core FP32 state instead; tests
/// cross-validate the two.

#include <vector>

#include "eam/potential.hpp"
#include "lattice/lattice.hpp"
#include "util/box.hpp"
#include "util/random.hpp"
#include "util/soa.hpp"
#include "util/vec3.hpp"

namespace wsmd::md {

class AtomSystem {
 public:
  /// Adopt a generated structure; masses come from the potential's types.
  AtomSystem(const lattice::Structure& s, eam::EamPotentialPtr potential);

  std::size_t size() const { return positions_.size(); }
  const Box& box() const { return box_; }
  Box& box() { return box_; }
  const eam::EamPotential& potential() const { return *potential_; }
  eam::EamPotentialPtr potential_ptr() const { return potential_; }

  Vec3dPlanes& positions() { return positions_; }
  const Vec3dPlanes& positions() const { return positions_; }
  Vec3dPlanes& velocities() { return velocities_; }
  const Vec3dPlanes& velocities() const { return velocities_; }
  Vec3dPlanes& forces() { return forces_; }
  const Vec3dPlanes& forces() const { return forces_; }
  const std::vector<int>& types() const { return types_; }

  /// Mass of atom i (amu).
  double mass(std::size_t i) const {
    return masses_by_type_[static_cast<std::size_t>(types_[i])];
  }

  /// Kinetic energy in eV (using current velocities).
  double kinetic_energy() const;

  /// Instantaneous temperature in K (3N degrees of freedom).
  double temperature() const;

  /// Net momentum (amu * A/ps).
  Vec3d momentum() const;

  /// Draw Maxwell-Boltzmann velocities at temperature T and remove the net
  /// center-of-mass drift (the paper equilibrates at 290 K before
  /// benchmarking, Sec. IV-B).
  void thermalize(double temperature_K, Rng& rng);

  /// Rescale velocities so the instantaneous temperature equals T exactly.
  void scale_to_temperature(double temperature_K);

  /// Subtract the center-of-mass velocity.
  void zero_momentum();

 private:
  Box box_;
  eam::EamPotentialPtr potential_;
  Vec3dPlanes positions_;
  Vec3dPlanes velocities_;
  Vec3dPlanes forces_;
  std::vector<int> types_;
  std::vector<double> masses_by_type_;
};

}  // namespace wsmd::md
