#include "md/cell_list.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace wsmd::md {

void CellList::require_min_image(const Box& box, double cutoff) {
  for (std::size_t a = 0; a < 3; ++a) {
    if (box.periodic[a]) {
      WSMD_REQUIRE(box.length(static_cast<int>(a)) >= 2.0 * cutoff,
                   "periodic box length " << box.length(static_cast<int>(a))
                                          << " < 2*cutoff " << 2.0 * cutoff
                                          << " on axis " << a);
    }
  }
}

void CellList::build(const Box& box, const std::vector<Vec3d>& positions,
                     double radius) {
  WSMD_REQUIRE(radius > 0.0, "cell-list radius must be positive");
  WSMD_REQUIRE(!positions.empty(), "cannot build a cell list for zero atoms");
  box_ = box;
  positions_ = &positions;
  radius_ = radius;
  const std::size_t n = positions.size();

  // Binning region: periodic axes use the box, open axes the atom extrema.
  Vec3d lo = box.lo, hi = box.hi;
  for (std::size_t a = 0; a < 3; ++a) {
    if (box.periodic[a]) continue;
    double mn = positions[0][a], mx = positions[0][a];
    for (const auto& r : positions) {
      mn = std::min(mn, r[a]);
      mx = std::max(mx, r[a]);
    }
    lo[a] = mn - 1e-9;
    hi[a] = mx + 1e-9;
  }
  lo_ = lo;
  for (std::size_t a = 0; a < 3; ++a) {
    const double len = hi[a] - lo[a];
    ncell_[a] = std::max(1, static_cast<int>(std::floor(len / radius)));
    cell_edge_[a] = len / ncell_[a];
  }

  const std::size_t total_cells = static_cast<std::size_t>(ncell_[0]) *
                                  static_cast<std::size_t>(ncell_[1]) *
                                  static_cast<std::size_t>(ncell_[2]);

  // Bin atoms (counting sort into CSR keeps per-cell atoms in index order,
  // which makes traversal deterministic).
  atom_cell_.resize(n);
  cell_start_.assign(total_cells + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    int c[3];
    for (std::size_t a = 0; a < 3; ++a) {
      double x = positions[i][a] - lo_[a];
      if (box.periodic[a]) {
        const double len = hi[a] - lo[a];
        x -= std::floor(x / len) * len;
      }
      c[a] = std::clamp(static_cast<int>(std::floor(x / cell_edge_[a])), 0,
                        ncell_[a] - 1);
    }
    const std::size_t flat =
        (static_cast<std::size_t>(c[2]) * ncell_[1] + c[1]) * ncell_[0] + c[0];
    atom_cell_[i] = flat;
    ++cell_start_[flat + 1];
  }
  for (std::size_t c = 0; c < total_cells; ++c) {
    cell_start_[c + 1] += cell_start_[c];
  }
  cell_atoms_.resize(n);
  {
    std::vector<std::size_t> cursor(cell_start_.begin(),
                                    cell_start_.end() - 1);
    for (std::size_t i = 0; i < n; ++i) {
      cell_atoms_[cursor[atom_cell_[i]]++] = i;
    }
  }

  // Precompute each cell's deduplicated 27-stencil. With < 3 cells along a
  // periodic axis the wrapped offsets collide; sort+unique keeps each
  // neighbor cell exactly once so queries never double-visit an atom.
  stencil_start_.assign(total_cells + 1, 0);
  stencil_cells_.clear();
  stencil_cells_.reserve(total_cells * 27);
  std::size_t scratch[27];
  for (std::size_t cell = 0; cell < total_cells; ++cell) {
    const int cx = static_cast<int>(cell % static_cast<std::size_t>(ncell_[0]));
    const int cy = static_cast<int>(
        (cell / static_cast<std::size_t>(ncell_[0])) %
        static_cast<std::size_t>(ncell_[1]));
    const int cz = static_cast<int>(cell / (static_cast<std::size_t>(ncell_[0]) *
                                            static_cast<std::size_t>(ncell_[1])));
    std::size_t count = 0;
    for (int dz = -1; dz <= 1; ++dz) {
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          int cc[3] = {cx + dx, cy + dy, cz + dz};
          bool skip = false;
          for (std::size_t a = 0; a < 3; ++a) {
            if (box.periodic[a]) {
              cc[a] = (cc[a] + ncell_[a]) % ncell_[a];
            } else if (cc[a] < 0 || cc[a] >= ncell_[a]) {
              skip = true;
              break;
            }
          }
          if (skip) continue;
          scratch[count++] =
              (static_cast<std::size_t>(cc[2]) * ncell_[1] + cc[1]) *
                  ncell_[0] +
              cc[0];
        }
      }
    }
    std::sort(scratch, scratch + count);
    const std::size_t unique_count =
        static_cast<std::size_t>(std::unique(scratch, scratch + count) -
                                 scratch);
    stencil_cells_.insert(stencil_cells_.end(), scratch,
                          scratch + unique_count);
    stencil_start_[cell + 1] = stencil_cells_.size();
  }
}

}  // namespace wsmd::md
