#include "md/integrator.hpp"

#include "util/error.hpp"
#include "util/units.hpp"

namespace wsmd::md {

LeapfrogIntegrator::LeapfrogIntegrator(double dt) : dt_(dt) {
  WSMD_REQUIRE(dt_ > 0.0, "timestep must be positive");
}

void LeapfrogIntegrator::step(AtomSystem& system) const {
  auto& pos = system.positions();
  auto& vel = system.velocities();
  const auto& frc = system.forces();
  const Box& box = system.box();
  for (std::size_t i = 0; i < system.size(); ++i) {
    const double inv_m = 1.0 / system.mass(i);
    const Vec3d a = frc.get(i) * (inv_m * units::kForceToAccel);
    const Vec3d v = vel.get(i) + a * dt_;
    vel.set(i, v);
    pos.set(i, box.wrap(pos.get(i) + v * dt_));
  }
}

void LeapfrogIntegrator::half_kick(AtomSystem& system) const {
  auto& vel = system.velocities();
  const auto& frc = system.forces();
  for (std::size_t i = 0; i < system.size(); ++i) {
    const double inv_m = 1.0 / system.mass(i);
    const Vec3d a = frc.get(i) * (inv_m * units::kForceToAccel);
    vel.set(i, vel.get(i) + a * (0.5 * dt_));
  }
}

}  // namespace wsmd::md
