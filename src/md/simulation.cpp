#include "md/simulation.hpp"

#include <cmath>
#include <thread>

#include "engine/shard_pool.hpp"
#include "telemetry/telemetry.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace wsmd::md {

Simulation::Simulation(AtomSystem system, SimulationConfig config)
    : system_(std::move(system)),
      config_(config),
      neighbors_(system_.potential().cutoff(), config.skin) {
  WSMD_REQUIRE(config_.dt > 0.0, "timestep must be positive");
  WSMD_REQUIRE(config_.threads >= 0, "threads must be >= 0 (0 = auto)");
  if (config_.tabulated) {
    profile_ = std::make_shared<eam::ProfileF64>(system_.potential());
  }
  int workers = config_.threads;
  if (workers == 0) {
    workers = static_cast<int>(std::thread::hardware_concurrency());
    if (workers < 1) workers = 1;
  }
  if (workers > 1) {
    pool_ = std::make_unique<engine::ShardPool>(workers);
  }
}

Simulation::~Simulation() = default;
Simulation::Simulation(Simulation&&) noexcept = default;
Simulation& Simulation::operator=(Simulation&&) noexcept = default;

double Simulation::compute_forces() {
  {
    telemetry::ScopedSpan span("md.neighbor");
    if (neighbors_.ensure_current(system_.box(), system_.positions())) {
      telemetry::count("md.neighbor_rebuilds");
    }
  }
  telemetry::ScopedSpan span("md.force");
  last_pe_ = kernel_.compute(system_, neighbors_, profile_.get(), pool_.get());
  forces_current_ = true;
  return last_pe_;
}

ThermoState Simulation::run(
    long n, const std::function<void(const ThermoState&)>& callback) {
  WSMD_REQUIRE(n >= 0, "negative step count");
  if (!forces_current_) compute_forces();
  for (long k = 0; k < n; ++k) {
    {
      telemetry::ScopedSpan span("md.integrate");
      LeapfrogIntegrator(config_.dt).step(system_);
    }
    ++step_;
    compute_forces();
    if (config_.rescale_temperature_K &&
        step_ % config_.rescale_interval == 0) {
      system_.scale_to_temperature(*config_.rescale_temperature_K);
    }
    if (callback) callback(thermo());
  }
  return thermo();
}

void Simulation::equilibrate(double temperature_K, long steps, Rng& rng) {
  system_.thermalize(temperature_K, rng);
  const auto saved = config_.rescale_temperature_K;
  config_.rescale_temperature_K = temperature_K;
  run(steps);
  config_.rescale_temperature_K = saved;
}

SimulationState Simulation::save_state() const {
  SimulationState st;
  st.step = step_;
  st.positions = system_.positions().to_aos();
  st.velocities = system_.velocities().to_aos();
  st.neighbor_anchor = neighbors_.reference_positions();
  return st;
}

void Simulation::restore_state(const SimulationState& state) {
  WSMD_REQUIRE(state.positions.size() == system_.size() &&
                   state.velocities.size() == system_.size(),
               "restore_state: atom count mismatch ("
                   << state.positions.size() << " positions / "
                   << state.velocities.size() << " velocities vs "
                   << system_.size() << " atoms)");
  WSMD_REQUIRE(state.step >= 0, "restore_state: negative step counter");
  WSMD_REQUIRE(state.neighbor_anchor.empty() ||
                   state.neighbor_anchor.size() == system_.size(),
               "restore_state: neighbor anchor size mismatch");
  system_.positions().from_aos(state.positions);
  system_.velocities().from_aos(state.velocities);
  step_ = state.step;
  // Rebuild the Verlet list from the saved anchor so contents, pair order,
  // and the next displacement-triggered rebuild all match the run that
  // wrote the snapshot; then evaluate forces on the restored positions
  // through that list (ensure_current sees displacement <= skin/2 — the
  // anchor was current when saved — so it does not rebuild again).
  neighbors_.build(system_.box(), state.neighbor_anchor.empty()
                                      ? state.positions
                                      : state.neighbor_anchor);
  last_pe_ = kernel_.compute(system_, neighbors_, profile_.get(), pool_.get());
  forces_current_ = true;
}

ThermoState Simulation::thermo() const {
  ThermoState t;
  t.step = step_;
  t.potential_energy = last_pe_;

  // Synchronize the half-step leapfrog velocities to the current positions
  // with a half kick before measuring kinetic energy.
  const auto& vel = system_.velocities();
  const auto& frc = system_.forces();
  double mv2 = 0.0;
  for (std::size_t i = 0; i < system_.size(); ++i) {
    const double m = system_.mass(i);
    const Vec3d v_sync =
        vel[i] + frc[i] * (units::kForceToAccel / m * 0.5 * config_.dt);
    mv2 += m * norm2(v_sync);
  }
  t.kinetic_energy = 0.5 * mv2 * units::kMv2ToEnergy;
  t.total_energy = t.potential_energy + t.kinetic_energy;
  t.temperature = 2.0 * t.kinetic_energy /
                  (3.0 * static_cast<double>(system_.size()) *
                   units::kBoltzmann);
  return t;
}

}  // namespace wsmd::md
