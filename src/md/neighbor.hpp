#pragma once

/// \file neighbor.hpp
/// Cell list and Verlet neighbor list for the reference engine.
///
/// This mirrors the production-MD machinery the paper benchmarks against
/// (LAMMPS reuses neighbor lists across timesteps; see also the projected
/// "Neighbor List" optimization in paper Table V). The list is *full*
/// (both i->j and j->i entries) because EAM's density pass wants every
/// neighbor of every atom. A `skin` distance delays rebuilds until any atom
/// has moved half the skin.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/box.hpp"
#include "util/soa.hpp"
#include "util/vec3.hpp"

namespace wsmd::md {

/// CSR-layout full neighbor list.
class NeighborList {
 public:
  /// `cutoff` is the interaction cutoff; `skin` the extra Verlet margin.
  NeighborList(double cutoff, double skin);

  double cutoff() const { return cutoff_; }
  double skin() const { return skin_; }
  double list_radius() const { return cutoff_ + skin_; }

  /// Rebuild unconditionally from the given positions.
  void build(const Box& box, const std::vector<Vec3d>& positions);
  void build(const Box& box, const Vec3dPlanes& positions);

  /// Rebuild only if some atom moved more than skin/2 since the last build.
  /// Returns true when a rebuild happened.
  bool ensure_current(const Box& box, const std::vector<Vec3d>& positions);
  bool ensure_current(const Box& box, const Vec3dPlanes& positions);

  /// Neighbors of atom i (indices within list_radius at build time).
  /// Indices are 32-bit: the SIMD sieve gathers them as i32 lanes (and a
  /// 4-billion-atom CSR list would not fit host memory anyway).
  struct Range {
    const std::uint32_t* begin_;
    const std::uint32_t* end_;
    const std::uint32_t* begin() const { return begin_; }
    const std::uint32_t* end() const { return end_; }
    std::size_t size() const { return static_cast<std::size_t>(end_ - begin_); }
  };
  Range neighbors(std::size_t i) const {
    return {indices_.data() + offsets_[i], indices_.data() + offsets_[i + 1]};
  }

  /// Row offset of atom i in the CSR index array (the batched force path
  /// indexes its own per-pair scratch with these).
  std::size_t row_offset(std::size_t i) const { return offsets_[i]; }

  std::size_t atom_count() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }

  /// Total stored neighbor entries (diagnostics).
  std::size_t total_entries() const { return indices_.size(); }

  /// Number of rebuilds performed so far (diagnostics; LAMMPS "Neigh" count).
  std::size_t rebuild_count() const { return rebuilds_; }

  /// Positions the list was last built from (the Verlet anchor). Saved by
  /// checkpoints: rebuilding from the anchor reproduces the list contents
  /// (pair order fixes FP summation order) *and* the displacement-based
  /// rebuild schedule, so a restored run stays bitwise on the original.
  const std::vector<Vec3d>& reference_positions() const {
    return reference_positions_;
  }

 private:
  double cutoff_;
  double skin_;
  std::vector<std::size_t> offsets_;
  std::vector<std::uint32_t> indices_;
  std::vector<Vec3d> reference_positions_;
  std::size_t rebuilds_ = 0;
};

}  // namespace wsmd::md
