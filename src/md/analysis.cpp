#include "md/analysis.hpp"

#include <algorithm>
#include <cmath>

#include "md/cell_list.hpp"
#include "util/error.hpp"

namespace wsmd::md {

StructureAnalysis analyze_structure(const Box& box,
                                    const std::vector<Vec3d>& positions,
                                    double rcut, int neighbor_count) {
  WSMD_REQUIRE(!positions.empty(), "no atoms to analyze");
  WSMD_REQUIRE(rcut > 0.0, "rcut must be positive");
  WSMD_REQUIRE(neighbor_count >= 2 && neighbor_count % 2 == 0,
               "CSP needs an even neighbor count (12 FCC, 8 BCC)");
  // Minimum-image correctness: at most one periodic image within rcut.
  CellList::require_min_image(box, rcut);

  // Shared cell list, queried directly: one O(N) binning pass and no
  // materialized CSR — this is what keeps CSP on a 200k-atom slab at
  // seconds of wall clock.
  CellList cl;
  cl.build(box, positions, rcut);

  StructureAnalysis out;
  out.centrosymmetry.assign(positions.size(), 0.0);
  out.coordination.assign(positions.size(), 0);

  std::vector<Vec3d> bonds;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    bonds.clear();
    cl.for_each_neighbor(i, [&](std::size_t, const Vec3d& d, double) {
      bonds.push_back(d);
    });
    out.coordination[i] = static_cast<int>(bonds.size());

    // Keep the `neighbor_count` shortest bonds.
    std::sort(bonds.begin(), bonds.end(), [](const Vec3d& a, const Vec3d& b) {
      return norm2(a) < norm2(b);
    });
    const std::size_t n =
        std::min(bonds.size(), static_cast<std::size_t>(neighbor_count));
    if (n < 2) {
      // Isolated atom: maximal asymmetry marker.
      out.centrosymmetry[i] = rcut * rcut;
      continue;
    }
    // Greedy opposite-bond pairing: repeatedly take the unused pair with
    // the smallest |r_a + r_b|^2. Exact for perfect lattices; a standard
    // approximation (LAMMPS compute centro/atom uses the same idea).
    std::vector<bool> used(n, false);
    double csp = 0.0;
    for (std::size_t pair = 0; pair < n / 2; ++pair) {
      double best = 1e300;
      std::size_t ba = 0, bb = 0;
      for (std::size_t a = 0; a < n; ++a) {
        if (used[a]) continue;
        for (std::size_t b = a + 1; b < n; ++b) {
          if (used[b]) continue;
          const double v = norm2(bonds[a] + bonds[b]);
          if (v < best) {
            best = v;
            ba = a;
            bb = b;
          }
        }
      }
      used[ba] = used[bb] = true;
      csp += best;
    }
    out.centrosymmetry[i] = csp;
  }
  return out;
}

std::vector<bool> defective_atoms(const StructureAnalysis& analysis,
                                  double threshold) {
  WSMD_REQUIRE(threshold > 0.0, "threshold must be positive");
  std::vector<bool> out(analysis.centrosymmetry.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = analysis.centrosymmetry[i] > threshold;
  }
  return out;
}

}  // namespace wsmd::md
