#include "md/force_eam.hpp"

#include <cmath>

#include "util/error.hpp"

namespace wsmd::md {

double EamForceKernel::compute(AtomSystem& system,
                               const NeighborList& neighbors) {
  const auto& pot = system.potential();
  const auto& pos = system.positions();
  const auto& types = system.types();
  const Box& box = system.box();
  const std::size_t n = system.size();
  WSMD_REQUIRE(neighbors.atom_count() == n,
               "neighbor list built for a different atom count");

  const double rc = pot.cutoff();
  const double rc2 = rc * rc;
  const bool pairwise_only = pot.is_pairwise_only();

  auto& forces = system.forces();
  forces.assign(n, Vec3d{0, 0, 0});

  e_embed_ = 0.0;
  e_pair_ = 0.0;

  // Pass 1: densities and embedding derivatives.
  rho_.assign(n, 0.0);
  fprime_.assign(n, 0.0);
  if (!pairwise_only) {
    for (std::size_t i = 0; i < n; ++i) {
      double rho = 0.0;
      for (std::size_t j : neighbors.neighbors(i)) {
        const Vec3d d = box.minimum_image(pos[i], pos[j]);
        const double r2 = norm2(d);
        if (r2 >= rc2) continue;
        rho += pot.density(types[j], std::sqrt(r2));
      }
      rho_[i] = rho;
      e_embed_ += pot.embed(types[i], rho);
      fprime_[i] = pot.embed_deriv(types[i], rho);
    }
  }

  // Pass 2: pair + embedding forces.
  for (std::size_t i = 0; i < n; ++i) {
    Vec3d f{0, 0, 0};
    double pair_acc = 0.0;
    for (std::size_t j : neighbors.neighbors(i)) {
      const Vec3d d = box.minimum_image(pos[i], pos[j]);  // rj - ri
      const double r2 = norm2(d);
      if (r2 >= rc2) continue;
      const double r = std::sqrt(r2);
      pair_acc += pot.pair(types[i], types[j], r);
      double fmag = pot.pair_deriv(types[i], types[j], r);
      if (!pairwise_only) {
        fmag += fprime_[i] * pot.density_deriv(types[j], r) +
                fprime_[j] * pot.density_deriv(types[i], r);
      }
      // Force on i: -dU/dr * unit(ri - rj) == +fmag * unit(rj - ri) ... with
      // fmag = dU/dr. Writing it via d = rj - ri keeps the signs compact.
      f += d * (fmag / r);
    }
    forces[i] = f;
    e_pair_ += 0.5 * pair_acc;  // full list counts each pair twice
  }

  return e_pair_ + e_embed_;
}

}  // namespace wsmd::md
