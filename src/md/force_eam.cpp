#include "md/force_eam.hpp"

#include <cmath>

#include "engine/shard_pool.hpp"
#include "md/simd.hpp"
#include "telemetry/telemetry.hpp"
#include "util/error.hpp"

namespace wsmd::md {

namespace {

/// Fixed tile width for the threaded sweep. A constant (never derived from
/// the worker count) so the per-tile FP accumulation — and therefore every
/// force and energy — is bitwise identical at any thread count.
constexpr std::size_t kForceTile = 256;

/// Run tile_fn(t) for every tile, round-robin across the pool's workers
/// (inline when the pool is absent or single-worker). Returns only when all
/// tiles finished — callers rely on that barrier between passes.
template <typename TileFn>
void for_tiles(engine::ShardPool* pool, std::size_t ntiles,
               const TileFn& tile_fn) {
  if (pool == nullptr || pool->size() <= 1) {
    for (std::size_t t = 0; t < ntiles; ++t) tile_fn(t);
    return;
  }
  const std::size_t workers = static_cast<std::size_t>(pool->size());
  pool->run([&](int w) {
    for (std::size_t t = static_cast<std::size_t>(w); t < ntiles;
         t += workers) {
      tile_fn(t);
    }
  });
}

simd::BoxF64 make_simd_box(const Box& box) {
  // inv_len = 0 on open axes: the branch-free minimum image
  // `d -= nearbyint(d * inv_len) * len` then subtracts an exact zero.
  simd::BoxF64 out;
  const Vec3d len = box.lengths();
  for (std::size_t a = 0; a < 3; ++a) {
    out.len[a] = len[a];
    out.inv_len[a] = box.periodic[a] ? 1.0 / len[a] : 0.0;
  }
  return out;
}

}  // namespace

double EamForceKernel::compute(AtomSystem& system,
                               const NeighborList& neighbors,
                               const eam::ProfileF64* profile,
                               engine::ShardPool* pool, EvalPath path) {
  WSMD_REQUIRE(neighbors.atom_count() == system.size(),
               "neighbor list built for a different atom count");
  if (profile != nullptr) {
    if (path == EvalPath::kPairwise) {
      return compute_pairwise(system, neighbors, *profile);
    }
    return compute_batched(system, neighbors, *profile, pool);
  }
  return compute_analytic(system, neighbors, pool);
}

double EamForceKernel::compute_analytic(AtomSystem& system,
                                        const NeighborList& neighbors,
                                        engine::ShardPool* pool) {
  const auto& pot = system.potential();
  const auto& pos = system.positions();
  const auto& types = system.types();
  const Box& box = system.box();
  const std::size_t n = system.size();

  const double rc = pot.cutoff();
  const double rc2 = rc * rc;
  const bool pairwise_only = pot.is_pairwise_only();

  auto& forces = system.forces();
  forces.resize(n);

  const std::size_t ntiles = (n + kForceTile - 1) / kForceTile;
  tile_embed_.assign(ntiles, 0.0);
  tile_pair_.assign(ntiles, 0.0);

  // Pass 1: densities and embedding derivatives.
  rho_.assign(n, 0.0);
  fprime_.assign(n, 0.0);
  if (!pairwise_only) {
    for_tiles(pool, ntiles, [&](std::size_t t) {
      const std::size_t i0 = t * kForceTile;
      const std::size_t i1 = i0 + kForceTile < n ? i0 + kForceTile : n;
      double embed_acc = 0.0;
      for (std::size_t i = i0; i < i1; ++i) {
        double rho = 0.0;
        for (std::size_t j : neighbors.neighbors(i)) {
          const Vec3d d = box.minimum_image(pos[i], pos[j]);
          const double r2 = norm2(d);
          if (r2 >= rc2) continue;
          rho += pot.density(types[j], std::sqrt(r2));
        }
        rho_[i] = rho;
        embed_acc += pot.embed(types[i], rho);
        fprime_[i] = pot.embed_deriv(types[i], rho);
      }
      tile_embed_[t] = embed_acc;
    });
  }
  // for_tiles barrier: every fprime_[j] is published before pass 2 reads it.

  // Pass 2: pair + embedding forces.
  for_tiles(pool, ntiles, [&](std::size_t t) {
    const std::size_t i0 = t * kForceTile;
    const std::size_t i1 = i0 + kForceTile < n ? i0 + kForceTile : n;
    double pair_acc = 0.0;
    for (std::size_t i = i0; i < i1; ++i) {
      Vec3d f{0, 0, 0};
      for (std::size_t j : neighbors.neighbors(i)) {
        const Vec3d d = box.minimum_image(pos[i], pos[j]);  // rj - ri
        const double r2 = norm2(d);
        if (r2 >= rc2) continue;
        const double r = std::sqrt(r2);
        pair_acc += pot.pair(types[i], types[j], r);
        double fmag = pot.pair_deriv(types[i], types[j], r);
        if (!pairwise_only) {
          fmag += fprime_[i] * pot.density_deriv(types[j], r) +
                  fprime_[j] * pot.density_deriv(types[i], r);
        }
        // Force on i: -dU/dr * unit(ri - rj) == +fmag * unit(rj - ri) ...
        // with fmag = dU/dr. Writing it via d = rj - ri keeps the signs
        // compact.
        f += d * (fmag / r);
      }
      forces[i] = f;
    }
    tile_pair_[t] = pair_acc;
  });

  e_embed_ = 0.0;
  for (double e : tile_embed_) e_embed_ += e;
  double pair_sum = 0.0;
  for (double e : tile_pair_) pair_sum += e;
  e_pair_ = 0.5 * pair_sum;  // full list counts each pair twice
  return e_pair_ + e_embed_;
}

double EamForceKernel::compute_batched(AtomSystem& system,
                                       const NeighborList& neighbors,
                                       const eam::ProfileF64& prof,
                                       engine::ShardPool* pool) {
  const auto& types = system.types();
  const std::size_t n = system.size();

  const double rc2 = prof.cutoff_sq();
  const bool pairwise_only = prof.pairwise_only();
  const eam::ProfileF64::Raw raw = prof.raw();
  const simd::KernelTable& kern = simd::kernels();
  const simd::BoxF64 sbox = make_simd_box(system.box());

  const double* px = system.positions().x();
  const double* py = system.positions().y();
  const double* pz = system.positions().z();

  auto& forces = system.forces();
  forces.resize(n);

  // Padded per-row scratch for the compacted sieve output: row i owns
  // [acc_off_[i], acc_off_[i+1]) with kPadF64 slack so the compaction's
  // full-width stores stay in bounds.
  acc_off_.resize(n + 1);
  for (std::size_t i = 0; i <= n; ++i) {
    acc_off_[i] = neighbors.row_offset(i) + simd::kPadF64 * i;
  }
  const std::size_t cap = acc_off_[n];
  acc_idx_.resize(cap);
  acc_dx_.resize(cap);
  acc_dy_.resize(cap);
  acc_dz_.resize(cap);
  acc_r2_.resize(cap);
  acc_n_.resize(n);

  rho_.assign(n, 0.0);
  fprime_.assign(n, 0.0);

  const std::size_t ntiles = (n + kForceTile - 1) / kForceTile;
  tile_embed_.assign(ntiles, 0.0);
  tile_pair_.assign(ntiles, 0.0);

  // Pass 1: sieve every row once (kept for pass 2), then batched density
  // lookups and the embedding term.
  {
    telemetry::ScopedSpan span("md.force.density");
    for_tiles(pool, ntiles, [&](std::size_t t) {
      const std::size_t i0 = t * kForceTile;
      const std::size_t i1 = i0 + kForceTile < n ? i0 + kForceTile : n;
      double embed_acc = 0.0;
      for (std::size_t i = i0; i < i1; ++i) {
        const auto row = neighbors.neighbors(i);
        const std::size_t off = acc_off_[i];
        const std::size_t m = kern.sieve_f64(
            px, py, pz, px[i], py[i], pz[i], row.begin(), row.size(), sbox,
            rc2, acc_idx_.data() + off, acc_dx_.data() + off,
            acc_dy_.data() + off, acc_dz_.data() + off, acc_r2_.data() + off);
        acc_n_[i] = static_cast<std::uint32_t>(m);
        if (pairwise_only) continue;
        const double rho = kern.rho_row_f64(raw, types.data(),
                                            acc_idx_.data() + off,
                                            acc_r2_.data() + off, m);
        rho_[i] = rho;
        double f, fp;
        prof.embed(types[i], rho, f, fp);
        embed_acc += f;
        fprime_[i] = fp;
      }
      tile_embed_[t] = embed_acc;
    });
  }
  // for_tiles barrier: every fprime_[j] is published before pass 2 reads it.

  // Pass 2: batched pair + embedding forces over the stored rows.
  {
    telemetry::ScopedSpan span("md.force.pair");
    for_tiles(pool, ntiles, [&](std::size_t t) {
      const std::size_t i0 = t * kForceTile;
      const std::size_t i1 = i0 + kForceTile < n ? i0 + kForceTile : n;
      double pair_acc = 0.0;
      for (std::size_t i = i0; i < i1; ++i) {
        const std::size_t off = acc_off_[i];
        const simd::PairAccumF64 acc = kern.force_row_f64(
            raw, types.data(), fprime_.data(), fprime_[i], types[i],
            acc_idx_.data() + off, acc_dx_.data() + off, acc_dy_.data() + off,
            acc_dz_.data() + off, acc_r2_.data() + off, acc_n_[i],
            pairwise_only);
        forces.set(i, Vec3d{acc.fx, acc.fy, acc.fz});
        pair_acc += acc.phi;
      }
      tile_pair_[t] = pair_acc;
    });
  }

  e_embed_ = 0.0;
  for (double e : tile_embed_) e_embed_ += e;
  double pair_sum = 0.0;
  for (double e : tile_pair_) pair_sum += e;
  e_pair_ = 0.5 * pair_sum;  // full list counts each pair twice
  return e_pair_ + e_embed_;
}

double EamForceKernel::compute_pairwise(AtomSystem& system,
                                        const NeighborList& neighbors,
                                        const eam::ProfileF64& prof) {
  const auto& pos = system.positions();
  const auto& types = system.types();
  const Box& box = system.box();
  const std::size_t n = system.size();

  const double rc2 = prof.cutoff_sq();
  const bool pairwise_only = prof.pairwise_only();

  auto& forces = system.forces();
  forces.assign(n, Vec3d{0, 0, 0});

  e_embed_ = 0.0;
  e_pair_ = 0.0;

  // Pass 1: densities and embedding derivatives — one r²-indexed lookup per
  // accepted pair, no sqrt.
  rho_.assign(n, 0.0);
  fprime_.assign(n, 0.0);
  if (!pairwise_only) {
    for (std::size_t i = 0; i < n; ++i) {
      double rho = 0.0;
      for (std::size_t j : neighbors.neighbors(i)) {
        const Vec3d d = box.minimum_image(pos[i], pos[j]);
        const double r2 = norm2(d);
        if (r2 >= rc2) continue;
        rho += prof.density(types[j], r2);
      }
      rho_[i] = rho;
      double f, fp;
      prof.embed(types[i], rho, f, fp);
      e_embed_ += f;
      fprime_[i] = fp;
    }
  }

  // Pass 2: pair + embedding forces. The force kernels are tabulated
  // pre-divided by r, so the update is one fused multiply per component —
  // no sqrt, no division.
  for (std::size_t i = 0; i < n; ++i) {
    Vec3d f{0, 0, 0};
    double pair_acc = 0.0;
    const double fprime_i = fprime_[i];
    const int ti = types[i];
    for (std::size_t j : neighbors.neighbors(i)) {
      const Vec3d d = box.minimum_image(pos[i], pos[j]);  // rj - ri
      const double r2 = norm2(d);
      if (r2 >= rc2) continue;
      double phi, phi_force;
      prof.pair(ti, types[j], r2, phi, phi_force);
      pair_acc += phi;
      double fmag_over_r = phi_force;
      if (!pairwise_only) {
        fmag_over_r += fprime_i * prof.density_force(types[j], r2) +
                       fprime_[j] * prof.density_force(ti, r2);
      }
      f += d * fmag_over_r;
    }
    forces[i] = f;
    e_pair_ += 0.5 * pair_acc;  // full list counts each pair twice
  }

  return e_pair_ + e_embed_;
}

}  // namespace wsmd::md
