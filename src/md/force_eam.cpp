#include "md/force_eam.hpp"

#include <cmath>

#include "util/error.hpp"

namespace wsmd::md {

double EamForceKernel::compute(AtomSystem& system,
                               const NeighborList& neighbors,
                               const eam::ProfileF64* profile) {
  WSMD_REQUIRE(neighbors.atom_count() == system.size(),
               "neighbor list built for a different atom count");
  if (profile != nullptr) {
    return compute_profiled(system, neighbors, *profile);
  }
  return compute_analytic(system, neighbors);
}

double EamForceKernel::compute_analytic(AtomSystem& system,
                                        const NeighborList& neighbors) {
  const auto& pot = system.potential();
  const auto& pos = system.positions();
  const auto& types = system.types();
  const Box& box = system.box();
  const std::size_t n = system.size();

  const double rc = pot.cutoff();
  const double rc2 = rc * rc;
  const bool pairwise_only = pot.is_pairwise_only();

  auto& forces = system.forces();
  forces.assign(n, Vec3d{0, 0, 0});

  e_embed_ = 0.0;
  e_pair_ = 0.0;

  // Pass 1: densities and embedding derivatives.
  rho_.assign(n, 0.0);
  fprime_.assign(n, 0.0);
  if (!pairwise_only) {
    for (std::size_t i = 0; i < n; ++i) {
      double rho = 0.0;
      for (std::size_t j : neighbors.neighbors(i)) {
        const Vec3d d = box.minimum_image(pos[i], pos[j]);
        const double r2 = norm2(d);
        if (r2 >= rc2) continue;
        rho += pot.density(types[j], std::sqrt(r2));
      }
      rho_[i] = rho;
      e_embed_ += pot.embed(types[i], rho);
      fprime_[i] = pot.embed_deriv(types[i], rho);
    }
  }

  // Pass 2: pair + embedding forces.
  for (std::size_t i = 0; i < n; ++i) {
    Vec3d f{0, 0, 0};
    double pair_acc = 0.0;
    for (std::size_t j : neighbors.neighbors(i)) {
      const Vec3d d = box.minimum_image(pos[i], pos[j]);  // rj - ri
      const double r2 = norm2(d);
      if (r2 >= rc2) continue;
      const double r = std::sqrt(r2);
      pair_acc += pot.pair(types[i], types[j], r);
      double fmag = pot.pair_deriv(types[i], types[j], r);
      if (!pairwise_only) {
        fmag += fprime_[i] * pot.density_deriv(types[j], r) +
                fprime_[j] * pot.density_deriv(types[i], r);
      }
      // Force on i: -dU/dr * unit(ri - rj) == +fmag * unit(rj - ri) ... with
      // fmag = dU/dr. Writing it via d = rj - ri keeps the signs compact.
      f += d * (fmag / r);
    }
    forces[i] = f;
    e_pair_ += 0.5 * pair_acc;  // full list counts each pair twice
  }

  return e_pair_ + e_embed_;
}

double EamForceKernel::compute_profiled(AtomSystem& system,
                                        const NeighborList& neighbors,
                                        const eam::ProfileF64& prof) {
  const auto& pos = system.positions();
  const auto& types = system.types();
  const Box& box = system.box();
  const std::size_t n = system.size();

  const double rc2 = prof.cutoff_sq();
  const bool pairwise_only = prof.pairwise_only();

  auto& forces = system.forces();
  forces.assign(n, Vec3d{0, 0, 0});

  e_embed_ = 0.0;
  e_pair_ = 0.0;

  // Pass 1: densities and embedding derivatives — one r²-indexed lookup per
  // accepted pair, no sqrt.
  rho_.assign(n, 0.0);
  fprime_.assign(n, 0.0);
  if (!pairwise_only) {
    for (std::size_t i = 0; i < n; ++i) {
      double rho = 0.0;
      for (std::size_t j : neighbors.neighbors(i)) {
        const Vec3d d = box.minimum_image(pos[i], pos[j]);
        const double r2 = norm2(d);
        if (r2 >= rc2) continue;
        rho += prof.density(types[j], r2);
      }
      rho_[i] = rho;
      double f, fp;
      prof.embed(types[i], rho, f, fp);
      e_embed_ += f;
      fprime_[i] = fp;
    }
  }

  // Pass 2: pair + embedding forces. The force kernels are tabulated
  // pre-divided by r, so the update is one fused multiply per component —
  // no sqrt, no division.
  for (std::size_t i = 0; i < n; ++i) {
    Vec3d f{0, 0, 0};
    double pair_acc = 0.0;
    const double fprime_i = fprime_[i];
    const int ti = types[i];
    for (std::size_t j : neighbors.neighbors(i)) {
      const Vec3d d = box.minimum_image(pos[i], pos[j]);  // rj - ri
      const double r2 = norm2(d);
      if (r2 >= rc2) continue;
      double phi, phi_force;
      prof.pair(ti, types[j], r2, phi, phi_force);
      pair_acc += phi;
      double fmag_over_r = phi_force;
      if (!pairwise_only) {
        fmag_over_r += fprime_i * prof.density_force(types[j], r2) +
                       fprime_[j] * prof.density_force(ti, r2);
      }
      f += d * fmag_over_r;
    }
    forces[i] = f;
    e_pair_ += 0.5 * pair_acc;  // full list counts each pair twice
  }

  return e_pair_ + e_embed_;
}

}  // namespace wsmd::md
