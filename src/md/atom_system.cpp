#include "md/atom_system.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/units.hpp"

namespace wsmd::md {

AtomSystem::AtomSystem(const lattice::Structure& s,
                       eam::EamPotentialPtr potential)
    : box_(s.box),
      potential_(std::move(potential)),
      positions_(s.positions),
      velocities_(s.positions.size()),
      forces_(s.positions.size()),
      types_(s.types) {
  WSMD_REQUIRE(potential_ != nullptr, "AtomSystem needs a potential");
  WSMD_REQUIRE(!positions_.empty(), "AtomSystem needs at least one atom");
  WSMD_REQUIRE(types_.size() == positions_.size(), "type/position mismatch");
  const int nt = potential_->num_types();
  masses_by_type_.resize(static_cast<std::size_t>(nt));
  for (int t = 0; t < nt; ++t) {
    masses_by_type_[static_cast<std::size_t>(t)] = potential_->mass(t);
  }
  for (int t : types_) {
    WSMD_REQUIRE(t >= 0 && t < nt, "atom type " << t << " unknown to potential");
  }
}

double AtomSystem::kinetic_energy() const {
  double mv2 = 0.0;
  for (std::size_t i = 0; i < size(); ++i) {
    mv2 += mass(i) * norm2(velocities_[i]);
  }
  return 0.5 * mv2 * units::kMv2ToEnergy;
}

double AtomSystem::temperature() const {
  const double ke = kinetic_energy();
  return 2.0 * ke /
         (3.0 * static_cast<double>(size()) * units::kBoltzmann);
}

Vec3d AtomSystem::momentum() const {
  Vec3d p{0, 0, 0};
  for (std::size_t i = 0; i < size(); ++i) p += velocities_[i] * mass(i);
  return p;
}

void AtomSystem::thermalize(double temperature_K, Rng& rng) {
  WSMD_REQUIRE(temperature_K >= 0.0, "temperature must be non-negative");
  for (std::size_t i = 0; i < size(); ++i) {
    // sigma_v = sqrt(kB T / m) in A/ps with the metal-units conversion.
    const double sigma =
        std::sqrt(units::kBoltzmann * temperature_K / mass(i) *
                  units::kForceToAccel);
    velocities_[i] = rng.gaussian_vec3(sigma);
  }
  zero_momentum();
  if (temperature_K > 0.0) scale_to_temperature(temperature_K);
}

void AtomSystem::scale_to_temperature(double temperature_K) {
  const double t_now = temperature();
  WSMD_REQUIRE(t_now > 0.0, "cannot rescale a zero-temperature system");
  const double s = std::sqrt(temperature_K / t_now);
  for (auto v : velocities_) v *= s;
}

void AtomSystem::zero_momentum() {
  Vec3d p = momentum();
  double total_mass = 0.0;
  for (std::size_t i = 0; i < size(); ++i) total_mass += mass(i);
  const Vec3d v_cm = p / total_mass;
  for (auto v : velocities_) v -= v_cm;
}

}  // namespace wsmd::md
